/**
 * @file
 * pom-opt — the textual-IR pass driver (the MLIR `mlir-opt` analogue).
 *
 * Usage:
 *   pom-opt [file.pom-ir|-] [--pass-pipeline=SPEC] [-o FILE]
 *           [--verify-each] [--dump-after] [--timing] [--list-passes]
 *           [--jobs N] [--pipeline-cache on|off]
 *           [--pipeline-cache-dir DIR] [--trace-out FILE]
 *           [--metrics-out FILE] [--quiet|-q] [--verbose|-v]
 *
 * Reads a `.pom-ir` module (from a file, or stdin with `-`/no input),
 * parses it, runs the requested pass pipeline over it, and prints the
 * resulting IR. With no pipeline the tool just round-trips the input,
 * which is itself a useful check: the printer guarantees
 * print(parse(print(f))) == print(f).
 *
 * SPEC is a comma-separated pass list with optional per-pass options,
 * e.g. "verify,strip-hls" or "schedule-apply{ordering-only=true}".
 * Front-end lowering passes (extract-stmts, ...) are registered too but
 * need a DSL function, so they reject textual-IR input with a clear
 * error.
 *
 * --trace-out / --metrics-out (or the POM_TRACE environment variable)
 * write the per-pass Chrome trace and the flat metrics JSON from the
 * src/obs layer; -q/--quiet and -v/--verbose set the diagnostic level.
 *
 * --pipeline-cache on memoizes cacheable pass results keyed on the
 * pipeline-state fingerprint (src/pass/pipeline_cache.h);
 * --pipeline-cache-dir DIR additionally loads/saves the
 * content-addressed spill under DIR (and implies on). The printed IR
 * is byte-identical with the cache on or off.
 *
 * Examples:
 *   pom-opt design.pom-ir --pass-pipeline=verify,strip-hls
 *   pomc gemm --dse --emit | ...                (generate IR elsewhere)
 *   pom-opt - < design.pom-ir
 *   pom-opt design.pom-ir --pass-pipeline=verify --trace-out t.json
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "ir/parser.h"
#include "lower/lower.h"
#include "obs/obs.h"
#include "pass/pass_manager.h"
#include "pass/pipeline_cache.h"
#include "support/diagnostics.h"
#include "support/string_util.h"
#include "support/thread_pool.h"

using namespace pom;

namespace {

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [file.pom-ir|-] [--pass-pipeline=SPEC] "
                 "[-o FILE] [--verify-each] [--dump-after] [--timing] "
                 "[--jobs N] [--pipeline-cache on|off] "
                 "[--pipeline-cache-dir DIR] "
                 "[--trace-out FILE] [--metrics-out FILE] "
                 "[--quiet|-q] [--verbose|-v]\n"
                 "       %s --list-passes\n",
                 argv0, argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string input_path = "-";
    bool input_set = false;
    std::string output_path;
    std::string pipeline;
    bool verify_each = false, dump_after = false, want_timing = false;
    bool list_passes = false;
    std::string trace_out = obs::traceEnvPath();
    std::string metrics_out;
    std::string pipeline_cache_dir;
    bool pipeline_cache = false;

    for (int a = 1; a < argc; ++a) {
        std::string arg = argv[a];
        if (arg == "--list-passes") {
            list_passes = true;
        } else if (arg == "--trace-out" && a + 1 < argc) {
            trace_out = argv[++a];
        } else if (arg == "--metrics-out" && a + 1 < argc) {
            metrics_out = argv[++a];
        } else if (arg == "--quiet" || arg == "-q") {
            support::setDiagLevel(support::DiagLevel::Error);
        } else if (arg == "--verbose" || arg == "-v") {
            support::setDiagLevel(support::DiagLevel::Debug);
        } else if (arg.rfind("--pass-pipeline=", 0) == 0) {
            pipeline = arg.substr(std::strlen("--pass-pipeline="));
        } else if (arg == "--pass-pipeline" && a + 1 < argc) {
            pipeline = argv[++a];
        } else if (arg == "-o" && a + 1 < argc) {
            output_path = argv[++a];
        } else if (arg == "--verify-each") {
            verify_each = true;
        } else if (arg == "--dump-after") {
            dump_after = true;
        } else if (arg == "--timing") {
            want_timing = true;
        } else if (arg == "--jobs" && a + 1 < argc) {
            // Worker threads for any parallel phase a pass may start
            // (equivalent to POM_JOBS=N).
            std::int64_t n = 0;
            if (!support::parseInt64(argv[++a], n) || n < 1 || n > 256) {
                std::fprintf(stderr, "pom-opt: --jobs expects a worker "
                                     "count in [1, 256], got '%s'\n",
                             argv[a]);
                return 2;
            }
            support::setJobs(static_cast<int>(n));
        } else if (arg == "--pipeline-cache" && a + 1 < argc) {
            std::string mode = argv[++a];
            if (mode != "on" && mode != "off") {
                std::fprintf(stderr,
                             "pom-opt: --pipeline-cache expects on or "
                             "off, got '%s'\n", mode.c_str());
                return 2;
            }
            pipeline_cache = (mode == "on");
        } else if (arg == "--pipeline-cache-dir" && a + 1 < argc) {
            pipeline_cache_dir = argv[++a];
        } else if (arg == "-" || arg[0] != '-') {
            if (input_set)
                return usage(argv[0]);
            input_path = arg;
            input_set = true;
        } else {
            return usage(argv[0]);
        }
    }

    if (!trace_out.empty())
        obs::setTracingEnabled(true);
    if (!metrics_out.empty())
        obs::setMetricsEnabled(true);

    // Writes the requested observability files on every exit path once
    // all spans have closed.
    struct ObsFlusher
    {
        std::string trace, metrics;

        ~ObsFlusher()
        {
            if (!trace.empty() &&
                !obs::writeFile(trace, obs::chromeTraceJson())) {
                std::fprintf(stderr, "pom-opt: cannot write '%s'\n",
                             trace.c_str());
            }
            if (!metrics.empty() &&
                !obs::writeFile(metrics, obs::metricsJson())) {
                std::fprintf(stderr, "pom-opt: cannot write '%s'\n",
                             metrics.c_str());
            }
        }
    } flusher{trace_out, metrics_out};

    lower::registerLoweringPasses();

    // A spill dir implies the cache; load before the run so a warm
    // start skips already-seen pipeline prefixes.
    if (!pipeline_cache_dir.empty())
        pipeline_cache = true;
    pass::setPipelineCacheEnabled(pipeline_cache);
    if (!pipeline_cache_dir.empty()) {
        support::CacheSpillStats stats;
        std::string cache_error;
        if (!pass::PipelineCache::global().loadDir(
                pipeline_cache_dir, stats, cache_error)) {
            std::fprintf(stderr, "pom-opt: %s\n", cache_error.c_str());
            return 1;
        }
    }
    struct PipelineCacheSpiller
    {
        std::string dir;

        ~PipelineCacheSpiller()
        {
            if (dir.empty())
                return;
            support::CacheSpillStats stats;
            std::string error;
            if (!pass::PipelineCache::global().saveDir(dir, stats,
                                                       error)) {
                std::fprintf(stderr,
                             "pom-opt: pipeline-cache spill failed: "
                             "%s\n",
                             error.c_str());
            }
        }
    } pipeline_spiller{pipeline_cache_dir};

    if (list_passes) {
        for (const auto &[name, desc] :
             pass::PassRegistry::instance().list())
            std::printf("%-18s %s\n", name.c_str(), desc.c_str());
        return 0;
    }

    std::string source;
    if (input_path == "-") {
        std::ostringstream buffer;
        buffer << std::cin.rdbuf();
        source = buffer.str();
    } else {
        std::ifstream in(input_path);
        if (!in) {
            std::fprintf(stderr, "pom-opt: cannot open '%s'\n",
                         input_path.c_str());
            return 1;
        }
        std::ostringstream buffer;
        buffer << in.rdbuf();
        source = buffer.str();
    }

    try {
        pass::PipelineState state;
        state.func = ir::parseIr(source);

        pass::PassManagerOptions options;
        options.verifyAfterEach = verify_each;
        options.dumpAfterEach = dump_after;
        pass::PassManager pm(options);
        if (!pipeline.empty())
            pm.addPipeline(pipeline);
        pm.run(state);

        std::string printed = state.func ? state.func->str() : "";
        if (output_path.empty()) {
            std::fputs(printed.c_str(), stdout);
        } else {
            std::ofstream out(output_path);
            if (!out) {
                std::fprintf(stderr, "pom-opt: cannot write '%s'\n",
                             output_path.c_str());
                return 1;
            }
            out << printed;
        }
        if (want_timing)
            std::fputs(pm.timingReport().c_str(), stderr);
        return 0;
    } catch (const support::FatalError &e) {
        std::fprintf(stderr, "pom-opt: %s\n", e.what());
        return 1;
    }
}
