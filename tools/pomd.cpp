/**
 * @file
 * pomd — the POM compile daemon.
 *
 * Usage:
 *   pomd [--socket PATH] [--cache-dir DIR]
 *        [--pipeline-cache-dir DIR] [--estimator-cache-cap N]
 *        [--workers N] [--queue N] [--retry-after MS] [--jobs N]
 *        [--version] [--quiet|-q] [--verbose|-v]
 *
 * Listens on a Unix-domain socket and serves concurrent compile/DSE
 * and pass-pipeline requests (see src/service/protocol.h), keeping
 * pass registrations and the estimator cache warm across requests.
 * With --cache-dir the estimator cache AND the per-node report cache
 * (src/hls/node_cache.h) are spilled to disk and warm-loaded on the
 * next start, so even a restarted daemon answers repeated DSE
 * requests from cache. The pipeline result cache
 * (src/pass/pipeline_cache.h) is always on in the daemon;
 * --pipeline-cache-dir additionally spills it to disk so restarted
 * daemons skip already-lowered pipeline prefixes too.
 *
 * --estimator-cache-cap bounds both in-memory caches to N entries
 * each (FIFO eviction, 0 = unbounded); evictions are visible as
 * cache_evictions / node_cache_evictions in the stats frame and as
 * the dse.cache.evictions counter in metrics JSON. A long-lived
 * daemon sweeping many workloads can otherwise grow without bound.
 *
 * Clients: `pomc --connect PATH ...` (same flags as one-shot pomc),
 * plus `pomc --daemon-stats` and `pomc --daemon-shutdown`.
 *
 * SIGINT/SIGTERM trigger a clean shutdown: in-flight requests finish,
 * the cache spill is saved, and the socket file is removed.
 */

#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>

#include "service/server.h"
#include "support/diagnostics.h"
#include "support/thread_pool.h"
#include "support/version.h"

using namespace pom;

namespace {

service::Server *g_server = nullptr;

void
handleSignal(int)
{
    if (g_server != nullptr)
        g_server->stop();
}

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--socket PATH] [--cache-dir DIR] "
                 "[--pipeline-cache-dir DIR] "
                 "[--estimator-cache-cap N] "
                 "[--workers N] [--queue N] [--retry-after MS] "
                 "[--jobs N] [--version] [--quiet|-q] [--verbose|-v]\n",
                 argv0);
    return 2;
}

std::int64_t
intArg(const char *flag, const char *text)
{
    char *end = nullptr;
    long long v = std::strtoll(text, &end, 10);
    if (end == text || *end != '\0') {
        std::fprintf(stderr, "pomd: %s expects an integer, got '%s'\n",
                     flag, text);
        std::exit(2);
    }
    return v;
}

} // namespace

int
main(int argc, char **argv)
{
    service::ServerOptions options;
    for (int a = 1; a < argc; ++a) {
        std::string arg = argv[a];
        if (arg == "--socket" && a + 1 < argc) {
            options.socketPath = argv[++a];
        } else if (arg == "--cache-dir" && a + 1 < argc) {
            options.cacheDir = argv[++a];
        } else if (arg == "--pipeline-cache-dir" && a + 1 < argc) {
            options.pipelineCacheDir = argv[++a];
        } else if (arg == "--estimator-cache-cap" && a + 1 < argc) {
            std::int64_t n = intArg("--estimator-cache-cap", argv[++a]);
            if (n < 0) {
                std::fprintf(stderr,
                             "pomd: --estimator-cache-cap expects a "
                             "non-negative entry count (0 = "
                             "unbounded), got '%s'\n",
                             argv[a]);
                return 2;
            }
            options.estimatorCacheCap = static_cast<std::size_t>(n);
        } else if (arg == "--workers" && a + 1 < argc) {
            std::int64_t n = intArg("--workers", argv[++a]);
            if (n < 1 || n > 64) {
                std::fprintf(stderr, "pomd: --workers expects a count "
                                     "in [1, 64], got '%s'\n",
                             argv[a]);
                return 2;
            }
            options.workers = static_cast<int>(n);
        } else if (arg == "--queue" && a + 1 < argc) {
            std::int64_t n = intArg("--queue", argv[++a]);
            if (n < 1 || n > 4096) {
                std::fprintf(stderr, "pomd: --queue expects a limit "
                                     "in [1, 4096], got '%s'\n",
                             argv[a]);
                return 2;
            }
            options.queueLimit = static_cast<int>(n);
        } else if (arg == "--retry-after" && a + 1 < argc) {
            std::int64_t n = intArg("--retry-after", argv[++a]);
            if (n < 1 || n > 60000) {
                std::fprintf(stderr,
                             "pomd: --retry-after expects "
                             "milliseconds in [1, 60000], got '%s'\n",
                             argv[a]);
                return 2;
            }
            options.retryAfterMs = static_cast<int>(n);
        } else if (arg == "--jobs" && a + 1 < argc) {
            std::int64_t n = intArg("--jobs", argv[++a]);
            if (n < 1 || n > 256) {
                std::fprintf(stderr, "pomd: --jobs expects a worker "
                                     "count in [1, 256], got '%s'\n",
                             argv[a]);
                return 2;
            }
            support::setJobs(static_cast<int>(n));
        } else if (arg == "--version") {
            std::printf("pomd %s (protocol %s, cache %s)\n",
                        support::kVersionString, support::kProtocolName,
                        support::kCacheFormatName);
            return 0;
        } else if (arg == "--quiet" || arg == "-q") {
            support::setDiagLevel(support::DiagLevel::Error);
        } else if (arg == "--verbose" || arg == "-v") {
            support::setDiagLevel(support::DiagLevel::Debug);
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "pomd: unknown argument '%s'\n",
                         argv[a]);
            return usage(argv[0]);
        }
    }

    service::Server server(options);
    std::string error;
    if (!server.start(error)) {
        std::fprintf(stderr, "pomd: %s\n", error.c_str());
        return 1;
    }
    g_server = &server;
    std::signal(SIGINT, handleSignal);
    std::signal(SIGTERM, handleSignal);
    std::signal(SIGPIPE, SIG_IGN);

    const auto &loaded = server.loadStats();
    std::fprintf(stderr,
                 "pomd %s listening on %s (%d workers, queue %d, "
                 "cache: %zu entries warm%s, nodes: %zu warm, "
                 "pipeline: %zu entries warm%s)\n",
                 support::kVersionString, options.socketPath.c_str(),
                 options.workers, options.queueLimit, loaded.loaded,
                 options.cacheDir.empty() ? ", no spill" : "",
                 server.nodeLoadStats().loaded,
                 server.pipelineLoadStats().loaded,
                 options.pipelineCacheDir.empty() ? ", no spill" : "");
    server.run();
    std::fprintf(stderr, "pomd: shutting down after %llu requests\n",
                 static_cast<unsigned long long>(
                     server.requestsServed()));
    return 0;
}
