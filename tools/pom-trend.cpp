/**
 * @file
 * pom-trend — the perf-trend folder and regression gate.
 *
 * Usage:
 *   pom-trend --history FILE [--bench FILE] [--metrics FILE]
 *             [--append] [--check] [--baseline N] [--threshold F]
 *             [--det-threshold F] [--html FILE]
 *             [--sha SHA] [--timestamp TS]
 *   pom-trend --list-series
 *
 * Folds one benchmark run (`BENCH_dse.json`, written by
 * bench/dse_wallclock, plus optionally a pom-metrics JSON report for
 * pass timing) into a single pom-perf-trend/v1 NDJSON record keyed by
 * git SHA and timestamp, appends it to the checked-in history file
 * (`perf/history.ndjsonl`), renders a self-contained HTML trend page
 * (inline SVG, no external JS), and — the part CI cares about — gates:
 *
 *   --check compares the newest record against the median of the up to
 *   --baseline N preceding records, per tracked series. Wall-clock
 *   series are noisy across machines, so they use the loose
 *   --threshold (default 0.30 = 30%); hardware-independent series
 *   (summed best latency, cache hit rate, points explored) use the
 *   tight --det-threshold (default 0.02). Any breach prints a
 *   REGRESSION line and exits 3, so a speed or QoR regression fails
 *   the build loudly instead of landing as a silently-worse artifact.
 *
 * Order of operations: --append folds and appends first, then --check
 * judges the appended record against the history *before* it; the
 * rendered page therefore always shows the regressing point.
 *
 * Exit codes: 0 ok, 1 I/O or parse failure, 2 usage, 3 regression.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/obs.h"
#include "support/json.h"
#include "support/version.h"

namespace {

using pom::support::JsonValue;

// ----- the tracked series ------------------------------------------------

/** Gate direction: which way is worse. */
enum class Direction
{
    LowerIsBetter,  ///< regression = value rose past the threshold
    HigherIsBetter, ///< regression = value fell past the threshold
    TrackedOnly,    ///< plotted, never gated
};

struct SeriesSpec
{
    const char *key;    ///< record key in the "series" object
    const char *metric; ///< bench-doc metric name ("" = derived)
    Direction direction;
    bool deterministic; ///< hardware-independent -> tight threshold
    const char *label;  ///< HTML page label
};

/**
 * One row per plotted/gated series. Wall-clock rows are machine-noisy;
 * the deterministic rows depend only on the search itself, so any
 * movement there is a real behaviour change.
 */
constexpr SeriesSpec kSeries[] = {
    {"dse_cold_seq_seconds", "bench.dse.sweep.cold_seq_seconds",
     Direction::LowerIsBetter, false, "DSE sweep, cold sequential (s)"},
    {"dse_cold_pool_seconds", "bench.dse.sweep.cold_pool_seconds",
     Direction::LowerIsBetter, false, "DSE sweep, cold pooled (s)"},
    {"dse_warm_seconds", "bench.dse.sweep.warm_seconds",
     Direction::LowerIsBetter, false, "DSE sweep, warm cache (s)"},
    {"latency_cycles_sum", "bench.dse.sweep.latency_cycles_sum",
     Direction::LowerIsBetter, true, "Summed best latency (cycles)"},
    {"cache_hit_rate", "bench.dse.cache.hit_rate",
     Direction::HigherIsBetter, true, "Estimator-cache hit rate"},
    {"points_explored", "bench.dse.strategy.greedy.points",
     Direction::TrackedOnly, true, "Points explored (greedy)"},
    {"greedy_seconds", "bench.dse.strategy.greedy.seconds",
     Direction::LowerIsBetter, false, "Greedy strategy wall-clock (s)"},
    {"spill_warm_seconds", "bench.dse.spill.warm_seconds",
     Direction::LowerIsBetter, false, "Disk-warm sweep (s)"},
    {"pipeline_cache_hit_rate", "bench.dse.pipeline.hit_rate",
     Direction::HigherIsBetter, true, "Pipeline-cache hit rate"},
    {"pipeline_warm_seconds", "bench.dse.pipeline.warm_seconds",
     Direction::LowerIsBetter, false, "Pipeline-warm sweep (s)"},
    {"incremental_speedup", "bench.dse.incremental.speedup",
     Direction::HigherIsBetter, false,
     "Incremental-estimation speedup (x)"},
    {"node_reuse_rate", "bench.dse.incremental.node_reuse_rate",
     Direction::HigherIsBetter, true, "Node-report reuse rate"},
    {"pass_seconds_total", "", Direction::LowerIsBetter, false,
     "Total pass pipeline time (s)"},
};

// ----- one history record ------------------------------------------------

struct SeriesValue
{
    std::string key;
    double value = 0.0;
};

struct TrendRecord
{
    std::string sha = "unknown";
    std::string timestamp;
    std::string version;
    std::vector<SeriesValue> series; ///< spec order, absent = not run

    const SeriesValue *
    find(const std::string &key) const
    {
        for (const auto &s : series) {
            if (s.key == key)
                return &s;
        }
        return nullptr;
    }
};

std::string
num(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

/** Short form for console lines and tooltips (JSON keeps %.17g). */
std::string
pretty(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

std::string
recordJson(const TrendRecord &r)
{
    std::ostringstream os;
    os << "{\"schema\": \"pom-perf-trend/v1\", \"sha\": "
       << pom::support::jsonQuote(r.sha) << ", \"timestamp\": "
       << pom::support::jsonQuote(r.timestamp) << ", \"version\": "
       << pom::support::jsonQuote(r.version) << ", \"series\": {";
    bool first = true;
    for (const auto &s : r.series) {
        os << (first ? "" : ", ") << pom::support::jsonQuote(s.key)
           << ": " << num(s.value);
        first = false;
    }
    os << "}}";
    return os.str();
}

bool
parseRecord(const std::string &line, TrendRecord &out,
            std::string &error)
{
    JsonValue doc;
    if (!pom::support::parseJson(line, doc, error))
        return false;
    if (!doc.isObject()) {
        error = "record is not a JSON object";
        return false;
    }
    const JsonValue *schema = doc.find("schema");
    if (schema == nullptr ||
        schema->asString() != "pom-perf-trend/v1") {
        error = "record has no pom-perf-trend/v1 schema tag";
        return false;
    }
    out = TrendRecord();
    if (const auto *v = doc.find("sha"))
        out.sha = v->asString();
    if (const auto *v = doc.find("timestamp"))
        out.timestamp = v->asString();
    if (const auto *v = doc.find("version"))
        out.version = v->asString();
    const JsonValue *series = doc.find("series");
    if (series == nullptr || !series->isObject()) {
        error = "record has no series object";
        return false;
    }
    for (const auto &[key, value] : series->members)
        out.series.push_back({key, value.asDouble()});
    return true;
}

// ----- folding a bench run into a record ---------------------------------

bool
readFile(const std::string &path, std::string &out, std::string &error)
{
    std::ifstream in(path);
    if (!in) {
        error = "cannot open '" + path + "'";
        return false;
    }
    std::ostringstream os;
    os << in.rdbuf();
    out = os.str();
    return true;
}

/** name -> value over a pom-bench/v1 or pom-metrics/v1 document. */
bool
metricValues(const std::string &path,
             std::vector<std::pair<std::string, double>> &out,
             TrendRecord *header, std::string &error)
{
    std::string text;
    if (!readFile(path, text, error))
        return false;
    JsonValue doc;
    if (!pom::support::parseJson(text, doc, error)) {
        error = path + ": " + error;
        return false;
    }
    const JsonValue *schema = doc.isObject() ? doc.find("schema") : nullptr;
    if (schema == nullptr || (schema->asString() != "pom-bench/v1" &&
                              schema->asString() != "pom-metrics/v1")) {
        error = path + ": not a pom-bench/v1 or pom-metrics/v1 document";
        return false;
    }
    if (header != nullptr) {
        if (const auto *v = doc.find("sha"))
            header->sha = v->asString(header->sha);
        if (const auto *v = doc.find("timestamp"))
            header->timestamp = v->asString(header->timestamp);
        if (const auto *v = doc.find("version"))
            header->version = v->asString(header->version);
    }
    const JsonValue *metrics = doc.find("metrics");
    if (metrics == nullptr ||
        metrics->kind != JsonValue::Kind::Array) {
        error = path + ": no metrics array";
        return false;
    }
    for (const auto &entry : metrics->items) {
        const JsonValue *name = entry.find("name");
        const JsonValue *value = entry.find("value");
        if (name == nullptr)
            continue;
        // Histogram entries carry "sum"/"count" instead of "value";
        // fold them as their sum so totals stay comparable.
        double v = value != nullptr ? value->asDouble()
                   : entry.find("sum") != nullptr
                       ? entry.find("sum")->asDouble()
                       : 0.0;
        out.emplace_back(name->asString(), v);
    }
    return true;
}

bool
foldRecord(const std::string &benchPath, const std::string &metricsPath,
           TrendRecord &out, std::string &error)
{
    out = TrendRecord();
    out.version = pom::support::kVersionString;
    std::vector<std::pair<std::string, double>> values;
    if (!metricValues(benchPath, values, &out, error))
        return false;
    if (!metricsPath.empty()) {
        // The separate metrics report (e.g. a pomc --metrics-out run)
        // contributes the pass.* timing; its header keys are ignored.
        if (!metricValues(metricsPath, values, nullptr, error))
            return false;
    }
    auto lookup = [&values](const std::string &name, double &v) {
        for (const auto &[n, value] : values) {
            if (n == name) {
                v = value;
                return true;
            }
        }
        return false;
    };
    for (const auto &spec : kSeries) {
        double v = 0.0;
        if (spec.metric[0] != '\0') {
            if (lookup(spec.metric, v))
                out.series.push_back({spec.key, v});
            continue;
        }
        // Derived: pass_seconds_total = sum of pass.seconds.* values.
        if (std::strcmp(spec.key, "pass_seconds_total") == 0) {
            double total = 0.0;
            bool any = false;
            for (const auto &[n, value] : values) {
                if (n.rfind("pass.seconds.", 0) == 0) {
                    total += value;
                    any = true;
                }
            }
            if (any)
                out.series.push_back({spec.key, total});
        }
    }
    return true;
}

// ----- the regression gate -----------------------------------------------

struct GateOptions
{
    int baseline = 5;          ///< records to take the median over
    double threshold = 0.30;   ///< noisy (wall-clock) series
    double detThreshold = 0.02; ///< deterministic series
};

double
median(std::vector<double> v)
{
    std::sort(v.begin(), v.end());
    std::size_t n = v.size();
    return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

/**
 * Judge @p candidate against the records before it. Returns the number
 * of breached series and prints one verdict line per gated series.
 */
int
check(const std::vector<TrendRecord> &history,
      const TrendRecord &candidate, const GateOptions &opt)
{
    int breaches = 0;
    for (const auto &spec : kSeries) {
        const SeriesValue *current = candidate.find(spec.key);
        if (current == nullptr)
            continue; // series not produced by this run
        if (spec.direction == Direction::TrackedOnly)
            continue;
        std::vector<double> base;
        for (auto it = history.rbegin();
             it != history.rend() &&
             base.size() < static_cast<std::size_t>(opt.baseline);
             ++it) {
            if (const SeriesValue *v = it->find(spec.key))
                base.push_back(v->value);
        }
        if (base.empty()) {
            std::printf("trend: %-22s %s (new series, no baseline)\n",
                        spec.key, pretty(current->value).c_str());
            continue;
        }
        double ref = median(base);
        if (std::fabs(ref) < 1e-12)
            continue; // nothing meaningful to compare against
        double change = (current->value - ref) / ref;
        double limit =
            spec.deterministic ? opt.detThreshold : opt.threshold;
        bool bad = spec.direction == Direction::LowerIsBetter
                       ? change > limit
                       : change < -limit;
        if (bad) {
            ++breaches;
            std::fprintf(stderr,
                         "trend: REGRESSION %s: %s vs baseline %s "
                         "(%+.1f%%, limit %.1f%%, %zu-record median)\n",
                         spec.key, pretty(current->value).c_str(),
                         pretty(ref).c_str(), 100.0 * change,
                         100.0 * limit, base.size());
        } else {
            std::printf("trend: %-22s %s vs %s (%+.1f%%) ok\n",
                        spec.key, pretty(current->value).c_str(),
                        pretty(ref).c_str(), 100.0 * change);
        }
    }
    return breaches;
}

// ----- the HTML page -----------------------------------------------------

std::string
htmlEscape(const std::string &text)
{
    std::string out;
    for (char c : text) {
        switch (c) {
          case '&': out += "&amp;"; break;
          case '<': out += "&lt;"; break;
          case '>': out += "&gt;"; break;
          case '"': out += "&quot;"; break;
          default: out += c;
        }
    }
    return out;
}

/** One inline-SVG chart per series; tooltips via <title>, no JS. */
std::string
renderHtml(const std::vector<TrendRecord> &history)
{
    const int width = 640, height = 160, pad = 8;
    std::ostringstream os;
    os << "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n"
       << "<title>POM performance trend</title>\n<style>\n"
       << "body{font:14px sans-serif;max-width:720px;margin:2em auto;"
       << "color:#222}\n"
       << "h2{margin:1.2em 0 .2em;font-size:15px}\n"
       << ".meta{color:#777;font-size:12px}\n"
       << "svg{background:#fafafa;border:1px solid #ddd}\n"
       << "polyline{fill:none;stroke:#2266cc;stroke-width:1.5}\n"
       << "circle{fill:#2266cc}\ncircle:hover{fill:#cc3322}\n"
       << "</style></head><body>\n<h1>POM performance trend</h1>\n";
    if (!history.empty()) {
        os << "<p class=\"meta\">" << history.size()
           << " records, latest " << htmlEscape(history.back().sha)
           << " @ " << htmlEscape(history.back().timestamp)
           << " (v" << htmlEscape(history.back().version) << ")</p>\n";
    }
    for (const auto &spec : kSeries) {
        // Collect (recordIndex, value) for records carrying the series.
        std::vector<std::pair<std::size_t, double>> points;
        for (std::size_t i = 0; i < history.size(); ++i) {
            if (const SeriesValue *v = history[i].find(spec.key))
                points.emplace_back(i, v->value);
        }
        if (points.empty())
            continue;
        double lo = points[0].second, hi = points[0].second;
        for (const auto &[i, v] : points) {
            lo = std::min(lo, v);
            hi = std::max(hi, v);
        }
        double span = hi - lo;
        if (span <= 0.0)
            span = std::fabs(hi) > 0.0 ? std::fabs(hi) * 0.1 : 1.0;
        lo -= span * 0.05;
        hi += span * 0.05;
        auto x = [&](std::size_t rank) {
            return points.size() < 2
                       ? width / 2.0
                       : pad + (width - 2.0 * pad) *
                                   static_cast<double>(rank) /
                                   static_cast<double>(points.size() - 1);
        };
        auto y = [&](double v) {
            return height - pad -
                   (height - 2.0 * pad) * (v - lo) / (hi - lo);
        };
        os << "<h2>" << htmlEscape(spec.label) << " <span class=\"meta\">("
           << spec.key << ", "
           << (spec.direction == Direction::LowerIsBetter
                   ? "lower is better"
                   : spec.direction == Direction::HigherIsBetter
                         ? "higher is better"
                         : "tracked")
           << ")</span></h2>\n";
        os << "<svg width=\"" << width << "\" height=\"" << height
           << "\" viewBox=\"0 0 " << width << " " << height << "\">\n";
        os << "<polyline points=\"";
        for (std::size_t rank = 0; rank < points.size(); ++rank)
            os << (rank ? " " : "") << num(x(rank)) << ","
               << num(y(points[rank].second));
        os << "\"/>\n";
        for (std::size_t rank = 0; rank < points.size(); ++rank) {
            const auto &[i, v] = points[rank];
            os << "<circle cx=\"" << num(x(rank)) << "\" cy=\""
               << num(y(v)) << "\" r=\"3\"><title>"
               << htmlEscape(history[i].sha) << " @ "
               << htmlEscape(history[i].timestamp) << ": " << pretty(v)
               << "</title></circle>\n";
        }
        os << "</svg>\n";
    }
    os << "</body></html>\n";
    return os.str();
}

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --history FILE [--bench FILE] [--metrics FILE]\n"
        "          [--append] [--check] [--baseline N] [--threshold F]\n"
        "          [--det-threshold F] [--html FILE] [--sha SHA]\n"
        "          [--timestamp TS]\n"
        "       %s --list-series\n",
        argv0, argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string history_path, bench_path, metrics_path, html_path;
    std::string sha_override, timestamp_override;
    bool do_append = false, do_check = false;
    GateOptions gate;

    for (int a = 1; a < argc; ++a) {
        std::string arg = argv[a];
        auto value = [&](const char *flag) -> const char * {
            if (a + 1 >= argc) {
                std::fprintf(stderr, "pom-trend: %s needs a value\n",
                             flag);
                std::exit(2);
            }
            return argv[++a];
        };
        if (arg == "--history") {
            history_path = value("--history");
        } else if (arg == "--bench") {
            bench_path = value("--bench");
        } else if (arg == "--metrics") {
            metrics_path = value("--metrics");
        } else if (arg == "--html") {
            html_path = value("--html");
        } else if (arg == "--sha") {
            sha_override = value("--sha");
        } else if (arg == "--timestamp") {
            timestamp_override = value("--timestamp");
        } else if (arg == "--append") {
            do_append = true;
        } else if (arg == "--check") {
            do_check = true;
        } else if (arg == "--baseline") {
            gate.baseline = std::atoi(value("--baseline"));
            if (gate.baseline < 1) {
                std::fprintf(stderr,
                             "pom-trend: --baseline must be >= 1\n");
                return 2;
            }
        } else if (arg == "--threshold") {
            gate.threshold = std::atof(value("--threshold"));
        } else if (arg == "--det-threshold") {
            gate.detThreshold = std::atof(value("--det-threshold"));
        } else if (arg == "--list-series") {
            for (const auto &spec : kSeries) {
                std::printf("%-22s %-6s %s\n", spec.key,
                            spec.deterministic ? "exact" : "noisy",
                            spec.label);
            }
            return 0;
        } else {
            return usage(argv[0]);
        }
    }
    if (history_path.empty())
        return usage(argv[0]);
    if (do_append && bench_path.empty()) {
        std::fprintf(stderr, "pom-trend: --append needs --bench\n");
        return 2;
    }

    // 1. Load the existing history (a missing file is an empty one).
    std::vector<TrendRecord> history;
    {
        std::ifstream in(history_path);
        std::string line;
        int lineno = 0;
        while (in && std::getline(in, line)) {
            ++lineno;
            if (line.empty())
                continue;
            TrendRecord record;
            std::string error;
            if (!parseRecord(line, record, error)) {
                std::fprintf(stderr, "pom-trend: %s:%d: %s\n",
                             history_path.c_str(), lineno,
                             error.c_str());
                return 1;
            }
            history.push_back(std::move(record));
        }
    }

    // 2. Fold this run into a candidate record.
    TrendRecord candidate;
    bool have_candidate = false;
    if (!bench_path.empty()) {
        std::string error;
        if (!foldRecord(bench_path, metrics_path, candidate, error)) {
            std::fprintf(stderr, "pom-trend: %s\n", error.c_str());
            return 1;
        }
        if (!sha_override.empty())
            candidate.sha = sha_override;
        if (!timestamp_override.empty())
            candidate.timestamp = timestamp_override;
        have_candidate = true;
    }

    // 3. Append before checking, so the page shows regressing points.
    if (do_append) {
        std::ofstream out(history_path, std::ios::app);
        if (!out) {
            std::fprintf(stderr, "pom-trend: cannot write '%s'\n",
                         history_path.c_str());
            return 1;
        }
        out << recordJson(candidate) << "\n";
        if (!out) {
            std::fprintf(stderr, "pom-trend: write to '%s' failed\n",
                         history_path.c_str());
            return 1;
        }
    }

    int breaches = 0;
    if (do_check) {
        // Judge the candidate (or, with no --bench, the newest record)
        // against the history strictly before it.
        std::vector<TrendRecord> before = history;
        TrendRecord subject;
        if (have_candidate) {
            subject = candidate;
        } else if (!history.empty()) {
            subject = history.back();
            before.pop_back();
        } else {
            std::fprintf(stderr,
                         "pom-trend: --check needs --bench or a "
                         "non-empty history\n");
            return 2;
        }
        breaches = check(before, subject, gate);
    }

    if (!html_path.empty()) {
        std::vector<TrendRecord> all = history;
        if (do_append)
            all.push_back(candidate);
        if (!pom::obs::writeFile(html_path, renderHtml(all))) {
            std::fprintf(stderr, "pom-trend: cannot write '%s'\n",
                         html_path.c_str());
            return 1;
        }
    }

    if (breaches > 0) {
        std::fprintf(stderr,
                     "pom-trend: %d series regressed beyond threshold\n",
                     breaches);
        return 3;
    }
    return 0;
}
