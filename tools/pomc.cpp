/**
 * @file
 * pomc — the POM command-line compiler driver.
 *
 * Usage:
 *   pomc <workload> [size] [--dse] [--framework pom|scalehls|polsca|
 *        pluto|none] [--strategy greedy|beam|anneal] [--resources
 *        FRACTION] [--jobs N] [--emit] [--ast] [--dsl] [--verify]
 *        [--fuzz N] [--seed S] [--timing] [--trace-out FILE]
 *        [--metrics-out FILE] [--dse-journal FILE] [--frontier-out FILE]
 *        [--replay-journal FILE --point ID] [--cache-dir DIR]
 *        [--pipeline-cache on|off] [--pipeline-cache-dir DIR]
 *        [--incremental-estimate on|off] [--dse-prune on|off]
 *        [--debug-fingerprints] [--connect SOCK] [--quiet|-q]
 *        [--verbose|-v]
 *   pomc --connect SOCK --daemon-stats [--format text|json|prom]
 *   pomc --connect SOCK --daemon-shutdown
 *   pomc --version
 *
 * Compiles one of the built-in benchmark workloads (see `pomc --list`)
 * and prints the synthesis report; optionally the generated HLS C
 * (--emit), the polyhedral AST (--ast), or the canonical DSL source
 * (--dsl).
 *
 * --verify runs the compiled design through the differential
 * equivalence oracle (interpret it against the unscheduled reference).
 * --fuzz N skips compilation and instead throws N random-but-legal
 * schedules at the workload, shrinking any oracle failure to a minimal
 * DSL reproducer; --seed S makes the run reproducible. Both default to
 * an interpreter-friendly size unless one is given explicitly.
 *
 * --timing aggregates per-pass wall-clock time across every lowering
 * pipeline the run executes (a DSE sweep runs thousands) and prints one
 * breakdown at the end.
 *
 * Observability (src/obs):
 *   --trace-out FILE    write a Chrome trace-event JSON of the whole
 *                       run (driver -> passes -> DSE stages -> HLS
 *                       estimator), loadable in chrome://tracing or
 *                       https://ui.perfetto.dev. Setting the POM_TRACE
 *                       environment variable to a path (or "1" for
 *                       pom-trace.json) does the same.
 *   --metrics-out FILE  write the flat metrics JSON report (pass
 *                       counters, estimator gauges, emitter stats).
 *   --dse-journal FILE  write the machine-readable DSE search journal:
 *                       one event per explored design point with the
 *                       applied primitives, estimated latency, resource
 *                       usage and accept/reject verdict, plus stage-1
 *                       decisions and stage-2 bottleneck selections.
 *   --frontier-out FILE write the pom-dse-journal/v2 document: the same
 *                       events plus the per-round Pareto frontier over
 *                       (latency, DSP, BRAM, LUT). Requires a POM DSE
 *                       run (--dse / --framework pom).
 *
 * Search strategy (src/dse/strategy.h):
 *   --strategy NAME     stage-2 search driver: greedy (the paper's
 *                       bottleneck walk, the default), beam, or anneal.
 *                       All three record the same journal schema and
 *                       are byte-deterministic at any --jobs count.
 *   -q / --quiet        errors only; -v / --verbose: debug diagnostics.
 *
 * Parallel search (src/support/thread_pool.h):
 *   --jobs N            worker threads for the DSE's speculative
 *                       candidate evaluation (equivalent to POM_JOBS=N;
 *                       default: hardware concurrency). The journal and
 *                       the selected design are bit-identical for every
 *                       N.
 *
 * Journal replay (src/dse/replayPoint):
 *   --replay-journal FILE --point ID
 *                       skip the search and re-materialize design point
 *                       ID of a previously recorded --dse-journal file:
 *                       re-run stage 1, apply the journaled parallelism
 *                       degrees, lower and estimate. The workload and
 *                       size must match the recording run. Combine with
 *                       --emit to regenerate the point's HLS C.
 *
 * Persistent estimator cache (src/hls/estimator_cache.h):
 *   --cache-dir DIR     load the content-addressed estimator-cache
 *                       spill from DIR before the run and save it
 *                       after, so a later run (or a pomd daemon using
 *                       the same DIR) warm-starts with dse.cache.hits
 *                       instead of re-estimating. Same on-disk format
 *                       as `pomd --cache-dir`.
 *
 * Pipeline result cache (src/pass/pipeline_cache.h):
 *   --pipeline-cache on|off
 *                       memoize per-pass lowering results keyed on the
 *                       pipeline-state fingerprint, so a DSE sweep
 *                       skips the longest already-seen prefix of each
 *                       candidate's pipeline. Off by default in one
 *                       shot runs; journals, IR and HLS C are
 *                       byte-identical either way.
 *   --pipeline-cache-dir DIR
 *                       same, plus load/save the content-addressed
 *                       spill under DIR (implies --pipeline-cache on).
 *                       Same on-disk format as `pomd
 *                       --pipeline-cache-dir`.
 *
 * Incremental estimation (src/hls/node_cache.h, src/hls/bound.h):
 *   --incremental-estimate on|off
 *                       compose each candidate's synthesis report from
 *                       memoized per-node reports so a stage-2 step
 *                       that doubles one unit re-estimates only that
 *                       unit. On by default; reports and journals are
 *                       byte-identical either way (the off switch
 *                       exists for differential testing and timing).
 *   --dse-prune on|off  reject candidates whose admissible resource
 *                       lower bound already exceeds the device budget
 *                       without lowering or estimating them. The search
 *                       trajectory is unchanged (the bound never
 *                       exceeds the true estimate); journaled numbers
 *                       of pruned points are the bound's, hence off by
 *                       default.
 *   --debug-fingerprints
 *                       dump the canonical design-fingerprint text of
 *                       every cache key as a Debug diagnostic (use with
 *                       -v); costs what the streaming hash saves.
 *
 * Daemon client mode (src/service):
 *   --connect SOCK      send the compile to a running `pomd` daemon at
 *                       Unix socket SOCK instead of compiling in
 *                       process. The printed report and any
 *                       --dse-journal/--frontier-out file are
 *                       byte-identical to the one-shot run. "busy"
 *                       backpressure responses are retried with the
 *                       daemon's hint.
 *   --daemon-stats      print the daemon's request/cache counters,
 *                       latency percentiles and uptime. --format picks
 *                       the rendering: "text" (default), "json" (the
 *                       raw stats frame), or "prom" (Prometheus text
 *                       exposition for scraping).
 *   --daemon-shutdown   ask the daemon to spill its cache and exit.
 *   --version           print the POM version (also stamped into the
 *                       wire protocol and the cache spill format).
 *
 * Examples:
 *   pomc gemm 1024 --dse --jobs 8
 *   pomc gemm 256 --dse --dse-journal j.json
 *   pomc gemm 256 --replay-journal j.json --point 5 --emit
 *   pomc gemm 256 --dse --cache-dir .pom-cache
 *   pomc gemm 256 --dse --connect pomd.sock --frontier-out f.json
 *
 * Examples:
 *   pomc gemm 1024 --dse --emit
 *   pomc bicg 4096 --framework scalehls
 *   pomc seidel 256 --dse --ast
 *   pomc gemm --dse --verify
 *   pomc jacobi2d --fuzz 25 --seed 1
 *   pomc gemm 256 --dse --trace-out t.json --dse-journal j.json
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "baselines/baselines.h"
#include "check/fuzzer.h"
#include "check/oracle.h"
#include "driver/compiler.h"
#include "dse/dse.h"
#include "dse/strategy.h"
#include "emit/hls_emitter.h"
#include "hls/estimator_cache.h"
#include "hls/node_cache.h"
#include "obs/journal.h"
#include "obs/obs.h"
#include "pass/pass_manager.h"
#include "pass/pipeline_cache.h"
#include "service/client.h"
#include "support/diagnostics.h"
#include "support/string_util.h"
#include "support/thread_pool.h"
#include "support/version.h"
#include "workloads/workloads.h"

using namespace pom;

namespace {

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s <workload> [size] [--dse] "
                 "[--framework pom|scalehls|polsca|pluto|none] "
                 "[--strategy greedy|beam|anneal] "
                 "[--resources FRACTION] [--jobs N] [--emit] [--ast] "
                 "[--dsl] [--verify] [--fuzz N] [--seed S] [--timing] "
                 "[--trace-out FILE] [--metrics-out FILE] "
                 "[--dse-journal FILE] [--frontier-out FILE] "
                 "[--replay-journal FILE --point ID] "
                 "[--cache-dir DIR] [--pipeline-cache on|off] "
                 "[--pipeline-cache-dir DIR] "
                 "[--incremental-estimate on|off] [--dse-prune on|off] "
                 "[--debug-fingerprints] [--connect SOCK] "
                 "[--quiet|-q] [--verbose|-v]\n"
                 "       %s --connect SOCK --daemon-stats "
                 "[--format text|json|prom] | --daemon-shutdown\n"
                 "       %s --version | --list\n",
                 argv0, argv0, argv0);
    return 2;
}

/** Strict flag-argument parsers: reject garbage instead of reading 0. */
std::int64_t
intArg(const char *flag, const char *text)
{
    std::int64_t v = 0;
    if (!support::parseInt64(text, v)) {
        std::fprintf(stderr, "pomc: %s expects an integer, got '%s'\n",
                     flag, text);
        std::exit(2);
    }
    return v;
}

double
doubleArg(const char *flag, const char *text)
{
    double v = 0.0;
    if (!support::parseDouble(text, v)) {
        std::fprintf(stderr, "pomc: %s expects a number, got '%s'\n",
                     flag, text);
        std::exit(2);
    }
    return v;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage(argv[0]);

    std::string name;
    std::int64_t size = 1024;
    bool size_set = false;
    std::string framework = "none";
    double fraction = 1.0;
    bool want_emit = false, want_ast = false, want_dsl = false;
    bool want_verify = false, want_timing = false;
    int fuzz_cases = 0;
    unsigned seed = 1;
    std::string trace_out = obs::traceEnvPath();
    std::string metrics_out, journal_out, frontier_out;
    std::string replay_journal;
    int replay_point = -1;
    dse::StrategyKind strategy = dse::StrategyKind::Greedy;
    std::string connect_sock, cache_dir;
    std::string pipeline_cache_dir;
    bool pipeline_cache = false, pipeline_cache_flag = false;
    bool incremental_estimate = true;
    bool dse_prune = false;
    std::int64_t jobs = 0; ///< 0 = default; forwarded to --connect
    bool daemon_stats = false, daemon_shutdown = false;
    std::string stats_format = "text"; ///< --daemon-stats rendering

    // --strategy is accepted both space- and '='-separated; an unknown
    // name is a hard error (never a silent fallback to greedy).
    auto parse_strategy = [&strategy](const std::string &text) {
        if (!dse::parseStrategy(text, strategy)) {
            std::fprintf(stderr,
                         "pomc: unknown --strategy '%s' (valid: %s)\n",
                         text.c_str(), dse::strategyNames().c_str());
            std::exit(2);
        }
    };

    for (int a = 1; a < argc; ++a) {
        std::string arg = argv[a];
        if (arg == "--list") {
            for (const auto &w : workloads::allNames())
                std::printf("%s\n", w.c_str());
            return 0;
        } else if (arg == "--version") {
            std::printf("pomc %s (protocol %s, cache %s)\n",
                        support::kVersionString, support::kProtocolName,
                        support::kCacheFormatName);
            return 0;
        } else if (arg == "--connect" && a + 1 < argc) {
            connect_sock = argv[++a];
        } else if (arg == "--cache-dir" && a + 1 < argc) {
            cache_dir = argv[++a];
        } else if (arg == "--pipeline-cache" && a + 1 < argc) {
            std::string mode = argv[++a];
            if (mode != "on" && mode != "off") {
                std::fprintf(stderr,
                             "pomc: --pipeline-cache expects on or "
                             "off, got '%s'\n", mode.c_str());
                return 2;
            }
            pipeline_cache = (mode == "on");
            pipeline_cache_flag = true;
        } else if (arg == "--pipeline-cache-dir" && a + 1 < argc) {
            pipeline_cache_dir = argv[++a];
            pipeline_cache_flag = true;
        } else if (arg == "--incremental-estimate" && a + 1 < argc) {
            std::string mode = argv[++a];
            if (mode != "on" && mode != "off") {
                std::fprintf(stderr,
                             "pomc: --incremental-estimate expects on "
                             "or off, got '%s'\n", mode.c_str());
                return 2;
            }
            incremental_estimate = (mode == "on");
        } else if (arg == "--dse-prune" && a + 1 < argc) {
            std::string mode = argv[++a];
            if (mode != "on" && mode != "off") {
                std::fprintf(stderr,
                             "pomc: --dse-prune expects on or off, "
                             "got '%s'\n", mode.c_str());
                return 2;
            }
            dse_prune = (mode == "on");
        } else if (arg == "--debug-fingerprints") {
            hls::setFingerprintDebugDump(true);
        } else if (arg == "--daemon-stats") {
            daemon_stats = true;
        } else if (arg == "--format" && a + 1 < argc) {
            stats_format = argv[++a];
            if (stats_format != "text" && stats_format != "json" &&
                stats_format != "prom") {
                std::fprintf(stderr,
                             "pomc: unknown --format '%s' (valid: "
                             "text, json, prom)\n",
                             stats_format.c_str());
                return 2;
            }
        } else if (arg == "--daemon-shutdown") {
            daemon_shutdown = true;
        } else if (arg == "--trace-out" && a + 1 < argc) {
            trace_out = argv[++a];
        } else if (arg == "--metrics-out" && a + 1 < argc) {
            metrics_out = argv[++a];
        } else if (arg == "--dse-journal" && a + 1 < argc) {
            journal_out = argv[++a];
        } else if (arg == "--frontier-out" && a + 1 < argc) {
            frontier_out = argv[++a];
        } else if (arg == "--strategy" && a + 1 < argc) {
            parse_strategy(argv[++a]);
        } else if (arg.rfind("--strategy=", 0) == 0) {
            parse_strategy(arg.substr(std::string("--strategy=").size()));
        } else if (arg == "--replay-journal" && a + 1 < argc) {
            replay_journal = argv[++a];
        } else if (arg == "--point" && a + 1 < argc) {
            std::int64_t p = intArg("--point", argv[++a]);
            if (p < 0 || p > 1000000) {
                std::fprintf(stderr, "pomc: --point expects a design "
                                     "point index, got '%s'\n", argv[a]);
                return 2;
            }
            replay_point = static_cast<int>(p);
        } else if (arg == "--jobs" && a + 1 < argc) {
            std::int64_t n = intArg("--jobs", argv[++a]);
            if (n < 1 || n > 256) {
                std::fprintf(stderr, "pomc: --jobs expects a worker "
                                     "count in [1, 256], got '%s'\n",
                             argv[a]);
                return 2;
            }
            support::setJobs(static_cast<int>(n));
            jobs = n; // --connect forwards it as the request override
        } else if (arg == "--quiet" || arg == "-q") {
            support::setDiagLevel(support::DiagLevel::Error);
        } else if (arg == "--verbose" || arg == "-v") {
            support::setDiagLevel(support::DiagLevel::Debug);
        } else if (arg == "--dse") {
            framework = "pom";
        } else if (arg == "--framework" && a + 1 < argc) {
            framework = argv[++a];
        } else if (arg == "--resources" && a + 1 < argc) {
            fraction = doubleArg("--resources", argv[++a]);
            if (fraction <= 0.0 || fraction > 1.0) {
                std::fprintf(stderr,
                             "pomc: --resources expects a fraction in "
                             "(0, 1], got %g\n", fraction);
                return 2;
            }
        } else if (arg == "--emit") {
            want_emit = true;
        } else if (arg == "--ast") {
            want_ast = true;
        } else if (arg == "--dsl") {
            want_dsl = true;
        } else if (arg == "--verify") {
            want_verify = true;
        } else if (arg == "--timing") {
            want_timing = true;
        } else if (arg == "--fuzz" && a + 1 < argc) {
            std::int64_t n = intArg("--fuzz", argv[++a]);
            if (n <= 0 || n > 1000000) {
                std::fprintf(stderr, "pomc: --fuzz expects a positive "
                                     "case count, got '%s'\n", argv[a]);
                return 2;
            }
            fuzz_cases = static_cast<int>(n);
        } else if (arg == "--seed" && a + 1 < argc) {
            std::int64_t s = intArg("--seed", argv[++a]);
            if (s < 0 || s > 0xffffffffLL) {
                std::fprintf(stderr, "pomc: --seed expects a 32-bit "
                                     "unsigned value, got '%s'\n",
                             argv[a]);
                return 2;
            }
            seed = static_cast<unsigned>(s);
        } else if (!arg.empty() && arg[0] != '-') {
            // First positional token is the workload, second the size.
            if (name.empty()) {
                name = arg;
                continue;
            }
            size = intArg("size", arg.c_str());
            if (size <= 0) {
                std::fprintf(stderr, "pomc: size must be positive, got "
                                     "'%s'\n", arg.c_str());
                return 2;
            }
            size_set = true;
        } else {
            return usage(argv[0]);
        }
    }

    // Daemon control methods need a socket but no workload.
    if (daemon_stats || daemon_shutdown) {
        if (connect_sock.empty()) {
            std::fprintf(stderr, "pomc: --daemon-stats and "
                                 "--daemon-shutdown require "
                                 "--connect SOCK\n");
            return 2;
        }
        service::Request req;
        req.version = support::kVersionString;
        req.method = daemon_stats ? "stats" : "shutdown";
        service::Response resp;
        std::string error;
        if (!service::callDaemon(connect_sock, req, resp, error)) {
            std::fprintf(stderr, "pomc: %s\n", error.c_str());
            return 1;
        }
        if (resp.status != "ok") {
            std::fprintf(stderr, "pomc: daemon error: %s\n",
                         resp.error.c_str());
            return 1;
        }
        if (daemon_stats && stats_format == "json") {
            // The raw stats frame is already one canonical JSON
            // document; scrapers get exactly what the wire carried.
            std::printf("%s\n", service::encodeResponse(resp).c_str());
        } else if (daemon_stats && stats_format == "prom") {
            std::fputs(service::statsPrometheus(resp).c_str(), stdout);
        } else if (daemon_stats) {
            std::printf("daemon:    %s (version %s, up %.1fs)\n",
                        connect_sock.c_str(), resp.version.c_str(),
                        resp.uptimeSeconds);
            std::printf("requests:  %lld served, %lld queued "
                        "(high-water %lld)\n",
                        static_cast<long long>(resp.requestsServed),
                        static_cast<long long>(resp.queueDepth),
                        static_cast<long long>(resp.queueDepthMax));
            std::printf("cache:     %lld hits, %lld misses, %lld "
                        "entries (%lld loaded from disk, hit rate "
                        "%.2f)\n",
                        static_cast<long long>(resp.cacheHits),
                        static_cast<long long>(resp.cacheMisses),
                        static_cast<long long>(resp.cacheSize),
                        static_cast<long long>(resp.cacheLoaded),
                        resp.cacheHitRate);
            std::printf("pipeline:  %lld hits, %lld misses, %lld "
                        "entries (%lld loaded from disk, hit rate "
                        "%.2f)\n",
                        static_cast<long long>(resp.pipelineCacheHits),
                        static_cast<long long>(resp.pipelineCacheMisses),
                        static_cast<long long>(resp.pipelineCacheSize),
                        static_cast<long long>(resp.pipelineCacheLoaded),
                        resp.pipelineCacheHitRate);
            std::printf("nodes:     %lld hits, %lld misses, %lld "
                        "entries (%lld loaded from disk, hit rate "
                        "%.2f)\n",
                        static_cast<long long>(resp.nodeCacheHits),
                        static_cast<long long>(resp.nodeCacheMisses),
                        static_cast<long long>(resp.nodeCacheSize),
                        static_cast<long long>(resp.nodeCacheLoaded),
                        resp.nodeCacheHitRate);
            if (resp.cacheEvictions > 0 || resp.nodeCacheEvictions > 0) {
                std::printf("evicted:   %lld estimator, %lld node "
                            "entries (--estimator-cache-cap)\n",
                            static_cast<long long>(resp.cacheEvictions),
                            static_cast<long long>(
                                resp.nodeCacheEvictions));
            }
            std::printf("queue ms:  p50 %.3f, p90 %.3f, p99 %.3f "
                        "(%lld samples)\n",
                        resp.queueWaitMs.p50, resp.queueWaitMs.p90,
                        resp.queueWaitMs.p99,
                        static_cast<long long>(resp.queueWaitMs.count));
            std::printf("service ms: p50 %.3f, p90 %.3f, p99 %.3f "
                        "(%lld samples)\n",
                        resp.serviceMs.p50, resp.serviceMs.p90,
                        resp.serviceMs.p99,
                        static_cast<long long>(resp.serviceMs.count));
        } else {
            std::printf("daemon at %s shut down\n",
                        connect_sock.c_str());
        }
        return 0;
    }

    if (name.empty())
        return usage(argv[0]);
    if (!workloads::isKnown(name)) {
        std::fprintf(stderr,
                     "pomc: unknown workload '%s' (try --list)\n",
                     name.c_str());
        return 2;
    }

    // Client mode: ship the compile to a pomd daemon. Journals come
    // back in the response, byte-identical to a one-shot run; local
    // obs stays off so nothing is double-recorded.
    if (!connect_sock.empty()) {
        if (fuzz_cases > 0 || want_verify || !replay_journal.empty() ||
            want_ast || want_dsl || !cache_dir.empty() ||
            pipeline_cache_flag) {
            std::fprintf(stderr,
                         "pomc: --connect supports plain compile runs "
                         "only (no --fuzz/--verify/--replay-journal/"
                         "--ast/--dsl/--cache-dir/--pipeline-cache"
                         "[-dir]; the daemon owns the caches)\n");
            return 2;
        }
        if (!journal_out.empty() && !frontier_out.empty()) {
            std::fprintf(stderr,
                         "pomc: --connect returns one journal per "
                         "request; pick --dse-journal or "
                         "--frontier-out\n");
            return 2;
        }
        if (!frontier_out.empty() && framework != "pom") {
            std::fprintf(stderr, "pomc: --frontier-out requires a POM "
                                 "DSE run (--dse or --framework pom)\n");
            return 2;
        }
        service::Request req;
        req.version = support::kVersionString;
        req.method = "compile";
        req.workload = name;
        req.size = size;
        req.framework = framework;
        req.strategy = dse::strategyName(strategy);
        req.resourceFraction = fraction;
        req.emit = want_emit;
        req.jobs = jobs;
        if (!journal_out.empty())
            req.journal = "v1";
        else if (!frontier_out.empty())
            req.journal = "v2";
        service::Response resp;
        std::string error;
        if (!service::callDaemon(connect_sock, req, resp, error)) {
            std::fprintf(stderr, "pomc: %s\n", error.c_str());
            return 1;
        }
        if (resp.status != "ok") {
            std::fprintf(stderr, "pomc: daemon error: %s\n",
                         resp.error.c_str());
            return 1;
        }
        const std::string &journal_file =
            journal_out.empty() ? frontier_out : journal_out;
        if (!journal_file.empty() &&
            !obs::writeFile(journal_file, resp.journalText)) {
            std::fprintf(stderr, "pomc: cannot write '%s'\n",
                         journal_file.c_str());
            return 1;
        }
        std::printf("workload:  %s (size %lld)\n", name.c_str(),
                    static_cast<long long>(size));
        std::printf("framework: %s (%s)\n", framework.c_str(),
                    resp.notes.c_str());
        std::printf("report:    %s\n", resp.reportLine.c_str());
        std::printf("toolchain: %.2f s (daemon at %s)\n", resp.seconds,
                    connect_sock.c_str());
        if (want_emit)
            std::printf("\n---- HLS C ----\n%s", resp.hlsC.c_str());
        return 0;
    }

    if (want_timing)
        pass::setGlobalTimingEnabled(true);
    if (!trace_out.empty())
        obs::setTracingEnabled(true);
    if (!metrics_out.empty())
        obs::setMetricsEnabled(true);
    if (!journal_out.empty())
        obs::setJournalEnabled(true);

    // Writes the requested observability files on every exit path
    // (including FatalError) once all spans have closed.
    struct ObsFlusher
    {
        std::string trace, metrics, journal;

        ~ObsFlusher()
        {
            if (!trace.empty() &&
                !obs::writeFile(trace, obs::chromeTraceJson())) {
                std::fprintf(stderr, "pomc: cannot write '%s'\n",
                             trace.c_str());
            }
            if (!metrics.empty() &&
                !obs::writeFile(metrics, obs::metricsJson())) {
                std::fprintf(stderr, "pomc: cannot write '%s'\n",
                             metrics.c_str());
            }
            if (!journal.empty() &&
                !obs::writeFile(journal, obs::journal().json())) {
                std::fprintf(stderr, "pomc: cannot write '%s'\n",
                             journal.c_str());
            }
        }
    } flusher{trace_out, metrics_out, journal_out};

    // Persistent estimator cache: warm-load before the run, spill on
    // every exit path (the spill is incremental and content-addressed,
    // so re-saving unchanged entries is cheap).
    hls::SpillStats cache_stats;
    if (!cache_dir.empty()) {
        std::string cache_error;
        if (!hls::EstimatorCache::global().loadDir(
                cache_dir, cache_stats, cache_error)) {
            std::fprintf(stderr, "pomc: %s\n", cache_error.c_str());
            return 1;
        }
        // The per-node report cache spills beside the estimator cache
        // (nodes.index / nodes/ in the same directory).
        hls::SpillStats node_stats;
        if (!hls::NodeReportCache::global().loadDir(
                cache_dir, node_stats, cache_error)) {
            std::fprintf(stderr, "pomc: %s\n", cache_error.c_str());
            return 1;
        }
    }

    // Pipeline result cache: a spill dir implies the cache itself.
    if (!pipeline_cache_dir.empty())
        pipeline_cache = true;
    pass::setPipelineCacheEnabled(pipeline_cache);
    support::CacheSpillStats pipeline_stats;
    if (!pipeline_cache_dir.empty()) {
        std::string cache_error;
        if (!pass::PipelineCache::global().loadDir(
                pipeline_cache_dir, pipeline_stats, cache_error)) {
            std::fprintf(stderr, "pomc: %s\n", cache_error.c_str());
            return 1;
        }
    }

    struct CacheSpiller
    {
        std::string dir;
        std::string pipelineDir;

        ~CacheSpiller()
        {
            if (!dir.empty()) {
                hls::SpillStats stats;
                std::string error;
                if (!hls::EstimatorCache::global().saveDir(dir, stats,
                                                           error)) {
                    std::fprintf(stderr,
                                 "pomc: cache spill failed: %s\n",
                                 error.c_str());
                }
                hls::SpillStats node_stats;
                if (!hls::NodeReportCache::global().saveDir(
                        dir, node_stats, error)) {
                    std::fprintf(stderr,
                                 "pomc: node-cache spill failed: %s\n",
                                 error.c_str());
                }
            }
            if (!pipelineDir.empty()) {
                support::CacheSpillStats stats;
                std::string error;
                if (!pass::PipelineCache::global().saveDir(
                        pipelineDir, stats, error)) {
                    std::fprintf(stderr,
                                 "pomc: pipeline-cache spill failed: "
                                 "%s\n",
                                 error.c_str());
                }
            }
        }
    } spiller{cache_dir, pipeline_cache_dir};

    try {
        obs::Span root_span("pomc:" + name, "tool");
        if (fuzz_cases > 0) {
            check::FuzzOptions fopt;
            fopt.seed = seed;
            fopt.cases = fuzz_cases;
            if (size_set)
                fopt.size = size;
            check::FuzzResult fres = check::fuzzWorkload(name, fopt);
            std::printf("%s\n", fres.summary().c_str());
            if (want_timing)
                std::printf("\n%s", pass::globalTimingReport().c_str());
            return fres.ok() ? 0 : 1;
        }

        if (!replay_journal.empty()) {
            if (replay_point < 0) {
                std::fprintf(stderr, "pomc: --replay-journal needs "
                                     "--point ID\n");
                return 2;
            }
            std::ifstream in(replay_journal);
            if (!in) {
                std::fprintf(stderr, "pomc: cannot read '%s'\n",
                             replay_journal.c_str());
                return 1;
            }
            std::ostringstream text;
            text << in.rdbuf();
            std::vector<obs::JournalEntry> entries;
            std::string parse_error;
            if (!obs::parseJournalJson(text.str(), entries,
                                       parse_error)) {
                std::fprintf(stderr, "pomc: '%s' is not a DSE journal: "
                                     "%s\n",
                             replay_journal.c_str(), parse_error.c_str());
                return 1;
            }

            auto w = workloads::makeByName(name, size);
            dse::DseOptions dopt;
            dopt.device = hls::Device::xc7z020();
            dopt.resourceFraction = fraction;
            dse::ReplayResult rr =
                dse::replayPoint(w->func(), entries, replay_point, dopt);

            auto device = hls::Device::xc7z020().scaled(fraction);
            std::printf("workload:  %s (size %lld)\n", name.c_str(),
                        static_cast<long long>(size));
            std::printf("replayed:  point %d (%s/%s) from %s\n",
                        replay_point, rr.entry.phase.c_str(),
                        rr.entry.verdict.c_str(),
                        replay_journal.c_str());
            std::printf("primitives: %s\n", rr.primitives.c_str());
            std::printf("report:    %s\n",
                        rr.report.str(device).c_str());
            if (rr.report.latencyCycles != rr.entry.latencyCycles) {
                std::printf("note:      journaled latency was %llu "
                            "cycles\n",
                            static_cast<unsigned long long>(
                                rr.entry.latencyCycles));
            }
            if (want_dsl) {
                std::printf("\n---- DSL ----\n%s",
                            driver::renderDsl(w->func()).c_str());
            }
            if (want_ast) {
                std::printf("\n---- polyhedral AST ----\n%s",
                            rr.design.astRoot->str().c_str());
            }
            if (want_emit) {
                std::printf("\n---- HLS C ----\n%s",
                            emit::emitHlsC(*rr.design.func).c_str());
            }
            return 0;
        }

        // Verification interprets the design twice; stick to a small
        // problem size unless the user asked for a specific one.
        if (want_verify && !size_set)
            size = check::defaultFuzzSize(name);

        auto w = workloads::makeByName(name, size);
        baselines::BaselineOptions opt;
        opt.resourceFraction = fraction;
        opt.strategy = strategy;
        opt.incrementalEstimate = incremental_estimate;
        opt.prune = dse_prune;

        if (!frontier_out.empty() && framework != "pom") {
            std::fprintf(stderr, "pomc: --frontier-out requires a POM "
                                 "DSE run (--dse or --framework pom)\n");
            return 2;
        }

        baselines::BaselineResult result;
        if (framework == "pom") {
            result = baselines::runPom(w->func(), opt);
        } else if (framework == "scalehls") {
            result = baselines::runScaleHlsLike(w->func(), opt);
        } else if (framework == "polsca") {
            result = baselines::runPolscaLike(w->func(), opt);
        } else if (framework == "pluto") {
            result = baselines::runPlutoLike(w->func(), opt);
        } else if (framework == "none") {
            result = baselines::runUnoptimized(w->func(), opt);
        } else {
            return usage(argv[0]);
        }

        if (!frontier_out.empty() &&
            !obs::writeFile(frontier_out,
                            obs::journalJsonV2(result.journal,
                                               result.frontierRounds))) {
            std::fprintf(stderr, "pomc: cannot write '%s'\n",
                         frontier_out.c_str());
            return 1;
        }

        auto device = hls::Device::xc7z020().scaled(fraction);
        std::printf("workload:  %s (size %lld)\n", name.c_str(),
                    static_cast<long long>(size));
        std::printf("framework: %s (%s)\n", framework.c_str(),
                    result.notes.c_str());
        std::printf("report:    %s\n", result.report.str(device).c_str());
        std::printf("toolchain: %.2f s\n", result.seconds);
        if (!cache_dir.empty()) {
            auto &cache = hls::EstimatorCache::global();
            std::printf("cache:     %llu hits, %llu misses (%zu "
                        "entries loaded from %s)\n",
                        static_cast<unsigned long long>(cache.hits()),
                        static_cast<unsigned long long>(cache.misses()),
                        cache_stats.loaded, cache_dir.c_str());
        }
        if (pipeline_cache) {
            auto &pcache = pass::PipelineCache::global();
            if (!pipeline_cache_dir.empty()) {
                std::printf(
                    "pipeline:  %llu hits, %llu misses (%zu "
                    "entries loaded from %s)\n",
                    static_cast<unsigned long long>(pcache.hits()),
                    static_cast<unsigned long long>(pcache.misses()),
                    pipeline_stats.loaded,
                    pipeline_cache_dir.c_str());
            } else {
                std::printf(
                    "pipeline:  %llu hits, %llu misses (%zu "
                    "entries)\n",
                    static_cast<unsigned long long>(pcache.hits()),
                    static_cast<unsigned long long>(pcache.misses()),
                    pcache.size());
            }
        }

        if (want_verify) {
            check::OracleOptions oracle;
            oracle.seed = seed;
            check::OracleResult res =
                check::checkLowered(w->func(), result.design, oracle);
            if (res.equivalent) {
                std::printf("verify:    PASS (seed %u, %llu ref / %llu "
                            "scheduled interpreter steps)\n",
                            seed,
                            static_cast<unsigned long long>(res.refWork),
                            static_cast<unsigned long long>(res.testWork));
            } else {
                std::printf("verify:    FAIL\n%s\n", res.message.c_str());
                return 1;
            }
        }

        if (want_dsl) {
            std::printf("\n---- DSL ----\n%s",
                        driver::renderDsl(w->func()).c_str());
        }
        if (want_ast) {
            std::printf("\n---- polyhedral AST ----\n%s",
                        result.design.astRoot->str().c_str());
        }
        if (want_emit) {
            std::printf("\n---- HLS C ----\n%s",
                        emit::emitHlsC(*result.design.func).c_str());
        }
        if (want_timing)
            std::printf("\n%s", pass::globalTimingReport().c_str());
        return 0;
    } catch (const pom::support::FatalError &e) {
        std::fprintf(stderr, "pomc: %s\n", e.what());
        return 1;
    }
}
