/**
 * @file
 * pomc — the POM command-line compiler driver.
 *
 * Usage:
 *   pomc <workload> [size] [--dse] [--framework pom|scalehls|polsca|
 *        pluto|none] [--resources FRACTION] [--emit] [--ast] [--dsl]
 *        [--verify] [--fuzz N] [--seed S]
 *
 * Compiles one of the built-in benchmark workloads (see `pomc --list`)
 * and prints the synthesis report; optionally the generated HLS C
 * (--emit), the polyhedral AST (--ast), or the canonical DSL source
 * (--dsl).
 *
 * --verify runs the compiled design through the differential
 * equivalence oracle (interpret it against the unscheduled reference).
 * --fuzz N skips compilation and instead throws N random-but-legal
 * schedules at the workload, shrinking any oracle failure to a minimal
 * DSL reproducer; --seed S makes the run reproducible. Both default to
 * an interpreter-friendly size unless one is given explicitly.
 *
 * Examples:
 *   pomc gemm 1024 --dse --emit
 *   pomc bicg 4096 --framework scalehls
 *   pomc seidel 256 --dse --ast
 *   pomc gemm --dse --verify
 *   pomc jacobi2d --fuzz 25 --seed 1
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "baselines/baselines.h"
#include "check/fuzzer.h"
#include "check/oracle.h"
#include "driver/compiler.h"
#include "emit/hls_emitter.h"
#include "support/diagnostics.h"
#include "workloads/workloads.h"

using namespace pom;

namespace {

const char *kWorkloads[] = {
    "gemm", "bicg", "gesummv", "2mm", "3mm", "atax", "mvt", "syrk",
    "conv2d", "jacobi1d", "jacobi2d", "heat1d", "seidel", "edgedetect",
    "gaussian", "blur", "vgg16", "resnet18",
};

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s <workload> [size] [--dse] "
                 "[--framework pom|scalehls|polsca|pluto|none] "
                 "[--resources FRACTION] [--emit] [--ast] [--dsl] "
                 "[--verify] [--fuzz N] [--seed S]\n"
                 "       %s --list\n",
                 argv0, argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage(argv[0]);
    if (std::strcmp(argv[1], "--list") == 0) {
        for (const char *name : kWorkloads)
            std::printf("%s\n", name);
        return 0;
    }

    std::string name = argv[1];
    std::int64_t size = 1024;
    bool size_set = false;
    std::string framework = "none";
    double fraction = 1.0;
    bool want_emit = false, want_ast = false, want_dsl = false;
    bool want_verify = false;
    int fuzz_cases = 0;
    unsigned seed = 1;

    for (int a = 2; a < argc; ++a) {
        std::string arg = argv[a];
        if (arg == "--dse") {
            framework = "pom";
        } else if (arg == "--framework" && a + 1 < argc) {
            framework = argv[++a];
        } else if (arg == "--resources" && a + 1 < argc) {
            fraction = std::atof(argv[++a]);
        } else if (arg == "--emit") {
            want_emit = true;
        } else if (arg == "--ast") {
            want_ast = true;
        } else if (arg == "--dsl") {
            want_dsl = true;
        } else if (arg == "--verify") {
            want_verify = true;
        } else if (arg == "--fuzz" && a + 1 < argc) {
            fuzz_cases = std::atoi(argv[++a]);
            if (fuzz_cases <= 0) {
                std::fprintf(stderr, "pomc: --fuzz expects a positive "
                                     "case count, got '%s'\n", argv[a]);
                return 2;
            }
        } else if (arg == "--seed" && a + 1 < argc) {
            seed = static_cast<unsigned>(std::atoll(argv[++a]));
        } else if (!arg.empty() && arg[0] != '-') {
            size = std::atoll(arg.c_str());
            size_set = true;
        } else {
            return usage(argv[0]);
        }
    }

    try {
        if (fuzz_cases > 0) {
            check::FuzzOptions fopt;
            fopt.seed = seed;
            fopt.cases = fuzz_cases;
            if (size_set)
                fopt.size = size;
            check::FuzzResult fres = check::fuzzWorkload(name, fopt);
            std::printf("%s\n", fres.summary().c_str());
            return fres.ok() ? 0 : 1;
        }

        // Verification interprets the design twice; stick to a small
        // problem size unless the user asked for a specific one.
        if (want_verify && !size_set)
            size = check::defaultFuzzSize(name);

        auto w = workloads::makeByName(name, size);
        baselines::BaselineOptions opt;
        opt.resourceFraction = fraction;

        baselines::BaselineResult result;
        if (framework == "pom") {
            result = baselines::runPom(w->func(), opt);
        } else if (framework == "scalehls") {
            result = baselines::runScaleHlsLike(w->func(), opt);
        } else if (framework == "polsca") {
            result = baselines::runPolscaLike(w->func(), opt);
        } else if (framework == "pluto") {
            result = baselines::runPlutoLike(w->func(), opt);
        } else if (framework == "none") {
            result = baselines::runUnoptimized(w->func(), opt);
        } else {
            return usage(argv[0]);
        }

        auto device = hls::Device::xc7z020().scaled(fraction);
        std::printf("workload:  %s (size %lld)\n", name.c_str(),
                    static_cast<long long>(size));
        std::printf("framework: %s (%s)\n", framework.c_str(),
                    result.notes.c_str());
        std::printf("report:    %s\n", result.report.str(device).c_str());
        std::printf("toolchain: %.2f s\n", result.seconds);

        if (want_verify) {
            check::OracleOptions oracle;
            oracle.seed = seed;
            check::OracleResult res =
                check::checkLowered(w->func(), result.design, oracle);
            if (res.equivalent) {
                std::printf("verify:    PASS (seed %u, %llu ref / %llu "
                            "scheduled interpreter steps)\n",
                            seed,
                            static_cast<unsigned long long>(res.refWork),
                            static_cast<unsigned long long>(res.testWork));
            } else {
                std::printf("verify:    FAIL\n%s\n", res.message.c_str());
                return 1;
            }
        }

        if (want_dsl) {
            std::printf("\n---- DSL ----\n%s",
                        driver::renderDsl(w->func()).c_str());
        }
        if (want_ast) {
            std::printf("\n---- polyhedral AST ----\n%s",
                        result.design.astRoot->str().c_str());
        }
        if (want_emit) {
            std::printf("\n---- HLS C ----\n%s",
                        emit::emitHlsC(*result.design.func).c_str());
        }
        return 0;
    } catch (const pom::support::FatalError &e) {
        std::fprintf(stderr, "pomc: %s\n", e.what());
        return 1;
    }
}
