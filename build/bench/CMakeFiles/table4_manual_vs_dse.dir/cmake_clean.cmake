file(REMOVE_RECURSE
  "CMakeFiles/table4_manual_vs_dse.dir/table4_manual_vs_dse.cpp.o"
  "CMakeFiles/table4_manual_vs_dse.dir/table4_manual_vs_dse.cpp.o.d"
  "table4_manual_vs_dse"
  "table4_manual_vs_dse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_manual_vs_dse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
