# Empty compiler generated dependencies file for table4_manual_vs_dse.
# This may be replaced when dependencies are built.
