# Empty compiler generated dependencies file for fig02_motivating.
# This may be replaced when dependencies are built.
