file(REMOVE_RECURSE
  "CMakeFiles/fig02_motivating.dir/fig02_motivating.cpp.o"
  "CMakeFiles/fig02_motivating.dir/fig02_motivating.cpp.o.d"
  "fig02_motivating"
  "fig02_motivating.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_motivating.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
