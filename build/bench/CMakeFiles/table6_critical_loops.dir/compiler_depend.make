# Empty compiler generated dependencies file for table6_critical_loops.
# This may be replaced when dependencies are built.
