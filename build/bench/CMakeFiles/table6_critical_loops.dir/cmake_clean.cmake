file(REMOVE_RECURSE
  "CMakeFiles/table6_critical_loops.dir/table6_critical_loops.cpp.o"
  "CMakeFiles/table6_critical_loops.dir/table6_critical_loops.cpp.o.d"
  "table6_critical_loops"
  "table6_critical_loops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_critical_loops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
