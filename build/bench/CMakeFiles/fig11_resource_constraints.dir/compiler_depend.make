# Empty compiler generated dependencies file for fig11_resource_constraints.
# This may be replaced when dependencies are built.
