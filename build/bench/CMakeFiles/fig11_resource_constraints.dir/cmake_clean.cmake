file(REMOVE_RECURSE
  "CMakeFiles/fig11_resource_constraints.dir/fig11_resource_constraints.cpp.o"
  "CMakeFiles/fig11_resource_constraints.dir/fig11_resource_constraints.cpp.o.d"
  "fig11_resource_constraints"
  "fig11_resource_constraints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_resource_constraints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
