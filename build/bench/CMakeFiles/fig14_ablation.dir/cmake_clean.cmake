file(REMOVE_RECURSE
  "CMakeFiles/fig14_ablation.dir/fig14_ablation.cpp.o"
  "CMakeFiles/fig14_ablation.dir/fig14_ablation.cpp.o.d"
  "fig14_ablation"
  "fig14_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
