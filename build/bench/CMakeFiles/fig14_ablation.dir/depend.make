# Empty dependencies file for fig14_ablation.
# This may be replaced when dependencies are built.
