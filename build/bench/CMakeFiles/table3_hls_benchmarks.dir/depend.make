# Empty dependencies file for table3_hls_benchmarks.
# This may be replaced when dependencies are built.
