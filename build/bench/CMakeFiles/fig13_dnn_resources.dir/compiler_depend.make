# Empty compiler generated dependencies file for fig13_dnn_resources.
# This may be replaced when dependencies are built.
