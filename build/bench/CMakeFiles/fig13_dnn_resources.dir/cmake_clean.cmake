file(REMOVE_RECURSE
  "CMakeFiles/fig13_dnn_resources.dir/fig13_dnn_resources.cpp.o"
  "CMakeFiles/fig13_dnn_resources.dir/fig13_dnn_resources.cpp.o.d"
  "fig13_dnn_resources"
  "fig13_dnn_resources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_dnn_resources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
