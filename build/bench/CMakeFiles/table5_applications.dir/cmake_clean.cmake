file(REMOVE_RECURSE
  "CMakeFiles/table5_applications.dir/table5_applications.cpp.o"
  "CMakeFiles/table5_applications.dir/table5_applications.cpp.o.d"
  "table5_applications"
  "table5_applications.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_applications.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
