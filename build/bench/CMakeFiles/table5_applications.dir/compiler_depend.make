# Empty compiler generated dependencies file for table5_applications.
# This may be replaced when dependencies are built.
