file(REMOVE_RECURSE
  "CMakeFiles/table7_complex_patterns.dir/table7_complex_patterns.cpp.o"
  "CMakeFiles/table7_complex_patterns.dir/table7_complex_patterns.cpp.o.d"
  "table7_complex_patterns"
  "table7_complex_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_complex_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
