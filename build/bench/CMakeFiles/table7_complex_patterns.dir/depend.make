# Empty dependencies file for table7_complex_patterns.
# This may be replaced when dependencies are built.
