# Empty dependencies file for micro_toolchain.
# This may be replaced when dependencies are built.
