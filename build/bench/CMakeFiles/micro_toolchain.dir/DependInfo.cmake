
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/micro_toolchain.cpp" "bench/CMakeFiles/micro_toolchain.dir/micro_toolchain.cpp.o" "gcc" "bench/CMakeFiles/micro_toolchain.dir/micro_toolchain.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baselines/CMakeFiles/pom_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/pom_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/driver/CMakeFiles/pom_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/emit/CMakeFiles/pom_emit.dir/DependInfo.cmake"
  "/root/repo/build/src/dse/CMakeFiles/pom_dse.dir/DependInfo.cmake"
  "/root/repo/build/src/hls/CMakeFiles/pom_hls.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/pom_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/lower/CMakeFiles/pom_lower.dir/DependInfo.cmake"
  "/root/repo/build/src/dsl/CMakeFiles/pom_dsl.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/pom_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/transform/CMakeFiles/pom_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/ast/CMakeFiles/pom_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/poly/CMakeFiles/pom_poly.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pom_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
