file(REMOVE_RECURSE
  "CMakeFiles/fig15_loc.dir/fig15_loc.cpp.o"
  "CMakeFiles/fig15_loc.dir/fig15_loc.cpp.o.d"
  "fig15_loc"
  "fig15_loc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_loc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
