# Empty dependencies file for fig15_loc.
# This may be replaced when dependencies are built.
