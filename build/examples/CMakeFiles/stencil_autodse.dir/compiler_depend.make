# Empty compiler generated dependencies file for stencil_autodse.
# This may be replaced when dependencies are built.
