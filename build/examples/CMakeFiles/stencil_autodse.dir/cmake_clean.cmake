file(REMOVE_RECURSE
  "CMakeFiles/stencil_autodse.dir/stencil_autodse.cpp.o"
  "CMakeFiles/stencil_autodse.dir/stencil_autodse.cpp.o.d"
  "stencil_autodse"
  "stencil_autodse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stencil_autodse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
