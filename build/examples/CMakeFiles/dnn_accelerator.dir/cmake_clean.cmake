file(REMOVE_RECURSE
  "CMakeFiles/dnn_accelerator.dir/dnn_accelerator.cpp.o"
  "CMakeFiles/dnn_accelerator.dir/dnn_accelerator.cpp.o.d"
  "dnn_accelerator"
  "dnn_accelerator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnn_accelerator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
