# Empty compiler generated dependencies file for dnn_accelerator.
# This may be replaced when dependencies are built.
