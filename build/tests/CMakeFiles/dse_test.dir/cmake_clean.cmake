file(REMOVE_RECURSE
  "CMakeFiles/dse_test.dir/dse_test.cpp.o"
  "CMakeFiles/dse_test.dir/dse_test.cpp.o.d"
  "dse_test"
  "dse_test.pdb"
  "dse_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dse_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
