# Empty dependencies file for dse_test.
# This may be replaced when dependencies are built.
