# Empty dependencies file for dse_options_test.
# This may be replaced when dependencies are built.
