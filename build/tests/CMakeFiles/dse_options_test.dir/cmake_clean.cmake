file(REMOVE_RECURSE
  "CMakeFiles/dse_options_test.dir/dse_options_test.cpp.o"
  "CMakeFiles/dse_options_test.dir/dse_options_test.cpp.o.d"
  "dse_options_test"
  "dse_options_test.pdb"
  "dse_options_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dse_options_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
