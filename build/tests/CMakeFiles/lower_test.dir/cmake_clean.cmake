file(REMOVE_RECURSE
  "CMakeFiles/lower_test.dir/lower_test.cpp.o"
  "CMakeFiles/lower_test.dir/lower_test.cpp.o.d"
  "lower_test"
  "lower_test.pdb"
  "lower_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lower_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
