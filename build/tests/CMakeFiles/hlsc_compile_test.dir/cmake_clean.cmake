file(REMOVE_RECURSE
  "CMakeFiles/hlsc_compile_test.dir/hlsc_compile_test.cpp.o"
  "CMakeFiles/hlsc_compile_test.dir/hlsc_compile_test.cpp.o.d"
  "hlsc_compile_test"
  "hlsc_compile_test.pdb"
  "hlsc_compile_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hlsc_compile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
