# Empty compiler generated dependencies file for hlsc_compile_test.
# This may be replaced when dependencies are built.
