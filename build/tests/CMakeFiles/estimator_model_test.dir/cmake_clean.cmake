file(REMOVE_RECURSE
  "CMakeFiles/estimator_model_test.dir/estimator_model_test.cpp.o"
  "CMakeFiles/estimator_model_test.dir/estimator_model_test.cpp.o.d"
  "estimator_model_test"
  "estimator_model_test.pdb"
  "estimator_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/estimator_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
