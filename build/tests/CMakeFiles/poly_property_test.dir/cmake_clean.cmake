file(REMOVE_RECURSE
  "CMakeFiles/poly_property_test.dir/poly_property_test.cpp.o"
  "CMakeFiles/poly_property_test.dir/poly_property_test.cpp.o.d"
  "poly_property_test"
  "poly_property_test.pdb"
  "poly_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/poly_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
