# Empty dependencies file for poly_property_test.
# This may be replaced when dependencies are built.
