# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/poly_test[1]_include.cmake")
include("/root/repo/build/tests/ast_test[1]_include.cmake")
include("/root/repo/build/tests/ir_test[1]_include.cmake")
include("/root/repo/build/tests/transform_test[1]_include.cmake")
include("/root/repo/build/tests/lower_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/hls_test[1]_include.cmake")
include("/root/repo/build/tests/dse_test[1]_include.cmake")
include("/root/repo/build/tests/emit_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/poly_property_test[1]_include.cmake")
include("/root/repo/build/tests/estimator_model_test[1]_include.cmake")
include("/root/repo/build/tests/hlsc_compile_test[1]_include.cmake")
include("/root/repo/build/tests/dse_options_test[1]_include.cmake")
