file(REMOVE_RECURSE
  "CMakeFiles/pomc.dir/pomc.cpp.o"
  "CMakeFiles/pomc.dir/pomc.cpp.o.d"
  "pomc"
  "pomc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pomc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
