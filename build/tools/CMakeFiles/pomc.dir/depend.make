# Empty dependencies file for pomc.
# This may be replaced when dependencies are built.
