file(REMOVE_RECURSE
  "CMakeFiles/pom_support.dir/diagnostics.cpp.o"
  "CMakeFiles/pom_support.dir/diagnostics.cpp.o.d"
  "CMakeFiles/pom_support.dir/string_util.cpp.o"
  "CMakeFiles/pom_support.dir/string_util.cpp.o.d"
  "libpom_support.a"
  "libpom_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pom_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
