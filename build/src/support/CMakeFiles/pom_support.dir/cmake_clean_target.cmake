file(REMOVE_RECURSE
  "libpom_support.a"
)
