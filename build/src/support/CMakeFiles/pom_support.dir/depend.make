# Empty dependencies file for pom_support.
# This may be replaced when dependencies are built.
