file(REMOVE_RECURSE
  "libpom_poly.a"
)
