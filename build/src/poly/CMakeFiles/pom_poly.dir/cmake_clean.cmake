file(REMOVE_RECURSE
  "CMakeFiles/pom_poly.dir/affine_map.cpp.o"
  "CMakeFiles/pom_poly.dir/affine_map.cpp.o.d"
  "CMakeFiles/pom_poly.dir/dependence.cpp.o"
  "CMakeFiles/pom_poly.dir/dependence.cpp.o.d"
  "CMakeFiles/pom_poly.dir/integer_set.cpp.o"
  "CMakeFiles/pom_poly.dir/integer_set.cpp.o.d"
  "CMakeFiles/pom_poly.dir/linear_expr.cpp.o"
  "CMakeFiles/pom_poly.dir/linear_expr.cpp.o.d"
  "libpom_poly.a"
  "libpom_poly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pom_poly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
