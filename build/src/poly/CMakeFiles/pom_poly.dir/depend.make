# Empty dependencies file for pom_poly.
# This may be replaced when dependencies are built.
