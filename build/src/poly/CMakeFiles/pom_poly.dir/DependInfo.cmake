
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/poly/affine_map.cpp" "src/poly/CMakeFiles/pom_poly.dir/affine_map.cpp.o" "gcc" "src/poly/CMakeFiles/pom_poly.dir/affine_map.cpp.o.d"
  "/root/repo/src/poly/dependence.cpp" "src/poly/CMakeFiles/pom_poly.dir/dependence.cpp.o" "gcc" "src/poly/CMakeFiles/pom_poly.dir/dependence.cpp.o.d"
  "/root/repo/src/poly/integer_set.cpp" "src/poly/CMakeFiles/pom_poly.dir/integer_set.cpp.o" "gcc" "src/poly/CMakeFiles/pom_poly.dir/integer_set.cpp.o.d"
  "/root/repo/src/poly/linear_expr.cpp" "src/poly/CMakeFiles/pom_poly.dir/linear_expr.cpp.o" "gcc" "src/poly/CMakeFiles/pom_poly.dir/linear_expr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/pom_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
