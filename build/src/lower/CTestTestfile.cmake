# CMake generated Testfile for 
# Source directory: /root/repo/src/lower
# Build directory: /root/repo/build/src/lower
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
