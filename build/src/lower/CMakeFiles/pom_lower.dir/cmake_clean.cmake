file(REMOVE_RECURSE
  "CMakeFiles/pom_lower.dir/lower.cpp.o"
  "CMakeFiles/pom_lower.dir/lower.cpp.o.d"
  "libpom_lower.a"
  "libpom_lower.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pom_lower.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
