file(REMOVE_RECURSE
  "libpom_lower.a"
)
