# Empty dependencies file for pom_lower.
# This may be replaced when dependencies are built.
