file(REMOVE_RECURSE
  "libpom_graph.a"
)
