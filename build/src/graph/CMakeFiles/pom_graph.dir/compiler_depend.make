# Empty compiler generated dependencies file for pom_graph.
# This may be replaced when dependencies are built.
