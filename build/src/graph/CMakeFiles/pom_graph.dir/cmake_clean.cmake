file(REMOVE_RECURSE
  "CMakeFiles/pom_graph.dir/dependence_graph.cpp.o"
  "CMakeFiles/pom_graph.dir/dependence_graph.cpp.o.d"
  "libpom_graph.a"
  "libpom_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pom_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
