file(REMOVE_RECURSE
  "CMakeFiles/pom_ast.dir/ast.cpp.o"
  "CMakeFiles/pom_ast.dir/ast.cpp.o.d"
  "CMakeFiles/pom_ast.dir/build.cpp.o"
  "CMakeFiles/pom_ast.dir/build.cpp.o.d"
  "libpom_ast.a"
  "libpom_ast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pom_ast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
