file(REMOVE_RECURSE
  "libpom_ast.a"
)
