# Empty dependencies file for pom_ast.
# This may be replaced when dependencies are built.
