# Empty dependencies file for pom_transform.
# This may be replaced when dependencies are built.
