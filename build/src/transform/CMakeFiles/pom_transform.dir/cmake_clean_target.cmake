file(REMOVE_RECURSE
  "libpom_transform.a"
)
