file(REMOVE_RECURSE
  "CMakeFiles/pom_transform.dir/poly_stmt.cpp.o"
  "CMakeFiles/pom_transform.dir/poly_stmt.cpp.o.d"
  "libpom_transform.a"
  "libpom_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pom_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
