# Empty dependencies file for pom_dse.
# This may be replaced when dependencies are built.
