file(REMOVE_RECURSE
  "CMakeFiles/pom_dse.dir/dse.cpp.o"
  "CMakeFiles/pom_dse.dir/dse.cpp.o.d"
  "libpom_dse.a"
  "libpom_dse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pom_dse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
