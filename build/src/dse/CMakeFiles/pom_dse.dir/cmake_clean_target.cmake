file(REMOVE_RECURSE
  "libpom_dse.a"
)
