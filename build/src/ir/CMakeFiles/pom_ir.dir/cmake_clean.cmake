file(REMOVE_RECURSE
  "CMakeFiles/pom_ir.dir/builder.cpp.o"
  "CMakeFiles/pom_ir.dir/builder.cpp.o.d"
  "CMakeFiles/pom_ir.dir/interpreter.cpp.o"
  "CMakeFiles/pom_ir.dir/interpreter.cpp.o.d"
  "CMakeFiles/pom_ir.dir/operation.cpp.o"
  "CMakeFiles/pom_ir.dir/operation.cpp.o.d"
  "CMakeFiles/pom_ir.dir/type.cpp.o"
  "CMakeFiles/pom_ir.dir/type.cpp.o.d"
  "CMakeFiles/pom_ir.dir/verifier.cpp.o"
  "CMakeFiles/pom_ir.dir/verifier.cpp.o.d"
  "libpom_ir.a"
  "libpom_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pom_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
