
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/builder.cpp" "src/ir/CMakeFiles/pom_ir.dir/builder.cpp.o" "gcc" "src/ir/CMakeFiles/pom_ir.dir/builder.cpp.o.d"
  "/root/repo/src/ir/interpreter.cpp" "src/ir/CMakeFiles/pom_ir.dir/interpreter.cpp.o" "gcc" "src/ir/CMakeFiles/pom_ir.dir/interpreter.cpp.o.d"
  "/root/repo/src/ir/operation.cpp" "src/ir/CMakeFiles/pom_ir.dir/operation.cpp.o" "gcc" "src/ir/CMakeFiles/pom_ir.dir/operation.cpp.o.d"
  "/root/repo/src/ir/type.cpp" "src/ir/CMakeFiles/pom_ir.dir/type.cpp.o" "gcc" "src/ir/CMakeFiles/pom_ir.dir/type.cpp.o.d"
  "/root/repo/src/ir/verifier.cpp" "src/ir/CMakeFiles/pom_ir.dir/verifier.cpp.o" "gcc" "src/ir/CMakeFiles/pom_ir.dir/verifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/poly/CMakeFiles/pom_poly.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pom_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
