file(REMOVE_RECURSE
  "libpom_ir.a"
)
