# Empty dependencies file for pom_ir.
# This may be replaced when dependencies are built.
