file(REMOVE_RECURSE
  "CMakeFiles/pom_baselines.dir/baselines.cpp.o"
  "CMakeFiles/pom_baselines.dir/baselines.cpp.o.d"
  "libpom_baselines.a"
  "libpom_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pom_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
