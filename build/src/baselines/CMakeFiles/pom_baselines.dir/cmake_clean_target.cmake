file(REMOVE_RECURSE
  "libpom_baselines.a"
)
