# Empty dependencies file for pom_baselines.
# This may be replaced when dependencies are built.
