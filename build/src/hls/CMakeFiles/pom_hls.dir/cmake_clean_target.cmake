file(REMOVE_RECURSE
  "libpom_hls.a"
)
