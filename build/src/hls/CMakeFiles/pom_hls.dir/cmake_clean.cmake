file(REMOVE_RECURSE
  "CMakeFiles/pom_hls.dir/count.cpp.o"
  "CMakeFiles/pom_hls.dir/count.cpp.o.d"
  "CMakeFiles/pom_hls.dir/estimator.cpp.o"
  "CMakeFiles/pom_hls.dir/estimator.cpp.o.d"
  "libpom_hls.a"
  "libpom_hls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pom_hls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
