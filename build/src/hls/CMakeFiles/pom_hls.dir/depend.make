# Empty dependencies file for pom_hls.
# This may be replaced when dependencies are built.
