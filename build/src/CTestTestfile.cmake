# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("poly")
subdirs("ast")
subdirs("ir")
subdirs("dsl")
subdirs("graph")
subdirs("transform")
subdirs("lower")
subdirs("hls")
subdirs("emit")
subdirs("dse")
subdirs("baselines")
subdirs("workloads")
subdirs("driver")
