file(REMOVE_RECURSE
  "CMakeFiles/pom_workloads.dir/workloads.cpp.o"
  "CMakeFiles/pom_workloads.dir/workloads.cpp.o.d"
  "libpom_workloads.a"
  "libpom_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pom_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
