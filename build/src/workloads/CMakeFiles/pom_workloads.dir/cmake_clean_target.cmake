file(REMOVE_RECURSE
  "libpom_workloads.a"
)
