# Empty compiler generated dependencies file for pom_workloads.
# This may be replaced when dependencies are built.
