file(REMOVE_RECURSE
  "libpom_dsl.a"
)
