# Empty compiler generated dependencies file for pom_dsl.
# This may be replaced when dependencies are built.
