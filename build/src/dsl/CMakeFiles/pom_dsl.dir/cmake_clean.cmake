file(REMOVE_RECURSE
  "CMakeFiles/pom_dsl.dir/dsl.cpp.o"
  "CMakeFiles/pom_dsl.dir/dsl.cpp.o.d"
  "CMakeFiles/pom_dsl.dir/expr.cpp.o"
  "CMakeFiles/pom_dsl.dir/expr.cpp.o.d"
  "libpom_dsl.a"
  "libpom_dsl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pom_dsl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
