
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dsl/dsl.cpp" "src/dsl/CMakeFiles/pom_dsl.dir/dsl.cpp.o" "gcc" "src/dsl/CMakeFiles/pom_dsl.dir/dsl.cpp.o.d"
  "/root/repo/src/dsl/expr.cpp" "src/dsl/CMakeFiles/pom_dsl.dir/expr.cpp.o" "gcc" "src/dsl/CMakeFiles/pom_dsl.dir/expr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/pom_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/poly/CMakeFiles/pom_poly.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pom_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
