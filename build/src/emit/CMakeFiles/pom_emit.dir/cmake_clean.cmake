file(REMOVE_RECURSE
  "CMakeFiles/pom_emit.dir/hls_emitter.cpp.o"
  "CMakeFiles/pom_emit.dir/hls_emitter.cpp.o.d"
  "libpom_emit.a"
  "libpom_emit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pom_emit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
