file(REMOVE_RECURSE
  "libpom_emit.a"
)
