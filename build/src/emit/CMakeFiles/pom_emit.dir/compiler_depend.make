# Empty compiler generated dependencies file for pom_emit.
# This may be replaced when dependencies are built.
