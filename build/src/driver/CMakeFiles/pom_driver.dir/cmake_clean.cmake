file(REMOVE_RECURSE
  "CMakeFiles/pom_driver.dir/compiler.cpp.o"
  "CMakeFiles/pom_driver.dir/compiler.cpp.o.d"
  "libpom_driver.a"
  "libpom_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pom_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
