# Empty compiler generated dependencies file for pom_driver.
# This may be replaced when dependencies are built.
