file(REMOVE_RECURSE
  "libpom_driver.a"
)
