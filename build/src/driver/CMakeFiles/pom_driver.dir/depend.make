# Empty dependencies file for pom_driver.
# This may be replaced when dependencies are built.
