/**
 * @file
 * Property tests for the polyhedral substrate, checked against brute
 * force on small domains:
 *  - Fourier-Motzkin projection preserves the projected point set.
 *  - AffineMap::image equals the brute-force image.
 *  - analyzeSelfDependences covers exactly the dependences found by
 *    enumerating all statement-instance pairs.
 *  - Tiling/skewing decompositions count and enumerate consistently.
 */

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "hls/count.h"
#include "poly/dependence.h"
#include "poly/integer_set.h"

namespace {

using namespace pom::poly;

// ---------------------------------------------------------------- FM

struct ProjCase
{
    std::vector<std::int64_t> lows, highs;
    // extra constraint: sum coeffs * dims + c >= 0
    std::vector<std::int64_t> coeffs;
    std::int64_t c;
    size_t drop; ///< dimension to project out
};

class ProjectionSweep : public ::testing::TestWithParam<ProjCase>
{};

TEST_P(ProjectionSweep, MatchesBruteForce)
{
    const auto &tc = GetParam();
    size_t n = tc.lows.size();
    std::vector<std::string> names;
    for (size_t i = 0; i < n; ++i)
        names.push_back("d" + std::to_string(i));
    auto set = IntegerSet::box(names, tc.lows, tc.highs);
    set.addInequality(LinearExpr(tc.coeffs, tc.c));

    // Brute-force projection.
    std::set<std::vector<std::int64_t>> expected;
    for (const auto &p : set.enumerate()) {
        std::vector<std::int64_t> q;
        for (size_t i = 0; i < n; ++i) {
            if (i != tc.drop)
                q.push_back(p[i]);
        }
        expected.insert(q);
    }

    auto proj = set.projectOut(tc.drop);
    std::set<std::vector<std::int64_t>> got;
    for (const auto &p : proj.enumerate())
        got.insert(p);

    // FM with integer tightening is exact on these systems.
    EXPECT_EQ(got, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ProjectionSweep,
    ::testing::Values(
        ProjCase{{0, 0}, {7, 7}, {1, 1}, -5, 0},      // i + j >= 5
        ProjCase{{0, 0}, {7, 7}, {1, -1}, 0, 1},      // i >= j
        ProjCase{{0, 0}, {9, 9}, {2, -1}, -3, 0},     // 2i - j >= 3
        ProjCase{{-3, 0}, {3, 5}, {1, 2}, 1, 0},      // i + 2j + 1 >= 0
        ProjCase{{0, 0, 0}, {4, 4, 4}, {1, 1, 1}, -6, 1},
        ProjCase{{0, 0, 0}, {5, 3, 4}, {1, -2, 1}, 0, 2},
        ProjCase{{0, 1}, {6, 6}, {3, -2}, 1, 0},
        ProjCase{{0, 0}, {11, 5}, {-1, 3}, -2, 1}));

TEST(PolyProperty, CountMatchesEnumerateOnConstrainedSets)
{
    for (std::int64_t c = -10; c <= 10; c += 3) {
        IntegerSet s({"i", "j", "k"});
        s.addDimBounds(0, 0, 6);
        s.addDimBounds(1, -2, 4);
        s.addDimBounds(2, 0, 5);
        s.addInequality(LinearExpr({1, 2, -1}, c));
        EXPECT_EQ(pom::hls::countPoints(s), (std::int64_t)s.enumerate().size())
            << "c=" << c;
    }
}

TEST(PolyProperty, TilingDecompositionIsExact)
{
    for (std::int64_t size : {8, 13, 16, 29, 31}) {
        for (std::int64_t factor : {2, 3, 4, 8}) {
            IntegerSet s({"i0", "i1"});
            s.addDimBounds(1, 0, factor - 1);
            // 0 <= factor*i0 + i1 <= size-1
            s.addInequality(LinearExpr({factor, 1}, 0));
            s.addInequality(LinearExpr({-factor, -1}, size - 1));
            EXPECT_EQ(s.countPoints(), static_cast<size_t>(size))
                << "size=" << size << " factor=" << factor;
        }
    }
}

// ------------------------------------------------------------- image

TEST(PolyProperty, ImageMatchesBruteForce)
{
    struct MapCase
    {
        std::vector<LinearExpr> results;
    };
    std::vector<MapCase> cases = {
        {{LinearExpr({1, 1}, 0)}},                      // i + j
        {{LinearExpr({2, -1}, 3)}},                     // 2i - j + 3
        {{LinearExpr({1, 0}, 0), LinearExpr({1, 1}, 0)}}, // (i, i + j)
    };
    auto dom = IntegerSet::box({"i", "j"}, {0, 0}, {4, 5});
    for (const auto &mc : cases) {
        AffineMap map({"i", "j"}, mc.results);
        std::vector<std::string> out_names;
        for (size_t r = 0; r < mc.results.size(); ++r)
            out_names.push_back("o" + std::to_string(r));
        auto img = map.image(dom, out_names);

        std::set<std::vector<std::int64_t>> expected;
        for (const auto &p : dom.enumerate())
            expected.insert(map.apply(p));
        std::set<std::vector<std::int64_t>> got;
        for (const auto &p : img.enumerate())
            got.insert(p);
        EXPECT_EQ(got, expected);
    }
}

// -------------------------------------------------- dependence vs brute

/** Brute-force dependences of a statement over a small domain. */
struct BruteDep
{
    size_t level;
    std::vector<std::int64_t> dist;
};

std::vector<BruteDep>
bruteForceDeps(const IntegerSet &domain, const std::vector<Access> &accs)
{
    std::vector<BruteDep> out;
    auto points = domain.enumerate();
    for (size_t a = 0; a < accs.size(); ++a) {
        for (size_t b = 0; b < accs.size(); ++b) {
            if (accs[a].array != accs[b].array)
                continue;
            if (!accs[a].isWrite && !accs[b].isWrite)
                continue;
            for (const auto &p : points) {
                for (const auto &q : points) {
                    if (p == q || !(p < q))
                        continue; // need p lexicographically before q
                    if (accs[a].map.apply(p) != accs[b].map.apply(q))
                        continue;
                    size_t level = 0;
                    while (p[level] == q[level])
                        ++level;
                    std::vector<std::int64_t> dist;
                    for (size_t k = 0; k < p.size(); ++k)
                        dist.push_back(q[k] - p[k]);
                    out.push_back(BruteDep{level, dist});
                }
            }
        }
    }
    return out;
}

/** The analysis must cover every brute-force dependence. */
void
expectCovers(const IntegerSet &domain, const std::vector<Access> &accs)
{
    auto analyzed = analyzeSelfDependences(domain, accs);
    auto brute = bruteForceDeps(domain, accs);
    ASSERT_EQ(brute.empty(), analyzed.empty());
    for (const auto &bd : brute) {
        bool covered = false;
        for (const auto &ad : analyzed) {
            if (ad.level != bd.level)
                continue;
            bool fits = true;
            for (size_t k = 0; k < bd.dist.size(); ++k) {
                if (ad.distLo[k] && bd.dist[k] < *ad.distLo[k])
                    fits = false;
                if (ad.distHi[k] && bd.dist[k] > *ad.distHi[k])
                    fits = false;
            }
            if (fits) {
                covered = true;
                break;
            }
        }
        EXPECT_TRUE(covered) << "uncovered dependence at level "
                             << bd.level;
    }
}

TEST(PolyProperty, DependenceCoversBruteForceDiagonal)
{
    auto dom = IntegerSet::box({"i", "j"}, {1, 1}, {5, 5});
    AffineMap w({"i", "j"}, {LinearExpr::dim(2, 0), LinearExpr::dim(2, 1)});
    AffineMap r({"i", "j"}, {LinearExpr({1, 0}, -1), LinearExpr({0, 1}, -1)});
    expectCovers(dom, {Access{"A", w, true}, Access{"A", r, false}});
}

TEST(PolyProperty, DependenceCoversBruteForceAntiDiagonal)
{
    auto dom = IntegerSet::box({"i", "j"}, {1, 1}, {5, 4});
    AffineMap w({"i", "j"}, {LinearExpr::dim(2, 0), LinearExpr::dim(2, 1)});
    AffineMap r({"i", "j"}, {LinearExpr({1, 0}, -1), LinearExpr({0, 1}, 1)});
    expectCovers(dom, {Access{"B", w, true}, Access{"B", r, false}});
}

TEST(PolyProperty, DependenceCoversBruteForceReduction)
{
    auto dom = IntegerSet::box({"i", "k"}, {0, 0}, {4, 4});
    AffineMap acc({"i", "k"}, {LinearExpr::dim(2, 0)});
    expectCovers(dom, {Access{"q", acc, true}, Access{"q", acc, false}});
}

TEST(PolyProperty, DependenceCoversBruteForceStrided)
{
    auto dom = IntegerSet::box({"i"}, {0}, {12});
    AffineMap w({"i"}, {LinearExpr({2}, 0)});  // writes A[2i]
    AffineMap r({"i"}, {LinearExpr({1}, 0)});  // reads A[i]
    expectCovers(dom, {Access{"A", w, true}, Access{"A", r, false}});
}

TEST(PolyProperty, DependenceCoversBruteForceInPlaceStencil)
{
    auto dom = IntegerSet::box({"i", "j"}, {1, 1}, {4, 4});
    AffineMap w({"i", "j"}, {LinearExpr::dim(2, 0), LinearExpr::dim(2, 1)});
    AffineMap r1({"i", "j"},
                 {LinearExpr({1, 0}, -1), LinearExpr::dim(2, 1)});
    AffineMap r2({"i", "j"},
                 {LinearExpr::dim(2, 0), LinearExpr({0, 1}, 1)});
    expectCovers(dom, {Access{"A", w, true}, Access{"A", r1, false},
                       Access{"A", r2, false}});
}

TEST(PolyProperty, NoSpuriousDependenceOnDisjointAccesses)
{
    // Writes even elements, reads odd elements: never conflict.
    auto dom = IntegerSet::box({"i"}, {0}, {8});
    AffineMap w({"i"}, {LinearExpr({2}, 0)});
    AffineMap r({"i"}, {LinearExpr({2}, 1)});
    auto deps = analyzeSelfDependences(
        dom, {Access{"A", w, true}, Access{"A", r, false}});
    EXPECT_TRUE(deps.empty());
}

// ----------------------------------------------------------- lexmin

TEST(PolyProperty, LexMinMatchesEnumeration)
{
    IntegerSet s({"i", "j"});
    s.addDimBounds(0, 2, 9);
    s.addDimBounds(1, 0, 9);
    s.addInequality(LinearExpr({1, 1}, -8)); // i + j >= 8
    auto m = s.lexMin();
    ASSERT_TRUE(m.has_value());
    auto pts = s.enumerate();
    EXPECT_EQ(*m, pts.front());
    EXPECT_EQ(*m, (std::vector<std::int64_t>{2, 6}));
}

} // namespace
