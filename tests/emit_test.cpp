/**
 * @file
 * Tests for HLS C emission and the end-to-end driver: emitted code
 * structure (loops, pragmas, subscripts), the DSL renderer, and the
 * full codegen() round trip with verification.
 */

#include <gtest/gtest.h>

#include "driver/compiler.h"
#include "emit/hls_emitter.h"
#include "support/string_util.h"
#include "workloads/workloads.h"

namespace {

using namespace pom;
using workloads::makeByName;

TEST(Emit, GemmManualScheduleProducesFig6Code)
{
    // The paper's Fig. 5/6 flow: tile + pipeline + unroll + partition.
    const std::int64_t n = 32;
    dsl::Function f("gemm");
    dsl::Var i("i", 0, n), j("j", 0, n), k("k", 0, n);
    dsl::Placeholder A(f, "A", {n, n});
    dsl::Placeholder B(f, "B", {n, n});
    dsl::Placeholder C(f, "C", {n, n});
    dsl::Compute s(f, "s", {k, i, j}, A(i, j) + B(i, k) * C(k, j),
                   A(i, j));
    dsl::Var i0("i0"), j0("j0"), i1("i1"), j1("j1");
    s.tile(i, j, 4, 4, i0, j0, i1, j1);
    s.pipeline(j0, 1);
    s.unroll(i1, 4);
    s.unroll(j1, 4);
    A.partition({4, 4}, "cyclic");

    driver::CompileResult result = driver::compile(f);
    const std::string &code = result.hlsCode;

    EXPECT_NE(code.find("void gemm(float A[32][32]"), std::string::npos);
    EXPECT_NE(code.find("#pragma HLS array_partition variable=A cyclic "
                        "factor=4 dim=1"),
              std::string::npos);
    EXPECT_NE(code.find("#pragma HLS array_partition variable=A cyclic "
                        "factor=4 dim=2"),
              std::string::npos);
    EXPECT_NE(code.find("#pragma HLS pipeline II=1"), std::string::npos);
    EXPECT_NE(code.find("#pragma HLS unroll factor=4"),
              std::string::npos);
    EXPECT_NE(code.find("for (int k = 0; k <= 31; ++k)"),
              std::string::npos);
    // The tiled subscript A[4*i0 + i1][4*j0 + j1].
    EXPECT_NE(code.find("A[4*i0 + i1][4*j0 + j1]"), std::string::npos);
}

TEST(Emit, FullUnrollPragmaHasNoFactor)
{
    dsl::Function f("vec");
    dsl::Var i("i", 0, 16);
    dsl::Placeholder X(f, "X", {16});
    dsl::Compute s(f, "s", {i}, X(i) * 2.0, X(i));
    s.unroll(i, 0);
    auto result = driver::compile(f);
    EXPECT_NE(result.hlsCode.find("#pragma HLS unroll\n"),
              std::string::npos);
    EXPECT_EQ(result.hlsCode.find("unroll factor"), std::string::npos);
}

TEST(Emit, MinMaxBoundsUseHelpers)
{
    // A skewed stencil produces max()/min() loop bounds.
    dsl::Function f("stencil");
    dsl::Var i("i", 1, 9), j("j", 1, 9);
    dsl::Placeholder A(f, "A", {9, 9});
    dsl::Compute s(f, "s", {i, j}, A(i - 1, j - 1) * 2.0, A(i, j));
    dsl::Var ip("ipr"), jp("jpr");
    s.skew(i, j, 1, ip, jp);
    s.interchange(ip, jp); // wavefront order -> triangular bounds
    auto result = driver::compile(f);
    EXPECT_NE(result.hlsCode.find("max("), std::string::npos);
    EXPECT_NE(result.hlsCode.find("min("), std::string::npos);
}

TEST(Emit, IntegerTypesAndOps)
{
    dsl::Function f("ints");
    dsl::Var i("i", 0, 8);
    dsl::Placeholder A(f, "A", {8}, dsl::ScalarKind::I16);
    dsl::Placeholder B(f, "B", {8}, dsl::ScalarKind::I16);
    dsl::Compute s(f, "s", {i}, A(i) * 3.0, B(i));
    auto result = driver::compile(f);
    EXPECT_NE(result.hlsCode.find("int16_t A[8]"), std::string::npos);
}

TEST(Emit, MaxMinBecomeFmax)
{
    dsl::Function f("relu");
    dsl::Var i("i", 0, 8);
    dsl::Placeholder A(f, "A", {8});
    dsl::Compute s(f, "s", {i}, dsl::max(A(i), 0.0), A(i));
    auto result = driver::compile(f);
    EXPECT_NE(result.hlsCode.find("fmax("), std::string::npos);
}

TEST(Emit, CodeIsStableAcrossRuns)
{
    auto w1 = makeByName("bicg", 32);
    auto w2 = makeByName("bicg", 32);
    auto r1 = driver::compile(w1->func());
    auto r2 = driver::compile(w2->func());
    EXPECT_EQ(r1.hlsCode, r2.hlsCode);
}

TEST(Driver, CompileRunsDseWhenRequested)
{
    auto w = makeByName("gemm", 64);
    w->func().autoDSE();
    auto result = driver::compile(w->func());
    EXPECT_GT(result.report.speedupOver(result.baseline), 10.0);
    EXPECT_GT(result.dseSeconds, 0.0);
    EXPECT_NE(result.hlsCode.find("#pragma HLS pipeline"),
              std::string::npos);
    EXPECT_NE(result.hlsCode.find("array_partition"), std::string::npos);
}

TEST(Driver, CompileWithoutDseAppliesUserSchedule)
{
    auto w = makeByName("gemm", 32);
    auto result = driver::compile(w->func());
    EXPECT_EQ(result.dseSeconds, 0.0);
    // No schedule: report equals baseline.
    EXPECT_EQ(result.report.latencyCycles, result.baseline.latencyCycles);
}

TEST(Driver, RenderDslRoundTripsStructure)
{
    auto w = makeByName("bicg", 64);
    std::string dsl_src = driver::renderDsl(w->func());
    EXPECT_NE(dsl_src.find("placeholder A"), std::string::npos);
    EXPECT_NE(dsl_src.find("compute s_q"), std::string::npos);
    EXPECT_NE(dsl_src.find("s_s.fuse(s_q);"), std::string::npos);
    EXPECT_NE(dsl_src.find("codegen();"), std::string::npos);
    EXPECT_NE(dsl_src.find("p_float32"), std::string::npos);
}

TEST(Driver, DslIsMuchShorterThanHlsC)
{
    // The Fig. 15 property: DSL (with autoDSE) is a fraction of the
    // emitted HLS C size for multi-loop benchmarks.
    auto w = makeByName("3mm", 64);
    w->func().autoDSE();
    auto result = driver::compile(w->func());
    int dsl_loc = support::countLoc(driver::renderDsl(w->func()));
    int c_loc = support::countLoc(result.hlsCode);
    EXPECT_LT(dsl_loc * 2, c_loc);
}

TEST(Driver, RenderDslShowsPrimitives)
{
    dsl::Function f("sched");
    dsl::Var i("i", 0, 32), j("j", 0, 32);
    dsl::Placeholder A(f, "A", {32, 32});
    dsl::Compute s(f, "s", {i, j}, A(i, j) * 2.0, A(i, j));
    dsl::Var i0("i0"), j0("j0"), i1("i1"), j1("j1");
    s.tile(i, j, 4, 4, i0, j0, i1, j1);
    s.pipeline(j0, 1);
    s.unroll(j1, 4);
    A.partition({4, 4}, "cyclic");
    std::string src = driver::renderDsl(f);
    EXPECT_NE(src.find("s.tile(i, j, 4, 4, i0, j0, i1, j1);"),
              std::string::npos);
    EXPECT_NE(src.find("s.pipeline(j0, 1);"), std::string::npos);
    EXPECT_NE(src.find("s.unroll(j1, 4);"), std::string::npos);
    EXPECT_NE(src.find("A.partition({4, 4}, \"cyclic\");"),
              std::string::npos);
}

TEST(Emit, EmittedGemmCompilesAsC)
{
    // The emitted code must be valid C++ (smoke-compiled in-process by
    // checking for balanced braces and no placeholder tokens).
    auto w = makeByName("gemm", 32);
    w->func().autoDSE();
    auto result = driver::compile(w->func());
    const std::string &code = result.hlsCode;
    EXPECT_EQ(std::count(code.begin(), code.end(), '{'),
              std::count(code.begin(), code.end(), '}'));
    EXPECT_EQ(code.find("__self"), std::string::npos);
    EXPECT_EQ(code.find("?"), std::string::npos);
}

} // namespace
