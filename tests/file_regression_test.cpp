/**
 * @file
 * File-based regression harness over the tests/regression cases.
 *
 * Each case file starts with a `// pipeline: <spec>` header naming the
 * pass pipeline to run (empty spec = plain round-trip). The harness
 * parses the file, runs the pipeline, prints the result, and diffs it
 * against the checked-in `<case>.expected` file -- the same contract
 * the pom_opt_regression ctest enforces through the actual pom-opt
 * binary.
 *
 * To regenerate expectations after an intentional printer or pass
 * change: POM_UPDATE_EXPECTED=1 ./file_regression_test
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "ir/parser.h"
#include "lower/lower.h"
#include "pass/pass_manager.h"

namespace {

namespace fs = std::filesystem;
using namespace pom;

std::string
readFile(const fs::path &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "cannot open " << path;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

/** First-line `// pipeline: spec` header, or empty. */
std::string
pipelineOf(const std::string &source)
{
    const std::string tag = "// pipeline:";
    if (source.rfind(tag, 0) != 0)
        return "";
    size_t eol = source.find('\n');
    std::string spec = source.substr(tag.size(),
                                     eol - tag.size());
    size_t begin = spec.find_first_not_of(" \t");
    if (begin == std::string::npos)
        return "";
    size_t end = spec.find_last_not_of(" \t\r");
    return spec.substr(begin, end - begin + 1);
}

TEST(FileRegression, CasesMatchExpectations)
{
    fs::path dir(POM_REGRESSION_DIR);
    ASSERT_TRUE(fs::is_directory(dir)) << dir;
    bool update = std::getenv("POM_UPDATE_EXPECTED") != nullptr;
    lower::registerLoweringPasses();

    std::vector<fs::path> cases;
    for (const auto &entry : fs::directory_iterator(dir)) {
        if (entry.path().extension() == ".pom-ir")
            cases.push_back(entry.path());
    }
    ASSERT_FALSE(cases.empty()) << "no .pom-ir cases in " << dir;

    for (const auto &path : cases) {
        SCOPED_TRACE(path.filename().string());
        std::string source = readFile(path);
        pass::PipelineState state;
        state.func = ir::parseIr(source);
        pass::PassManager pm;
        std::string spec = pipelineOf(source);
        if (!spec.empty())
            pm.addPipeline(spec);
        pm.run(state);
        std::string got = state.func ? state.func->str() : "";

        fs::path expected_path = path;
        expected_path.replace_extension(".expected");
        if (update) {
            std::ofstream out(expected_path);
            out << got;
            continue;
        }
        ASSERT_TRUE(fs::exists(expected_path))
            << "missing " << expected_path
            << " (run with POM_UPDATE_EXPECTED=1 to create)";
        EXPECT_EQ(got, readFile(expected_path));
    }
}

} // namespace
