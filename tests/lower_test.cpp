/**
 * @file
 * End-to-end lowering tests: DSL -> polyhedral IR -> AST -> annotated
 * affine dialect, with functional verification through the interpreter.
 * The central property: any combination of scheduling primitives must
 * leave the computed result bit-identical to the unscheduled program.
 */

#include <gtest/gtest.h>

#include "dsl/dsl.h"
#include "ir/interpreter.h"
#include "ir/verifier.h"
#include "lower/lower.h"
#include "support/diagnostics.h"

namespace {

using namespace pom;
using dsl::Compute;
using dsl::Function;
using dsl::Placeholder;
using dsl::Var;
using dsl::Expr;
using support::FatalError;

/** Interpret both the unscheduled and scheduled versions and compare. */
void
expectSameSemantics(const Function &f)
{
    auto plain = lower::lowerStmts(f, lower::extractStmts(f));
    auto scheduled = lower::lower(f);
    ASSERT_TRUE(ir::verify(*plain.func).empty());
    ASSERT_TRUE(ir::verify(*scheduled.func).empty());

    auto b1 = ir::makeBuffersFor(*plain.func, 99);
    auto b2 = ir::makeBuffersFor(*scheduled.func, 99);
    ir::runFunction(*plain.func, b1);
    ir::runFunction(*scheduled.func, b2);
    for (const auto &[name, buf] : b1) {
        const auto &got = b2.at(name)->data();
        const auto &want = buf->data();
        ASSERT_EQ(got.size(), want.size());
        for (size_t i = 0; i < want.size(); ++i) {
            ASSERT_DOUBLE_EQ(got[i], want[i])
                << "buffer " << name << " index " << i;
        }
    }
}

TEST(Lower, GemmAgainstReference)
{
    const std::int64_t n = 12;
    Function f("gemm");
    Var i("i", 0, n), j("j", 0, n), k("k", 0, n);
    Placeholder A(f, "A", {n, n});
    Placeholder B(f, "B", {n, n});
    Placeholder C(f, "C", {n, n});
    Compute s(f, "s", {i, j, k}, A(i, j) + B(i, k) * C(k, j), A(i, j));

    auto lowered = lower::lower(f);
    ASSERT_TRUE(ir::verify(*lowered.func).empty());
    auto buffers = ir::makeBuffersFor(*lowered.func, 3);
    std::vector<double> ref = buffers["A"]->data();
    const auto &db = buffers["B"]->data();
    const auto &dc = buffers["C"]->data();
    for (std::int64_t ii = 0; ii < n; ++ii)
        for (std::int64_t jj = 0; jj < n; ++jj)
            for (std::int64_t kk = 0; kk < n; ++kk)
                ref[ii * n + jj] += db[ii * n + kk] * dc[kk * n + jj];
    ir::runFunction(*lowered.func, buffers);
    for (size_t x = 0; x < ref.size(); ++x)
        ASSERT_DOUBLE_EQ(buffers["A"]->data()[x], ref[x]);
}

TEST(Lower, TiledGemmSameSemantics)
{
    const std::int64_t n = 16;
    Function f("gemm");
    Var i("i", 0, n), j("j", 0, n), k("k", 0, n);
    Placeholder A(f, "A", {n, n});
    Placeholder B(f, "B", {n, n});
    Placeholder C(f, "C", {n, n});
    Compute s(f, "s", {k, i, j}, A(i, j) + B(i, k) * C(k, j), A(i, j));
    Var i0("i0"), j0("j0"), i1("i1"), j1("j1");
    s.tile(i, j, 4, 4, i0, j0, i1, j1);
    s.pipeline(j0, 1);
    s.unroll(i1, 4);
    s.unroll(j1, 4);
    A.partition({4, 4}, "cyclic");
    expectSameSemantics(f);
}

TEST(Lower, SplitNonDividingSameSemantics)
{
    Function f("vadd");
    Var i("i", 0, 37);
    Placeholder X(f, "X", {37});
    Placeholder Y(f, "Y", {37});
    Compute s(f, "s", {i}, X(i) + Y(i), X(i));
    Var i0("i0"), i1("i1");
    s.split(i, 8, i0, i1);
    s.pipeline(i0, 1);
    s.unroll(i1, 0);
    expectSameSemantics(f);
}

TEST(Lower, InterchangeSameSemantics)
{
    const std::int64_t n = 10;
    Function f("bicg_like");
    Var i("i", 0, n), j("j", 0, n);
    Placeholder A(f, "A", {n, n});
    Placeholder p(f, "p", {n});
    Placeholder q(f, "q", {n});
    Compute s(f, "s", {i, j}, q(i) + A(i, j) * p(j), q(i));
    s.interchange(i, j);
    expectSameSemantics(f);
}

TEST(Lower, SkewedStencilSameSemantics)
{
    // A Fig. 1 style diagonal stencil; skewing must preserve results
    // because the dependence direction is respected by the new order.
    Function f("stencil");
    Var i("i", 1, 9), j("j", 1, 9);
    Placeholder A(f, "A", {9, 9});
    Compute s(f, "s", {i, j}, A(i - 1, j - 1) * 2.0 + 3.0, A(i, j));
    Var ip("ipr"), jp("jpr");
    s.skew(i, j, 1, ip, jp);
    expectSameSemantics(f);
}

TEST(Lower, TwoComputesSequential)
{
    // S2 consumes S1's output; order must be respected.
    const std::int64_t n = 8;
    Function f("seq");
    Var i("i", 0, n);
    Placeholder X(f, "X", {n});
    Placeholder Y(f, "Y", {n});
    Placeholder Z(f, "Z", {n});
    Compute s1(f, "s1", {i}, X(i) * 2.0, Y(i));
    Compute s2(f, "s2", {i}, Y(i) + 1.0, Z(i));

    auto lowered = lower::lower(f);
    auto buffers = ir::makeBuffersFor(*lowered.func, 5);
    std::vector<double> x = buffers["X"]->data();
    ir::runFunction(*lowered.func, buffers);
    for (std::int64_t t = 0; t < n; ++t) {
        ASSERT_DOUBLE_EQ(buffers["Y"]->data()[t], x[t] * 2.0);
        ASSERT_DOUBLE_EQ(buffers["Z"]->data()[t], x[t] * 2.0 + 1.0);
    }
}

TEST(Lower, FusedComputesShareLoop)
{
    const std::int64_t n = 8;
    Function f("fused");
    Var i("i", 0, n);
    Placeholder X(f, "X", {n});
    Placeholder Y(f, "Y", {n});
    Placeholder Z(f, "Z", {n});
    Compute s1(f, "s1", {i}, X(i) * 2.0, Y(i));
    Compute s2(f, "s2", {i}, X(i) + 1.0, Z(i));
    s2.fuse(s1);

    auto lowered = lower::lower(f);
    // One loop only.
    int for_count = 0;
    lowered.func->walk([&](const ir::Operation &op) {
        if (op.opName() == "affine.for")
            ++for_count;
    });
    EXPECT_EQ(for_count, 1);
    expectSameSemantics(f);
}

TEST(Lower, JacobiTimeLoopViaAfter)
{
    // Jacobi-1d as in Fig. 16: two computes sharing the time loop.
    const std::int64_t n = 16, steps = 4;
    Function f("jacobi1d");
    Var t("t", 0, steps), i("i", 1, n - 1), i2("i2", 1, n - 1);
    Placeholder A(f, "A", {n});
    Placeholder B(f, "B", {n});
    Compute s1(f, "s1", {t, i}, (A(i - 1) + A(i) + A(i + 1)) / 3.0, B(i));
    Compute s2(f, "s2", {t, i2}, B(i2), A(i2));
    s2.after(s1, t);

    auto lowered = lower::lower(f);
    ASSERT_TRUE(ir::verify(*lowered.func).empty());
    // Expect exactly one time loop at the top.
    ASSERT_EQ(lowered.astRoot->kind(), pom::ast::AstNode::Kind::For);
    EXPECT_EQ(lowered.astRoot->iterName, "t");
    EXPECT_EQ(lowered.astRoot->children.size(), 2u);

    // Compare against a plain reference.
    auto buffers = ir::makeBuffersFor(*lowered.func, 11);
    std::vector<double> a = buffers["A"]->data();
    std::vector<double> b = buffers["B"]->data();
    for (std::int64_t tt = 0; tt < steps; ++tt) {
        for (std::int64_t ii = 1; ii < n - 1; ++ii)
            b[ii] = (a[ii - 1] + a[ii] + a[ii + 1]) / 3.0;
        for (std::int64_t ii = 1; ii < n - 1; ++ii)
            a[ii] = b[ii];
    }
    ir::runFunction(*lowered.func, buffers);
    for (std::int64_t ii = 0; ii < n; ++ii) {
        ASSERT_DOUBLE_EQ(buffers["A"]->data()[ii], a[ii]) << ii;
        ASSERT_DOUBLE_EQ(buffers["B"]->data()[ii], b[ii]) << ii;
    }
}

TEST(Lower, NonAffineSubscriptIsFatal)
{
    Function f("bad");
    Var i("i", 0, 8), j("j", 0, 8);
    Placeholder A(f, "A", {8, 8});
    Placeholder B(f, "B", {8});
    // A(i*j) is non-affine.
    Compute s(f, "s", {i, j}, A(Expr(i) * Expr(j), j), B(i));
    EXPECT_THROW(lower::lower(f), FatalError);
}

TEST(Lower, WrongRankIsFatal)
{
    Function f("bad2");
    Var i("i", 0, 8);
    Placeholder A(f, "A", {8, 8});
    Placeholder B(f, "B", {8});
    Compute s(f, "s", {i}, A(i), B(i)); // A needs two subscripts
    EXPECT_THROW(lower::lower(f), FatalError);
}

TEST(Lower, DslValidation)
{
    Function f("v");
    Var i("i", 0, 8);
    Placeholder A(f, "A", {8});
    EXPECT_THROW(Var("e", 3, 3), FatalError);
    EXPECT_THROW(Placeholder(f, "A", {4}), FatalError); // duplicate
    EXPECT_THROW(Placeholder(f, "Z", {0}), FatalError); // bad extent
    EXPECT_THROW(Compute(f, "c", {}, A(i), A(i)), FatalError);
    Var unranged("u");
    EXPECT_THROW(Compute(f, "c", {unranged}, A(i), A(i)), FatalError);
    EXPECT_THROW(Compute(f, "c", {i, i}, A(i), A(i)), FatalError);
    EXPECT_THROW(Compute(f, "c", {i}, A(i), Expr(1.0) + A(i)), FatalError);
    EXPECT_THROW(A.partition({2, 2}, "cyclic"), FatalError);
    EXPECT_THROW(A.partition({3}, "weird"), FatalError);
    EXPECT_THROW(A.partition({100}, "cyclic"), FatalError);
}

TEST(Lower, HlsAttributesAppearInIr)
{
    const std::int64_t n = 8;
    Function f("annotated");
    Var i("i", 0, n), j("j", 0, n);
    Placeholder A(f, "A", {n, n});
    Compute s(f, "s", {i, j}, A(i, j) * 2.0, A(i, j));
    s.pipeline(i, 2);
    s.unroll(j, 4);
    A.partition({2, 2}, "cyclic");

    auto lowered = lower::lower(f);
    bool saw_pipeline = false, saw_unroll = false;
    lowered.func->walk([&](const ir::Operation &op) {
        if (op.opName() != "affine.for")
            return;
        if (op.hasAttr(ir::kAttrPipelineII) &&
            op.attr(ir::kAttrPipelineII).asInt() == 2) {
            saw_pipeline = true;
        }
        if (op.hasAttr(ir::kAttrUnroll) &&
            op.attr(ir::kAttrUnroll).asInt() == 4) {
            saw_unroll = true;
        }
    });
    EXPECT_TRUE(saw_pipeline);
    EXPECT_TRUE(saw_unroll);
    EXPECT_TRUE(lowered.func->hasAttr("hls.partition.A"));
    EXPECT_EQ(lowered.func->attr("hls.partition_kind.A").asString(),
              "cyclic");
}

TEST(Lower, IntegerElementTypes)
{
    const std::int64_t n = 8;
    Function f("ints");
    Var i("i", 0, n);
    Placeholder A(f, "A", {n}, dsl::ScalarKind::I32);
    Placeholder B(f, "B", {n}, dsl::ScalarKind::I32);
    Compute s(f, "s", {i}, A(i) * 3.0 + 1.0, B(i));
    auto lowered = lower::lower(f);
    ASSERT_TRUE(ir::verify(*lowered.func).empty());
    bool saw_muli = false;
    lowered.func->walk([&](const ir::Operation &op) {
        if (op.opName() == "arith.muli")
            saw_muli = true;
    });
    EXPECT_TRUE(saw_muli);
}

/** Property sweep: tiled GEMM across sizes and factors. */
struct TileCase
{
    std::int64_t n, t1, t2;
};

class TiledGemmSweep : public ::testing::TestWithParam<TileCase>
{};

TEST_P(TiledGemmSweep, SameSemantics)
{
    auto [n, t1, t2] = GetParam();
    Function f("gemm");
    Var i("i", 0, n), j("j", 0, n), k("k", 0, n);
    Placeholder A(f, "A", {n, n});
    Placeholder B(f, "B", {n, n});
    Placeholder C(f, "C", {n, n});
    Compute s(f, "s", {k, i, j}, A(i, j) + B(i, k) * C(k, j), A(i, j));
    Var i0("i0"), j0("j0"), i1("i1"), j1("j1");
    s.tile(i, j, t1, t2, i0, j0, i1, j1);
    s.pipeline(j0, 1);
    s.unroll(i1, 0);
    s.unroll(j1, 0);
    expectSameSemantics(f);
}

INSTANTIATE_TEST_SUITE_P(Cases, TiledGemmSweep,
                         ::testing::Values(TileCase{8, 2, 2},
                                           TileCase{8, 4, 2},
                                           TileCase{9, 2, 3},
                                           TileCase{10, 4, 4},
                                           TileCase{12, 3, 4},
                                           TileCase{7, 2, 4}));

/** Property sweep: skewed stencils across skew factors. */
class SkewStencilSweep : public ::testing::TestWithParam<std::int64_t>
{};

TEST_P(SkewStencilSweep, SameSemantics)
{
    Function f("stencil");
    Var i("i", 1, 8), j("j", 1, 8);
    Placeholder A(f, "A", {8, 8});
    Compute s(f, "s", {i, j}, A(i - 1, j - 1) + A(i, j - 1), A(i, j));
    Var ip("ipr"), jp("jpr");
    s.skew(i, j, GetParam(), ip, jp);
    expectSameSemantics(f);
}

INSTANTIATE_TEST_SUITE_P(Factors, SkewStencilSweep,
                         ::testing::Values(1, 2, 3));

} // namespace
