/**
 * @file
 * Tests for the support::ThreadPool that backs the parallel DSE: job
 * count resolution, FIFO execution, future plumbing (results and
 * exceptions), graceful shutdown, the worker-thread deadlock guard, and
 * a concurrent stress case meant to run under the sanitizer CI job.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "support/thread_pool.h"

namespace {

using pom::support::ThreadPool;
using pom::support::parallelFor;

/** RAII guard so job-count tests cannot leak into other tests. */
struct JobsGuard
{
    ~JobsGuard()
    {
        pom::support::setJobs(0);
        unsetenv("POM_JOBS");
    }
};

TEST(Jobs, SetJobsWinsOverEnvironment)
{
    JobsGuard guard;
    setenv("POM_JOBS", "3", 1);
    pom::support::setJobs(7);
    EXPECT_EQ(pom::support::jobs(), 7);
    pom::support::setJobs(0); // reset: fall back to the environment
    EXPECT_EQ(pom::support::jobs(), 3);
}

TEST(Jobs, EnvironmentIsClampedAndValidated)
{
    JobsGuard guard;
    pom::support::setJobs(0);
    setenv("POM_JOBS", "2", 1);
    EXPECT_EQ(pom::support::jobs(), 2);
    setenv("POM_JOBS", "100000", 1);
    EXPECT_EQ(pom::support::jobs(), 256); // clamped
    // Non-positive or garbage values fall back to hardware concurrency.
    for (const char *bad : {"0", "-4", "not-a-number"}) {
        setenv("POM_JOBS", bad, 1);
        EXPECT_GE(pom::support::jobs(), 1) << bad;
    }
    pom::support::setJobs(9999);
    EXPECT_EQ(pom::support::jobs(), 256); // setJobs clamps too
}

TEST(ThreadPool, RunsSubmittedTasks)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.workerCount(), 4);
    auto a = pool.submit([]() { return 2 + 2; });
    auto b = pool.submit([]() { return std::string("ok"); });
    EXPECT_EQ(a.get(), 4);
    EXPECT_EQ(b.get(), "ok");
    EXPECT_GE(pool.tasksExecuted(), 2u);
}

TEST(ThreadPool, PropagatesExceptions)
{
    ThreadPool pool(2);
    auto f = pool.submit(
        []() -> int { throw std::runtime_error("boom"); });
    EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, DrainsQueueOnDestruction)
{
    std::atomic<int> ran{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 64; ++i)
            pool.submit([&ran]() { ++ran; });
        // No get(): the destructor must still run every queued task.
    }
    EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPool, IsWorkerThreadSeesOwnWorkersOnly)
{
    ThreadPool pool(2);
    ThreadPool other(1);
    EXPECT_FALSE(pool.isWorkerThread());
    auto inside = pool.submit([&pool]() { return pool.isWorkerThread(); });
    auto cross = pool.submit(
        [&other]() { return other.isWorkerThread(); });
    EXPECT_TRUE(inside.get());
    EXPECT_FALSE(cross.get());
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce)
{
    ThreadPool pool(4);
    std::vector<int> hits(1000, 0);
    parallelFor(&pool, hits.size(), [&hits](size_t i) { hits[i] += 1; });
    EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 1000);

    // Null pool: inline execution, same contract.
    std::vector<int> inline_hits(10, 0);
    parallelFor(nullptr, inline_hits.size(),
                [&inline_hits](size_t i) { inline_hits[i] += 1; });
    EXPECT_EQ(
        std::accumulate(inline_hits.begin(), inline_hits.end(), 0), 10);
}

TEST(ThreadPool, ConcurrentStress)
{
    // Many producers hammering one pool; meant for the TSan-less
    // ASan+UBSan CI job to shake out lifetime and queue races.
    ThreadPool pool(8);
    std::atomic<std::int64_t> sum{0};
    std::vector<std::thread> producers;
    for (int p = 0; p < 4; ++p) {
        producers.emplace_back([&pool, &sum, p]() {
            std::vector<std::future<int>> futs;
            for (int i = 0; i < 250; ++i) {
                futs.push_back(
                    pool.submit([p, i]() { return p * 1000 + i; }));
            }
            for (auto &f : futs)
                sum += f.get();
        });
    }
    for (auto &t : producers)
        t.join();
    // sum over p in 0..3, i in 0..249 of (1000p + i) = 1500000 + 124500
    EXPECT_EQ(sum.load(), 1624500);
    EXPECT_EQ(pool.tasksExecuted(), 1000u);
}

} // namespace
