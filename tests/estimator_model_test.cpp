/**
 * @file
 * Focused tests for the synthesis model's mechanics: accumulator
 * recurrences, broadcast port deduplication, BRAM/interface accounting,
 * dataflow stalls, power monotonicity, and II composition.
 */

#include <gtest/gtest.h>

#include "hls/estimator.h"
#include "lower/lower.h"
#include "transform/poly_stmt.h"
#include "workloads/workloads.h"

namespace {

using namespace pom;

/** A single accumulation loop: q[0] += x[i]. */
hls::SynthesisReport
accumulatorReport(std::int64_t n)
{
    static std::vector<std::unique_ptr<workloads::Workload>> keep;
    auto w = std::make_unique<workloads::Workload>(
        "acc" + std::to_string(keep.size()));
    dsl::Var i("i", 0, n);
    auto &x = w->array("x", {n});
    auto &q = w->array("q", {1});
    w->compute("s", {i}, q(0) + x(i), q(0));
    auto stmts = lower::extractStmts(w->func());
    transform::setPipeline(stmts[0], "i", 1);
    auto lowered = lower::lowerStmts(w->func(), std::move(stmts));
    auto report = hls::estimate(w->func(), lowered);
    keep.push_back(std::move(w));
    return report;
}

TEST(EstimatorModel, AccumulatorRecurrenceIsAdderBound)
{
    auto report = accumulatorReport(256);
    ASSERT_EQ(report.loops.size(), 1u);
    // II = fadd latency + store, not the whole body depth.
    hls::OpCosts costs;
    EXPECT_EQ(report.loops[0].achievedII,
              costs.faddLat + costs.storeLat);
}

TEST(EstimatorModel, NonAccumulatorRecurrenceUsesFullDepth)
{
    // A[i] = A[i-1] * 2 + 1: the source and sink subscripts differ, so
    // the full load-mul-add-store chain sits on the recurrence.
    workloads::Workload w("chain");
    dsl::Var i("i", 1, 128);
    auto &a = w.array("A", {128});
    w.compute("s", {i}, a(i - 1) * 2.0 + 1.0, a(i));
    auto stmts = lower::extractStmts(w.func());
    transform::setPipeline(stmts[0], "i", 1);
    auto lowered = lower::lowerStmts(w.func(), std::move(stmts));
    auto report = hls::estimate(w.func(), lowered);
    ASSERT_EQ(report.loops.size(), 1u);
    auto acc = accumulatorReport(128);
    EXPECT_GT(report.loops[0].achievedII, acc.loops[0].achievedII);
}

TEST(EstimatorModel, BroadcastReadsDoNotConsumePorts)
{
    // out[i] = scale[0] * x[i] with i unrolled by 16: the scale[0]
    // read is a broadcast; only x and out need bank parallelism.
    workloads::Workload w("bcast");
    const std::int64_t n = 256;
    dsl::Var i("i", 0, n);
    auto &x = w.array("x", {n});
    auto &scale = w.array("scale", {1});
    auto &out = w.array("out", {n});
    w.compute("s", {i}, scale(0) * x(i), out(i));
    x.partition({16}, "cyclic");
    out.partition({16}, "cyclic");
    // scale deliberately unpartitioned: a broadcast needs one port.
    auto stmts = lower::extractStmts(w.func());
    transform::split(stmts[0], "i", 16, "io", "ii");
    transform::setUnroll(stmts[0], "ii", 0);
    transform::setPipeline(stmts[0], "io", 1);
    auto lowered = lower::lowerStmts(w.func(), std::move(stmts));
    auto report = hls::estimate(w.func(), lowered);
    ASSERT_EQ(report.loops.size(), 1u);
    EXPECT_EQ(report.loops[0].resMII, 1);
    EXPECT_EQ(report.loops[0].achievedII, 1);
}

TEST(EstimatorModel, SmallArraysUseBramLargeOnesAreExternal)
{
    // 64-float vector (2 Kbit) -> BRAM; 4096x4096 matrix -> external.
    workloads::Workload w("mem");
    dsl::Var i("i", 0, 64);
    auto &small = w.array("small", {64});
    auto &big = w.array("big", {4096, 4096});
    w.compute("s", {i}, big(i, i) + 1.0, small(i));
    auto lowered = lower::lowerStmts(w.func(),
                                     lower::extractStmts(w.func()));
    auto report = hls::estimate(w.func(), lowered);
    EXPECT_EQ(report.resources.bramBits, 64 * 32);
}

TEST(EstimatorModel, CompletePartitionMovesToRegisters)
{
    workloads::Workload w("regs");
    dsl::Var i("i", 0, 64);
    auto &small = w.array("small", {64});
    auto &out = w.array("out", {64});
    small.partition({64}, "complete");
    w.compute("s", {i}, small(i) * 2.0, out(i));
    auto lowered = lower::lowerStmts(w.func(),
                                     lower::extractStmts(w.func()));
    auto report = hls::estimate(w.func(), lowered);
    // small's 2 Kbit land in FF, out's stay in BRAM.
    EXPECT_EQ(report.resources.bramBits, 64 * 32);
}

TEST(EstimatorModel, PowerGrowsWithResources)
{
    auto w1 = workloads::makeGemm(64);
    auto l1 = lower::lowerStmts(w1->func(),
                                lower::extractStmts(w1->func()));
    auto r1 = hls::estimate(w1->func(), l1);

    auto w2 = workloads::makeGemm(64);
    auto stmts = lower::extractStmts(w2->func());
    transform::interchange(stmts[0], "i", "k");
    transform::split(stmts[0], "i", 16, "io", "ii");
    transform::setUnroll(stmts[0], "ii", 0);
    transform::setPipeline(stmts[0], "io", 1);
    for (const auto *p : w2->func().placeholders()) {
        std::vector<std::int64_t> f(p->shape().size(), 16);
        w2->func().findPlaceholderMut(p->name())->partition(f, "cyclic");
    }
    auto l2 = lower::lowerStmts(w2->func(), std::move(stmts));
    auto r2 = hls::estimate(w2->func(), l2);

    EXPECT_GT(r2.resources.dsp, r1.resources.dsp);
    EXPECT_GT(r2.powerW, r1.powerW);
}

TEST(EstimatorModel, TargetIIIsALowerBound)
{
    auto w = workloads::makeGemm(64);
    auto stmts = lower::extractStmts(w->func());
    transform::interchange(stmts[0], "i", "k");
    transform::setPipeline(stmts[0], "i", 3); // user asks for II=3
    auto lowered = lower::lowerStmts(w->func(), std::move(stmts));
    auto report = hls::estimate(w->func(), lowered);
    ASSERT_EQ(report.loops.size(), 1u);
    EXPECT_GE(report.loops[0].achievedII, 3);
}

TEST(EstimatorModel, DataflowStallsBetweenStages)
{
    auto w = workloads::make3mm(128);
    auto lowered = lower::lowerStmts(w->func(),
                                     lower::extractStmts(w->func()));
    hls::EstimatorOptions reuse, dataflow;
    reuse.sharing = hls::SharingMode::Reuse;
    dataflow.sharing = hls::SharingMode::Dataflow;
    auto r = hls::estimate(w->func(), lowered, reuse);
    auto d = hls::estimate(w->func(), lowered, dataflow);
    // Dataflow hides part of the work but must not reach the perfect
    // bottleneck-only latency (stalls), nor exceed the sequential sum.
    std::uint64_t max_nest = 0;
    for (const auto &[name, lat] : r.nestLatencies)
        max_nest = std::max(max_nest, lat);
    EXPECT_GT(d.latencyCycles, max_nest);
    EXPECT_LT(d.latencyCycles, r.latencyCycles);
}

TEST(EstimatorModel, NestLatenciesSumToReuseTotal)
{
    auto w = workloads::make3mm(64);
    auto lowered = lower::lowerStmts(w->func(),
                                     lower::extractStmts(w->func()));
    auto report = hls::estimate(w->func(), lowered);
    std::uint64_t sum = 0;
    for (const auto &[name, lat] : report.nestLatencies)
        sum += lat;
    EXPECT_EQ(sum, report.latencyCycles);
    EXPECT_EQ(report.nestLatencies.size(), 3u);
}

TEST(EstimatorModel, UnoptimizedBicgMatchesPaperResourceScale)
{
    // Paper Table IV: unoptimized BICG uses 10 DSPs (two MACs).
    auto w = workloads::makeBicg(64);
    auto stmts = lower::extractStmts(w->func());
    lower::applyDirectives(stmts, true);
    auto lowered = lower::lowerStmts(w->func(), std::move(stmts));
    auto report = hls::estimate(w->func(), lowered);
    EXPECT_EQ(report.resources.dsp, 10);
}

} // namespace
