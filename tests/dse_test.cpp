/**
 * @file
 * Tests for the two-stage DSE engine and the baseline strategies:
 * stage-1 split-interchange-merge on BICG (Fig. 10), skew convergence on
 * Seidel, bottleneck-driven stage 2, resource-constraint compliance, and
 * the semantic-preservation property of every selected design.
 */

#include <gtest/gtest.h>

#include "baselines/baselines.h"
#include "dse/dse.h"
#include "ir/interpreter.h"
#include "ir/verifier.h"
#include "lower/lower.h"
#include "workloads/workloads.h"

namespace {

using namespace pom;
using workloads::makeByName;

/** The selected design must compute the same values as the input. */
void
expectDesignPreservesSemantics(dsl::Function &func,
                               const lower::LoweredFunction &design)
{
    auto ref_stmts = lower::extractStmts(func);
    lower::applyDirectives(ref_stmts, /*ordering_only=*/true);
    auto plain = lower::lowerStmts(func, std::move(ref_stmts));
    ASSERT_TRUE(ir::verify(*plain.func).empty());
    ASSERT_TRUE(ir::verify(*design.func).empty());
    auto b1 = ir::makeBuffersFor(*plain.func, 77);
    auto b2 = ir::makeBuffersFor(*design.func, 77);
    ir::runFunction(*plain.func, b1);
    ir::runFunction(*design.func, b2);
    for (const auto &[name, buf] : b1) {
        const auto &got = b2.at(name)->data();
        for (size_t i = 0; i < buf->data().size(); ++i) {
            ASSERT_DOUBLE_EQ(got[i], buf->data()[i])
                << "buffer " << name << " index " << i;
        }
    }
}

TEST(Dse, GemmFindsParallelDesign)
{
    auto w = makeByName("gemm", 64);
    auto result = dse::autoDSE(w->func());
    EXPECT_GT(result.speedup(), 20.0);
    EXPECT_TRUE(
        result.report.resources.fitsIn(hls::Device::xc7z020()));
    EXPECT_LE(result.report.worstII(), 2);
    EXPECT_GT(result.pointsExplored, 2);
    EXPECT_GE(result.dseSeconds, 0.0);
    expectDesignPreservesSemantics(w->func(), result.design);
}

TEST(Dse, BicgSplitInterchangeMerge)
{
    auto w = makeByName("bicg", 64);
    auto result = dse::autoDSE(w->func());
    // Stage 1 must split the fused nest (conflicting strategies),
    // transform, and conservatively re-fuse (Fig. 10).
    bool saw_split = false, saw_refuse = false;
    for (const auto &line : result.log) {
        if (line.find("split fused nest") != std::string::npos)
            saw_split = true;
        if (line.find("re-fused") != std::string::npos)
            saw_refuse = true;
    }
    EXPECT_TRUE(saw_split);
    EXPECT_TRUE(saw_refuse);
    EXPECT_LE(result.report.worstII(), 4);
    EXPECT_GT(result.speedup(), 10.0);
    expectDesignPreservesSemantics(w->func(), result.design);
}

TEST(Dse, SeidelSkewConverges)
{
    auto w = makeByName("seidel", 18); // small for interpretation
    auto result = dse::autoDSE(w->func());
    bool saw_skew = false, saw_interchange = false;
    for (const auto &line : result.log) {
        if (line.find("skew") != std::string::npos)
            saw_skew = true;
        if (line.find("interchange") != std::string::npos)
            saw_interchange = true;
    }
    EXPECT_TRUE(saw_skew);
    EXPECT_TRUE(saw_interchange);
    EXPECT_GT(result.speedup(), 1.0);
    expectDesignPreservesSemantics(w->func(), result.design);
}

TEST(Dse, JacobiSharedTimeLoopSurvives)
{
    auto w = makeByName("jacobi1d", 34);
    auto result = dse::autoDSE(w->func());
    EXPECT_GT(result.speedup(), 3.0);
    expectDesignPreservesSemantics(w->func(), result.design);
}

TEST(Dse, ResourceFractionLimitsParallelism)
{
    auto w_full = makeByName("gemm", 64);
    dse::DseOptions full;
    auto r_full = dse::autoDSE(w_full->func(), full);

    auto w_quarter = makeByName("gemm", 64);
    dse::DseOptions quarter;
    quarter.resourceFraction = 0.25;
    auto r_quarter = dse::autoDSE(w_quarter->func(), quarter);

    EXPECT_TRUE(r_quarter.report.resources.fitsIn(
        hls::Device::xc7z020().scaled(0.25)));
    EXPECT_LE(r_full.report.latencyCycles,
              r_quarter.report.latencyCycles);
    EXPECT_GE(r_full.report.resources.dsp,
              r_quarter.report.resources.dsp);
}

TEST(Dse, ParallelismRecordedPerStatement)
{
    auto w = makeByName("2mm", 64);
    auto result = dse::autoDSE(w->func());
    ASSERT_EQ(result.parallelism.size(), 2u);
    for (const auto &[name, degree] : result.parallelism)
        EXPECT_GE(degree, 1);
    EXPECT_GT(result.speedup(), 10.0);
}

TEST(Baselines, OrderingOnBicg)
{
    // The paper's Fig. 2 ordering: baseline ~ Pluto < POLSCA < ScaleHLS
    // < POM.
    auto base = makeByName("bicg", 256);
    auto r_unopt = baselines::runUnoptimized(base->func());

    auto w_pluto = makeByName("bicg", 256);
    auto r_pluto = baselines::runPlutoLike(w_pluto->func());

    auto w_polsca = makeByName("bicg", 256);
    auto r_polsca = baselines::runPolscaLike(w_polsca->func());

    auto w_scale = makeByName("bicg", 256);
    auto r_scale = baselines::runScaleHlsLike(w_scale->func());

    auto w_pom = makeByName("bicg", 256);
    auto r_pom = baselines::runPom(w_pom->func());

    double pluto = r_pluto.report.speedupOver(r_unopt.report);
    double polsca = r_polsca.report.speedupOver(r_unopt.report);
    double scale = r_scale.report.speedupOver(r_unopt.report);
    double pom = r_pom.report.speedupOver(r_unopt.report);

    EXPECT_NEAR(pluto, 1.0, 0.5);      // CPU schedule: no FPGA benefit
    EXPECT_GT(polsca, pluto * 0.9);    // pipelining helps a little
    EXPECT_LT(polsca, 6.0);            // ... but dependences remain
    EXPECT_GT(scale, polsca);          // directives DSE helps more
    EXPECT_GT(pom, scale * 1.5);       // split-interchange-merge wins
    // ScaleHLS cannot relieve both statements: its II stays high.
    EXPECT_GT(r_scale.report.worstII(), r_pom.report.worstII());
}

TEST(Baselines, ScaleHlsCliffAtHugeSizes)
{
    auto w = makeByName("gemm", 8192);
    baselines::BaselineOptions opt;
    auto r = baselines::runScaleHlsLike(w->func(), opt);
    EXPECT_NE(r.notes.find("basic pipelining"), std::string::npos);

    auto w2 = makeByName("gemm", 8192);
    auto r_pom = baselines::runPom(w2->func());
    EXPECT_LT(r_pom.report.latencyCycles, r.report.latencyCycles);
}

TEST(Baselines, DesignsPreserveSemantics)
{
    // Each baseline's transformed design must still compute the same
    // function (annotations never change semantics).
    auto check = [](auto runner) {
        auto w = makeByName("bicg", 24);
        auto r = runner(w->func());
        expectDesignPreservesSemantics(w->func(), r.design);
    };
    check([](dsl::Function &f) { return baselines::runPlutoLike(f); });
    check([](dsl::Function &f) { return baselines::runPolscaLike(f); });
    check([](dsl::Function &f) { return baselines::runScaleHlsLike(f); });
}

/** Property sweep: DSE-selected designs stay correct across workloads. */
class DseSemanticsSweep
    : public ::testing::TestWithParam<std::pair<const char *, int>>
{};

TEST_P(DseSemanticsSweep, DesignMatchesReference)
{
    auto [name, size] = GetParam();
    auto w = makeByName(name, size);
    auto result = dse::autoDSE(w->func());
    expectDesignPreservesSemantics(w->func(), result.design);
    EXPECT_GE(result.speedup(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, DseSemanticsSweep,
    ::testing::Values(std::make_pair("gemm", 20),
                      std::make_pair("bicg", 24),
                      std::make_pair("gesummv", 24),
                      std::make_pair("2mm", 16),
                      std::make_pair("3mm", 12),
                      std::make_pair("jacobi1d", 34),
                      std::make_pair("heat1d", 34),
                      std::make_pair("jacobi2d", 18),
                      std::make_pair("seidel", 14),
                      std::make_pair("blur", 16),
                      std::make_pair("gaussian", 16),
                      std::make_pair("edgedetect", 16)));

} // namespace
