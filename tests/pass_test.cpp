/**
 * @file
 * Tests for the pass subsystem: pipeline spec parsing, the registry,
 * PassManager timing/statistics/verification, the pipeline-based
 * reimplementation of lower(), and the core IR passes.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

#include "ir/attribute.h"
#include "ir/parser.h"
#include "ir/verifier.h"
#include "lower/lower.h"
#include "pass/pass_manager.h"
#include "support/diagnostics.h"
#include "workloads/workloads.h"

namespace {

using namespace pom;
using pass::PassManager;
using pass::PassManagerOptions;
using pass::PassOptions;
using pass::PassRegistry;
using pass::PipelineState;

TEST(PipelineSpec, ParsesNamesAndOptions)
{
    auto p = pass::parsePipelineSpec("a,b{k=v},c{x=1,y=2}");
    ASSERT_EQ(p.size(), 3u);
    EXPECT_EQ(p[0].first, "a");
    EXPECT_TRUE(p[0].second.empty());
    EXPECT_EQ(p[1].first, "b");
    EXPECT_EQ(p[1].second.at("k"), "v");
    EXPECT_EQ(p[2].second.at("x"), "1");
    EXPECT_EQ(p[2].second.at("y"), "2");

    EXPECT_TRUE(pass::parsePipelineSpec("").empty());
    EXPECT_TRUE(pass::parsePipelineSpec("  ").empty());
    auto spaced = pass::parsePipelineSpec(" a , b ");
    ASSERT_EQ(spaced.size(), 2u);
    EXPECT_EQ(spaced[0].first, "a");
    EXPECT_EQ(spaced[1].first, "b");
}

TEST(PipelineSpec, RejectsMalformedSpecs)
{
    EXPECT_THROW(pass::parsePipelineSpec(","), support::FatalError);
    EXPECT_THROW(pass::parsePipelineSpec("a,,b"), support::FatalError);
    EXPECT_THROW(pass::parsePipelineSpec("a{k"), support::FatalError);
    EXPECT_THROW(pass::parsePipelineSpec("a{k=v"), support::FatalError);
}

TEST(PassRegistry, KnowsCoreAndLoweringPasses)
{
    lower::registerLoweringPasses();
    auto &reg = PassRegistry::instance();
    for (const char *name :
         {"verify", "strip-hls", "count-ops", "extract-stmts",
          "schedule-apply", "annotate-pragmas", "build-ast",
          "ast-to-affine"}) {
        EXPECT_TRUE(reg.known(name)) << name;
    }
    EXPECT_FALSE(reg.known("no-such-pass"));
    EXPECT_THROW(reg.create("no-such-pass"), support::FatalError);
    EXPECT_GE(reg.list().size(), 8u);
}

TEST(PassManager, PipelineMatchesLower)
{
    lower::registerLoweringPasses();
    auto w = workloads::makeGemm(16);
    auto direct = lower::lower(w->func());

    PipelineState state;
    state.dslFunc = &w->func();
    PassManager pm;
    pm.addPipeline("extract-stmts,schedule-apply,annotate-pragmas,"
                   "build-ast,ast-to-affine,verify");
    pm.run(state);
    ASSERT_NE(state.func, nullptr);
    EXPECT_EQ(state.func->str(), direct.func->str());
}

TEST(PassManager, RecordsTimingAndStatistics)
{
    lower::registerLoweringPasses();
    auto w = workloads::makeBicg(16);
    PipelineState state;
    state.dslFunc = &w->func();
    PassManager pm;
    pm.addPipeline("extract-stmts,schedule-apply,build-ast,"
                   "ast-to-affine,count-ops");
    pm.run(state);

    ASSERT_EQ(pm.executions().size(), 5u);
    for (const auto &exec : pm.executions())
        EXPECT_GE(exec.seconds, 0.0) << exec.pass;
    // extract-stmts counted the two BICG statements.
    EXPECT_EQ(pm.executions()[0].statistics.at("stmts"), 2);
    // count-ops saw the function and its loops.
    const auto &counts = pm.executions()[4].statistics;
    EXPECT_EQ(counts.at("func.func"), 1);
    EXPECT_GT(counts.at("affine.for"), 0);

    std::string report = pm.timingReport();
    EXPECT_NE(report.find("extract-stmts"), std::string::npos);
    EXPECT_NE(report.find("total"), std::string::npos);
}

TEST(PassManager, VerifyAfterEachCatchesBrokenIr)
{
    // A hostile pass that corrupts the IR in place.
    class BreakIrPass : public pass::Pass
    {
      public:
        BreakIrPass() : Pass("break-ir") {}
        void
        run(PipelineState &state) override
        {
            state.func->walk([](ir::Operation &op) {
                if (op.opName() == "affine.for")
                    op.setAttr(ir::kAttrPipelineII,
                               ir::Attribute(std::int64_t(0)));
            });
        }
    };

    auto w = workloads::makeGemm(8);
    auto lowered = lower::lower(w->func());
    PipelineState state;
    state.func = std::move(lowered.func);

    PassManagerOptions options;
    options.verifyAfterEach = true;
    PassManager pm(options);
    pm.addPass(std::make_unique<BreakIrPass>());
    EXPECT_THROW(pm.run(state), support::FatalError);
}

TEST(PassManager, StripHlsRemovesPragmas)
{
    auto w = workloads::makeGemm(16);
    w->func().findCompute("s")->pipeline(dsl::Var("j"), 1);
    auto lowered = lower::lower(w->func());
    ASSERT_NE(lowered.func->str().find("hls."), std::string::npos);

    PipelineState state;
    state.func = std::move(lowered.func);
    PassManager pm;
    pm.addPipeline("strip-hls,verify");
    pm.run(state);
    EXPECT_EQ(state.func->str().find("hls."), std::string::npos);
    EXPECT_GT(pm.executions()[0].statistics.at("stripped-attrs"), 0);
}

TEST(PassManager, IrPassesRequireIr)
{
    PipelineState state; // no func
    PassManager pm;
    pm.addPipeline("verify");
    EXPECT_THROW(pm.run(state), support::FatalError);
}

TEST(PassManager, LoweringPassesRequireDslFunction)
{
    lower::registerLoweringPasses();
    PipelineState state;
    state.func = ir::parseIr("func.func {\n}\n");
    PassManager pm;
    pm.addPipeline("extract-stmts");
    EXPECT_THROW(pm.run(state), support::FatalError);
}

TEST(PassManager, DumpAfterEachWritesIr)
{
    auto w = workloads::makeGemm(8);
    auto lowered = lower::lower(w->func());
    PipelineState state;
    state.func = std::move(lowered.func);

    std::ostringstream dumps;
    PassManagerOptions options;
    options.dumpAfterEach = true;
    options.dumpStream = &dumps;
    PassManager pm(options);
    pm.addPipeline("count-ops");
    pm.run(state);
    EXPECT_NE(dumps.str().find("IR after count-ops"), std::string::npos);
    EXPECT_NE(dumps.str().find("func.func"), std::string::npos);
}

TEST(PassManager, ScheduleApplyOrderingOnlyOption)
{
    lower::registerLoweringPasses();
    auto w = workloads::makeGemm(16);
    w->func().findCompute("s")->pipeline(dsl::Var("j"), 1);

    PipelineState state;
    state.dslFunc = &w->func();
    PassManager pm;
    pm.addPipeline("extract-stmts,schedule-apply{ordering-only=true},"
                   "build-ast,ast-to-affine");
    pm.run(state);
    // The pipeline directive is hardware-only; ordering-only must skip
    // it, so the lowered IR carries no pragma annotations.
    EXPECT_EQ(state.func->str().find("hls."), std::string::npos);
}

TEST(GlobalTiming, AggregatesAcrossPipelines)
{
    pass::resetGlobalTiming();
    pass::setGlobalTimingEnabled(true);
    auto w1 = workloads::makeGemm(8);
    auto w2 = workloads::makeBicg(8);
    lower::lower(w1->func());
    lower::lower(w2->func());
    pass::setGlobalTimingEnabled(false);

    std::string report = pass::globalTimingReport();
    EXPECT_NE(report.find("2 pipeline runs"), std::string::npos);
    EXPECT_NE(report.find("extract-stmts"), std::string::npos);
    EXPECT_NE(report.find("ast-to-affine"), std::string::npos);

    pass::resetGlobalTiming();
    EXPECT_TRUE(pass::globalTimingReport().empty());
}

TEST(GlobalTiming, ThreadSafeAggregation)
{
    // Regression test: the aggregator must tolerate many pipelines
    // finishing concurrently (a parallel DSE sweep). Run under
    // -fsanitize=thread in CI; the counts must also come out exact.
    pass::resetGlobalTiming();
    pass::setGlobalTimingEnabled(true);

    constexpr int kThreads = 8;
    constexpr int kRunsPerThread = 4;
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([] {
            for (int i = 0; i < kRunsPerThread; ++i) {
                auto w = workloads::makeGemm(8);
                lower::lower(w->func());
            }
        });
    }
    for (auto &w : workers)
        w.join();
    pass::setGlobalTimingEnabled(false);

    std::string report = pass::globalTimingReport();
    std::ostringstream expected;
    expected << "(" << kThreads * kRunsPerThread << " pipeline runs)";
    EXPECT_NE(report.find(expected.str()), std::string::npos) << report;
    std::ostringstream runs;
    runs << kThreads * kRunsPerThread << " runs";
    EXPECT_NE(report.find(runs.str()), std::string::npos) << report;
    pass::resetGlobalTiming();
}

TEST(GlobalTiming, DisabledByDefault)
{
    pass::resetGlobalTiming();
    auto w = workloads::makeGemm(8);
    lower::lower(w->func());
    EXPECT_TRUE(pass::globalTimingReport().empty());
}

} // namespace
