# Drives the pom-opt binary over tests/regression/*.pom-ir and diffs
# stdout against the checked-in .expected files. Invoked by ctest as:
#   cmake -DPOM_OPT=<binary> -DCASE_DIR=<dir> -P run_regression.cmake
#
# Each case's first line is `// pipeline: <spec>`; an absent or empty
# spec runs pom-opt as a plain round-tripper.

if(NOT POM_OPT OR NOT CASE_DIR)
    message(FATAL_ERROR "usage: cmake -DPOM_OPT=... -DCASE_DIR=... -P run_regression.cmake")
endif()

file(GLOB cases "${CASE_DIR}/*.pom-ir")
if(NOT cases)
    message(FATAL_ERROR "no .pom-ir cases in ${CASE_DIR}")
endif()

set(failures 0)
foreach(case IN LISTS cases)
    get_filename_component(name "${case}" NAME)
    file(STRINGS "${case}" header LIMIT_COUNT 1)
    set(pipeline "")
    if(header MATCHES "^// pipeline:(.*)$")
        string(STRIP "${CMAKE_MATCH_1}" pipeline)
    endif()

    execute_process(
        COMMAND "${POM_OPT}" "${case}" "--pass-pipeline=${pipeline}"
        OUTPUT_VARIABLE got
        ERROR_VARIABLE err
        RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
        message(SEND_ERROR "${name}: pom-opt failed (${rc}): ${err}")
        math(EXPR failures "${failures} + 1")
        continue()
    endif()

    string(REGEX REPLACE "\\.pom-ir$" ".expected" expected_file "${case}")
    if(NOT EXISTS "${expected_file}")
        message(SEND_ERROR "${name}: missing ${expected_file}")
        math(EXPR failures "${failures} + 1")
        continue()
    endif()
    file(READ "${expected_file}" expected)
    if(NOT got STREQUAL expected)
        message(SEND_ERROR "${name}: pom-opt output differs from ${expected_file}\n---- got ----\n${got}\n---- expected ----\n${expected}")
        math(EXPR failures "${failures} + 1")
    else()
        message(STATUS "${name}: OK")
    endif()
endforeach()

if(failures GREATER 0)
    message(FATAL_ERROR "${failures} regression case(s) failed")
endif()
