/**
 * @file
 * Unit tests for the polyhedral substrate: linear expressions, integer
 * sets (Fourier-Motzkin projection, emptiness, bounds, enumeration),
 * affine maps, and dependence analysis.
 */

#include <gtest/gtest.h>

#include "poly/affine_map.h"
#include "poly/dependence.h"
#include "poly/integer_set.h"
#include "poly/linear_expr.h"
#include "support/math_util.h"
#include "support/rational.h"

namespace {

using namespace pom::poly;
using pom::support::Rational;

LinearExpr
expr(std::vector<std::int64_t> coeffs, std::int64_t c)
{
    return LinearExpr(std::move(coeffs), c);
}

// ---------------------------------------------------------------- math

TEST(MathUtil, FloorCeilDiv)
{
    EXPECT_EQ(pom::support::floorDiv(7, 8), 0);
    EXPECT_EQ(pom::support::floorDiv(-1, 8), -1);
    EXPECT_EQ(pom::support::floorDiv(-8, 8), -1);
    EXPECT_EQ(pom::support::floorDiv(8, 8), 1);
    EXPECT_EQ(pom::support::ceilDiv(7, 8), 1);
    EXPECT_EQ(pom::support::ceilDiv(-7, 8), 0);
    EXPECT_EQ(pom::support::ceilDiv(8, 8), 1);
}

TEST(MathUtil, EuclidMod)
{
    EXPECT_EQ(pom::support::euclidMod(7, 8), 7);
    EXPECT_EQ(pom::support::euclidMod(-1, 8), 7);
    EXPECT_EQ(pom::support::euclidMod(-8, 8), 0);
}

TEST(MathUtil, GcdLcm)
{
    EXPECT_EQ(pom::support::gcd(12, 18), 6);
    EXPECT_EQ(pom::support::gcd(0, 5), 5);
    EXPECT_EQ(pom::support::gcd(-12, 18), 6);
    EXPECT_EQ(pom::support::lcm(4, 6), 12);
}

TEST(MathUtil, PowersOfTwo)
{
    EXPECT_TRUE(pom::support::isPowerOfTwo(1));
    EXPECT_TRUE(pom::support::isPowerOfTwo(64));
    EXPECT_FALSE(pom::support::isPowerOfTwo(0));
    EXPECT_FALSE(pom::support::isPowerOfTwo(48));
    EXPECT_EQ(pom::support::nextPowerOfTwo(33), 64);
    EXPECT_EQ(pom::support::nextPowerOfTwo(1), 1);
}

TEST(Rational, OrderingAndArithmetic)
{
    Rational a(1, 3), b(2, 6), c(1, 2);
    EXPECT_EQ(a, b);
    EXPECT_LT(a, c);
    EXPECT_EQ((a + c).str(), "5/6");
    EXPECT_EQ((c - a).str(), "1/6");
    EXPECT_EQ((a * c).str(), "1/6");
    EXPECT_EQ((a / c).str(), "2/3");
    EXPECT_EQ(Rational(-3, -6), c);
    EXPECT_EQ(Rational(7, -2).floor(), -4);
    EXPECT_EQ(Rational(7, -2).ceil(), -3);
}

// ---------------------------------------------------------- LinearExpr

TEST(LinearExpr, BasicArithmetic)
{
    auto e = LinearExpr::dim(3, 0).scaled(2) + LinearExpr::dim(3, 2) -
             LinearExpr::constant(3, 5);
    EXPECT_EQ(e.coeff(0), 2);
    EXPECT_EQ(e.coeff(1), 0);
    EXPECT_EQ(e.coeff(2), 1);
    EXPECT_EQ(e.constantTerm(), -5);
    EXPECT_EQ(e.evaluate({1, 9, 3}), 0);
}

TEST(LinearExpr, Substitution)
{
    // e = 2i + j; substitute i := 3k + 1 (k is dim 2)
    auto e = expr({2, 1, 0}, 0);
    auto repl = expr({0, 0, 3}, 1);
    auto sub = e.substituted(0, repl);
    EXPECT_EQ(sub, expr({0, 1, 6}, 2));
}

TEST(LinearExpr, PermuteInsertRemove)
{
    auto e = expr({1, 2, 3}, 4);
    auto p = e.permuted({2, 0, 1}); // dim0->2, dim1->0, dim2->1
    EXPECT_EQ(p, expr({2, 3, 1}, 4));
    auto ins = e.withDimsInserted(1, 2);
    EXPECT_EQ(ins, expr({1, 0, 0, 2, 3}, 4));
    auto rem = expr({1, 0, 3}, 4).withDimRemoved(1);
    EXPECT_EQ(rem, expr({1, 3}, 4));
}

TEST(LinearExpr, Printing)
{
    auto e = expr({2, -1, 0}, -3);
    EXPECT_EQ(e.str({"i", "j", "k"}), "2*i - j - 3");
    EXPECT_EQ(LinearExpr::constant(2, 7).str({"a", "b"}), "7");
    EXPECT_EQ(expr({-1, 0}, 0).str({"a", "b"}), "-a");
}

TEST(LinearExpr, SingleDim)
{
    size_t idx = 99;
    EXPECT_TRUE(expr({0, 1, 0}, 0).isSingleDim(&idx));
    EXPECT_EQ(idx, 1u);
    EXPECT_FALSE(expr({0, 2, 0}, 0).isSingleDim());
    EXPECT_FALSE(expr({0, 1, 0}, 1).isSingleDim());
    EXPECT_FALSE(expr({1, 1, 0}, 0).isSingleDim());
}

// ----------------------------------------------------------- IntegerSet

TEST(IntegerSet, BoxEnumerationAndCount)
{
    auto s = IntegerSet::box({"i", "j"}, {0, 0}, {3, 2});
    EXPECT_EQ(s.countPoints(), 12u);
    auto pts = s.enumerate();
    EXPECT_EQ(pts.front(), (std::vector<std::int64_t>{0, 0}));
    EXPECT_EQ(pts.back(), (std::vector<std::int64_t>{3, 2}));
}

TEST(IntegerSet, EmptyByContradiction)
{
    auto s = IntegerSet::box({"i"}, {0}, {10});
    // i >= 20
    auto e = LinearExpr::dim(1, 0);
    e.setConstantTerm(-20);
    s.addInequality(e);
    EXPECT_TRUE(s.isEmpty());
}

TEST(IntegerSet, EmptyByGcdTest)
{
    // 2i = 1 has no integer solution although rationally satisfiable.
    IntegerSet s({"i"});
    s.addEquality(expr({2}, -1));
    EXPECT_TRUE(s.isEmpty());
}

TEST(IntegerSet, NonEmptyWithEquality)
{
    // { (i, j) : j = 2i, 0 <= i <= 4 }
    auto s = IntegerSet::box({"i", "j"}, {0, 0}, {4, 8});
    s.addEquality(expr({2, -1}, 0));
    EXPECT_FALSE(s.isEmpty());
    EXPECT_EQ(s.countPoints(), 5u);
}

TEST(IntegerSet, ProjectOutTilingDecomposition)
{
    // { (i, i0, i1) : i = 8*i0 + i1, 0 <= i1 < 8, 0 <= i < 32 }
    IntegerSet s({"i", "i0", "i1"});
    s.addDimBounds(0, 0, 31);
    s.addDimBounds(2, 0, 7);
    s.addEquality(expr({1, -8, -1}, 0));
    // Projecting out i leaves the tile-space box 0<=i0<=3, 0<=i1<=7.
    auto proj = s.projectOut(0);
    EXPECT_EQ(proj.numDims(), 2u);
    EXPECT_EQ(proj.countPoints(), 32u);
    auto bounds = proj.boundsForCodegen(0);
    ASSERT_FALSE(bounds.lower.empty());
    ASSERT_FALSE(bounds.upper.empty());
}

TEST(IntegerSet, BoundsForCodegenSkewed)
{
    // { (t, i) : 0 <= i <= 9, t = i + 2k for k in [0, 4] } modelled as a
    // skewed triangle: 0 <= i <= 9, i <= t <= i + 8.
    IntegerSet s({"t", "i"});
    s.addDimBounds(1, 0, 9);
    // t - i >= 0
    s.addInequality(expr({1, -1}, 0));
    // i + 8 - t >= 0
    s.addInequality(expr({-1, 1}, 8));
    auto b0 = s.boundsForCodegen(0);
    // t ranges over [0, 17] once i is projected away.
    std::int64_t lo = 1 << 30, hi = -(1 << 30);
    for (const auto &bound : b0.lower)
        lo = std::min(lo, pom::support::ceilDiv(
                              bound.expr.evaluate({0}), bound.divisor));
    for (const auto &bound : b0.upper)
        hi = std::max(hi, pom::support::floorDiv(
                              bound.expr.evaluate({0}), bound.divisor));
    EXPECT_EQ(lo, 0);
    EXPECT_EQ(hi, 17);
    // Inner bounds of i depend on t.
    auto b1 = s.boundsForCodegen(1);
    EXPECT_FALSE(b1.lower.empty());
    EXPECT_FALSE(b1.upper.empty());
    EXPECT_EQ(s.countPoints(), 90u);
}

TEST(IntegerSet, Implies)
{
    auto s = IntegerSet::box({"i"}, {0}, {10});
    // i + 5 >= 0 is implied.
    auto c1 = Constraint{expr({1}, 5), false};
    EXPECT_TRUE(s.implies(c1));
    // i - 5 >= 0 is not.
    auto c2 = Constraint{expr({1}, -5), false};
    EXPECT_FALSE(s.implies(c2));
}

TEST(IntegerSet, IntersectAndSimplify)
{
    auto a = IntegerSet::box({"i"}, {0}, {10});
    auto b = IntegerSet::box({"i"}, {5}, {20});
    auto s = a.intersect(b);
    EXPECT_EQ(s.countPoints(), 6u);
    s.simplify();
    EXPECT_FALSE(s.isEmpty());
}

TEST(IntegerSet, PermuteAndRename)
{
    auto s = IntegerSet::box({"i", "j"}, {0, 0}, {2, 5});
    auto p = s.permuted({1, 0});
    EXPECT_EQ(p.dimName(0), "j");
    EXPECT_EQ(p.dimName(1), "i");
    EXPECT_EQ(p.countPoints(), 18u);
    auto pts = p.enumerate();
    // Now the first coordinate is j in [0, 5].
    EXPECT_EQ(pts.back()[0], 5);
    EXPECT_EQ(pts.back()[1], 2);
    auto r = s.withDimRenamed(0, "x");
    EXPECT_EQ(r.dimIndex("x"), 0u);
}

TEST(IntegerSet, LexMin)
{
    IntegerSet s({"i", "j"});
    s.addDimBounds(0, 3, 10);
    s.addDimBounds(1, -2, 4);
    auto m = s.lexMin();
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(*m, (std::vector<std::int64_t>{3, -2}));
    s.addInequality(expr({1, 0}, -100)); // i >= 100 -> empty
    EXPECT_FALSE(s.lexMin().has_value());
}

TEST(IntegerSet, ContainsPoint)
{
    auto s = IntegerSet::box({"i", "j"}, {0, 0}, {4, 4});
    s.addInequality(expr({1, 1}, -4)); // i + j >= 4
    EXPECT_TRUE(s.containsPoint({2, 2}));
    EXPECT_FALSE(s.containsPoint({1, 1}));
}

// ------------------------------------------------------------ AffineMap

TEST(AffineMap, IdentityAndApply)
{
    auto m = AffineMap::identity({"i", "j"});
    EXPECT_EQ(m.apply({3, 4}), (std::vector<std::int64_t>{3, 4}));
}

TEST(AffineMap, Compose)
{
    // f(i, j) = (i + j, 2j); g(x, y) = (y, x + 1). g o f = (2j, i+j+1).
    AffineMap f({"i", "j"}, {expr({1, 1}, 0), expr({0, 2}, 0)});
    AffineMap g({"x", "y"}, {expr({0, 1}, 0), expr({1, 0}, 1)});
    auto gf = g.compose(f);
    EXPECT_EQ(gf.apply({3, 5}), (std::vector<std::int64_t>{10, 9}));
}

TEST(AffineMap, Image)
{
    // Image of box [0,3]x[0,3] under (i, j) -> (i + j) is [0, 6].
    AffineMap m({"i", "j"}, {expr({1, 1}, 0)});
    auto dom = IntegerSet::box({"i", "j"}, {0, 0}, {3, 3});
    auto img = m.image(dom, {"s"});
    EXPECT_EQ(img.numDims(), 1u);
    EXPECT_EQ(img.countPoints(), 7u);
}

TEST(AffineMap, DomainManipulation)
{
    AffineMap m({"i", "j"}, {expr({1, 2}, 3)});
    auto ins = m.withDomainDimsInserted(1, {"k"});
    EXPECT_EQ(ins.numDomainDims(), 3u);
    EXPECT_EQ(ins.result(0), expr({1, 0, 2}, 3));
    auto perm = m.withDomainPermuted({1, 0});
    EXPECT_EQ(perm.result(0), expr({2, 1}, 3));
    EXPECT_EQ(perm.domainDims(),
              (std::vector<std::string>{"j", "i"}));
}

// ----------------------------------------------------------- Dependence

TEST(Dependence, GemmReduction)
{
    // for i, j, k: A[i][j] += B[i][k] * C[k][j]
    auto dom = IntegerSet::box({"i", "j", "k"}, {0, 0, 0}, {31, 31, 31});
    size_t n = 3;
    std::vector<Access> acc;
    AffineMap a_map({"i", "j", "k"},
                    {LinearExpr::dim(n, 0), LinearExpr::dim(n, 1)});
    acc.push_back(Access{"A", a_map, true});
    acc.push_back(Access{"A", a_map, false});
    AffineMap b_map({"i", "j", "k"},
                    {LinearExpr::dim(n, 0), LinearExpr::dim(n, 2)});
    acc.push_back(Access{"B", b_map, false});
    AffineMap c_map({"i", "j", "k"},
                    {LinearExpr::dim(n, 2), LinearExpr::dim(n, 1)});
    acc.push_back(Access{"C", c_map, false});

    auto deps = analyzeSelfDependences(dom, acc);
    // All dependences flow through A and are carried at level 2 (k) with
    // exact distance (0, 0, d) -- the reduction of Fig. 8.
    ASSERT_FALSE(deps.empty());
    bool found_unit = false;
    for (const auto &d : deps) {
        EXPECT_EQ(d.array, "A");
        EXPECT_EQ(d.level, 2u);
        ASSERT_TRUE(d.distLo[0] && d.distHi[0]);
        EXPECT_EQ(*d.distLo[0], 0);
        EXPECT_EQ(*d.distHi[0], 0);
        EXPECT_EQ(*d.distLo[1], 0);
        EXPECT_EQ(*d.distHi[1], 0);
        if (d.carriedDistance == 1)
            found_unit = true;
    }
    EXPECT_TRUE(found_unit);
}

TEST(Dependence, BicgInnerCarried)
{
    // for i, j: q[i] += A[i][j] * p[j]  (write q(i), read q(i))
    auto dom = IntegerSet::box({"i", "j"}, {0, 0}, {63, 63});
    AffineMap q_map({"i", "j"}, {LinearExpr::dim(2, 0)});
    std::vector<Access> acc = {
        Access{"q", q_map, true},
        Access{"q", q_map, false},
    };
    auto deps = analyzeSelfDependences(dom, acc);
    ASSERT_FALSE(deps.empty());
    for (const auto &d : deps) {
        // Carried at level 1 (the j loop); i distance is exactly 0.
        EXPECT_EQ(d.level, 1u);
        EXPECT_EQ(*d.distLo[0], 0);
        EXPECT_EQ(*d.distHi[0], 0);
        EXPECT_GE(d.carriedDistance, 1);
    }
}

TEST(Dependence, Fig1DiagonalStencil)
{
    // for i, j in [1, 4]: A[i][j] = A[i-1][j-1] * 2 + 3 (Fig. 1)
    auto dom = IntegerSet::box({"i", "j"}, {1, 1}, {4, 4});
    AffineMap w({"i", "j"}, {LinearExpr::dim(2, 0), LinearExpr::dim(2, 1)});
    AffineMap r({"i", "j"},
                {expr({1, 0}, -1), expr({0, 1}, -1)});
    std::vector<Access> acc = {
        Access{"A", w, true},
        Access{"A", r, false},
    };
    auto deps = analyzeSelfDependences(dom, acc);
    // Expect a dependence carried at level 0 with distance (1, 1),
    // direction (<, <).
    bool found = false;
    for (const auto &d : deps) {
        if (d.level != 0)
            continue;
        if (d.distLo[0] && d.distHi[0] && *d.distLo[0] == 1 &&
            *d.distHi[0] == 1 && d.distLo[1] && *d.distLo[1] == 1 &&
            *d.distHi[1] == 1) {
            EXPECT_EQ(d.direction[0], Direction::Lt);
            EXPECT_EQ(d.direction[1], Direction::Lt);
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(Dependence, NoFalseDependence)
{
    // for i: B[i] = A[i] -- no self dependence at all.
    auto dom = IntegerSet::box({"i"}, {0}, {99});
    AffineMap id1({"i"}, {LinearExpr::dim(1, 0)});
    std::vector<Access> acc = {
        Access{"B", id1, true},
        Access{"A", id1, false},
    };
    EXPECT_TRUE(analyzeSelfDependences(dom, acc).empty());
}

TEST(Dependence, ExprRange)
{
    auto s = IntegerSet::box({"i", "j"}, {0, 2}, {10, 5});
    auto [lo, hi] = exprRange(s, expr({1, -1}, 0));
    ASSERT_TRUE(lo && hi);
    EXPECT_EQ(*lo, -5);
    EXPECT_EQ(*hi, 8);
}

TEST(Dependence, ProducesFor)
{
    AffineMap id1({"i"}, {LinearExpr::dim(1, 0)});
    std::vector<Access> p = {Access{"A", id1, true},
                             Access{"X", id1, false}};
    std::vector<Access> c1 = {Access{"A", id1, false},
                              Access{"B", id1, true}};
    std::vector<Access> c2 = {Access{"C", id1, false},
                              Access{"B", id1, true}};
    EXPECT_TRUE(producesFor(p, c1));
    EXPECT_FALSE(producesFor(p, c2));
}

TEST(Dependence, DirectionStrings)
{
    EXPECT_STREQ(directionStr(Direction::Lt), "<");
    EXPECT_STREQ(directionStr(Direction::Eq), "=");
    EXPECT_STREQ(directionStr(Direction::Gt), ">");
    EXPECT_STREQ(directionStr(Direction::Star), "*");
}

} // namespace
