/**
 * @file
 * Tests for the estimator cache's disk persistence: bit-exact entry
 * encode/decode (hexfloat doubles, optional IIs), version-stamp
 * rejection, checksum-based corruption detection, full directory
 * round-trips with guaranteed hits, skip-and-warn on corrupted
 * entries, index merging between savers, and a real DSE run that
 * warm-starts from disk.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "baselines/baselines.h"
#include "hls/estimator_cache.h"
#include "support/version.h"
#include "workloads/workloads.h"

namespace {

using namespace pom;
namespace fs = std::filesystem;

/** A fresh per-test scratch directory under the gtest temp root. */
std::string
scratchDir(const std::string &name)
{
    std::string dir = ::testing::TempDir() + "pom_persist_" + name;
    fs::remove_all(dir);
    return dir;
}

hls::SynthesisReport
sampleReport()
{
    hls::SynthesisReport r;
    r.latencyCycles = 918274;
    r.resources.dsp = 160;
    r.resources.lut = 12068;
    r.resources.ff = 25890;
    r.resources.bramBits = 1 << 20;
    r.powerW = 0.51492123456789; // exercises the hexfloat round-trip
    hls::LoopReport with_target;
    with_target.iterName = "i0";
    with_target.trip = 256;
    with_target.targetII = 2;
    with_target.achievedII = 2;
    with_target.latency = 520;
    with_target.recMII = 2;
    with_target.resMII = 1;
    hls::LoopReport no_target;
    no_target.iterName = "j \"quoted\" x"; // names are length-prefixed
    no_target.trip = 64;
    r.loops = {with_target, no_target};
    r.nestLatencies = {{"S0", 1234}, {"S1", 99}};
    return r;
}

void
expectReportsEqual(const hls::SynthesisReport &a,
                   const hls::SynthesisReport &b)
{
    EXPECT_EQ(a.latencyCycles, b.latencyCycles);
    EXPECT_EQ(a.resources.dsp, b.resources.dsp);
    EXPECT_EQ(a.resources.lut, b.resources.lut);
    EXPECT_EQ(a.resources.ff, b.resources.ff);
    EXPECT_EQ(a.resources.bramBits, b.resources.bramBits);
    EXPECT_EQ(a.powerW, b.powerW); // bit-exact, not approximate
    ASSERT_EQ(a.loops.size(), b.loops.size());
    for (size_t i = 0; i < a.loops.size(); ++i) {
        EXPECT_EQ(a.loops[i].iterName, b.loops[i].iterName);
        EXPECT_EQ(a.loops[i].trip, b.loops[i].trip);
        EXPECT_EQ(a.loops[i].targetII, b.loops[i].targetII);
        EXPECT_EQ(a.loops[i].achievedII, b.loops[i].achievedII);
        EXPECT_EQ(a.loops[i].latency, b.loops[i].latency);
        EXPECT_EQ(a.loops[i].recMII, b.loops[i].recMII);
        EXPECT_EQ(a.loops[i].resMII, b.loops[i].resMII);
    }
    EXPECT_EQ(a.nestLatencies, b.nestLatencies);
}

TEST(CacheEntry, EncodeDecodeRoundTripIsExact)
{
    const std::string key = "fingerprint with\nnewlines and spaces";
    auto report = sampleReport();
    std::string text = hls::encodeCacheEntry(key, report);

    std::string decoded_key, error;
    hls::SynthesisReport decoded;
    ASSERT_TRUE(hls::decodeCacheEntry(text, decoded_key, decoded, error))
        << error;
    EXPECT_EQ(decoded_key, key);
    expectReportsEqual(report, decoded);
}

TEST(CacheEntry, HashIsStableAndKeyDependent)
{
    EXPECT_EQ(hls::cacheEntryHash("k"), hls::cacheEntryHash("k"));
    EXPECT_NE(hls::cacheEntryHash("k"), hls::cacheEntryHash("K"));
    EXPECT_EQ(hls::cacheEntryHash("k").size(), 16u);
}

TEST(CacheEntry, VersionMismatchIsCleanError)
{
    std::string text = hls::encodeCacheEntry("key", sampleReport());
    // A future-version entry: rewrite the stamp and its checksum would
    // no longer match, so corrupt the header the way an old/new POM
    // would really produce it -- re-encode with a doctored first line.
    auto nl = text.find('\n');
    ASSERT_NE(nl, std::string::npos);
    std::string doctored =
        std::string(support::kCacheFormatName) + " 99.0.0" +
        text.substr(nl);

    std::string key, error;
    hls::SynthesisReport report;
    EXPECT_FALSE(hls::decodeCacheEntry(doctored, key, report, error));
    EXPECT_NE(error.find("mismatch"), std::string::npos) << error;
}

TEST(CacheEntry, CorruptByteFailsChecksum)
{
    std::string text = hls::encodeCacheEntry("key", sampleReport());
    text[text.size() / 2] ^= 0x20;

    std::string key, error;
    hls::SynthesisReport report;
    EXPECT_FALSE(hls::decodeCacheEntry(text, key, report, error));
    EXPECT_FALSE(error.empty());
}

TEST(CachePersist, MissingDirectoryIsColdStart)
{
    hls::EstimatorCache cache;
    hls::SpillStats stats;
    std::string error;
    EXPECT_TRUE(cache.loadDir(scratchDir("absent"), stats, error))
        << error;
    EXPECT_EQ(stats.loaded, 0u);
    EXPECT_EQ(cache.size(), 0u);
}

TEST(CachePersist, SaveLoadRoundTripGuaranteesHits)
{
    std::string dir = scratchDir("roundtrip");
    hls::EstimatorCache writer;
    auto report = sampleReport();
    writer.store("key-a", report);
    writer.store("key-b", sampleReport());

    hls::SpillStats save_stats;
    std::string error;
    ASSERT_TRUE(writer.saveDir(dir, save_stats, error)) << error;
    EXPECT_EQ(save_stats.written, 2u);

    hls::EstimatorCache reader;
    hls::SpillStats load_stats;
    ASSERT_TRUE(reader.loadDir(dir, load_stats, error)) << error;
    EXPECT_EQ(load_stats.loaded, 2u);
    EXPECT_EQ(load_stats.skipped, 0u);

    auto hit = reader.lookup("key-a");
    ASSERT_TRUE(hit.has_value());
    expectReportsEqual(report, *hit);
    EXPECT_EQ(reader.hits(), 1u);
    EXPECT_EQ(reader.misses(), 0u);

    // A second save of the same content writes nothing new.
    hls::SpillStats resave;
    ASSERT_TRUE(reader.saveDir(dir, resave, error)) << error;
    EXPECT_EQ(resave.written, 0u);
    EXPECT_EQ(resave.kept, 2u);
}

TEST(CachePersist, CorruptedEntryIsSkippedRestStillLoads)
{
    std::string dir = scratchDir("corrupt");
    hls::EstimatorCache writer;
    writer.store("good-key", sampleReport());
    writer.store("bad-key", sampleReport());
    hls::SpillStats stats;
    std::string error;
    ASSERT_TRUE(writer.saveDir(dir, stats, error)) << error;

    // Truncate one object file; its checksum can no longer match.
    std::string victim =
        dir + "/objects/" + hls::cacheEntryHash("bad-key");
    {
        std::ofstream out(victim, std::ios::trunc);
        out << "torn";
    }

    hls::EstimatorCache reader;
    hls::SpillStats load_stats;
    ASSERT_TRUE(reader.loadDir(dir, load_stats, error)) << error;
    EXPECT_EQ(load_stats.loaded, 1u);
    EXPECT_EQ(load_stats.skipped, 1u);
    EXPECT_TRUE(reader.lookup("good-key").has_value());
    EXPECT_FALSE(reader.lookup("bad-key").has_value());
}

TEST(CachePersist, WrongIndexVersionIsCleanLoadError)
{
    std::string dir = scratchDir("badindex");
    fs::create_directories(dir);
    {
        std::ofstream out(dir + "/index");
        out << support::kCacheFormatName << " 99.0.0\n";
    }
    hls::EstimatorCache cache;
    hls::SpillStats stats;
    std::string error;
    EXPECT_FALSE(cache.loadDir(dir, stats, error));
    EXPECT_NE(error.find("mismatch"), std::string::npos) << error;
}

TEST(CachePersist, ConcurrentSaversMergeTheIndex)
{
    std::string dir = scratchDir("merge");
    hls::EstimatorCache first, second;
    first.store("only-in-first", sampleReport());
    second.store("only-in-second", sampleReport());
    hls::SpillStats stats;
    std::string error;
    ASSERT_TRUE(first.saveDir(dir, stats, error)) << error;
    ASSERT_TRUE(second.saveDir(dir, stats, error)) << error;

    hls::EstimatorCache reader;
    hls::SpillStats load_stats;
    ASSERT_TRUE(reader.loadDir(dir, load_stats, error)) << error;
    EXPECT_EQ(load_stats.loaded, 2u);
    EXPECT_TRUE(reader.lookup("only-in-first").has_value());
    EXPECT_TRUE(reader.lookup("only-in-second").has_value());
}

TEST(CachePersist, ConcurrentStoreAndSpillIsSafe)
{
    // Writers insert while a saver snapshots and spills: exercises
    // snapshot()'s locking under TSan/ASan.
    std::string dir = scratchDir("stress");
    hls::EstimatorCache cache;
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&cache, t]() {
            for (int i = 0; i < 50; ++i) {
                cache.store("key-" + std::to_string(t) + "-" +
                                std::to_string(i),
                            sampleReport());
            }
        });
    }
    for (int round = 0; round < 5; ++round) {
        hls::SpillStats stats;
        std::string error;
        ASSERT_TRUE(cache.saveDir(dir, stats, error)) << error;
    }
    for (auto &t : threads)
        t.join();
    hls::SpillStats stats;
    std::string error;
    ASSERT_TRUE(cache.saveDir(dir, stats, error)) << error;

    hls::EstimatorCache reader;
    hls::SpillStats load_stats;
    ASSERT_TRUE(reader.loadDir(dir, load_stats, error)) << error;
    EXPECT_EQ(load_stats.loaded, 200u);
}

TEST(CachePersist, RealDseWarmStartsFromDisk)
{
    std::string dir = scratchDir("dse");
    auto &cache = hls::EstimatorCache::global();
    cache.clear();

    auto cold = workloads::makeByName("gemm", 64);
    baselines::BaselineOptions opt;
    auto cold_result = baselines::runPom(cold->func(), opt);

    hls::SpillStats save_stats;
    std::string error;
    ASSERT_TRUE(cache.saveDir(dir, save_stats, error)) << error;
    EXPECT_GT(save_stats.written, 0u);

    // Simulate a fresh process: drop the in-memory cache, reload the
    // spill, and re-run the identical search.
    cache.clear();
    hls::SpillStats load_stats;
    ASSERT_TRUE(cache.loadDir(dir, load_stats, error)) << error;
    EXPECT_EQ(load_stats.loaded, save_stats.written);

    auto warm = workloads::makeByName("gemm", 64);
    auto warm_result = baselines::runPom(warm->func(), opt);
    EXPECT_GT(cache.hits(), 0u);
    EXPECT_EQ(cache.misses(), 0u);

    // The warm run lands on the same design.
    EXPECT_EQ(cold_result.report.latencyCycles,
              warm_result.report.latencyCycles);
    EXPECT_EQ(cold_result.report.resources.dsp,
              warm_result.report.resources.dsp);
    cache.clear();
}

} // namespace
