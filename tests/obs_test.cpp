/**
 * @file
 * Tests for the observability layer (src/obs): span nesting and
 * ordering, thread-safe metric aggregation, well-formedness of the
 * Chrome-trace / metrics JSON exporters, and a golden file pinning the
 * DSE search-journal schema for GEMM.
 *
 * Regenerate the golden journal after an intentional schema change:
 *   POM_UPDATE_EXPECTED=1 ./obs_test --gtest_filter=ObsJournal.*
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "dse/dse.h"
#include "obs/journal.h"
#include "obs/obs.h"
#include "workloads/workloads.h"

#ifndef POM_GOLDEN_DIR
#define POM_GOLDEN_DIR "tests/golden"
#endif

namespace {

using namespace pom;

/**
 * Minimal recursive-descent JSON well-formedness checker, so exporter
 * tests need no external parser. Accepts exactly the JSON grammar
 * (objects, arrays, strings with escapes, numbers, true/false/null).
 */
class JsonChecker
{
  public:
    explicit JsonChecker(const std::string &text) : text_(text) {}

    bool
    valid()
    {
        pos_ = 0;
        return value() && (skipWs(), pos_ == text_.size());
    }

  private:
    bool
    value()
    {
        skipWs();
        if (pos_ >= text_.size())
            return false;
        switch (text_[pos_]) {
          case '{': return object();
          case '[': return array();
          case '"': return string();
          case 't': return literal("true");
          case 'f': return literal("false");
          case 'n': return literal("null");
          default: return number();
        }
    }

    bool
    object()
    {
        ++pos_; // '{'
        skipWs();
        if (consume('}'))
            return true;
        do {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (!consume(':') || !value())
                return false;
            skipWs();
        } while (consume(','));
        return consume('}');
    }

    bool
    array()
    {
        ++pos_; // '['
        skipWs();
        if (consume(']'))
            return true;
        do {
            if (!value())
                return false;
            skipWs();
        } while (consume(','));
        return consume(']');
    }

    bool
    string()
    {
        if (!consume('"'))
            return false;
        while (pos_ < text_.size()) {
            char c = text_[pos_++];
            if (c == '"')
                return true;
            if (static_cast<unsigned char>(c) < 0x20)
                return false; // raw control character
            if (c == '\\') {
                if (pos_ >= text_.size())
                    return false;
                char e = text_[pos_++];
                if (e == 'u') {
                    for (int i = 0; i < 4; ++i) {
                        if (pos_ >= text_.size() ||
                            !std::isxdigit(static_cast<unsigned char>(
                                text_[pos_++])))
                            return false;
                    }
                } else if (std::string("\"\\/bfnrt").find(e) ==
                           std::string::npos) {
                    return false;
                }
            }
        }
        return false;
    }

    bool
    number()
    {
        size_t start = pos_;
        consume('-');
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        return pos_ > start;
    }

    bool
    literal(const char *word)
    {
        size_t n = std::strlen(word);
        if (text_.compare(pos_, n, word) != 0)
            return false;
        pos_ += n;
        return true;
    }

    bool
    consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    const std::string &text_;
    size_t pos_ = 0;
};

bool
jsonValid(const std::string &text)
{
    return JsonChecker(text).valid();
}

/** RAII guard that leaves the obs gates and stores clean. */
struct ObsSandbox
{
    ObsSandbox()
    {
        obs::setTracingEnabled(false);
        obs::setMetricsEnabled(false);
        obs::resetTrace();
        obs::resetMetrics();
    }
    ~ObsSandbox()
    {
        obs::setTracingEnabled(false);
        obs::setMetricsEnabled(false);
        obs::resetTrace();
        obs::resetMetrics();
    }
};

TEST(ObsSpan, DisabledByDefaultRecordsNothing)
{
    ObsSandbox sandbox;
    {
        obs::Span span("should-not-appear", "test");
        span.arg("k", std::int64_t(1));
    }
    EXPECT_TRUE(obs::traceSnapshot().empty());
}

TEST(ObsSpan, NestingAndOrdering)
{
    ObsSandbox sandbox;
    obs::setTracingEnabled(true);
    {
        obs::Span outer("outer", "test");
        {
            obs::Span inner("inner", "test");
            obs::Span sibling("sibling", "test");
        }
    }
    obs::setTracingEnabled(false);

    auto events = obs::traceSnapshot();
    ASSERT_EQ(events.size(), 3u);
    // Spans complete innermost-first.
    EXPECT_EQ(events[0].name, "sibling");
    EXPECT_EQ(events[1].name, "inner");
    EXPECT_EQ(events[2].name, "outer");
    EXPECT_EQ(events[2].depth, 0);
    EXPECT_EQ(events[1].depth, 1);
    EXPECT_EQ(events[0].depth, 2);
    // All on the same thread, and each child starts no earlier and
    // ends no later than its parent.
    for (const auto &e : events) {
        EXPECT_EQ(e.threadId, events[0].threadId);
        EXPECT_GE(e.durationUs, 0.0);
    }
    EXPECT_GE(events[1].startUs, events[2].startUs);
    EXPECT_LE(events[1].startUs + events[1].durationUs,
              events[2].startUs + events[2].durationUs + 1e-6);
}

TEST(ObsSpan, ArgsAreRecorded)
{
    ObsSandbox sandbox;
    obs::setTracingEnabled(true);
    {
        obs::Span span("argful", "test");
        span.arg("text", std::string("hello"));
        span.arg("count", std::int64_t(42));
        span.arg("ratio", 0.5);
    }
    obs::setTracingEnabled(false);

    auto events = obs::traceSnapshot();
    ASSERT_EQ(events.size(), 1u);
    ASSERT_EQ(events[0].args.size(), 3u);
    EXPECT_EQ(events[0].args[0].first, "text");
    EXPECT_EQ(events[0].args[0].second, "\"hello\"");
    EXPECT_EQ(events[0].args[1].second, "42");
}

TEST(ObsMetrics, CounterAggregationAcrossThreads)
{
    ObsSandbox sandbox;
    obs::setMetricsEnabled(true);
    constexpr int kThreads = 8;
    constexpr int kIters = 5000;

    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([] {
            for (int i = 0; i < kIters; ++i) {
                obs::counterAdd("test.counter");
                obs::accumulate("test.acc", 0.5);
                obs::gaugeSet("test.gauge", 7.0);
            }
        });
    }
    for (auto &w : workers)
        w.join();

    EXPECT_EQ(obs::counterValue("test.counter"), kThreads * kIters);
    EXPECT_DOUBLE_EQ(obs::metricValue("test.acc"),
                     0.5 * kThreads * kIters);
    EXPECT_DOUBLE_EQ(obs::metricValue("test.gauge"), 7.0);
    // Missing metrics read as zero rather than spring into existence.
    EXPECT_EQ(obs::counterValue("test.missing"), 0);
    EXPECT_DOUBLE_EQ(obs::metricValue("test.missing"), 0.0);
}

TEST(ObsMetrics, SnapshotPreservesInsertionOrderAndPrefixReset)
{
    ObsSandbox sandbox;
    obs::counterAdd("z.first");
    obs::gaugeSet("a.second", 1.0);
    obs::accumulate("z.third", 2.0);

    auto snap = obs::metricsSnapshot();
    ASSERT_EQ(snap.size(), 3u);
    EXPECT_EQ(snap[0].first, "z.first");
    EXPECT_EQ(snap[1].first, "a.second");
    EXPECT_EQ(snap[2].first, "z.third");

    obs::resetMetricsWithPrefix("z.");
    snap = obs::metricsSnapshot();
    ASSERT_EQ(snap.size(), 1u);
    EXPECT_EQ(snap[0].first, "a.second");
}

TEST(ObsExport, ChromeTraceJsonIsWellFormed)
{
    ObsSandbox sandbox;
    obs::setTracingEnabled(true);
    {
        // Hostile names exercise the string escaper.
        obs::Span span("quote\" slash\\ newline\n tab\t", "cat\"egory");
        span.arg("key\"", std::string("va\\lue\x01"));
        obs::Span inner("inner", "test");
    }
    obs::setTracingEnabled(false);

    std::string json = obs::chromeTraceJson();
    EXPECT_TRUE(jsonValid(json)) << json;
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
}

TEST(ObsExport, MetricsJsonIsWellFormed)
{
    ObsSandbox sandbox;
    obs::counterAdd("runs\"quoted", 3);
    obs::accumulate("seconds", 0.125);
    obs::gaugeSet("gauge", -2.5e-3);

    std::string json = obs::metricsJson();
    EXPECT_TRUE(jsonValid(json)) << json;
    EXPECT_NE(json.find("\"pom-metrics/v1\""), std::string::npos);
    EXPECT_NE(json.find("\"counter\""), std::string::npos);
    EXPECT_NE(json.find("\"accumulator\""), std::string::npos);
    EXPECT_NE(json.find("\"gauge\""), std::string::npos);
    // Empty registry still exports a valid document.
    obs::resetMetrics();
    EXPECT_TRUE(jsonValid(obs::metricsJson()));
    EXPECT_TRUE(jsonValid(obs::chromeTraceJson()));
}

TEST(ObsJournal, GlobalJournalIsGatedAndThreadSafe)
{
    obs::journal().clear();
    obs::setJournalEnabled(false);

    // autoDSE always records into the result, but only publishes to the
    // process-wide journal when the gate is open.
    auto w = workloads::makeGemm(32);
    dse::DseResult res = dse::autoDSE(w->func(), dse::DseOptions());
    EXPECT_FALSE(res.journal.empty());
    EXPECT_TRUE(obs::journal().entries().empty());

    std::vector<std::thread> writers;
    for (int t = 0; t < 4; ++t) {
        writers.emplace_back([t] {
            for (int i = 0; i < 500; ++i) {
                obs::JournalEntry e;
                e.kind = "point";
                e.phase = "stage2";
                e.point = t * 1000 + i;
                obs::journal().record(e);
            }
        });
    }
    for (auto &t : writers)
        t.join();
    EXPECT_EQ(obs::journal().entries().size(), 2000u);
    EXPECT_TRUE(jsonValid(obs::journal().json()));
    obs::journal().clear();
    EXPECT_TRUE(obs::journal().entries().empty());
}

TEST(ObsJournal, GemmJournalMatchesGolden)
{
    // The journal deliberately has no wall-clock fields and the
    // estimator is deterministic integer arithmetic, so the GEMM
    // journal is bit-reproducible and pins the v1 schema exactly.
    auto w = workloads::makeGemm(256);
    dse::DseResult res = dse::autoDSE(w->func(), dse::DseOptions());
    std::string json = obs::journalJson(res.journal);
    ASSERT_TRUE(jsonValid(json));

    const std::string path =
        std::string(POM_GOLDEN_DIR) + "/gemm_dse_journal.json";
    if (std::getenv("POM_UPDATE_EXPECTED") != nullptr) {
        std::ofstream out(path);
        ASSERT_TRUE(out.good()) << "cannot write " << path;
        out << json;
        GTEST_SKIP() << "updated " << path;
    }

    std::ifstream in(path);
    ASSERT_TRUE(in.good())
        << "missing golden file " << path
        << " (regenerate with POM_UPDATE_EXPECTED=1)";
    std::ostringstream buffer;
    buffer << in.rdbuf();
    EXPECT_EQ(json, buffer.str())
        << "DSE journal for GEMM changed. If the schema or search "
           "behaviour changed intentionally, regenerate with "
           "POM_UPDATE_EXPECTED=1.";
}

} // namespace
