/**
 * @file
 * Tests for the observability layer (src/obs): span nesting and
 * ordering, thread-safe metric aggregation, well-formedness of the
 * Chrome-trace / metrics JSON exporters, and a golden file pinning the
 * DSE search-journal schema for GEMM.
 *
 * Regenerate the golden journal after an intentional schema change:
 *   POM_UPDATE_EXPECTED=1 ./obs_test --gtest_filter=ObsJournal.*
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "dse/dse.h"
#include "obs/journal.h"
#include "obs/obs.h"
#include "workloads/workloads.h"

#ifndef POM_GOLDEN_DIR
#define POM_GOLDEN_DIR "tests/golden"
#endif

namespace {

using namespace pom;

/**
 * Minimal recursive-descent JSON well-formedness checker, so exporter
 * tests need no external parser. Accepts exactly the JSON grammar
 * (objects, arrays, strings with escapes, numbers, true/false/null).
 */
class JsonChecker
{
  public:
    explicit JsonChecker(const std::string &text) : text_(text) {}

    bool
    valid()
    {
        pos_ = 0;
        return value() && (skipWs(), pos_ == text_.size());
    }

  private:
    bool
    value()
    {
        skipWs();
        if (pos_ >= text_.size())
            return false;
        switch (text_[pos_]) {
          case '{': return object();
          case '[': return array();
          case '"': return string();
          case 't': return literal("true");
          case 'f': return literal("false");
          case 'n': return literal("null");
          default: return number();
        }
    }

    bool
    object()
    {
        ++pos_; // '{'
        skipWs();
        if (consume('}'))
            return true;
        do {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (!consume(':') || !value())
                return false;
            skipWs();
        } while (consume(','));
        return consume('}');
    }

    bool
    array()
    {
        ++pos_; // '['
        skipWs();
        if (consume(']'))
            return true;
        do {
            if (!value())
                return false;
            skipWs();
        } while (consume(','));
        return consume(']');
    }

    bool
    string()
    {
        if (!consume('"'))
            return false;
        while (pos_ < text_.size()) {
            char c = text_[pos_++];
            if (c == '"')
                return true;
            if (static_cast<unsigned char>(c) < 0x20)
                return false; // raw control character
            if (c == '\\') {
                if (pos_ >= text_.size())
                    return false;
                char e = text_[pos_++];
                if (e == 'u') {
                    for (int i = 0; i < 4; ++i) {
                        if (pos_ >= text_.size() ||
                            !std::isxdigit(static_cast<unsigned char>(
                                text_[pos_++])))
                            return false;
                    }
                } else if (std::string("\"\\/bfnrt").find(e) ==
                           std::string::npos) {
                    return false;
                }
            }
        }
        return false;
    }

    bool
    number()
    {
        size_t start = pos_;
        consume('-');
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        return pos_ > start;
    }

    bool
    literal(const char *word)
    {
        size_t n = std::strlen(word);
        if (text_.compare(pos_, n, word) != 0)
            return false;
        pos_ += n;
        return true;
    }

    bool
    consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    const std::string &text_;
    size_t pos_ = 0;
};

bool
jsonValid(const std::string &text)
{
    return JsonChecker(text).valid();
}

/** RAII guard that leaves the obs gates and stores clean. */
struct ObsSandbox
{
    ObsSandbox()
    {
        obs::setTracingEnabled(false);
        obs::setMetricsEnabled(false);
        obs::resetTrace();
        obs::resetMetrics();
    }
    ~ObsSandbox()
    {
        obs::setTracingEnabled(false);
        obs::setMetricsEnabled(false);
        obs::resetTrace();
        obs::resetMetrics();
    }
};

TEST(ObsSpan, DisabledByDefaultRecordsNothing)
{
    ObsSandbox sandbox;
    {
        obs::Span span("should-not-appear", "test");
        span.arg("k", std::int64_t(1));
    }
    EXPECT_TRUE(obs::traceSnapshot().empty());
}

TEST(ObsSpan, NestingAndOrdering)
{
    ObsSandbox sandbox;
    obs::setTracingEnabled(true);
    {
        obs::Span outer("outer", "test");
        {
            obs::Span inner("inner", "test");
            obs::Span sibling("sibling", "test");
        }
    }
    obs::setTracingEnabled(false);

    auto events = obs::traceSnapshot();
    ASSERT_EQ(events.size(), 3u);
    // Spans complete innermost-first.
    EXPECT_EQ(events[0].name, "sibling");
    EXPECT_EQ(events[1].name, "inner");
    EXPECT_EQ(events[2].name, "outer");
    EXPECT_EQ(events[2].depth, 0);
    EXPECT_EQ(events[1].depth, 1);
    EXPECT_EQ(events[0].depth, 2);
    // All on the same thread, and each child starts no earlier and
    // ends no later than its parent.
    for (const auto &e : events) {
        EXPECT_EQ(e.threadId, events[0].threadId);
        EXPECT_GE(e.durationUs, 0.0);
    }
    EXPECT_GE(events[1].startUs, events[2].startUs);
    EXPECT_LE(events[1].startUs + events[1].durationUs,
              events[2].startUs + events[2].durationUs + 1e-6);
}

TEST(ObsSpan, ArgsAreRecorded)
{
    ObsSandbox sandbox;
    obs::setTracingEnabled(true);
    {
        obs::Span span("argful", "test");
        span.arg("text", std::string("hello"));
        span.arg("count", std::int64_t(42));
        span.arg("ratio", 0.5);
    }
    obs::setTracingEnabled(false);

    auto events = obs::traceSnapshot();
    ASSERT_EQ(events.size(), 1u);
    ASSERT_EQ(events[0].args.size(), 3u);
    EXPECT_EQ(events[0].args[0].first, "text");
    EXPECT_EQ(events[0].args[0].second, "\"hello\"");
    EXPECT_EQ(events[0].args[1].second, "42");
}

TEST(ObsMetrics, CounterAggregationAcrossThreads)
{
    ObsSandbox sandbox;
    obs::setMetricsEnabled(true);
    constexpr int kThreads = 8;
    constexpr int kIters = 5000;

    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([] {
            for (int i = 0; i < kIters; ++i) {
                obs::counterAdd("test.counter");
                obs::accumulate("test.acc", 0.5);
                obs::gaugeSet("test.gauge", 7.0);
            }
        });
    }
    for (auto &w : workers)
        w.join();

    EXPECT_EQ(obs::counterValue("test.counter"), kThreads * kIters);
    EXPECT_DOUBLE_EQ(obs::metricValue("test.acc"),
                     0.5 * kThreads * kIters);
    EXPECT_DOUBLE_EQ(obs::metricValue("test.gauge"), 7.0);
    // Missing metrics read as zero rather than spring into existence.
    EXPECT_EQ(obs::counterValue("test.missing"), 0);
    EXPECT_DOUBLE_EQ(obs::metricValue("test.missing"), 0.0);
}

TEST(ObsMetrics, SnapshotPreservesInsertionOrderAndPrefixReset)
{
    ObsSandbox sandbox;
    obs::counterAdd("z.first");
    obs::gaugeSet("a.second", 1.0);
    obs::accumulate("z.third", 2.0);

    auto snap = obs::metricsSnapshot();
    ASSERT_EQ(snap.size(), 3u);
    EXPECT_EQ(snap[0].first, "z.first");
    EXPECT_EQ(snap[1].first, "a.second");
    EXPECT_EQ(snap[2].first, "z.third");

    obs::resetMetricsWithPrefix("z.");
    snap = obs::metricsSnapshot();
    ASSERT_EQ(snap.size(), 1u);
    EXPECT_EQ(snap[0].first, "a.second");
}

TEST(ObsExport, ChromeTraceJsonIsWellFormed)
{
    ObsSandbox sandbox;
    obs::setTracingEnabled(true);
    {
        // Hostile names exercise the string escaper.
        obs::Span span("quote\" slash\\ newline\n tab\t", "cat\"egory");
        span.arg("key\"", std::string("va\\lue\x01"));
        obs::Span inner("inner", "test");
    }
    obs::setTracingEnabled(false);

    std::string json = obs::chromeTraceJson();
    EXPECT_TRUE(jsonValid(json)) << json;
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
}

TEST(ObsExport, MetricsJsonIsWellFormed)
{
    ObsSandbox sandbox;
    obs::counterAdd("runs\"quoted", 3);
    obs::accumulate("seconds", 0.125);
    obs::gaugeSet("gauge", -2.5e-3);

    std::string json = obs::metricsJson();
    EXPECT_TRUE(jsonValid(json)) << json;
    EXPECT_NE(json.find("\"pom-metrics/v1\""), std::string::npos);
    EXPECT_NE(json.find("\"counter\""), std::string::npos);
    EXPECT_NE(json.find("\"accumulator\""), std::string::npos);
    EXPECT_NE(json.find("\"gauge\""), std::string::npos);
    // Empty registry still exports a valid document.
    obs::resetMetrics();
    EXPECT_TRUE(jsonValid(obs::metricsJson()));
    EXPECT_TRUE(jsonValid(obs::chromeTraceJson()));
}

TEST(ObsJournal, GlobalJournalIsGatedAndThreadSafe)
{
    obs::journal().clear();
    obs::setJournalEnabled(false);

    // autoDSE always records into the result, but only publishes to the
    // process-wide journal when the gate is open.
    auto w = workloads::makeGemm(32);
    dse::DseResult res = dse::autoDSE(w->func(), dse::DseOptions());
    EXPECT_FALSE(res.journal.empty());
    EXPECT_TRUE(obs::journal().entries().empty());

    std::vector<std::thread> writers;
    for (int t = 0; t < 4; ++t) {
        writers.emplace_back([t] {
            for (int i = 0; i < 500; ++i) {
                obs::JournalEntry e;
                e.kind = "point";
                e.phase = "stage2";
                e.point = t * 1000 + i;
                obs::journal().record(e);
            }
        });
    }
    for (auto &t : writers)
        t.join();
    EXPECT_EQ(obs::journal().entries().size(), 2000u);
    EXPECT_TRUE(jsonValid(obs::journal().json()));
    obs::journal().clear();
    EXPECT_TRUE(obs::journal().entries().empty());
}

TEST(ObsJournal, GemmJournalMatchesGolden)
{
    // The journal deliberately has no wall-clock fields and the
    // estimator is deterministic integer arithmetic, so the GEMM
    // journal is bit-reproducible and pins the v1 schema exactly.
    auto w = workloads::makeGemm(256);
    dse::DseResult res = dse::autoDSE(w->func(), dse::DseOptions());
    std::string json = obs::journalJson(res.journal);
    ASSERT_TRUE(jsonValid(json));

    const std::string path =
        std::string(POM_GOLDEN_DIR) + "/gemm_dse_journal.json";
    if (std::getenv("POM_UPDATE_EXPECTED") != nullptr) {
        std::ofstream out(path);
        ASSERT_TRUE(out.good()) << "cannot write " << path;
        out << json;
        GTEST_SKIP() << "updated " << path;
    }

    std::ifstream in(path);
    ASSERT_TRUE(in.good())
        << "missing golden file " << path
        << " (regenerate with POM_UPDATE_EXPECTED=1)";
    std::ostringstream buffer;
    buffer << in.rdbuf();
    EXPECT_EQ(json, buffer.str())
        << "DSE journal for GEMM changed. If the schema or search "
           "behaviour changed intentionally, regenerate with "
           "POM_UPDATE_EXPECTED=1.";
}

TEST(ObsHistogram, PercentileEdgeCases)
{
    // Empty: every statistic is 0.
    obs::Histogram h;
    obs::HistogramSummary s = h.summary();
    EXPECT_EQ(s.count, 0u);
    EXPECT_EQ(s.p50, 0.0);
    EXPECT_EQ(s.p99, 0.0);
    EXPECT_EQ(h.percentile(0.5), 0.0);

    // Single sample: the percentile midpoint clamps to [min, max], so
    // every quantile reports the exact value.
    h.record(3.25);
    s = h.summary();
    EXPECT_EQ(s.count, 1u);
    EXPECT_EQ(s.min, 3.25);
    EXPECT_EQ(s.max, 3.25);
    EXPECT_EQ(s.p50, 3.25);
    EXPECT_EQ(s.p90, 3.25);
    EXPECT_EQ(s.p99, 3.25);
    EXPECT_EQ(s.mean(), 3.25);

    // All samples in one bucket: same clamping argument.
    obs::Histogram one;
    for (int i = 0; i < 1000; ++i)
        one.record(7.0);
    s = one.summary();
    EXPECT_EQ(s.count, 1000u);
    EXPECT_EQ(s.p50, 7.0);
    EXPECT_EQ(s.p99, 7.0);

    // Non-positive and huge values land in under/overflow buckets
    // without disturbing count or min/max bookkeeping.
    obs::Histogram odd;
    odd.record(0.0);
    odd.record(-5.0);
    odd.record(1e300);
    EXPECT_EQ(odd.count(), 3u);
    s = odd.summary();
    EXPECT_EQ(s.min, -5.0);
    EXPECT_EQ(s.max, 1e300);

    // Two well-separated samples: p50 stays within [min, max] and the
    // high quantile leans toward the larger sample's bucket.
    obs::Histogram two;
    two.record(1.0);
    two.record(1024.0);
    s = two.summary();
    EXPECT_GE(s.p50, s.min);
    EXPECT_LE(s.p50, s.max);
    EXPECT_GT(s.p99, 512.0);
    EXPECT_LE(s.p99, 1024.0);
}

TEST(ObsHistogram, ConcurrentRecordStress)
{
    const int threads = 8, per_thread = 5000;
    obs::Histogram h;
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
        workers.emplace_back([&h, t] {
            for (int i = 0; i < per_thread; ++i)
                h.record(static_cast<double>(t * per_thread + i + 1));
        });
    }
    for (auto &w : workers)
        w.join();
    obs::HistogramSummary s = h.summary();
    EXPECT_EQ(s.count, static_cast<std::uint64_t>(threads * per_thread));
    EXPECT_EQ(s.min, 1.0);
    EXPECT_EQ(s.max, static_cast<double>(threads * per_thread));
    // Bucket totals must equal the sample count -- no lost updates.
    std::uint64_t total = 0;
    for (const auto &[index, n] : h.nonzeroBuckets())
        total += n;
    EXPECT_EQ(total, s.count);
}

TEST(ObsHistogram, MergeIsAssociativeAndCommutative)
{
    obs::Histogram a, b, c;
    for (int i = 1; i <= 100; ++i)
        a.record(static_cast<double>(i));
    for (int i = 0; i < 50; ++i)
        b.record(0.125 * (i + 1));
    for (int i = 0; i < 25; ++i)
        c.record(1e6 + 16.0 * i);

    // (a + b) + c
    obs::Histogram left = a;
    left.merge(b);
    left.merge(c);
    // a + (b + c)
    obs::Histogram bc = b;
    bc.merge(c);
    obs::Histogram right = a;
    right.merge(bc);
    // c + b + a (commutativity)
    obs::Histogram rev = c;
    rev.merge(b);
    rev.merge(a);

    // Sample values are binary-exact doubles, so sums match exactly
    // and the serialized forms are byte-identical.
    EXPECT_EQ(left.json(), right.json());
    EXPECT_EQ(left.json(), rev.json());
    obs::HistogramSummary s = left.summary();
    EXPECT_EQ(s.count, 175u);
    EXPECT_EQ(s.min, 0.125);
    EXPECT_EQ(s.max, 1e6 + 16.0 * 24);

    // Merging an empty histogram is the identity.
    obs::Histogram empty;
    obs::Histogram same = left;
    same.merge(empty);
    EXPECT_EQ(same.json(), left.json());
}

TEST(ObsHistogram, JsonRoundTrip)
{
    obs::Histogram h;
    for (int i = 0; i < 500; ++i)
        h.record(0.5 * (i % 97) + 0.25);
    std::string json = h.json();
    EXPECT_TRUE(jsonValid(json)) << json;

    obs::Histogram back;
    std::string error;
    ASSERT_TRUE(obs::Histogram::fromJson(json, back, error)) << error;
    EXPECT_EQ(back.json(), json);
    obs::HistogramSummary s0 = h.summary(), s1 = back.summary();
    EXPECT_EQ(s0.count, s1.count);
    EXPECT_EQ(s0.min, s1.min);
    EXPECT_EQ(s0.max, s1.max);
    EXPECT_EQ(s0.sum, s1.sum);
    EXPECT_EQ(s0.p50, s1.p50);
    EXPECT_EQ(s0.p99, s1.p99);

    // Malformed inputs are rejected, not crashed on.
    obs::Histogram junk;
    EXPECT_FALSE(obs::Histogram::fromJson("not json", junk, error));
    EXPECT_FALSE(obs::Histogram::fromJson("{}", junk, error));
    EXPECT_FALSE(obs::Histogram::fromJson(
        "{\"count\": 2, \"min\": 1, \"max\": 1, \"sum\": 2, \"p50\": 1, "
        "\"p90\": 1, \"p99\": 1, \"buckets\": [[5, 1]]}",
        junk, error))
        << "bucket total != count must be rejected";
}

TEST(ObsHistogram, NamedHistogramsExportAndReset)
{
    obs::setMetricsEnabled(true);
    obs::resetMetrics();
    obs::resetHistograms();
    obs::histogramRecord("test.latency_ms", 2.0);
    obs::histogramRecord("test.latency_ms", 8.0);
    obs::histogramRecord("other.size", 100.0);

    obs::HistogramSummary s =
        obs::histogramSnapshot("test.latency_ms").summary();
    EXPECT_EQ(s.count, 2u);
    EXPECT_EQ(s.min, 2.0);
    EXPECT_EQ(s.max, 8.0);

    // metricsJson keeps the pom-metrics/v1 schema and carries the
    // histograms as an additive "histogram" kind.
    std::string json = obs::metricsJson();
    EXPECT_TRUE(jsonValid(json)) << json;
    EXPECT_NE(json.find("\"kind\": \"histogram\""), std::string::npos);
    EXPECT_NE(json.find("\"test.latency_ms\""), std::string::npos);

    // Prefix reset drops only matching histograms.
    obs::resetHistogramsWithPrefix("test.");
    EXPECT_EQ(obs::histogramSnapshot("test.latency_ms").count(), 0u);
    EXPECT_EQ(obs::histogramSnapshot("other.size").count(), 1u);

    obs::resetHistograms();
    obs::resetMetrics();
    obs::setMetricsEnabled(false);
}

} // namespace
