/**
 * @file
 * Property tests for the Pareto frontier (src/dse/pareto.h) and the
 * pluggable search strategies (src/dse/strategy.h): randomized
 * dominance invariants, insertion-order independence, no-op re-inserts,
 * per-strategy journal-v2 byte determinism across worker counts, and
 * the v2 round-trip through the journal parser.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "dse/dse.h"
#include "dse/pareto.h"
#include "dse/strategy.h"
#include "obs/journal.h"
#include "obs/obs.h"
#include "workloads/workloads.h"

namespace {

using namespace pom;
using dse::dominates;
using dse::FrontierPoint;
using dse::ParetoFrontier;

FrontierPoint
mk(std::uint64_t lat, std::int64_t dsp, std::int64_t bram,
   std::int64_t lut, const std::string &prims = "p", int point = 0)
{
    FrontierPoint p;
    p.point = point;
    p.primitives = prims;
    p.latencyCycles = lat;
    p.dsp = dsp;
    p.bramBits = bram;
    p.lut = lut;
    return p;
}

TEST(Dominance, StrictPartialOrder)
{
    FrontierPoint a = mk(100, 10, 0, 50);
    FrontierPoint b = mk(200, 10, 0, 50); // worse latency, equal rest
    FrontierPoint c = mk(200, 5, 0, 50);  // trades latency for DSPs

    EXPECT_TRUE(dominates(a, b));
    EXPECT_FALSE(dominates(b, a));
    EXPECT_FALSE(dominates(a, c)); // incomparable: c uses fewer DSPs
    EXPECT_FALSE(dominates(c, a));
    EXPECT_FALSE(dominates(a, a)); // irreflexive (strict dominance)
    // Equal objectives never dominate, whatever the primitives.
    FrontierPoint a2 = mk(100, 10, 0, 50, "other");
    EXPECT_FALSE(dominates(a, a2));
    EXPECT_FALSE(dominates(a2, a));
}

TEST(Frontier, KeepsIncomparableAndPrunesDominated)
{
    ParetoFrontier f;
    EXPECT_EQ(f.insert(mk(100, 10, 0, 50)), ParetoFrontier::Insert::Added);
    EXPECT_EQ(f.insert(mk(50, 20, 0, 50)), ParetoFrontier::Insert::Added);
    ASSERT_EQ(f.size(), 2u);

    // Dominates both members: they are pruned.
    EXPECT_EQ(f.insert(mk(40, 5, 0, 40)), ParetoFrontier::Insert::Added);
    ASSERT_EQ(f.size(), 1u);
    EXPECT_EQ(f.points()[0].latencyCycles, 40u);

    // A dominated candidate never enters.
    EXPECT_EQ(f.insert(mk(40, 5, 0, 41)),
              ParetoFrontier::Insert::Dominated);
    EXPECT_EQ(f.size(), 1u);

    // Same objectives, different primitives: both designs coexist.
    EXPECT_EQ(f.insert(mk(40, 5, 0, 40, "alt")),
              ParetoFrontier::Insert::Added);
    EXPECT_EQ(f.size(), 2u);
    // Same objectives, same primitives: exact duplicate, a no-op.
    EXPECT_EQ(f.insert(mk(40, 5, 0, 40, "alt")),
              ParetoFrontier::Insert::Duplicate);
    EXPECT_EQ(f.size(), 2u);
}

// ----- randomized properties --------------------------------------------

/** Small coordinate ranges force plenty of dominance and ties. */
std::vector<FrontierPoint>
randomPoints(std::mt19937_64 &rng, size_t n)
{
    std::vector<FrontierPoint> pts;
    for (size_t i = 0; i < n; ++i) {
        FrontierPoint p;
        p.point = static_cast<int>(i);
        p.latencyCycles = rng() % 8;
        p.dsp = static_cast<std::int64_t>(rng() % 8);
        p.bramBits = static_cast<std::int64_t>(rng() % 4);
        p.lut = static_cast<std::int64_t>(rng() % 8);
        p.primitives = "p" + std::to_string(rng() % 3);
        pts.push_back(std::move(p));
    }
    return pts;
}

/** Canonical identity of a frontier member (the point id numbers the
 *  estimation order and is not part of the set identity). */
std::vector<std::string>
canonical(const ParetoFrontier &f)
{
    std::vector<std::string> keys;
    for (const auto &p : f.points()) {
        keys.push_back(std::to_string(p.latencyCycles) + "/" +
                       std::to_string(p.dsp) + "/" +
                       std::to_string(p.bramBits) + "/" +
                       std::to_string(p.lut) + "/" + p.primitives);
    }
    return keys;
}

/** Deterministic Fisher-Yates (std::shuffle is not portable). */
void
shuffle(std::vector<FrontierPoint> &pts, std::mt19937_64 &rng)
{
    for (size_t i = pts.size(); i > 1; --i)
        std::swap(pts[i - 1], pts[rng() % i]);
}

TEST(FrontierProperty, MembersAreMutuallyNonDominated)
{
    std::mt19937_64 rng(20240601);
    for (int trial = 0; trial < 1000; ++trial) {
        ParetoFrontier f;
        auto pts = randomPoints(rng, 1 + rng() % 24);
        for (const auto &p : pts)
            f.insert(p);

        const auto &m = f.points();
        ASSERT_FALSE(m.empty());
        for (size_t i = 0; i < m.size(); ++i) {
            for (size_t j = 0; j < m.size(); ++j) {
                if (i == j)
                    continue;
                EXPECT_FALSE(dominates(m[i], m[j]))
                    << "trial " << trial << ": member " << i
                    << " dominates member " << j;
            }
        }
        // Completeness: every inserted point is represented -- either a
        // member, or (weakly) dominated by one.
        for (const auto &p : pts) {
            bool covered = false;
            for (const auto &mem : m) {
                if (dominates(mem, p) ||
                    (mem.latencyCycles == p.latencyCycles &&
                     mem.dsp == p.dsp && mem.bramBits == p.bramBits &&
                     mem.lut == p.lut)) {
                    covered = true;
                    break;
                }
            }
            EXPECT_TRUE(covered) << "trial " << trial << ": point "
                                 << p.point << " fell through";
        }
    }
}

TEST(FrontierProperty, InsertionOrderDoesNotMatter)
{
    std::mt19937_64 rng(987654321);
    for (int trial = 0; trial < 1000; ++trial) {
        auto pts = randomPoints(rng, 1 + rng() % 16);

        ParetoFrontier ref;
        for (const auto &p : pts)
            ref.insert(p);
        auto ref_keys = canonical(ref);

        for (int s = 0; s < 3; ++s) {
            shuffle(pts, rng);
            ParetoFrontier f;
            for (const auto &p : pts)
                f.insert(p);
            EXPECT_EQ(canonical(f), ref_keys) << "trial " << trial;
        }
    }
}

TEST(FrontierProperty, DominatedAndDuplicateReinsertsAreNoOps)
{
    std::mt19937_64 rng(13371337);
    for (int trial = 0; trial < 1000; ++trial) {
        ParetoFrontier f;
        auto pts = randomPoints(rng, 4 + rng() % 16);
        for (const auto &p : pts)
            f.insert(p);
        auto before = canonical(f);

        // Re-inserting any original point must never change the set:
        // it is a duplicate of a member, has equal objectives to one,
        // or is dominated.
        for (const auto &p : pts) {
            auto r = f.insert(p);
            EXPECT_NE(r, ParetoFrontier::Insert::Added)
                << "trial " << trial;
            EXPECT_EQ(canonical(f), before) << "trial " << trial;
        }

        // An explicitly worsened member is always rejected.
        FrontierPoint worse = f.points()[rng() % f.size()];
        worse.latencyCycles += 1;
        worse.dsp += 1;
        EXPECT_EQ(f.insert(worse), ParetoFrontier::Insert::Dominated);
        EXPECT_EQ(canonical(f), before);
    }
}

// ----- strategies on the real DSE ---------------------------------------

dse::DseResult
runDse(const std::string &name, std::int64_t size,
       dse::StrategyKind strategy, int jobs)
{
    auto w = workloads::makeByName(name, size);
    dse::DseOptions opt;
    opt.strategy = strategy;
    opt.jobs = jobs;
    return dse::autoDSE(w->func(), opt);
}

TEST(StrategyDeterminism, JournalV2IdenticalAcrossJobCounts)
{
    // The acceptance property of the strategy interface: for every
    // driver the full v2 document -- events and per-round frontier
    // sections -- is byte-identical at any worker count.
    for (auto kind : {dse::StrategyKind::Greedy, dse::StrategyKind::Beam,
                      dse::StrategyKind::Anneal}) {
        dse::DseResult seq = runDse("gemm", 64, kind, 1);
        dse::DseResult par = runDse("gemm", 64, kind, 4);
        std::string v2_seq =
            obs::journalJsonV2(seq.journal, seq.frontierRounds);
        std::string v2_par =
            obs::journalJsonV2(par.journal, par.frontierRounds);
        EXPECT_EQ(v2_seq, v2_par) << dse::strategyName(kind);
        dse::DseResult wide = runDse("gemm", 64, kind, 13);
        EXPECT_EQ(v2_seq,
                  obs::journalJsonV2(wide.journal, wide.frontierRounds))
            << dse::strategyName(kind);
    }
}

TEST(StrategyDeterminism, RepeatedRunsAreIdentical)
{
    // The anneal driver must be reproducible run-to-run (seeded
    // portable PRNG, no wall-clock or address-dependent state).
    dse::DseResult a = runDse("bicg", 64, dse::StrategyKind::Anneal, 4);
    dse::DseResult b = runDse("bicg", 64, dse::StrategyKind::Anneal, 4);
    EXPECT_EQ(obs::journalJsonV2(a.journal, a.frontierRounds),
              obs::journalJsonV2(b.journal, b.frontierRounds));
}

TEST(StrategyFrontier, InvariantsHoldOnRealSearches)
{
    for (auto kind : {dse::StrategyKind::Greedy, dse::StrategyKind::Beam,
                      dse::StrategyKind::Anneal}) {
        std::int64_t inserts0 = obs::counterValue("dse.frontier.inserts");
        dse::DseResult res = runDse("2mm", 64, kind, 2);

        // The frontier is non-empty, mutually non-dominated, and the
        // final journal-v2 round equals the result frontier.
        ASSERT_FALSE(res.frontier.empty()) << dse::strategyName(kind);
        for (size_t i = 0; i < res.frontier.size(); ++i) {
            for (size_t j = 0; j < res.frontier.size(); ++j) {
                if (i != j)
                    EXPECT_FALSE(dominates(res.frontier[i],
                                           res.frontier[j]))
                        << dse::strategyName(kind);
            }
        }
        ASSERT_FALSE(res.frontierRounds.empty());
        const auto &last = res.frontierRounds.back();
        EXPECT_EQ(last.strategy, dse::strategyName(kind));
        ASSERT_EQ(last.points.size(), res.frontier.size());
        for (size_t i = 0; i < last.points.size(); ++i) {
            EXPECT_EQ(last.points[i].point, res.frontier[i].point);
            EXPECT_EQ(last.points[i].primitives,
                      res.frontier[i].primitives);
        }
        // Rounds are numbered 1..N and the metrics moved.
        for (size_t i = 0; i < res.frontierRounds.size(); ++i)
            EXPECT_EQ(res.frontierRounds[i].round,
                      static_cast<int>(i) + 1);
        EXPECT_GT(obs::counterValue("dse.frontier.inserts"), inserts0);

        // The selected design is a frontier member (it must not be
        // dominated by anything the search estimated).
        bool selected_on_frontier = false;
        for (const auto &p : res.frontier) {
            if (p.latencyCycles == res.report.latencyCycles &&
                p.dsp == res.report.resources.dsp) {
                selected_on_frontier = true;
                break;
            }
        }
        EXPECT_TRUE(selected_on_frontier) << dse::strategyName(kind);
    }
}

TEST(JournalV2, RoundTripsThroughTheParser)
{
    dse::DseResult res = runDse("gemm", 64, dse::StrategyKind::Beam, 2);
    std::string doc = obs::journalJsonV2(res.journal, res.frontierRounds);

    std::vector<obs::JournalEntry> entries;
    std::vector<obs::FrontierRound> rounds;
    std::string error;
    ASSERT_TRUE(obs::parseJournalJson(doc, entries, rounds, error))
        << error;
    ASSERT_EQ(entries.size(), res.journal.size());
    ASSERT_EQ(rounds.size(), res.frontierRounds.size());
    for (size_t r = 0; r < rounds.size(); ++r) {
        EXPECT_EQ(rounds[r].round, res.frontierRounds[r].round);
        EXPECT_EQ(rounds[r].strategy, res.frontierRounds[r].strategy);
        ASSERT_EQ(rounds[r].points.size(),
                  res.frontierRounds[r].points.size());
        for (size_t i = 0; i < rounds[r].points.size(); ++i) {
            const auto &got = rounds[r].points[i];
            const auto &want = res.frontierRounds[r].points[i];
            EXPECT_EQ(got.point, want.point);
            EXPECT_EQ(got.primitives, want.primitives);
            EXPECT_EQ(got.latencyCycles, want.latencyCycles);
            EXPECT_EQ(got.dsp, want.dsp);
            EXPECT_EQ(got.bramBits, want.bramBits);
            EXPECT_EQ(got.lut, want.lut);
        }
    }

    // A v1 document parses with zero frontier rounds.
    std::string v1 = obs::journalJson(res.journal);
    ASSERT_TRUE(obs::parseJournalJson(v1, entries, rounds, error))
        << error;
    EXPECT_TRUE(rounds.empty());
}

TEST(StrategyNames, ParseIsStrictAndTotal)
{
    dse::StrategyKind kind = dse::StrategyKind::Beam;
    EXPECT_TRUE(dse::parseStrategy("greedy", kind));
    EXPECT_EQ(kind, dse::StrategyKind::Greedy);
    EXPECT_TRUE(dse::parseStrategy("beam", kind));
    EXPECT_EQ(kind, dse::StrategyKind::Beam);
    EXPECT_TRUE(dse::parseStrategy("anneal", kind));
    EXPECT_EQ(kind, dse::StrategyKind::Anneal);

    // Unknown names fail without touching the output (no silent
    // default -- pomc turns this into a hard error).
    kind = dse::StrategyKind::Anneal;
    EXPECT_FALSE(dse::parseStrategy("", kind));
    EXPECT_FALSE(dse::parseStrategy("Greedy", kind));
    EXPECT_FALSE(dse::parseStrategy("bogus", kind));
    EXPECT_EQ(kind, dse::StrategyKind::Anneal);
    EXPECT_EQ(dse::strategyNames(), "greedy, beam, anneal");
}

} // namespace
