/**
 * @file
 * Tests for polyhedral loop transformations: each transformation must be
 * a bijection between the new and old iteration domains (checked by
 * enumerating integer points and applying the origin map).
 */

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "support/diagnostics.h"
#include "transform/poly_stmt.h"

namespace {

using namespace pom::transform;
using pom::ast::ScheduledStmt;
using pom::poly::IntegerSet;
using pom::poly::LinearExpr;
using pom::support::FatalError;

PolyStmt
makeStmt(std::vector<std::string> dims, std::vector<std::int64_t> lows,
         std::vector<std::int64_t> highs)
{
    PolyStmt s;
    s.sched = ScheduledStmt::identity(
        "S", IntegerSet::box(std::move(dims), lows, highs));
    return s;
}

/**
 * Check that origMap maps the transformed domain bijectively onto
 * @p original.
 */
void
expectBijection(const PolyStmt &stmt, const IntegerSet &original)
{
    auto transformed_points = stmt.sched.domain.enumerate();
    auto original_points = original.enumerate();
    ASSERT_EQ(transformed_points.size(), original_points.size());
    std::set<std::vector<std::int64_t>> image;
    for (const auto &p : transformed_points) {
        auto mapped = stmt.sched.origMap.apply(p);
        EXPECT_TRUE(original.containsPoint(mapped));
        image.insert(mapped);
    }
    EXPECT_EQ(image.size(), original_points.size()) << "map not injective";
}

TEST(Transform, InterchangePermutesDomain)
{
    auto stmt = makeStmt({"i", "j"}, {0, 0}, {3, 7});
    auto original = stmt.sched.domain;
    interchange(stmt, "i", "j");
    EXPECT_EQ(stmt.sched.domain.dimName(0), "j");
    EXPECT_EQ(stmt.sched.domain.dimName(1), "i");
    expectBijection(stmt, original);
}

TEST(Transform, InterchangeSelfIsFatal)
{
    auto stmt = makeStmt({"i", "j"}, {0, 0}, {3, 3});
    EXPECT_THROW(interchange(stmt, "i", "i"), FatalError);
}

TEST(Transform, SplitExactFactor)
{
    auto stmt = makeStmt({"i"}, {0}, {31});
    auto original = stmt.sched.domain;
    split(stmt, "i", 8, "i0", "i1");
    ASSERT_EQ(stmt.numDims(), 2u);
    EXPECT_EQ(stmt.sched.domain.dimName(0), "i0");
    EXPECT_EQ(stmt.sched.domain.dimName(1), "i1");
    EXPECT_EQ(stmt.sched.domain.countPoints(), 32u);
    expectBijection(stmt, original);
    // i = 8*i0 + i1 exactly.
    for (const auto &p : stmt.sched.domain.enumerate()) {
        auto orig = stmt.sched.origMap.apply(p);
        EXPECT_EQ(orig[0], 8 * p[0] + p[1]);
    }
}

TEST(Transform, SplitPartialTile)
{
    auto stmt = makeStmt({"i"}, {0}, {29});
    auto original = stmt.sched.domain;
    split(stmt, "i", 8, "i0", "i1");
    EXPECT_EQ(stmt.sched.domain.countPoints(), 30u);
    expectBijection(stmt, original);
}

TEST(Transform, SplitBadNamesAndFactors)
{
    auto stmt = makeStmt({"i", "j"}, {0, 0}, {7, 7});
    EXPECT_THROW(split(stmt, "i", 1, "a", "b"), FatalError);
    EXPECT_THROW(split(stmt, "i", 4, "j", "b"), FatalError);
    EXPECT_THROW(split(stmt, "nope", 4, "a", "b"), FatalError);
}

TEST(Transform, TileProducesFourLoops)
{
    auto stmt = makeStmt({"i", "j"}, {0, 0}, {31, 31});
    auto original = stmt.sched.domain;
    tile(stmt, "i", "j", 4, 8, "i0", "j0", "i1", "j1");
    ASSERT_EQ(stmt.numDims(), 4u);
    EXPECT_EQ(stmt.sched.domain.dimName(0), "i0");
    EXPECT_EQ(stmt.sched.domain.dimName(1), "j0");
    EXPECT_EQ(stmt.sched.domain.dimName(2), "i1");
    EXPECT_EQ(stmt.sched.domain.dimName(3), "j1");
    EXPECT_EQ(stmt.sched.domain.countPoints(), 1024u);
    expectBijection(stmt, original);
}

TEST(Transform, TileNonAdjacentIsFatal)
{
    auto stmt = makeStmt({"i", "k", "j"}, {0, 0, 0}, {7, 7, 7});
    EXPECT_THROW(tile(stmt, "i", "j", 2, 2, "a", "b", "c", "d"),
                 FatalError);
}

TEST(Transform, SkewIsBijective)
{
    auto stmt = makeStmt({"t", "i"}, {0, 0}, {4, 9});
    auto original = stmt.sched.domain;
    skew(stmt, "t", "i", 1, "t", "ip");
    EXPECT_EQ(stmt.sched.domain.dimName(1), "ip");
    expectBijection(stmt, original);
    // ip = i + t, so original i = ip - t.
    for (const auto &p : stmt.sched.domain.enumerate()) {
        auto orig = stmt.sched.origMap.apply(p);
        EXPECT_EQ(orig[0], p[0]);
        EXPECT_EQ(orig[1], p[1] - p[0]);
    }
}

TEST(Transform, SkewInnerMustBeInner)
{
    auto stmt = makeStmt({"t", "i"}, {0, 0}, {4, 4});
    EXPECT_THROW(skew(stmt, "i", "t", 1, "a", "b"), FatalError);
    EXPECT_THROW(skew(stmt, "t", "i", 0, "a", "b"), FatalError);
}

TEST(Transform, SkewNegativeFactor)
{
    auto stmt = makeStmt({"t", "i"}, {0, 0}, {3, 5});
    auto original = stmt.sched.domain;
    skew(stmt, "t", "i", -1, "t", "ip");
    expectBijection(stmt, original);
}

TEST(Transform, ComposedTileAndInterchange)
{
    auto stmt = makeStmt({"i", "j", "k"}, {0, 0, 0}, {15, 15, 15});
    auto original = stmt.sched.domain;
    interchange(stmt, "i", "k"); // now (k, j, i)
    tile(stmt, "j", "i", 4, 4, "j0", "i0", "j1", "i1");
    split(stmt, "k", 2, "k0", "k1");
    expectBijection(stmt, original);
}

TEST(Transform, PlaceAfterAdjustsBetas)
{
    auto s1 = makeStmt({"t", "i"}, {0, 0}, {9, 9});
    auto s2 = makeStmt({"t", "i"}, {0, 0}, {9, 9});
    s1.sched.betas[0] = 0;
    s2.sched.betas[0] = 16;
    placeAfter(s2, s1, 1); // share the t loop
    EXPECT_EQ(s2.sched.betas[0], s1.sched.betas[0]);
    EXPECT_EQ(s2.sched.betas[1], s1.sched.betas[1] + 1);
    EXPECT_THROW(placeAfter(s2, s1, 5), FatalError);
}

TEST(Transform, FuseSharesAllLevels)
{
    auto s1 = makeStmt({"i", "j"}, {0, 0}, {9, 9});
    auto s2 = makeStmt({"i", "j"}, {0, 0}, {9, 9});
    s2.sched.betas[0] = 16;
    fuseInto(s2, s1);
    EXPECT_EQ(s2.sched.betas[0], s1.sched.betas[0]);
    EXPECT_EQ(s2.sched.betas[1], s1.sched.betas[1]);
    EXPECT_EQ(s2.sched.betas[2], s1.sched.betas[2] + 1);
}

TEST(Transform, AnnotationsFollowLoops)
{
    auto stmt = makeStmt({"i", "j"}, {0, 0}, {31, 31});
    setPipeline(stmt, "i", 1);
    setUnroll(stmt, "j", 4);
    EXPECT_EQ(stmt.sched.hwPerDim[0].pipelineII, std::optional<int>(1));
    EXPECT_EQ(stmt.sched.hwPerDim[1].unrollFactor, 4);
    interchange(stmt, "i", "j");
    EXPECT_EQ(stmt.sched.hwPerDim[1].pipelineII, std::optional<int>(1));
    EXPECT_EQ(stmt.sched.hwPerDim[0].unrollFactor, 4);
    EXPECT_THROW(setPipeline(stmt, "i", 0), FatalError);
    EXPECT_THROW(setUnroll(stmt, "i", -1), FatalError);
}

/** Property sweep: split by many factors stays bijective. */
class SplitSweep : public ::testing::TestWithParam<std::int64_t>
{};

TEST_P(SplitSweep, Bijective)
{
    std::int64_t factor = GetParam();
    auto stmt = makeStmt({"i"}, {0}, {52}); // 53 iterations, prime
    auto original = stmt.sched.domain;
    split(stmt, "i", factor, "i0", "i1");
    expectBijection(stmt, original);
}

INSTANTIATE_TEST_SUITE_P(Factors, SplitSweep,
                         ::testing::Values(2, 3, 4, 7, 8, 16, 32, 53, 64));

/** Property sweep: skew factors stay bijective. */
class SkewSweep : public ::testing::TestWithParam<std::int64_t>
{};

TEST_P(SkewSweep, Bijective)
{
    auto stmt = makeStmt({"t", "i"}, {0, 1}, {6, 11});
    auto original = stmt.sched.domain;
    skew(stmt, "t", "i", GetParam(), "tp", "ip");
    expectBijection(stmt, original);
}

INSTANTIATE_TEST_SUITE_P(Factors, SkewSweep,
                         ::testing::Values(-3, -2, -1, 1, 2, 3, 5));

} // namespace
