/**
 * @file
 * Tests for the HLS synthesis estimator substrate: symbolic point
 * counting at paper-scale problem sizes, II computation (recurrence and
 * resource MII), resource accounting, and sharing modes.
 */

#include <gtest/gtest.h>

#include "hls/count.h"
#include "hls/estimator.h"
#include "lower/lower.h"
#include "workloads/workloads.h"

namespace {

using namespace pom;
using hls::countPoints;
using workloads::makeByName;

TEST(HlsCount, RectangularHuge)
{
    // 4096^3 GEMM domain counts in O(dims), no enumeration.
    auto set = poly::IntegerSet::box({"i", "j", "k"}, {0, 0, 0},
                                     {4095, 4095, 4095});
    EXPECT_EQ(countPoints(set), 4096LL * 4096 * 4096);
    auto trips = hls::avgTrips(set);
    EXPECT_EQ(trips, (std::vector<std::int64_t>{4096, 4096, 4096}));
}

TEST(HlsCount, SkewedTriangle)
{
    // { (t, i) : 0 <= i <= 9, i <= t <= i + 8 } has 90 points.
    poly::IntegerSet s({"t", "i"});
    s.addDimBounds(1, 0, 9);
    s.addInequality(poly::LinearExpr({1, -1}, 0));
    s.addInequality(poly::LinearExpr({-1, 1}, 8));
    EXPECT_EQ(countPoints(s), 90);
    auto trips = hls::avgTrips(s);
    EXPECT_EQ(trips[0], 18); // t spans 0..17
    EXPECT_EQ(trips[1], 5);  // average width 90/18
}

TEST(HlsCount, EmptySet)
{
    auto s = poly::IntegerSet::box({"i"}, {0}, {5});
    s.addInequality(poly::LinearExpr({1}, -100)); // i >= 100
    EXPECT_EQ(countPoints(s), 0);
}

TEST(HlsCount, TiledDomain)
{
    // Split i in [0, 29] by 8: 30 points across (i0, i1).
    poly::IntegerSet s({"i0", "i1"});
    s.addDimBounds(0, 0, 3);
    s.addDimBounds(1, 0, 7);
    s.addInequality(poly::LinearExpr({-8, -1}, 29));
    EXPECT_EQ(countPoints(s), 30);
}

TEST(HlsEstimator, UnoptimizedGemmLatency)
{
    auto w = makeByName("gemm", 64);
    auto lowered = lower::lowerStmts(w->func(),
                                     lower::extractStmts(w->func()));
    auto report = hls::estimate(w->func(), lowered);
    // Sequential: latency ~ n^3 * (body + loop overhead).
    std::uint64_t iters = 64ULL * 64 * 64;
    EXPECT_GT(report.latencyCycles, iters * 5);
    EXPECT_LT(report.latencyCycles, iters * 40);
    // One multiplier + one adder worth of DSPs.
    EXPECT_GE(report.resources.dsp, 5);
    EXPECT_LE(report.resources.dsp, 12);
    EXPECT_GT(report.powerW, 0.0);
    EXPECT_TRUE(report.loops.empty()); // nothing pipelined
}

TEST(HlsEstimator, PipelinedGemmGetsIIOne)
{
    auto w = makeByName("gemm", 64);
    auto stmts = lower::extractStmts(w->func());
    // Move the reduction outermost, pipeline the innermost loop.
    transform::interchange(stmts[0], "i", "k"); // (k, j, i)
    transform::setPipeline(stmts[0], "i", 1);
    auto lowered = lower::lowerStmts(w->func(), std::move(stmts));
    auto report = hls::estimate(w->func(), lowered);
    ASSERT_EQ(report.loops.size(), 1u);
    EXPECT_EQ(report.loops[0].achievedII, 1);
    // Latency ~ n^3 cycles.
    EXPECT_LT(report.latencyCycles, 64ULL * 64 * 64 * 3);
}

TEST(HlsEstimator, ReductionPipelineHasRecurrenceII)
{
    auto w = makeByName("gemm", 64);
    auto stmts = lower::extractStmts(w->func());
    // Pipelining the reduction loop k directly: the loop-carried
    // dependence (distance 1) forces II >= dependence latency.
    transform::setPipeline(stmts[0], "k", 1);
    auto lowered = lower::lowerStmts(w->func(), std::move(stmts));
    auto report = hls::estimate(w->func(), lowered);
    ASSERT_EQ(report.loops.size(), 1u);
    EXPECT_GT(report.loops[0].achievedII, 1);
    EXPECT_GE(report.loops[0].recMII, report.loops[0].achievedII / 2);
}

TEST(HlsEstimator, UnrollWithoutPartitionHitsPortLimit)
{
    auto w = makeByName("gemm", 64);
    auto base = lower::extractStmts(w->func());
    transform::interchange(base[0], "i", "k"); // (k, j, i)

    auto unrolled = base;
    transform::split(unrolled[0], "i", 16, "i_o", "i_i");
    transform::setUnroll(unrolled[0], "i_i", 0);
    transform::setPipeline(unrolled[0], "i_o", 1);
    auto lowered = lower::lowerStmts(w->func(), std::move(unrolled));
    auto no_part = hls::estimate(w->func(), lowered);
    ASSERT_EQ(no_part.loops.size(), 1u);
    // 16 copies x several accesses through 2 ports -> resource MII.
    EXPECT_GT(no_part.loops[0].resMII, 4);

    // Partitioning the arrays removes the bottleneck.
    for (const auto *p : w->func().placeholders()) {
        std::vector<std::int64_t> factors(p->shape().size(), 16);
        w->func().findPlaceholderMut(p->name())->partition(factors,
                                                           "cyclic");
    }
    auto part = base;
    transform::split(part[0], "i", 16, "i_o", "i_i");
    transform::setUnroll(part[0], "i_i", 0);
    transform::setPipeline(part[0], "i_o", 1);
    auto lowered2 = lower::lowerStmts(w->func(), std::move(part));
    auto with_part = hls::estimate(w->func(), lowered2);
    EXPECT_LT(with_part.loops[0].achievedII,
              no_part.loops[0].achievedII);
    EXPECT_LT(with_part.latencyCycles, no_part.latencyCycles);
}

TEST(HlsEstimator, UnrollScalesResources)
{
    auto w = makeByName("gemm", 64);
    for (const auto *p : w->func().placeholders()) {
        w->func().findPlaceholderMut(p->name())->partition({16, 16},
                                                           "cyclic");
    }
    auto base = lower::extractStmts(w->func());
    transform::interchange(base[0], "i", "k");

    auto small = base;
    transform::split(small[0], "i", 4, "i_o", "i_i");
    transform::setUnroll(small[0], "i_i", 0);
    transform::setPipeline(small[0], "i_o", 1);
    auto r4 = hls::estimate(w->func(),
                            lower::lowerStmts(w->func(), std::move(small)));

    auto big = base;
    transform::split(big[0], "i", 16, "i_o", "i_i");
    transform::setUnroll(big[0], "i_i", 0);
    transform::setPipeline(big[0], "i_o", 1);
    auto r16 = hls::estimate(w->func(),
                             lower::lowerStmts(w->func(), std::move(big)));

    EXPECT_GT(r16.resources.dsp, r4.resources.dsp * 2);
    EXPECT_LT(r16.latencyCycles, r4.latencyCycles);
}

TEST(HlsEstimator, SharingModesDiffer)
{
    auto w = makeByName("2mm", 32);
    auto lowered = lower::lowerStmts(w->func(),
                                     lower::extractStmts(w->func()));
    hls::EstimatorOptions reuse;
    reuse.sharing = hls::SharingMode::Reuse;
    hls::EstimatorOptions dataflow;
    dataflow.sharing = hls::SharingMode::Dataflow;
    auto r = hls::estimate(w->func(), lowered, reuse);
    auto d = hls::estimate(w->func(), lowered, dataflow);
    // Reuse: sequential latency, shared (max) resources. Dataflow:
    // overlapped latency, accumulated resources.
    EXPECT_GE(r.latencyCycles, d.latencyCycles);
    EXPECT_LE(r.resources.dsp, d.resources.dsp);
}

TEST(HlsEstimator, ReportPrinting)
{
    auto w = makeByName("gemm", 32);
    auto lowered = lower::lowerStmts(w->func(),
                                     lower::extractStmts(w->func()));
    auto report = hls::estimate(w->func(), lowered);
    std::string s = report.str(hls::Device::xc7z020());
    EXPECT_NE(s.find("latency="), std::string::npos);
    EXPECT_NE(s.find("DSP="), std::string::npos);
    EXPECT_EQ(report.worstII(), 1);
    EXPECT_DOUBLE_EQ(report.speedupOver(report), 1.0);
}

TEST(HlsEstimator, DeviceScaling)
{
    auto device = hls::Device::xc7z020();
    auto half = device.scaled(0.5);
    EXPECT_EQ(half.dsp, device.dsp / 2);
    hls::Resources r;
    r.dsp = device.dsp;
    EXPECT_TRUE(r.fitsIn(device));
    EXPECT_FALSE(r.fitsIn(half));
    auto m = hls::Resources::max(hls::Resources{10, 5, 3, 100},
                                 hls::Resources{4, 9, 3, 50});
    EXPECT_EQ(m.dsp, 10);
    EXPECT_EQ(m.lut, 9);
    EXPECT_EQ(m.bramBits, 100);
}

TEST(HlsEstimator, DnnWorkloadEstimates)
{
    auto w = makeByName("resnet18", 64);
    auto lowered = lower::lowerStmts(w->func(),
                                     lower::extractStmts(w->func()));
    auto report = hls::estimate(w->func(), lowered);
    EXPECT_GT(report.latencyCycles, 0u);
    // 17 convs + residual adds as top-level nests.
    EXPECT_EQ(report.nestLatencies.size(), 20u);
}

} // namespace
