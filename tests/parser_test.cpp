/**
 * @file
 * Tests for the textual IR parser: the print -> parse -> print
 * round-trip over hand-built IR, every built-in workload, and
 * fuzzer-generated schedules, plus lossless attribute encoding and
 * parser error reporting.
 */

#include <gtest/gtest.h>

#include "check/fuzzer.h"
#include "ir/builder.h"
#include "ir/parser.h"
#include "ir/verifier.h"
#include "lower/lower.h"
#include "support/diagnostics.h"
#include "workloads/workloads.h"

namespace {

using namespace pom;
using pom::ir::Attribute;
using pom::ir::Operation;

/** print(parse(print(f))) must equal print(f), and the parse must
 * reproduce a verifier-clean tree. */
void
expectRoundTrip(const Operation &func)
{
    std::string printed = func.str();
    std::unique_ptr<Operation> reparsed;
    try {
        reparsed = ir::parseIr(printed);
    } catch (const support::FatalError &e) {
        FAIL() << "parse failed: " << e.what() << "\nIR was:\n"
               << printed;
    }
    ASSERT_NE(reparsed, nullptr);
    EXPECT_EQ(reparsed->str(), printed);
}

TEST(Parser, AllWorkloadsRoundTrip)
{
    for (const auto &name : workloads::allNames()) {
        SCOPED_TRACE(name);
        auto w = workloads::makeByName(name, check::defaultFuzzSize(name));
        auto lowered = lower::lower(w->func());
        ASSERT_NE(lowered.func, nullptr);
        EXPECT_TRUE(ir::verify(*lowered.func).empty());
        expectRoundTrip(*lowered.func);
    }
}

TEST(Parser, ParsedWorkloadsVerifyClean)
{
    for (const auto &name : workloads::allNames()) {
        SCOPED_TRACE(name);
        auto w = workloads::makeByName(name, check::defaultFuzzSize(name));
        auto lowered = lower::lower(w->func());
        auto reparsed = ir::parseIr(lowered.func->str());
        auto errors = ir::verify(*reparsed);
        for (const auto &e : errors)
            ADD_FAILURE() << e;
    }
}

TEST(Parser, FuzzedSchedulesRoundTrip)
{
    const char *names[] = {"gemm", "bicg", "jacobi2d", "blur"};
    for (const char *name : names) {
        for (unsigned seed = 1; seed <= 5; ++seed) {
            SCOPED_TRACE(std::string(name) + " seed " +
                         std::to_string(seed));
            std::int64_t size = check::defaultFuzzSize(name);
            auto gen = workloads::makeByName(name, size);
            auto ops = check::generateSchedule(*gen, seed);
            auto w = workloads::makeByName(name, size);
            ASSERT_TRUE(check::applyScheduleOps(*w, ops));
            auto lowered = lower::lower(w->func());
            expectRoundTrip(*lowered.func);
        }
    }
}

TEST(Parser, AttributesAreLossless)
{
    auto func = ir::OpBuilder::makeFunc("attrs");
    auto op = Operation::create("affine.for", {}, {}, {}, 1);
    op->setAttr("i_small", Attribute(std::int64_t(-3)));
    op->setAttr("i_big",
                Attribute(std::int64_t(0x7fffffffffffffffLL)));
    op->setAttr("f_tenth", Attribute(0.1));
    op->setAttr("f_tiny", Attribute(4.9406564584124654e-324));
    op->setAttr("f_huge", Attribute(1.7976931348623157e308));
    op->setAttr("f_neg", Attribute(-123456.789012345));
    op->setAttr("f_whole", Attribute(3.0));
    op->setAttr("s_plain", Attribute("hello world"));
    op->setAttr("s_escaped", Attribute("say \"hi\" \\ done"));
    op->setAttr("vec", Attribute(std::vector<std::int64_t>{1, -2, 64}));
    Operation *raw = func->region(0).push(std::move(op));

    auto reparsed = ir::parseIr(func->str());
    EXPECT_EQ(reparsed->str(), func->str());

    const Operation &rop = *reparsed->region(0).operations().front();
    EXPECT_EQ(rop.attr("i_big").asInt(), raw->attr("i_big").asInt());
    EXPECT_EQ(rop.attr("f_tenth").asFloat(), 0.1);
    EXPECT_EQ(rop.attr("f_tiny").asFloat(), 4.9406564584124654e-324);
    EXPECT_EQ(rop.attr("f_huge").asFloat(), 1.7976931348623157e308);
    EXPECT_EQ(rop.attr("f_neg").asFloat(), -123456.789012345);
    // Whole-number floats must stay floats, not decay to ints.
    EXPECT_TRUE(rop.attr("f_whole").is<double>());
    EXPECT_EQ(rop.attr("f_whole").asFloat(), 3.0);
    EXPECT_EQ(rop.attr("s_escaped").asString(), "say \"hi\" \\ done");
    EXPECT_EQ(rop.attr("vec").asIntVector(),
              (std::vector<std::int64_t>{1, -2, 64}));
}

TEST(Parser, BoundsWithDivisorsRoundTrip)
{
    using pom::poly::Bound;
    using pom::poly::DimBounds;
    using pom::poly::LinearExpr;
    auto func = ir::OpBuilder::makeFunc("divs");
    ir::OpBuilder builder(&func->region(0));
    DimBounds bounds;
    // lower: ceil((i + 3) / 2), upper: min(15, i * 4)  at depth 1.
    bounds.lower.push_back(Bound{LinearExpr({1, 0}, 3), 2});
    bounds.upper.push_back(Bound{LinearExpr::constant(2, 15), 1});
    bounds.upper.push_back(Bound{LinearExpr({4, 0}, 0), 1});
    // The outer loop providing i0.
    DimBounds outer;
    outer.lower.push_back(Bound{LinearExpr::constant(1, 0), 1});
    outer.upper.push_back(Bound{LinearExpr::constant(1, 7), 1});
    Operation *fo = builder.createFor(outer, "i", {});
    builder.setInsertionBlock(&fo->region(0));
    builder.createFor(bounds, "j", {fo->region(0).argument(0)});

    expectRoundTrip(*func);
}

TEST(Parser, CollidingResultNamesStayDistinct)
{
    // Two loads both default-named "affine.load.r0"; printing must
    // uniquify them and the parse must keep the uses distinct.
    auto func = ir::OpBuilder::makeFunc("collide");
    ir::Value *a = ir::OpBuilder::addFuncArg(
        *func, ir::Type::memref(ir::ScalarKind::F32, {4}), "A");
    ir::OpBuilder builder(&func->region(0));
    pom::poly::DimBounds b;
    b.lower.push_back(
        pom::poly::Bound{pom::poly::LinearExpr::constant(1, 0), 1});
    b.upper.push_back(
        pom::poly::Bound{pom::poly::LinearExpr::constant(1, 3), 1});
    Operation *loop = builder.createFor(b, "i", {});
    ir::Value *iv = loop->region(0).argument(0);
    builder.setInsertionBlock(&loop->region(0));
    pom::poly::AffineMap map({"i"}, {pom::poly::LinearExpr::dim(1, 0)});
    ir::Value *v1 = builder.createLoad(a, map, {iv});
    ir::Value *v2 = builder.createLoad(a, map, {iv});
    ir::Value *sum = builder.createBinary("arith.addf", v1, v2);
    builder.createStore(sum, a, map, {iv});

    expectRoundTrip(*func);
}

TEST(Parser, ReportsErrorsWithLocation)
{
    std::string error;
    EXPECT_EQ(ir::parseIr("", &error), nullptr);
    EXPECT_NE(error.find("line"), std::string::npos);

    // Unknown SSA value.
    EXPECT_EQ(ir::parseIr("func.func {\n  arith.addf %nope, %nope\n}\n",
                          &error),
              nullptr);
    EXPECT_NE(error.find("nope"), std::string::npos);

    // Result/type count mismatch.
    EXPECT_EQ(
        ir::parseIr("%a, %b = arith.constant {value = 1.0} : f32\n",
                    &error),
        nullptr);

    // Unterminated string attribute.
    EXPECT_EQ(ir::parseIr("func.func {name = \"oops}\n", &error),
              nullptr);

    // Garbage after the module.
    EXPECT_EQ(ir::parseIr("func.func {\n}\ntrailing\n", &error),
              nullptr);

    // Throwing overload.
    EXPECT_THROW(ir::parseIr("%"), support::FatalError);
}

TEST(Parser, RejectsDuplicateDefinitions)
{
    std::string error;
    EXPECT_EQ(ir::parseIr("func.func { (%x: index, %x: index)\n}\n",
                          &error),
              nullptr);
    EXPECT_NE(error.find("redefin"), std::string::npos);
}

TEST(Parser, CommentsAndWhitespaceAreIgnored)
{
    const char *src =
        "// pipeline: verify\n"
        "// a comment line\n"
        "func.func   {  // trailing comment\n"
        "}\n";
    auto func = ir::parseIr(src);
    ASSERT_NE(func, nullptr);
    EXPECT_EQ(func->opName(), "func.func");
}

} // namespace
