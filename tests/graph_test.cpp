/**
 * @file
 * Tests for the dependence graph IR: coarse edges, data-path collection
 * (paper Fig. 8), reduction-dimension detection, and transformation
 * hints used by DSE stage 1.
 */

#include <gtest/gtest.h>

#include "dsl/dsl.h"
#include "graph/dependence_graph.h"
#include "lower/lower.h"

namespace {

using namespace pom;
using dsl::Compute;
using dsl::Function;
using dsl::Placeholder;
using dsl::Var;
using graph::DependenceGraph;
using graph::Hint;

TEST(Graph, Fig8FourNodeGraph)
{
    // S1: A = A*beta; S2: B = A+B; S3: C = A+C; S4: D = B*C (paper Fig 8)
    const std::int64_t n = 8;
    Function f("fig8");
    Var i("i", 0, n), j("j", 0, n), k("k", 0, n);
    Placeholder A(f, "A", {n, n});
    Placeholder B(f, "B", {n, n});
    Placeholder C(f, "C", {n, n});
    Placeholder D(f, "D", {n, n});
    Compute s1(f, "S1", {i, j, k}, A(i, j) * 0.5, A(i, j));
    Compute s2(f, "S2", {i, j, k}, A(i, j) + B(i, j), B(i, j));
    Compute s3(f, "S3", {i, j, k}, A(i, j) + C(i, j), C(i, j));
    Compute s4(f, "S4", {i, j, k}, D(i, j) + B(i, k) * C(k, j), D(i, j));

    auto stmts = lower::extractStmts(f);
    DependenceGraph graph(stmts);
    // Edges: S1->S2, S1->S3, S2->S4, S3->S4 (and S1->S1 style self loops
    // are not edges). S1 also writes A read by itself only.
    ASSERT_EQ(graph.nodes().size(), 4u);
    auto hasEdge = [&](size_t a, size_t b) {
        for (const auto &e : graph.edges()) {
            if (e.from == a && e.to == b)
                return true;
        }
        return false;
    };
    EXPECT_TRUE(hasEdge(0, 1));
    EXPECT_TRUE(hasEdge(0, 2));
    EXPECT_TRUE(hasEdge(1, 3));
    EXPECT_TRUE(hasEdge(2, 3));
    EXPECT_FALSE(hasEdge(1, 2));

    // Paths: S1-S2-S4 and S1-S3-S4 (Fig. 8 step 4).
    auto paths = graph.collectPaths();
    ASSERT_EQ(paths.size(), 2u);
    EXPECT_EQ(paths[0], (std::vector<size_t>{0, 1, 3}));
    EXPECT_EQ(paths[1], (std::vector<size_t>{0, 2, 3}));

    // S4 is the GEMM-like node: reduction dimension k (level 2), with a
    // loop-carried dependence at the innermost level.
    const auto &s4_info = graph.nodes()[3];
    ASSERT_FALSE(s4_info.selfDeps.empty());
    ASSERT_EQ(s4_info.reductionDims.size(), 1u);
    EXPECT_EQ(s4_info.reductionDims[0], 2u);
    EXPECT_TRUE(s4_info.innermostCarried);

    // The hint: interchange a free level innermost (Fig. 8 "Guidance").
    Hint hint = graph.suggest(3);
    EXPECT_EQ(hint.kind, Hint::Kind::Interchange);
    EXPECT_EQ(hint.toLevel, 2u);

    // The graph prints something useful.
    std::string s = graph.str();
    EXPECT_NE(s.find("S4"), std::string::npos);
    EXPECT_NE(s.find("edge"), std::string::npos);
}

TEST(Graph, BicgInnerCarriedSuggestsInterchange)
{
    // q[i] += A[i][j]*p[j]: dependence carried at j (innermost); level i
    // is free -> interchange hint.
    const std::int64_t n = 8;
    Function f("bicg_q");
    Var i("i", 0, n), j("j", 0, n);
    Placeholder A(f, "A", {n, n});
    Placeholder p(f, "p", {n});
    Placeholder q(f, "q", {n});
    Compute s(f, "s", {i, j}, q(i) + A(i, j) * p(j), q(i));

    auto stmts = lower::extractStmts(f);
    DependenceGraph graph(stmts);
    EXPECT_TRUE(graph.nodes()[0].innermostCarried);
    Hint hint = graph.suggest(0);
    EXPECT_EQ(hint.kind, Hint::Kind::Interchange);
    EXPECT_EQ(hint.fromLevel, 0u);
    EXPECT_EQ(hint.toLevel, 1u);
}

TEST(Graph, SeidelLikeSuggestsSkew)
{
    // Seidel-style in-place stencil: every level carries a dependence,
    // interchange cannot help -> skew hint.
    Function f("seidel_like");
    Var i("i", 1, 9), j("j", 1, 9);
    Placeholder A(f, "A", {10, 10});
    Compute s(f, "s", {i, j},
              (A(i - 1, j) + A(i, j - 1) + A(i, j)) / 3.0, A(i, j));
    auto stmts = lower::extractStmts(f);
    DependenceGraph graph(stmts);
    EXPECT_TRUE(graph.nodes()[0].innermostCarried);
    Hint hint = graph.suggest(0);
    EXPECT_EQ(hint.kind, Hint::Kind::Skew);
    EXPECT_NE(hint.str(), "");
}

TEST(Graph, NoDependenceNoHint)
{
    const std::int64_t n = 8;
    Function f("copy");
    Var i("i", 0, n), j("j", 0, n);
    Placeholder X(f, "X", {n, n});
    Placeholder Y(f, "Y", {n, n});
    Compute s(f, "s", {i, j}, X(i, j) * 2.0, Y(i, j));
    auto stmts = lower::extractStmts(f);
    DependenceGraph graph(stmts);
    EXPECT_TRUE(graph.nodes()[0].selfDeps.empty());
    EXPECT_FALSE(graph.nodes()[0].innermostCarried);
    EXPECT_EQ(graph.suggest(0).kind, Hint::Kind::None);
}

TEST(Graph, InterchangeLegality)
{
    // Fig. 1 stencil: dependence (1, 1). Interchange (swap both) keeps
    // it lexicographically positive -> legal.
    Function f("diag");
    Var i("i", 1, 9), j("j", 1, 9);
    Placeholder A(f, "A", {10, 10});
    Compute s(f, "s", {i, j}, A(i - 1, j - 1) * 2.0, A(i, j));
    auto stmts = lower::extractStmts(f);
    DependenceGraph graph(stmts);
    EXPECT_TRUE(graph.interchangeIsLegal(0, 0, 1));
}

TEST(Graph, AntiDiagonalInterchangeIllegal)
{
    Function f("anti");
    Var i("i", 1, 8), j("j", 1, 8);
    Placeholder B(f, "B", {10, 10});
    Compute s(f, "s", {i, j}, B(i - 1, j + 1) * 2.0, B(i, j));
    auto stmts = lower::extractStmts(f);
    DependenceGraph graph(stmts);
    EXPECT_FALSE(graph.interchangeIsLegal(0, 0, 1));
}

TEST(Graph, RefreshAfterTransform)
{
    const std::int64_t n = 8;
    Function f("bicg_q");
    Var i("i", 0, n), j("j", 0, n);
    Placeholder A(f, "A", {n, n});
    Placeholder p(f, "p", {n});
    Placeholder q(f, "q", {n});
    Compute s(f, "s", {i, j}, q(i) + A(i, j) * p(j), q(i));
    auto stmts = lower::extractStmts(f);
    DependenceGraph graph(stmts);
    ASSERT_EQ(graph.suggest(0).kind, Hint::Kind::Interchange);

    // Apply the suggested interchange and refresh: the dependence is now
    // carried at the outer level, innermost is free.
    transform::interchange(stmts[0], "i", "j");
    graph.refresh(stmts);
    EXPECT_FALSE(graph.nodes()[0].innermostCarried);
    EXPECT_EQ(graph.suggest(0).kind, Hint::Kind::None);
}

TEST(Graph, SingletonPath)
{
    Function f("one");
    Var i("i", 0, 4);
    Placeholder X(f, "X", {4});
    Compute s(f, "s", {i}, X(i) + 1.0, X(i));
    auto stmts = lower::extractStmts(f);
    DependenceGraph graph(stmts);
    auto paths = graph.collectPaths();
    ASSERT_EQ(paths.size(), 1u);
    EXPECT_EQ(paths[0], (std::vector<size_t>{0}));
}

} // namespace
