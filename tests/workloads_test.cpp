/**
 * @file
 * Structural tests for the benchmark workloads: statement counts, loop
 * depths, fusion structure, and functional spot checks against plain
 * C++ references at small sizes.
 */

#include <gtest/gtest.h>

#include "ir/interpreter.h"
#include "ir/verifier.h"
#include "lower/lower.h"
#include "support/diagnostics.h"
#include "workloads/workloads.h"

namespace {

using namespace pom;
using workloads::makeByName;

lower::LoweredFunction
lowerWorkload(dsl::Function &func)
{
    auto stmts = lower::extractStmts(func);
    lower::applyDirectives(stmts);
    return lower::lowerStmts(func, std::move(stmts));
}

TEST(Workloads, AllByNameConstructAndVerify)
{
    const char *names[] = {"gemm", "bicg", "gesummv", "2mm", "3mm",
                           "jacobi1d", "jacobi2d", "heat1d", "seidel",
                           "edgedetect", "gaussian", "blur"};
    for (const char *name : names) {
        auto w = makeByName(name, 32);
        auto lowered = lowerWorkload(w->func());
        auto errors = ir::verify(*lowered.func);
        EXPECT_TRUE(errors.empty()) << name << ": " << errors.size();
    }
}

TEST(Workloads, UnknownNameIsFatal)
{
    EXPECT_THROW(makeByName("nonsense", 32), support::FatalError);
}

TEST(Workloads, BicgIsOneFusedNest)
{
    auto w = makeByName("bicg", 32);
    auto lowered = lowerWorkload(w->func());
    // Exactly one i-loop at the top (both statements fused).
    EXPECT_EQ(lowered.astRoot->kind(), ast::AstNode::Kind::For);
    EXPECT_EQ(w->func().computes().size(), 2u);
}

TEST(Workloads, DnnCriticalLoopCounts)
{
    auto vgg = makeByName("vgg16", 512);
    // 13 critical conv loops (paper §VII.E).
    EXPECT_EQ(vgg->func().computes().size(), 13u);
    for (const dsl::Compute *c : vgg->func().computes())
        EXPECT_EQ(c->iters().size(), 6u);

    auto resnet = makeByName("resnet18", 512);
    // 17 convs + 3 residual loops = 20 critical loops.
    EXPECT_EQ(resnet->func().computes().size(), 20u);
    int convs = 0, residuals = 0;
    for (const dsl::Compute *c : resnet->func().computes()) {
        if (c->name().rfind("conv", 0) == 0)
            ++convs;
        if (c->name().rfind("residual", 0) == 0)
            ++residuals;
    }
    EXPECT_EQ(convs, 17);
    EXPECT_EQ(residuals, 3);
}

TEST(Workloads, GemmComputesMatMul)
{
    const std::int64_t n = 8;
    auto w = makeByName("gemm", n);
    auto lowered = lowerWorkload(w->func());
    auto buffers = ir::makeBuffersFor(*lowered.func, 5);
    std::vector<double> ref = buffers["C"]->data();
    const auto &a = buffers["A"]->data();
    const auto &b = buffers["B"]->data();
    for (std::int64_t i = 0; i < n; ++i)
        for (std::int64_t j = 0; j < n; ++j)
            for (std::int64_t k = 0; k < n; ++k)
                ref[i * n + j] += a[i * n + k] * b[k * n + j];
    ir::runFunction(*lowered.func, buffers);
    for (size_t x = 0; x < ref.size(); ++x)
        ASSERT_DOUBLE_EQ(buffers["C"]->data()[x], ref[x]);
}

TEST(Workloads, BicgComputesBothProducts)
{
    const std::int64_t n = 8;
    auto w = makeByName("bicg", n);
    auto lowered = lowerWorkload(w->func());
    auto buffers = ir::makeBuffersFor(*lowered.func, 9);
    std::vector<double> q_ref = buffers["q"]->data();
    std::vector<double> s_ref = buffers["s"]->data();
    const auto &a = buffers["A"]->data();
    const auto &p = buffers["p"]->data();
    const auto &r = buffers["r"]->data();
    for (std::int64_t i = 0; i < n; ++i) {
        for (std::int64_t j = 0; j < n; ++j) {
            q_ref[i] += a[i * n + j] * p[j];
            s_ref[j] += r[i] * a[i * n + j];
        }
    }
    ir::runFunction(*lowered.func, buffers);
    for (std::int64_t i = 0; i < n; ++i) {
        ASSERT_DOUBLE_EQ(buffers["q"]->data()[i], q_ref[i]);
        ASSERT_DOUBLE_EQ(buffers["s"]->data()[i], s_ref[i]);
    }
}

TEST(Workloads, SeidelInPlaceSemantics)
{
    const std::int64_t n = 10, steps = 2;
    auto w = workloads::makeSeidel2d(n, steps);
    auto lowered = lowerWorkload(w->func());
    auto buffers = ir::makeBuffersFor(*lowered.func, 3);
    std::vector<double> a = buffers["A"]->data();
    for (std::int64_t t = 0; t < steps; ++t) {
        for (std::int64_t i = 1; i < n - 1; ++i) {
            for (std::int64_t j = 1; j < n - 1; ++j) {
                a[i * n + j] =
                    (a[(i - 1) * n + j] + a[i * n + j - 1] + a[i * n + j] +
                     a[i * n + j + 1] + a[(i + 1) * n + j]) /
                    5.0;
            }
        }
    }
    ir::runFunction(*lowered.func, buffers);
    for (size_t x = 0; x < a.size(); ++x)
        ASSERT_DOUBLE_EQ(buffers["A"]->data()[x], a[x]);
}

TEST(Workloads, BlurMatchesReference)
{
    const std::int64_t n = 12;
    auto w = makeByName("blur", n);
    auto lowered = lowerWorkload(w->func());
    auto buffers = ir::makeBuffersFor(*lowered.func, 21);
    const auto &img = buffers["img"]->data();
    std::vector<double> bx(n * n, 0.0), out(n * n, 0.0);
    for (std::int64_t i = 0; i < n; ++i)
        for (std::int64_t j = 0; j < n - 2; ++j)
            bx[i * n + j] = (img[i * n + j] + img[i * n + j + 1] +
                             img[i * n + j + 2]) /
                            3.0;
    for (std::int64_t i = 0; i < n - 2; ++i)
        for (std::int64_t j = 0; j < n - 2; ++j)
            out[i * n + j] = (bx[i * n + j] + bx[(i + 1) * n + j] +
                              bx[(i + 2) * n + j]) /
                             3.0;
    ir::runFunction(*lowered.func, buffers);
    for (std::int64_t i = 0; i < n - 2; ++i) {
        for (std::int64_t j = 0; j < n - 2; ++j) {
            ASSERT_DOUBLE_EQ(buffers["out"]->data()[i * n + j],
                             out[i * n + j]);
        }
    }
}

TEST(Workloads, Jacobi1dMatchesFig16Reference)
{
    const std::int64_t n = 16, steps = 3;
    auto w = workloads::makeJacobi1d(n, steps);
    auto lowered = lowerWorkload(w->func());
    auto buffers = ir::makeBuffersFor(*lowered.func, 8);
    std::vector<double> a = buffers["A"]->data();
    std::vector<double> b = buffers["B"]->data();
    for (std::int64_t t = 0; t < steps; ++t) {
        for (std::int64_t i = 1; i < n - 1; ++i)
            b[i] = (a[i - 1] + a[i] + a[i + 1]) / 3.0;
        for (std::int64_t i = 1; i < n - 1; ++i)
            a[i] = b[i];
    }
    ir::runFunction(*lowered.func, buffers);
    for (std::int64_t i = 0; i < n; ++i)
        ASSERT_DOUBLE_EQ(buffers["A"]->data()[i], a[i]);
}

TEST(Workloads, EdgeDetectUsesAbsViaMax)
{
    const std::int64_t n = 10;
    auto w = makeByName("edgedetect", n);
    auto lowered = lowerWorkload(w->func());
    auto buffers = ir::makeBuffersFor(*lowered.func, 4);
    ir::runFunction(*lowered.func, buffers);
    // |gx| + |gy| is non-negative everywhere it was written.
    for (std::int64_t i = 1; i < n - 1; ++i) {
        for (std::int64_t j = 1; j < n - 1; ++j)
            EXPECT_GE(buffers["out"]->data()[i * n + j], 0.0);
    }
}

} // namespace
