# Drives the pom-trend regression gate end-to-end on synthetic data.
# The gate must demonstrably gate: a steady series passes (exit 0), an
# injected deterministic regression fails (exit 3), and the rendered
# page is self-contained SVG. Invoked by ctest as:
#
#   cmake -DPOM_TREND=<binary> -DWORK_DIR=<scratch> -P run_trend_gate.cmake

if(NOT POM_TREND OR NOT WORK_DIR)
    message(FATAL_ERROR "need -DPOM_TREND=<binary> -DWORK_DIR=<dir>")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")
set(history "${WORK_DIR}/history.ndjsonl")

# One synthetic pom-bench/v1 document per run of the series.
function(write_bench path sha cold latency hit_rate)
    file(WRITE "${path}" "{\"schema\": \"pom-bench/v1\", \
\"version\": \"0.0.0\", \"sha\": \"${sha}\", \
\"timestamp\": \"2026-01-01T00:00:00Z\", \"metrics\": [
{\"name\": \"bench.dse.sweep.cold_seq_seconds\", \"kind\": \"gauge\", \"value\": ${cold}},
{\"name\": \"bench.dse.sweep.latency_cycles_sum\", \"kind\": \"gauge\", \"value\": ${latency}},
{\"name\": \"bench.dse.cache.hit_rate\", \"kind\": \"gauge\", \"value\": ${hit_rate}},
{\"name\": \"bench.dse.strategy.greedy.points\", \"kind\": \"gauge\", \"value\": 500}
]}\n")
endfunction()

function(run_trend expect)
    execute_process(COMMAND ${POM_TREND} ${ARGN}
        RESULT_VARIABLE result
        OUTPUT_VARIABLE stdout ERROR_VARIABLE stderr)
    if(NOT result EQUAL ${expect})
        message(FATAL_ERROR "pom-trend ${ARGN}: expected exit ${expect}, "
            "got ${result}\nstdout:\n${stdout}\nstderr:\n${stderr}")
    endif()
endfunction()

# 1. Build a 5-record baseline with mild wall-clock jitter around a
#    steady deterministic QoR.
set(colds 2.10 2.30 2.20 2.25 2.15)
set(i 0)
foreach(cold IN LISTS colds)
    math(EXPR i "${i} + 1")
    write_bench("${WORK_DIR}/b${i}.json" "sha${i}" ${cold} 1000000 0.95)
    run_trend(0 --history "${history}" --bench "${WORK_DIR}/b${i}.json"
        --append)
endforeach()

# 2. A matching run passes the gate.
write_bench("${WORK_DIR}/good.json" "shaG" 2.20 1000000 0.95)
run_trend(0 --history "${history}" --bench "${WORK_DIR}/good.json" --check)

# 3. +5% summed latency breaches the 2% deterministic threshold.
write_bench("${WORK_DIR}/bad.json" "shaB" 2.20 1050000 0.95)
run_trend(3 --history "${history}" --bench "${WORK_DIR}/bad.json" --check)

# 4. A 50% wall-clock blowup breaches the noisy threshold, and the
#    loose CI threshold (150%) tolerates it.
write_bench("${WORK_DIR}/slow.json" "shaS" 3.40 1000000 0.95)
run_trend(3 --history "${history}" --bench "${WORK_DIR}/slow.json" --check)
run_trend(0 --history "${history}" --bench "${WORK_DIR}/slow.json" --check
    --threshold 1.5)

# 5. A cache-hit-rate drop (higher-is-better direction) also gates.
write_bench("${WORK_DIR}/drop.json" "shaD" 2.20 1000000 0.85)
run_trend(3 --history "${history}" --bench "${WORK_DIR}/drop.json" --check)

# 6. --append --check in one invocation: the record lands in the
#    history AND the gate still fails -- the CI calling convention.
write_bench("${WORK_DIR}/bad2.json" "shaB2" 2.20 1080000 0.95)
run_trend(3 --history "${history}" --bench "${WORK_DIR}/bad2.json"
    --append --check --html "${WORK_DIR}/trend.html")
file(STRINGS "${history}" records)
list(LENGTH records n)
if(NOT n EQUAL 6)
    message(FATAL_ERROR "expected 6 history records after appends, got ${n}")
endif()

# 7. The page is self-contained: inline SVG, no script tags.
file(READ "${WORK_DIR}/trend.html" html)
if(NOT html MATCHES "<svg ")
    message(FATAL_ERROR "trend.html has no inline SVG")
endif()
if(html MATCHES "<script")
    message(FATAL_ERROR "trend.html must not reference scripts")
endif()
if(NOT html MATCHES "shaB2")
    message(FATAL_ERROR "trend.html must include the appended record")
endif()

# 8. Usage and I/O errors use distinct exit codes.
run_trend(2)                                       # no --history
run_trend(2 --history "${history}" --append)       # --append sans --bench
run_trend(1 --history "${history}" --bench "${WORK_DIR}/missing.json"
    --check)                                       # unreadable bench

message(STATUS "pom-trend gate behaves: clean=0, regression=3")
