/**
 * @file
 * Tests for the parallel, memoized DSE: journal determinism across
 * speculation widths, estimator-cache behaviour during a search,
 * journal replay (pomc --replay-journal), the journal JSON parser, and
 * the all-workload sweep golden that gates final latency and explored
 * point count per workload.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "dse/dse.h"
#include "hls/estimator_cache.h"
#include "obs/journal.h"
#include "obs/obs.h"
#include "support/diagnostics.h"
#include "workloads/workloads.h"

namespace {

using namespace pom;
using workloads::makeByName;

dse::DseResult
runDse(const std::string &name, std::int64_t size, int jobs,
       bool memoize = true)
{
    auto w = makeByName(name, size);
    dse::DseOptions opt;
    opt.jobs = jobs;
    opt.memoize = memoize;
    return dse::autoDSE(w->func(), opt);
}

TEST(ParallelDse, JournalIdenticalAcrossJobCounts)
{
    // The tentpole property: the speculative search must replay the
    // sequential trajectory exactly, so the journal -- points, order,
    // verdicts, numbers -- is byte-identical for any worker count.
    for (const char *name : {"gemm", "bicg", "2mm", "jacobi2d"}) {
        std::string sequential =
            obs::journalJson(runDse(name, 64, 1).journal);
        std::string speculative =
            obs::journalJson(runDse(name, 64, 4).journal);
        EXPECT_EQ(sequential, speculative) << name;
        std::string wide = obs::journalJson(runDse(name, 64, 13).journal);
        EXPECT_EQ(sequential, wide) << name;
    }
}

TEST(ParallelDse, MemoizationDoesNotChangeTheSearch)
{
    std::string cold = obs::journalJson(
        runDse("gesummv", 64, 2, /*memoize=*/false).journal);
    std::string warm =
        obs::journalJson(runDse("gesummv", 64, 2, true).journal);
    // Run again with every estimate already cached.
    std::string hot =
        obs::journalJson(runDse("gesummv", 64, 2, true).journal);
    EXPECT_EQ(cold, warm);
    EXPECT_EQ(cold, hot);
}

TEST(ParallelDse, FinalMaterializationHitsTheCache)
{
    hls::EstimatorCache &cache = hls::EstimatorCache::global();
    std::int64_t hits0 = obs::counterValue("dse.cache.hits");
    std::uint64_t chits0 = cache.hits();

    dse::DseResult res = runDse("atax", 96, 1);
    EXPECT_GT(res.pointsExplored, 2);

    // The winning configuration was estimated during the search, so
    // materializing it must be a cache hit -- on every run, even the
    // first, which is what makes dse.cache.hits nonzero per workload.
    EXPECT_GT(obs::counterValue("dse.cache.hits"), hits0);
    EXPECT_GT(cache.hits(), chits0);

    // A warm identical search: every point is served from the cache.
    std::int64_t misses1 = obs::counterValue("dse.cache.misses");
    dse::DseResult warm = runDse("atax", 96, 1);
    EXPECT_EQ(obs::counterValue("dse.cache.misses"), misses1);
    EXPECT_EQ(warm.report.latencyCycles, res.report.latencyCycles);
    EXPECT_EQ(warm.pointsExplored, res.pointsExplored);
}

TEST(ParallelDse, ParallelDesignMatchesSequentialDesign)
{
    dse::DseResult seq = runDse("conv2d", 64, 1);
    dse::DseResult par = runDse("conv2d", 64, 8);
    EXPECT_EQ(seq.report.latencyCycles, par.report.latencyCycles);
    EXPECT_EQ(seq.report.resources.dsp, par.report.resources.dsp);
    EXPECT_EQ(seq.pointsExplored, par.pointsExplored);
    ASSERT_EQ(seq.parallelism.size(), par.parallelism.size());
    for (size_t i = 0; i < seq.parallelism.size(); ++i) {
        EXPECT_EQ(seq.parallelism[i], par.parallelism[i]);
    }
}

TEST(JournalParser, RoundTripsTheEmitter)
{
    dse::DseResult res = runDse("gemm", 64, 2);
    std::string json = obs::journalJson(res.journal);

    std::vector<obs::JournalEntry> parsed;
    std::string error;
    ASSERT_TRUE(obs::parseJournalJson(json, parsed, error)) << error;
    ASSERT_EQ(parsed.size(), res.journal.size());
    for (size_t i = 0; i < parsed.size(); ++i) {
        EXPECT_EQ(parsed[i].kind, res.journal[i].kind);
        EXPECT_EQ(parsed[i].phase, res.journal[i].phase);
        EXPECT_EQ(parsed[i].point, res.journal[i].point);
        EXPECT_EQ(parsed[i].detail, res.journal[i].detail);
        EXPECT_EQ(parsed[i].primitives, res.journal[i].primitives);
        EXPECT_EQ(parsed[i].latencyCycles, res.journal[i].latencyCycles);
        EXPECT_EQ(parsed[i].dsp, res.journal[i].dsp);
        EXPECT_EQ(parsed[i].bramBits, res.journal[i].bramBits);
        EXPECT_EQ(parsed[i].lut, res.journal[i].lut);
        EXPECT_EQ(parsed[i].ff, res.journal[i].ff);
        EXPECT_EQ(parsed[i].verdict, res.journal[i].verdict);
        EXPECT_EQ(parsed[i].reason, res.journal[i].reason);
    }

    // Escaped content survives the round trip.
    obs::JournalEntry tricky;
    tricky.kind = "stage1";
    tricky.detail = "a \"quoted\"\nbackslash \\ tab\t";
    std::string doc = obs::journalJson({tricky});
    ASSERT_TRUE(obs::parseJournalJson(doc, parsed, error)) << error;
    ASSERT_EQ(parsed.size(), 1u);
    EXPECT_EQ(parsed[0].detail, tricky.detail);
}

TEST(JournalParser, RejectsMalformedDocuments)
{
    std::vector<obs::JournalEntry> parsed;
    std::string error;
    EXPECT_FALSE(obs::parseJournalJson("", parsed, error));
    EXPECT_FALSE(obs::parseJournalJson("{}", parsed, error));
    EXPECT_FALSE(obs::parseJournalJson(
        "{\"schema\": \"other/v9\", \"events\": []}", parsed, error));
    EXPECT_NE(error.find("schema"), std::string::npos);
    EXPECT_FALSE(obs::parseJournalJson(
        "{\"schema\": \"pom-dse-journal/v1\", \"events\": [{\"kind\": ",
        parsed, error));
    EXPECT_TRUE(obs::parseJournalJson(
        "{\"schema\": \"pom-dse-journal/v1\", \"events\": []}", parsed,
        error))
        << error;
    EXPECT_TRUE(parsed.empty());
}

TEST(Replay, ReproducesJournaledPoints)
{
    auto w = makeByName("gemm", 64);
    dse::DseResult res = dse::autoDSE(w->func());

    for (const auto &e : res.journal) {
        if (e.kind != "point")
            continue;
        auto fresh = makeByName("gemm", 64);
        dse::ReplayResult rr =
            dse::replayPoint(fresh->func(), res.journal, e.point);
        EXPECT_EQ(rr.report.latencyCycles, e.latencyCycles)
            << "point " << e.point << " (" << e.phase << ")";
        EXPECT_EQ(rr.report.resources.dsp, e.dsp) << "point " << e.point;
        EXPECT_EQ(rr.primitives, e.primitives);
        EXPECT_NE(rr.design.func, nullptr);
    }
}

TEST(Replay, RejectsMismatchedWorkloadAndMissingPoint)
{
    auto w = makeByName("gemm", 64);
    dse::DseResult res = dse::autoDSE(w->func());

    auto other = makeByName("bicg", 64);
    EXPECT_THROW(dse::replayPoint(other->func(), res.journal,
                                  res.pointsExplored),
                 support::FatalError);
    auto fresh = makeByName("gemm", 64);
    EXPECT_THROW(dse::replayPoint(fresh->func(), res.journal, 99999),
                 support::FatalError);
}

// ----- the all-workload sweep golden ------------------------------------

struct SweepRow
{
    std::string workload;
    std::int64_t size = 0;
    int points = 0;
    std::uint64_t latency = 0;

    /** Final Pareto frontier (objectives only; ids/primitives vary
     *  freely without being a regression). */
    std::vector<dse::FrontierPoint> frontier;
};

/** Pinned sweep configuration: every registered workload. The DNNs get
 *  a reduced stage-2 bound to keep the tier-1 suite fast; their full
 *  search depth is exercised by bench/dse_wallclock. */
std::vector<std::pair<std::string, dse::DseOptions>>
sweepPlan(std::vector<std::int64_t> &sizes)
{
    std::vector<std::pair<std::string, dse::DseOptions>> plan;
    sizes.clear();
    for (const auto &name : workloads::allNames()) {
        dse::DseOptions opt;
        bool dnn = name == "vgg16" || name == "resnet18";
        if (dnn)
            opt.maxParallelism = 2;
        plan.emplace_back(name, opt);
        sizes.push_back(dnn ? 64 : 128);
    }
    return plan;
}

TEST(DseSweepGolden, NoWorkloadRegresses)
{
    std::vector<std::int64_t> sizes;
    auto plan = sweepPlan(sizes);

    std::vector<SweepRow> got;
    for (size_t i = 0; i < plan.size(); ++i) {
        auto w = makeByName(plan[i].first, sizes[i]);
        dse::DseResult res = dse::autoDSE(w->func(), plan[i].second);
        SweepRow row;
        row.workload = plan[i].first;
        row.size = sizes[i];
        row.points = res.pointsExplored;
        row.latency = res.report.latencyCycles;
        row.frontier = res.frontier;
        got.push_back(std::move(row));
    }

    const std::string path =
        std::string(POM_GOLDEN_DIR) + "/dse_sweep_expected.txt";
    if (std::getenv("POM_UPDATE_EXPECTED") != nullptr) {
        std::ofstream out(path);
        ASSERT_TRUE(out.good()) << "cannot write " << path;
        out << "# workload size points_explored latency_cycles\n"
            << "# frontier workload size latency_cycles dsp bram_bits "
               "lut\n";
        for (const auto &r : got) {
            out << r.workload << " " << r.size << " " << r.points << " "
                << r.latency << "\n";
            for (const auto &p : r.frontier) {
                out << "frontier " << r.workload << " " << r.size << " "
                    << p.latencyCycles << " " << p.dsp << " "
                    << p.bramBits << " " << p.lut << "\n";
            }
        }
        GTEST_SKIP() << "updated " << path;
    }

    std::ifstream in(path);
    ASSERT_TRUE(in.good())
        << "missing golden file " << path
        << " (regenerate with POM_UPDATE_EXPECTED=1)";
    std::vector<SweepRow> expected;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ls(line);
        std::string first;
        ls >> first;
        if (first == "frontier") {
            // A committed frontier point of the preceding workload row.
            std::string workload;
            std::int64_t size = 0;
            dse::FrontierPoint p;
            ASSERT_TRUE(static_cast<bool>(ls >> workload >> size >>
                                          p.latencyCycles >> p.dsp >>
                                          p.bramBits >> p.lut))
                << "malformed golden line: " << line;
            SweepRow *owner = nullptr;
            for (auto &row : expected) {
                if (row.workload == workload && row.size == size)
                    owner = &row;
            }
            ASSERT_NE(owner, nullptr)
                << "frontier line before its workload row: " << line;
            owner->frontier.push_back(std::move(p));
            continue;
        }
        SweepRow r;
        r.workload = first;
        ASSERT_TRUE(
            static_cast<bool>(ls >> r.size >> r.points >> r.latency))
            << "malformed golden line: " << line;
        expected.push_back(std::move(r));
    }

    for (const auto &g : got) {
        const SweepRow *e = nullptr;
        for (const auto &row : expected) {
            if (row.workload == g.workload && row.size == g.size)
                e = &row;
        }
        if (e == nullptr) {
            ADD_FAILURE() << g.workload << " (size " << g.size
                          << ") has no golden row; regenerate with "
                             "POM_UPDATE_EXPECTED=1";
            continue;
        }
        // One-sided gates: the search may only get better.
        EXPECT_LE(g.latency, e->latency)
            << g.workload << ": final latency regressed from "
            << e->latency << " to " << g.latency;
        EXPECT_LE(g.points, e->points)
            << g.workload << ": explored points inflated from "
            << e->points << " to " << g.points;
        if (g.latency < e->latency || g.points < e->points) {
            std::printf("note: %s improved (latency %llu -> %llu, "
                        "points %d -> %d); consider regenerating the "
                        "golden with POM_UPDATE_EXPECTED=1\n",
                        g.workload.c_str(),
                        static_cast<unsigned long long>(e->latency),
                        static_cast<unsigned long long>(g.latency),
                        e->points, g.points);
        }

        // The frontier-dominance gate: no committed frontier point may
        // become dominated by the new output. A trade-off the search
        // once discovered must never silently get strictly worse.
        for (const auto &want : e->frontier) {
            for (const auto &have : g.frontier) {
                EXPECT_FALSE(dse::dominates(have, want))
                    << g.workload << ": committed frontier point ("
                    << want.latencyCycles << ", " << want.dsp << ", "
                    << want.bramBits << ", " << want.lut
                    << ") is dominated by new point ("
                    << have.latencyCycles << ", " << have.dsp << ", "
                    << have.bramBits << ", " << have.lut
                    << "); regenerate with POM_UPDATE_EXPECTED=1 only "
                       "if this trade-off is intentional";
            }
        }
    }
}

} // namespace
