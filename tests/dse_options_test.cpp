/**
 * @file
 * Tests for DSE configuration knobs, the extended workload set, and
 * the derived HLS DEPENDENCE pragma hints.
 */

#include <gtest/gtest.h>

#include "baselines/baselines.h"
#include "driver/compiler.h"
#include "dse/dse.h"
#include "hls/count.h"
#include "ir/interpreter.h"
#include "ir/verifier.h"
#include "lower/lower.h"
#include "workloads/workloads.h"

namespace {

using namespace pom;
using workloads::makeByName;

TEST(DseOptions, MaxParallelismCapsUnrolling)
{
    auto w_small = makeByName("gemm", 256);
    dse::DseOptions small;
    small.maxParallelism = 4;
    auto r_small = dse::autoDSE(w_small->func(), small);

    auto w_big = makeByName("gemm", 256);
    dse::DseOptions big;
    big.maxParallelism = 64;
    auto r_big = dse::autoDSE(w_big->func(), big);

    EXPECT_LT(r_small.report.resources.dsp, r_big.report.resources.dsp);
    EXPECT_GT(r_small.report.latencyCycles, r_big.report.latencyCycles);
    for (const auto &[name, degree] : r_small.parallelism)
        EXPECT_LE(degree, 4);
}

TEST(DseOptions, InnerUnrollCapShapesTiles)
{
    auto w = makeByName("gemm", 256);
    dse::DseOptions opt;
    opt.innerUnrollCap = 4;
    opt.maxParallelism = 16;
    auto r = dse::autoDSE(w->func(), opt);
    // The innermost unrolled loop has at most 4 copies.
    for (const auto &stmt : r.design.stmts) {
        auto trips = hls::avgTrips(stmt.sched.domain);
        for (size_t l = 0; l < stmt.numDims(); ++l) {
            std::int64_t u = stmt.sched.hwPerDim[l].unrollFactor;
            if (u == 0 && l == stmt.numDims() - 1) {
                EXPECT_LE(trips[l], 4);
            }
        }
    }
    EXPECT_TRUE(
        r.report.resources.fitsIn(hls::Device::xc7z020()));
}

TEST(DseOptions, UserDirectivesCanBeIgnored)
{
    // With applyUserDirectives=false the DSE starts from the plain
    // program; a deliberately bad user schedule must not hurt.
    auto make = [] {
        auto w = makeByName("gemm", 128);
        auto *c = w->func().computes()[0];
        // A bad user idea: pipeline the reduction loop directly.
        c->pipeline(c->iters().back(), 1);
        return w;
    };
    auto w1 = make();
    dse::DseOptions keep;
    keep.applyUserDirectives = true;
    auto r1 = dse::autoDSE(w1->func(), keep);

    auto w2 = make();
    dse::DseOptions drop;
    drop.applyUserDirectives = false;
    auto r2 = dse::autoDSE(w2->func(), drop);

    // Both modes must produce feasible, profitable designs; the flag
    // controls only the starting point of the search.
    EXPECT_TRUE(r1.report.resources.fitsIn(hls::Device::xc7z020()));
    EXPECT_TRUE(r2.report.resources.fitsIn(hls::Device::xc7z020()));
    EXPECT_GE(r1.speedup(), 1.0);
    EXPECT_GE(r2.speedup(), 1.0);
}

TEST(DseOptions, CliffThresholdIsConfigurable)
{
    auto w = makeByName("gemm", 2048);
    baselines::BaselineOptions opt;
    opt.scaleHlsSizeCliff = 1024; // trigger the cliff early
    auto r = baselines::runScaleHlsLike(w->func(), opt);
    EXPECT_NE(r.notes.find("basic pipelining"), std::string::npos);
}

// ---- extended workloads --------------------------------------------------

class NewWorkloadSweep : public ::testing::TestWithParam<const char *>
{};

TEST_P(NewWorkloadSweep, LowersVerifiesAndOptimizes)
{
    auto w = makeByName(GetParam(), 24);
    auto result = dse::autoDSE(w->func());
    EXPECT_TRUE(ir::verify(*result.design.func).empty());
    EXPECT_GE(result.speedup(), 1.0);

    // Semantics preserved (interpreter, bit-exact).
    auto ref_stmts = lower::extractStmts(w->func());
    lower::applyDirectives(ref_stmts, true);
    auto plain = lower::lowerStmts(w->func(), std::move(ref_stmts));
    auto b1 = ir::makeBuffersFor(*plain.func, 31);
    auto b2 = ir::makeBuffersFor(*result.design.func, 31);
    ir::runFunction(*plain.func, b1);
    ir::runFunction(*result.design.func, b2);
    for (const auto &[name, buf] : b1) {
        const auto &got = b2.at(name)->data();
        for (size_t i = 0; i < buf->data().size(); ++i)
            ASSERT_DOUBLE_EQ(got[i], buf->data()[i]) << name << i;
    }
}

INSTANTIATE_TEST_SUITE_P(Names, NewWorkloadSweep,
                         ::testing::Values("atax", "mvt", "syrk",
                                           "conv2d"));

TEST(NewWorkloads, SyrkReachesHighParallelism)
{
    auto w = makeByName("syrk", 1024);
    auto r = dse::autoDSE(w->func());
    EXPECT_GT(r.speedup(), 50.0);
    EXPECT_LE(r.report.worstII(), 2);
}

TEST(NewWorkloads, Conv2dPipelinesOverReduction)
{
    auto w = makeByName("conv2d", 512);
    auto r = dse::autoDSE(w->func());
    EXPECT_GT(r.speedup(), 10.0);
}

// ---- dependence pragma hints ----------------------------------------------

TEST(DependenceHints, EmittedForProvenIndependentArrays)
{
    auto w = makeByName("bicg", 128);
    w->func().autoDSE();
    auto result = driver::compile(w->func());
    // After split-interchange-merge, q and s are written along an
    // unrolled/pipelined dimension with no carried dependence inside
    // the pipeline: both get asserted independent.
    EXPECT_NE(result.hlsCode.find(
                  "#pragma HLS dependence variable=q inter false"),
              std::string::npos);
    EXPECT_NE(result.hlsCode.find(
                  "#pragma HLS dependence variable=s inter false"),
              std::string::npos);
}

TEST(DependenceHints, NotEmittedWhenDependenceRemains)
{
    // Pipeline the accumulation loop directly: q carries a dependence
    // inside the pipeline, so no pragma may be asserted for it.
    dsl::Function f("acc");
    dsl::Var i("i", 0, 64), j("j", 0, 64);
    dsl::Placeholder A(f, "A", {64, 64});
    dsl::Placeholder q(f, "q", {64});
    dsl::Compute s(f, "s", {i, j}, q(i) + A(i, j), q(i));
    s.pipeline(j, 1);
    auto result = driver::compile(f);
    EXPECT_EQ(result.hlsCode.find("dependence variable=q"),
              std::string::npos);
}

TEST(DependenceHints, PresentInIrAttributes)
{
    auto w = makeByName("gemm", 64);
    w->func().autoDSE();
    auto result = driver::compile(w->func());
    bool found = false;
    result.design.func->walk([&](const ir::Operation &op) {
        if (op.hasAttr(ir::kAttrDependenceFree))
            found = true;
    });
    EXPECT_TRUE(found);
}

} // namespace
