/**
 * @file
 * Tests for the IR kernel: op construction, verification, printing, and
 * interpretation of a hand-built GEMM against a plain C++ reference.
 */

#include <gtest/gtest.h>

#include "ir/builder.h"
#include "ir/interpreter.h"
#include "ir/operation.h"
#include "ir/verifier.h"
#include "support/diagnostics.h"

namespace {

using namespace pom::ir;
using pom::poly::AffineMap;
using pom::poly::Bound;
using pom::poly::DimBounds;
using pom::poly::LinearExpr;

/** Constant bounds lo..hi for a loop at the given depth. */
DimBounds
constBounds(size_t depth, std::int64_t lo, std::int64_t hi)
{
    DimBounds b;
    b.lower.push_back(Bound{LinearExpr::constant(depth + 1, lo), 1});
    b.upper.push_back(Bound{LinearExpr::constant(depth + 1, hi), 1});
    return b;
}

/** Build C[i][j] += A[i][k] * B[k][j] over n x n f32 matrices. */
std::unique_ptr<Operation>
buildGemm(std::int64_t n)
{
    auto func = OpBuilder::makeFunc("gemm");
    Type mat = Type::memref(ScalarKind::F32, {n, n});
    Value *a = OpBuilder::addFuncArg(*func, mat, "A");
    Value *b = OpBuilder::addFuncArg(*func, mat, "B");
    Value *c = OpBuilder::addFuncArg(*func, mat, "C");

    OpBuilder builder(&func->region(0));
    Operation *fi = builder.createFor(constBounds(0, 0, n - 1), "i", {});
    Value *iv_i = fi->region(0).argument(0);
    builder.setInsertionBlock(&fi->region(0));
    Operation *fj = builder.createFor(constBounds(1, 0, n - 1), "j",
                                      {iv_i});
    Value *iv_j = fj->region(0).argument(0);
    builder.setInsertionBlock(&fj->region(0));
    Operation *fk = builder.createFor(constBounds(2, 0, n - 1), "k",
                                      {iv_i, iv_j});
    Value *iv_k = fk->region(0).argument(0);
    builder.setInsertionBlock(&fk->region(0));

    std::vector<Value *> ivs = {iv_i, iv_j, iv_k};
    AffineMap a_map({"i", "j", "k"},
                    {LinearExpr::dim(3, 0), LinearExpr::dim(3, 2)});
    AffineMap b_map({"i", "j", "k"},
                    {LinearExpr::dim(3, 2), LinearExpr::dim(3, 1)});
    AffineMap c_map({"i", "j", "k"},
                    {LinearExpr::dim(3, 0), LinearExpr::dim(3, 1)});
    Value *va = builder.createLoad(a, a_map, ivs);
    Value *vb = builder.createLoad(b, b_map, ivs);
    Value *vc = builder.createLoad(c, c_map, ivs);
    Value *prod = builder.createBinary("arith.mulf", va, vb);
    Value *sum = builder.createBinary("arith.addf", vc, prod);
    builder.createStore(sum, c, c_map, ivs);
    return func;
}

TEST(Ir, TypeBasics)
{
    Type t = Type::memref(ScalarKind::F32, {32, 16});
    EXPECT_TRUE(t.isMemRef());
    EXPECT_EQ(t.rank(), 2u);
    EXPECT_EQ(t.numElements(), 512);
    EXPECT_EQ(t.str(), "memref<32x16xf32>");
    EXPECT_EQ(Type::f32().str(), "f32");
    EXPECT_EQ(bitWidth(ScalarKind::I16), 16);
    EXPECT_EQ(scalarCName(ScalarKind::U8), "uint8_t");
    EXPECT_TRUE(isFloat(ScalarKind::F64));
    EXPECT_FALSE(isFloat(ScalarKind::I32));
}

TEST(Ir, GemmVerifies)
{
    auto func = buildGemm(8);
    auto errors = verify(*func);
    for (const auto &e : errors)
        ADD_FAILURE() << e;
    EXPECT_TRUE(errors.empty());
}

TEST(Ir, GemmInterpretsCorrectly)
{
    const std::int64_t n = 8;
    auto func = buildGemm(n);
    BufferMap buffers = makeBuffersFor(*func, 42);
    // Reference result.
    std::vector<double> ref = buffers["C"]->data();
    const auto &da = buffers["A"]->data();
    const auto &db = buffers["B"]->data();
    for (std::int64_t i = 0; i < n; ++i) {
        for (std::int64_t j = 0; j < n; ++j) {
            for (std::int64_t k = 0; k < n; ++k) {
                ref[i * n + j] += da[i * n + k] * db[k * n + j];
            }
        }
    }
    std::uint64_t work = runFunction(*func, buffers);
    EXPECT_GT(work, 0u);
    for (size_t i = 0; i < ref.size(); ++i)
        EXPECT_DOUBLE_EQ(buffers["C"]->data()[i], ref[i]) << "at " << i;
}

TEST(Ir, PrinterShowsStructure)
{
    auto func = buildGemm(4);
    std::string printed = func->str();
    EXPECT_NE(printed.find("func.func"), std::string::npos);
    EXPECT_NE(printed.find("affine.for"), std::string::npos);
    EXPECT_NE(printed.find("affine.load"), std::string::npos);
    EXPECT_NE(printed.find("arith.mulf"), std::string::npos);
    EXPECT_NE(printed.find("memref<4x4xf32>"), std::string::npos);
}

TEST(Ir, VerifierCatchesBadPipelineII)
{
    auto func = buildGemm(4);
    func->walk([](Operation &op) {
        if (op.opName() == "affine.for")
            op.setAttr(kAttrPipelineII, Attribute(std::int64_t(0)));
    });
    EXPECT_FALSE(verify(*func).empty());
}

TEST(Ir, VerifierCatchesMissingBounds)
{
    auto func = buildGemm(4);
    func->walk([](Operation &op) {
        if (op.opName() == "affine.for")
            op.removeAttr(kAttrLowerBounds);
    });
    EXPECT_FALSE(verify(*func).empty());
}

TEST(Ir, VerifierCatchesUnknownOp)
{
    auto func = OpBuilder::makeFunc("f");
    func->region(0).push(
        Operation::create("bogus.op", {}, {}, {}));
    EXPECT_FALSE(verify(*func).empty());
}

TEST(Ir, AffineIfGuardsExecution)
{
    // for i in 0..9: if (i - 5 >= 0) A[i] = 1.0
    auto func = OpBuilder::makeFunc("guarded");
    Value *a = OpBuilder::addFuncArg(
        *func, Type::memref(ScalarKind::F32, {10}), "A");
    OpBuilder builder(&func->region(0));
    Operation *loop = builder.createFor(constBounds(0, 0, 9), "i", {});
    Value *iv = loop->region(0).argument(0);
    builder.setInsertionBlock(&loop->region(0));
    Operation *guard = builder.createIf(
        {pom::poly::Constraint{LinearExpr({1}, -5), false}}, {iv});
    builder.setInsertionBlock(&guard->region(0));
    Value *one = builder.createConstant(1.0, Type::f32());
    AffineMap a_map({"i"}, {LinearExpr::dim(1, 0)});
    builder.createStore(one, a, a_map, {iv});

    EXPECT_TRUE(verify(*func).empty());
    BufferMap buffers;
    buffers["A"] = std::make_shared<Buffer>(a->type());
    buffers["A"]->fill(0.0);
    runFunction(*func, buffers);
    for (std::int64_t i = 0; i < 10; ++i)
        EXPECT_DOUBLE_EQ(buffers["A"]->data()[i], i >= 5 ? 1.0 : 0.0);
}

TEST(Ir, MinMaxBoundsInLoops)
{
    // for i = 0 .. min(9, 6): touch A[i]. Two upper bounds.
    auto func = OpBuilder::makeFunc("minmax");
    Value *a = OpBuilder::addFuncArg(
        *func, Type::memref(ScalarKind::F32, {10}), "A");
    OpBuilder builder(&func->region(0));
    DimBounds bounds;
    bounds.lower.push_back(Bound{LinearExpr::constant(1, 0), 1});
    bounds.upper.push_back(Bound{LinearExpr::constant(1, 9), 1});
    bounds.upper.push_back(Bound{LinearExpr::constant(1, 6), 1});
    Operation *loop = builder.createFor(bounds, "i", {});
    Value *iv = loop->region(0).argument(0);
    builder.setInsertionBlock(&loop->region(0));
    Value *one = builder.createConstant(1.0, Type::f32());
    builder.createStore(one, a,
                        AffineMap({"i"}, {LinearExpr::dim(1, 0)}), {iv});
    BufferMap buffers;
    buffers["A"] = std::make_shared<Buffer>(a->type());
    runFunction(*func, buffers);
    EXPECT_DOUBLE_EQ(buffers["A"]->data()[6], 1.0);
    EXPECT_DOUBLE_EQ(buffers["A"]->data()[7], 0.0);
}

TEST(Ir, BufferPatternIsDeterministic)
{
    Buffer b1(Type::memref(ScalarKind::F32, {16}));
    Buffer b2(Type::memref(ScalarKind::F32, {16}));
    b1.fillPattern(7);
    b2.fillPattern(7);
    EXPECT_EQ(b1.data(), b2.data());
    b2.fillPattern(8);
    EXPECT_NE(b1.data(), b2.data());
    for (double v : b1.data()) {
        EXPECT_GE(v, -1.0);
        EXPECT_LE(v, 1.0);
    }
}

TEST(Ir, MissingBufferIsFatal)
{
    auto func = buildGemm(4);
    BufferMap buffers; // empty
    EXPECT_THROW(runFunction(*func, buffers), pom::support::FatalError);
}

TEST(Ir, AttributeRoundTrip)
{
    auto op = Operation::create("affine.for", {}, {}, {}, 1);
    op->setAttr(kAttrPipelineII, Attribute(std::int64_t(2)));
    op->setAttr("note", Attribute("hello"));
    EXPECT_EQ(op->attr(kAttrPipelineII).asInt(), 2);
    EXPECT_EQ(op->attr("note").asString(), "hello");
    EXPECT_EQ(op->intAttrOr("missing", 7), 7);
    op->removeAttr("note");
    EXPECT_FALSE(op->hasAttr("note"));
}

} // namespace
