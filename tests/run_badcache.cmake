# Negative regression driver for the pipeline-cache spill: generate a
# real spill with pom-opt, damage it in a controlled way, and check the
# warm run degrades exactly as documented.
#
#   cmake -DPOM_OPT=<pom-opt> -DIR_FILE=<case.pom-ir> -DWORK_DIR=<dir>
#         -DCASE=corrupt|truncated|version -P run_badcache.cmake
#
# CASE=corrupt    flip one byte inside a spilled object: the warm run
#                 must skip the entry with a warning and still print
#                 byte-identical IR (exit 0).
# CASE=truncated  keep only the first half of an object: same contract.
# CASE=version    stamp the index with a stale version: the warm run
#                 must fail cleanly with a format/version mismatch.
#
# Prints "BADCACHE_OK: <case>" on success; the ctest registration keys
# its PASS_REGULAR_EXPRESSION on that marker.

foreach(var POM_OPT IR_FILE WORK_DIR CASE)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "run_badcache.cmake: ${var} not set")
    endif()
endforeach()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")
set(cache_dir "${WORK_DIR}/cache")

set(run_args "${IR_FILE}" --pass-pipeline=strip-hls,verify
    --pipeline-cache-dir "${cache_dir}")

# Cold run: populates ${cache_dir} with pipeline.index + objects.
execute_process(
    COMMAND ${POM_OPT} ${run_args}
    OUTPUT_VARIABLE cold_out
    ERROR_VARIABLE cold_err
    RESULT_VARIABLE cold_rc)
if(NOT cold_rc EQUAL 0)
    message(FATAL_ERROR
        "cold pom-opt run failed (rc=${cold_rc}):\n${cold_err}")
endif()
if(NOT EXISTS "${cache_dir}/pipeline.index")
    message(FATAL_ERROR "cold run produced no ${cache_dir}/pipeline.index")
endif()

# Damage the spill according to CASE.
if(CASE STREQUAL "version")
    file(READ "${cache_dir}/pipeline.index" index_text)
    string(FIND "${index_text}" "\n" eol)
    string(SUBSTRING "${index_text}" ${eol} -1 index_rest)
    file(WRITE "${cache_dir}/pipeline.index"
         "pom-pipeline-cache/1 0.0.0${index_rest}")
else()
    file(GLOB objects "${cache_dir}/pipeline/*")
    list(LENGTH objects count)
    if(count EQUAL 0)
        message(FATAL_ERROR "cold run spilled no objects")
    endif()
    list(GET objects 0 victim)
    file(READ "${victim}" object_text)
    string(LENGTH "${object_text}" len)
    math(EXPR mid "${len} / 2")
    string(SUBSTRING "${object_text}" 0 ${mid} head)
    if(CASE STREQUAL "corrupt")
        math(EXPR after "${mid} + 1")
        string(SUBSTRING "${object_text}" ${mid} 1 orig)
        if(orig STREQUAL "#")
            set(flip "!")
        else()
            set(flip "#")
        endif()
        string(SUBSTRING "${object_text}" ${after} -1 tail)
        file(WRITE "${victim}" "${head}${flip}${tail}")
    elseif(CASE STREQUAL "truncated")
        file(WRITE "${victim}" "${head}")
    else()
        message(FATAL_ERROR "unknown CASE '${CASE}'")
    endif()
endif()

# Warm run against the damaged spill.
execute_process(
    COMMAND ${POM_OPT} ${run_args}
    OUTPUT_VARIABLE warm_out
    ERROR_VARIABLE warm_err
    RESULT_VARIABLE warm_rc)

if(CASE STREQUAL "version")
    if(warm_rc EQUAL 0)
        message(FATAL_ERROR
            "stale index version was accepted; expected a clean failure")
    endif()
    if(NOT warm_err MATCHES "format/version mismatch")
        message(FATAL_ERROR
            "expected a format/version mismatch diagnostic, got:\n${warm_err}")
    endif()
else()
    if(NOT warm_rc EQUAL 0)
        message(FATAL_ERROR
            "warm run must survive a ${CASE} object (rc=${warm_rc}):\n${warm_err}")
    endif()
    if(NOT warm_err MATCHES "skipped")
        message(FATAL_ERROR
            "expected a skip warning for the ${CASE} object, got:\n${warm_err}")
    endif()
    if(NOT warm_out STREQUAL cold_out)
        message(FATAL_ERROR
            "warm IR differs from cold IR after a ${CASE} object")
    endif()
endif()

message(STATUS "BADCACHE_OK: ${CASE}")
