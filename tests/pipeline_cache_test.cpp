/**
 * @file
 * Tests for the pipeline result cache (src/pass/pipeline_cache.h):
 * entry codec round-trips and corruption detection, FIFO accounting,
 * disk spill round-trips with skip-and-warn recovery, and the end-to-
 * end determinism contract -- printed IR, AST, emitted HLS-C, and DSE
 * journals must be byte-identical with the cache on, off, warm, and
 * at any worker count.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "dse/dse.h"
#include "dse/strategy.h"
#include "emit/hls_emitter.h"
#include "lower/lower.h"
#include "obs/journal.h"
#include "pass/pass_manager.h"
#include "pass/pipeline_cache.h"
#include "support/thread_pool.h"
#include "workloads/workloads.h"

namespace fs = std::filesystem;

using namespace pom;

namespace {

/** Fresh scratch directory under the gtest temp root. */
std::string
scratchDir(const std::string &name)
{
    std::string dir = ::testing::TempDir() + "pom_pipeline_" + name;
    fs::remove_all(dir);
    return dir;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

void
writeFile(const std::string &path, const std::string &text)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << text;
}

pass::PipelineCacheEntry
sampleEntry()
{
    pass::PipelineCacheEntry entry;
    entry.payload = "line one\nline two with trailing space \n\nend";
    entry.statistics = {{"stmts", 3}, {"ops removed", -7}, {"z", 0}};
    entry.seconds = 0.123456789012345;
    return entry;
}

/**
 * RAII guard: enables the process-wide pipeline cache on a cleared
 * global store, and restores the disabled default afterwards so the
 * other suites in this binary see pristine state.
 */
struct CacheOn
{
    CacheOn()
    {
        pass::PipelineCache::global().clear();
        pass::setPipelineCacheEnabled(true);
    }

    ~CacheOn()
    {
        pass::setPipelineCacheEnabled(false);
        pass::PipelineCache::global().clear();
    }
};

/** Restores the worker-count override on scope exit. */
struct JobsGuard
{
    explicit JobsGuard(int n) { support::setJobs(n); }
    ~JobsGuard() { support::setJobs(0); }
};

dse::DseResult
runDse(const std::string &name, std::int64_t size, int jobs,
       dse::StrategyKind strategy = dse::StrategyKind::Greedy)
{
    auto w = workloads::makeByName(name, size);
    dse::DseOptions opt;
    opt.jobs = jobs;
    opt.strategy = strategy;
    return dse::autoDSE(w->func(), opt);
}

} // namespace

// ---------------------------------------------------------------------------
// Entry codec

TEST(PipelineEntryCodec, RoundTripIsBitExact)
{
    const std::string key = "pom-pipeline-cache/1 test\npass verify\nkey "
                            "with\nnewlines and spaces  ";
    pass::PipelineCacheEntry entry = sampleEntry();

    std::string text = pass::encodePipelineCacheEntry(key, entry);

    std::string key2;
    pass::PipelineCacheEntry decoded;
    std::string error;
    ASSERT_TRUE(pass::decodePipelineCacheEntry(text, key2, decoded, error))
        << error;
    EXPECT_EQ(key2, key);
    EXPECT_EQ(decoded.payload, entry.payload);
    EXPECT_EQ(decoded.statistics, entry.statistics);
    // Hexfloat serialization must preserve every bit of the timing.
    EXPECT_EQ(decoded.seconds, entry.seconds);
}

TEST(PipelineEntryCodec, DetectsFlippedByte)
{
    std::string text =
        pass::encodePipelineCacheEntry("some-key", sampleEntry());
    // Flip one payload byte; the checksum line must catch it.
    std::size_t at = text.size() / 2;
    text[at] = (text[at] == '#') ? '!' : '#';

    std::string key;
    pass::PipelineCacheEntry decoded;
    std::string error;
    EXPECT_FALSE(
        pass::decodePipelineCacheEntry(text, key, decoded, error));
    EXPECT_NE(error.find("mismatch"), std::string::npos) << error;
}

TEST(PipelineEntryCodec, DetectsTruncation)
{
    std::string text =
        pass::encodePipelineCacheEntry("some-key", sampleEntry());
    std::string key;
    pass::PipelineCacheEntry decoded;
    std::string error;
    EXPECT_FALSE(pass::decodePipelineCacheEntry(
        text.substr(0, text.size() / 2), key, decoded, error));
    EXPECT_FALSE(error.empty());
}

TEST(PipelineEntryCodec, DetectsVersionMismatch)
{
    std::string text =
        pass::encodePipelineCacheEntry("some-key", sampleEntry());
    // Swap the version header and reseal so the checksum still passes:
    // the decoder must reject on the header itself, not the checksum.
    std::string body = text.substr(0, text.rfind("sum "));
    std::string stale = support::sealCacheEntry(
        "pom-pipeline-cache/1 0.0.0" + body.substr(body.find('\n')));
    std::string key;
    pass::PipelineCacheEntry decoded;
    std::string error;
    EXPECT_FALSE(
        pass::decodePipelineCacheEntry(stale, key, decoded, error));
    EXPECT_NE(error.find("version mismatch"), std::string::npos)
        << error;
}

// ---------------------------------------------------------------------------
// In-memory store

TEST(PipelineCacheStore, CountsHitsAndMisses)
{
    pass::PipelineCache cache;
    EXPECT_FALSE(cache.lookup("a").has_value());
    EXPECT_EQ(cache.misses(), 1u);

    cache.store("a", sampleEntry());
    auto hit = cache.lookup("a");
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->payload, sampleEntry().payload);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);

    // First writer wins: a second store under the same key is a no-op.
    pass::PipelineCacheEntry other;
    other.payload = "different";
    cache.store("a", other);
    EXPECT_EQ(cache.lookup("a")->payload, sampleEntry().payload);
    EXPECT_EQ(cache.size(), 1u);
}

TEST(PipelineCacheStore, EvictsFifoPastCapacity)
{
    pass::PipelineCache cache;
    cache.setCapacity(2);
    pass::PipelineCacheEntry entry = sampleEntry();
    cache.store("first", entry);
    cache.store("second", entry);
    // A lookup does not refresh FIFO order (this is not an LRU).
    EXPECT_TRUE(cache.lookup("first").has_value());
    cache.store("third", entry);

    EXPECT_EQ(cache.size(), 2u);
    EXPECT_FALSE(cache.lookup("first").has_value());
    EXPECT_TRUE(cache.lookup("second").has_value());
    EXPECT_TRUE(cache.lookup("third").has_value());
}

// ---------------------------------------------------------------------------
// Disk spill

TEST(PipelineCacheSpill, SaveLoadRoundTrip)
{
    std::string dir = scratchDir("roundtrip");
    pass::PipelineCache cache;
    pass::PipelineCacheEntry entry = sampleEntry();
    cache.store("key-one", entry);
    entry.payload = "second payload";
    cache.store("key-two", entry);

    support::CacheSpillStats stats;
    std::string error;
    ASSERT_TRUE(cache.saveDir(dir, stats, error)) << error;
    EXPECT_EQ(stats.written, 2u);

    pass::PipelineCache warm;
    support::CacheSpillStats loaded;
    ASSERT_TRUE(warm.loadDir(dir, loaded, error)) << error;
    EXPECT_EQ(loaded.loaded, 2u);
    EXPECT_EQ(loaded.skipped, 0u);
    ASSERT_TRUE(warm.lookup("key-two").has_value());
    EXPECT_EQ(warm.lookup("key-two")->payload, "second payload");
    EXPECT_EQ(warm.lookup("key-one")->payload, sampleEntry().payload);
    // loadDir must not inherit the hit/miss statistics.
    EXPECT_EQ(warm.misses(), 0u);

    fs::remove_all(dir);
}

TEST(PipelineCacheSpill, MissingDirectoryIsAColdStart)
{
    pass::PipelineCache cache;
    support::CacheSpillStats stats;
    std::string error;
    EXPECT_TRUE(cache.loadDir(scratchDir("never_created"), stats, error))
        << error;
    EXPECT_EQ(stats.loaded, 0u);
    EXPECT_EQ(cache.size(), 0u);
}

TEST(PipelineCacheSpill, SkipsCorruptObjectAndLoadsTheRest)
{
    std::string dir = scratchDir("corrupt_object");
    pass::PipelineCache cache;
    pass::PipelineCacheEntry entry = sampleEntry();
    cache.store("keep-me", entry);
    entry.payload = "will be corrupted";
    cache.store("lose-me", entry);

    support::CacheSpillStats stats;
    std::string error;
    ASSERT_TRUE(cache.saveDir(dir, stats, error)) << error;

    // Corrupt the object holding "lose-me" (flip one byte mid-file).
    bool corrupted = false;
    for (const auto &object :
         fs::directory_iterator(dir + "/pipeline")) {
        std::string text = readFile(object.path().string());
        if (text.find("will be corrupted") == std::string::npos)
            continue;
        std::size_t at = text.size() / 2;
        text[at] = (text[at] == '#') ? '!' : '#';
        writeFile(object.path().string(), text);
        corrupted = true;
    }
    ASSERT_TRUE(corrupted);

    pass::PipelineCache warm;
    support::CacheSpillStats loaded;
    ASSERT_TRUE(warm.loadDir(dir, loaded, error)) << error;
    EXPECT_EQ(loaded.loaded, 1u);
    EXPECT_EQ(loaded.skipped, 1u);
    EXPECT_TRUE(warm.lookup("keep-me").has_value());
    EXPECT_FALSE(warm.lookup("lose-me").has_value());

    fs::remove_all(dir);
}

TEST(PipelineCacheSpill, RejectsIndexVersionMismatch)
{
    std::string dir = scratchDir("stale_index");
    pass::PipelineCache cache;
    cache.store("a-key", sampleEntry());
    support::CacheSpillStats stats;
    std::string error;
    ASSERT_TRUE(cache.saveDir(dir, stats, error)) << error;

    std::string index_path = dir + "/pipeline.index";
    std::string index = readFile(index_path);
    writeFile(index_path, "pom-pipeline-cache/1 0.0.0" +
                              index.substr(index.find('\n')));

    pass::PipelineCache warm;
    support::CacheSpillStats loaded;
    EXPECT_FALSE(warm.loadDir(dir, loaded, error));
    EXPECT_NE(error.find("version mismatch"), std::string::npos)
        << error;

    fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// End-to-end determinism

TEST(PipelineCacheLowering, CachedRunsAreByteIdentical)
{
    // Reference artifacts with the cache off (the library default).
    auto w = workloads::makeByName("gemm", 64);
    lower::LoweredFunction off = lower::lower(w->func());
    const std::string ir_off = off.func->str();
    const std::string ast_off = off.astRoot->str();
    const std::string hls_off = emit::emitHlsC(*off.func);

    CacheOn guard;
    auto &cache = pass::PipelineCache::global();

    auto w_cold = workloads::makeByName("gemm", 64);
    lower::LoweredFunction cold = lower::lower(w_cold->func());
    EXPECT_GT(cache.misses(), 0u);
    EXPECT_EQ(cold.func->str(), ir_off);
    EXPECT_EQ(cold.astRoot->str(), ast_off);
    EXPECT_EQ(emit::emitHlsC(*cold.func), hls_off);

    // Second run replays the cacheable prefix; the property under test
    // is prefix-skip + re-run == full run, byte for byte.
    std::uint64_t hits0 = cache.hits();
    auto w_warm = workloads::makeByName("gemm", 64);
    lower::LoweredFunction warm = lower::lower(w_warm->func());
    EXPECT_GT(cache.hits(), hits0);
    EXPECT_EQ(warm.func->str(), ir_off);
    EXPECT_EQ(warm.astRoot->str(), ast_off);
    EXPECT_EQ(emit::emitHlsC(*warm.func), hls_off);
}

TEST(PipelineCacheLowering, ParallelLoweringMatchesSequential)
{
    std::string narrow, mid, wide;
    {
        JobsGuard jobs(1);
        auto w = workloads::makeByName("2mm", 64);
        narrow = lower::lower(w->func()).func->str();
    }
    {
        JobsGuard jobs(4);
        auto w = workloads::makeByName("2mm", 64);
        mid = lower::lower(w->func()).func->str();
    }
    {
        JobsGuard jobs(13);
        auto w = workloads::makeByName("2mm", 64);
        wide = lower::lower(w->func()).func->str();
    }
    EXPECT_EQ(narrow, mid);
    EXPECT_EQ(narrow, wide);
}

TEST(PipelineCacheDse, JournalIdenticalAcrossCacheAndJobs)
{
    const dse::StrategyKind strategies[] = {dse::StrategyKind::Greedy,
                                            dse::StrategyKind::Beam,
                                            dse::StrategyKind::Anneal};
    for (dse::StrategyKind strategy : strategies) {
        std::string reference =
            obs::journalJson(runDse("gemm", 64, 1, strategy).journal);
        for (int jobs : {1, 4, 13}) {
            CacheOn guard;
            // Cold pass populates the cache, warm pass replays it;
            // neither may perturb the search trajectory.
            std::string cold = obs::journalJson(
                runDse("gemm", 64, jobs, strategy).journal);
            std::string warm = obs::journalJson(
                runDse("gemm", 64, jobs, strategy).journal);
            EXPECT_EQ(cold, reference)
                << "cold, strategy " << dse::strategyName(strategy)
                << ", jobs " << jobs;
            EXPECT_EQ(warm, reference)
                << "warm, strategy " << dse::strategyName(strategy)
                << ", jobs " << jobs;
        }
    }
}

TEST(PipelineCacheDse, FinalDesignIsByteIdenticalWarm)
{
    dse::DseResult off = runDse("bicg", 64, 2);
    ASSERT_NE(off.design.func, nullptr);
    const std::string ir_off = off.design.func->str();
    const std::string hls_off = emit::emitHlsC(*off.design.func);

    CacheOn guard;
    dse::DseResult cold = runDse("bicg", 64, 2);
    dse::DseResult warm = runDse("bicg", 64, 2);
    ASSERT_NE(cold.design.func, nullptr);
    ASSERT_NE(warm.design.func, nullptr);
    EXPECT_EQ(cold.design.func->str(), ir_off);
    EXPECT_EQ(warm.design.func->str(), ir_off);
    EXPECT_EQ(emit::emitHlsC(*warm.design.func), hls_off);
    EXPECT_GT(pass::PipelineCache::global().hits(), 0u);
}

// ---------------------------------------------------------------------------
// Timing report

TEST(PipelineCacheTiming, ReportSeparatesCachedRuns)
{
    pass::resetGlobalTiming();
    pass::setGlobalTimingEnabled(true);
    {
        CacheOn guard;
        auto w = workloads::makeByName("gemm", 64);
        (void)lower::lower(w->func());
        auto w2 = workloads::makeByName("gemm", 64);
        (void)lower::lower(w2->func());
    }
    std::string report = pass::globalTimingReport();
    pass::setGlobalTimingEnabled(false);
    pass::resetGlobalTiming();

    EXPECT_NE(report.find("(cached)"), std::string::npos) << report;
}
