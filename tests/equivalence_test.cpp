/**
 * @file
 * Tests for the differential equivalence oracle, the dependence-legality
 * check and the schedule fuzzer (src/check/): a fixed-seed fuzz sweep
 * over every built-in workload, oracle detection of an intentionally
 * illegal transform, and DSE point-by-point verification.
 */

#include <gtest/gtest.h>

#include "check/fuzzer.h"
#include "check/legality.h"
#include "check/oracle.h"
#include "dse/dse.h"
#include "lower/lower.h"
#include "support/diagnostics.h"
#include "transform/poly_stmt.h"
#include "workloads/workloads.h"

namespace {

using namespace pom;
using pom::support::FatalError;

// ----- Oracle ------------------------------------------------------------

TEST(Oracle, UnscheduledFunctionIsEquivalentToItself)
{
    auto w = workloads::makeByName("gemm", 8);
    auto res = check::checkFunction(w->func());
    EXPECT_TRUE(res.equivalent);
    EXPECT_TRUE(res.message.empty());
    EXPECT_GT(res.refWork, 0u);
    EXPECT_EQ(res.refWork, res.testWork);
}

TEST(Oracle, LegalScheduleIsEquivalent)
{
    auto w = workloads::makeByName("gemm", 8);
    dsl::Compute *s = w->func().findCompute("s");
    ASSERT_NE(s, nullptr);
    dsl::Var i("i"), j("j"), i0("i0"), j0("j0"), i1("i1"), j1("j1");
    s->tile(i, j, 4, 4, i0, j0, i1, j1);
    s->pipeline(j0, 1);
    s->unroll(j1, 4);
    auto res = check::checkFunction(w->func());
    EXPECT_TRUE(res.equivalent) << res.message;
}

TEST(Oracle, CatchesIllegalTimeLoopInterchange)
{
    // Seidel is an in-place stencil: hoisting the spatial loop above the
    // time loop reverses the (t, i+1) -> (t+1, i) value flow. The oracle
    // must see diverging buffers and name the offending primitive.
    auto w = workloads::makeByName("seidel", 8);
    dsl::Compute *s = w->func().findCompute("s");
    ASSERT_NE(s, nullptr);
    s->interchange(dsl::Var("t"), dsl::Var("i"));
    auto res = check::checkFunction(w->func());
    ASSERT_FALSE(res.equivalent);
    ASSERT_TRUE(res.divergence.has_value());
    EXPECT_EQ(res.divergence->array, "A");
    EXPECT_NE(res.message.find("interchange(t, i)"), std::string::npos)
        << res.message;
}

// ----- Dependence legality ------------------------------------------------

TEST(Legality, GemmReductionInterchangeIsLegal)
{
    auto w = workloads::makeByName("gemm", 8);
    auto stmts = lower::extractStmts(w->func());
    ASSERT_EQ(stmts.size(), 1u);
    transform::interchange(stmts[0], "j", "k");
    EXPECT_TRUE(check::schedulePreservesDependences(stmts[0]));
}

TEST(Legality, ConvKernelInterchangeIsFlagged)
{
    // Strictness: swapping the reduction loops reorders a floating-point
    // accumulation, which the checker treats as a violated dependence.
    auto w = workloads::makeByName("conv2d", 8);
    auto stmts = lower::extractStmts(w->func());
    ASSERT_EQ(stmts.size(), 1u);
    transform::interchange(stmts[0], "ky", "kx");
    auto violation = check::findDependenceViolation(stmts[0]);
    ASSERT_TRUE(violation.has_value());
    EXPECT_NE(violation->find("out"), std::string::npos) << *violation;
}

TEST(Legality, SeidelTimeInterchangeIsFlagged)
{
    auto w = workloads::makeByName("seidel", 8);
    auto stmts = lower::extractStmts(w->func());
    ASSERT_EQ(stmts.size(), 1u);
    transform::interchange(stmts[0], "t", "i");
    EXPECT_FALSE(check::schedulePreservesDependences(stmts[0]));
}

TEST(Legality, SplitPreservesDependences)
{
    auto w = workloads::makeByName("seidel", 8);
    auto stmts = lower::extractStmts(w->func());
    transform::split(stmts[0], "i", 3, "i0", "i1");
    EXPECT_TRUE(check::schedulePreservesDependences(stmts[0]));
}

// ----- Fuzzer -------------------------------------------------------------

class FuzzSweep : public ::testing::TestWithParam<const char *>
{
};

TEST_P(FuzzSweep, LegalSchedulesPassTheOracle)
{
    check::FuzzOptions options;
    options.seed = 7;
    options.cases = 10;
    auto res = check::fuzzWorkload(GetParam(), options);
    EXPECT_EQ(res.casesRun, 10);
    EXPECT_GT(res.opsGenerated, 0);
    EXPECT_TRUE(res.ok()) << res.summary();
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, FuzzSweep,
    ::testing::Values("gemm", "bicg", "gesummv", "2mm", "3mm", "atax",
                      "mvt", "syrk", "conv2d", "jacobi1d", "jacobi2d",
                      "heat1d", "seidel", "edgedetect", "gaussian",
                      "blur", "vgg16", "resnet18"));

TEST(Fuzzer, UngatedTransformsAreCaughtAndShrunk)
{
    // With the legality gate off the fuzzer emits semantics-breaking
    // schedules on the in-place stencil; the oracle must catch at least
    // one, and the shrunk reproducer must itself still fail.
    check::FuzzOptions options;
    options.seed = 5;
    options.cases = 20;
    options.checkLegality = false;
    auto res = check::fuzzWorkload("seidel", options);
    ASSERT_FALSE(res.failures.empty());

    const check::FuzzFailure &f = res.failures.front();
    ASSERT_FALSE(f.ops.empty());
    EXPECT_FALSE(f.message.empty());
    EXPECT_FALSE(f.dsl.empty());
    EXPECT_NE(f.dsl.find("codegen()"), std::string::npos);

    // Replay the minimal reproducer from scratch: it must still diverge.
    auto w = workloads::makeByName(f.workload, f.size);
    ASSERT_TRUE(check::applyScheduleOps(*w, f.ops));
    bool failed = false;
    try {
        failed = !check::checkFunction(w->func(), options.oracle).equivalent;
    } catch (const FatalError &) {
        failed = true; // shrunk to a lowering crash: also a failure
    }
    EXPECT_TRUE(failed) << res.summary();

    // Minimality: removing any single primitive makes the case pass (or
    // invalidates the sequence), otherwise the shrinker missed a step.
    for (size_t skip = 0; skip < f.ops.size(); ++skip) {
        std::vector<check::ScheduleOp> trimmed = f.ops;
        trimmed.erase(trimmed.begin() + static_cast<std::ptrdiff_t>(skip));
        auto w2 = workloads::makeByName(f.workload, f.size);
        if (!check::applyScheduleOps(*w2, trimmed))
            continue;
        try {
            EXPECT_TRUE(
                check::checkFunction(w2->func(), options.oracle).equivalent)
                << "sub-sequence without op " << skip << " still fails";
        } catch (const FatalError &) {
            ADD_FAILURE() << "sub-sequence without op " << skip
                          << " still crashes";
        }
    }
}

TEST(Fuzzer, IsDeterministicPerSeed)
{
    check::FuzzOptions options;
    options.seed = 11;
    options.cases = 5;
    auto a = check::fuzzWorkload("jacobi2d", options);
    auto b = check::fuzzWorkload("jacobi2d", options);
    EXPECT_EQ(a.opsGenerated, b.opsGenerated);
    EXPECT_EQ(a.failures.size(), b.failures.size());
}

TEST(Fuzzer, RejectsInvalidReplaySequences)
{
    auto w = workloads::makeByName("gemm", 8);
    check::ScheduleOp op;
    op.kind = check::ScheduleOp::Kind::Interchange;
    op.target = "s";
    op.vars = {"i", "nope"};
    EXPECT_FALSE(check::applyScheduleOps(*w, {op}));
}

// ----- DSE integration ----------------------------------------------------

TEST(DseVerify, EveryExploredPointPassesTheOracle)
{
    auto w = workloads::makeByName("gemm", 8);
    w->func().autoDSE();
    dse::DseOptions options;
    options.verifyEachPoint = true;
    auto res = dse::autoDSE(w->func(), options);
    EXPECT_GT(res.pointsExplored, 0);
    EXPECT_EQ(res.pointsVerified, res.pointsExplored);
}

TEST(DseVerify, OffByDefault)
{
    auto w = workloads::makeByName("gemm", 8);
    w->func().autoDSE();
    auto res = dse::autoDSE(w->func());
    EXPECT_GT(res.pointsExplored, 0);
    EXPECT_EQ(res.pointsVerified, 0);
}

} // namespace
