/**
 * @file
 * Focused interpreter tests beyond the ir_test basics: affine.if guards
 * (inequality and equality), non-rectangular loop bounds (triangular,
 * divisor-carrying, and DSL-skewed nests), reduction statements, and
 * Buffer::atOr out-of-bounds semantics.
 */

#include <gtest/gtest.h>

#include "dsl/dsl.h"
#include "ir/builder.h"
#include "ir/interpreter.h"
#include "ir/verifier.h"
#include "lower/lower.h"
#include "workloads/workloads.h"

namespace {

using namespace pom::ir;
using pom::poly::AffineMap;
using pom::poly::Bound;
using pom::poly::Constraint;
using pom::poly::DimBounds;
using pom::poly::LinearExpr;

DimBounds
constBounds(size_t depth, std::int64_t lo, std::int64_t hi)
{
    DimBounds b;
    b.lower.push_back(Bound{LinearExpr::constant(depth + 1, lo), 1});
    b.upper.push_back(Bound{LinearExpr::constant(depth + 1, hi), 1});
    return b;
}

// ----- affine.if ----------------------------------------------------------

TEST(InterpreterIf, ConjunctionOfInequalities)
{
    // for i in 0..9: if (i >= 3 && 7 - i >= 0) A[i] = 1
    auto func = OpBuilder::makeFunc("band");
    Value *a = OpBuilder::addFuncArg(
        *func, Type::memref(ScalarKind::F32, {10}), "A");
    OpBuilder builder(&func->region(0));
    Operation *loop = builder.createFor(constBounds(0, 0, 9), "i", {});
    Value *iv = loop->region(0).argument(0);
    builder.setInsertionBlock(&loop->region(0));
    Operation *guard = builder.createIf(
        {Constraint{LinearExpr({1}, -3), false},
         Constraint{LinearExpr({-1}, 7), false}},
        {iv});
    builder.setInsertionBlock(&guard->region(0));
    Value *one = builder.createConstant(1.0, Type::f32());
    builder.createStore(one, a,
                        AffineMap({"i"}, {LinearExpr::dim(1, 0)}), {iv});

    EXPECT_TRUE(verify(*func).empty());
    BufferMap buffers = makeBuffersFor(*func);
    buffers["A"]->fill(0.0);
    runFunction(*func, buffers);
    for (std::int64_t i = 0; i < 10; ++i) {
        EXPECT_DOUBLE_EQ(buffers["A"]->data()[i],
                         (i >= 3 && i <= 7) ? 1.0 : 0.0)
            << "i=" << i;
    }
}

TEST(InterpreterIf, EqualityConstraint)
{
    // for i in 0..9: if (i - 4 == 0) A[i] = 1
    auto func = OpBuilder::makeFunc("spike");
    Value *a = OpBuilder::addFuncArg(
        *func, Type::memref(ScalarKind::F32, {10}), "A");
    OpBuilder builder(&func->region(0));
    Operation *loop = builder.createFor(constBounds(0, 0, 9), "i", {});
    Value *iv = loop->region(0).argument(0);
    builder.setInsertionBlock(&loop->region(0));
    Operation *guard =
        builder.createIf({Constraint{LinearExpr({1}, -4), true}}, {iv});
    builder.setInsertionBlock(&guard->region(0));
    Value *one = builder.createConstant(1.0, Type::f32());
    builder.createStore(one, a,
                        AffineMap({"i"}, {LinearExpr::dim(1, 0)}), {iv});

    BufferMap buffers = makeBuffersFor(*func);
    buffers["A"]->fill(0.0);
    runFunction(*func, buffers);
    for (std::int64_t i = 0; i < 10; ++i)
        EXPECT_DOUBLE_EQ(buffers["A"]->data()[i], i == 4 ? 1.0 : 0.0);
}

// ----- Non-rectangular bounds --------------------------------------------

TEST(InterpreterBounds, TriangularNest)
{
    // for i in 0..7: for j in i..7: A[i][j] = 1 (upper triangle only).
    const std::int64_t n = 8;
    auto func = OpBuilder::makeFunc("tri");
    Value *a = OpBuilder::addFuncArg(
        *func, Type::memref(ScalarKind::F32, {n, n}), "A");
    OpBuilder builder(&func->region(0));
    Operation *fi = builder.createFor(constBounds(0, 0, n - 1), "i", {});
    Value *iv_i = fi->region(0).argument(0);
    builder.setInsertionBlock(&fi->region(0));
    DimBounds jb;
    jb.lower.push_back(Bound{LinearExpr::dim(2, 0), 1}); // j >= i
    jb.upper.push_back(Bound{LinearExpr::constant(2, n - 1), 1});
    Operation *fj = builder.createFor(jb, "j", {iv_i});
    Value *iv_j = fj->region(0).argument(0);
    builder.setInsertionBlock(&fj->region(0));
    Value *one = builder.createConstant(1.0, Type::f32());
    builder.createStore(
        one, a,
        AffineMap({"i", "j"}, {LinearExpr::dim(2, 0), LinearExpr::dim(2, 1)}),
        {iv_i, iv_j});

    BufferMap buffers = makeBuffersFor(*func);
    buffers["A"]->fill(0.0);
    runFunction(*func, buffers);
    for (std::int64_t i = 0; i < n; ++i)
        for (std::int64_t j = 0; j < n; ++j)
            EXPECT_DOUBLE_EQ(buffers["A"]->data()[i * n + j],
                             j >= i ? 1.0 : 0.0)
                << i << "," << j;
}

TEST(InterpreterBounds, DivisorBounds)
{
    // for i in 0..9: for j in 0..floor(i/2): A[j] += 1.
    // Column j ends up with count |{i : floor(i/2) >= j}| = 10 - 2j.
    auto func = OpBuilder::makeFunc("halves");
    Value *a = OpBuilder::addFuncArg(
        *func, Type::memref(ScalarKind::F32, {10}), "A");
    OpBuilder builder(&func->region(0));
    Operation *fi = builder.createFor(constBounds(0, 0, 9), "i", {});
    Value *iv_i = fi->region(0).argument(0);
    builder.setInsertionBlock(&fi->region(0));
    DimBounds jb;
    jb.lower.push_back(Bound{LinearExpr::constant(2, 0), 1});
    jb.upper.push_back(Bound{LinearExpr::dim(2, 0), 2}); // j <= i/2
    Operation *fj = builder.createFor(jb, "j", {iv_i});
    Value *iv_j = fj->region(0).argument(0);
    builder.setInsertionBlock(&fj->region(0));
    AffineMap a_map({"i", "j"}, {LinearExpr::dim(2, 1)});
    Value *cur = builder.createLoad(a, a_map, {iv_i, iv_j});
    Value *one = builder.createConstant(1.0, Type::f32());
    Value *inc = builder.createBinary("arith.addf", cur, one);
    builder.createStore(inc, a, a_map, {iv_i, iv_j});

    BufferMap buffers = makeBuffersFor(*func);
    buffers["A"]->fill(0.0);
    runFunction(*func, buffers);
    for (std::int64_t j = 0; j < 10; ++j) {
        double expect = j <= 4 ? 10.0 - 2.0 * j : 0.0;
        EXPECT_DOUBLE_EQ(buffers["A"]->data()[j], expect) << "j=" << j;
    }
}

TEST(InterpreterBounds, SkewedStencilMatchesUnskewed)
{
    // Skewing jacobi2d's spatial loops produces a parallelogram domain
    // (jp ranges over [ip+1, ip+6] at each ip); the interpreter must
    // visit exactly the original statement instances, so the result
    // matches the rectangular original bit for bit.
    auto plain = pom::workloads::makeByName("jacobi2d", 8);
    auto skewed = pom::workloads::makeByName("jacobi2d", 8);
    pom::dsl::Compute *s1 = skewed->func().findCompute("s1");
    ASSERT_NE(s1, nullptr);
    s1->skew(pom::dsl::Var("i"), pom::dsl::Var("j"), 1,
             pom::dsl::Var("ip"), pom::dsl::Var("jp"));

    auto plain_low = pom::lower::lower(plain->func());
    auto skew_low = pom::lower::lower(skewed->func());
    BufferMap pb = makeBuffersFor(*plain_low.func, 3);
    BufferMap sb = makeBuffersFor(*skew_low.func, 3);
    runFunction(*plain_low.func, pb);
    runFunction(*skew_low.func, sb);
    for (const auto &[name, buf] : pb) {
        ASSERT_TRUE(sb.count(name));
        EXPECT_EQ(buf->data(), sb[name]->data()) << "array " << name;
    }
}

// ----- Reduction statements ----------------------------------------------

TEST(InterpreterReduction, GemvAccumulates)
{
    // y(i) += A(i, j) * x(j), lowered from the DSL.
    const std::int64_t n = 6;
    pom::workloads::Workload w("gemv");
    pom::dsl::Var i("i", 0, n), j("j", 0, n);
    auto &A = w.array("A", {n, n});
    auto &x = w.array("x", {n});
    auto &y = w.array("y", {n});
    w.compute("s", {i, j}, y(i) + A(i, j) * x(j), y(i));

    auto low = pom::lower::lower(w.func());
    BufferMap buffers = makeBuffersFor(*low.func, 9);
    std::vector<double> ref = buffers["y"]->data();
    for (std::int64_t ii = 0; ii < n; ++ii)
        for (std::int64_t jj = 0; jj < n; ++jj)
            ref[ii] += buffers["A"]->data()[ii * n + jj] *
                       buffers["x"]->data()[jj];
    runFunction(*low.func, buffers);
    for (std::int64_t ii = 0; ii < n; ++ii)
        EXPECT_DOUBLE_EQ(buffers["y"]->data()[ii], ref[ii]) << ii;
}

// ----- Buffer::atOr -------------------------------------------------------

TEST(InterpreterBuffer, AtOrFallsBackOutOfBounds)
{
    Buffer b(Type::memref(ScalarKind::F32, {4, 4}));
    b.at({2, 3}) = 42.0;
    EXPECT_DOUBLE_EQ(b.atOr({2, 3}), 42.0);
    EXPECT_DOUBLE_EQ(b.atOr({2, 4}), 0.0);       // column past extent
    EXPECT_DOUBLE_EQ(b.atOr({-1, 0}), 0.0);      // negative index
    EXPECT_DOUBLE_EQ(b.atOr({4, 0}, -7.5), -7.5); // explicit fallback
    EXPECT_DOUBLE_EQ(b.atOr({2}, 1.25), 1.25);   // rank mismatch
}

} // namespace
