/**
 * @file
 * Tests for polyhedral AST generation: loop nesting, statement ordering
 * via betas, fusion, partial-tile bounds, and schedule validation.
 */

#include <gtest/gtest.h>

#include "ast/build.h"
#include "support/diagnostics.h"

namespace {

using namespace pom::ast;
using pom::poly::IntegerSet;
using pom::poly::LinearExpr;
using pom::support::FatalError;

ScheduledStmt
boxStmt(const std::string &name, std::vector<std::string> dims,
        std::vector<std::int64_t> lows, std::vector<std::int64_t> highs)
{
    return ScheduledStmt::identity(
        name, IntegerSet::box(std::move(dims), lows, highs));
}

TEST(AstBuild, SingleLoopNest)
{
    auto s = boxStmt("S0", {"i", "j", "k"}, {0, 0, 0}, {31, 15, 7});
    auto ast = buildAst({s});
    ASSERT_EQ(ast->kind(), AstNode::Kind::For);
    EXPECT_EQ(ast->iterName, "i");
    ASSERT_EQ(ast->children.size(), 1u);
    const AstNode &j = *ast->children[0];
    EXPECT_EQ(j.kind(), AstNode::Kind::For);
    EXPECT_EQ(j.iterName, "j");
    const AstNode &k = *j.children[0];
    EXPECT_EQ(k.iterName, "k");
    ASSERT_EQ(k.children.size(), 1u);
    EXPECT_EQ(k.children[0]->kind(), AstNode::Kind::User);
    EXPECT_EQ(k.children[0]->stmtName, "S0");
}

TEST(AstBuild, SequentialStatements)
{
    auto s1 = boxStmt("S1", {"i"}, {0}, {9});
    auto s2 = boxStmt("S2", {"i"}, {0}, {19});
    s2.betas[0] = 1; // S2 after S1 at the outermost level
    auto ast = buildAst({s1, s2});
    ASSERT_EQ(ast->kind(), AstNode::Kind::Block);
    ASSERT_EQ(ast->children.size(), 2u);
    EXPECT_EQ(ast->children[0]->children[0]->stmtName, "S1");
    EXPECT_EQ(ast->children[1]->children[0]->stmtName, "S2");
}

TEST(AstBuild, ReversedOrderByBeta)
{
    auto s1 = boxStmt("S1", {"i"}, {0}, {9});
    auto s2 = boxStmt("S2", {"i"}, {0}, {19});
    s1.betas[0] = 5;
    s2.betas[0] = 2;
    auto ast = buildAst({s1, s2});
    ASSERT_EQ(ast->children.size(), 2u);
    EXPECT_EQ(ast->children[0]->children[0]->stmtName, "S2");
    EXPECT_EQ(ast->children[1]->children[0]->stmtName, "S1");
}

TEST(AstBuild, FusedStatementsShareLoop)
{
    auto s1 = boxStmt("S1", {"i"}, {0}, {9});
    auto s2 = boxStmt("S2", {"i"}, {0}, {9});
    s2.betas[1] = 1; // same loop, S2 after S1 in the body
    auto ast = buildAst({s1, s2});
    ASSERT_EQ(ast->kind(), AstNode::Kind::For);
    ASSERT_EQ(ast->children.size(), 2u);
    EXPECT_EQ(ast->children[0]->stmtName, "S1");
    EXPECT_EQ(ast->children[1]->stmtName, "S2");
}

TEST(AstBuild, FusionWithDifferentBoundsIsRejected)
{
    auto s1 = boxStmt("S1", {"i"}, {0}, {9});
    auto s2 = boxStmt("S2", {"i"}, {0}, {19});
    // Same beta prefix -> attempted fusion -> bounds differ -> fatal.
    EXPECT_THROW(buildAst({s1, s2}), FatalError);
}

TEST(AstBuild, MixedLeafAndLoopIsRejected)
{
    auto s1 = boxStmt("S1", {"i"}, {0}, {9});
    ScheduledStmt s2 = ScheduledStmt::identity(
        "S2", IntegerSet(std::vector<std::string>{}));
    EXPECT_THROW(buildAst({s1, s2}), FatalError);
}

TEST(AstBuild, PartialTileGetsMinUpperBound)
{
    // Tile i in [0, 29] by 8: domain (i0, i1) with
    // 0 <= i0 <= 3, 0 <= i1 <= 7, 8*i0 + i1 <= 29.
    IntegerSet dom({"i0", "i1"});
    dom.addDimBounds(0, 0, 3);
    dom.addDimBounds(1, 0, 7);
    dom.addInequality(LinearExpr({-8, -1}, 29));
    auto ast = buildAst({ScheduledStmt::identity("S", dom)});
    ASSERT_EQ(ast->kind(), AstNode::Kind::For);
    const AstNode &inner = *ast->children[0];
    ASSERT_EQ(inner.kind(), AstNode::Kind::For);
    // The inner loop needs two upper bounds: i1 <= 7 and i1 <= 29 - 8*i0.
    EXPECT_EQ(inner.bounds.upper.size(), 2u);
    EXPECT_EQ(inner.bounds.lower.size(), 1u);
}

TEST(AstBuild, HardwareAnnotationsLandOnLoops)
{
    auto s = boxStmt("S", {"i", "j"}, {0, 0}, {7, 7});
    s.hwPerDim[0].pipelineII = 1;
    s.hwPerDim[1].unrollFactor = 4;
    auto ast = buildAst({s});
    EXPECT_EQ(ast->hw.pipelineII, std::optional<int>(1));
    EXPECT_EQ(ast->children[0]->hw.unrollFactor, 4);
}

TEST(AstBuild, FusedAnnotationMismatchIsRejected)
{
    auto s1 = boxStmt("S1", {"i"}, {0}, {9});
    auto s2 = boxStmt("S2", {"i"}, {0}, {9});
    s2.betas[1] = 1;
    s1.hwPerDim[0].pipelineII = 1;
    EXPECT_THROW(buildAst({s1, s2}), FatalError);
}

TEST(AstBuild, ValidationErrors)
{
    auto ok = boxStmt("S", {"i"}, {0}, {9});
    auto bad_beta = ok;
    bad_beta.betas.pop_back();
    EXPECT_THROW(buildAst({bad_beta}), FatalError);
    auto bad_hw = ok;
    bad_hw.hwPerDim.clear();
    EXPECT_THROW(buildAst({bad_hw}), FatalError);
    EXPECT_THROW(buildAst({}), FatalError);
}

TEST(AstBuild, PrintedFormIsStable)
{
    auto s = boxStmt("S", {"i", "j"}, {0, 0}, {3, 3});
    s.hwPerDim[1].pipelineII = 2;
    auto ast = buildAst({s});
    std::string printed = ast->str();
    EXPECT_NE(printed.find("for i = 0 .. 3"), std::string::npos);
    EXPECT_NE(printed.find("[pipeline II=2]"), std::string::npos);
    EXPECT_NE(printed.find("S("), std::string::npos);
}

TEST(AstBuild, SkewedDomainNest)
{
    // { (t, i) : 0 <= i <= 9, i <= t <= i + 8 } -- as produced by a skew.
    IntegerSet dom({"t", "i"});
    dom.addDimBounds(1, 0, 9);
    dom.addInequality(LinearExpr({1, -1}, 0));
    dom.addInequality(LinearExpr({-1, 1}, 8));
    auto ast = buildAst({ScheduledStmt::identity("S", dom)});
    ASSERT_EQ(ast->kind(), AstNode::Kind::For);
    EXPECT_EQ(ast->iterName, "t");
    // Inner loop i has bounds depending on t: max(0, t-8) .. min(9, t).
    const AstNode &inner = *ast->children[0];
    EXPECT_EQ(inner.bounds.lower.size(), 2u);
    EXPECT_EQ(inner.bounds.upper.size(), 2u);
}

} // namespace
