/**
 * @file
 * Differential tests for incremental per-node estimation and
 * admissible-bound pruning (hls/node_cache.h, hls/bound.h, the DSE
 * engine's evaluateIncremental path):
 *
 *  - The headline invariant: journals (v1 AND v2) are byte-identical
 *    between the monolithic estimator and the incremental per-node
 *    path, for every workload, every stage-2 strategy, and every
 *    speculation width.
 *  - Admissible-bound pruning never changes the trajectory: same
 *    points, same verdicts and reasons, same accepted numbers, same
 *    frontier -- only the journaled numbers of bound-rejected points
 *    become the bound's.
 *  - Seeded property test: the analytic lower bound never exceeds the
 *    full estimator's resources, fieldwise, over random schedules.
 *  - NodeReportCache mechanics: FIFO eviction under a capacity bound,
 *    the entry codec, and the disk spill round trip.
 *  - designFingerprintFragments() equals designFingerprint() on the
 *    same schedules -- the property that keeps the incremental path's
 *    whole-design cache keys interchangeable with the monolithic ones.
 *  - sameSchedule()/changedStmts() node-diff detection.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "dse/dse.h"
#include "hls/bound.h"
#include "hls/estimator_cache.h"
#include "hls/node_cache.h"
#include "lower/lower.h"
#include "obs/journal.h"
#include "obs/obs.h"
#include "poly/dependence.h"
#include "support/diagnostics.h"
#include "workloads/workloads.h"

namespace {

using namespace pom;
using transform::PolyStmt;
using workloads::makeByName;

void
clearCaches()
{
    hls::EstimatorCache::global().clear();
    hls::NodeReportCache::global().clear();
}

/** The sweep configuration of one workload (DNNs get a bounded depth). */
dse::DseOptions
sweepOptions(const std::string &name, dse::StrategyKind kind)
{
    dse::DseOptions opt;
    opt.strategy = kind;
    if (name == "vgg16" || name == "resnet18")
        opt.maxParallelism = 2;
    return opt;
}

/**
 * The headline differential: for every workload, the incremental path
 * must produce v1 AND v2 journals byte-identical to the monolithic
 * estimator's, at every speculation width. Both caches are dropped
 * before every run so the incremental side really composes from nodes
 * instead of replaying whole-design cache hits.
 */
void
differentialSweep(dse::StrategyKind kind)
{
    for (const auto &name : workloads::allNames()) {
        dse::DseOptions opt = sweepOptions(name, kind);
        const std::int64_t size = 64;

        opt.incrementalEstimate = false;
        opt.jobs = 1;
        clearCaches();
        auto w = makeByName(name, size);
        dse::DseResult mono = dse::autoDSE(w->func(), opt);
        std::string mono_v1 = obs::journalJson(mono.journal);
        std::string mono_v2 =
            obs::journalJsonV2(mono.journal, mono.frontierRounds);

        opt.incrementalEstimate = true;
        for (int jobs : {1, 4, 13}) {
            opt.jobs = jobs;
            clearCaches();
            auto wi = makeByName(name, size);
            dse::DseResult inc = dse::autoDSE(wi->func(), opt);
            EXPECT_EQ(mono_v1, obs::journalJson(inc.journal))
                << name << " jobs=" << jobs;
            EXPECT_EQ(mono_v2, obs::journalJsonV2(inc.journal,
                                                  inc.frontierRounds))
                << name << " jobs=" << jobs;
            EXPECT_EQ(mono.report.latencyCycles,
                      inc.report.latencyCycles)
                << name << " jobs=" << jobs;
            EXPECT_EQ(mono.report.resources.dsp, inc.report.resources.dsp)
                << name << " jobs=" << jobs;
        }
    }
}

TEST(IncrementalDse, GreedyJournalsByteIdentical)
{
    differentialSweep(dse::StrategyKind::Greedy);
}

TEST(IncrementalDse, BeamJournalsByteIdentical)
{
    differentialSweep(dse::StrategyKind::Beam);
}

TEST(IncrementalDse, AnnealJournalsByteIdentical)
{
    differentialSweep(dse::StrategyKind::Anneal);
}

TEST(IncrementalDse, NodeCacheIsActuallyUsed)
{
    // A real search must compose at least some candidates from cached
    // nodes: after the first whole-design miss, only the changed unit
    // should miss the node cache.
    clearCaches();
    auto w = makeByName("2mm", 64);
    dse::DseOptions opt;
    opt.jobs = 1;
    dse::autoDSE(w->func(), opt);
    auto &nodes = hls::NodeReportCache::global();
    EXPECT_GT(nodes.hits(), 0u);
    EXPECT_GT(nodes.misses(), 0u);
    // Hits do not necessarily dominate on small designs: the node key
    // includes the banking of every accessed array under the *merged*
    // plan, so doubling one unit re-keys neighbours that share arrays.
}

// ----- admissible-bound pruning ------------------------------------------

TEST(IncrementalDse, PruneKeepsTrajectory)
{
    struct Config
    {
        const char *name;
        std::int64_t size;
        double fraction;
    };
    // The 64/0.05 configs put the workload's (on-chip) arrays over the
    // BRAM budget, where the bound's exact memory charge must fire.
    const Config configs[] = {
        {"gemm", 96, 0.2},   {"gemm", 96, 0.5},  {"2mm", 96, 0.2},
        {"2mm", 96, 0.5},    {"conv2d", 96, 0.2}, {"conv2d", 96, 0.5},
        {"gemm", 64, 0.05},  {"2mm", 64, 0.05},
    };
    int pruned_total = 0;
    for (const Config &cfg : configs) {
        const char *name = cfg.name;
        const double fraction = cfg.fraction;
        {
            dse::DseOptions opt;
            opt.jobs = 1;
            opt.resourceFraction = fraction;

            opt.prune = false;
            clearCaches();
            auto w1 = makeByName(name, cfg.size);
            dse::DseResult ref = dse::autoDSE(w1->func(), opt);

            opt.prune = true;
            std::int64_t pruned0 =
                obs::counterValue("dse.prune.rejected");
            clearCaches();
            auto w2 = makeByName(name, cfg.size);
            dse::DseResult got = dse::autoDSE(w2->func(), opt);
            pruned_total += static_cast<int>(
                obs::counterValue("dse.prune.rejected") - pruned0);

            EXPECT_EQ(ref.pointsExplored, got.pointsExplored)
                << name << " @" << fraction;
            EXPECT_EQ(ref.report.latencyCycles, got.report.latencyCycles)
                << name << " @" << fraction;
            EXPECT_EQ(ref.report.resources.dsp, got.report.resources.dsp)
                << name << " @" << fraction;

            // Feasible points never go through the bound, so the final
            // frontier is identical, objectives and all.
            ASSERT_EQ(ref.frontier.size(), got.frontier.size())
                << name << " @" << fraction;
            for (size_t i = 0; i < ref.frontier.size(); ++i) {
                EXPECT_EQ(ref.frontier[i].latencyCycles,
                          got.frontier[i].latencyCycles);
                EXPECT_EQ(ref.frontier[i].dsp, got.frontier[i].dsp);
                EXPECT_EQ(ref.frontier[i].bramBits,
                          got.frontier[i].bramBits);
                EXPECT_EQ(ref.frontier[i].lut, got.frontier[i].lut);
            }

            // Entry-by-entry: the trajectory (kinds, points, verdicts,
            // reasons, primitives) is unchanged; numbers match except
            // on bound-rejected points, recognizable by latency 0.
            ASSERT_EQ(ref.journal.size(), got.journal.size())
                << name << " @" << fraction;
            for (size_t i = 0; i < ref.journal.size(); ++i) {
                const auto &r = ref.journal[i];
                const auto &g = got.journal[i];
                EXPECT_EQ(r.kind, g.kind);
                EXPECT_EQ(r.point, g.point);
                EXPECT_EQ(r.primitives, g.primitives);
                EXPECT_EQ(r.verdict, g.verdict);
                EXPECT_EQ(r.reason, g.reason);
                if (g.kind == "point" && g.latencyCycles == 0) {
                    // Pruned: the reference must have rejected it too.
                    EXPECT_NE(r.verdict, "accepted") << name << " point "
                                                     << r.point;
                    continue;
                }
                EXPECT_EQ(r.latencyCycles, g.latencyCycles);
                EXPECT_EQ(r.dsp, g.dsp);
                EXPECT_EQ(r.bramBits, g.bramBits);
                EXPECT_EQ(r.lut, g.lut);
                EXPECT_EQ(r.ff, g.ff);
            }
        }
    }
    // The over-BRAM configs must trip the bound, or the pruning is
    // dead code.
    EXPECT_GT(pruned_total, 0);
}

TEST(IncrementalDse, PruneByteIdenticalAcrossEstimationPaths)
{
    // With pruning on, both estimation paths journal the bound's
    // numbers for pruned points, so the full documents must still be
    // byte-identical between monolithic and incremental evaluation.
    dse::DseOptions opt;
    opt.jobs = 1;
    opt.prune = true;
    opt.resourceFraction = 0.2;

    opt.incrementalEstimate = false;
    clearCaches();
    auto w1 = makeByName("gemm", 96);
    dse::DseResult mono = dse::autoDSE(w1->func(), opt);

    opt.incrementalEstimate = true;
    clearCaches();
    auto w2 = makeByName("gemm", 96);
    dse::DseResult inc = dse::autoDSE(w2->func(), opt);

    EXPECT_EQ(obs::journalJson(mono.journal),
              obs::journalJson(inc.journal));
    EXPECT_EQ(obs::journalJsonV2(mono.journal, mono.frontierRounds),
              obs::journalJsonV2(inc.journal, inc.frontierRounds));
}

// ----- the bound's admissibility, fieldwise, over random schedules -------

/** SplitMix64: tiny, seedable, reproducible across platforms. */
std::uint64_t
splitMix(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

size_t
sharedDepthOf(const std::vector<PolyStmt> &all,
              const std::vector<size_t> &members)
{
    size_t depth = SIZE_MAX;
    const auto &first = all[members[0]].sched.betas;
    for (size_t m = 1; m < members.size(); ++m) {
        const auto &other = all[members[m]].sched.betas;
        size_t common = 0;
        size_t limit = std::min(first.size(), other.size());
        while (common < limit && first[common] == other[common])
            ++common;
        depth = std::min(depth, common);
    }
    return depth == SIZE_MAX ? size_t(0) : depth;
}

bool
anyProducerOf(const std::vector<PolyStmt> &all,
              const std::vector<size_t> &members)
{
    for (size_t a : members) {
        for (size_t b : members) {
            if (a != b &&
                poly::producesFor(all[a].accesses, all[b].accesses)) {
                return true;
            }
        }
    }
    return false;
}

TEST(AdmissibleBound, NeverExceedsEstimateOnRandomSchedules)
{
    std::uint64_t rng = 0x5eedull;
    int checked = 0;
    for (const char *name : {"gemm", "bicg", "gesummv", "2mm", "atax",
                             "conv2d", "jacobi2d", "seidel"}) {
        for (int trial = 0; trial < 4; ++trial) {
            auto w = makeByName(name, 64);
            dsl::Function &func = w->func();
            auto stmts = lower::extractStmts(func);
            lower::applyDirectives(stmts, /*ordering_only=*/true);

            // Group into DSE units (statements sharing betas[0]) and
            // draw a random degree per unit, exactly the shape of a
            // stage-2 candidate.
            std::map<std::int64_t, std::vector<size_t>> nests;
            for (size_t i = 0; i < stmts.size(); ++i)
                nests[stmts[i].sched.betas[0]].push_back(i);

            hls::PartitionPlan partitions;
            bool lowered_ok = true;
            std::vector<std::vector<const PolyStmt *>> unitStmts;
            try {
                for (const auto &[nest, members] : nests) {
                    std::int64_t degree = std::int64_t(1)
                                          << (splitMix(rng) % 5);
                    size_t min_level = 0;
                    if (members.size() > 1 &&
                        anyProducerOf(stmts, members)) {
                        min_level = sharedDepthOf(stmts, members);
                    }
                    for (size_t m : members) {
                        dse::applyParallelSchedule(stmts[m], degree, 16,
                                                   func, partitions,
                                                   min_level);
                    }
                }
            } catch (const support::FatalError &) {
                // A degree this workload's dependences cannot support;
                // the DSE would never propose it. Skip the sample.
                lowered_ok = false;
            }
            if (!lowered_ok)
                continue;
            for (const auto &[nest, members] : nests) {
                std::vector<const PolyStmt *> unit;
                for (size_t m : members)
                    unit.push_back(&stmts[m]);
                unitStmts.push_back(std::move(unit));
            }

            hls::EstimatorOptions eo;
            eo.device = hls::Device::xc7z020();
            eo.partitionOverride = &partitions;
            hls::Resources bound =
                hls::admissibleResourceBound(func, unitStmts, eo);

            hls::SynthesisReport report;
            try {
                auto design = lower::lowerStmts(func, std::move(stmts));
                report = hls::estimate(func, design, eo);
            } catch (const support::FatalError &) {
                // Unlowerable fused-nest combination (stage 1 would
                // have restructured first); skip the sample.
                continue;
            }

            EXPECT_LE(bound.dsp, report.resources.dsp)
                << name << " trial " << trial;
            EXPECT_LE(bound.lut, report.resources.lut)
                << name << " trial " << trial;
            EXPECT_LE(bound.ff, report.resources.ff)
                << name << " trial " << trial;
            EXPECT_LE(bound.bramBits, report.resources.bramBits)
                << name << " trial " << trial;
            ++checked;
        }
    }
    // The dependence guard may skip some samples, never all of them.
    EXPECT_GT(checked, 10);
}

// ----- NodeReportCache mechanics -----------------------------------------

hls::NodeReport
sampleNode(const std::string &nest, std::uint64_t latency)
{
    hls::NodeReport n;
    n.nest = nest;
    n.latencyCycles = latency;
    n.resources.dsp = 5;
    n.resources.lut = 123;
    n.resources.ff = 77;
    n.resources.bramBits = 4096;
    hls::LoopReport loop;
    loop.iterName = "i_P";
    loop.trip = 16;
    loop.targetII = 1;
    loop.achievedII = 2;
    loop.latency = latency / 2;
    loop.recMII = 2;
    loop.resMII = 1;
    n.loops.push_back(loop);
    return n;
}

TEST(NodeReportCache, FifoEvictionUnderCapacity)
{
    hls::NodeReportCache cache;
    cache.setCapacity(2);
    cache.store("k1", {sampleNode("s0", 10)});
    cache.store("k2", {sampleNode("s1", 20)});
    cache.store("k3", {sampleNode("s2", 30)});
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.evictions(), 1u);
    EXPECT_FALSE(cache.lookup("k1").has_value()); // oldest is gone
    EXPECT_TRUE(cache.lookup("k2").has_value());
    EXPECT_TRUE(cache.lookup("k3").has_value());
    EXPECT_EQ(cache.hits(), 2u);
    EXPECT_EQ(cache.misses(), 1u);

    // Shrinking the cap trims immediately, oldest first.
    cache.setCapacity(1);
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.evictions(), 2u);
    EXPECT_TRUE(cache.lookup("k3").has_value());

    // Zero lifts the bound again.
    cache.setCapacity(0);
    cache.store("k4", {sampleNode("s3", 40)});
    cache.store("k5", {sampleNode("s4", 50)});
    EXPECT_EQ(cache.size(), 3u);
    EXPECT_EQ(cache.evictions(), 2u);
}

TEST(NodeReportCache, CodecRoundTrips)
{
    std::vector<hls::NodeReport> nodes = {sampleNode("s0 tricky:name", 7),
                                          sampleNode("s1", 99)};
    nodes[1].loops.clear(); // a node with no pipelined loop
    std::string text = hls::encodeNodeCacheEntry("some-key", nodes);

    std::string key;
    std::vector<hls::NodeReport> parsed;
    std::string error;
    ASSERT_TRUE(hls::decodeNodeCacheEntry(text, key, parsed, error))
        << error;
    EXPECT_EQ(key, "some-key");
    ASSERT_EQ(parsed.size(), nodes.size());
    for (size_t i = 0; i < nodes.size(); ++i) {
        EXPECT_EQ(parsed[i].nest, nodes[i].nest);
        EXPECT_EQ(parsed[i].latencyCycles, nodes[i].latencyCycles);
        EXPECT_EQ(parsed[i].resources.dsp, nodes[i].resources.dsp);
        EXPECT_EQ(parsed[i].resources.lut, nodes[i].resources.lut);
        EXPECT_EQ(parsed[i].resources.ff, nodes[i].resources.ff);
        EXPECT_EQ(parsed[i].resources.bramBits,
                  nodes[i].resources.bramBits);
        ASSERT_EQ(parsed[i].loops.size(), nodes[i].loops.size());
        for (size_t j = 0; j < nodes[i].loops.size(); ++j) {
            EXPECT_EQ(parsed[i].loops[j].iterName,
                      nodes[i].loops[j].iterName);
            EXPECT_EQ(parsed[i].loops[j].trip, nodes[i].loops[j].trip);
            EXPECT_EQ(parsed[i].loops[j].targetII,
                      nodes[i].loops[j].targetII);
            EXPECT_EQ(parsed[i].loops[j].achievedII,
                      nodes[i].loops[j].achievedII);
            EXPECT_EQ(parsed[i].loops[j].latency,
                      nodes[i].loops[j].latency);
            EXPECT_EQ(parsed[i].loops[j].recMII,
                      nodes[i].loops[j].recMII);
            EXPECT_EQ(parsed[i].loops[j].resMII,
                      nodes[i].loops[j].resMII);
        }
    }

    EXPECT_FALSE(hls::decodeNodeCacheEntry("garbage", key, parsed,
                                           error));
    EXPECT_FALSE(error.empty());
}

TEST(NodeReportCache, SpillRoundTrips)
{
    const std::string dir = "node_cache_test_spill";
    std::filesystem::remove_all(dir);

    hls::NodeReportCache writer;
    writer.store("alpha", {sampleNode("s0", 11)});
    writer.store("beta", {sampleNode("s1", 22), sampleNode("s2", 33)});
    hls::SpillStats saved;
    std::string error;
    ASSERT_TRUE(writer.saveDir(dir, saved, error)) << error;
    EXPECT_EQ(saved.written, 2u);

    // Incremental re-save keeps the content-addressed entries.
    hls::SpillStats resaved;
    ASSERT_TRUE(writer.saveDir(dir, resaved, error)) << error;
    EXPECT_EQ(resaved.written, 0u);
    EXPECT_EQ(resaved.kept, 2u);

    hls::NodeReportCache reader;
    hls::SpillStats loaded;
    ASSERT_TRUE(reader.loadDir(dir, loaded, error)) << error;
    EXPECT_EQ(loaded.loaded, 2u);
    auto beta = reader.lookup("beta");
    ASSERT_TRUE(beta.has_value());
    ASSERT_EQ(beta->size(), 2u);
    EXPECT_EQ((*beta)[1].latencyCycles, 33u);

    std::filesystem::remove_all(dir);
}

// ----- fingerprint composition -------------------------------------------

TEST(Fingerprints, FragmentDigestMatchesMonolithicDigest)
{
    auto w = makeByName("gemm", 64);
    dsl::Function &func = w->func();
    auto stmts = lower::extractStmts(func);
    lower::applyDirectives(stmts, /*ordering_only=*/true);
    hls::PartitionPlan partitions;
    for (auto &s : stmts)
        dse::applyParallelSchedule(s, 4, 16, func, partitions);

    std::vector<std::string> storage;
    storage.reserve(stmts.size());
    for (const auto &s : stmts)
        storage.push_back(hls::stmtScheduleFragment(s));
    std::vector<const std::string *> fragments;
    for (const auto &f : storage)
        fragments.push_back(&f);

    hls::EstimatorOptions eo;
    EXPECT_EQ(hls::designFingerprint("fd", stmts, partitions, eo),
              hls::designFingerprintFragments("fd", fragments,
                                              partitions, eo));
}

// ----- node-report composition -------------------------------------------

TEST(NodeReports, CombineMatchesMonolithicEstimate)
{
    // combineNodeReports(estimateNodes(f)) == estimate(f), bit for
    // bit, on every workload and under both sharing modes -- the
    // foundation the whole incremental path rests on.
    for (const auto &name : workloads::allNames()) {
        auto w = makeByName(name, 64);
        lower::LoweredFunction lowered = lower::lower(w->func());
        for (hls::SharingMode sharing :
             {hls::SharingMode::Reuse, hls::SharingMode::Dataflow}) {
            hls::EstimatorOptions eo;
            eo.sharing = sharing;
            hls::SynthesisReport mono =
                hls::estimate(w->func(), lowered, eo);
            hls::SynthesisReport composed = hls::combineNodeReports(
                w->func(), hls::estimateNodes(w->func(), lowered, eo),
                eo);
            EXPECT_EQ(mono.latencyCycles, composed.latencyCycles)
                << name;
            EXPECT_EQ(mono.resources.dsp, composed.resources.dsp)
                << name;
            EXPECT_EQ(mono.resources.bramBits,
                      composed.resources.bramBits)
                << name;
            EXPECT_EQ(mono.resources.lut, composed.resources.lut)
                << name;
            EXPECT_EQ(mono.resources.ff, composed.resources.ff) << name;
            EXPECT_EQ(mono.powerW, composed.powerW) << name;
            EXPECT_EQ(mono.nestLatencies, composed.nestLatencies)
                << name;
            ASSERT_EQ(mono.loops.size(), composed.loops.size()) << name;
            for (size_t i = 0; i < mono.loops.size(); ++i) {
                EXPECT_EQ(mono.loops[i].iterName,
                          composed.loops[i].iterName);
                EXPECT_EQ(mono.loops[i].latency,
                          composed.loops[i].latency);
                EXPECT_EQ(mono.loops[i].achievedII,
                          composed.loops[i].achievedII);
            }
        }
    }
}

// ----- node-diff detection -----------------------------------------------

TEST(ScheduleDiff, SameScheduleAndChangedStmts)
{
    auto w = makeByName("2mm", 64);
    dsl::Function &func = w->func();
    auto base = lower::extractStmts(func);
    lower::applyDirectives(base, /*ordering_only=*/true);
    auto mutated = base;

    EXPECT_TRUE(transform::sameSchedule(base[0].sched, mutated[0].sched));
    EXPECT_TRUE(transform::changedStmts(base, mutated).empty());

    hls::PartitionPlan partitions;
    dse::applyParallelSchedule(mutated[0], 4, 16, func, partitions);
    EXPECT_FALSE(transform::sameSchedule(base[0].sched,
                                         mutated[0].sched));
    auto changed = transform::changedStmts(base, mutated);
    ASSERT_EQ(changed.size(), 1u);
    EXPECT_EQ(changed[0], 0u);
}

} // namespace
