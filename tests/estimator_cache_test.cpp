/**
 * @file
 * Tests for the estimator memoization layer: fingerprint canonicality
 * (same design -> same key, any observable difference -> different
 * key), hit/miss accounting, first-writer-wins semantics, and a
 * concurrent stress case for the sanitizer CI job.
 */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "hls/estimator_cache.h"
#include "lower/lower.h"
#include "transform/poly_stmt.h"
#include "workloads/workloads.h"

namespace {

using namespace pom;

std::vector<transform::PolyStmt>
gemmStmts(std::int64_t size)
{
    auto w = workloads::makeByName("gemm", size);
    return lower::extractStmts(w->func());
}

TEST(Fingerprint, DeterministicAcrossExtractions)
{
    auto a = gemmStmts(64);
    auto b = gemmStmts(64);
    EXPECT_EQ(hls::scheduleFingerprint(a), hls::scheduleFingerprint(b));
    hls::EstimatorOptions opt;
    EXPECT_EQ(hls::designFingerprint("f", a, {}, opt),
              hls::designFingerprint("f", b, {}, opt));
}

TEST(Fingerprint, SensitiveToEveryObservableInput)
{
    auto base = gemmStmts(64);
    hls::EstimatorOptions opt;
    std::string ref = hls::designFingerprint("f", base, {}, opt);

    // Problem size changes the iteration domains.
    EXPECT_NE(hls::designFingerprint("f", gemmStmts(32), {}, opt), ref);

    // A schedule transformation changes the schedule part.
    auto piped = gemmStmts(64);
    transform::setPipeline(piped[0],
                           piped[0].sched.domain.dimName(
                               piped[0].numDims() - 1),
                           1);
    EXPECT_NE(hls::designFingerprint("f", piped, {}, opt), ref);

    // The partition plan is part of the key.
    hls::PartitionPlan plan;
    plan["C"] = {1, 4};
    EXPECT_NE(hls::designFingerprint("f", base, plan, opt), ref);

    // ... but an all-ones plan equals an absent one only if the caller
    // says so; the fingerprint is strictly textual, so it differs.
    hls::PartitionPlan ones;
    ones["C"] = {1, 1};
    EXPECT_NE(hls::designFingerprint("f", base, ones, opt), ref);

    // Device and sharing mode matter to the estimate, so to the key.
    hls::EstimatorOptions small = opt;
    small.device = small.device.scaled(0.5);
    EXPECT_NE(hls::designFingerprint("f", base, {}, small), ref);
    hls::EstimatorOptions dataflow = opt;
    dataflow.sharing = hls::SharingMode::Dataflow;
    EXPECT_NE(hls::designFingerprint("f", base, {}, dataflow), ref);

    // The function digest distinguishes different programs.
    EXPECT_NE(hls::designFingerprint("g", base, {}, opt), ref);
}

TEST(EstimatorCache, CountsHitsAndMisses)
{
    hls::EstimatorCache cache;
    EXPECT_FALSE(cache.lookup("k").has_value());
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 0u);

    hls::SynthesisReport report;
    report.latencyCycles = 1234;
    cache.store("k", report);
    auto hit = cache.lookup("k");
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->latencyCycles, 1234u);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.size(), 1u);

    // First writer wins: a duplicate store is ignored.
    hls::SynthesisReport other;
    other.latencyCycles = 9999;
    cache.store("k", other);
    EXPECT_EQ(cache.lookup("k")->latencyCycles, 1234u);

    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_EQ(cache.misses(), 0u);
}

TEST(EstimatorCache, ConcurrentStress)
{
    hls::EstimatorCache cache;
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t) {
        threads.emplace_back([&cache, t]() {
            for (int i = 0; i < 500; ++i) {
                std::string key = "key" + std::to_string(i % 37);
                if (auto hit = cache.lookup(key)) {
                    // A hit must carry the first writer's value.
                    EXPECT_EQ(hit->latencyCycles,
                              static_cast<std::uint64_t>(i % 37));
                } else {
                    hls::SynthesisReport r;
                    r.latencyCycles =
                        static_cast<std::uint64_t>(i % 37);
                    cache.store(key, r);
                }
            }
            (void)t;
        });
    }
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(cache.size(), 37u);
    EXPECT_EQ(cache.hits() + cache.misses(), 8u * 500u);
}

} // namespace
