/**
 * @file
 * End-to-end validity of the emitted HLS C, in two tiers:
 *
 *  - syntax: write the generated code to a temporary file with a small
 *    compatibility prologue (the HLS `max`/`min` intrinsics) and
 *    syntax-check it with the host C++ compiler;
 *  - golden run: link selected kernels against a main() that replicates
 *    the interpreter's deterministic fill pattern, execute the binary,
 *    and diff its output against the interpreter running the same
 *    design over the same inputs.
 *
 * Both tiers are skipped if no host compiler is available.
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "driver/compiler.h"
#include "ir/interpreter.h"
#include "workloads/workloads.h"

namespace {

using namespace pom;

bool
haveHostCompiler()
{
    return std::system("c++ --version > /dev/null 2>&1") == 0;
}

void
expectCompiles(const std::string &code, const std::string &tag)
{
    if (!haveHostCompiler())
        GTEST_SKIP() << "no host compiler";
    std::string path = ::testing::TempDir() + "pom_emit_" + tag + ".cpp";
    {
        std::ofstream os(path);
        os << "#include <cstdint>\n#include <cmath>\n"
           << "using std::fmax; using std::fmin;\n"
           << "template <typename T> T max(T a, T b) "
           << "{ return a > b ? a : b; }\n"
           << "template <typename T> T min(T a, T b) "
           << "{ return a < b ? a : b; }\n"
           << code;
    }
    std::string cmd = "c++ -std=c++17 -fsyntax-only -Wall \"" + path +
                      "\" 2> \"" + path + ".log\"";
    int rc = std::system(cmd.c_str());
    std::string log;
    {
        std::ifstream is(path + ".log");
        log.assign(std::istreambuf_iterator<char>(is),
                   std::istreambuf_iterator<char>());
    }
    EXPECT_EQ(rc, 0) << "emitted code failed to compile:\n"
                     << log << "\n--- code ---\n"
                     << code;
}

class EmittedCodeCompiles
    : public ::testing::TestWithParam<const char *>
{};

TEST_P(EmittedCodeCompiles, WithHostCompiler)
{
    auto w = workloads::makeByName(GetParam(), 64);
    w->func().autoDSE();
    auto result = driver::compile(w->func());
    expectCompiles(result.hlsCode, GetParam());
}

INSTANTIATE_TEST_SUITE_P(Workloads, EmittedCodeCompiles,
                         ::testing::Values("gemm", "bicg", "gesummv",
                                           "2mm", "3mm", "atax", "mvt",
                                           "syrk", "conv2d", "jacobi1d",
                                           "heat1d", "seidel", "blur",
                                           "gaussian", "edgedetect"));

// ----- Golden run ---------------------------------------------------------

const char *kPrologue =
    "#include <cstdint>\n#include <cstdio>\n#include <cmath>\n"
    "using std::fmax; using std::fmin;\n"
    "template <typename T> T max(T a, T b) { return a > b ? a : b; }\n"
    "template <typename T> T min(T a, T b) { return a < b ? a : b; }\n";

/**
 * A main() that fills every kernel argument with the interpreter's
 * xorshift pattern (Buffer::fillPattern, seeded per argument exactly
 * like makeBuffersFor), runs the kernel, and prints every element of
 * every array with full precision.
 */
std::string
goldenMain(const dsl::Function &func, unsigned seed)
{
    std::ostringstream os;
    os << "static void fill(float *p, long n, unsigned seed) {\n"
       << "  unsigned state = seed * 2654435761u + 1u;\n"
       << "  for (long k = 0; k < n; ++k) {\n"
       << "    state ^= state << 13;\n"
       << "    state ^= state >> 17;\n"
       << "    state ^= state << 5;\n"
       << "    p[k] = (float)(((double)(state % 20001u) - 10000.0) / "
          "10000.0);\n"
       << "  }\n"
       << "}\n"
       << "int main() {\n";
    unsigned idx = 0;
    for (const dsl::Placeholder *ph : func.placeholders()) {
        std::int64_t total = 1;
        os << "  static float " << ph->name();
        for (std::int64_t d : ph->shape()) {
            os << "[" << d << "]";
            total *= d;
        }
        os << ";\n  fill((float *)" << ph->name() << ", " << total
           << ", " << (seed + 17 * idx++) << "u);\n";
    }
    os << "  " << func.name() << "(";
    for (size_t i = 0; i < func.placeholders().size(); ++i)
        os << (i ? ", " : "") << func.placeholders()[i]->name();
    os << ");\n";
    for (const dsl::Placeholder *ph : func.placeholders()) {
        std::int64_t total = 1;
        for (std::int64_t d : ph->shape())
            total *= d;
        os << "  { const float *p = (const float *)" << ph->name()
           << ";\n    for (long k = 0; k < " << total
           << "; ++k) std::printf(\"%.17g\\n\", (double)p[k]); }\n";
    }
    os << "  return 0;\n}\n";
    return os.str();
}

class GoldenRun : public ::testing::TestWithParam<const char *>
{};

TEST_P(GoldenRun, EmittedKernelMatchesInterpreter)
{
    if (!haveHostCompiler())
        GTEST_SKIP() << "no host compiler";
    const unsigned seed = 1;
    const std::int64_t size = 16;

    auto w = workloads::makeByName(GetParam(), size);
    w->func().autoDSE();
    auto result = driver::compile(w->func());

    // Interpret the same design over the same pattern-filled inputs.
    ir::BufferMap buffers = ir::makeBuffersFor(*result.design.func, seed);
    ir::runFunction(*result.design.func, buffers);

    // Build and execute the emitted kernel.
    std::string stem =
        ::testing::TempDir() + "pom_golden_" + GetParam();
    {
        std::ofstream os(stem + ".cpp");
        os << kPrologue << result.hlsCode << goldenMain(w->func(), seed);
    }
    ASSERT_EQ(std::system(("c++ -std=c++17 -O1 -o \"" + stem +
                           ".bin\" \"" + stem + ".cpp\" 2> \"" + stem +
                           ".log\"")
                              .c_str()),
              0)
        << [&] {
               std::ifstream is(stem + ".log");
               return std::string(std::istreambuf_iterator<char>(is),
                                  std::istreambuf_iterator<char>());
           }();
    ASSERT_EQ(std::system(("\"" + stem + ".bin\" > \"" + stem +
                           ".out\"")
                              .c_str()),
              0);

    std::ifstream out(stem + ".out");
    size_t mismatches = 0;
    for (const dsl::Placeholder *ph : w->func().placeholders()) {
        ASSERT_TRUE(buffers.count(ph->name())) << ph->name();
        const auto &expect = buffers[ph->name()]->data();
        for (size_t k = 0; k < expect.size(); ++k) {
            double actual = 0.0;
            ASSERT_TRUE(out >> actual)
                << "output truncated at " << ph->name() << "[" << k
                << "]";
            // The kernel computes in float, the interpreter in double.
            double tol =
                1e-9 + 1e-4 * std::max(std::abs(expect[k]),
                                       std::abs(actual));
            if (std::abs(actual - expect[k]) > tol && ++mismatches < 5) {
                ADD_FAILURE()
                    << ph->name() << "[" << k << "]: kernel " << actual
                    << " vs interpreter " << expect[k];
            }
        }
    }
    EXPECT_EQ(mismatches, 0u);
}

INSTANTIATE_TEST_SUITE_P(Workloads, GoldenRun,
                         ::testing::Values("gemm", "jacobi2d", "conv2d"));

TEST(EmittedCodeCompiles, ManualScheduleWithSkew)
{
    dsl::Function f("wavefront");
    dsl::Var i("i", 1, 64), j("j", 1, 64);
    dsl::Placeholder A(f, "A", {64, 64});
    dsl::Compute s(f, "s", {i, j}, A(i - 1, j) + A(i, j - 1), A(i, j));
    dsl::Var ip("ip"), jp("jp");
    s.skew(i, j, 1, ip, jp);
    s.interchange(ip, jp);
    s.pipeline(ip, 1);
    auto result = driver::compile(f);
    expectCompiles(result.hlsCode, "wavefront");
}

} // namespace
