/**
 * @file
 * End-to-end validity of the emitted HLS C: write the generated code to
 * a temporary file with a small compatibility prologue (the HLS
 * `max`/`min` intrinsics) and syntax-check it with the host C++
 * compiler. Skipped if no compiler is available.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "driver/compiler.h"
#include "workloads/workloads.h"

namespace {

using namespace pom;

bool
haveHostCompiler()
{
    return std::system("c++ --version > /dev/null 2>&1") == 0;
}

void
expectCompiles(const std::string &code, const std::string &tag)
{
    if (!haveHostCompiler())
        GTEST_SKIP() << "no host compiler";
    std::string path = ::testing::TempDir() + "pom_emit_" + tag + ".cpp";
    {
        std::ofstream os(path);
        os << "#include <cstdint>\n#include <cmath>\n"
           << "using std::fmax; using std::fmin;\n"
           << "template <typename T> T max(T a, T b) "
           << "{ return a > b ? a : b; }\n"
           << "template <typename T> T min(T a, T b) "
           << "{ return a < b ? a : b; }\n"
           << code;
    }
    std::string cmd = "c++ -std=c++17 -fsyntax-only -Wall \"" + path +
                      "\" 2> \"" + path + ".log\"";
    int rc = std::system(cmd.c_str());
    std::string log;
    {
        std::ifstream is(path + ".log");
        log.assign(std::istreambuf_iterator<char>(is),
                   std::istreambuf_iterator<char>());
    }
    EXPECT_EQ(rc, 0) << "emitted code failed to compile:\n"
                     << log << "\n--- code ---\n"
                     << code;
}

class EmittedCodeCompiles
    : public ::testing::TestWithParam<const char *>
{};

TEST_P(EmittedCodeCompiles, WithHostCompiler)
{
    auto w = workloads::makeByName(GetParam(), 64);
    w->func().autoDSE();
    auto result = driver::compile(w->func());
    expectCompiles(result.hlsCode, GetParam());
}

INSTANTIATE_TEST_SUITE_P(Workloads, EmittedCodeCompiles,
                         ::testing::Values("gemm", "bicg", "gesummv",
                                           "2mm", "3mm", "atax", "mvt",
                                           "syrk", "conv2d", "jacobi1d",
                                           "heat1d", "seidel", "blur",
                                           "gaussian", "edgedetect"));

TEST(EmittedCodeCompiles, ManualScheduleWithSkew)
{
    dsl::Function f("wavefront");
    dsl::Var i("i", 1, 64), j("j", 1, 64);
    dsl::Placeholder A(f, "A", {64, 64});
    dsl::Compute s(f, "s", {i, j}, A(i - 1, j) + A(i, j - 1), A(i, j));
    dsl::Var ip("ip"), jp("jp");
    s.skew(i, j, 1, ip, jp);
    s.interchange(ip, jp);
    s.pipeline(ip, 1);
    auto result = driver::compile(f);
    expectCompiles(result.hlsCode, "wavefront");
}

} // namespace
