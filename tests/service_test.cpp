/**
 * @file
 * Tests for the pomd compile service: protocol encode/decode, version
 * gating, in-process request execution, and full socket round-trips --
 * including the load-bearing property that a daemon-served DSE journal
 * is byte-identical to the one-shot `pomc` equivalent, under
 * concurrency, and that a full queue answers "busy" instead of
 * queueing unboundedly.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "baselines/baselines.h"
#include "hls/estimator_cache.h"
#include "ir/parser.h"
#include "lower/lower.h"
#include "obs/journal.h"
#include "service/client.h"
#include "service/server.h"
#include "support/version.h"
#include "workloads/workloads.h"

namespace {

using namespace pom;

std::string
scratchSocket(const std::string &name)
{
    std::string path = ::testing::TempDir() + "pom_" + name + ".sock";
    std::filesystem::remove(path);
    return path;
}

service::Request
compileRequest(const std::string &workload, std::int64_t size,
               const std::string &journal = "none")
{
    service::Request req;
    req.version = support::kVersionString;
    req.method = "compile";
    req.workload = workload;
    req.size = size;
    req.framework = "pom";
    req.journal = journal;
    return req;
}

/** The journal bytes a one-shot `pomc --frontier-out` run would write. */
std::string
oneShotJournalV2(const std::string &workload, std::int64_t size)
{
    auto w = workloads::makeByName(workload, size);
    baselines::BaselineOptions opt;
    auto result = baselines::runPom(w->func(), opt);
    return obs::journalJsonV2(result.journal, result.frontierRounds);
}

/**
 * Remove the daemon's `"request": N, ` header stamp -- the one
 * permitted divergence between a daemon-served journal and its
 * one-shot equivalent. Returns the stamped ID (0 if absent).
 */
std::int64_t
stripRequestStamp(std::string &journal)
{
    const std::string key = "\"request\": ";
    std::size_t at = journal.find(key);
    if (at == std::string::npos)
        return 0;
    std::size_t end = journal.find(", ", at);
    if (end == std::string::npos)
        return 0;
    std::int64_t id =
        std::atoll(journal.c_str() + at + key.size());
    journal.erase(at, end + 2 - at);
    return id;
}

TEST(Protocol, RequestRoundTrip)
{
    service::Request req = compileRequest("gemm", 256, "v2");
    req.strategy = "beam";
    req.resourceFraction = 0.75;
    req.emit = true;
    req.jobs = 3;

    service::Request decoded;
    std::string error;
    ASSERT_TRUE(service::decodeRequest(service::encodeRequest(req),
                                       decoded, error))
        << error;
    EXPECT_EQ(decoded.version, req.version);
    EXPECT_EQ(decoded.method, "compile");
    EXPECT_EQ(decoded.workload, "gemm");
    EXPECT_EQ(decoded.size, 256);
    EXPECT_EQ(decoded.strategy, "beam");
    EXPECT_EQ(decoded.resourceFraction, 0.75);
    EXPECT_TRUE(decoded.emit);
    EXPECT_EQ(decoded.journal, "v2");
    EXPECT_EQ(decoded.jobs, 3);

    // jobs = 0 means "daemon default" and is omitted from the wire
    // frame, so an old daemon never sees the key.
    req.jobs = 0;
    std::string encoded = service::encodeRequest(req);
    EXPECT_EQ(encoded.find("\"jobs\""), std::string::npos);
    ASSERT_TRUE(service::decodeRequest(encoded, decoded, error)) << error;
    EXPECT_EQ(decoded.jobs, 0);
}

TEST(Protocol, ResponseRoundTripIncludingBusy)
{
    service::Response busy;
    busy.status = "busy";
    busy.retryAfterMs = 150;
    service::Response decoded;
    std::string error;
    ASSERT_TRUE(service::decodeResponse(service::encodeResponse(busy),
                                        decoded, error))
        << error;
    EXPECT_EQ(decoded.status, "busy");
    EXPECT_EQ(decoded.retryAfterMs, 150);

    service::Response ok;
    ok.reportLine = "latency=1 cycles";
    ok.journalText = "{\"schema\": \"pom-dse-journal/v2\"}";
    ok.cacheHits = 7;
    ok.pipelineCacheHits = 11;
    ok.pipelineCacheMisses = 2;
    ASSERT_TRUE(service::decodeResponse(service::encodeResponse(ok),
                                        decoded, error))
        << error;
    EXPECT_EQ(decoded.status, "ok");
    EXPECT_EQ(decoded.reportLine, ok.reportLine);
    EXPECT_EQ(decoded.journalText, ok.journalText);
    EXPECT_EQ(decoded.cacheHits, 7);
    EXPECT_EQ(decoded.pipelineCacheHits, 11);
    EXPECT_EQ(decoded.pipelineCacheMisses, 2);
}

TEST(Protocol, StatsFrameRoundTripsHistogramSummaries)
{
    service::Response stats;
    stats.statsFrame = true;
    stats.requestId = 42;
    stats.requestsServed = 9;
    stats.cacheHits = 6;
    stats.cacheMisses = 2;
    stats.cacheSize = 8;
    stats.cacheLoaded = 3;
    stats.queueDepth = 1;
    stats.queueDepthMax = 5;
    stats.uptimeSeconds = 12.25;
    stats.cacheHitRate = 0.75;
    stats.queueWaitMs = {4, 10.5, 0.5, 2.0, 8.0, 8.0};
    stats.serviceMs = {4, 1000.0, 100.0, 400.0, 900.0, 901.5};

    service::Response decoded;
    std::string error;
    ASSERT_TRUE(service::decodeResponse(service::encodeResponse(stats),
                                        decoded, error))
        << error;
    EXPECT_TRUE(decoded.statsFrame);
    EXPECT_EQ(decoded.requestId, 42);
    EXPECT_EQ(decoded.requestsServed, 9);
    EXPECT_EQ(decoded.queueDepthMax, 5);
    EXPECT_EQ(decoded.uptimeSeconds, 12.25);
    EXPECT_EQ(decoded.cacheHitRate, 0.75);
    EXPECT_EQ(decoded.queueWaitMs.count, 4);
    EXPECT_EQ(decoded.queueWaitMs.sum, 10.5);
    EXPECT_EQ(decoded.queueWaitMs.p50, 0.5);
    EXPECT_EQ(decoded.queueWaitMs.p90, 2.0);
    EXPECT_EQ(decoded.queueWaitMs.p99, 8.0);
    EXPECT_EQ(decoded.queueWaitMs.max, 8.0);
    EXPECT_EQ(decoded.serviceMs.count, 4);
    EXPECT_EQ(decoded.serviceMs.max, 901.5);

    // A work frame (no requests_served) must NOT look like stats.
    service::Response work;
    work.reportLine = "latency=1 cycles";
    work.cacheHits = 3;
    work.cacheMisses = 1;
    ASSERT_TRUE(service::decodeResponse(service::encodeResponse(work),
                                        decoded, error))
        << error;
    EXPECT_FALSE(decoded.statsFrame);
    EXPECT_EQ(decoded.cacheHits, 3);
    EXPECT_EQ(decoded.cacheMisses, 1);
}

TEST(Protocol, PrometheusExpositionIsWellFormed)
{
    service::Response stats;
    stats.statsFrame = true;
    stats.requestsServed = 7;
    stats.cacheHits = 10;
    stats.cacheMisses = 30;
    stats.cacheHitRate = 0.25;
    stats.uptimeSeconds = 3.5;
    stats.queueDepthMax = 4;
    stats.queueWaitMs = {7, 21.0, 1.0, 5.0, 9.0, 9.5};
    stats.serviceMs = {7, 700.0, 80.0, 200.0, 600.0, 650.0};

    std::string text = service::statsPrometheus(stats);
    // Every sample line: `name[{labels}] value`, preceded by HELP/TYPE.
    EXPECT_NE(text.find("# TYPE pomd_uptime_seconds gauge\n"),
              std::string::npos);
    EXPECT_NE(text.find("pomd_requests_served_total 7\n"),
              std::string::npos);
    EXPECT_NE(text.find("pomd_estimator_cache_hit_rate 0.25\n"),
              std::string::npos);
    EXPECT_NE(
        text.find("# TYPE pomd_request_queue_wait_milliseconds summary"),
        std::string::npos);
    EXPECT_NE(text.find("pomd_request_queue_wait_milliseconds"
                        "{quantile=\"0.5\"} 1\n"),
              std::string::npos);
    EXPECT_NE(text.find("pomd_request_queue_wait_milliseconds_count 7\n"),
              std::string::npos);
    EXPECT_NE(text.find("pomd_request_service_milliseconds_sum 700\n"),
              std::string::npos);
    // Structural lint: every non-comment line is `<name...> <value>`,
    // and every metric family has a TYPE line before its samples.
    std::istringstream lines(text);
    std::string line;
    while (std::getline(lines, line)) {
        ASSERT_FALSE(line.empty());
        if (line[0] == '#') {
            EXPECT_TRUE(line.rfind("# HELP ", 0) == 0 ||
                        line.rfind("# TYPE ", 0) == 0)
                << line;
            continue;
        }
        std::size_t space = line.rfind(' ');
        ASSERT_NE(space, std::string::npos) << line;
        // The value parses as a double.
        char *end = nullptr;
        std::strtod(line.c_str() + space + 1, &end);
        EXPECT_EQ(*end, '\0') << line;
    }
}

TEST(Protocol, MalformedPayloadsAreErrors)
{
    service::Request req;
    std::string error;
    EXPECT_FALSE(service::decodeRequest("not json", req, error));
    EXPECT_FALSE(service::decodeRequest("{}", req, error));
    EXPECT_NE(error.find("method"), std::string::npos);

    service::Response resp;
    EXPECT_FALSE(service::decodeResponse("{\"pom\": \"x\"}", resp,
                                         error));
    EXPECT_NE(error.find("status"), std::string::npos);
}

TEST(Server, RejectsVersionMismatchCleanly)
{
    service::Server server(service::ServerOptions{});
    service::Request req = compileRequest("gemm", 64);
    req.version = "0.0.1";
    service::Response resp = server.execute(req);
    EXPECT_EQ(resp.status, "error");
    EXPECT_NE(resp.error.find("version mismatch"), std::string::npos);
}

TEST(Server, RejectsBadRequestsWithoutDying)
{
    service::Server server(service::ServerOptions{});

    service::Request unknown;
    unknown.version = support::kVersionString;
    unknown.method = "frobnicate";
    EXPECT_EQ(server.execute(unknown).status, "error");

    service::Request bad_workload = compileRequest("nope", 64);
    service::Response resp = server.execute(bad_workload);
    EXPECT_EQ(resp.status, "error");
    EXPECT_NE(resp.error.find("unknown workload"), std::string::npos);

    service::Request bad_strategy = compileRequest("gemm", 64);
    bad_strategy.strategy = "bogus";
    resp = server.execute(bad_strategy);
    EXPECT_EQ(resp.status, "error");
    EXPECT_NE(resp.error.find("unknown strategy"), std::string::npos);

    service::Request v2_baseline = compileRequest("gemm", 64, "v2");
    v2_baseline.framework = "pluto";
    resp = server.execute(v2_baseline);
    EXPECT_EQ(resp.status, "error");

    // A parse error inside "opt" comes back as an error response.
    service::Request bad_ir;
    bad_ir.version = support::kVersionString;
    bad_ir.method = "opt";
    bad_ir.ir = "this is not pom-ir";
    resp = server.execute(bad_ir);
    EXPECT_EQ(resp.status, "error");

    // The server still works after all those failures.
    service::Request ping;
    ping.version = support::kVersionString;
    ping.method = "ping";
    EXPECT_EQ(server.execute(ping).status, "ok");
}

TEST(Server, ValidatesPerRequestJobsOverride)
{
    service::ServerOptions options; // default workers = 2
    service::Server server(options);

    // Oversized: a request may not claim more workers than the pool.
    service::Request req = compileRequest("gemm", 64);
    req.jobs = options.workers + 1;
    service::Response resp = server.execute(req);
    EXPECT_EQ(resp.status, "error");
    EXPECT_NE(resp.error.find("exceeds the daemon's --workers pool"),
              std::string::npos)
        << resp.error;

    req.jobs = -1;
    resp = server.execute(req);
    EXPECT_EQ(resp.status, "error");
    EXPECT_NE(resp.error.find("non-negative"), std::string::npos)
        << resp.error;

    // jobs == workers and jobs == 0 (daemon default) are both fine,
    // and a narrower run answers the same report as the default one.
    req.jobs = options.workers;
    resp = server.execute(req);
    ASSERT_EQ(resp.status, "ok") << resp.error;
    std::string narrow_report = resp.reportLine;

    req.jobs = 0;
    resp = server.execute(req);
    ASSERT_EQ(resp.status, "ok") << resp.error;
    EXPECT_EQ(resp.reportLine, narrow_report);
}

TEST(Server, CompileMatchesOneShotJournalByteForByte)
{
    hls::EstimatorCache::global().clear();
    std::string direct = oneShotJournalV2("gemm", 64);

    service::Server server(service::ServerOptions{});
    service::Response resp =
        server.execute(compileRequest("gemm", 64, "v2"));
    ASSERT_EQ(resp.status, "ok") << resp.error;
    EXPECT_EQ(resp.journalText, direct);
    EXPECT_FALSE(resp.reportLine.empty());
    hls::EstimatorCache::global().clear();
}

TEST(Server, OptMethodMatchesDirectPipeline)
{
    lower::registerLoweringPasses();
    std::ifstream in(std::string(POM_REGRESSION_DIR) +
                     "/gemm_default.pom-ir");
    ASSERT_TRUE(in.good());
    std::ostringstream text;
    text << in.rdbuf();

    service::Request req;
    req.version = support::kVersionString;
    req.method = "opt";
    req.ir = text.str();
    req.pipeline = "verify";

    service::Server server(service::ServerOptions{});
    service::Response resp = server.execute(req);
    ASSERT_EQ(resp.status, "ok") << resp.error;
    // Round-trip identity: with a non-mutating pipeline the service
    // returns the canonical printing of the parsed module.
    EXPECT_EQ(resp.irOut, ir::parseIr(text.str())->str());
}

TEST(ServiceSocket, PingStatsAndShutdown)
{
    service::ServerOptions options;
    options.socketPath = scratchSocket("ping");
    service::Server server(options);
    std::string error;
    ASSERT_TRUE(server.start(error)) << error;
    std::thread loop([&server]() { server.run(); });

    service::Request ping;
    ping.version = support::kVersionString;
    ping.method = "ping";
    service::Response resp;
    ASSERT_TRUE(service::callDaemon(options.socketPath, ping, resp,
                                    error))
        << error;
    EXPECT_EQ(resp.status, "ok");
    EXPECT_EQ(resp.version, support::kVersionString);

    service::Request stats;
    stats.version = support::kVersionString;
    stats.method = "stats";
    ASSERT_TRUE(service::callDaemon(options.socketPath, stats, resp,
                                    error))
        << error;
    EXPECT_EQ(resp.status, "ok");
    EXPECT_GE(resp.requestsServed, 1);

    service::Request shutdown;
    shutdown.version = support::kVersionString;
    shutdown.method = "shutdown";
    ASSERT_TRUE(service::callDaemon(options.socketPath, shutdown, resp,
                                    error))
        << error;
    EXPECT_EQ(resp.status, "ok");
    loop.join();
}

TEST(ServiceSocket, ConcurrentCompilesMatchOneShotByteForByte)
{
    hls::EstimatorCache::global().clear();
    const std::vector<std::pair<std::string, std::int64_t>> jobs = {
        {"gemm", 64}, {"gemm", 32}, {"bicg", 64}, {"gemm", 64},
        {"bicg", 64}, {"gemm", 32}, {"gemm", 64}, {"bicg", 64},
    };
    std::vector<std::string> expected;
    for (const auto &[name, size] : jobs)
        expected.push_back(oneShotJournalV2(name, size));

    service::ServerOptions options;
    options.socketPath = scratchSocket("conc");
    options.workers = 4;
    service::Server server(options);
    std::string error;
    ASSERT_TRUE(server.start(error)) << error;
    std::thread loop([&server]() { server.run(); });

    std::vector<std::string> served(jobs.size());
    std::vector<std::string> failures(jobs.size());
    std::vector<std::thread> clients;
    for (size_t i = 0; i < jobs.size(); ++i) {
        clients.emplace_back([&, i]() {
            service::Response resp;
            std::string client_error;
            if (!service::callDaemon(
                    options.socketPath,
                    compileRequest(jobs[i].first, jobs[i].second, "v2"),
                    resp, client_error)) {
                failures[i] = client_error;
                return;
            }
            if (resp.status != "ok") {
                failures[i] = resp.error;
                return;
            }
            served[i] = resp.journalText;
        });
    }
    for (auto &t : clients)
        t.join();
    server.stop();
    loop.join();

    std::vector<std::int64_t> ids;
    for (size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_TRUE(failures[i].empty()) << failures[i];
        // Socket-served journals are stamped with the daemon's request
        // ID; after stripping that one header key they must be
        // byte-identical to the one-shot run.
        std::int64_t id = stripRequestStamp(served[i]);
        EXPECT_GT(id, 0) << "journal missing the request stamp";
        ids.push_back(id);
        EXPECT_EQ(served[i], expected[i]) << jobs[i].first;
    }
    // Request IDs are unique across concurrent requests.
    std::sort(ids.begin(), ids.end());
    EXPECT_EQ(std::unique(ids.begin(), ids.end()), ids.end());
    hls::EstimatorCache::global().clear();
}

TEST(ServiceSocket, FullQueueAnswersBusyWithRetryHint)
{
    service::ServerOptions options;
    options.socketPath = scratchSocket("busy");
    options.workers = 1;
    options.queueLimit = 1;
    options.retryAfterMs = 50;
    service::Server server(options);
    std::string error;
    ASSERT_TRUE(server.start(error)) << error;
    std::thread loop([&server]() { server.run(); });

    // Occupy the only slot for a while...
    service::Request sleeper;
    sleeper.version = support::kVersionString;
    sleeper.method = "sleep";
    sleeper.size = 800;
    std::thread holder([&]() {
        service::Response resp;
        std::string holder_error;
        EXPECT_TRUE(service::callDaemon(options.socketPath, sleeper,
                                        resp, holder_error))
            << holder_error;
        EXPECT_EQ(resp.status, "ok");
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(200));

    // ... a raw single-shot client (zero retries) must see "busy" ...
    service::Request probe;
    probe.version = support::kVersionString;
    probe.method = "sleep";
    probe.size = 1;
    service::Response resp;
    EXPECT_FALSE(service::callDaemon(options.socketPath, probe, resp,
                                     error, /*busyRetries=*/0));
    EXPECT_NE(error.find("busy"), std::string::npos) << error;

    // ... while control methods bypass the queue entirely.
    service::Request ping;
    ping.version = support::kVersionString;
    ping.method = "ping";
    service::Response ping_resp;
    std::string ping_error;
    EXPECT_TRUE(service::callDaemon(options.socketPath, ping,
                                    ping_resp, ping_error))
        << ping_error;
    EXPECT_EQ(ping_resp.status, "ok");

    // A retrying client rides out the backpressure and succeeds.
    service::Response retried;
    std::string retry_error;
    EXPECT_TRUE(service::callDaemon(options.socketPath, probe, retried,
                                    retry_error))
        << retry_error;
    EXPECT_EQ(retried.status, "ok");

    holder.join();
    server.stop();
    loop.join();
}

} // namespace
