#include "baselines/baselines.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <optional>

#include "graph/dependence_graph.h"
#include "hls/count.h"
#include "obs/obs.h"
#include "support/diagnostics.h"

namespace pom::baselines {

using graph::DependenceGraph;
using graph::Hint;
using transform::PolyStmt;

namespace {

double
elapsedSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
}

hls::EstimatorOptions
estOptions(const BaselineOptions &options, hls::SharingMode sharing)
{
    hls::EstimatorOptions eo;
    eo.device = options.device.scaled(options.resourceFraction);
    eo.sharing = sharing;
    return eo;
}

/** Largest loop trip count of the program (problem-size proxy). */
std::int64_t
maxTrip(const std::vector<PolyStmt> &stmts)
{
    std::int64_t m = 0;
    for (const auto &s : stmts) {
        for (auto t : hls::avgTrips(s.sched.domain))
            m = std::max(m, t);
    }
    return m;
}

/** Pluto-style locality tiling: tile the two innermost levels. */
void
plutoTile(PolyStmt &stmt, std::int64_t tile)
{
    size_t n = stmt.numDims();
    auto trips = hls::avgTrips(stmt.sched.domain);
    // Tile the innermost two loops when they are large enough; this is
    // the locality-oriented schedule Pluto would emit for CPUs.
    if (n >= 2 && trips[n - 1] >= 2 * tile && trips[n - 2] >= 2 * tile) {
        std::string a = stmt.sched.domain.dimName(n - 2);
        std::string b = stmt.sched.domain.dimName(n - 1);
        transform::tile(stmt, a, b, tile, tile, a + "_T", b + "_T",
                        a + "_P", b + "_P");
    } else if (trips[n - 1] >= 2 * tile) {
        std::string b = stmt.sched.domain.dimName(n - 1);
        transform::split(stmt, b, tile, b + "_T", b + "_P");
    }
}

} // namespace

BaselineResult
runUnoptimized(dsl::Function &func, const BaselineOptions &options)
{
    obs::Span span("driver.runUnoptimized", "driver");
    auto t0 = std::chrono::steady_clock::now();
    BaselineResult result;
    auto stmts = lower::extractStmts(func);
    lower::applyDirectives(stmts, /*ordering_only=*/true);
    result.design = lower::lowerStmts(func, std::move(stmts));
    result.report = hls::estimate(func, result.design,
                                  estOptions(options,
                                             hls::SharingMode::Reuse));
    result.seconds = elapsedSince(t0);
    result.notes = "no optimization";
    return result;
}

BaselineResult
runPlutoLike(dsl::Function &func, const BaselineOptions &options)
{
    obs::Span span("driver.runPlutoLike", "driver");
    auto t0 = std::chrono::steady_clock::now();
    auto stmts = lower::extractStmts(func);
    lower::applyDirectives(stmts, /*ordering_only=*/true);
    for (auto &s : stmts)
        plutoTile(s, options.plutoTileSize);

    BaselineResult result;
    result.design = lower::lowerStmts(func, std::move(stmts));
    result.report = hls::estimate(func, result.design,
                                  estOptions(options,
                                             hls::SharingMode::Reuse));
    result.seconds = elapsedSince(t0);
    result.notes = "locality tiling only (CPU-oriented schedule)";
    return result;
}

BaselineResult
runPolscaLike(dsl::Function &func, const BaselineOptions &options)
{
    obs::Span span("driver.runPolscaLike", "driver");
    auto t0 = std::chrono::steady_clock::now();
    auto stmts = lower::extractStmts(func);
    lower::applyDirectives(stmts, /*ordering_only=*/true);
    for (auto &s : stmts) {
        plutoTile(s, options.plutoTileSize);
        // Pipeline the innermost loop; the Pluto schedule has not
        // relieved loop-carried dependences and arrays stay
        // unpartitioned (paper §VII.B).
        transform::setPipeline(
            s, s.sched.domain.dimName(s.numDims() - 1), 1);
    }
    for (const dsl::Placeholder *p : func.placeholders())
        func.findPlaceholderMut(p->name())->clearPartition();

    BaselineResult result;
    result.design = lower::lowerStmts(func, std::move(stmts));
    result.report = hls::estimate(func, result.design,
                                  estOptions(options,
                                             hls::SharingMode::Reuse));
    result.seconds = elapsedSince(t0);
    result.notes = "Pluto schedule + innermost pipelining, no "
                   "partitioning";
    return result;
}

BaselineResult
runScaleHlsLike(dsl::Function &func, const BaselineOptions &options)
{
    obs::Span span("driver.runScaleHlsLike", "driver");
    auto t0 = std::chrono::steady_clock::now();
    auto stmts = lower::extractStmts(func);
    lower::applyDirectives(stmts, /*ordering_only=*/true);
    hls::Device device = options.device.scaled(options.resourceFraction);
    auto eo = estOptions(options, hls::SharingMode::Dataflow);

    // Loop-order optimization: apply the leading statement's preferred
    // interchange uniformly to every statement of the nest. Without
    // split-interchange-merge, conflicting statements lose out (the
    // paper's BICG discussion, Fig. 2(d)).
    {
        DependenceGraph graph(stmts);
        std::map<std::int64_t, Hint> nest_hint;
        for (size_t i = 0; i < stmts.size(); ++i) {
            std::int64_t nest = stmts[i].sched.betas[0];
            if (nest_hint.count(nest))
                continue;
            Hint h = graph.suggest(i);
            if (h.kind == Hint::Kind::Interchange)
                nest_hint[nest] = h;
        }
        for (size_t i = 0; i < stmts.size(); ++i) {
            auto it = nest_hint.find(stmts[i].sched.betas[0]);
            if (it == nest_hint.end())
                continue;
            const Hint &h = it->second;
            if (h.toLevel < stmts[i].numDims() &&
                h.fromLevel < stmts[i].numDims()) {
                transform::interchange(
                    stmts[i], stmts[i].sched.domain.dimName(h.fromLevel),
                    stmts[i].sched.domain.dimName(h.toLevel));
            }
        }
    }

    BaselineResult result;

    // Bounded design space: at very large problem sizes the search
    // degrades to basic pipelining (the Fig. 12 cliff).
    if (maxTrip(stmts) >= options.scaleHlsSizeCliff) {
        for (auto &s : stmts) {
            transform::setPipeline(
                s, s.sched.domain.dimName(s.numDims() - 1), 1);
        }
        for (const dsl::Placeholder *p : func.placeholders())
            func.findPlaceholderMut(p->name())->clearPartition();
        result.design = lower::lowerStmts(func, std::move(stmts));
        result.report = hls::estimate(func, result.design, eo);
        result.seconds = elapsedSince(t0);
        result.notes = "design space too large; basic pipelining only";
        return result;
    }

    // Greedy per-nest optimization in program order, without bottleneck
    // switching: each nest maximizes its own parallelism against the
    // remaining budget (dataflow accounting: resources accumulate).
    std::map<std::int64_t, std::vector<size_t>> nests;
    for (size_t i = 0; i < stmts.size(); ++i)
        nests[stmts[i].sched.betas[0]].push_back(i);

    std::map<std::int64_t, std::int64_t> degree;
    for (const auto &[nest, members] : nests)
        degree[nest] = 1;

    auto sharedDepth = [](const std::vector<PolyStmt> &all,
                          const std::vector<size_t> &members) {
        size_t depth = SIZE_MAX;
        const auto &first = all[members[0]].sched.betas;
        for (size_t m = 1; m < members.size(); ++m) {
            const auto &other = all[members[m]].sched.betas;
            size_t common = 0;
            size_t limit = std::min(first.size(), other.size());
            while (common < limit && first[common] == other[common])
                ++common;
            depth = std::min(depth, common);
        }
        return depth == SIZE_MAX ? size_t(0) : depth;
    };
    auto anyProducer = [](const std::vector<PolyStmt> &all,
                          const std::vector<size_t> &members) {
        for (size_t a : members) {
            for (size_t b : members) {
                if (a != b && poly::producesFor(all[a].accesses,
                                                all[b].accesses)) {
                    return true;
                }
            }
        }
        return false;
    };

    // ScaleHLS's directive DSE explores tile/unroll factors; model it by
    // trying both the dependence-aware placement and the positional
    // (dependence-oblivious) one and keeping whichever synthesizes
    // better. What it structurally lacks -- split-interchange-merge and
    // skewing -- stays unavailable, so statements in a conflicted nest
    // (BICG) end up with the dependence-oblivious variant only.
    auto evaluateVariant = [&](const std::vector<PolyStmt> &snapshot,
                               bool ignore_carried) {
        std::vector<PolyStmt> base = snapshot;
        std::map<std::string, std::vector<std::int64_t>> partitions;
        for (const auto &[nest, members] : nests) {
            size_t min_level = 0;
            if (members.size() > 1 && anyProducer(base, members))
                min_level = sharedDepth(base, members);
            for (size_t m : members) {
                dse::applyParallelSchedule(base[m], degree[nest],
                                           options.innerUnrollCap, func,
                                           partitions, min_level,
                                           ignore_carried);
            }
        }
        dse::applyPartitions(func, partitions);
        BaselineResult r;
        r.design = lower::lowerStmts(func, std::move(base));
        r.report = hls::estimate(func, r.design, eo);
        return r;
    };
    auto evaluate = [&](const std::vector<PolyStmt> &snapshot) {
        std::optional<BaselineResult> best;
        for (bool oblivious : {false, true}) {
            try {
                BaselineResult r = evaluateVariant(snapshot, oblivious);
                if (!best ||
                    r.report.latencyCycles < best->report.latencyCycles) {
                    best = std::move(r);
                }
            } catch (const support::FatalError &) {
                // Divergent per-statement placement in a fused nest:
                // this variant is structurally unavailable to ScaleHLS.
            }
        }
        POM_ASSERT(best.has_value(), "no ScaleHLS variant lowered");
        return std::move(*best);
    };

    result = evaluate(stmts);
    for (auto &[nest, members] : nests) {
        while (degree[nest] * 2 <= options.maxParallelism) {
            std::int64_t saved = degree[nest];
            degree[nest] *= 2;
            BaselineResult trial = evaluate(stmts);
            if (!trial.report.resources.fitsIn(device) ||
                trial.report.latencyCycles >= result.report.latencyCycles) {
                degree[nest] = saved;
                break;
            }
            result = std::move(trial);
        }
    }
    // Re-materialize the chosen configuration (restores partitions).
    result = evaluate(stmts);
    result.seconds = elapsedSince(t0);
    result.notes = "interchange + greedy tile/unroll/partition DSE";
    return result;
}

BaselineResult
runPom(dsl::Function &func, const BaselineOptions &options)
{
    obs::Span span("driver.runPom", "driver");
    dse::DseOptions dopt;
    dopt.device = options.device;
    dopt.resourceFraction = options.resourceFraction;
    dopt.maxParallelism = options.maxParallelism;
    dopt.innerUnrollCap = options.innerUnrollCap;
    dopt.strategy = options.strategy;
    dopt.incrementalEstimate = options.incrementalEstimate;
    dopt.prune = options.prune;
    dopt.jobs = options.jobs;
    dse::DseResult dres = dse::autoDSE(func, dopt);

    BaselineResult result;
    result.design = std::move(dres.design);
    result.report = std::move(dres.report);
    result.seconds = dres.dseSeconds;
    result.notes = std::string("POM two-stage DSE, ") +
                   dse::strategyName(options.strategy) + " search";
    result.journal = std::move(dres.journal);
    result.frontierRounds = std::move(dres.frontierRounds);
    return result;
}

} // namespace pom::baselines
