/**
 * @file
 * Strategy re-implementations of the frameworks POM is compared against
 * (paper §II.C, §VII). Each baseline runs on the same substrate (DSL ->
 * polyhedral IR -> affine dialect -> synthesis estimator) but applies
 * the optimization strategy the paper attributes to it:
 *
 *  - Unoptimized: the input program as-is (the speedup denominator).
 *  - Pluto-like: CPU-oriented polyhedral scheduling -- locality tiling
 *    of the loop nest, no FPGA directives at all.
 *  - POLSCA-like: the Pluto schedule plus HLS pipelining of the
 *    innermost loop, but no dependence-aware restructuring and no array
 *    partitioning for large arrays (the paper's §VII.B observations).
 *  - ScaleHLS-like: loop-order optimization (interchange) applied
 *    uniformly to a nest plus a greedy tile/unroll/partition DSE --
 *    but no split-interchange-merge, no skewing, no bottleneck
 *    switching, dataflow-style (unshared) resources between nests, and
 *    a bounded design space that degrades to pipeline-only at very
 *    large problem sizes (Fig. 12's observed cliff at 8192).
 */

#ifndef POM_BASELINES_BASELINES_H
#define POM_BASELINES_BASELINES_H

#include <string>

#include "dse/dse.h"
#include "dsl/dsl.h"
#include "hls/estimator.h"
#include "lower/lower.h"

namespace pom::baselines {

/** Outcome of running one baseline strategy. */
struct BaselineResult
{
    lower::LoweredFunction design;
    hls::SynthesisReport report;
    double seconds = 0.0;
    std::string notes;

    /** POM only: the DSE journal (empty for the other baselines). */
    std::vector<obs::JournalEntry> journal;

    /** POM only: per-round Pareto frontier snapshots (journal v2). */
    std::vector<obs::FrontierRound> frontierRounds;
};

/** Common configuration for all baselines. */
struct BaselineOptions
{
    hls::Device device = hls::Device::xc7z020();
    double resourceFraction = 1.0;
    std::int64_t plutoTileSize = 32;
    std::int64_t maxParallelism = 64;
    std::int64_t innerUnrollCap = 16;

    /** Problem size beyond which the ScaleHLS-like DSE degrades. */
    std::int64_t scaleHlsSizeCliff = 8192;

    /** Stage-2 search driver of the POM DSE (`pomc --strategy`). */
    dse::StrategyKind strategy = dse::StrategyKind::Greedy;

    /** Incremental per-node estimation (`pomc --incremental-estimate`). */
    bool incrementalEstimate = true;

    /** Admissible-bound pruning (`pomc --dse-prune`). */
    bool prune = false;

    /** POM DSE worker threads; 0 = support::jobs(). Lets a daemon
     *  request run with fewer workers than the process default. */
    int jobs = 0;
};

/** The input program without any optimization. */
BaselineResult runUnoptimized(dsl::Function &func,
                              const BaselineOptions &options = {});

/** Pluto-like locality tiling, no FPGA directives. */
BaselineResult runPlutoLike(dsl::Function &func,
                            const BaselineOptions &options = {});

/** POLSCA-like: Pluto tiling + innermost pipelining, no partitioning. */
BaselineResult runPolscaLike(dsl::Function &func,
                             const BaselineOptions &options = {});

/** ScaleHLS-like: interchange + greedy tile/unroll/partition DSE. */
BaselineResult runScaleHlsLike(dsl::Function &func,
                               const BaselineOptions &options = {});

/** POM itself (wraps dse::autoDSE) for uniform comparison tables. */
BaselineResult runPom(dsl::Function &func,
                      const BaselineOptions &options = {});

} // namespace pom::baselines

#endif // POM_BASELINES_BASELINES_H
