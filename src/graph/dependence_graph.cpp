#include "graph/dependence_graph.h"

#include <algorithm>
#include <functional>
#include <sstream>

#include "support/diagnostics.h"

namespace pom::graph {

std::string
Hint::str() const
{
    switch (kind) {
      case Kind::None:
        return "no tight dependence";
      case Kind::Interchange:
        return "interchange level " + std::to_string(fromLevel) +
               " with innermost level " + std::to_string(toLevel);
      case Kind::Skew:
        return "skew to free the innermost level";
    }
    return "?";
}

DependenceGraph::DependenceGraph(
    const std::vector<transform::PolyStmt> &stmts)
{
    refresh(stmts);
}

void
DependenceGraph::refresh(const std::vector<transform::PolyStmt> &stmts)
{
    nodes_.clear();
    edges_.clear();
    for (size_t i = 0; i < stmts.size(); ++i) {
        NodeInfo node;
        node.index = i;
        node.stmt = &stmts[i];
        analyzeNode(node);
        nodes_.push_back(std::move(node));
    }
    // Coarse edges: a write in one compute feeding any access of a later
    // compute (program order; Fig. 8 steps 1-2 use the dependence map of
    // load/store sets).
    for (size_t i = 0; i < stmts.size(); ++i) {
        for (size_t j = i + 1; j < stmts.size(); ++j) {
            if (poly::producesFor(stmts[i].accesses, stmts[j].accesses))
                edges_.push_back(Edge{i, j});
        }
    }
}

void
DependenceGraph::analyzeNode(NodeInfo &node)
{
    node.selfDeps = transform::selfDependences(*node.stmt);
    size_t n = node.stmt->numDims();
    node.innermostCarried = false;
    node.reductionDims.clear();
    if (n == 0)
        return;

    std::vector<bool> carried(n, false);
    for (const auto &d : node.selfDeps) {
        carried[d.level] = true;
        if (d.level == n - 1)
            node.innermostCarried = true;
    }
    // Reduction dims: a level that carries dependences whose distance is
    // zero in every other dimension (Fig. 8 step 3: GEMM's k has
    // distance vector (0, 0, 1)).
    for (size_t l = 0; l < n; ++l) {
        if (!carried[l])
            continue;
        bool pure = !node.selfDeps.empty();
        for (const auto &d : node.selfDeps) {
            if (d.level != l) {
                pure = false;
                break;
            }
            for (size_t k = 0; k < n; ++k) {
                if (k == l)
                    continue;
                if (!d.distLo[k] || !d.distHi[k] || *d.distLo[k] != 0 ||
                    *d.distHi[k] != 0) {
                    pure = false;
                    break;
                }
            }
        }
        if (pure)
            node.reductionDims.push_back(l);
    }
}

std::vector<std::vector<size_t>>
DependenceGraph::collectPaths() const
{
    std::vector<std::vector<size_t>> adj(nodes_.size());
    std::vector<int> in_degree(nodes_.size(), 0);
    std::vector<bool> has_out(nodes_.size(), false);
    for (const auto &e : edges_) {
        adj[e.from].push_back(e.to);
        ++in_degree[e.to];
        has_out[e.from] = true;
    }

    std::vector<std::vector<size_t>> paths;
    std::vector<size_t> current;
    std::function<void(size_t)> dfs = [&](size_t node) {
        current.push_back(node);
        if (adj[node].empty()) {
            paths.push_back(current);
        } else {
            for (size_t next : adj[node])
                dfs(next);
        }
        current.pop_back();
    };
    for (size_t i = 0; i < nodes_.size(); ++i) {
        if (in_degree[i] == 0)
            dfs(i);
    }
    return paths;
}

bool
DependenceGraph::interchangeIsLegal(size_t index, size_t a, size_t b) const
{
    const NodeInfo &node = nodes_.at(index);
    size_t n = node.stmt->numDims();
    POM_ASSERT(a < n && b < n, "interchange level out of range");
    std::vector<size_t> order(n);
    for (size_t i = 0; i < n; ++i)
        order[i] = i;
    std::swap(order[a], order[b]);

    for (const auto &d : node.selfDeps) {
        // The permuted distance vector must stay lexicographically
        // positive. Unknown entries are conservatively illegal unless a
        // strictly positive entry precedes them.
        bool decided = false;
        for (size_t pos = 0; pos < n && !decided; ++pos) {
            size_t k = order[pos];
            if (d.distLo[k] && *d.distLo[k] > 0) {
                decided = true; // strictly positive first -> legal dep
            } else if (d.distLo[k] && d.distHi[k] && *d.distLo[k] == 0 &&
                       *d.distHi[k] == 0) {
                continue; // zero: look further
            } else {
                return false; // could be negative first -> illegal
            }
        }
        // All-zero would be a loop-independent dep; it cannot be carried,
        // so reaching here without decision means distances were zero.
    }
    return true;
}

namespace {

/**
 * Level carrying a dependence after permuting its distance vector, or
 * the dimension count when the carrying level cannot be proven to move
 * off the innermost position (unknown signs are conservative).
 */
size_t
carriedLevelAfterPerm(const poly::Dependence &dep,
                      const std::vector<size_t> &order)
{
    size_t n = order.size();
    for (size_t pos = 0; pos < n; ++pos) {
        size_t k = order[pos];
        if (dep.distLo[k] && *dep.distLo[k] > 0)
            return pos;
        if (dep.distLo[k] && dep.distHi[k] && *dep.distLo[k] == 0 &&
            *dep.distHi[k] == 0) {
            continue;
        }
        return n; // unknown sign: assume the worst
    }
    return n;
}

} // namespace

Hint
DependenceGraph::suggest(size_t index) const
{
    const NodeInfo &node = nodes_.at(index);
    size_t n = node.stmt->numDims();
    Hint hint;
    if (!node.innermostCarried || n < 2)
        return hint;

    std::vector<bool> carried(n, false);
    for (const auto &d : node.selfDeps)
        carried[d.level] = true;

    // Step 1: a dependence-free outer level that can legally move
    // innermost (the Fig. 8 guidance for GEMM-style reductions).
    for (size_t l = 0; l < n - 1; ++l) {
        if (carried[l])
            continue;
        if (interchangeIsLegal(index, l, n - 1)) {
            hint.kind = Hint::Kind::Interchange;
            hint.fromLevel = l;
            hint.toLevel = n - 1;
            return hint;
        }
    }

    // Step 2: no free level; an interchange may still pull every
    // dependence off the innermost position (this is what makes a
    // skewed Seidel nest converge: skew first, then interchange).
    for (size_t l = 0; l + 1 < n; ++l) {
        if (!interchangeIsLegal(index, l, n - 1))
            continue;
        std::vector<size_t> order(n);
        for (size_t i = 0; i < n; ++i)
            order[i] = i;
        std::swap(order[l], order[n - 1]);
        bool frees_innermost = true;
        for (const auto &d : node.selfDeps) {
            if (carriedLevelAfterPerm(d, order) >= n - 1) {
                frees_innermost = false;
                break;
            }
        }
        if (frees_innermost) {
            hint.kind = Hint::Kind::Interchange;
            hint.fromLevel = l;
            hint.toLevel = n - 1;
            return hint;
        }
    }

    // If some level is dependence-free, stage 2 can still extract
    // parallelism there (unroll the free level, pipeline above the
    // reduction suffix, e.g. convolutions) -- no restructuring needed.
    for (size_t l = 0; l < n; ++l) {
        if (!carried[l])
            return hint; // Kind::None
    }

    // Step 3: every level carries a dependence; restructure the
    // iteration space (paper §VI.A: "leverage other transformations such
    // as loop splitting and loop skewing").
    hint.kind = Hint::Kind::Skew;
    return hint;
}

std::string
DependenceGraph::str() const
{
    std::ostringstream os;
    os << "dependence graph: " << nodes_.size() << " nodes, "
       << edges_.size() << " edges\n";
    for (const auto &node : nodes_) {
        os << "  [" << node.index << "] " << node.stmt->sched.name;
        if (!node.reductionDims.empty()) {
            os << " reduction_dims=";
            for (size_t d : node.reductionDims)
                os << d << " ";
        }
        if (node.innermostCarried)
            os << " (innermost carried)";
        os << "\n";
        for (const auto &d : node.selfDeps)
            os << "    dep " << d.str() << "\n";
    }
    for (const auto &e : edges_) {
        os << "  edge " << nodes_[e.from].stmt->sched.name << " -> "
           << nodes_[e.to].stmt->sched.name << "\n";
    }
    return os.str();
}

} // namespace pom::graph
