/**
 * @file
 * The dependence graph IR (paper §V.A, Fig. 8): the first IR layer.
 * Nodes are computes (nested loops); edges are coarse-grained
 * producer/consumer relations extracted from load/store sets. On top of
 * the graph, fine-grained analysis computes per-node loop-carried
 * dependences (distance/direction vectors, reduction dimensions) and
 * derives transformation hints ("loop-carried dependence in node S4 can
 * be alleviated using loop interchange") that drive DSE stage 1.
 */

#ifndef POM_GRAPH_DEPENDENCE_GRAPH_H
#define POM_GRAPH_DEPENDENCE_GRAPH_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "poly/dependence.h"
#include "transform/poly_stmt.h"

namespace pom::graph {

/** A transformation hint produced by fine-grained analysis. */
struct Hint
{
    enum class Kind
    {
        None,               ///< no tight loop-carried dependence
        Interchange,        ///< move a dependence-free level innermost
        Skew,               ///< no free level: skew to create one
    };

    Kind kind = Kind::None;

    /** For Interchange: the level to move innermost. */
    size_t fromLevel = 0;

    /** For Interchange: the (innermost) level it replaces. */
    size_t toLevel = 0;

    std::string str() const;
};

/** Per-node analysis results. */
struct NodeInfo
{
    size_t index = 0;
    const transform::PolyStmt *stmt = nullptr;

    /** Loop-carried self dependences, in the transformed loop order. */
    std::vector<poly::Dependence> selfDeps;

    /**
     * Dimensions that act as reductions: every dependence distance is
     * zero except at this level (e.g. k in GEMM, Fig. 8 step 3).
     */
    std::vector<size_t> reductionDims;

    /** True if some dependence is carried at the innermost level. */
    bool innermostCarried = false;
};

/** One coarse dependence edge (producer -> consumer). */
struct Edge
{
    size_t from = 0;
    size_t to = 0;
};

/** The dependence graph over a function's polyhedral statements. */
class DependenceGraph
{
  public:
    /**
     * Build the graph: coarse edges from access sets, fine-grained
     * analysis per node.
     */
    explicit DependenceGraph(const std::vector<transform::PolyStmt> &stmts);

    const std::vector<NodeInfo> &nodes() const { return nodes_; }
    const std::vector<Edge> &edges() const { return edges_; }

    /** Recompute fine-grained info after transformations. */
    void refresh(const std::vector<transform::PolyStmt> &stmts);

    /**
     * All data paths source->sink via DFS (paper Fig. 8 step 4), as
     * node-index sequences. Isolated nodes form singleton paths.
     */
    std::vector<std::vector<size_t>> collectPaths() const;

    /**
     * Suggest a transformation for node @p index that relieves its tight
     * loop-carried dependence, if any (paper §VI.A).
     */
    Hint suggest(size_t index) const;

    /**
     * Would interchanging levels @p a and @p b of node @p index keep all
     * dependences lexicographically positive? Conservative: unknown
     * distance signs count as illegal.
     */
    bool interchangeIsLegal(size_t index, size_t a, size_t b) const;

    /** Render nodes, edges and per-node dependences. */
    std::string str() const;

  private:
    void analyzeNode(NodeInfo &node);

    std::vector<NodeInfo> nodes_;
    std::vector<Edge> edges_;
};

} // namespace pom::graph

#endif // POM_GRAPH_DEPENDENCE_GRAPH_H
