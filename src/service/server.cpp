#include "service/server.h"

#include <chrono>
#include <exception>
#include <thread>

#include "baselines/baselines.h"
#include "dse/strategy.h"
#include "emit/hls_emitter.h"
#include "hls/node_cache.h"
#include "ir/parser.h"
#include "lower/lower.h"
#include "obs/journal.h"
#include "obs/obs.h"
#include "pass/pass_manager.h"
#include "pass/pipeline_cache.h"
#include "support/diagnostics.h"
#include "support/version.h"
#include "workloads/workloads.h"

namespace pom::service {

namespace {

/** The daemon's request-latency histograms (metrics-JSON names). */
constexpr const char *kQueueWaitHistogram = "pomd.queue_wait_ms";
constexpr const char *kServiceHistogram = "pomd.service_ms";

HistogramWire
toWire(const obs::HistogramSummary &s)
{
    HistogramWire w;
    w.count = static_cast<std::int64_t>(s.count);
    w.sum = s.sum;
    w.p50 = s.p50;
    w.p90 = s.p90;
    w.p99 = s.p99;
    w.max = s.max;
    return w;
}

double
millisSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

Server::Server(ServerOptions options) : opt_(std::move(options))
{
    if (opt_.workers < 1)
        opt_.workers = 1;
    if (opt_.queueLimit < 1)
        opt_.queueLimit = 1;
    // start() re-pins this after the (possibly slow) cache warm-load;
    // pinning here keeps uptime sane for socket-less test drivers.
    startTime_ = std::chrono::steady_clock::now();
}

Server::~Server()
{
    stop();
    // ThreadPool's destructor drains queued requests, then joins; only
    // after that is the final spill consistent.
    executors_.reset();
    saveCache();
    if (listener_.valid()) {
        listener_.reset();
        ::unlink(opt_.socketPath.c_str());
    }
}

bool
Server::start(std::string &error)
{
    lower::registerLoweringPasses();
    // Apply the cap before the warm-load so an oversized spill is
    // trimmed (FIFO) on the way in rather than held until first use.
    hls::EstimatorCache::global().setCapacity(opt_.estimatorCacheCap);
    hls::NodeReportCache::global().setCapacity(opt_.estimatorCacheCap);
    if (!opt_.cacheDir.empty() &&
        !hls::EstimatorCache::global().loadDir(opt_.cacheDir,
                                               load_stats_, error)) {
        return false;
    }
    // The per-node report cache spills beside the estimator cache
    // (nodes.index / nodes/ in the same directory).
    if (!opt_.cacheDir.empty() &&
        !hls::NodeReportCache::global().loadDir(
            opt_.cacheDir, node_load_stats_, error)) {
        return false;
    }
    // The daemon always keeps the in-memory pipeline cache on: reusing
    // lowered pipelines between requests is why one runs a daemon.
    pass::setPipelineCacheEnabled(true);
    if (!opt_.pipelineCacheDir.empty() &&
        !pass::PipelineCache::global().loadDir(
            opt_.pipelineCacheDir, pipeline_load_stats_, error)) {
        return false;
    }
    listener_ = support::listenUnix(opt_.socketPath, 64, error);
    if (!listener_.valid())
        return false;
    // Named executors: "pomd-exec-<i>" shows up in /proc and as
    // Chrome-trace thread_name metadata, so concurrent request traces
    // are attributable per lane.
    executors_ = std::make_unique<support::ThreadPool>(opt_.workers,
                                                       "pomd-exec");
    startTime_ = std::chrono::steady_clock::now();
    return true;
}

void
Server::run()
{
    while (!stopped()) {
        int ready = support::waitReadable(listener_, 200);
        if (ready < 0)
            break;
        if (ready == 0)
            continue;
        std::string error;
        auto conn = std::make_shared<support::Socket>(
            support::acceptConnection(listener_, error));
        if (!conn->valid()) {
            if (!stopped()) {
                support::diag(support::DiagLevel::Warning,
                              "pomd: " + error);
            }
            continue;
        }
        dispatch(std::move(conn));
    }
}

void
Server::dispatch(std::shared_ptr<support::Socket> connection)
{
    // A request frame is one small JSON document; a peer that cannot
    // produce it within the timeout is dropped rather than allowed to
    // stall the accept loop.
    support::setRecvTimeout(*connection, 10000);
    std::string payload, error;
    if (!support::recvFrame(*connection, payload, kMaxFrameBytes,
                            error)) {
        support::diag(support::DiagLevel::Warning,
                      "pomd: dropping connection: " + error);
        return;
    }

    auto reply = [connection](const Response &response) {
        std::string send_error;
        if (!support::sendFrame(*connection,
                                encodeResponse(response), send_error)) {
            support::diag(support::DiagLevel::Warning,
                          "pomd: cannot reply: " + send_error);
        }
    };

    Request request;
    if (!decodeRequest(payload, request, error)) {
        Response bad;
        bad.status = "error";
        bad.error = "malformed request: " + error;
        reply(bad);
        return;
    }

    // Every socket-served request gets the next monotonic ID; it is
    // stamped into the response frame, spans, diagnostics and (for
    // compiles) the journal header.
    std::int64_t requestId =
        nextRequestId_.fetch_add(1, std::memory_order_relaxed) + 1;

    // Cheap control methods never queue: a full daemon must still
    // answer pings, stats probes and the shutdown request.
    if (request.method != "compile" && request.method != "opt" &&
        request.method != "sleep") {
        reply(execute(request, requestId));
        return;
    }

    // Bounded queue with explicit backpressure: admission is a single
    // compare-and-bump, so a flood costs one frame parse + one small
    // "busy" frame per rejected request.
    int depth = pending_.load(std::memory_order_relaxed);
    do {
        if (depth >= opt_.queueLimit) {
            Response busy;
            busy.status = "busy";
            busy.retryAfterMs = opt_.retryAfterMs;
            reply(busy);
            return;
        }
    } while (!pending_.compare_exchange_weak(
        depth, depth + 1, std::memory_order_relaxed));

    // Track the queue-depth high-water mark for the stats frame.
    int newDepth = depth + 1;
    int hwm = pendingMax_.load(std::memory_order_relaxed);
    while (newDepth > hwm &&
           !pendingMax_.compare_exchange_weak(
               hwm, newDepth, std::memory_order_relaxed)) {
    }

    auto enqueued = std::chrono::steady_clock::now();
    executors_->submit(
        [this, connection, request, reply, requestId, enqueued]() {
            obs::histogramRecord(kQueueWaitHistogram,
                                 millisSince(enqueued));
            auto begin = std::chrono::steady_clock::now();
            Response response = execute(request, requestId);
            obs::histogramRecord(kServiceHistogram, millisSince(begin));
            reply(response);
            pending_.fetch_sub(1, std::memory_order_relaxed);
        });
}

Response
Server::execute(const Request &request, std::int64_t requestId)
{
    // Tag this thread for the request's lifetime: spans opened during
    // the compile and any diagnostics it emits carry `[req N]`.
    support::RequestIdScope requestScope(requestId);
    obs::Span span("service." + request.method, "service");
    Response response;
    response.requestId = requestId;
    if (request.version != support::kVersionString) {
        response.status = "error";
        response.error = "version mismatch: client '" +
                         request.version + "', daemon '" +
                         support::kVersionString +
                         "' -- upgrade the older side";
        return response;
    }

    try {
        if (request.method == "ping") {
            // The version field already says everything a probe needs.
        } else if (request.method == "stats") {
            response = statsResponse();
        } else if (request.method == "compile") {
            response = compileResponse(request, requestId);
        } else if (request.method == "opt") {
            response = optResponse(request);
        } else if (request.method == "shutdown") {
            stop();
        } else if (request.method == "sleep") {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(request.size));
        } else {
            response.status = "error";
            response.error =
                "unknown method '" + request.method +
                "' (valid: ping, stats, compile, opt, shutdown)";
        }
    } catch (const support::FatalError &e) {
        response = Response();
        response.status = "error";
        response.error = e.what();
    } catch (const std::exception &e) {
        response = Response();
        response.status = "error";
        response.error = std::string("internal error: ") + e.what();
    }
    response.requestId = requestId;
    if (response.status == "ok")
        served_.fetch_add(1, std::memory_order_relaxed);
    return response;
}

Response
Server::compileResponse(const Request &request, std::int64_t requestId)
{
    Response response;
    if (!workloads::isKnown(request.workload)) {
        response.status = "error";
        response.error =
            "unknown workload '" + request.workload + "'";
        return response;
    }
    if (request.size <= 0) {
        response.status = "error";
        response.error = "size must be positive";
        return response;
    }
    if (request.resourceFraction <= 0.0 ||
        request.resourceFraction > 1.0) {
        response.status = "error";
        response.error = "resources must be a fraction in (0, 1]";
        return response;
    }
    if (request.journal != "none" && request.journal != "v1" &&
        request.journal != "v2") {
        response.status = "error";
        response.error = "journal must be none, v1 or v2";
        return response;
    }
    if (request.journal != "none" && request.framework != "pom") {
        response.status = "error";
        response.error = "a DSE journal requires framework 'pom'";
        return response;
    }

    baselines::BaselineOptions options;
    options.resourceFraction = request.resourceFraction;
    if (!dse::parseStrategy(request.strategy, options.strategy)) {
        response.status = "error";
        response.error = "unknown strategy '" + request.strategy +
                         "' (valid: " + dse::strategyNames() + ")";
        return response;
    }
    if (request.jobs < 0) {
        response.status = "error";
        response.error = "jobs must be non-negative (0 = daemon "
                         "default)";
        return response;
    }
    if (request.jobs > opt_.workers) {
        response.status = "error";
        response.error =
            "jobs " + std::to_string(request.jobs) +
            " exceeds the daemon's --workers pool (" +
            std::to_string(opt_.workers) +
            "); request at most " + std::to_string(opt_.workers) +
            " or restart the daemon with more workers";
        return response;
    }
    options.jobs = static_cast<int>(request.jobs);

    // Snapshot-delta around the run: the estimator cache is process
    // global, so concurrent requests would otherwise alias each other's
    // hit/miss counters in their response frames.
    auto &cache = hls::EstimatorCache::global();
    std::uint64_t hits0 = cache.hits();
    std::uint64_t misses0 = cache.misses();
    auto &pipeline = pass::PipelineCache::global();
    std::uint64_t phits0 = pipeline.hits();
    std::uint64_t pmisses0 = pipeline.misses();

    auto workload =
        workloads::makeByName(request.workload, request.size);
    baselines::BaselineResult result;
    if (request.framework == "pom") {
        result = baselines::runPom(workload->func(), options);
    } else if (request.framework == "scalehls") {
        result = baselines::runScaleHlsLike(workload->func(), options);
    } else if (request.framework == "polsca") {
        result = baselines::runPolscaLike(workload->func(), options);
    } else if (request.framework == "pluto") {
        result = baselines::runPlutoLike(workload->func(), options);
    } else if (request.framework == "none") {
        result = baselines::runUnoptimized(workload->func(), options);
    } else {
        response.status = "error";
        response.error =
            "unknown framework '" + request.framework +
            "' (valid: pom, scalehls, polsca, pluto, none)";
        return response;
    }

    auto device =
        hls::Device::xc7z020().scaled(request.resourceFraction);
    response.reportLine = result.report.str(device);
    response.notes = result.notes;
    response.seconds = result.seconds;
    response.latencyCycles = result.report.latencyCycles;
    response.dsp = result.report.resources.dsp;
    response.bramBits = result.report.resources.bramBits;
    response.lut = result.report.resources.lut;
    response.ff = result.report.resources.ff;
    response.cacheHits = static_cast<std::int64_t>(cache.hits() - hits0);
    response.cacheMisses =
        static_cast<std::int64_t>(cache.misses() - misses0);
    response.pipelineCacheHits =
        static_cast<std::int64_t>(pipeline.hits() - phits0);
    response.pipelineCacheMisses =
        static_cast<std::int64_t>(pipeline.misses() - pmisses0);
    // requestId 0 = unattributed (direct execute / one-shot parity):
    // pass -1 so the journal header stays byte-identical to `pomc`.
    std::int64_t journalId = requestId > 0 ? requestId : -1;
    if (request.journal == "v1") {
        response.journalText = obs::journalJson(result.journal, journalId);
    } else if (request.journal == "v2") {
        response.journalText = obs::journalJsonV2(
            result.journal, result.frontierRounds, journalId);
    }
    if (request.emit)
        response.hlsC = emit::emitHlsC(*result.design.func);

    saveCache();
    return response;
}

Response
Server::optResponse(const Request &request)
{
    Response response;
    auto begin = std::chrono::steady_clock::now();
    auto &pipeline = pass::PipelineCache::global();
    std::uint64_t phits0 = pipeline.hits();
    std::uint64_t pmisses0 = pipeline.misses();
    pass::PipelineState state;
    state.func = ir::parseIr(request.ir);
    pass::PassManager manager;
    if (!request.pipeline.empty())
        manager.addPipeline(request.pipeline);
    manager.run(state);
    response.irOut = state.func ? state.func->str() : "";
    response.pipelineCacheHits =
        static_cast<std::int64_t>(pipeline.hits() - phits0);
    response.pipelineCacheMisses =
        static_cast<std::int64_t>(pipeline.misses() - pmisses0);
    response.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      begin)
            .count();
    return response;
}

Response
Server::statsResponse()
{
    Response response;
    response.statsFrame = true;
    auto &cache = hls::EstimatorCache::global();
    response.requestsServed =
        static_cast<std::int64_t>(served_.load());
    response.cacheHits = static_cast<std::int64_t>(cache.hits());
    response.cacheMisses = static_cast<std::int64_t>(cache.misses());
    response.cacheSize = static_cast<std::int64_t>(cache.size());
    response.cacheLoaded =
        static_cast<std::int64_t>(load_stats_.loaded);
    auto &pipeline = pass::PipelineCache::global();
    response.pipelineCacheHits =
        static_cast<std::int64_t>(pipeline.hits());
    response.pipelineCacheMisses =
        static_cast<std::int64_t>(pipeline.misses());
    response.pipelineCacheSize =
        static_cast<std::int64_t>(pipeline.size());
    response.pipelineCacheLoaded =
        static_cast<std::int64_t>(pipeline_load_stats_.loaded);
    std::int64_t pprobes =
        response.pipelineCacheHits + response.pipelineCacheMisses;
    response.pipelineCacheHitRate =
        pprobes > 0
            ? static_cast<double>(response.pipelineCacheHits) /
                  static_cast<double>(pprobes)
            : 0.0;
    auto &nodes = hls::NodeReportCache::global();
    response.nodeCacheHits = static_cast<std::int64_t>(nodes.hits());
    response.nodeCacheMisses =
        static_cast<std::int64_t>(nodes.misses());
    response.nodeCacheSize = static_cast<std::int64_t>(nodes.size());
    response.nodeCacheLoaded =
        static_cast<std::int64_t>(node_load_stats_.loaded);
    std::int64_t nprobes =
        response.nodeCacheHits + response.nodeCacheMisses;
    response.nodeCacheHitRate =
        nprobes > 0
            ? static_cast<double>(response.nodeCacheHits) /
                  static_cast<double>(nprobes)
            : 0.0;
    response.cacheEvictions =
        static_cast<std::int64_t>(cache.evictions());
    response.nodeCacheEvictions =
        static_cast<std::int64_t>(nodes.evictions());
    response.queueDepth = pending_.load(std::memory_order_relaxed);
    response.queueDepthMax =
        pendingMax_.load(std::memory_order_relaxed);
    response.uptimeSeconds = millisSince(startTime_) / 1e3;
    std::int64_t probes = response.cacheHits + response.cacheMisses;
    response.cacheHitRate =
        probes > 0 ? static_cast<double>(response.cacheHits) /
                         static_cast<double>(probes)
                   : 0.0;
    response.queueWaitMs =
        toWire(obs::histogramSnapshot(kQueueWaitHistogram).summary());
    response.serviceMs =
        toWire(obs::histogramSnapshot(kServiceHistogram).summary());
    return response;
}

void
Server::saveCache()
{
    if (opt_.cacheDir.empty() && opt_.pipelineCacheDir.empty())
        return;
    std::lock_guard<std::mutex> lock(save_mutex_);
    std::string error;
    if (!opt_.cacheDir.empty()) {
        hls::SpillStats stats;
        if (!hls::EstimatorCache::global().saveDir(opt_.cacheDir,
                                                   stats, error)) {
            support::diag(support::DiagLevel::Warning,
                          "pomd: cache spill failed: " + error);
        }
        hls::SpillStats nstats;
        error.clear();
        if (!hls::NodeReportCache::global().saveDir(opt_.cacheDir,
                                                    nstats, error)) {
            support::diag(support::DiagLevel::Warning,
                          "pomd: node-cache spill failed: " + error);
        }
    }
    if (!opt_.pipelineCacheDir.empty()) {
        support::CacheSpillStats pstats;
        error.clear();
        if (!pass::PipelineCache::global().saveDir(
                opt_.pipelineCacheDir, pstats, error)) {
            support::diag(support::DiagLevel::Warning,
                          "pomd: pipeline-cache spill failed: " +
                              error);
        }
    }
}

} // namespace pom::service
