#include "service/client.h"

#include <chrono>
#include <thread>

#include "support/socket.h"

namespace pom::service {

bool
callDaemon(const std::string &socketPath, const Request &request,
           Response &response, std::string &error, int busyRetries)
{
    const std::string payload = encodeRequest(request);
    for (int attempt = 0;; ++attempt) {
        support::Socket conn =
            support::connectUnix(socketPath, error);
        if (!conn.valid())
            return false;
        if (!support::sendFrame(conn, payload, error))
            return false;
        std::string reply_text;
        if (!support::recvFrame(conn, reply_text, kMaxFrameBytes,
                                error)) {
            return false;
        }
        if (!decodeResponse(reply_text, response, error))
            return false;
        if (response.status != "busy")
            return true;
        if (attempt >= busyRetries) {
            error = "daemon stayed busy after " +
                    std::to_string(busyRetries) + " retries";
            return false;
        }
        int wait_ms =
            response.retryAfterMs > 0 ? response.retryAfterMs : 100;
        std::this_thread::sleep_for(
            std::chrono::milliseconds(wait_ms));
    }
}

} // namespace pom::service
