#include "service/protocol.h"

#include <cstdio>
#include <sstream>

#include "support/json.h"
#include "support/version.h"

namespace pom::service {

namespace {

using support::jsonQuote;

void
field(std::ostringstream &os, bool &first, const std::string &key,
      const std::string &value)
{
    os << (first ? "" : ", ") << jsonQuote(key) << ": "
       << jsonQuote(value);
    first = false;
}

void
field(std::ostringstream &os, bool &first, const std::string &key,
      std::int64_t value)
{
    os << (first ? "" : ", ") << jsonQuote(key) << ": " << value;
    first = false;
}

void
field(std::ostringstream &os, bool &first, const std::string &key,
      double value)
{
    // Round-trip-exact decimal form for the resource fraction.
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    os << (first ? "" : ", ") << jsonQuote(key) << ": " << buf;
    first = false;
}

void
field(std::ostringstream &os, bool &first, const std::string &key,
      bool value)
{
    os << (first ? "" : ", ") << jsonQuote(key) << ": "
       << (value ? "true" : "false");
    first = false;
}

void
histogramField(std::ostringstream &os, bool &first,
               const std::string &key, const HistogramWire &h)
{
    char buf[40];
    os << (first ? "" : ", ") << jsonQuote(key) << ": {";
    first = false;
    os << "\"count\": " << h.count;
    const std::pair<const char *, double> doubles[] = {
        {"sum", h.sum}, {"p50", h.p50}, {"p90", h.p90},
        {"p99", h.p99}, {"max", h.max}};
    for (const auto &[name, value] : doubles) {
        std::snprintf(buf, sizeof(buf), "%.17g", value);
        os << ", \"" << name << "\": " << buf;
    }
    os << "}";
}

void
decodeHistogram(const support::JsonValue &doc, HistogramWire &out)
{
    if (const auto *v = doc.find("count"))
        out.count = v->asInt();
    if (const auto *v = doc.find("sum"))
        out.sum = v->asDouble();
    if (const auto *v = doc.find("p50"))
        out.p50 = v->asDouble();
    if (const auto *v = doc.find("p90"))
        out.p90 = v->asDouble();
    if (const auto *v = doc.find("p99"))
        out.p99 = v->asDouble();
    if (const auto *v = doc.find("max"))
        out.max = v->asDouble();
}

} // namespace

std::string
encodeRequest(const Request &r)
{
    std::ostringstream os;
    bool first = true;
    os << "{";
    field(os, first, "pom", r.version.empty()
                                ? std::string(support::kVersionString)
                                : r.version);
    field(os, first, "protocol",
          std::string(support::kProtocolName));
    field(os, first, "method", r.method);
    if (r.method == "compile") {
        field(os, first, "workload", r.workload);
        field(os, first, "size", r.size);
        field(os, first, "framework", r.framework);
        field(os, first, "strategy", r.strategy);
        field(os, first, "resources", r.resourceFraction);
        field(os, first, "emit", r.emit);
        field(os, first, "journal", r.journal);
        // Only an explicit override goes on the wire; absence means
        // "use the daemon's --jobs", exactly like an older client.
        if (r.jobs != 0)
            field(os, first, "jobs", r.jobs);
    } else if (r.method == "opt") {
        field(os, first, "ir", r.ir);
        field(os, first, "pipeline", r.pipeline);
    } else if (r.method == "sleep") {
        field(os, first, "size", r.size);
    }
    os << "}";
    return os.str();
}

std::string
encodeResponse(const Response &r)
{
    std::ostringstream os;
    bool first = true;
    os << "{";
    field(os, first, "pom", r.version.empty()
                                ? std::string(support::kVersionString)
                                : r.version);
    field(os, first, "status", r.status);
    if (r.status == "error") {
        field(os, first, "error", r.error);
    } else if (r.status == "busy") {
        field(os, first, "retry_after_ms",
              static_cast<std::int64_t>(r.retryAfterMs));
    }
    if (!r.reportLine.empty()) {
        field(os, first, "report", r.reportLine);
        field(os, first, "notes", r.notes);
        field(os, first, "seconds", r.seconds);
        field(os, first, "latency_cycles",
              static_cast<std::int64_t>(r.latencyCycles));
        field(os, first, "dsp", r.dsp);
        field(os, first, "bram_bits", r.bramBits);
        field(os, first, "lut", r.lut);
        field(os, first, "ff", r.ff);
    }
    if (!r.journalText.empty())
        field(os, first, "journal", r.journalText);
    if (!r.hlsC.empty())
        field(os, first, "hls_c", r.hlsC);
    if (!r.irOut.empty())
        field(os, first, "ir", r.irOut);
    if (r.requestId > 0)
        field(os, first, "request", r.requestId);
    if (r.status == "ok") {
        // Per-request cache deltas on work frames; daemon totals on a
        // stats frame. The stats-only block below is what distinguishes
        // the two on the wire.
        field(os, first, "cache_hits", r.cacheHits);
        field(os, first, "cache_misses", r.cacheMisses);
        field(os, first, "pipeline_cache_hits", r.pipelineCacheHits);
        field(os, first, "pipeline_cache_misses",
              r.pipelineCacheMisses);
    }
    if (r.status == "ok" && r.statsFrame) {
        field(os, first, "requests_served", r.requestsServed);
        field(os, first, "cache_size", r.cacheSize);
        field(os, first, "cache_loaded", r.cacheLoaded);
        field(os, first, "queue_depth", r.queueDepth);
        field(os, first, "queue_depth_max", r.queueDepthMax);
        field(os, first, "uptime_seconds", r.uptimeSeconds);
        field(os, first, "cache_hit_rate", r.cacheHitRate);
        field(os, first, "pipeline_cache_size", r.pipelineCacheSize);
        field(os, first, "pipeline_cache_loaded",
              r.pipelineCacheLoaded);
        field(os, first, "pipeline_cache_hit_rate",
              r.pipelineCacheHitRate);
        field(os, first, "node_cache_hits", r.nodeCacheHits);
        field(os, first, "node_cache_misses", r.nodeCacheMisses);
        field(os, first, "node_cache_size", r.nodeCacheSize);
        field(os, first, "node_cache_loaded", r.nodeCacheLoaded);
        field(os, first, "node_cache_hit_rate", r.nodeCacheHitRate);
        field(os, first, "cache_evictions", r.cacheEvictions);
        field(os, first, "node_cache_evictions",
              r.nodeCacheEvictions);
        histogramField(os, first, "queue_wait_ms", r.queueWaitMs);
        histogramField(os, first, "service_ms", r.serviceMs);
    }
    os << "}";
    return os.str();
}

bool
decodeRequest(const std::string &text, Request &out, std::string &error)
{
    out = Request();
    support::JsonValue doc;
    if (!support::parseJson(text, doc, error))
        return false;
    if (!doc.isObject()) {
        error = "request is not a JSON object";
        return false;
    }
    if (const auto *v = doc.find("pom"))
        out.version = v->asString();
    if (const auto *v = doc.find("method"))
        out.method = v->asString();
    if (out.method.empty()) {
        error = "request has no method";
        return false;
    }
    if (const auto *v = doc.find("workload"))
        out.workload = v->asString();
    if (const auto *v = doc.find("size"))
        out.size = v->asInt(out.size);
    if (const auto *v = doc.find("framework"))
        out.framework = v->asString(out.framework);
    if (const auto *v = doc.find("strategy"))
        out.strategy = v->asString(out.strategy);
    if (const auto *v = doc.find("resources"))
        out.resourceFraction = v->asDouble(out.resourceFraction);
    if (const auto *v = doc.find("emit"))
        out.emit = v->asBool(out.emit);
    if (const auto *v = doc.find("journal"))
        out.journal = v->asString(out.journal);
    if (const auto *v = doc.find("jobs"))
        out.jobs = v->asInt(out.jobs);
    if (const auto *v = doc.find("ir"))
        out.ir = v->asString();
    if (const auto *v = doc.find("pipeline"))
        out.pipeline = v->asString();
    return true;
}

bool
decodeResponse(const std::string &text, Response &out,
               std::string &error)
{
    out = Response();
    out.status.clear(); // a frame must carry its status explicitly
    support::JsonValue doc;
    if (!support::parseJson(text, doc, error))
        return false;
    if (!doc.isObject()) {
        error = "response is not a JSON object";
        return false;
    }
    if (const auto *v = doc.find("pom"))
        out.version = v->asString();
    if (const auto *v = doc.find("status"))
        out.status = v->asString();
    if (out.status.empty()) {
        error = "response has no status";
        return false;
    }
    if (const auto *v = doc.find("error"))
        out.error = v->asString();
    if (const auto *v = doc.find("retry_after_ms"))
        out.retryAfterMs = static_cast<int>(v->asInt());
    if (const auto *v = doc.find("report"))
        out.reportLine = v->asString();
    if (const auto *v = doc.find("notes"))
        out.notes = v->asString();
    if (const auto *v = doc.find("seconds"))
        out.seconds = v->asDouble();
    if (const auto *v = doc.find("latency_cycles"))
        out.latencyCycles = static_cast<std::uint64_t>(v->asInt());
    if (const auto *v = doc.find("dsp"))
        out.dsp = v->asInt();
    if (const auto *v = doc.find("bram_bits"))
        out.bramBits = v->asInt();
    if (const auto *v = doc.find("lut"))
        out.lut = v->asInt();
    if (const auto *v = doc.find("ff"))
        out.ff = v->asInt();
    if (const auto *v = doc.find("journal"))
        out.journalText = v->asString();
    if (const auto *v = doc.find("hls_c"))
        out.hlsC = v->asString();
    if (const auto *v = doc.find("ir"))
        out.irOut = v->asString();
    if (const auto *v = doc.find("request"))
        out.requestId = v->asInt();
    if (const auto *v = doc.find("cache_hits"))
        out.cacheHits = v->asInt();
    if (const auto *v = doc.find("cache_misses"))
        out.cacheMisses = v->asInt();
    if (const auto *v = doc.find("pipeline_cache_hits"))
        out.pipelineCacheHits = v->asInt();
    if (const auto *v = doc.find("pipeline_cache_misses"))
        out.pipelineCacheMisses = v->asInt();
    if (const auto *v = doc.find("requests_served")) {
        out.statsFrame = true;
        out.requestsServed = v->asInt();
    }
    if (const auto *v = doc.find("cache_size"))
        out.cacheSize = v->asInt();
    if (const auto *v = doc.find("cache_loaded"))
        out.cacheLoaded = v->asInt();
    if (const auto *v = doc.find("queue_depth"))
        out.queueDepth = v->asInt();
    if (const auto *v = doc.find("queue_depth_max"))
        out.queueDepthMax = v->asInt();
    if (const auto *v = doc.find("uptime_seconds"))
        out.uptimeSeconds = v->asDouble();
    if (const auto *v = doc.find("cache_hit_rate"))
        out.cacheHitRate = v->asDouble();
    if (const auto *v = doc.find("pipeline_cache_size"))
        out.pipelineCacheSize = v->asInt();
    if (const auto *v = doc.find("pipeline_cache_loaded"))
        out.pipelineCacheLoaded = v->asInt();
    if (const auto *v = doc.find("pipeline_cache_hit_rate"))
        out.pipelineCacheHitRate = v->asDouble();
    if (const auto *v = doc.find("node_cache_hits"))
        out.nodeCacheHits = v->asInt();
    if (const auto *v = doc.find("node_cache_misses"))
        out.nodeCacheMisses = v->asInt();
    if (const auto *v = doc.find("node_cache_size"))
        out.nodeCacheSize = v->asInt();
    if (const auto *v = doc.find("node_cache_loaded"))
        out.nodeCacheLoaded = v->asInt();
    if (const auto *v = doc.find("node_cache_hit_rate"))
        out.nodeCacheHitRate = v->asDouble();
    if (const auto *v = doc.find("cache_evictions"))
        out.cacheEvictions = v->asInt();
    if (const auto *v = doc.find("node_cache_evictions"))
        out.nodeCacheEvictions = v->asInt();
    if (const auto *v = doc.find("queue_wait_ms"))
        decodeHistogram(*v, out.queueWaitMs);
    if (const auto *v = doc.find("service_ms"))
        decodeHistogram(*v, out.serviceMs);
    return true;
}

std::string
statsPrometheus(const Response &stats)
{
    std::ostringstream os;
    char buf[40];
    auto num = [&buf](double v) -> const char * {
        std::snprintf(buf, sizeof(buf), "%.17g", v);
        return buf;
    };
    auto scalar = [&os](const char *name, const char *type,
                        const char *help, const std::string &value) {
        os << "# HELP " << name << " " << help << "\n"
           << "# TYPE " << name << " " << type << "\n"
           << name << " " << value << "\n";
    };
    scalar("pomd_uptime_seconds", "gauge",
           "Seconds since the daemon started.",
           num(stats.uptimeSeconds));
    scalar("pomd_requests_served_total", "counter",
           "Requests executed to completion.",
           std::to_string(stats.requestsServed));
    scalar("pomd_estimator_cache_hits_total", "counter",
           "Estimator-cache hits across all requests.",
           std::to_string(stats.cacheHits));
    scalar("pomd_estimator_cache_misses_total", "counter",
           "Estimator-cache misses across all requests.",
           std::to_string(stats.cacheMisses));
    scalar("pomd_estimator_cache_hit_rate", "gauge",
           "hits / (hits + misses); 0 when idle.",
           num(stats.cacheHitRate));
    scalar("pomd_estimator_cache_entries", "gauge",
           "Entries currently in the estimator cache.",
           std::to_string(stats.cacheSize));
    scalar("pomd_estimator_cache_loaded_entries", "gauge",
           "Entries warm-loaded from the disk spill at start.",
           std::to_string(stats.cacheLoaded));
    scalar("pomd_pipeline_cache_hits_total", "counter",
           "Pipeline-cache hits across all requests.",
           std::to_string(stats.pipelineCacheHits));
    scalar("pomd_pipeline_cache_misses_total", "counter",
           "Pipeline-cache misses across all requests.",
           std::to_string(stats.pipelineCacheMisses));
    scalar("pomd_pipeline_cache_hit_rate", "gauge",
           "hits / (hits + misses); 0 when idle.",
           num(stats.pipelineCacheHitRate));
    scalar("pomd_pipeline_cache_entries", "gauge",
           "Entries currently in the pipeline cache.",
           std::to_string(stats.pipelineCacheSize));
    scalar("pomd_pipeline_cache_loaded_entries", "gauge",
           "Entries warm-loaded from the disk spill at start.",
           std::to_string(stats.pipelineCacheLoaded));
    scalar("pomd_node_cache_hits_total", "counter",
           "Per-node report cache hits across all requests.",
           std::to_string(stats.nodeCacheHits));
    scalar("pomd_node_cache_misses_total", "counter",
           "Per-node report cache misses across all requests.",
           std::to_string(stats.nodeCacheMisses));
    scalar("pomd_node_cache_hit_rate", "gauge",
           "hits / (hits + misses); 0 when idle.",
           num(stats.nodeCacheHitRate));
    scalar("pomd_node_cache_entries", "gauge",
           "Entries currently in the per-node report cache.",
           std::to_string(stats.nodeCacheSize));
    scalar("pomd_node_cache_loaded_entries", "gauge",
           "Entries warm-loaded from the disk spill at start.",
           std::to_string(stats.nodeCacheLoaded));
    scalar("pomd_estimator_cache_evictions_total", "counter",
           "Estimator-cache entries evicted by --estimator-cache-cap.",
           std::to_string(stats.cacheEvictions));
    scalar("pomd_node_cache_evictions_total", "counter",
           "Node-cache entries evicted by --estimator-cache-cap.",
           std::to_string(stats.nodeCacheEvictions));
    scalar("pomd_request_queue_depth", "gauge",
           "Requests queued or executing right now.",
           std::to_string(stats.queueDepth));
    scalar("pomd_request_queue_depth_max", "gauge",
           "High-water mark of the request queue since start.",
           std::to_string(stats.queueDepthMax));
    auto summary = [&os, &num](const char *name, const char *help,
                               const HistogramWire &h) {
        os << "# HELP " << name << " " << help << "\n"
           << "# TYPE " << name << " summary\n";
        os << name << "{quantile=\"0.5\"} " << num(h.p50) << "\n";
        os << name << "{quantile=\"0.9\"} " << num(h.p90) << "\n";
        os << name << "{quantile=\"0.99\"} " << num(h.p99) << "\n";
        os << name << "_sum " << num(h.sum) << "\n";
        os << name << "_count " << h.count << "\n";
    };
    summary("pomd_request_queue_wait_milliseconds",
            "Dispatch-to-execution-start wait per request.",
            stats.queueWaitMs);
    summary("pomd_request_service_milliseconds",
            "Execution-start-to-response-ready time per request.",
            stats.serviceMs);
    return os.str();
}

} // namespace pom::service
