#include "service/protocol.h"

#include <cstdio>
#include <sstream>

#include "support/json.h"
#include "support/version.h"

namespace pom::service {

namespace {

using support::jsonQuote;

void
field(std::ostringstream &os, bool &first, const std::string &key,
      const std::string &value)
{
    os << (first ? "" : ", ") << jsonQuote(key) << ": "
       << jsonQuote(value);
    first = false;
}

void
field(std::ostringstream &os, bool &first, const std::string &key,
      std::int64_t value)
{
    os << (first ? "" : ", ") << jsonQuote(key) << ": " << value;
    first = false;
}

void
field(std::ostringstream &os, bool &first, const std::string &key,
      double value)
{
    // Round-trip-exact decimal form for the resource fraction.
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    os << (first ? "" : ", ") << jsonQuote(key) << ": " << buf;
    first = false;
}

void
field(std::ostringstream &os, bool &first, const std::string &key,
      bool value)
{
    os << (first ? "" : ", ") << jsonQuote(key) << ": "
       << (value ? "true" : "false");
    first = false;
}

} // namespace

std::string
encodeRequest(const Request &r)
{
    std::ostringstream os;
    bool first = true;
    os << "{";
    field(os, first, "pom", r.version.empty()
                                ? std::string(support::kVersionString)
                                : r.version);
    field(os, first, "protocol",
          std::string(support::kProtocolName));
    field(os, first, "method", r.method);
    if (r.method == "compile") {
        field(os, first, "workload", r.workload);
        field(os, first, "size", r.size);
        field(os, first, "framework", r.framework);
        field(os, first, "strategy", r.strategy);
        field(os, first, "resources", r.resourceFraction);
        field(os, first, "emit", r.emit);
        field(os, first, "journal", r.journal);
    } else if (r.method == "opt") {
        field(os, first, "ir", r.ir);
        field(os, first, "pipeline", r.pipeline);
    } else if (r.method == "sleep") {
        field(os, first, "size", r.size);
    }
    os << "}";
    return os.str();
}

std::string
encodeResponse(const Response &r)
{
    std::ostringstream os;
    bool first = true;
    os << "{";
    field(os, first, "pom", r.version.empty()
                                ? std::string(support::kVersionString)
                                : r.version);
    field(os, first, "status", r.status);
    if (r.status == "error") {
        field(os, first, "error", r.error);
    } else if (r.status == "busy") {
        field(os, first, "retry_after_ms",
              static_cast<std::int64_t>(r.retryAfterMs));
    }
    if (!r.reportLine.empty()) {
        field(os, first, "report", r.reportLine);
        field(os, first, "notes", r.notes);
        field(os, first, "seconds", r.seconds);
        field(os, first, "latency_cycles",
              static_cast<std::int64_t>(r.latencyCycles));
        field(os, first, "dsp", r.dsp);
        field(os, first, "bram_bits", r.bramBits);
        field(os, first, "lut", r.lut);
        field(os, first, "ff", r.ff);
    }
    if (!r.journalText.empty())
        field(os, first, "journal", r.journalText);
    if (!r.hlsC.empty())
        field(os, first, "hls_c", r.hlsC);
    if (!r.irOut.empty())
        field(os, first, "ir", r.irOut);
    if (r.status == "ok") {
        field(os, first, "requests_served", r.requestsServed);
        field(os, first, "cache_hits", r.cacheHits);
        field(os, first, "cache_misses", r.cacheMisses);
        field(os, first, "cache_size", r.cacheSize);
        field(os, first, "cache_loaded", r.cacheLoaded);
        field(os, first, "queue_depth", r.queueDepth);
    }
    os << "}";
    return os.str();
}

bool
decodeRequest(const std::string &text, Request &out, std::string &error)
{
    out = Request();
    support::JsonValue doc;
    if (!support::parseJson(text, doc, error))
        return false;
    if (!doc.isObject()) {
        error = "request is not a JSON object";
        return false;
    }
    if (const auto *v = doc.find("pom"))
        out.version = v->asString();
    if (const auto *v = doc.find("method"))
        out.method = v->asString();
    if (out.method.empty()) {
        error = "request has no method";
        return false;
    }
    if (const auto *v = doc.find("workload"))
        out.workload = v->asString();
    if (const auto *v = doc.find("size"))
        out.size = v->asInt(out.size);
    if (const auto *v = doc.find("framework"))
        out.framework = v->asString(out.framework);
    if (const auto *v = doc.find("strategy"))
        out.strategy = v->asString(out.strategy);
    if (const auto *v = doc.find("resources"))
        out.resourceFraction = v->asDouble(out.resourceFraction);
    if (const auto *v = doc.find("emit"))
        out.emit = v->asBool(out.emit);
    if (const auto *v = doc.find("journal"))
        out.journal = v->asString(out.journal);
    if (const auto *v = doc.find("ir"))
        out.ir = v->asString();
    if (const auto *v = doc.find("pipeline"))
        out.pipeline = v->asString();
    return true;
}

bool
decodeResponse(const std::string &text, Response &out,
               std::string &error)
{
    out = Response();
    out.status.clear(); // a frame must carry its status explicitly
    support::JsonValue doc;
    if (!support::parseJson(text, doc, error))
        return false;
    if (!doc.isObject()) {
        error = "response is not a JSON object";
        return false;
    }
    if (const auto *v = doc.find("pom"))
        out.version = v->asString();
    if (const auto *v = doc.find("status"))
        out.status = v->asString();
    if (out.status.empty()) {
        error = "response has no status";
        return false;
    }
    if (const auto *v = doc.find("error"))
        out.error = v->asString();
    if (const auto *v = doc.find("retry_after_ms"))
        out.retryAfterMs = static_cast<int>(v->asInt());
    if (const auto *v = doc.find("report"))
        out.reportLine = v->asString();
    if (const auto *v = doc.find("notes"))
        out.notes = v->asString();
    if (const auto *v = doc.find("seconds"))
        out.seconds = v->asDouble();
    if (const auto *v = doc.find("latency_cycles"))
        out.latencyCycles = static_cast<std::uint64_t>(v->asInt());
    if (const auto *v = doc.find("dsp"))
        out.dsp = v->asInt();
    if (const auto *v = doc.find("bram_bits"))
        out.bramBits = v->asInt();
    if (const auto *v = doc.find("lut"))
        out.lut = v->asInt();
    if (const auto *v = doc.find("ff"))
        out.ff = v->asInt();
    if (const auto *v = doc.find("journal"))
        out.journalText = v->asString();
    if (const auto *v = doc.find("hls_c"))
        out.hlsC = v->asString();
    if (const auto *v = doc.find("ir"))
        out.irOut = v->asString();
    if (const auto *v = doc.find("requests_served"))
        out.requestsServed = v->asInt();
    if (const auto *v = doc.find("cache_hits"))
        out.cacheHits = v->asInt();
    if (const auto *v = doc.find("cache_misses"))
        out.cacheMisses = v->asInt();
    if (const auto *v = doc.find("cache_size"))
        out.cacheSize = v->asInt();
    if (const auto *v = doc.find("cache_loaded"))
        out.cacheLoaded = v->asInt();
    if (const auto *v = doc.find("queue_depth"))
        out.queueDepth = v->asInt();
    return true;
}

} // namespace pom::service
