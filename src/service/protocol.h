/**
 * @file
 * The pomd wire protocol: length-prefixed JSON request/response frames
 * over a Unix-domain socket (support/socket.h provides the framing).
 * One request per connection; the daemon replies with exactly one
 * response and closes.
 *
 * Every message carries the sender's POM version
 * (support::kVersionString); the daemon rejects a mismatched client
 * with a clean "version mismatch" error instead of guessing at field
 * semantics. Unknown JSON fields are ignored on both sides, so
 * same-version minor extensions stay compatible.
 *
 * Methods:
 *  - "ping"     liveness + version probe.
 *  - "stats"    daemon counters: requests served, estimator-cache
 *               hits/misses/size, entries warm-loaded from disk, and
 *               the current queue depth.
 *  - "compile"  compile a named workload (optionally through the DSE)
 *               exactly as a one-shot `pomc` run would; the response
 *               carries the synthesis report and, when requested, the
 *               pom-dse-journal document byte-identical to `pomc
 *               --dse-journal` / `--frontier-out` output.
 *  - "opt"      run a pass pipeline over textual IR (`pom-opt` as a
 *               service): request carries the IR and the pipeline
 *               spec, the response the resulting IR.
 *  - "shutdown" save the cache spill and stop the daemon.
 *  - "sleep"    testing aid: hold one executor slot for `size`
 *               milliseconds, so backpressure is deterministic to
 *               exercise.
 *
 * Backpressure: when the daemon's bounded request queue is full it
 * responds status "busy" with a retry_after_ms hint instead of
 * queueing unboundedly; clients are expected to back off and retry.
 */

#ifndef POM_SERVICE_PROTOCOL_H
#define POM_SERVICE_PROTOCOL_H

#include <cstdint>
#include <string>

namespace pom::service {

/** Upper bound on one frame (a journal for a deep DSE is ~1 MB). */
inline constexpr std::size_t kMaxFrameBytes = 64u << 20;

/** One client request. */
struct Request
{
    std::string version; ///< sender's support::kVersionString
    std::string method;  ///< ping | stats | compile | opt | shutdown

    // -- compile --
    std::string workload;            ///< workloads::makeByName name
    std::int64_t size = 1024;        ///< problem size
    std::string framework = "pom";   ///< pom|scalehls|polsca|pluto|none
    std::string strategy = "greedy"; ///< dse::StrategyKind name
    double resourceFraction = 1.0;
    bool emit = false;          ///< also return the HLS C
    std::string journal = "none"; ///< none | v1 | v2

    /** Lowering/DSE worker override for THIS request; 0 = the daemon's
     *  own `--jobs` setting. Must not exceed the daemon's `--workers`
     *  pool (the daemon rejects larger values with a structured
     *  error), so one request cannot oversubscribe the host. */
    std::int64_t jobs = 0;

    // -- opt --
    std::string ir;       ///< textual .pom-ir module
    std::string pipeline; ///< pass pipeline spec (may be empty)
};

/**
 * Wire form of one histogram summary (stats frames). Full bucket data
 * stays server-side; the frame carries the summary a scraper needs.
 */
struct HistogramWire
{
    std::int64_t count = 0;
    double sum = 0.0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
    double max = 0.0;
};

/** One daemon response. */
struct Response
{
    std::string version;         ///< daemon's support::kVersionString
    std::string status = "ok";   ///< ok | error | busy
    std::string error;           ///< status "error": what went wrong
    int retryAfterMs = 0;        ///< status "busy": back-off hint

    /** Daemon-assigned monotonic request ID (0 = not assigned, e.g. a
     *  one-shot in-process execute). Matches the `[req N]` diagnostics
     *  prefix and the journal header's "request" key. */
    std::int64_t requestId = 0;

    // -- compile --
    std::string reportLine; ///< SynthesisReport::str() of the design
    std::string notes;      ///< baseline notes line
    double seconds = 0.0;   ///< server-side toolchain wall-clock
    std::uint64_t latencyCycles = 0;
    std::int64_t dsp = 0;
    std::int64_t bramBits = 0;
    std::int64_t lut = 0;
    std::int64_t ff = 0;
    std::string journalText; ///< requested pom-dse-journal document
    std::string hlsC;        ///< requested HLS C

    // -- opt --
    std::string irOut;

    // -- per-request work report (compile/opt frames) --
    // Snapshot-deltas taken around THIS request's execution, so
    // concurrent requests do not alias each other's process-global
    // counters. Stats frames reuse the same fields for daemon totals.
    std::int64_t cacheHits = 0;
    std::int64_t cacheMisses = 0;
    std::int64_t pipelineCacheHits = 0;
    std::int64_t pipelineCacheMisses = 0;

    // -- stats frames only (statsFrame == true) --
    bool statsFrame = false; ///< not wire-encoded; set when the frame
                             ///< carries the fields below
    std::int64_t requestsServed = 0;
    std::int64_t cacheSize = 0;
    std::int64_t cacheLoaded = 0; ///< entries warm-loaded from disk
    std::int64_t queueDepth = 0;
    std::int64_t queueDepthMax = 0; ///< high-water mark since start
    double uptimeSeconds = 0.0;
    double cacheHitRate = 0.0; ///< hits / (hits + misses), 0 when idle
    std::int64_t pipelineCacheSize = 0;
    std::int64_t pipelineCacheLoaded = 0; ///< warm-loaded from disk
    double pipelineCacheHitRate = 0.0;
    std::int64_t nodeCacheHits = 0;   ///< per-node report cache (DSE)
    std::int64_t nodeCacheMisses = 0;
    std::int64_t nodeCacheSize = 0;
    std::int64_t nodeCacheLoaded = 0; ///< warm-loaded from disk
    double nodeCacheHitRate = 0.0;
    std::int64_t cacheEvictions = 0;     ///< --estimator-cache-cap FIFO
    std::int64_t nodeCacheEvictions = 0; ///< same cap, node cache
    HistogramWire queueWaitMs;  ///< dispatch -> execution start
    HistogramWire serviceMs;    ///< execution start -> response ready
};

/** Serialize as one canonical JSON document (the frame payload). */
std::string encodeRequest(const Request &request);
std::string encodeResponse(const Response &response);

/** Parse a frame payload; false + @p error on malformed JSON or a
 *  missing method/status field. Does NOT check the version -- the
 *  server does that so it can answer with a proper error response. */
bool decodeRequest(const std::string &text, Request &out,
                   std::string &error);
bool decodeResponse(const std::string &text, Response &out,
                    std::string &error);

/**
 * Render a stats response in the Prometheus text exposition format
 * (one gauge/counter per scalar, a `summary` with quantile labels per
 * histogram). What `pomc --daemon-stats --format prom` prints.
 */
std::string statsPrometheus(const Response &stats);

} // namespace pom::service

#endif // POM_SERVICE_PROTOCOL_H
