/**
 * @file
 * The pomd compile server: a long-lived process that keeps the whole
 * compiler warm -- registered pass pipelines, the process-wide
 * hls::EstimatorCache, and (optionally) its disk spill -- and serves
 * concurrent compile/DSE requests over a Unix-domain socket speaking
 * the protocol.h frames.
 *
 * Concurrency model: one accept loop (run()) reads a single request
 * frame per connection and hands (request, connection) to a dedicated
 * support::ThreadPool of request executors. The executor pool is
 * deliberately distinct from support::ThreadPool::global(): the DSE
 * inside a request fans its speculative candidate evaluations out on
 * the global pool, and the deadlock rule (a pool worker must never
 * wait on futures of its own pool) requires the waiter to live
 * elsewhere. Journals stay byte-identical to one-shot `pomc` runs
 * because each request's DseResult carries its own journal -- nothing
 * goes through the process-global obs::journal() -- and the shared
 * estimator cache can only change *where* a report comes from, never
 * what it says (the fingerprint pins the full estimator input).
 *
 * Backpressure: at most `queueLimit` requests may be queued or
 * executing; beyond that the accept loop answers status "busy" with a
 * retry_after_ms hint immediately, so a flood degrades into client
 * retries instead of unbounded daemon memory.
 *
 * Persistence: with a cache dir configured, the estimator-cache spill
 * is loaded before the first request and re-saved (incrementally --
 * content-addressed entries already on disk are skipped) after every
 * request that grew the cache, and once more on shutdown. A daemon
 * restart therefore warm-starts from disk; `dse.cache.hits` is nonzero
 * for the first repeated request after a restart.
 */

#ifndef POM_SERVICE_SERVER_H
#define POM_SERVICE_SERVER_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "hls/estimator_cache.h"
#include "service/protocol.h"
#include "support/cache_store.h"
#include "support/socket.h"
#include "support/thread_pool.h"

namespace pom::service {

/** Daemon configuration (`pomd` flags). */
struct ServerOptions
{
    /** Unix-domain socket path to listen on. */
    std::string socketPath = "pomd.sock";

    /** Estimator-cache spill directory; empty = no persistence. */
    std::string cacheDir;

    /** Pipeline-cache spill directory; empty = in-memory only. The
     *  in-memory pipeline cache itself is always enabled in the
     *  daemon -- keeping lowered pipelines warm between requests is
     *  the point of a daemon. */
    std::string pipelineCacheDir;

    /** FIFO capacity applied to the process-wide estimator and
     *  per-node report caches; 0 = unbounded (`pomd
     *  --estimator-cache-cap`). Evicted entries count toward the
     *  stats frame's cache_evictions / node_cache_evictions. */
    std::size_t estimatorCacheCap = 0;

    /** Concurrent request executors. */
    int workers = 2;

    /** Max requests queued or executing before "busy" responses. */
    int queueLimit = 16;

    /** The back-off hint sent with a "busy" response. */
    int retryAfterMs = 200;
};

/** The daemon. Construct, start(), then run() until stop(). */
class Server
{
  public:
    explicit Server(ServerOptions options);

    /** Joins in-flight requests and saves the cache spill. */
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Bind the socket, register pass pipelines, and warm-load the
     * cache spill. False + @p error when the socket or the cache
     * index is unusable (a daemon must not start half-deaf).
     */
    bool start(std::string &error);

    /**
     * Accept-and-dispatch loop; returns once stop() is called and no
     * more connections are pending. Call from the main thread.
     */
    void run();

    /** Request shutdown (thread- and signal-safe: one atomic store). */
    void stop() { stopping_.store(true, std::memory_order_relaxed); }

    bool stopped() const
    {
        return stopping_.load(std::memory_order_relaxed);
    }

    /** Entries warm-loaded from the cache dir at start(). */
    const hls::SpillStats &loadStats() const { return load_stats_; }

    /** Pipeline-cache entries warm-loaded at start(). */
    const support::CacheSpillStats &pipelineLoadStats() const
    {
        return pipeline_load_stats_;
    }

    /** Per-node report-cache entries warm-loaded at start(). */
    const hls::SpillStats &nodeLoadStats() const
    {
        return node_load_stats_;
    }

    std::uint64_t requestsServed() const { return served_.load(); }

    /**
     * Execute one request in-process (the daemon's dispatch target;
     * public so tests can drive the protocol without a socket).
     *
     * @p requestId is the daemon-assigned monotonic ID correlating the
     * request's spans, diagnostics and journal header. 0 (the default)
     * means "unattributed": nothing is stamped, so a direct execute()
     * produces output byte-identical to a one-shot `pomc` run.
     */
    Response execute(const Request &request, std::int64_t requestId = 0);

  private:
    void dispatch(std::shared_ptr<support::Socket> connection);
    Response compileResponse(const Request &request,
                             std::int64_t requestId);
    Response optResponse(const Request &request);
    Response statsResponse();
    void saveCache();

    ServerOptions opt_;
    support::Socket listener_;
    std::unique_ptr<support::ThreadPool> executors_;
    std::atomic<int> pending_{0};
    std::atomic<int> pendingMax_{0}; ///< queue-depth high-water mark
    std::atomic<bool> stopping_{false};
    std::atomic<std::uint64_t> served_{0};
    std::atomic<std::int64_t> nextRequestId_{0};
    std::chrono::steady_clock::time_point startTime_;
    hls::SpillStats load_stats_;
    hls::SpillStats node_load_stats_;
    support::CacheSpillStats pipeline_load_stats_;
    std::mutex save_mutex_;
};

} // namespace pom::service

#endif // POM_SERVICE_SERVER_H
