/**
 * @file
 * Client side of the pomd protocol: connect to the daemon's Unix
 * socket, send one request frame, read one response frame. "busy"
 * responses are retried with the daemon's own retry_after_ms hint, so
 * callers see backpressure as latency rather than as an error (up to a
 * bounded retry count).
 */

#ifndef POM_SERVICE_CLIENT_H
#define POM_SERVICE_CLIENT_H

#include <string>

#include "service/protocol.h"

namespace pom::service {

/**
 * Send @p request to the daemon at @p socketPath and fill @p response.
 *
 * Returns false + @p error when the daemon is unreachable, a frame is
 * malformed, or the daemon stayed busy through @p busyRetries retries.
 * A response with status "error" is a *successful* call -- the caller
 * inspects response.status.
 */
bool callDaemon(const std::string &socketPath, const Request &request,
                Response &response, std::string &error,
                int busyRetries = 25);

} // namespace pom::service

#endif // POM_SERVICE_CLIENT_H
