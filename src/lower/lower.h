/**
 * @file
 * The progressive lowering pipeline (paper Fig. 7): POM DSL ->
 * polyhedral statements (extraction + scheduling primitives) ->
 * polyhedral AST -> annotated affine dialect. Each stage is exposed
 * separately so the DSE engine and the tests can intervene between
 * layers.
 */

#ifndef POM_LOWER_LOWER_H
#define POM_LOWER_LOWER_H

#include <memory>
#include <vector>

#include "ast/build.h"
#include "dsl/dsl.h"
#include "ir/operation.h"
#include "transform/poly_stmt.h"

namespace pom::lower {

/** The result of lowering a DSL function to the affine dialect. */
struct LoweredFunction
{
    /** Annotated affine dialect (func.func). */
    std::unique_ptr<ir::Operation> func;

    /** The polyhedral AST the IR was generated from. */
    ast::AstNodePtr astRoot;

    /** Final polyhedral statements (after all transformations). */
    std::vector<transform::PolyStmt> stmts;
};

/**
 * Extract polyhedral statements from a DSL function: iteration domains
 * from iterator ranges, access relations from load/store expressions,
 * and sequential top-level schedules. No scheduling primitives are
 * applied yet.
 */
std::vector<transform::PolyStmt> extractStmts(const dsl::Function &func);

/**
 * Apply each compute's recorded scheduling primitives, in program
 * order, to the extracted statements. With @p ordering_only, only the
 * statement-ordering primitives (after/fuse) are applied -- these are
 * part of the program's semantics, unlike loop transformations and
 * hardware annotations, and must be present even in the "unoptimized"
 * baseline.
 */
void applyDirectives(std::vector<transform::PolyStmt> &stmts,
                     bool ordering_only = false);

/**
 * Attach HLS DEPENDENCE pragma hints (paper Section V.A): for each
 * pipelined loop level, every written array with no loop-carried
 * dependence at or below that level is provably inter-iteration
 * independent, and the generated code can assert it to the HLS tool.
 * Returns the number of (loop level, array) hints attached.
 */
std::size_t
annotateDependenceHints(std::vector<transform::PolyStmt> &stmts);

/** Generate annotated affine dialect from a polyhedral AST. */
std::unique_ptr<ir::Operation>
generateAffine(const dsl::Function &func,
               const std::vector<transform::PolyStmt> &stmts,
               const ast::AstNode &astRoot);

/**
 * Build the polyhedral AST and generate annotated affine dialect.
 * With @p needIr false and the pipeline cache active, a cached
 * ast-to-affine result is left unparsed and LoweredFunction::func may
 * be null -- callers that read only stmts + astRoot (the DSE
 * estimation path) skip the parse entirely. With the cache off the
 * flag has no effect and func is always populated.
 */
LoweredFunction lowerStmts(const dsl::Function &func,
                           std::vector<transform::PolyStmt> stmts,
                           bool needIr = true);

/**
 * Estimation-only lowering of a statement subset: build just the
 * polyhedral AST over @p stmts and return it with the statements
 * (LoweredFunction::func stays null). This is the per-node entry the
 * incremental DSE uses to re-evaluate a single unit -- the estimator
 * reads only stmts + astRoot, and a node's AST subtree depends only on
 * its own statements, so the result is bit-identical to the matching
 * subtree of a full lowerStmts(). Skips the pass pipeline entirely
 * (no pragma hints, no IR): hls::estimateNodes never reads either.
 */
LoweredFunction lowerNodeStmts(std::vector<transform::PolyStmt> stmts);

/** Full pipeline: extract, apply primitives, build AST, generate IR. */
LoweredFunction lower(const dsl::Function &func);

/**
 * Register the front-end lowering passes (extract-stmts,
 * schedule-apply, annotate-pragmas, build-ast, ast-to-affine) with the
 * global PassRegistry. Idempotent; lower()/lowerStmts() call it, so
 * only direct PassManager users (pom-opt, tests) need it explicitly.
 */
void registerLoweringPasses();

/**
 * Extract the affine subscript of a DSL index expression over the given
 * iterator names. Fatal on non-affine forms (user error).
 */
poly::LinearExpr affineIndex(const dsl::ExprNode &node,
                             const std::vector<std::string> &iters);

/** Build the access relation list of a compute over its iterators. */
std::vector<poly::Access> accessesOf(const dsl::Compute &compute);

} // namespace pom::lower

#endif // POM_LOWER_LOWER_H
