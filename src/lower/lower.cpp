#include "lower/lower.h"

#include <cmath>
#include <map>

#include "ir/builder.h"
#include "pass/pass_manager.h"
#include "support/diagnostics.h"
#include "support/string_util.h"
#include "support/thread_pool.h"

namespace pom::lower {

using dsl::BinOp;
using dsl::ExprNode;
using dsl::UnOp;
using poly::AffineMap;
using poly::IntegerSet;
using poly::LinearExpr;

poly::LinearExpr
affineIndex(const ExprNode &node, const std::vector<std::string> &iters)
{
    size_t n = iters.size();
    switch (node.kind) {
      case ExprNode::Kind::Const: {
        double v = node.value;
        if (v != std::floor(v)) {
            support::fatal("array subscript uses non-integer constant");
        }
        return LinearExpr::constant(n, static_cast<std::int64_t>(v));
      }
      case ExprNode::Kind::Iter: {
        for (size_t i = 0; i < n; ++i) {
            if (iters[i] == node.iterName)
                return LinearExpr::dim(n, i);
        }
        support::fatal("subscript references unknown iterator '" +
                       node.iterName + "'");
      }
      case ExprNode::Kind::Binary: {
        if (node.binOp == BinOp::Add) {
            return affineIndex(*node.lhs, iters) +
                   affineIndex(*node.rhs, iters);
        }
        if (node.binOp == BinOp::Sub) {
            return affineIndex(*node.lhs, iters) -
                   affineIndex(*node.rhs, iters);
        }
        if (node.binOp == BinOp::Mul) {
            // One side must be a constant.
            if (node.lhs->kind == ExprNode::Kind::Const) {
                return affineIndex(*node.rhs, iters)
                    .scaled(static_cast<std::int64_t>(node.lhs->value));
            }
            if (node.rhs->kind == ExprNode::Kind::Const) {
                return affineIndex(*node.lhs, iters)
                    .scaled(static_cast<std::int64_t>(node.rhs->value));
            }
        }
        support::fatal("non-affine array subscript");
      }
      default:
        support::fatal("non-affine array subscript");
    }
}

namespace {

/** Collect the accesses of an expression tree (reads). */
void
collectLoads(const ExprNode &node, const std::vector<std::string> &iters,
             std::vector<poly::Access> &out)
{
    switch (node.kind) {
      case ExprNode::Kind::Load: {
        std::vector<LinearExpr> subs;
        subs.reserve(node.indices.size());
        for (const auto &idx : node.indices)
            subs.push_back(affineIndex(*idx, iters));
        out.push_back(poly::Access{node.array->name(),
                                   AffineMap(iters, std::move(subs)),
                                   false});
        for (const auto &idx : node.indices)
            collectLoads(*idx, iters, out); // nested loads are rejected
        break;
      }
      case ExprNode::Kind::Binary:
        collectLoads(*node.lhs, iters, out);
        collectLoads(*node.rhs, iters, out);
        break;
      case ExprNode::Kind::Unary:
        collectLoads(*node.lhs, iters, out);
        break;
      default:
        break;
    }
}

} // namespace

std::vector<poly::Access>
accessesOf(const dsl::Compute &compute)
{
    std::vector<std::string> iters;
    iters.reserve(compute.iters().size());
    for (const auto &v : compute.iters())
        iters.push_back(v.name());

    std::vector<poly::Access> accesses;
    // The destination store first.
    const ExprNode &dest = *compute.dest().node();
    POM_ASSERT(dest.kind == ExprNode::Kind::Load, "dest must be an access");
    {
        std::vector<LinearExpr> subs;
        for (const auto &idx : dest.indices)
            subs.push_back(affineIndex(*idx, iters));
        if (subs.size() != dest.array->shape().size()) {
            support::fatal("destination access of '" + compute.name() +
                           "' has wrong rank for '" + dest.array->name() +
                           "'");
        }
        accesses.push_back(poly::Access{dest.array->name(),
                                        AffineMap(iters, std::move(subs)),
                                        true});
    }
    collectLoads(*compute.rhs().node(), iters, accesses);
    for (const auto &a : accesses) {
        const dsl::Placeholder *p =
            compute.function().findPlaceholder(a.array);
        POM_ASSERT(p != nullptr, "access to unregistered placeholder");
        if (a.map.numResults() != p->shape().size()) {
            support::fatal("access to '" + a.array + "' in compute '" +
                           compute.name() + "' has wrong rank");
        }
    }
    return accesses;
}

namespace {

/**
 * The worker pool for intra-candidate statement parallelism, or null
 * to run inline. parallelFor() additionally falls back to inline
 * execution on pool worker threads (a DSE worker lowering a candidate
 * must not block on its own pool), so nesting is always safe.
 */
support::ThreadPool *
stmtPool(std::size_t n)
{
    if (n < 2 || support::jobs() <= 1)
        return nullptr;
    return &support::ThreadPool::global();
}

} // namespace

std::vector<transform::PolyStmt>
extractStmts(const dsl::Function &func)
{
    if (func.computes().empty())
        support::fatal("function '" + func.name() + "' has no computes");
    const auto &computes = func.computes();
    // Each statement is extracted independently; the indexed merge
    // keeps the result byte-identical at any worker count.
    std::vector<transform::PolyStmt> stmts(computes.size());
    support::parallelFor(
        stmtPool(computes.size()), computes.size(), [&](std::size_t i) {
            const dsl::Compute *c = computes[i];
            std::vector<std::string> names;
            std::vector<std::int64_t> lows, highs;
            for (const auto &v : c->iters()) {
                names.push_back(v.name());
                lows.push_back(v.lo());
                highs.push_back(v.hi() - 1); // DSL ranges are half-open
            }
            transform::PolyStmt stmt;
            stmt.sched = ast::ScheduledStmt::identity(
                c->name(), IntegerSet::box(names, lows, highs));
            // Leave room between top-level betas so `after` can
            // interleave.
            stmt.sched.betas[0] = 16 * static_cast<std::int64_t>(i);
            stmt.accesses = accessesOf(*c);
            stmt.source = c;
            stmts[i] = std::move(stmt);
        });
    return stmts;
}

void
applyDirectives(std::vector<transform::PolyStmt> &stmts,
                bool ordering_only)
{
    auto findStmt = [&](const dsl::Compute *c) -> transform::PolyStmt & {
        for (auto &s : stmts) {
            if (s.source == c)
                return s;
        }
        support::fatal("after/fuse references a compute outside this "
                       "function");
    };

    for (auto &stmt : stmts) {
        for (const auto &d : stmt.source->directives()) {
            using K = dsl::Directive::Kind;
            if (ordering_only && d.kind != K::After && d.kind != K::Fuse)
                continue;
            switch (d.kind) {
              case K::Interchange:
                transform::interchange(stmt, d.vars[0], d.vars[1]);
                break;
              case K::Split:
                transform::split(stmt, d.vars[0], d.factors[0],
                                 d.newVars[0], d.newVars[1]);
                break;
              case K::Tile:
                transform::tile(stmt, d.vars[0], d.vars[1], d.factors[0],
                                d.factors[1], d.newVars[0], d.newVars[1],
                                d.newVars[2], d.newVars[3]);
                break;
              case K::Skew:
                transform::skew(stmt, d.vars[0], d.vars[1], d.factors[0],
                                d.newVars[0], d.newVars[1]);
                break;
              case K::After: {
                const transform::PolyStmt &anchor = findStmt(d.other);
                size_t shared = 0;
                if (!d.vars.empty())
                    shared = anchor.dimIndex(d.vars[0]) + 1;
                transform::placeAfter(stmt, anchor, shared);
                break;
              }
              case K::Fuse:
                transform::fuseInto(stmt, findStmt(d.other));
                break;
              case K::Pipeline:
                transform::setPipeline(stmt, d.vars[0],
                                       static_cast<int>(d.factors[0]));
                break;
              case K::Unroll:
                transform::setUnroll(stmt, d.vars[0], d.factors[0]);
                break;
            }
        }
    }
}

namespace {

/** Generates annotated affine dialect from the polyhedral AST. */
class IrGen
{
  public:
    IrGen(const dsl::Function &func,
          const std::vector<transform::PolyStmt> &stmts)
        : func_(func)
    {
        for (const auto &s : stmts)
            by_name_[s.sched.name] = &s;
    }

    std::unique_ptr<ir::Operation>
    run(const ast::AstNode &root)
    {
        auto fn = ir::OpBuilder::makeFunc(func_.name());
        for (const dsl::Placeholder *p : func_.placeholders()) {
            ir::Type type = ir::Type::memref(p->elementType(), p->shape());
            arrays_[p->name()] =
                ir::OpBuilder::addFuncArg(*fn, type, p->name());
            if (!p->partitionFactors().empty()) {
                fn->setAttr("hls.partition." + p->name(),
                            ir::Attribute(p->partitionFactors()));
                fn->setAttr("hls.partition_kind." + p->name(),
                            ir::Attribute(p->partitionKind()));
            }
        }
        ir::OpBuilder builder(&fn->region(0));
        std::vector<ir::Value *> ivs;
        emit(root, builder, ivs);
        return fn;
    }

  private:
    void
    emit(const ast::AstNode &node, ir::OpBuilder &builder,
         std::vector<ir::Value *> &ivs)
    {
        switch (node.kind()) {
          case ast::AstNode::Kind::Block:
            for (const auto &c : node.children)
                emit(*c, builder, ivs);
            break;
          case ast::AstNode::Kind::For: {
            ir::Operation *loop =
                builder.createFor(node.bounds, node.iterName, ivs);
            if (node.hw.pipelineII) {
                loop->setAttr(ir::kAttrPipelineII,
                              ir::Attribute(
                                  std::int64_t(*node.hw.pipelineII)));
            }
            if (node.hw.unrollFactor != 1) {
                loop->setAttr(ir::kAttrUnroll,
                              ir::Attribute(node.hw.unrollFactor));
            }
            if (!node.hw.independentArrays.empty()) {
                loop->setAttr(ir::kAttrDependenceFree,
                              ir::Attribute(support::join(
                                  node.hw.independentArrays, ",")));
            }
            ir::OpBuilder inner(&loop->region(0));
            ivs.push_back(loop->region(0).argument(0));
            for (const auto &c : node.children)
                emit(*c, inner, ivs);
            ivs.pop_back();
            break;
          }
          case ast::AstNode::Kind::If: {
            ir::Operation *guard =
                builder.createIf(node.conditions, ivs);
            ir::OpBuilder inner(&guard->region(0));
            for (const auto &c : node.children)
                emit(*c, inner, ivs);
            break;
          }
          case ast::AstNode::Kind::User:
            emitStatement(node, builder, ivs);
            break;
        }
    }

    void
    emitStatement(const ast::AstNode &node, ir::OpBuilder &builder,
                  std::vector<ir::Value *> &ivs)
    {
        auto it = by_name_.find(node.stmtName);
        POM_ASSERT(it != by_name_.end(), "AST references unknown statement ",
                   node.stmtName);
        const transform::PolyStmt &stmt = *it->second;
        const dsl::Compute &compute = *stmt.source;
        POM_ASSERT(node.iterMap.numDomainDims() == ivs.size(),
                   "iteration depth mismatch for ", node.stmtName);

        std::vector<std::string> orig_iters;
        for (const auto &v : compute.iters())
            orig_iters.push_back(v.name());

        ir::ScalarKind kind =
            compute.dest().node()->array->elementType();
        ir::Value *value = emitExpr(*compute.rhs().node(), orig_iters,
                                    node.iterMap, kind, builder, ivs);

        const ExprNode &dest = *compute.dest().node();
        builder.createStore(value, arrays_.at(dest.array->name()),
                            accessMap(dest, orig_iters, node.iterMap),
                            ivs);
    }

    AffineMap
    accessMap(const ExprNode &load,
              const std::vector<std::string> &orig_iters,
              const AffineMap &iter_map) const
    {
        std::vector<LinearExpr> subs;
        for (const auto &idx : load.indices)
            subs.push_back(affineIndex(*idx, orig_iters));
        AffineMap over_orig(orig_iters, std::move(subs));
        return over_orig.compose(iter_map);
    }

    ir::Value *
    emitExpr(const ExprNode &node,
             const std::vector<std::string> &orig_iters,
             const AffineMap &iter_map, ir::ScalarKind kind,
             ir::OpBuilder &builder, std::vector<ir::Value *> &ivs)
    {
        bool flt = ir::isFloat(kind);
        switch (node.kind) {
          case ExprNode::Kind::Const:
            return builder.createConstant(node.value,
                                          ir::Type::scalar(kind));
          case ExprNode::Kind::Iter:
            support::fatal("iterator used as a value is not supported in "
                           "compute expressions");
          case ExprNode::Kind::Load:
            return builder.createLoad(
                arrays_.at(node.array->name()),
                accessMap(node, orig_iters, iter_map), ivs);
          case ExprNode::Kind::Binary: {
            ir::Value *lhs = emitExpr(*node.lhs, orig_iters, iter_map,
                                      kind, builder, ivs);
            ir::Value *rhs = emitExpr(*node.rhs, orig_iters, iter_map,
                                      kind, builder, ivs);
            std::string name;
            switch (node.binOp) {
              case BinOp::Add: name = flt ? "arith.addf" : "arith.addi";
                break;
              case BinOp::Sub: name = flt ? "arith.subf" : "arith.subi";
                break;
              case BinOp::Mul: name = flt ? "arith.mulf" : "arith.muli";
                break;
              case BinOp::Div: name = "arith.divf"; break;
              case BinOp::Max: name = "arith.maxf"; break;
              case BinOp::Min: name = "arith.minf"; break;
            }
            return builder.createBinary(name, lhs, rhs);
          }
          case ExprNode::Kind::Unary: {
            ir::Value *lhs = emitExpr(*node.lhs, orig_iters, iter_map,
                                      kind, builder, ivs);
            std::string name;
            switch (node.unOp) {
              case UnOp::Neg: name = "arith.negf"; break;
              case UnOp::Sqrt: name = "math.sqrt"; break;
              case UnOp::Exp: name = "math.exp"; break;
            }
            return builder.createUnary(name, lhs);
          }
        }
        support::fatal("unreachable expression kind");
    }

    const dsl::Function &func_;
    std::map<std::string, ir::Value *> arrays_;
    std::map<std::string, const transform::PolyStmt *> by_name_;
};

} // namespace

std::unique_ptr<ir::Operation>
generateAffine(const dsl::Function &func,
               const std::vector<transform::PolyStmt> &stmts,
               const ast::AstNode &astRoot)
{
    IrGen gen(func, stmts);
    return gen.run(astRoot);
}

std::size_t
annotateDependenceHints(std::vector<transform::PolyStmt> &stmts)
{
    // The dependence analysis of each statement is independent of the
    // others (selfDependences reads only that statement), so statements
    // are processed in parallel; per-statement hint counts merge in
    // statement order, keeping the total and every annotation
    // byte-identical at any worker count.
    std::vector<std::size_t> per_stmt(stmts.size(), 0);
    support::parallelFor(
        stmtPool(stmts.size()), stmts.size(), [&](std::size_t idx) {
            auto &stmt = stmts[idx];
            bool any_pipeline = false;
            for (const auto &hw : stmt.sched.hwPerDim)
                any_pipeline |= hw.pipelineII.has_value();
            if (!any_pipeline)
                return;
            auto deps = transform::selfDependences(stmt);
            for (size_t p = 0; p < stmt.numDims(); ++p) {
                auto &hw = stmt.sched.hwPerDim[p];
                if (!hw.pipelineII)
                    continue;
                hw.independentArrays.clear();
                for (const auto &acc : stmt.accesses) {
                    if (!acc.isWrite)
                        continue;
                    bool carried_inside = false;
                    for (const auto &d : deps) {
                        if (d.array == acc.array && d.level >= p)
                            carried_inside = true;
                    }
                    if (!carried_inside) {
                        hw.independentArrays.push_back(acc.array);
                        ++per_stmt[idx];
                    }
                }
            }
        });
    std::size_t hints = 0;
    for (std::size_t n : per_stmt)
        hints += n;
    return hints;
}

namespace {

LoweredFunction
runLoweringPipeline(const dsl::Function &func,
                    std::vector<transform::PolyStmt> stmts,
                    const std::string &pipeline, bool needIr)
{
    registerLoweringPasses();
    pass::PipelineState state;
    state.dslFunc = &func;
    state.stmts = std::move(stmts);
    pass::PassManagerOptions options;
    options.deferFinalIr = !needIr;
    pass::PassManager pm(options);
    pm.addPipeline(pipeline);
    pm.run(state);
    LoweredFunction out;
    out.func = std::move(state.func);
    out.astRoot = std::move(state.astRoot);
    out.stmts = std::move(state.stmts);
    return out;
}

} // namespace

LoweredFunction
lowerStmts(const dsl::Function &func,
           std::vector<transform::PolyStmt> stmts, bool needIr)
{
    return runLoweringPipeline(func, std::move(stmts),
                               "annotate-pragmas,build-ast,ast-to-affine",
                               needIr);
}

LoweredFunction
lowerNodeStmts(std::vector<transform::PolyStmt> stmts)
{
    LoweredFunction out;
    std::vector<ast::ScheduledStmt> sched;
    sched.reserve(stmts.size());
    for (const auto &s : stmts)
        sched.push_back(s.sched);
    out.astRoot = ast::buildAst(sched);
    out.stmts = std::move(stmts);
    return out;
}

LoweredFunction
lower(const dsl::Function &func)
{
    return runLoweringPipeline(
        func, {},
        "extract-stmts,schedule-apply,annotate-pragmas,build-ast,"
        "ast-to-affine",
        /*needIr=*/true);
}

} // namespace pom::lower
