/**
 * @file
 * The progressive lowering pipeline as registered passes. Each pass is
 * a thin adapter over the staged entry points in lower.h so the same
 * code drives lower()/lowerStmts(), pom-opt pipelines, and tests.
 */

#include <mutex>
#include <sstream>

#include "lower/lower.h"
#include "pass/pass_manager.h"
#include "support/diagnostics.h"

namespace pom::lower {

namespace {

void
requireDslFunc(const pass::PipelineState &state, const char *pass)
{
    if (!state.dslFunc) {
        support::fatal(std::string(pass) +
                       ": pipeline state carries no DSL function (this "
                       "pass cannot run on textual IR)");
    }
}

/** DSL function -> polyhedral statements (identity schedules). */
class ExtractStmtsPass : public pass::Pass
{
  public:
    ExtractStmtsPass() : Pass("extract-stmts") {}

    void
    run(pass::PipelineState &state) override
    {
        requireDslFunc(state, "extract-stmts");
        state.stmts = extractStmts(*state.dslFunc);
        addStat("stmts", static_cast<std::int64_t>(state.stmts.size()));
    }
};

/** Apply the computes' recorded scheduling primitives. */
class ScheduleApplyPass : public pass::Pass
{
  public:
    explicit ScheduleApplyPass(bool ordering_only)
        : Pass("schedule-apply"), ordering_only_(ordering_only)
    {}

    void
    run(pass::PipelineState &state) override
    {
        std::int64_t directives = 0;
        for (const auto &stmt : state.stmts)
            directives +=
                static_cast<std::int64_t>(stmt.source->directives().size());
        applyDirectives(state.stmts, ordering_only_);
        addStat("directives", directives);
        if (ordering_only_)
            addStat("ordering-only");
    }

  private:
    bool ordering_only_;
};

/** Attach HLS DEPENDENCE hints to pipelined loop levels. */
class AnnotatePragmasPass : public pass::Pass
{
  public:
    AnnotatePragmasPass() : Pass("annotate-pragmas") {}

    // The pass only rewrites per-dim independentArrays lists; the
    // payload is those lists for every (stmt, dim), so a replay
    // reproduces the post-run state byte-for-byte and skips the
    // dependence analysis.
    pass::CachePayloadKind
    cachePayloadKind() const override
    {
        return pass::CachePayloadKind::Custom;
    }

    std::string
    encodeCachePayload(const pass::PipelineState &state) const override
    {
        std::ostringstream os;
        for (std::size_t i = 0; i < state.stmts.size(); ++i) {
            const auto &hw = state.stmts[i].sched.hwPerDim;
            for (std::size_t j = 0; j < hw.size(); ++j) {
                os << "d " << i << " " << j;
                for (const auto &array : hw[j].independentArrays)
                    os << " " << array;
                os << "\n";
            }
        }
        return os.str();
    }

    void
    applyCachePayload(pass::PipelineState &state,
                      const std::string &payload) const override
    {
        std::istringstream in(payload);
        std::string line;
        while (std::getline(in, line)) {
            std::istringstream fields(line);
            std::string tag;
            std::size_t stmt = 0, dim = 0;
            if (!(fields >> tag >> stmt >> dim) || tag != "d")
                continue;
            if (stmt >= state.stmts.size())
                continue;
            auto &hw = state.stmts[stmt].sched.hwPerDim;
            if (dim >= hw.size())
                continue;
            hw[dim].independentArrays.clear();
            std::string array;
            while (fields >> array)
                hw[dim].independentArrays.push_back(array);
        }
    }

    void
    run(pass::PipelineState &state) override
    {
        std::size_t hints = annotateDependenceHints(state.stmts);
        addStat("dependence-hints", static_cast<std::int64_t>(hints));
    }
};

/** Polyhedral statements -> polyhedral AST. */
class BuildAstPass : public pass::Pass
{
  public:
    BuildAstPass() : Pass("build-ast") {}

    void
    run(pass::PipelineState &state) override
    {
        if (state.stmts.empty())
            support::fatal("build-ast: no polyhedral statements (run "
                           "extract-stmts first)");
        std::vector<ast::ScheduledStmt> sched;
        sched.reserve(state.stmts.size());
        for (const auto &s : state.stmts)
            sched.push_back(s.sched);
        state.astRoot = ast::buildAst(sched);
        addStat("scheduled-stmts",
                static_cast<std::int64_t>(sched.size()));
    }
};

/** Polyhedral AST -> annotated affine dialect. */
class AstToAffinePass : public pass::Pass
{
  public:
    AstToAffinePass() : Pass("ast-to-affine") {}

    // The generated IR round-trips losslessly through the textual
    // printer/parser, so a hit replays the printed IR (parsed back
    // lazily, or never, when the caller only reads stmts + AST).
    pass::CachePayloadKind
    cachePayloadKind() const override
    {
        return pass::CachePayloadKind::IrText;
    }

    void
    run(pass::PipelineState &state) override
    {
        requireDslFunc(state, "ast-to-affine");
        if (!state.astRoot)
            support::fatal("ast-to-affine: no polyhedral AST (run "
                           "build-ast first)");
        state.func =
            generateAffine(*state.dslFunc, state.stmts, *state.astRoot);
    }
};

bool
boolOption(const pass::PassOptions &options, const std::string &key)
{
    auto it = options.find(key);
    if (it == options.end())
        return false;
    if (it->second == "true" || it->second == "1" || it->second.empty())
        return true;
    if (it->second == "false" || it->second == "0")
        return false;
    support::fatal("option '" + key + "' expects true/false, got '" +
                   it->second + "'");
}

} // namespace

void
registerLoweringPasses()
{
    // DSE worker threads lower candidates concurrently; registration
    // must be exactly-once, and callers must not observe a half-filled
    // registry, so the whole body runs under the once flag.
    static std::once_flag once;
    std::call_once(once, []() {
    auto &registry = pass::PassRegistry::instance();
    registry.add("extract-stmts",
                 "extract polyhedral statements from the DSL function",
                 [](const pass::PassOptions &) {
                     return std::make_unique<ExtractStmtsPass>();
                 });
    registry.add("schedule-apply",
                 "apply recorded scheduling primitives "
                 "(option: ordering-only=true)",
                 [](const pass::PassOptions &options) {
                     return std::make_unique<ScheduleApplyPass>(
                         boolOption(options, "ordering-only"));
                 });
    registry.add("annotate-pragmas",
                 "attach dependence-free hints to pipelined loops",
                 [](const pass::PassOptions &) {
                     return std::make_unique<AnnotatePragmasPass>();
                 });
    registry.add("build-ast",
                 "build the polyhedral AST from scheduled statements",
                 [](const pass::PassOptions &) {
                     return std::make_unique<BuildAstPass>();
                 });
    registry.add("ast-to-affine",
                 "generate annotated affine dialect from the AST",
                 [](const pass::PassOptions &) {
                     return std::make_unique<AstToAffinePass>();
                 });
    });
}

} // namespace pom::lower
