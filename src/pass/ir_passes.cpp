/**
 * @file
 * Core IR-level passes: they need only PipelineState::func and can run
 * on parsed textual IR (pom-opt) as well as on freshly lowered IR.
 */

#include "pass/pass_manager.h"

#include "ir/attribute.h"
#include "ir/verifier.h"
#include "support/diagnostics.h"

namespace pom::pass {

namespace {

void
requireFunc(const PipelineState &state, const char *pass)
{
    if (!state.func) {
        support::fatal(std::string(pass) +
                       ": pipeline state carries no affine IR (run the "
                       "lowering passes first, or feed textual IR)");
    }
}

/** Fails the pipeline if the affine IR is malformed. */
class VerifyPass : public Pass
{
  public:
    VerifyPass() : Pass("verify") {}

    // A failed verification throws before the result is stored, so a
    // cached entry always replays "this exact IR verified clean".
    CachePayloadKind
    cachePayloadKind() const override
    {
        return CachePayloadKind::None;
    }

    void
    run(PipelineState &state) override
    {
        requireFunc(state, "verify");
        auto errors = ir::verify(*state.func);
        addStat("errors", static_cast<std::int64_t>(errors.size()));
        if (!errors.empty()) {
            std::string msg = "verify: IR is malformed: ";
            msg += errors[0];
            if (errors.size() > 1) {
                msg += " (and " + std::to_string(errors.size() - 1) +
                       " more)";
            }
            support::fatal(msg);
        }
    }
};

/** Removes every `hls.*` annotation, leaving plain affine IR. */
class StripHlsPass : public Pass
{
  public:
    StripHlsPass() : Pass("strip-hls") {}

    CachePayloadKind
    cachePayloadKind() const override
    {
        return CachePayloadKind::IrText;
    }

    void
    run(PipelineState &state) override
    {
        requireFunc(state, "strip-hls");
        walk(*state.func);
    }

  private:
    void
    walk(ir::Operation &op)
    {
        std::vector<std::string> doomed;
        for (const auto &[key, value] : op.attrs()) {
            (void)value;
            if (key.rfind("hls.", 0) == 0)
                doomed.push_back(key);
        }
        for (const auto &key : doomed) {
            op.removeAttr(key);
            addStat("stripped-attrs");
        }
        for (size_t r = 0; r < op.numRegions(); ++r)
            for (const auto &inner : op.region(r).operations())
                walk(*inner);
    }
};

/** Counts ops per op-name into statistics; leaves the IR untouched. */
class CountOpsPass : public Pass
{
  public:
    CountOpsPass() : Pass("count-ops") {}

    CachePayloadKind
    cachePayloadKind() const override
    {
        return CachePayloadKind::None;
    }

    void
    run(PipelineState &state) override
    {
        requireFunc(state, "count-ops");
        walk(*state.func);
    }

  private:
    void
    walk(const ir::Operation &op)
    {
        addStat(op.opName());
        for (size_t r = 0; r < op.numRegions(); ++r)
            for (const auto &inner : op.region(r).operations())
                walk(*inner);
    }
};

} // namespace

void
registerCoreIrPasses(PassRegistry &registry)
{
    registry.add("verify", "check affine IR structural invariants",
                 [](const PassOptions &) {
                     return std::make_unique<VerifyPass>();
                 });
    registry.add("strip-hls", "drop all hls.* pragma annotations",
                 [](const PassOptions &) {
                     return std::make_unique<StripHlsPass>();
                 });
    registry.add("count-ops", "count operations per op name",
                 [](const PassOptions &) {
                     return std::make_unique<CountOpsPass>();
                 });
}

} // namespace pom::pass
