/**
 * @file
 * Incremental pass-pipeline caching, layered exactly like
 * hls::EstimatorCache. A pass execution is identified by a *canonical
 * fingerprint* of everything it can observe: the POM version, the pass
 * name and its canonicalized PassOptions, and a byte-stable textual
 * serialization of the whole PipelineState (DSL function incl.
 * partition state and directives, polyhedral statements incl. accesses
 * and hardware annotations, the polyhedral AST print, and the textual
 * IR print). Two pipeline runs whose states coincide up to some pass
 * therefore share that prefix: PassManager::run() looks each cacheable
 * pass up before running it and replays the stored result instead --
 * the longest cached prefix of the pipeline is skipped, and the first
 * diverging pass misses (its input fingerprint differs) and everything
 * after it runs for real.
 *
 * The cache key is a 128-bit streaming FNV-1a digest of the canonical
 * text (support/fnv_stream.h): the serialization writes straight into
 * the hashing streambuf, so hot lookups stop materializing multi-KB
 * key strings (pipelineStateFingerprint() still renders the text for
 * tests and debugging; `pass.fingerprint_ms` tracks hashing cost).
 * The in-memory store is size-capped (FIFO eviction) and spills to the
 * same content-addressed `--cache-dir` layout as the estimator cache:
 *
 *   <dir>/pipeline.index      list of entry hashes (atomic rewrite)
 *   <dir>/pipeline/<hash>     one entry: full key + payload + stats
 *
 * with version-stamped headers, per-entry checksums, atomic temp+rename
 * writes and skip-and-warn on corruption (support/cache_store.h), so
 * pomd warm-starts pipelines across restarts.
 *
 * The cache is disabled by default (process-wide flag); pomc/pom-opt
 * `--pipeline-cache`, pomd, and the benches switch it on. DSE per-point
 * verification opts out thread-locally (PipelineCacheDisableScope) so
 * the oracle always exercises the real pipeline.
 */

#ifndef POM_PASS_PIPELINE_CACHE_H
#define POM_PASS_PIPELINE_CACHE_H

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "pass/pass.h"
#include "support/cache_store.h"

namespace pom::pass {

/** One cached pass result: replay payload + the recorded execution. */
struct PipelineCacheEntry
{
    /** Replay data; meaning depends on the pass's CachePayloadKind. */
    std::string payload;

    /** The statistics the original run() recorded. */
    std::map<std::string, std::int64_t> statistics;

    /** Wall-clock seconds of the original (uncached) run. */
    double seconds = 0.0;
};

/**
 * Full cache key of one pass execution: a 128-bit digest (32 hex
 * chars) over the version stamp, pass identity (name + canonical
 * options) and the state fingerprint, streamed into the hash without
 * materializing the canonical text. @p funcText, when non-null, stands
 * in for state.func's print (the PassManager passes pending cached IR
 * text so a fingerprint never forces a parse).
 */
std::string passCacheKey(const Pass &pass, const PipelineState &state,
                         const std::string *funcText = nullptr);

/**
 * Write the byte-stable textual serialization of a PipelineState -- the
 * state component of passCacheKey() -- to @p os (which may be a
 * hashing stream).
 */
void pipelineStateFingerprintTo(std::ostream &os,
                                const PipelineState &state,
                                const std::string *funcText = nullptr);

/**
 * The state serialization as a string, for tests and debugging.
 */
std::string
pipelineStateFingerprint(const PipelineState &state,
                         const std::string *funcText = nullptr);

/**
 * Serialize one (key, entry) pair as the on-disk entry format:
 * version-stamped header, length-prefixed key, hexfloat seconds,
 * length-prefixed stats and payload, trailing checksum line.
 */
std::string encodePipelineCacheEntry(const std::string &key,
                                     const PipelineCacheEntry &entry);

/**
 * Parse an entry produced by encodePipelineCacheEntry(). Returns false
 * with a diagnostic in @p error on a version/format mismatch, checksum
 * failure, or any malformed field.
 */
bool decodePipelineCacheEntry(const std::string &text, std::string &key,
                              PipelineCacheEntry &entry,
                              std::string &error);

/**
 * Thread-safe fingerprint -> PipelineCacheEntry map with hit
 * statistics, a FIFO size cap, and content-addressed disk spill.
 */
class PipelineCache
{
  public:
    /** Cached entry for @p key; counts a hit/miss either way. */
    std::optional<PipelineCacheEntry> lookup(const std::string &key);

    /** Insert (first writer wins); evicts FIFO past the size cap. */
    void store(const std::string &key, PipelineCacheEntry entry);

    std::uint64_t hits() const { return hits_.load(); }
    std::uint64_t misses() const { return misses_.load(); }
    std::size_t size() const;

    /** In-memory entry cap; 0 means unlimited. */
    std::size_t capacity() const;
    void setCapacity(std::size_t capacity);

    /** Drop all entries and reset the statistics (cold-run benches). */
    void clear();

    /** Copy of all entries, insertion-ordered (spilling, tests). */
    std::vector<std::pair<std::string, PipelineCacheEntry>>
    snapshot() const;

    /**
     * Load `<dir>/pipeline.index` + objects written by saveDir().
     * Missing directory/index -> cold start (true, zero stats); wrong
     * format/version -> clean error. Corrupt entries are skipped with
     * a warning. Does not touch the hit/miss statistics.
     */
    bool loadDir(const std::string &dir,
                 support::CacheSpillStats &stats, std::string &error);

    /**
     * Spill every in-memory entry under @p dir (created on demand),
     * content-addressed; atomic writes, index merge with concurrent
     * savers, existing objects left untouched.
     */
    bool saveDir(const std::string &dir,
                 support::CacheSpillStats &stats,
                 std::string &error) const;

    /** The process-wide cache PassManager::run() consults. */
    static PipelineCache &global();

  private:
    void evictLocked();

    mutable std::mutex mutex_;
    std::unordered_map<std::string, PipelineCacheEntry> map_;
    std::deque<std::string> order_; ///< insertion order (FIFO evict)
    std::size_t capacity_ = 4096;
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
};

/** Process-wide switch; off by default (tools/benches opt in). */
void setPipelineCacheEnabled(bool enabled);
bool pipelineCacheEnabled();

/**
 * True when PassManager::run() should consult the cache on this
 * thread: the process-wide switch is on and no disable scope is live.
 */
bool pipelineCacheActive();

/**
 * Thread-local opt-out (RAII): per-point DSE verification and other
 * paths that must exercise the real pipeline wrap themselves in one.
 */
class PipelineCacheDisableScope
{
  public:
    PipelineCacheDisableScope();
    ~PipelineCacheDisableScope();
    PipelineCacheDisableScope(const PipelineCacheDisableScope &) = delete;
    PipelineCacheDisableScope &
    operator=(const PipelineCacheDisableScope &) = delete;

  private:
    bool prev_;
};

} // namespace pom::pass

#endif // POM_PASS_PIPELINE_CACHE_H
