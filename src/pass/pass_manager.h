/**
 * @file
 * PassManager: runs an ordered pass list over a PipelineState with
 * per-pass wall-clock timing, statistics collection, optional IR dumps
 * before/after each pass, and optional verification after each pass.
 * Pipelines are built programmatically (addPass) or from a textual
 * spec ("extract-stmts,schedule-apply,verify" with optional per-pass
 * options "pass{key=value,k2=v2}") resolved through the PassRegistry.
 *
 * A process-wide timing aggregator supports `pomc --timing`: every
 * PassManager::run() contributes its executions when aggregation is
 * enabled, so a DSE sweep that lowers thousands of candidate schedules
 * still reports a single per-pass breakdown at the end. The aggregator
 * is backed by the obs metrics registry (`pass.runs.*`,
 * `pass.seconds.*`, `pass.stat.*` counters) and is safe to feed from
 * concurrent PassManagers.
 */

#ifndef POM_PASS_PASS_MANAGER_H
#define POM_PASS_PASS_MANAGER_H

#include <functional>
#include <iosfwd>
#include <utility>

#include "pass/pass.h"

namespace pom::pass {

/** One finished pass invocation. */
struct PassExecution
{
    std::string pass;
    double seconds = 0.0;
    std::map<std::string, std::int64_t> statistics;

    /**
     * Replayed from the pipeline cache instead of run for real.
     * `seconds` is then the lookup+replay cost, and the timing
     * aggregation reports the execution in a separate cached column
     * instead of skewing the per-pass averages.
     */
    bool fromCache = false;
};

/** PassManager behaviour switches. */
struct PassManagerOptions
{
    /** Run the IR verifier after every pass that produced/kept IR. */
    bool verifyAfterEach = false;

    /** Dump the textual IR around each pass to @p dumpStream. */
    bool dumpBeforeEach = false;
    bool dumpAfterEach = false;

    /** Destination for dumps; null means support::diagStream(). */
    std::ostream *dumpStream = nullptr;

    /**
     * Leave state.func unmaterialized when the final passes were
     * pipeline-cache IR hits. Callers that never read the IR (the DSE
     * estimation path reads only stmts + AST) skip the parse
     * entirely; everyone else keeps the default and always gets a
     * real Operation back.
     */
    bool deferFinalIr = false;
};

/** Creates a pass from spec options. */
using PassFactory =
    std::function<std::unique_ptr<Pass>(const PassOptions &)>;

/** Global name -> factory table. Core IR passes self-register. */
class PassRegistry
{
  public:
    static PassRegistry &instance();

    /** Register a pass; fatal on duplicate names. */
    void add(const std::string &name, const std::string &description,
             PassFactory factory);

    bool known(const std::string &name) const;

    /** Instantiate; fatal on unknown names. */
    std::unique_ptr<Pass> create(const std::string &name,
                                 const PassOptions &options = {}) const;

    /** Sorted (name, description) pairs for --list-passes. */
    std::vector<std::pair<std::string, std::string>> list() const;

  private:
    PassRegistry() = default;

    struct Entry
    {
        std::string description;
        PassFactory factory;
    };
    std::map<std::string, Entry> entries_;
};

/**
 * Parse a pipeline spec "a,b{k=v},c" into (name, options) pairs.
 * Throws support::FatalError on malformed specs; names are not
 * resolved against the registry here.
 */
std::vector<std::pair<std::string, PassOptions>>
parsePipelineSpec(const std::string &spec);

/** Runs passes in order, recording timing and statistics. */
class PassManager
{
  public:
    explicit PassManager(PassManagerOptions options = {})
        : options_(options)
    {}

    void addPass(std::unique_ptr<Pass> pass);

    /** Append registry passes from a textual spec. Fatal on unknowns. */
    void addPipeline(const std::string &spec);

    size_t size() const { return passes_.size(); }

    /**
     * Run every pass over @p state. FatalError from a pass aborts the
     * pipeline (executions up to the failure stay recorded).
     */
    void run(PipelineState &state);

    /** Executions recorded by run() calls, in order. */
    const std::vector<PassExecution> &executions() const
    {
        return executions_;
    }

    /** Human-readable per-pass timing table for the recorded runs. */
    std::string timingReport() const;

  private:
    PassManagerOptions options_;
    std::vector<std::unique_ptr<Pass>> passes_;
    std::vector<PassExecution> executions_;
};

// ----- process-wide timing aggregation (pomc --timing) -------------------

/** Enable/disable global aggregation of PassManager executions. */
void setGlobalTimingEnabled(bool enabled);
bool globalTimingEnabled();

/** Drop all aggregated samples. */
void resetGlobalTiming();

/**
 * Aggregated per-pass breakdown: runs, total and average time, summed
 * statistics. Empty string when nothing was recorded.
 */
std::string globalTimingReport();

} // namespace pom::pass

#endif // POM_PASS_PASS_MANAGER_H
