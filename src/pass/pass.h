/**
 * @file
 * The pass infrastructure for POM's lowering pipeline (the MLIR
 * PassManager substitute). A Pass transforms a PipelineState -- the
 * bundle of artifacts flowing through the three IR layers (DSL
 * function, polyhedral statements, polyhedral AST, annotated affine
 * dialect). Front-end passes (extract-stmts, schedule-apply) populate
 * the early fields; IR passes (verify, strip-hls) only need `func` and
 * can therefore also run on textual IR driven by pom-opt.
 */

#ifndef POM_PASS_PASS_H
#define POM_PASS_PASS_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ast/build.h"
#include "ir/operation.h"
#include "transform/poly_stmt.h"

namespace pom::dsl {
class Function;
}

namespace pom::pass {

/** The artifacts a pipeline operates on. Absent pieces are empty/null. */
struct PipelineState
{
    /** Source DSL function (not owned; null when driving textual IR). */
    const dsl::Function *dslFunc = nullptr;

    /** Polyhedral statements (layer 2). */
    std::vector<transform::PolyStmt> stmts;

    /** Polyhedral AST built from the statements. */
    ast::AstNodePtr astRoot;

    /** Annotated affine dialect (layer 3). */
    std::unique_ptr<ir::Operation> func;
};

/** Options parsed from a pipeline spec, e.g. `pass{key=value}`. */
using PassOptions = std::map<std::string, std::string>;

/**
 * How a pass result can be replayed from the pipeline cache
 * (pass/pipeline_cache.h). A cached execution must leave the state
 * byte-identical to a real run; a pass whose effect cannot be encoded
 * that strictly stays NotCacheable.
 */
enum class CachePayloadKind
{
    /** Result cannot be replayed from a payload; always run. */
    NotCacheable,

    /** Pass leaves the state unchanged (analyses); stats-only entry. */
    None,

    /** Pass (re)writes state.func; payload = post-pass textual IR. */
    IrText,

    /** Pass-defined payload via encode/applyCachePayload(). */
    Custom,
};

/**
 * A single pipeline stage. Subclasses implement run() and may record
 * named statistics counters via addStat(); the PassManager collects
 * the counters and the wall-clock time of every execution.
 *
 * Failures are reported by throwing support::FatalError (user-level
 * problems such as malformed IR); POM_ASSERT stays reserved for
 * compiler bugs.
 */
class Pass
{
  public:
    explicit Pass(std::string name) : name_(std::move(name)) {}
    virtual ~Pass() = default;

    const std::string &name() const { return name_; }

    /** Transform @p state in place. */
    virtual void run(PipelineState &state) = 0;

    /** How (whether) this pass participates in the pipeline cache. */
    virtual CachePayloadKind cachePayloadKind() const
    {
        return CachePayloadKind::NotCacheable;
    }

    /**
     * Serialize the effect of the just-finished run() on @p state
     * (Custom kind only). Must be a pure function of the post-run
     * state so a replay is byte-identical.
     */
    virtual std::string encodeCachePayload(const PipelineState &state) const
    {
        (void)state;
        return "";
    }

    /** Replay a payload produced by encodeCachePayload() (Custom). */
    virtual void applyCachePayload(PipelineState &state,
                                   const std::string &payload) const
    {
        (void)state;
        (void)payload;
    }

    /**
     * The canonicalized construction options, part of the cache key.
     * PassRegistry::create() records them; a pass constructed directly
     * with behaviour-changing options must call this itself (or stay
     * NotCacheable, the default).
     */
    void setCacheOptions(PassOptions options)
    {
        cache_options_ = std::move(options);
    }

    const PassOptions &cacheOptions() const { return cache_options_; }

    /** Statistics recorded by the last run() invocation. */
    const std::map<std::string, std::int64_t> &statistics() const
    {
        return stats_;
    }

    /** Reset statistics (PassManager does this before each run). */
    void clearStatistics() { stats_.clear(); }

  protected:
    /** Bump a named statistic counter. */
    void
    addStat(const std::string &key, std::int64_t delta = 1)
    {
        stats_[key] += delta;
    }

  private:
    std::string name_;
    std::map<std::string, std::int64_t> stats_;
    PassOptions cache_options_;
};

} // namespace pom::pass

#endif // POM_PASS_PASS_H
