#include "pass/pass_manager.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <tuple>

#include "ir/parser.h"
#include "ir/verifier.h"
#include "obs/obs.h"
#include "pass/pipeline_cache.h"
#include "support/diagnostics.h"

namespace pom::pass {

// Defined in ir_passes.cpp (same library): verify, strip-hls, count-ops.
void registerCoreIrPasses(PassRegistry &registry);

// ----- PassRegistry ------------------------------------------------------

PassRegistry &
PassRegistry::instance()
{
    static PassRegistry *registry = [] {
        auto *r = new PassRegistry();
        registerCoreIrPasses(*r);
        return r;
    }();
    return *registry;
}

void
PassRegistry::add(const std::string &name, const std::string &description,
                  PassFactory factory)
{
    auto [it, inserted] =
        entries_.emplace(name, Entry{description, std::move(factory)});
    (void)it;
    if (!inserted)
        support::fatal("pass '" + name + "' registered twice");
}

bool
PassRegistry::known(const std::string &name) const
{
    return entries_.count(name) > 0;
}

std::unique_ptr<Pass>
PassRegistry::create(const std::string &name,
                     const PassOptions &options) const
{
    auto it = entries_.find(name);
    if (it == entries_.end()) {
        std::string known_names;
        for (const auto &[n, e] : entries_) {
            (void)e;
            known_names += known_names.empty() ? n : ", " + n;
        }
        support::fatal("unknown pass '" + name + "' (known passes: " +
                       known_names + ")");
    }
    auto pass = it->second.factory(options);
    POM_ASSERT(pass != nullptr, "factory for pass '", name,
               "' returned null");
    // Record the canonical construction options: they are part of the
    // pipeline-cache key, so two instantiations of one pass with
    // different options can never alias each other's cached results.
    pass->setCacheOptions(options);
    return pass;
}

std::vector<std::pair<std::string, std::string>>
PassRegistry::list() const
{
    std::vector<std::pair<std::string, std::string>> out;
    out.reserve(entries_.size());
    for (const auto &[name, entry] : entries_)
        out.emplace_back(name, entry.description);
    return out;
}

// ----- pipeline spec parsing ---------------------------------------------

std::vector<std::pair<std::string, PassOptions>>
parsePipelineSpec(const std::string &spec)
{
    std::vector<std::pair<std::string, PassOptions>> pipeline;
    size_t pos = 0;
    auto skipSpaces = [&] {
        while (pos < spec.size() &&
               (spec[pos] == ' ' || spec[pos] == '\t'))
            ++pos;
    };
    auto parseToken = [&](const char *stop_chars) {
        size_t start = pos;
        while (pos < spec.size() &&
               std::string(stop_chars).find(spec[pos]) == std::string::npos)
            ++pos;
        std::string token = spec.substr(start, pos - start);
        // Trim trailing spaces.
        while (!token.empty() && (token.back() == ' ' ||
                                  token.back() == '\t'))
            token.pop_back();
        return token;
    };

    skipSpaces();
    if (pos >= spec.size())
        return pipeline;
    while (true) {
        skipSpaces();
        std::string name = parseToken(",{");
        if (name.empty())
            support::fatal("pipeline spec: empty pass name in '" + spec +
                           "'");
        PassOptions options;
        if (pos < spec.size() && spec[pos] == '{') {
            ++pos;
            while (true) {
                skipSpaces();
                std::string key = parseToken("=,}");
                if (pos >= spec.size() || spec[pos] != '=') {
                    support::fatal("pipeline spec: expected '=' after "
                                   "option '" + key + "' of pass '" +
                                   name + "'");
                }
                ++pos;
                std::string value = parseToken(",}");
                if (key.empty())
                    support::fatal("pipeline spec: empty option name for "
                                   "pass '" + name + "'");
                options[key] = value;
                if (pos < spec.size() && spec[pos] == ',') {
                    ++pos;
                    continue;
                }
                break;
            }
            if (pos >= spec.size() || spec[pos] != '}')
                support::fatal("pipeline spec: unterminated option list "
                               "for pass '" + name + "'");
            ++pos;
        }
        pipeline.emplace_back(std::move(name), std::move(options));
        skipSpaces();
        if (pos >= spec.size())
            break;
        if (spec[pos] != ',')
            support::fatal("pipeline spec: expected ',' at position " +
                           std::to_string(pos) + " of '" + spec + "'");
        ++pos;
    }
    return pipeline;
}

// ----- global timing aggregation -----------------------------------------
//
// Reimplemented on top of the obs metrics registry: every pipeline run
// contributes counters `pass.runs.<name>` / `pass.stat.<name>.<key>`
// and the accumulator `pass.seconds.<name>`, all under the registry's
// mutex, so concurrent PassManagers (a threaded DSE sweep, the test
// suite) aggregate without data races. First-execution order is the
// registry's insertion order, which keeps the --timing report layout
// identical to the historical single-threaded implementation.

namespace {

constexpr const char *kPipelineRuns = "pass.pipeline_runs";
constexpr const char *kRunsPrefix = "pass.runs.";
constexpr const char *kSecondsPrefix = "pass.seconds.";
constexpr const char *kStatPrefix = "pass.stat.";
constexpr const char *kWallMsPrefix = "pass.wall_ms.";
constexpr const char *kCachedPrefix = "pass.cached.";

std::atomic<bool> g_timing_enabled{false};

void
recordGlobal(const std::vector<PassExecution> &executions)
{
    obs::counterAdd(kPipelineRuns);
    for (const auto &exec : executions) {
        // Cache-replayed executions are counted separately: folding
        // their near-zero lookup times into pass.seconds.* would skew
        // the per-pass averages the profile-first workflow reads.
        if (exec.fromCache) {
            obs::counterAdd(kCachedPrefix + exec.pass);
            continue;
        }
        obs::counterAdd(kRunsPrefix + exec.pass);
        obs::accumulate(kSecondsPrefix + exec.pass, exec.seconds);
        // The accumulator keeps the total; the histogram keeps the
        // per-run distribution (p99 catches a pass that is usually
        // cheap but sometimes pathological).
        obs::histogramRecord(kWallMsPrefix + exec.pass,
                             exec.seconds * 1e3);
        for (const auto &[key, value] : exec.statistics)
            obs::counterAdd(kStatPrefix + exec.pass + "." + key, value);
    }
}

} // namespace

void
setGlobalTimingEnabled(bool enabled)
{
    g_timing_enabled.store(enabled, std::memory_order_relaxed);
}

bool
globalTimingEnabled()
{
    return g_timing_enabled.load(std::memory_order_relaxed);
}

void
resetGlobalTiming()
{
    obs::resetMetricsWithPrefix("pass.");
    obs::resetHistogramsWithPrefix("pass.");
}

std::string
globalTimingReport()
{
    auto metrics = obs::metricsSnapshot();
    std::int64_t pipeline_runs = 0;
    // (name, runs, seconds, cached) in first-execution order. A pass
    // may appear through its seconds accumulator (ran for real at
    // least once), its cached counter (every execution replayed from
    // the pipeline cache), or both.
    std::vector<std::tuple<std::string, std::int64_t, double,
                           std::int64_t>>
        rows;
    auto rowFor = [&rows](const std::string &pass)
        -> std::tuple<std::string, std::int64_t, double, std::int64_t> & {
        for (auto &row : rows) {
            if (std::get<0>(row) == pass)
                return row;
        }
        rows.emplace_back(pass, 0, 0.0, 0);
        return rows.back();
    };
    const size_t seconds_len = std::string(kSecondsPrefix).size();
    const size_t cached_len = std::string(kCachedPrefix).size();
    for (const auto &[name, metric] : metrics) {
        if (name == kPipelineRuns)
            pipeline_runs = metric.count;
        else if (name.rfind(kSecondsPrefix, 0) == 0)
            std::get<2>(rowFor(name.substr(seconds_len))) = metric.value;
        else if (name.rfind(kCachedPrefix, 0) == 0)
            std::get<3>(rowFor(name.substr(cached_len))) = metric.count;
    }
    for (auto &[pass, runs, seconds, cached] : rows) {
        (void)seconds;
        (void)cached;
        runs = obs::counterValue(kRunsPrefix + pass);
    }
    if (rows.empty())
        return "";
    std::ostringstream os;
    os << "---- pass timing (" << pipeline_runs << " pipeline runs) ----\n";
    char line[160];
    double total = 0.0;
    for (const auto &[pass, runs, seconds, cached] : rows) {
        total += seconds;
        // A pass whose every execution replayed from the pipeline
        // cache has no real runs to average; only its cached row
        // prints.
        if (runs > 0 || cached == 0) {
            std::snprintf(
                line, sizeof(line),
                "  %-20s %8lld runs  %10.6f s total  %8.3f ms avg\n",
                pass.c_str(), static_cast<long long>(runs), seconds,
                runs > 0 ? seconds * 1e3 / runs : 0.0);
            os << line;
        }
        if (cached > 0) {
            // Cached replays sit in their own column: their lookup
            // cost is not pass time and must not dilute the averages.
            std::snprintf(line, sizeof(line),
                          "  %-20s %8lld runs  (cached)\n",
                          (pass + " (cached)").c_str(),
                          static_cast<long long>(cached));
            os << line;
        }
    }
    std::snprintf(line, sizeof(line), "  %-20s %16s %10.6f s total\n",
                  "total", "", total);
    os << line;
    return os.str();
}

// ----- PassManager -------------------------------------------------------

void
PassManager::addPass(std::unique_ptr<Pass> pass)
{
    POM_ASSERT(pass != nullptr, "null pass added to PassManager");
    passes_.push_back(std::move(pass));
}

void
PassManager::addPipeline(const std::string &spec)
{
    for (auto &[name, options] : parsePipelineSpec(spec))
        addPass(PassRegistry::instance().create(name, options));
}

namespace {

void
dumpState(const PipelineState &state, const std::string &label,
          std::ostream &os)
{
    os << "// ---- " << label << " ----\n";
    if (state.func)
        os << state.func->str();
    else
        os << "// <no affine IR at this point in the pipeline>\n";
}

} // namespace

void
PassManager::run(PipelineState &state)
{
    std::ostream &dump_os = options_.dumpStream ? *options_.dumpStream
                                                : support::diagStream();
    // When an IrText cache hit replays printed IR, the parse back into
    // state.func is deferred until something actually reads the IR
    // (the next uncached pass, verification, a dump, or the end of the
    // pipeline). While deferred, `pending_ir` is the authoritative IR
    // and state.func is null; the round-trip guarantee of the parser
    // keeps the eventual print byte-identical either way.
    std::string pending_ir;
    bool ir_pending = false;
    auto materialize = [&] {
        if (!ir_pending)
            return;
        state.func = ir::parseIr(pending_ir);
        pending_ir.clear();
        ir_pending = false;
    };

    for (auto &pass : passes_) {
        if (options_.dumpBeforeEach) {
            materialize();
            dumpState(state, "IR before " + pass->name(), dump_os);
        }
        const CachePayloadKind kind = pass->cachePayloadKind();
        const bool cacheable =
            kind != CachePayloadKind::NotCacheable &&
            pipelineCacheActive();
        std::string key;
        bool replayed = false;
        if (cacheable) {
            auto lookup_start = std::chrono::steady_clock::now();
            const std::string ir_text =
                ir_pending ? pending_ir
                           : (state.func ? state.func->str()
                                         : std::string());
            key = passCacheKey(*pass, state, &ir_text);
            auto entry = PipelineCache::global().lookup(key);
            if (entry) {
                switch (kind) {
                case CachePayloadKind::None:
                    break;
                case CachePayloadKind::IrText:
                    state.func.reset();
                    pending_ir = entry->payload;
                    ir_pending = true;
                    break;
                case CachePayloadKind::Custom:
                    pass->applyCachePayload(state, entry->payload);
                    break;
                case CachePayloadKind::NotCacheable:
                    break;
                }
                PassExecution exec;
                exec.pass = pass->name();
                exec.seconds =
                    std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - lookup_start)
                        .count();
                exec.statistics = entry->statistics;
                exec.fromCache = true;
                executions_.push_back(std::move(exec));
                obs::counterAdd("pass.cache.hits");
                replayed = true;
            } else {
                obs::counterAdd("pass.cache.misses");
            }
            if (obs::metricsEnabled()) {
                obs::histogramRecord(
                    "pass.cache.lookup_ms",
                    std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - lookup_start)
                            .count() *
                        1e3);
            }
        }
        if (!replayed) {
            materialize();
            pass->clearStatistics();
            auto start = std::chrono::steady_clock::now();
            {
                obs::Span span("pass:" + pass->name(), "pass");
                pass->run(state);
            }
            auto end = std::chrono::steady_clock::now();
            PassExecution exec;
            exec.pass = pass->name();
            exec.seconds =
                std::chrono::duration<double>(end - start).count();
            exec.statistics = pass->statistics();
            if (cacheable) {
                PipelineCacheEntry entry;
                entry.seconds = exec.seconds;
                entry.statistics = exec.statistics;
                bool storable = true;
                switch (kind) {
                case CachePayloadKind::IrText:
                    if (state.func)
                        entry.payload = state.func->str();
                    else
                        storable = false;
                    break;
                case CachePayloadKind::Custom:
                    entry.payload = pass->encodeCachePayload(state);
                    break;
                case CachePayloadKind::None:
                case CachePayloadKind::NotCacheable:
                    break;
                }
                if (storable)
                    PipelineCache::global().store(key,
                                                  std::move(entry));
            }
            executions_.push_back(std::move(exec));
        }
        if (options_.verifyAfterEach) {
            materialize();
            if (state.func) {
                auto errors = ir::verify(*state.func);
                if (!errors.empty()) {
                    support::fatal(
                        "IR verification failed after pass '" +
                        pass->name() + "': " + errors[0]);
                }
            }
        }
        if (options_.dumpAfterEach) {
            materialize();
            dumpState(state, "IR after " + pass->name(), dump_os);
        }
    }
    if (!options_.deferFinalIr)
        materialize();
    // Aggregate when either --timing asked for a report or metrics
    // export is on (the pass.* counters feed the metrics JSON too).
    if (globalTimingEnabled() || obs::metricsEnabled())
        recordGlobal(executions_);
}

std::string
PassManager::timingReport() const
{
    std::ostringstream os;
    os << "---- pass pipeline timing ----\n";
    char line[160];
    double total = 0.0;
    for (const auto &exec : executions_) {
        total += exec.seconds;
        std::string stats;
        for (const auto &[key, value] : exec.statistics) {
            stats += stats.empty() ? "" : ", ";
            stats += key;
            stats += "=";
            stats += std::to_string(value);
        }
        const std::string label =
            exec.fromCache ? exec.pass + " (cached)" : exec.pass;
        std::snprintf(line, sizeof(line), "  %-20s %10.6f s%s%s%s\n",
                      label.c_str(), exec.seconds,
                      stats.empty() ? "" : "   (",
                      stats.c_str(), stats.empty() ? "" : ")");
        os << line;
    }
    std::snprintf(line, sizeof(line), "  %-20s %10.6f s\n", "total",
                  total);
    os << line;
    return os.str();
}

} // namespace pom::pass
