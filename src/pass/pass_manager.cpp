#include "pass/pass_manager.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <mutex>
#include <sstream>

#include "ir/verifier.h"
#include "support/diagnostics.h"

namespace pom::pass {

// Defined in ir_passes.cpp (same library): verify, strip-hls, count-ops.
void registerCoreIrPasses(PassRegistry &registry);

// ----- PassRegistry ------------------------------------------------------

PassRegistry &
PassRegistry::instance()
{
    static PassRegistry *registry = [] {
        auto *r = new PassRegistry();
        registerCoreIrPasses(*r);
        return r;
    }();
    return *registry;
}

void
PassRegistry::add(const std::string &name, const std::string &description,
                  PassFactory factory)
{
    auto [it, inserted] =
        entries_.emplace(name, Entry{description, std::move(factory)});
    (void)it;
    if (!inserted)
        support::fatal("pass '" + name + "' registered twice");
}

bool
PassRegistry::known(const std::string &name) const
{
    return entries_.count(name) > 0;
}

std::unique_ptr<Pass>
PassRegistry::create(const std::string &name,
                     const PassOptions &options) const
{
    auto it = entries_.find(name);
    if (it == entries_.end()) {
        std::string known_names;
        for (const auto &[n, e] : entries_) {
            (void)e;
            known_names += known_names.empty() ? n : ", " + n;
        }
        support::fatal("unknown pass '" + name + "' (known passes: " +
                       known_names + ")");
    }
    auto pass = it->second.factory(options);
    POM_ASSERT(pass != nullptr, "factory for pass '", name,
               "' returned null");
    return pass;
}

std::vector<std::pair<std::string, std::string>>
PassRegistry::list() const
{
    std::vector<std::pair<std::string, std::string>> out;
    out.reserve(entries_.size());
    for (const auto &[name, entry] : entries_)
        out.emplace_back(name, entry.description);
    return out;
}

// ----- pipeline spec parsing ---------------------------------------------

std::vector<std::pair<std::string, PassOptions>>
parsePipelineSpec(const std::string &spec)
{
    std::vector<std::pair<std::string, PassOptions>> pipeline;
    size_t pos = 0;
    auto skipSpaces = [&] {
        while (pos < spec.size() &&
               (spec[pos] == ' ' || spec[pos] == '\t'))
            ++pos;
    };
    auto parseToken = [&](const char *stop_chars) {
        size_t start = pos;
        while (pos < spec.size() &&
               std::string(stop_chars).find(spec[pos]) == std::string::npos)
            ++pos;
        std::string token = spec.substr(start, pos - start);
        // Trim trailing spaces.
        while (!token.empty() && (token.back() == ' ' ||
                                  token.back() == '\t'))
            token.pop_back();
        return token;
    };

    skipSpaces();
    if (pos >= spec.size())
        return pipeline;
    while (true) {
        skipSpaces();
        std::string name = parseToken(",{");
        if (name.empty())
            support::fatal("pipeline spec: empty pass name in '" + spec +
                           "'");
        PassOptions options;
        if (pos < spec.size() && spec[pos] == '{') {
            ++pos;
            while (true) {
                skipSpaces();
                std::string key = parseToken("=,}");
                if (pos >= spec.size() || spec[pos] != '=') {
                    support::fatal("pipeline spec: expected '=' after "
                                   "option '" + key + "' of pass '" +
                                   name + "'");
                }
                ++pos;
                std::string value = parseToken(",}");
                if (key.empty())
                    support::fatal("pipeline spec: empty option name for "
                                   "pass '" + name + "'");
                options[key] = value;
                if (pos < spec.size() && spec[pos] == ',') {
                    ++pos;
                    continue;
                }
                break;
            }
            if (pos >= spec.size() || spec[pos] != '}')
                support::fatal("pipeline spec: unterminated option list "
                               "for pass '" + name + "'");
            ++pos;
        }
        pipeline.emplace_back(std::move(name), std::move(options));
        skipSpaces();
        if (pos >= spec.size())
            break;
        if (spec[pos] != ',')
            support::fatal("pipeline spec: expected ',' at position " +
                           std::to_string(pos) + " of '" + spec + "'");
        ++pos;
    }
    return pipeline;
}

// ----- global timing aggregation -----------------------------------------

namespace {

struct GlobalTiming
{
    std::mutex mutex;
    bool enabled = false;
    std::int64_t pipelineRuns = 0;
    // Insertion-ordered aggregation per pass name.
    std::vector<std::string> order;
    std::map<std::string, PassExecution> byPass;
    std::map<std::string, std::int64_t> runsByPass;
};

GlobalTiming &
globalTiming()
{
    static GlobalTiming *timing = new GlobalTiming();
    return *timing;
}

void
recordGlobal(const std::vector<PassExecution> &executions)
{
    GlobalTiming &g = globalTiming();
    std::lock_guard<std::mutex> lock(g.mutex);
    if (!g.enabled)
        return;
    ++g.pipelineRuns;
    for (const auto &exec : executions) {
        auto it = g.byPass.find(exec.pass);
        if (it == g.byPass.end()) {
            g.order.push_back(exec.pass);
            it = g.byPass.emplace(exec.pass, PassExecution{exec.pass, 0.0,
                                                           {}}).first;
        }
        it->second.seconds += exec.seconds;
        for (const auto &[key, value] : exec.statistics)
            it->second.statistics[key] += value;
        ++g.runsByPass[exec.pass];
    }
}

} // namespace

void
setGlobalTimingEnabled(bool enabled)
{
    GlobalTiming &g = globalTiming();
    std::lock_guard<std::mutex> lock(g.mutex);
    g.enabled = enabled;
}

bool
globalTimingEnabled()
{
    GlobalTiming &g = globalTiming();
    std::lock_guard<std::mutex> lock(g.mutex);
    return g.enabled;
}

void
resetGlobalTiming()
{
    GlobalTiming &g = globalTiming();
    std::lock_guard<std::mutex> lock(g.mutex);
    g.pipelineRuns = 0;
    g.order.clear();
    g.byPass.clear();
    g.runsByPass.clear();
}

std::string
globalTimingReport()
{
    GlobalTiming &g = globalTiming();
    std::lock_guard<std::mutex> lock(g.mutex);
    if (g.order.empty())
        return "";
    std::ostringstream os;
    os << "---- pass timing (" << g.pipelineRuns << " pipeline runs) ----\n";
    char line[160];
    double total = 0.0;
    for (const auto &name : g.order) {
        const PassExecution &exec = g.byPass.at(name);
        std::int64_t runs = g.runsByPass.at(name);
        total += exec.seconds;
        std::snprintf(line, sizeof(line),
                      "  %-20s %8lld runs  %10.6f s total  %8.3f ms avg\n",
                      name.c_str(), static_cast<long long>(runs),
                      exec.seconds,
                      runs > 0 ? exec.seconds * 1e3 / runs : 0.0);
        os << line;
    }
    std::snprintf(line, sizeof(line), "  %-20s %16s %10.6f s total\n",
                  "total", "", total);
    os << line;
    return os.str();
}

// ----- PassManager -------------------------------------------------------

void
PassManager::addPass(std::unique_ptr<Pass> pass)
{
    POM_ASSERT(pass != nullptr, "null pass added to PassManager");
    passes_.push_back(std::move(pass));
}

void
PassManager::addPipeline(const std::string &spec)
{
    for (auto &[name, options] : parsePipelineSpec(spec))
        addPass(PassRegistry::instance().create(name, options));
}

namespace {

void
dumpState(const PipelineState &state, const std::string &label,
          std::ostream &os)
{
    os << "// ---- " << label << " ----\n";
    if (state.func)
        os << state.func->str();
    else
        os << "// <no affine IR at this point in the pipeline>\n";
}

} // namespace

void
PassManager::run(PipelineState &state)
{
    std::ostream &dump_os =
        options_.dumpStream ? *options_.dumpStream : std::cerr;
    for (auto &pass : passes_) {
        if (options_.dumpBeforeEach)
            dumpState(state, "IR before " + pass->name(), dump_os);
        pass->clearStatistics();
        auto start = std::chrono::steady_clock::now();
        pass->run(state);
        auto end = std::chrono::steady_clock::now();
        PassExecution exec;
        exec.pass = pass->name();
        exec.seconds =
            std::chrono::duration<double>(end - start).count();
        exec.statistics = pass->statistics();
        executions_.push_back(std::move(exec));
        if (options_.verifyAfterEach && state.func) {
            auto errors = ir::verify(*state.func);
            if (!errors.empty()) {
                support::fatal("IR verification failed after pass '" +
                               pass->name() + "': " + errors[0]);
            }
        }
        if (options_.dumpAfterEach)
            dumpState(state, "IR after " + pass->name(), dump_os);
    }
    if (globalTimingEnabled())
        recordGlobal(executions_);
}

std::string
PassManager::timingReport() const
{
    std::ostringstream os;
    os << "---- pass pipeline timing ----\n";
    char line[160];
    double total = 0.0;
    for (const auto &exec : executions_) {
        total += exec.seconds;
        std::string stats;
        for (const auto &[key, value] : exec.statistics) {
            stats += stats.empty() ? "" : ", ";
            stats += key;
            stats += "=";
            stats += std::to_string(value);
        }
        std::snprintf(line, sizeof(line), "  %-20s %10.6f s%s%s%s\n",
                      exec.pass.c_str(), exec.seconds,
                      stats.empty() ? "" : "   (",
                      stats.c_str(), stats.empty() ? "" : ")");
        os << line;
    }
    std::snprintf(line, sizeof(line), "  %-20s %10.6f s\n", "total",
                  total);
    os << line;
    return os.str();
}

} // namespace pom::pass
