#include "pass/pass_manager.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <tuple>

#include "ir/verifier.h"
#include "obs/obs.h"
#include "support/diagnostics.h"

namespace pom::pass {

// Defined in ir_passes.cpp (same library): verify, strip-hls, count-ops.
void registerCoreIrPasses(PassRegistry &registry);

// ----- PassRegistry ------------------------------------------------------

PassRegistry &
PassRegistry::instance()
{
    static PassRegistry *registry = [] {
        auto *r = new PassRegistry();
        registerCoreIrPasses(*r);
        return r;
    }();
    return *registry;
}

void
PassRegistry::add(const std::string &name, const std::string &description,
                  PassFactory factory)
{
    auto [it, inserted] =
        entries_.emplace(name, Entry{description, std::move(factory)});
    (void)it;
    if (!inserted)
        support::fatal("pass '" + name + "' registered twice");
}

bool
PassRegistry::known(const std::string &name) const
{
    return entries_.count(name) > 0;
}

std::unique_ptr<Pass>
PassRegistry::create(const std::string &name,
                     const PassOptions &options) const
{
    auto it = entries_.find(name);
    if (it == entries_.end()) {
        std::string known_names;
        for (const auto &[n, e] : entries_) {
            (void)e;
            known_names += known_names.empty() ? n : ", " + n;
        }
        support::fatal("unknown pass '" + name + "' (known passes: " +
                       known_names + ")");
    }
    auto pass = it->second.factory(options);
    POM_ASSERT(pass != nullptr, "factory for pass '", name,
               "' returned null");
    return pass;
}

std::vector<std::pair<std::string, std::string>>
PassRegistry::list() const
{
    std::vector<std::pair<std::string, std::string>> out;
    out.reserve(entries_.size());
    for (const auto &[name, entry] : entries_)
        out.emplace_back(name, entry.description);
    return out;
}

// ----- pipeline spec parsing ---------------------------------------------

std::vector<std::pair<std::string, PassOptions>>
parsePipelineSpec(const std::string &spec)
{
    std::vector<std::pair<std::string, PassOptions>> pipeline;
    size_t pos = 0;
    auto skipSpaces = [&] {
        while (pos < spec.size() &&
               (spec[pos] == ' ' || spec[pos] == '\t'))
            ++pos;
    };
    auto parseToken = [&](const char *stop_chars) {
        size_t start = pos;
        while (pos < spec.size() &&
               std::string(stop_chars).find(spec[pos]) == std::string::npos)
            ++pos;
        std::string token = spec.substr(start, pos - start);
        // Trim trailing spaces.
        while (!token.empty() && (token.back() == ' ' ||
                                  token.back() == '\t'))
            token.pop_back();
        return token;
    };

    skipSpaces();
    if (pos >= spec.size())
        return pipeline;
    while (true) {
        skipSpaces();
        std::string name = parseToken(",{");
        if (name.empty())
            support::fatal("pipeline spec: empty pass name in '" + spec +
                           "'");
        PassOptions options;
        if (pos < spec.size() && spec[pos] == '{') {
            ++pos;
            while (true) {
                skipSpaces();
                std::string key = parseToken("=,}");
                if (pos >= spec.size() || spec[pos] != '=') {
                    support::fatal("pipeline spec: expected '=' after "
                                   "option '" + key + "' of pass '" +
                                   name + "'");
                }
                ++pos;
                std::string value = parseToken(",}");
                if (key.empty())
                    support::fatal("pipeline spec: empty option name for "
                                   "pass '" + name + "'");
                options[key] = value;
                if (pos < spec.size() && spec[pos] == ',') {
                    ++pos;
                    continue;
                }
                break;
            }
            if (pos >= spec.size() || spec[pos] != '}')
                support::fatal("pipeline spec: unterminated option list "
                               "for pass '" + name + "'");
            ++pos;
        }
        pipeline.emplace_back(std::move(name), std::move(options));
        skipSpaces();
        if (pos >= spec.size())
            break;
        if (spec[pos] != ',')
            support::fatal("pipeline spec: expected ',' at position " +
                           std::to_string(pos) + " of '" + spec + "'");
        ++pos;
    }
    return pipeline;
}

// ----- global timing aggregation -----------------------------------------
//
// Reimplemented on top of the obs metrics registry: every pipeline run
// contributes counters `pass.runs.<name>` / `pass.stat.<name>.<key>`
// and the accumulator `pass.seconds.<name>`, all under the registry's
// mutex, so concurrent PassManagers (a threaded DSE sweep, the test
// suite) aggregate without data races. First-execution order is the
// registry's insertion order, which keeps the --timing report layout
// identical to the historical single-threaded implementation.

namespace {

constexpr const char *kPipelineRuns = "pass.pipeline_runs";
constexpr const char *kRunsPrefix = "pass.runs.";
constexpr const char *kSecondsPrefix = "pass.seconds.";
constexpr const char *kStatPrefix = "pass.stat.";
constexpr const char *kWallMsPrefix = "pass.wall_ms.";

std::atomic<bool> g_timing_enabled{false};

void
recordGlobal(const std::vector<PassExecution> &executions)
{
    obs::counterAdd(kPipelineRuns);
    for (const auto &exec : executions) {
        obs::counterAdd(kRunsPrefix + exec.pass);
        obs::accumulate(kSecondsPrefix + exec.pass, exec.seconds);
        // The accumulator keeps the total; the histogram keeps the
        // per-run distribution (p99 catches a pass that is usually
        // cheap but sometimes pathological).
        obs::histogramRecord(kWallMsPrefix + exec.pass,
                             exec.seconds * 1e3);
        for (const auto &[key, value] : exec.statistics)
            obs::counterAdd(kStatPrefix + exec.pass + "." + key, value);
    }
}

} // namespace

void
setGlobalTimingEnabled(bool enabled)
{
    g_timing_enabled.store(enabled, std::memory_order_relaxed);
}

bool
globalTimingEnabled()
{
    return g_timing_enabled.load(std::memory_order_relaxed);
}

void
resetGlobalTiming()
{
    obs::resetMetricsWithPrefix("pass.");
    obs::resetHistogramsWithPrefix("pass.");
}

std::string
globalTimingReport()
{
    auto metrics = obs::metricsSnapshot();
    std::int64_t pipeline_runs = 0;
    // (name, runs, seconds) in first-execution order.
    std::vector<std::tuple<std::string, std::int64_t, double>> rows;
    const size_t seconds_len = std::string(kSecondsPrefix).size();
    for (const auto &[name, metric] : metrics) {
        if (name == kPipelineRuns)
            pipeline_runs = metric.count;
        else if (name.rfind(kSecondsPrefix, 0) == 0)
            rows.emplace_back(name.substr(seconds_len), 0, metric.value);
    }
    for (auto &[pass, runs, seconds] : rows) {
        (void)seconds;
        runs = obs::counterValue(kRunsPrefix + pass);
    }
    if (rows.empty())
        return "";
    std::ostringstream os;
    os << "---- pass timing (" << pipeline_runs << " pipeline runs) ----\n";
    char line[160];
    double total = 0.0;
    for (const auto &[pass, runs, seconds] : rows) {
        total += seconds;
        std::snprintf(line, sizeof(line),
                      "  %-20s %8lld runs  %10.6f s total  %8.3f ms avg\n",
                      pass.c_str(), static_cast<long long>(runs), seconds,
                      runs > 0 ? seconds * 1e3 / runs : 0.0);
        os << line;
    }
    std::snprintf(line, sizeof(line), "  %-20s %16s %10.6f s total\n",
                  "total", "", total);
    os << line;
    return os.str();
}

// ----- PassManager -------------------------------------------------------

void
PassManager::addPass(std::unique_ptr<Pass> pass)
{
    POM_ASSERT(pass != nullptr, "null pass added to PassManager");
    passes_.push_back(std::move(pass));
}

void
PassManager::addPipeline(const std::string &spec)
{
    for (auto &[name, options] : parsePipelineSpec(spec))
        addPass(PassRegistry::instance().create(name, options));
}

namespace {

void
dumpState(const PipelineState &state, const std::string &label,
          std::ostream &os)
{
    os << "// ---- " << label << " ----\n";
    if (state.func)
        os << state.func->str();
    else
        os << "// <no affine IR at this point in the pipeline>\n";
}

} // namespace

void
PassManager::run(PipelineState &state)
{
    std::ostream &dump_os = options_.dumpStream ? *options_.dumpStream
                                                : support::diagStream();
    for (auto &pass : passes_) {
        if (options_.dumpBeforeEach)
            dumpState(state, "IR before " + pass->name(), dump_os);
        pass->clearStatistics();
        auto start = std::chrono::steady_clock::now();
        {
            obs::Span span("pass:" + pass->name(), "pass");
            pass->run(state);
        }
        auto end = std::chrono::steady_clock::now();
        PassExecution exec;
        exec.pass = pass->name();
        exec.seconds =
            std::chrono::duration<double>(end - start).count();
        exec.statistics = pass->statistics();
        executions_.push_back(std::move(exec));
        if (options_.verifyAfterEach && state.func) {
            auto errors = ir::verify(*state.func);
            if (!errors.empty()) {
                support::fatal("IR verification failed after pass '" +
                               pass->name() + "': " + errors[0]);
            }
        }
        if (options_.dumpAfterEach)
            dumpState(state, "IR after " + pass->name(), dump_os);
    }
    // Aggregate when either --timing asked for a report or metrics
    // export is on (the pass.* counters feed the metrics JSON too).
    if (globalTimingEnabled() || obs::metricsEnabled())
        recordGlobal(executions_);
}

std::string
PassManager::timingReport() const
{
    std::ostringstream os;
    os << "---- pass pipeline timing ----\n";
    char line[160];
    double total = 0.0;
    for (const auto &exec : executions_) {
        total += exec.seconds;
        std::string stats;
        for (const auto &[key, value] : exec.statistics) {
            stats += stats.empty() ? "" : ", ";
            stats += key;
            stats += "=";
            stats += std::to_string(value);
        }
        std::snprintf(line, sizeof(line), "  %-20s %10.6f s%s%s%s\n",
                      exec.pass.c_str(), exec.seconds,
                      stats.empty() ? "" : "   (",
                      stats.c_str(), stats.empty() ? "" : ")");
        os << line;
    }
    std::snprintf(line, sizeof(line), "  %-20s %10.6f s\n", "total",
                  total);
    os << line;
    return os.str();
}

} // namespace pom::pass
