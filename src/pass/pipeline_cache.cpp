#include "pass/pipeline_cache.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "dsl/dsl.h"
#include "obs/obs.h"
#include "support/diagnostics.h"
#include "support/fnv_stream.h"
#include "support/string_util.h"
#include "support/version.h"

namespace pom::pass {

// ----- fingerprints ------------------------------------------------------

namespace {

const char *
directiveKindName(dsl::Directive::Kind kind)
{
    switch (kind) {
    case dsl::Directive::Kind::Interchange: return "interchange";
    case dsl::Directive::Kind::Split: return "split";
    case dsl::Directive::Kind::Tile: return "tile";
    case dsl::Directive::Kind::Skew: return "skew";
    case dsl::Directive::Kind::After: return "after";
    case dsl::Directive::Kind::Fuse: return "fuse";
    case dsl::Directive::Kind::Pipeline: return "pipeline";
    case dsl::Directive::Kind::Unroll: return "unroll";
    }
    return "?";
}

/**
 * Everything a lowering pass can observe in the DSL function: name,
 * placeholder shapes/types *and partition state* (ast-to-affine turns
 * partition factors into fn attributes, and DSE materialization
 * mutates them between runs), compute expressions and their recorded
 * scheduling directives.
 */
void
dslFingerprint(const dsl::Function &func, std::ostream &os)
{
    os << "fn " << func.name() << "\n";
    for (const dsl::Placeholder *p : func.placeholders()) {
        os << "ph " << p->name() << " t="
           << static_cast<int>(p->elementType()) << " [";
        for (auto d : p->shape())
            os << d << ",";
        os << "] part=[";
        for (auto f : p->partitionFactors())
            os << f << ",";
        os << "]" << p->partitionKind() << "\n";
    }
    for (const dsl::Compute *c : func.computes()) {
        os << "st " << c->name() << " iters=[";
        for (const auto &v : c->iters())
            os << v.name() << ":" << v.lo() << ":" << v.hi() << ",";
        os << "] " << c->dest().str() << " := " << c->rhs().str()
           << "\n";
        for (const auto &d : c->directives()) {
            os << " dir " << directiveKindName(d.kind) << " vars=[";
            for (const auto &v : d.vars)
                os << v << ",";
            os << "] factors=[";
            for (auto f : d.factors)
                os << f << ",";
            os << "] new=[";
            for (const auto &v : d.newVars)
                os << v << ",";
            os << "] other="
               << (d.other != nullptr ? d.other->name() : std::string("-"))
               << "\n";
        }
    }
}

/** Complete per-statement serialization (schedule + accesses + body). */
void
stmtsFingerprint(const std::vector<transform::PolyStmt> &stmts,
                 std::ostream &os)
{
    for (const auto &s : stmts) {
        os << "stmt " << s.sched.name << "\n";
        os << " domain " << s.sched.domain.str() << "\n";
        os << " betas";
        for (auto b : s.sched.betas)
            os << " " << b;
        os << "\n orig " << s.sched.origMap.str() << "\n";
        for (size_t l = 0; l < s.sched.hwPerDim.size(); ++l) {
            const auto &hw = s.sched.hwPerDim[l];
            os << " hw " << l << " ii="
               << (hw.pipelineII ? *hw.pipelineII : -1)
               << " unroll=" << hw.unrollFactor << " indep=";
            for (const auto &a : hw.independentArrays)
                os << a << ",";
            os << "\n";
        }
        for (const auto &a : s.accesses) {
            os << " acc " << a.array << " w=" << (a.isWrite ? 1 : 0)
               << " " << a.map.str() << "\n";
        }
        os << " src "
           << (s.source != nullptr ? s.source->name() : std::string("-"))
           << "\n";
    }
}

} // namespace

void
pipelineStateFingerprintTo(std::ostream &os, const PipelineState &state,
                           const std::string *funcText)
{
    if (state.dslFunc != nullptr) {
        os << "dsl\n";
        dslFingerprint(*state.dslFunc, os);
    } else {
        os << "dsl-none\n";
    }
    os << "stmts " << state.stmts.size() << "\n";
    stmtsFingerprint(state.stmts, os);
    if (state.astRoot) {
        os << "ast\n" << state.astRoot->str() << "\n";
    } else {
        os << "ast-none\n";
    }
    if (funcText != nullptr && !funcText->empty()) {
        os << "ir " << funcText->size() << "\n" << *funcText << "\n";
    } else if (funcText == nullptr && state.func != nullptr) {
        std::string text = state.func->str();
        os << "ir " << text.size() << "\n" << text << "\n";
    } else {
        os << "ir-none\n";
    }
}

std::string
pipelineStateFingerprint(const PipelineState &state,
                         const std::string *funcText)
{
    std::ostringstream os;
    pipelineStateFingerprintTo(os, state, funcText);
    return os.str();
}

std::string
passCacheKey(const Pass &pass, const PipelineState &state,
             const std::string *funcText)
{
    auto t0 = obs::metricsEnabled()
                  ? std::chrono::steady_clock::now()
                  : std::chrono::steady_clock::time_point();
    support::FnvHashStream hash;
    std::ostream &os = hash.out();
    // The version stamp makes keys from another POM release miss
    // instead of replaying a stale result (on-disk entries are
    // additionally header-stamped).
    os << support::kPipelineCacheFormatName << " "
       << support::kVersionString << "\n";
    os << "pass " << pass.name() << "\n";
    for (const auto &[key, value] : pass.cacheOptions())
        os << "opt " << key << "=" << value << "\n";
    pipelineStateFingerprintTo(os, state, funcText);
    if (obs::metricsEnabled()) {
        obs::histogramRecord(
            "pass.fingerprint_ms",
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - t0)
                .count());
    }
    return hash.digest();
}

// ----- on-disk entry format ----------------------------------------------

std::string
encodePipelineCacheEntry(const std::string &key,
                         const PipelineCacheEntry &entry)
{
    std::ostringstream os;
    os << support::cacheFormatHeader(support::kPipelineCacheFormatName);
    os << "key " << key.size() << "\n" << key << "\n";
    char seconds[64];
    std::snprintf(seconds, sizeof(seconds), "%a", entry.seconds);
    os << "seconds " << seconds << "\n";
    os << "stats " << entry.statistics.size() << "\n";
    for (const auto &[name, value] : entry.statistics)
        os << "stat " << name.size() << ":" << name << " " << value
           << "\n";
    os << "payload " << entry.payload.size() << "\n"
       << entry.payload << "\n";
    return support::sealCacheEntry(os.str());
}

bool
decodePipelineCacheEntry(const std::string &text, std::string &key,
                         PipelineCacheEntry &entry, std::string &error)
{
    error.clear();
    entry = PipelineCacheEntry();

    std::size_t body = 0;
    if (!support::openCacheEntry(text,
                                 support::kPipelineCacheFormatName,
                                 body, error)) {
        return false;
    }

    support::CacheEntryReader r{text, body};
    std::string ln;
    auto fail = [&](const std::string &what) {
        error = r.error.empty() ? what : r.error;
        return false;
    };

    if (!r.line(ln) || ln.rfind("key ", 0) != 0)
        return fail("missing key line");
    std::int64_t key_len = 0;
    if (!support::parseInt64(ln.substr(4), key_len) || key_len < 0)
        return fail("malformed key length");
    if (!r.raw(static_cast<std::size_t>(key_len), key))
        return fail("truncated key");

    if (!r.line(ln) || ln.rfind("seconds ", 0) != 0)
        return fail("missing seconds line");
    {
        const std::string value = ln.substr(8);
        char *end = nullptr;
        entry.seconds = std::strtod(value.c_str(), &end);
        if (end == nullptr || *end != '\0' || value.empty())
            return fail("malformed seconds value");
    }

    std::uint64_t count = 0;
    if (!r.line(ln) || !support::scanU64(ln, "stats %" SCNu64, count))
        return fail("missing stats count");
    if (count > 1000000)
        return fail("implausible stat count");
    for (std::uint64_t i = 0; i < count; ++i) {
        if (!r.line(ln) || ln.rfind("stat ", 0) != 0)
            return fail("missing stat line");
        std::string name, tail;
        if (!support::splitNamed(ln.substr(5), name, tail))
            return fail("malformed stat name");
        std::int64_t value = 0;
        // The tail is " <value>"; parseInt64 rejects stray bytes.
        if (tail.empty() || tail[0] != ' ' ||
            !support::parseInt64(tail.substr(1), value)) {
            return fail("malformed stat value");
        }
        entry.statistics.emplace(std::move(name), value);
    }

    if (!r.line(ln) || ln.rfind("payload ", 0) != 0)
        return fail("missing payload line");
    std::int64_t payload_len = 0;
    if (!support::parseInt64(ln.substr(8), payload_len) ||
        payload_len < 0) {
        return fail("malformed payload length");
    }
    if (!r.raw(static_cast<std::size_t>(payload_len), entry.payload))
        return fail("truncated payload");
    return true;
}

// ----- the in-memory cache ------------------------------------------------

std::optional<PipelineCacheEntry>
PipelineCache::lookup(const std::string &key)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = map_.find(key);
    if (it == map_.end()) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        return std::nullopt;
    }
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second;
}

void
PipelineCache::store(const std::string &key, PipelineCacheEntry entry)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto [it, inserted] = map_.emplace(key, std::move(entry));
    (void)it;
    if (!inserted)
        return;
    order_.push_back(key);
    evictLocked();
}

void
PipelineCache::evictLocked()
{
    if (capacity_ == 0)
        return;
    while (map_.size() > capacity_ && !order_.empty()) {
        map_.erase(order_.front());
        order_.pop_front();
    }
}

std::size_t
PipelineCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return map_.size();
}

std::size_t
PipelineCache::capacity() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return capacity_;
}

void
PipelineCache::setCapacity(std::size_t capacity)
{
    std::lock_guard<std::mutex> lock(mutex_);
    capacity_ = capacity;
    evictLocked();
}

void
PipelineCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    map_.clear();
    order_.clear();
    hits_.store(0);
    misses_.store(0);
}

std::vector<std::pair<std::string, PipelineCacheEntry>>
PipelineCache::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::pair<std::string, PipelineCacheEntry>> out;
    out.reserve(order_.size());
    for (const auto &key : order_) {
        auto it = map_.find(key);
        if (it != map_.end())
            out.emplace_back(it->first, it->second);
    }
    return out;
}

namespace {

namespace fs = std::filesystem;

} // namespace

bool
PipelineCache::loadDir(const std::string &dir,
                       support::CacheSpillStats &stats,
                       std::string &error)
{
    stats = support::CacheSpillStats();
    error.clear();
    fs::path root(dir);
    std::vector<std::string> hashes;
    if (!support::readCacheIndex((root / "pipeline.index").string(),
                                 support::kPipelineCacheFormatName,
                                 hashes, error)) {
        return false;
    }
    for (const auto &hash : hashes) {
        fs::path object = root / "pipeline" / hash;
        std::ifstream in(object, std::ios::binary);
        if (!in) {
            support::diag(support::DiagLevel::Warning,
                          "pipeline-cache entry '" + object.string() +
                              "' is indexed but missing; skipped");
            ++stats.skipped;
            continue;
        }
        std::ostringstream text;
        text << in.rdbuf();
        std::string key;
        PipelineCacheEntry entry;
        std::string entry_error;
        if (!decodePipelineCacheEntry(text.str(), key, entry,
                                      entry_error) ||
            support::cacheContentHash(key) != hash) {
            support::diag(support::DiagLevel::Warning,
                          "pipeline-cache entry '" + object.string() +
                              "' is unreadable (" +
                              (entry_error.empty() ? "hash/key mismatch"
                                                   : entry_error) +
                              "); skipped");
            ++stats.skipped;
            continue;
        }
        store(key, std::move(entry));
        ++stats.loaded;
    }
    return true;
}

bool
PipelineCache::saveDir(const std::string &dir,
                       support::CacheSpillStats &stats,
                       std::string &error) const
{
    stats = support::CacheSpillStats();
    error.clear();
    fs::path root(dir);
    fs::path objects = root / "pipeline";
    std::error_code ec;
    fs::create_directories(objects, ec);
    if (ec) {
        error = "cannot create '" + objects.string() +
                "': " + ec.message();
        return false;
    }

    std::vector<std::string> hashes;
    std::string index_error;
    if (!support::readCacheIndex((root / "pipeline.index").string(),
                                 support::kPipelineCacheFormatName,
                                 hashes, index_error)) {
        hashes.clear(); // stale-format index: rebuild from scratch
    }

    for (const auto &[key, entry] : snapshot()) {
        std::string hash = support::cacheContentHash(key);
        fs::path object = objects / hash;
        if (fs::exists(object, ec)) {
            ++stats.kept;
        } else {
            if (!support::writeFileAtomically(
                    object.string(),
                    encodePipelineCacheEntry(key, entry), error)) {
                return false;
            }
            ++stats.written;
        }
        hashes.push_back(hash);
    }

    std::sort(hashes.begin(), hashes.end());
    hashes.erase(std::unique(hashes.begin(), hashes.end()),
                 hashes.end());
    std::ostringstream index;
    index << support::cacheFormatHeader(
        support::kPipelineCacheFormatName);
    for (const auto &hash : hashes)
        index << hash << "\n";
    return support::writeFileAtomically(
        (root / "pipeline.index").string(), index.str(), error);
}

PipelineCache &
PipelineCache::global()
{
    static PipelineCache *cache = new PipelineCache();
    return *cache;
}

// ----- process-wide switch + thread-local opt-out -------------------------

namespace {

std::atomic<bool> g_pipeline_cache_enabled{false};
thread_local bool tl_pipeline_cache_disabled = false;

} // namespace

void
setPipelineCacheEnabled(bool enabled)
{
    g_pipeline_cache_enabled.store(enabled, std::memory_order_relaxed);
}

bool
pipelineCacheEnabled()
{
    return g_pipeline_cache_enabled.load(std::memory_order_relaxed);
}

bool
pipelineCacheActive()
{
    return pipelineCacheEnabled() && !tl_pipeline_cache_disabled;
}

PipelineCacheDisableScope::PipelineCacheDisableScope()
    : prev_(tl_pipeline_cache_disabled)
{
    tl_pipeline_cache_disabled = true;
}

PipelineCacheDisableScope::~PipelineCacheDisableScope()
{
    tl_pipeline_cache_disabled = prev_;
}

} // namespace pom::pass
