#include "ir/operation.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <set>
#include <sstream>

#include "support/diagnostics.h"
#include "support/string_util.h"

namespace pom::ir {

Value *
Block::addArgument(Type type, std::string name)
{
    auto v = std::make_unique<Value>(type, std::move(name));
    v->owner_ = this;
    args_.push_back(std::move(v));
    return args_.back().get();
}

Operation *
Block::push(std::unique_ptr<Operation> op)
{
    op->parent_ = this;
    ops_.push_back(std::move(op));
    return ops_.back().get();
}

std::unique_ptr<Operation>
Operation::create(std::string name, std::vector<Value *> operands,
                  std::vector<Type> result_types, AttrMap attrs,
                  size_t num_regions)
{
    // make_unique cannot reach the private ctor.
    std::unique_ptr<Operation> op(new Operation());
    op->name_ = std::move(name);
    op->operands_ = std::move(operands);
    op->attrs_ = std::move(attrs);
    for (size_t i = 0; i < result_types.size(); ++i) {
        auto v = std::make_unique<Value>(
            result_types[i], op->name_ + ".r" + std::to_string(i));
        v->def_ = op.get();
        op->results_.push_back(std::move(v));
    }
    for (size_t i = 0; i < num_regions; ++i)
        op->regions_.push_back(std::make_unique<Block>());
    for (auto &r : op->regions_)
        r->parent_ = op.get();
    return op;
}

bool
Operation::hasAttr(const std::string &key) const
{
    return attrs_.count(key) > 0;
}

const Attribute &
Operation::attr(const std::string &key) const
{
    auto it = attrs_.find(key);
    POM_ASSERT(it != attrs_.end(), "missing attribute '", key, "' on ",
               name_);
    return it->second;
}

void
Operation::setAttr(const std::string &key, Attribute value)
{
    attrs_[key] = std::move(value);
}

void
Operation::removeAttr(const std::string &key)
{
    attrs_.erase(key);
}

std::int64_t
Operation::intAttrOr(const std::string &key, std::int64_t dflt) const
{
    auto it = attrs_.find(key);
    if (it == attrs_.end())
        return dflt;
    return it->second.asInt();
}

void
Operation::setResultName(size_t i, std::string name)
{
    results_.at(i)->name_ = std::move(name);
}

Block *
Operation::appendRegion()
{
    regions_.push_back(std::make_unique<Block>());
    regions_.back()->parent_ = this;
    return regions_.back().get();
}

namespace {

/** Shortest decimal form that strtod parses back to exactly @p v. */
std::string
formatDouble(double v)
{
    char buf[64];
    for (int prec = 1; prec <= 17; ++prec) {
        std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
        if (std::strtod(buf, nullptr) == v)
            break;
    }
    // Keep floats lexically distinct from integer attributes.
    if (std::strcspn(buf, ".eEni") == std::strlen(buf)) {
        std::strncat(buf, ".0", sizeof(buf) - std::strlen(buf) - 1);
    }
    return buf;
}

std::string
escapeString(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

/** Placeholder dim names d0..dN-1 for spaces without stored names. */
std::vector<std::string>
genericDims(size_t n)
{
    std::vector<std::string> names;
    names.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        std::string name = "d";
        name += std::to_string(i);
        names.push_back(std::move(name));
    }
    return names;
}

std::string
formatBoundList(const std::vector<poly::Bound> &list,
                const std::vector<std::string> &dims)
{
    return support::joinMapped(list, ", ", [&](const poly::Bound &b) {
        std::string s = "(";
        s += b.expr.str(dims);
        s += ")";
        if (b.divisor != 1) {
            s += "/";
            s += std::to_string(b.divisor);
        }
        return s;
    });
}

/**
 * Assigns every printed SSA value a unique textual name so the output
 * is unambiguous and re-parseable. Block arguments keep their stored
 * names (uniquified on collision); op results are numbered %v0, %v1...
 * in print order, which makes printing idempotent across a parse.
 */
class Printer
{
  public:
    std::string
    print(const Operation &root, int indent)
    {
        std::ostringstream os;
        printOp(root, indent, os);
        return os.str();
    }

  private:
    static std::string
    sanitize(const std::string &name)
    {
        std::string out;
        for (char c : name) {
            bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_' || c == '.';
            out.push_back(ok ? c : '_');
        }
        if (out.empty())
            out.push_back('v');
        return out;
    }

    std::string
    assign(const Value *v, const std::string &hint)
    {
        std::string base = sanitize(hint);
        std::string candidate = base;
        for (int k = 1; used_.count(candidate); ++k) {
            candidate = base;
            candidate += "_";
            candidate += std::to_string(k);
        }
        used_.insert(candidate);
        names_[v] = candidate;
        return candidate;
    }

    /** Operands defined outside the printed subtree keep their name. */
    const std::string &
    ref(const Value *v)
    {
        auto it = names_.find(v);
        if (it != names_.end())
            return it->second;
        assign(v, v->name());
        return names_.at(v);
    }

    void
    printOp(const Operation &op, int indent, std::ostringstream &os)
    {
        std::string pad = support::repeat("  ", indent);
        os << pad;
        if (op.numResults() > 0) {
            for (size_t i = 0; i < op.numResults(); ++i) {
                if (i)
                    os << ", ";
                std::string hint = "v";
                hint += std::to_string(next_temp_++);
                os << "%" << assign(op.result(i), hint);
            }
            os << " = ";
        }
        os << op.opName();
        for (size_t i = 0; i < op.numOperands(); ++i)
            os << (i ? ", " : " ") << "%" << ref(op.operand(i));
        if (!op.attrs().empty()) {
            os << " {";
            bool first = true;
            for (const auto &[key, value] : op.attrs()) {
                if (!first)
                    os << ", ";
                first = false;
                os << key << " = " << value.str();
            }
            os << "}";
        }
        if (op.numResults() > 0) {
            os << " : ";
            for (size_t i = 0; i < op.numResults(); ++i) {
                if (i)
                    os << ", ";
                os << op.result(i)->type().str();
            }
        }
        for (size_t r = 0; r < op.numRegions(); ++r) {
            const Block &block = op.region(r);
            os << " {";
            if (block.numArguments() > 0) {
                os << " (";
                for (size_t i = 0; i < block.numArguments(); ++i) {
                    const Value *arg = block.argument(i);
                    if (i)
                        os << ", ";
                    os << "%" << assign(arg, arg->name()) << ": "
                       << arg->type().str();
                }
                os << ")";
            }
            os << "\n";
            for (const auto &inner : block.operations())
                printOp(*inner, indent + 1, os);
            os << pad << "}";
        }
        os << "\n";
    }

    std::map<const Value *, std::string> names_;
    std::set<std::string> used_;
    int next_temp_ = 0;
};

} // namespace

std::string
Attribute::str() const
{
    if (is<std::int64_t>())
        return std::to_string(asInt());
    if (is<double>())
        return formatDouble(asFloat());
    if (is<std::string>()) {
        std::string s = "\"";
        s += escapeString(asString());
        s += "\"";
        return s;
    }
    if (is<std::vector<std::int64_t>>()) {
        std::string s = "[";
        s += support::joinMapped(asIntVector(), ", ",
            [](std::int64_t v) { return std::to_string(v); });
        s += "]";
        return s;
    }
    if (is<poly::AffineMap>())
        return "affine_map<" + asMap().str() + ">";
    if (is<poly::DimBounds>()) {
        const auto &b = asBounds();
        size_t n = !b.lower.empty()   ? b.lower[0].expr.numDims()
                   : !b.upper.empty() ? b.upper[0].expr.numDims()
                                      : 0;
        auto dims = genericDims(n);
        return "bounds<" + std::to_string(n) + ", lo[" +
               formatBoundList(b.lower, dims) + "], hi[" +
               formatBoundList(b.upper, dims) + "]>";
    }
    if (is<std::vector<poly::Constraint>>()) {
        const auto &cs = asConstraints();
        size_t n = cs.empty() ? 0 : cs[0].expr.numDims();
        auto dims = genericDims(n);
        return "constraints<" + std::to_string(n) + ", [" +
               support::joinMapped(cs, ", ",
                   [&](const poly::Constraint &c) {
                       return c.expr.str(dims) +
                              (c.isEq ? " == 0" : " >= 0");
                   }) + "]>";
    }
    return "?";
}

std::string
Operation::str(int indent) const
{
    Printer printer;
    return printer.print(*this, indent);
}

} // namespace pom::ir
