#include "ir/operation.h"

#include <sstream>

#include "support/diagnostics.h"
#include "support/string_util.h"

namespace pom::ir {

Value *
Block::addArgument(Type type, std::string name)
{
    auto v = std::make_unique<Value>(type, std::move(name));
    v->owner_ = this;
    args_.push_back(std::move(v));
    return args_.back().get();
}

Operation *
Block::push(std::unique_ptr<Operation> op)
{
    op->parent_ = this;
    ops_.push_back(std::move(op));
    return ops_.back().get();
}

std::unique_ptr<Operation>
Operation::create(std::string name, std::vector<Value *> operands,
                  std::vector<Type> result_types, AttrMap attrs,
                  size_t num_regions)
{
    // make_unique cannot reach the private ctor.
    std::unique_ptr<Operation> op(new Operation());
    op->name_ = std::move(name);
    op->operands_ = std::move(operands);
    op->attrs_ = std::move(attrs);
    for (size_t i = 0; i < result_types.size(); ++i) {
        auto v = std::make_unique<Value>(
            result_types[i], op->name_ + ".r" + std::to_string(i));
        v->def_ = op.get();
        op->results_.push_back(std::move(v));
    }
    for (size_t i = 0; i < num_regions; ++i)
        op->regions_.push_back(std::make_unique<Block>());
    for (auto &r : op->regions_)
        r->parent_ = op.get();
    return op;
}

bool
Operation::hasAttr(const std::string &key) const
{
    return attrs_.count(key) > 0;
}

const Attribute &
Operation::attr(const std::string &key) const
{
    auto it = attrs_.find(key);
    POM_ASSERT(it != attrs_.end(), "missing attribute '", key, "' on ",
               name_);
    return it->second;
}

void
Operation::setAttr(const std::string &key, Attribute value)
{
    attrs_[key] = std::move(value);
}

void
Operation::removeAttr(const std::string &key)
{
    attrs_.erase(key);
}

std::int64_t
Operation::intAttrOr(const std::string &key, std::int64_t dflt) const
{
    auto it = attrs_.find(key);
    if (it == attrs_.end())
        return dflt;
    return it->second.asInt();
}

namespace {

void
printValueList(std::ostringstream &os, const std::vector<Value *> &values)
{
    for (size_t i = 0; i < values.size(); ++i) {
        if (i)
            os << ", ";
        os << "%" << values[i]->name();
    }
}

void
printOp(const Operation &op, int indent, std::ostringstream &os)
{
    std::string pad = support::repeat("  ", indent);
    os << pad;
    if (op.numResults() > 0) {
        for (size_t i = 0; i < op.numResults(); ++i) {
            if (i)
                os << ", ";
            os << "%" << op.result(i)->name();
        }
        os << " = ";
    }
    os << op.opName();
    if (op.numOperands() > 0) {
        os << " ";
        printValueList(os, op.operands());
    }
    if (!op.attrs().empty()) {
        os << " {";
        bool first = true;
        for (const auto &[key, value] : op.attrs()) {
            if (!first)
                os << ", ";
            first = false;
            os << key << " = " << value.str();
        }
        os << "}";
    }
    if (op.numResults() > 0) {
        os << " : ";
        for (size_t i = 0; i < op.numResults(); ++i) {
            if (i)
                os << ", ";
            os << op.result(i)->type().str();
        }
    }
    for (size_t r = 0; r < op.numRegions(); ++r) {
        const Block &block = op.region(r);
        os << " {";
        if (block.numArguments() > 0) {
            os << " (";
            for (size_t i = 0; i < block.numArguments(); ++i) {
                if (i)
                    os << ", ";
                os << "%" << block.argument(i)->name() << ": "
                   << block.argument(i)->type().str();
            }
            os << ")";
        }
        os << "\n";
        for (const auto &inner : block.operations())
            printOp(*inner, indent + 1, os);
        os << pad << "}";
    }
    os << "\n";
}

} // namespace

std::string
Attribute::str() const
{
    if (is<std::int64_t>())
        return std::to_string(asInt());
    if (is<double>())
        return std::to_string(asFloat());
    if (is<std::string>())
        return "\"" + asString() + "\"";
    if (is<std::vector<std::int64_t>>()) {
        return "[" + support::joinMapped(asIntVector(), ", ",
            [](std::int64_t v) { return std::to_string(v); }) + "]";
    }
    if (is<poly::AffineMap>())
        return asMap().str();
    if (is<poly::DimBounds>()) {
        const auto &b = asBounds();
        return "bounds(lo:" + std::to_string(b.lower.size()) + ", hi:" +
               std::to_string(b.upper.size()) + ")";
    }
    if (is<std::vector<poly::Constraint>>())
        return "constraints(" + std::to_string(asConstraints().size()) + ")";
    return "?";
}

std::string
Operation::str(int indent) const
{
    std::ostringstream os;
    printOp(*this, indent, os);
    return os.str();
}

} // namespace pom::ir
