#include "ir/builder.h"

#include "support/diagnostics.h"

namespace pom::ir {

Operation *
OpBuilder::insert(std::unique_ptr<Operation> op)
{
    POM_ASSERT(block_ != nullptr, "OpBuilder has no insertion block");
    return block_->push(std::move(op));
}

std::unique_ptr<Operation>
OpBuilder::makeFunc(const std::string &name)
{
    AttrMap attrs;
    attrs[kAttrSymName] = Attribute(name);
    return Operation::create("func.func", {}, {}, std::move(attrs), 1);
}

Value *
OpBuilder::addFuncArg(Operation &func, Type type, const std::string &name)
{
    POM_ASSERT(func.opName() == "func.func", "addFuncArg on non-func");
    return func.region(0).addArgument(type, name);
}

Operation *
OpBuilder::createFor(poly::DimBounds bounds, const std::string &iter_name,
                     std::vector<Value *> outer_ivs)
{
    size_t depth = outer_ivs.size();
    for (const auto &b : bounds.lower) {
        POM_ASSERT(b.expr.numDims() == depth + 1,
                   "lower bound dim mismatch for ", iter_name);
    }
    for (const auto &b : bounds.upper) {
        POM_ASSERT(b.expr.numDims() == depth + 1,
                   "upper bound dim mismatch for ", iter_name);
    }
    AttrMap attrs;
    attrs[kAttrLowerBounds] =
        Attribute(poly::DimBounds{bounds.lower, {}});
    attrs[kAttrUpperBounds] =
        Attribute(poly::DimBounds{{}, bounds.upper});
    attrs[kAttrIterName] = Attribute(iter_name);
    auto op = Operation::create("affine.for", std::move(outer_ivs), {},
                                std::move(attrs), 1);
    op->region(0).addArgument(Type::index(), iter_name);
    return insert(std::move(op));
}

Operation *
OpBuilder::createIf(std::vector<poly::Constraint> conditions,
                    std::vector<Value *> ivs)
{
    for (const auto &c : conditions) {
        POM_ASSERT(c.expr.numDims() == ivs.size(),
                   "condition dim mismatch in affine.if");
    }
    AttrMap attrs;
    attrs[kAttrCondition] = Attribute(std::move(conditions));
    auto op = Operation::create("affine.if", std::move(ivs), {},
                                std::move(attrs), 1);
    return insert(std::move(op));
}

Value *
OpBuilder::createConstant(double value, Type type)
{
    POM_ASSERT(!type.isMemRef(), "constant of memref type");
    AttrMap attrs;
    attrs[kAttrValue] = Attribute(value);
    auto op = Operation::create("arith.constant", {}, {type},
                                std::move(attrs));
    op->result(0)->type();
    Operation *inserted = insert(std::move(op));
    return inserted->result(0);
}

Value *
OpBuilder::createBinary(const std::string &op_name, Value *lhs, Value *rhs)
{
    POM_ASSERT(lhs->type() == rhs->type(),
               "binary op operand type mismatch in ", op_name);
    auto op = Operation::create(op_name, {lhs, rhs}, {lhs->type()}, {});
    Operation *inserted = insert(std::move(op));
    return inserted->result(0);
}

Value *
OpBuilder::createUnary(const std::string &op_name, Value *operand)
{
    auto op = Operation::create(op_name, {operand}, {operand->type()}, {});
    Operation *inserted = insert(std::move(op));
    return inserted->result(0);
}

Value *
OpBuilder::createLoad(Value *memref, poly::AffineMap map,
                      std::vector<Value *> ivs)
{
    POM_ASSERT(memref->type().isMemRef(), "affine.load needs a memref");
    POM_ASSERT(map.numDomainDims() == ivs.size(),
               "access map arity mismatch in affine.load");
    POM_ASSERT(map.numResults() == memref->type().rank(),
               "access map rank mismatch in affine.load");
    AttrMap attrs;
    attrs[kAttrAccessMap] = Attribute(std::move(map));
    std::vector<Value *> operands = {memref};
    operands.insert(operands.end(), ivs.begin(), ivs.end());
    Type result = Type::scalar(memref->type().elementKind());
    auto op = Operation::create("affine.load", std::move(operands),
                                {result}, std::move(attrs));
    Operation *inserted = insert(std::move(op));
    return inserted->result(0);
}

Operation *
OpBuilder::createStore(Value *value, Value *memref, poly::AffineMap map,
                       std::vector<Value *> ivs)
{
    POM_ASSERT(memref->type().isMemRef(), "affine.store needs a memref");
    POM_ASSERT(map.numDomainDims() == ivs.size(),
               "access map arity mismatch in affine.store");
    POM_ASSERT(map.numResults() == memref->type().rank(),
               "access map rank mismatch in affine.store");
    AttrMap attrs;
    attrs[kAttrAccessMap] = Attribute(std::move(map));
    std::vector<Value *> operands = {value, memref};
    operands.insert(operands.end(), ivs.begin(), ivs.end());
    auto op = Operation::create("affine.store", std::move(operands), {},
                                std::move(attrs));
    return insert(std::move(op));
}

} // namespace pom::ir
