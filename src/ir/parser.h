/**
 * @file
 * Recursive-descent parser for the textual IR emitted by
 * Operation::str(): the MLIR-flavoured affine subset plus POM's HLS
 * annotation attributes. Closes the print -> parse round-trip so
 * designs can be stored in files, diffed in regression tests, and fed
 * to pom-opt.
 *
 * Grammar (whitespace and //-comments are insignificant):
 *
 *   module     := op
 *   op         := results? op-name operands? attr-dict? results-types?
 *                 region*
 *   results    := `%`id (`,` `%`id)* `=`
 *   operands   := `%`id (`,` `%`id)*
 *   attr-dict  := `{` key `=` attr-value (`,` key `=` attr-value)* `}`
 *   region     := `{` (`(` `%`id `:` type (`,` ...)* `)`)? op* `}`
 *   type       := scalar | `index` | `memref<` (int `x`)* scalar `>`
 *   attr-value := int | float | string | `[` int-list `]`
 *               | `affine_map<` `(` dims `)` `->` `(` exprs `)` `>`
 *               | `bounds<` N `,` `lo[` bound-list `]` `,`
 *                 `hi[` bound-list `]` `>`
 *               | `constraints<` N `,` `[` constraint-list `]` `>`
 *   bound      := `(` linear-expr `)` (`/` int)?
 *   constraint := linear-expr (`==` | `>=`) `0`
 *
 * Linear expressions inside bounds/constraints are spelled over the
 * generic dims d0..dN-1; affine maps carry their own dim names.
 * Floats always contain `.`, an exponent, or are inf/nan, so they
 * never collide with integer attributes.
 */

#ifndef POM_IR_PARSER_H
#define POM_IR_PARSER_H

#include <memory>
#include <string>

#include "ir/operation.h"

namespace pom::ir {

/**
 * Parse one top-level operation (normally a func.func) from textual
 * IR. The parser is safe on untrusted input: malformed text raises
 * support::FatalError with a "line:col: message" diagnostic and never
 * crashes.
 */
std::unique_ptr<Operation> parseIr(const std::string &text);

/**
 * Non-throwing variant: returns nullptr and stores the diagnostic in
 * @p error on malformed input.
 */
std::unique_ptr<Operation> parseIr(const std::string &text,
                                   std::string *error);

} // namespace pom::ir

#endif // POM_IR_PARSER_H
