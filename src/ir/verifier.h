/**
 * @file
 * Structural verifier for the affine dialect subset. Run after lowering
 * and after every annotation pass; a non-empty error list indicates a
 * compiler bug upstream.
 */

#ifndef POM_IR_VERIFIER_H
#define POM_IR_VERIFIER_H

#include <string>
#include <vector>

#include "ir/operation.h"

namespace pom::ir {

/**
 * Verify an operation tree. Returns human-readable error strings; empty
 * means the IR is well-formed.
 */
std::vector<std::string> verify(const Operation &op);

} // namespace pom::ir

#endif // POM_IR_VERIFIER_H
