/**
 * @file
 * A reference interpreter for the annotated affine dialect. POM uses it
 * in place of actual FPGA execution: every loop transformation and
 * hardware annotation must leave the interpreted result unchanged, which
 * the test suite checks property-style. HLS attributes (pipeline,
 * unroll, partition) are schedule metadata and do not affect semantics.
 *
 * Numeric model: all scalar arithmetic is evaluated in double precision
 * regardless of the declared element type; element types matter for
 * resource estimation and C emission, not for functional checks.
 */

#ifndef POM_IR_INTERPRETER_H
#define POM_IR_INTERPRETER_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ir/operation.h"

namespace pom::ir {

/** A dense row-major array bound to a func.func memref parameter. */
class Buffer
{
  public:
    explicit Buffer(Type type);

    const Type &type() const { return type_; }

    double &at(const std::vector<std::int64_t> &indices);

    /**
     * Bounds-checked read: @p fallback when any index is outside the
     * buffer's shape (or the rank mismatches), the element otherwise.
     */
    double atOr(const std::vector<std::int64_t> &indices,
                double fallback = 0.0) const;

    std::vector<double> &data() { return data_; }
    const std::vector<double> &data() const { return data_; }

    /** Fill with a deterministic pseudo-random pattern (for tests). */
    void fillPattern(unsigned seed);

    void fill(double value);

  private:
    size_t flatten(const std::vector<std::int64_t> &indices) const;

    Type type_;
    std::vector<double> data_;
};

/** Buffers keyed by func.func parameter name. */
using BufferMap = std::map<std::string, std::shared_ptr<Buffer>>;

/**
 * Execute a func.func over the given buffers. Every memref parameter of
 * the function must have a matching buffer (name and type).
 *
 * @returns the number of executed statement-level operations
 *          (loads+stores+arith), a rough dynamic-work measure.
 */
std::uint64_t runFunction(const Operation &func, BufferMap &buffers);

/** Allocate buffers matching a function's memref parameters. */
BufferMap makeBuffersFor(const Operation &func, unsigned seed = 1);

} // namespace pom::ir

#endif // POM_IR_INTERPRETER_H
