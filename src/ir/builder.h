/**
 * @file
 * OpBuilder: typed creation helpers for the affine/arith/memref subset
 * POM lowers into. Keeps op construction invariants (operand counts,
 * attribute names, region shapes) in one place.
 */

#ifndef POM_IR_BUILDER_H
#define POM_IR_BUILDER_H

#include <memory>
#include <string>
#include <vector>

#include "ir/operation.h"
#include "poly/affine_map.h"
#include "poly/integer_set.h"

namespace pom::ir {

/** Builds operations at an insertion block. */
class OpBuilder
{
  public:
    explicit OpBuilder(Block *block = nullptr) : block_(block) {}

    void setInsertionBlock(Block *block) { block_ = block; }
    Block *insertionBlock() const { return block_; }

    /**
     * Create a detached func.func with the given name. Array parameters
     * are added by the caller via addFuncArg.
     */
    static std::unique_ptr<Operation> makeFunc(const std::string &name);

    /** Add a memref (or scalar) parameter to a func.func. */
    static Value *addFuncArg(Operation &func, Type type,
                             const std::string &name);

    /**
     * Create an affine.for at the insertion point.
     *
     * @param bounds Lower/upper bound lists; expressions are over
     *        (@p outer_ivs..., self) -- i.e. numOperands + 1 dims with a
     *        zero coefficient in the last position.
     * @param iter_name Name for the induction variable block argument.
     * @param outer_ivs Enclosing induction variables the bounds use.
     * @return The loop op; its body block is region(0).
     */
    Operation *createFor(poly::DimBounds bounds, const std::string &iter_name,
                         std::vector<Value *> outer_ivs);

    /**
     * Create an affine.if guarded by @p conditions (over @p ivs, in
     * operand order).
     */
    Operation *createIf(std::vector<poly::Constraint> conditions,
                        std::vector<Value *> ivs);

    /** Floating constant of the given scalar type. */
    Value *createConstant(double value, Type type);

    /**
     * Binary arithmetic op, e.g. "arith.addf". Operand types must match;
     * the result takes the operand type.
     */
    Value *createBinary(const std::string &op_name, Value *lhs, Value *rhs);

    /** Unary arithmetic op, e.g. "arith.negf". */
    Value *createUnary(const std::string &op_name, Value *operand);

    /**
     * affine.load: read memref at map(ivs). Map domain dims must equal
     * ivs count; map results must equal the memref rank.
     */
    Value *createLoad(Value *memref, poly::AffineMap map,
                      std::vector<Value *> ivs);

    /** affine.store: write @p value to memref at map(ivs). */
    Operation *createStore(Value *value, Value *memref, poly::AffineMap map,
                           std::vector<Value *> ivs);

  private:
    Operation *insert(std::unique_ptr<Operation> op);

    Block *block_;
    int name_counter_ = 0;
};

} // namespace pom::ir

#endif // POM_IR_BUILDER_H
