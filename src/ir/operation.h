/**
 * @file
 * The operation/region core of POM's compact IR kernel. Mirrors MLIR's
 * structure with one simplification: regions are single-block and
 * terminator-free (POM's affine subset never branches).
 *
 * Operations are generic: an op name (e.g. "affine.for", "arith.mulf"),
 * SSA operands/results, an attribute dictionary, and nested regions.
 * Dialect semantics live in the builder, verifier, interpreter and
 * emitter, keyed by op name -- the same open design MLIR uses.
 *
 * Op vocabulary used by POM:
 *  - func.func        (region; sym_name attr; block args = memref params)
 *  - affine.for       (region with one index block-arg; bound attrs;
 *                      optional hls.pipeline_ii / hls.unroll attrs)
 *  - affine.if        (region; affine.condition attr over index operands)
 *  - affine.load      (memref + index operands; affine.map attr)
 *  - affine.store     (value + memref + index operands; affine.map attr)
 *  - arith.constant   (value attr)
 *  - arith.{addf,subf,mulf,divf,maxf,minf,negf}
 *  - arith.{addi,subi,muli}
 */

#ifndef POM_IR_OPERATION_H
#define POM_IR_OPERATION_H

#include <memory>
#include <string>
#include <vector>

#include "ir/attribute.h"
#include "ir/type.h"

namespace pom::ir {

class Operation;
class Block;

/** An SSA value: an operation result or a block argument. */
class Value
{
  public:
    Value(Type type, std::string name) : type_(type), name_(std::move(name))
    {}

    const Type &type() const { return type_; }
    const std::string &name() const { return name_; }

    /** Defining op (nullptr for block arguments). */
    Operation *definingOp() const { return def_; }

    /** Owning block (nullptr for op results). */
    Block *ownerBlock() const { return owner_; }

  private:
    friend class Operation;
    friend class Block;

    Type type_;
    std::string name_;
    Operation *def_ = nullptr;
    Block *owner_ = nullptr;
};

/** A single-block region body: arguments plus an ordered op list. */
class Block
{
  public:
    /** Append a block argument (e.g. a loop induction variable). */
    Value *addArgument(Type type, std::string name);

    const std::vector<std::unique_ptr<Value>> &arguments() const
    {
        return args_;
    }
    Value *argument(size_t i) const { return args_.at(i).get(); }
    size_t numArguments() const { return args_.size(); }

    /** Take ownership of @p op and append it. */
    Operation *push(std::unique_ptr<Operation> op);

    const std::vector<std::unique_ptr<Operation>> &operations() const
    {
        return ops_;
    }

    /** Enclosing operation (set when the block is attached). */
    Operation *parentOp() const { return parent_; }

  private:
    friend class Operation;

    std::vector<std::unique_ptr<Value>> args_;
    std::vector<std::unique_ptr<Operation>> ops_;
    Operation *parent_ = nullptr;
};

/** A generic operation. */
class Operation
{
  public:
    /** Create a detached operation. Use OpBuilder in normal code. */
    static std::unique_ptr<Operation>
    create(std::string name, std::vector<Value *> operands,
           std::vector<Type> result_types, AttrMap attrs,
           size_t num_regions = 0);

    const std::string &opName() const { return name_; }

    // Operands ----------------------------------------------------------
    size_t numOperands() const { return operands_.size(); }
    Value *operand(size_t i) const { return operands_.at(i); }
    const std::vector<Value *> &operands() const { return operands_; }

    // Results -----------------------------------------------------------
    size_t numResults() const { return results_.size(); }
    Value *result(size_t i = 0) const { return results_.at(i).get(); }

    // Attributes --------------------------------------------------------
    bool hasAttr(const std::string &key) const;
    const Attribute &attr(const std::string &key) const;
    void setAttr(const std::string &key, Attribute value);
    void removeAttr(const std::string &key);
    const AttrMap &attrs() const { return attrs_; }

    /** Convenience: integer attribute or default. */
    std::int64_t intAttrOr(const std::string &key, std::int64_t dflt) const;

    /** Rename result @p i (used by the textual IR parser). */
    void setResultName(size_t i, std::string name);

    // Regions -----------------------------------------------------------
    size_t numRegions() const { return regions_.size(); }
    Block &region(size_t i = 0) { return *regions_.at(i); }
    const Block &region(size_t i = 0) const { return *regions_.at(i); }

    /**
     * Append an empty region. Normal construction passes num_regions to
     * create(); the textual IR parser appends regions as it sees them.
     */
    Block *appendRegion();

    Block *parentBlock() const { return parent_; }

    /** Walk this op and all nested ops pre-order. */
    template <typename Fn> void
    walk(Fn &&fn)
    {
        fn(*this);
        for (auto &r : regions_) {
            for (auto &op : r->ops_)
                op->walk(fn);
        }
    }

    template <typename Fn> void
    walk(Fn &&fn) const
    {
        fn(*this);
        for (const auto &r : regions_) {
            for (const auto &op : r->ops_)
                static_cast<const Operation *>(op.get())->walk(fn);
        }
    }

    /**
     * Print the textual form (MLIR-flavoured). Value names are
     * uniquified at print time, and every attribute kind prints
     * losslessly, so the output parses back via ir::parseIr and
     * reprints byte-identically.
     */
    std::string str(int indent = 0) const;

  private:
    friend class Block;

    Operation() = default;

    std::string name_;
    std::vector<Value *> operands_;
    std::vector<std::unique_ptr<Value>> results_;
    AttrMap attrs_;
    std::vector<std::unique_ptr<Block>> regions_;
    Block *parent_ = nullptr;
};

} // namespace pom::ir

#endif // POM_IR_OPERATION_H
