#include "ir/interpreter.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "support/diagnostics.h"
#include "support/math_util.h"

namespace pom::ir {

Buffer::Buffer(Type type) : type_(type)
{
    POM_ASSERT(type.isMemRef(), "Buffer needs a memref type");
    data_.assign(static_cast<size_t>(type.numElements()), 0.0);
}

size_t
Buffer::flatten(const std::vector<std::int64_t> &indices) const
{
    const auto &shape = type_.shape();
    POM_ASSERT(indices.size() == shape.size(), "buffer rank mismatch");
    size_t flat = 0;
    for (size_t i = 0; i < indices.size(); ++i) {
        POM_ASSERT(indices[i] >= 0 && indices[i] < shape[i],
                   "buffer index out of range: dim ", i, " index ",
                   indices[i], " extent ", shape[i]);
        flat = flat * static_cast<size_t>(shape[i]) +
               static_cast<size_t>(indices[i]);
    }
    return flat;
}

double &
Buffer::at(const std::vector<std::int64_t> &indices)
{
    return data_[flatten(indices)];
}

double
Buffer::atOr(const std::vector<std::int64_t> &indices,
             double fallback) const
{
    const auto &shape = type_.shape();
    if (indices.size() != shape.size())
        return fallback;
    for (size_t i = 0; i < indices.size(); ++i) {
        if (indices[i] < 0 || indices[i] >= shape[i])
            return fallback;
    }
    return data_[flatten(indices)];
}

void
Buffer::fillPattern(unsigned seed)
{
    // xorshift-based deterministic pattern in [-1, 1].
    std::uint32_t state = seed * 2654435761u + 1u;
    for (auto &v : data_) {
        state ^= state << 13;
        state ^= state >> 17;
        state ^= state << 5;
        v = (static_cast<double>(state % 20001) - 10000.0) / 10000.0;
    }
}

void
Buffer::fill(double value)
{
    std::fill(data_.begin(), data_.end(), value);
}

namespace {

/** Execution environment: SSA value bindings and memref buffers. */
struct Env
{
    std::unordered_map<const Value *, double> scalars;
    std::unordered_map<const Value *, std::int64_t> indices;
    std::unordered_map<const Value *, Buffer *> memrefs;
    std::uint64_t work = 0;
};

std::int64_t
indexOf(const Env &env, const Value *v)
{
    auto it = env.indices.find(v);
    POM_ASSERT(it != env.indices.end(), "unbound index value %", v->name());
    return it->second;
}

double
scalarOf(const Env &env, const Value *v)
{
    auto it = env.scalars.find(v);
    POM_ASSERT(it != env.scalars.end(), "unbound scalar value %",
               v->name());
    return it->second;
}

std::vector<std::int64_t>
evalIndices(const Env &env, const Operation &op, size_t first_iv)
{
    const poly::AffineMap &map = op.attr(kAttrAccessMap).asMap();
    std::vector<std::int64_t> ivs;
    ivs.reserve(op.numOperands() - first_iv);
    for (size_t i = first_iv; i < op.numOperands(); ++i)
        ivs.push_back(indexOf(env, op.operand(i)));
    return map.apply(ivs);
}

void execBlock(const Block &block, Env &env);

void
execOp(const Operation &op, Env &env)
{
    const std::string &name = op.opName();
    if (name == "affine.for") {
        const auto &lower = op.attr(kAttrLowerBounds).asBounds().lower;
        const auto &upper = op.attr(kAttrUpperBounds).asBounds().upper;
        POM_ASSERT(!lower.empty() && !upper.empty(),
                   "affine.for without bounds");
        std::vector<std::int64_t> outer(op.numOperands() + 1, 0);
        for (size_t i = 0; i < op.numOperands(); ++i)
            outer[i] = indexOf(env, op.operand(i));
        std::int64_t lo = 0, hi = -1;
        bool first = true;
        for (const auto &b : lower) {
            std::int64_t v =
                support::ceilDiv(b.expr.evaluate(outer), b.divisor);
            lo = first ? v : std::max(lo, v);
            first = false;
        }
        first = true;
        for (const auto &b : upper) {
            std::int64_t v =
                support::floorDiv(b.expr.evaluate(outer), b.divisor);
            hi = first ? v : std::min(hi, v);
            first = false;
        }
        const Value *iv = op.region(0).argument(0);
        for (std::int64_t i = lo; i <= hi; ++i) {
            env.indices[iv] = i;
            execBlock(op.region(0), env);
        }
        env.indices.erase(iv);
        return;
    }
    if (name == "affine.if") {
        const auto &conds = op.attr(kAttrCondition).asConstraints();
        std::vector<std::int64_t> ivs;
        ivs.reserve(op.numOperands());
        for (size_t i = 0; i < op.numOperands(); ++i)
            ivs.push_back(indexOf(env, op.operand(i)));
        for (const auto &c : conds) {
            std::int64_t v = c.expr.evaluate(ivs);
            if (c.isEq ? (v != 0) : (v < 0))
                return;
        }
        execBlock(op.region(0), env);
        return;
    }
    if (name == "affine.load") {
        auto it = env.memrefs.find(op.operand(0));
        POM_ASSERT(it != env.memrefs.end(), "unbound memref %",
                   op.operand(0)->name());
        auto idx = evalIndices(env, op, 1);
        env.scalars[op.result(0)] = it->second->at(idx);
        ++env.work;
        return;
    }
    if (name == "affine.store") {
        auto it = env.memrefs.find(op.operand(1));
        POM_ASSERT(it != env.memrefs.end(), "unbound memref %",
                   op.operand(1)->name());
        auto idx = evalIndices(env, op, 2);
        it->second->at(idx) = scalarOf(env, op.operand(0));
        ++env.work;
        return;
    }
    if (name == "arith.constant") {
        env.scalars[op.result(0)] = op.attr(kAttrValue).asFloat();
        return;
    }
    if (op.numOperands() == 2 && op.numResults() == 1) {
        double a = scalarOf(env, op.operand(0));
        double b = scalarOf(env, op.operand(1));
        double r = 0.0;
        if (name == "arith.addf" || name == "arith.addi")
            r = a + b;
        else if (name == "arith.subf" || name == "arith.subi")
            r = a - b;
        else if (name == "arith.mulf" || name == "arith.muli")
            r = a * b;
        else if (name == "arith.divf")
            r = a / b;
        else if (name == "arith.maxf")
            r = std::max(a, b);
        else if (name == "arith.minf")
            r = std::min(a, b);
        else
            POM_ASSERT(false, "interpreter: unknown binary op ", name);
        env.scalars[op.result(0)] = r;
        ++env.work;
        return;
    }
    if (op.numOperands() == 1 && op.numResults() == 1) {
        double a = scalarOf(env, op.operand(0));
        double r = 0.0;
        if (name == "arith.negf")
            r = -a;
        else if (name == "math.sqrt")
            r = std::sqrt(a);
        else if (name == "math.exp")
            r = std::exp(a);
        else
            POM_ASSERT(false, "interpreter: unknown unary op ", name);
        env.scalars[op.result(0)] = r;
        ++env.work;
        return;
    }
    POM_ASSERT(false, "interpreter: unknown op ", name);
}

void
execBlock(const Block &block, Env &env)
{
    for (const auto &op : block.operations())
        execOp(*op, env);
}

} // namespace

std::uint64_t
runFunction(const Operation &func, BufferMap &buffers)
{
    POM_ASSERT(func.opName() == "func.func", "runFunction on non-func");
    Env env;
    const Block &body = func.region(0);
    for (const auto &arg : body.arguments()) {
        if (!arg->type().isMemRef()) {
            env.indices[arg.get()] = 0;
            continue;
        }
        auto it = buffers.find(arg->name());
        if (it == buffers.end()) {
            support::fatal("no buffer bound for parameter '" + arg->name() +
                           "'");
        }
        if (!(it->second->type() == arg->type())) {
            support::fatal("buffer type mismatch for parameter '" +
                           arg->name() + "': expected " + arg->type().str() +
                           ", got " + it->second->type().str());
        }
        env.memrefs[arg.get()] = it->second.get();
    }
    execBlock(body, env);
    return env.work;
}

BufferMap
makeBuffersFor(const Operation &func, unsigned seed)
{
    BufferMap buffers;
    const Block &body = func.region(0);
    unsigned i = 0;
    for (const auto &arg : body.arguments()) {
        if (!arg->type().isMemRef())
            continue;
        auto buf = std::make_shared<Buffer>(arg->type());
        buf->fillPattern(seed + 17 * i++);
        buffers[arg->name()] = std::move(buf);
    }
    return buffers;
}

} // namespace pom::ir
