/**
 * @file
 * Attributes: named compile-time constants attached to operations, the
 * mechanism POM uses to annotate the affine dialect with HLS pragma
 * information (paper §V.C). Structured polyhedral payloads (bound lists
 * and affine maps) are first-class attribute kinds so that affine.for
 * bounds and affine.load/store access maps round-trip losslessly.
 */

#ifndef POM_IR_ATTRIBUTE_H
#define POM_IR_ATTRIBUTE_H

#include <cstdint>
#include <map>
#include <string>
#include <variant>
#include <vector>

#include "poly/affine_map.h"
#include "poly/integer_set.h"

namespace pom::ir {

/** A single attribute value. */
class Attribute
{
  public:
    using Storage = std::variant<std::int64_t, double, std::string,
                                 std::vector<std::int64_t>,
                                 poly::DimBounds, poly::AffineMap,
                                 std::vector<poly::Constraint>>;

    Attribute() : storage_(std::int64_t(0)) {}
    Attribute(std::int64_t v) : storage_(v) {}
    Attribute(int v) : storage_(std::int64_t(v)) {}
    Attribute(double v) : storage_(v) {}
    Attribute(std::string v) : storage_(std::move(v)) {}
    Attribute(const char *v) : storage_(std::string(v)) {}
    Attribute(std::vector<std::int64_t> v) : storage_(std::move(v)) {}
    Attribute(poly::DimBounds v) : storage_(std::move(v)) {}
    Attribute(poly::AffineMap v) : storage_(std::move(v)) {}
    Attribute(std::vector<poly::Constraint> v) : storage_(std::move(v)) {}

    std::int64_t asInt() const { return std::get<std::int64_t>(storage_); }
    double asFloat() const { return std::get<double>(storage_); }
    const std::string &asString() const
    {
        return std::get<std::string>(storage_);
    }
    const std::vector<std::int64_t> &asIntVector() const
    {
        return std::get<std::vector<std::int64_t>>(storage_);
    }
    const poly::DimBounds &asBounds() const
    {
        return std::get<poly::DimBounds>(storage_);
    }
    const poly::AffineMap &asMap() const
    {
        return std::get<poly::AffineMap>(storage_);
    }
    const std::vector<poly::Constraint> &asConstraints() const
    {
        return std::get<std::vector<poly::Constraint>>(storage_);
    }

    template <typename T> bool
    is() const
    {
        return std::holds_alternative<T>(storage_);
    }

    /** Render for the IR printer. */
    std::string str() const;

  private:
    Storage storage_;
};

/** Attribute dictionary carried by every operation. */
using AttrMap = std::map<std::string, Attribute>;

/**
 * Well-known attribute names.
 *
 * HLS pragma attributes (translated to #pragma HLS during emission):
 *  - kAttrPipelineII on affine.for: target initiation interval.
 *  - kAttrUnroll on affine.for: unroll factor (0 = full).
 *  - kAttrPartition* on func arguments via func-level attrs.
 */
inline constexpr const char *kAttrPipelineII = "hls.pipeline_ii";
inline constexpr const char *kAttrUnroll = "hls.unroll";
inline constexpr const char *kAttrLowerBounds = "affine.lower_bounds";
inline constexpr const char *kAttrUpperBounds = "affine.upper_bounds";
inline constexpr const char *kAttrAccessMap = "affine.map";
inline constexpr const char *kAttrIterName = "affine.iter_name";
inline constexpr const char *kAttrSymName = "sym_name";
inline constexpr const char *kAttrValue = "value";
inline constexpr const char *kAttrCondition = "affine.condition";
inline constexpr const char *kAttrPartitionFactors = "hls.partition_factors";
inline constexpr const char *kAttrDependenceFree = "hls.dependence_free";
inline constexpr const char *kAttrPartitionKind = "hls.partition_kind";

} // namespace pom::ir

#endif // POM_IR_ATTRIBUTE_H
