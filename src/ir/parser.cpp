#include "ir/parser.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <map>
#include <vector>

#include "poly/affine_map.h"
#include "poly/integer_set.h"
#include "support/diagnostics.h"

namespace pom::ir {

namespace {

bool
isIdentStart(char c)
{
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}

bool
isIdentChar(char c)
{
    return isIdentStart(c) || (c >= '0' && c <= '9') || c == '.';
}

bool
isDigit(char c)
{
    return c >= '0' && c <= '9';
}

std::vector<std::string>
genericDims(size_t n)
{
    std::vector<std::string> names;
    names.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        std::string name = "d";
        name += std::to_string(i);
        names.push_back(std::move(name));
    }
    return names;
}

/** Nesting ceiling: way above any real design, below stack overflow. */
constexpr int kMaxNestingDepth = 256;

class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    std::unique_ptr<Operation>
    parseModule()
    {
        skip();
        auto op = parseOp();
        skip();
        if (!atEnd())
            error("expected end of input after top-level operation");
        return op;
    }

  private:
    // ----- low-level cursor -------------------------------------------

    bool atEnd() const { return pos_ >= text_.size(); }

    char
    peek(size_t ahead = 0) const
    {
        size_t p = pos_ + ahead;
        return p < text_.size() ? text_[p] : '\0';
    }

    void
    skip()
    {
        while (!atEnd()) {
            char c = text_[pos_];
            if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
                ++pos_;
            } else if (c == '/' && peek(1) == '/') {
                while (!atEnd() && text_[pos_] != '\n')
                    ++pos_;
            } else {
                break;
            }
        }
    }

    [[noreturn]] void
    error(const std::string &message) const
    {
        size_t line = 1, col = 1;
        for (size_t i = 0; i < pos_ && i < text_.size(); ++i) {
            if (text_[i] == '\n') {
                ++line;
                col = 1;
            } else {
                ++col;
            }
        }
        support::fatal("ir parser: line " + std::to_string(line) + " col " +
                       std::to_string(col) + ": " + message);
    }

    /** Consume @p literal if it is next (after whitespace). */
    bool
    tryLiteral(const char *literal)
    {
        skip();
        size_t n = std::char_traits<char>::length(literal);
        if (text_.compare(pos_, n, literal) != 0)
            return false;
        // Keep `-` distinct from `->` so minus never eats an arrow.
        if (n == 1 && literal[0] == '-' && peek(1) == '>')
            return false;
        pos_ += n;
        return true;
    }

    void
    expectLiteral(const char *literal)
    {
        if (!tryLiteral(literal))
            error(std::string("expected '") + literal + "'");
    }

    std::string
    parseIdent()
    {
        skip();
        if (!isIdentStart(peek()))
            error("expected identifier");
        size_t start = pos_;
        while (isIdentChar(peek()))
            ++pos_;
        return text_.substr(start, pos_ - start);
    }

    /** The name after a '%' sigil; may start with a digit. */
    std::string
    parseValueName()
    {
        if (!isIdentChar(peek()))
            error("expected value name after '%'");
        size_t start = pos_;
        while (isIdentChar(peek()))
            ++pos_;
        return text_.substr(start, pos_ - start);
    }

    std::int64_t
    parseInt()
    {
        skip();
        size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        if (!isDigit(peek()))
            error("expected integer");
        while (isDigit(peek()))
            ++pos_;
        std::string token = text_.substr(start, pos_ - start);
        errno = 0;
        char *end = nullptr;
        std::int64_t value = std::strtoll(token.c_str(), &end, 10);
        if (errno == ERANGE || end != token.c_str() + token.size())
            error("integer out of range: " + token);
        return value;
    }

    // ----- values and scopes ------------------------------------------

    void
    define(const std::string &name, Value *value)
    {
        auto &scope = scopes_.back();
        if (!scope.emplace(name, value).second)
            error("redefinition of value '%" + name + "'");
    }

    Value *
    resolve(const std::string &name)
    {
        for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
            auto found = it->find(name);
            if (found != it->end())
                return found->second;
        }
        error("use of undefined value '%" + name + "'");
    }

    // ----- types -------------------------------------------------------

    ScalarKind
    parseScalarKind(const std::string &name)
    {
        auto kind = scalarKindByName(name);
        if (!kind)
            error("unknown scalar type '" + name + "'");
        return *kind;
    }

    Type
    parseType()
    {
        std::string ident = parseIdent();
        if (ident != "memref")
            return Type::scalar(parseScalarKind(ident));
        expectLiteral("<");
        std::vector<std::int64_t> shape;
        skip();
        while (isDigit(peek()) || peek() == '-') {
            shape.push_back(parseInt());
            if (peek() != 'x')
                error("expected 'x' after memref dimension");
            ++pos_;
        }
        ScalarKind elem = parseScalarKind(parseIdent());
        expectLiteral(">");
        return Type::memref(elem, std::move(shape));
    }

    // ----- attribute values -------------------------------------------

    poly::LinearExpr
    parseLinearExpr(const std::vector<std::string> &dims)
    {
        poly::LinearExpr expr(dims.size());
        int sign = tryLiteral("-") ? -1 : 1;
        while (true) {
            skip();
            if (isDigit(peek())) {
                std::int64_t v = parseInt();
                if (tryLiteral("*")) {
                    size_t i = dimIndex(dims, parseIdent());
                    expr.setCoeff(i, expr.coeff(i) + sign * v);
                } else {
                    expr.setConstantTerm(expr.constantTerm() + sign * v);
                }
            } else if (isIdentStart(peek())) {
                size_t i = dimIndex(dims, parseIdent());
                expr.setCoeff(i, expr.coeff(i) + sign);
            } else {
                error("expected linear expression term");
            }
            if (tryLiteral("+"))
                sign = 1;
            else if (tryLiteral("-"))
                sign = -1;
            else
                break;
        }
        return expr;
    }

    size_t
    dimIndex(const std::vector<std::string> &dims, const std::string &name)
    {
        for (size_t i = 0; i < dims.size(); ++i) {
            if (dims[i] == name)
                return i;
        }
        error("unknown dimension '" + name + "' in affine expression");
    }

    poly::AffineMap
    parseAffineMapBody()
    {
        expectLiteral("(");
        std::vector<std::string> dims;
        if (!tryLiteral(")")) {
            do {
                std::string name = parseIdent();
                for (const auto &d : dims) {
                    if (d == name)
                        error("duplicate map dimension '" + name + "'");
                }
                dims.push_back(std::move(name));
            } while (tryLiteral(","));
            expectLiteral(")");
        }
        expectLiteral("->");
        expectLiteral("(");
        std::vector<poly::LinearExpr> results;
        if (!tryLiteral(")")) {
            do {
                results.push_back(parseLinearExpr(dims));
            } while (tryLiteral(","));
            expectLiteral(")");
        }
        return poly::AffineMap(std::move(dims), std::move(results));
    }

    std::vector<poly::Bound>
    parseBoundList(const std::vector<std::string> &dims)
    {
        std::vector<poly::Bound> bounds;
        expectLiteral("[");
        if (tryLiteral("]"))
            return bounds;
        do {
            expectLiteral("(");
            poly::Bound b;
            b.expr = parseLinearExpr(dims);
            expectLiteral(")");
            if (tryLiteral("/"))
                b.divisor = parseInt();
            bounds.push_back(std::move(b));
        } while (tryLiteral(","));
        expectLiteral("]");
        return bounds;
    }

    Attribute
    parseBoundsAttr()
    {
        expectLiteral("<");
        std::int64_t n = parseInt();
        if (n < 0 || n > 4096)
            error("unreasonable bounds dimensionality");
        auto dims = genericDims(static_cast<size_t>(n));
        expectLiteral(",");
        if (parseIdent() != "lo")
            error("expected 'lo' bound list");
        poly::DimBounds bounds;
        bounds.lower = parseBoundList(dims);
        expectLiteral(",");
        if (parseIdent() != "hi")
            error("expected 'hi' bound list");
        bounds.upper = parseBoundList(dims);
        expectLiteral(">");
        return Attribute(std::move(bounds));
    }

    Attribute
    parseConstraintsAttr()
    {
        expectLiteral("<");
        std::int64_t n = parseInt();
        if (n < 0 || n > 4096)
            error("unreasonable constraint dimensionality");
        auto dims = genericDims(static_cast<size_t>(n));
        expectLiteral(",");
        expectLiteral("[");
        std::vector<poly::Constraint> constraints;
        if (!tryLiteral("]")) {
            do {
                poly::Constraint c;
                c.expr = parseLinearExpr(dims);
                if (tryLiteral("=="))
                    c.isEq = true;
                else
                    expectLiteral(">=");
                if (parseInt() != 0)
                    error("constraints compare against 0");
                constraints.push_back(std::move(c));
            } while (tryLiteral(","));
            expectLiteral("]");
        }
        expectLiteral(">");
        return Attribute(std::move(constraints));
    }

    Attribute
    parseNumberAttr()
    {
        size_t start = pos_;
        bool isFloat = false;
        if (peek() == '-')
            ++pos_;
        if (peek() == 'i' || peek() == 'n') {
            // -inf / inf / nan reached via parseAttrValue dispatch.
            std::string word = parseIdent();
            if (word == "inf")
                return Attribute(text_[start] == '-' ? -HUGE_VAL
                                                     : HUGE_VAL);
            if (word == "nan")
                return Attribute(std::nan(""));
            error("expected number");
        }
        if (!isDigit(peek()))
            error("expected number");
        while (isDigit(peek()))
            ++pos_;
        if (peek() == '.') {
            isFloat = true;
            ++pos_;
            while (isDigit(peek()))
                ++pos_;
        }
        if (peek() == 'e' || peek() == 'E') {
            isFloat = true;
            ++pos_;
            if (peek() == '+' || peek() == '-')
                ++pos_;
            if (!isDigit(peek()))
                error("malformed float exponent");
            while (isDigit(peek()))
                ++pos_;
        }
        std::string token = text_.substr(start, pos_ - start);
        errno = 0;
        char *end = nullptr;
        if (isFloat) {
            double value = std::strtod(token.c_str(), &end);
            if (end != token.c_str() + token.size())
                error("malformed float: " + token);
            return Attribute(value);
        }
        std::int64_t value = std::strtoll(token.c_str(), &end, 10);
        if (errno == ERANGE || end != token.c_str() + token.size())
            error("integer out of range: " + token);
        return Attribute(value);
    }

    Attribute
    parseStringAttr()
    {
        expectLiteral("\"");
        std::string out;
        while (true) {
            if (atEnd())
                error("unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                break;
            if (c == '\\') {
                if (atEnd())
                    error("unterminated escape");
                c = text_[pos_++];
            }
            out.push_back(c);
        }
        return Attribute(std::move(out));
    }

    Attribute
    parseAttrValue()
    {
        skip();
        char c = peek();
        if (c == '"')
            return parseStringAttr();
        if (c == '[') {
            ++pos_;
            std::vector<std::int64_t> values;
            if (!tryLiteral("]")) {
                do {
                    values.push_back(parseInt());
                } while (tryLiteral(","));
                expectLiteral("]");
            }
            return Attribute(std::move(values));
        }
        if (isDigit(c) || c == '-')
            return parseNumberAttr();
        if (isIdentStart(c)) {
            size_t save = pos_;
            std::string word = parseIdent();
            if (word == "affine_map") {
                expectLiteral("<");
                auto map = parseAffineMapBody();
                expectLiteral(">");
                return Attribute(std::move(map));
            }
            if (word == "bounds")
                return parseBoundsAttr();
            if (word == "constraints")
                return parseConstraintsAttr();
            if (word == "inf")
                return Attribute(HUGE_VAL);
            if (word == "nan")
                return Attribute(std::nan(""));
            pos_ = save;
        }
        error("expected attribute value");
    }

    AttrMap
    parseAttrDict()
    {
        expectLiteral("{");
        AttrMap attrs;
        do {
            std::string key = parseIdent();
            expectLiteral("=");
            if (!attrs.emplace(key, parseAttrValue()).second)
                error("duplicate attribute '" + key + "'");
        } while (tryLiteral(","));
        expectLiteral("}");
        return attrs;
    }

    /** Distinguish `{key = ...}` (attrs) from `{...}` (a region). */
    bool
    attrDictAhead()
    {
        size_t save = pos_;
        bool result = false;
        if (tryLiteral("{")) {
            skip();
            if (isIdentStart(peek())) {
                parseIdent();
                skip();
                result = peek() == '=' && peek(1) != '=';
            }
        }
        pos_ = save;
        return result;
    }

    // ----- operations --------------------------------------------------

    std::unique_ptr<Operation>
    parseOp()
    {
        if (++depth_ > kMaxNestingDepth)
            error("operation nesting too deep");
        std::vector<std::string> result_names;
        skip();
        if (peek() == '%') {
            do {
                expectLiteral("%");
                result_names.push_back(parseValueName());
            } while (tryLiteral(","));
            expectLiteral("=");
        }
        std::string op_name = parseIdent();

        std::vector<Value *> operands;
        skip();
        if (peek() == '%') {
            do {
                expectLiteral("%");
                operands.push_back(resolve(parseValueName()));
            } while (tryLiteral(","));
        }

        AttrMap attrs;
        if (attrDictAhead())
            attrs = parseAttrDict();

        std::vector<Type> result_types;
        if (tryLiteral(":")) {
            do {
                result_types.push_back(parseType());
            } while (tryLiteral(","));
        }
        if (result_types.size() != result_names.size()) {
            error("operation '" + op_name + "' declares " +
                  std::to_string(result_names.size()) + " results but " +
                  std::to_string(result_types.size()) + " result types");
        }

        auto op = Operation::create(op_name, std::move(operands),
                                    std::move(result_types),
                                    std::move(attrs), 0);
        for (size_t i = 0; i < result_names.size(); ++i) {
            op->setResultName(i, result_names[i]);
            define(result_names[i], op->result(i));
        }

        skip();
        while (peek() == '{') {
            parseRegion(*op);
            skip();
        }
        --depth_;
        return op;
    }

    void
    parseRegion(Operation &op)
    {
        Block *block = op.appendRegion();
        expectLiteral("{");
        scopes_.emplace_back();
        if (tryLiteral("(")) {
            do {
                expectLiteral("%");
                std::string name = parseValueName();
                expectLiteral(":");
                Type type = parseType();
                define(name, block->addArgument(type, name));
            } while (tryLiteral(","));
            expectLiteral(")");
        }
        skip();
        while (!atEnd() && peek() != '}')
            block->push(parseOp());
        expectLiteral("}");
        scopes_.pop_back();
    }

    const std::string &text_;
    size_t pos_ = 0;
    int depth_ = 0;
    std::vector<std::map<std::string, Value *>> scopes_ = {{}};
};

} // namespace

std::unique_ptr<Operation>
parseIr(const std::string &text)
{
    Parser parser(text);
    return parser.parseModule();
}

std::unique_ptr<Operation>
parseIr(const std::string &text, std::string *error)
{
    try {
        return parseIr(text);
    } catch (const support::FatalError &e) {
        if (error)
            *error = e.what();
        return nullptr;
    }
}

} // namespace pom::ir
