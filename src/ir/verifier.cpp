#include "ir/verifier.h"

#include <sstream>

namespace pom::ir {

namespace {

void
err(std::vector<std::string> &errors, const Operation &op,
    const std::string &message)
{
    errors.push_back(op.opName() + ": " + message);
}

void
verifyOp(const Operation &op, std::vector<std::string> &errors)
{
    const std::string &name = op.opName();

    if (name == "func.func") {
        if (!op.hasAttr(kAttrSymName))
            err(errors, op, "missing sym_name");
        if (op.numRegions() != 1)
            err(errors, op, "expected exactly one region");
        return;
    }
    if (name == "affine.for") {
        if (op.numRegions() != 1 || op.region(0).numArguments() != 1) {
            err(errors, op, "expected one region with one induction arg");
            return;
        }
        if (!op.region(0).argument(0)->type().isIndex())
            err(errors, op, "induction variable must be index-typed");
        if (!op.hasAttr(kAttrLowerBounds) || !op.hasAttr(kAttrUpperBounds)) {
            err(errors, op, "missing bound attributes");
            return;
        }
        const auto &lower = op.attr(kAttrLowerBounds).asBounds().lower;
        const auto &upper = op.attr(kAttrUpperBounds).asBounds().upper;
        if (lower.empty())
            err(errors, op, "no lower bounds");
        if (upper.empty())
            err(errors, op, "no upper bounds");
        for (const auto &b : lower) {
            if (b.expr.numDims() != op.numOperands() + 1)
                err(errors, op, "lower bound arity mismatch");
            if (b.divisor <= 0)
                err(errors, op, "non-positive bound divisor");
        }
        for (const auto &b : upper) {
            if (b.expr.numDims() != op.numOperands() + 1)
                err(errors, op, "upper bound arity mismatch");
            if (b.divisor <= 0)
                err(errors, op, "non-positive bound divisor");
        }
        for (size_t i = 0; i < op.numOperands(); ++i) {
            if (!op.operand(i)->type().isIndex())
                err(errors, op, "bound operand must be index-typed");
        }
        if (op.hasAttr(kAttrPipelineII) &&
            op.attr(kAttrPipelineII).asInt() < 1) {
            err(errors, op, "pipeline II must be >= 1");
        }
        if (op.hasAttr(kAttrUnroll) && op.attr(kAttrUnroll).asInt() < 0)
            err(errors, op, "unroll factor must be >= 0");
        return;
    }
    if (name == "affine.if") {
        if (op.numRegions() != 1)
            err(errors, op, "expected one region");
        if (!op.hasAttr(kAttrCondition)) {
            err(errors, op, "missing condition");
            return;
        }
        for (const auto &c : op.attr(kAttrCondition).asConstraints()) {
            if (c.expr.numDims() != op.numOperands())
                err(errors, op, "condition arity mismatch");
        }
        return;
    }
    if (name == "affine.load") {
        if (op.numOperands() < 1 || !op.operand(0)->type().isMemRef()) {
            err(errors, op, "first operand must be a memref");
            return;
        }
        if (!op.hasAttr(kAttrAccessMap)) {
            err(errors, op, "missing access map");
            return;
        }
        const auto &map = op.attr(kAttrAccessMap).asMap();
        if (map.numDomainDims() != op.numOperands() - 1)
            err(errors, op, "access map arity mismatch");
        if (map.numResults() != op.operand(0)->type().rank())
            err(errors, op, "access map rank mismatch");
        if (op.numResults() != 1)
            err(errors, op, "expected one result");
        else if (op.result(0)->type().elementKind() !=
                 op.operand(0)->type().elementKind()) {
            err(errors, op, "result type mismatches memref element type");
        }
        return;
    }
    if (name == "affine.store") {
        if (op.numOperands() < 2 || !op.operand(1)->type().isMemRef()) {
            err(errors, op, "second operand must be a memref");
            return;
        }
        if (!op.hasAttr(kAttrAccessMap)) {
            err(errors, op, "missing access map");
            return;
        }
        const auto &map = op.attr(kAttrAccessMap).asMap();
        if (map.numDomainDims() != op.numOperands() - 2)
            err(errors, op, "access map arity mismatch");
        if (map.numResults() != op.operand(1)->type().rank())
            err(errors, op, "access map rank mismatch");
        if (op.operand(0)->type().isMemRef())
            err(errors, op, "stored value must be scalar");
        return;
    }
    if (name == "arith.constant") {
        if (!op.hasAttr(kAttrValue))
            err(errors, op, "missing value attribute");
        if (op.numResults() != 1)
            err(errors, op, "expected one result");
        return;
    }
    if (name.rfind("arith.", 0) == 0) {
        if (op.numResults() != 1) {
            err(errors, op, "expected one result");
            return;
        }
        if (op.numOperands() == 2) {
            if (!(op.operand(0)->type() == op.operand(1)->type()))
                err(errors, op, "operand type mismatch");
            if (!(op.result(0)->type() == op.operand(0)->type()))
                err(errors, op, "result type mismatch");
        } else if (op.numOperands() != 1) {
            err(errors, op, "expected one or two operands");
        }
        return;
    }
    if (name.rfind("math.", 0) == 0) {
        if (op.numOperands() != 1 || op.numResults() != 1)
            err(errors, op, "expected unary math op");
        return;
    }
    err(errors, op, "unknown operation");
}

} // namespace

std::vector<std::string>
verify(const Operation &op)
{
    std::vector<std::string> errors;
    op.walk([&](const Operation &o) { verifyOp(o, errors); });
    return errors;
}

} // namespace pom::ir
