#include "ir/type.h"

#include <sstream>

#include "support/diagnostics.h"

namespace pom::ir {

int
bitWidth(ScalarKind kind)
{
    switch (kind) {
      case ScalarKind::I8:
      case ScalarKind::U8:
        return 8;
      case ScalarKind::I16:
      case ScalarKind::U16:
        return 16;
      case ScalarKind::I32:
      case ScalarKind::U32:
      case ScalarKind::F32:
        return 32;
      case ScalarKind::I64:
      case ScalarKind::U64:
      case ScalarKind::F64:
      case ScalarKind::Index:
        return 64;
    }
    return 0;
}

bool
isFloat(ScalarKind kind)
{
    return kind == ScalarKind::F32 || kind == ScalarKind::F64;
}

std::string
scalarName(ScalarKind kind)
{
    switch (kind) {
      case ScalarKind::I8: return "i8";
      case ScalarKind::I16: return "i16";
      case ScalarKind::I32: return "i32";
      case ScalarKind::I64: return "i64";
      case ScalarKind::U8: return "u8";
      case ScalarKind::U16: return "u16";
      case ScalarKind::U32: return "u32";
      case ScalarKind::U64: return "u64";
      case ScalarKind::F32: return "f32";
      case ScalarKind::F64: return "f64";
      case ScalarKind::Index: return "index";
    }
    return "?";
}

std::optional<ScalarKind>
scalarKindByName(const std::string &name)
{
    static const ScalarKind kinds[] = {
        ScalarKind::I8,  ScalarKind::I16, ScalarKind::I32, ScalarKind::I64,
        ScalarKind::U8,  ScalarKind::U16, ScalarKind::U32, ScalarKind::U64,
        ScalarKind::F32, ScalarKind::F64, ScalarKind::Index,
    };
    for (ScalarKind k : kinds) {
        if (scalarName(k) == name)
            return k;
    }
    return std::nullopt;
}

std::string
scalarCName(ScalarKind kind)
{
    switch (kind) {
      case ScalarKind::I8: return "int8_t";
      case ScalarKind::I16: return "int16_t";
      case ScalarKind::I32: return "int32_t";
      case ScalarKind::I64: return "int64_t";
      case ScalarKind::U8: return "uint8_t";
      case ScalarKind::U16: return "uint16_t";
      case ScalarKind::U32: return "uint32_t";
      case ScalarKind::U64: return "uint64_t";
      case ScalarKind::F32: return "float";
      case ScalarKind::F64: return "double";
      case ScalarKind::Index: return "int";
    }
    return "?";
}

std::int64_t
Type::numElements() const
{
    POM_ASSERT(is_memref_, "numElements on a scalar type");
    std::int64_t n = 1;
    for (auto d : shape_)
        n *= d;
    return n;
}

std::string
Type::str() const
{
    if (!is_memref_)
        return scalarName(kind_);
    std::ostringstream os;
    os << "memref<";
    for (auto d : shape_)
        os << d << "x";
    os << scalarName(kind_) << ">";
    return os.str();
}

} // namespace pom::ir
