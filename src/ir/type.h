/**
 * @file
 * The type system of POM's compact multi-level IR kernel (the MLIR
 * substitute). POM programs use scalar element types -- the data-type
 * customization surface of the paper's DSL (§IV.A): signed/unsigned
 * integers of 8/16/32/64 bits and 32/64-bit floats -- plus `index` for
 * loop induction variables and `memref` for array references.
 */

#ifndef POM_IR_TYPE_H
#define POM_IR_TYPE_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace pom::ir {

/** Scalar element kinds supported by the DSL (paper Table: p_* types). */
enum class ScalarKind
{
    I8, I16, I32, I64,
    U8, U16, U32, U64,
    F32, F64,
    Index,
};

/** Bit width of a scalar kind (index counts as 64). */
int bitWidth(ScalarKind kind);

/** True for F32/F64. */
bool isFloat(ScalarKind kind);

/** Printable name, e.g. "f32", "i8", "index". */
std::string scalarName(ScalarKind kind);

/** Reverse of scalarName(); nullopt for unknown spellings. */
std::optional<ScalarKind> scalarKindByName(const std::string &name);

/** HLS C type spelling, e.g. "float", "int8_t". */
std::string scalarCName(ScalarKind kind);

/**
 * A value type: a scalar, or a memref (shaped array reference) of a
 * scalar element type.
 */
class Type
{
  public:
    Type() = default;

    /** Scalar type. */
    static Type scalar(ScalarKind kind) { return Type(kind, {}); }

    /** Shaped memref type. */
    static Type
    memref(ScalarKind elem, std::vector<std::int64_t> shape)
    {
        Type t(elem, std::move(shape));
        t.is_memref_ = true;
        return t;
    }

    static Type f32() { return scalar(ScalarKind::F32); }
    static Type f64() { return scalar(ScalarKind::F64); }
    static Type i32() { return scalar(ScalarKind::I32); }
    static Type index() { return scalar(ScalarKind::Index); }

    bool isMemRef() const { return is_memref_; }
    bool isIndex() const { return !is_memref_ && kind_ == ScalarKind::Index; }
    bool isFloatScalar() const { return !is_memref_ && isFloat(kind_); }

    ScalarKind elementKind() const { return kind_; }
    const std::vector<std::int64_t> &shape() const { return shape_; }
    size_t rank() const { return shape_.size(); }

    /** Total number of elements of a memref. */
    std::int64_t numElements() const;

    /** Render, e.g. "f32" or "memref<32x32xf32>". */
    std::string str() const;

    bool operator==(const Type &o) const = default;

  private:
    Type(ScalarKind kind, std::vector<std::int64_t> shape)
        : kind_(kind), shape_(std::move(shape))
    {}

    ScalarKind kind_ = ScalarKind::F32;
    std::vector<std::int64_t> shape_;
    bool is_memref_ = false;
};

} // namespace pom::ir

#endif // POM_IR_TYPE_H
