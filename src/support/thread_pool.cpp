#include "support/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>

#if defined(__linux__)
#include <pthread.h>
#endif

#include "support/string_util.h"

namespace pom::support {

namespace {

constexpr int kMaxJobs = 256;

int
clampJobs(std::int64_t n)
{
    return static_cast<int>(
        std::clamp<std::int64_t>(n, 1, kMaxJobs));
}

int
environmentJobs()
{
    if (const char *env = std::getenv("POM_JOBS")) {
        std::int64_t v = 0;
        if (parseInt64(env, v) && v > 0)
            return clampJobs(v);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return clampJobs(hw == 0 ? 1 : static_cast<std::int64_t>(hw));
}

std::atomic<int> g_jobs{0}; // 0 = unset, fall back to the environment

/** Name the calling thread at the OS level (15-char pthread limit). */
void
nameCurrentThread(const std::string &name)
{
#if defined(__linux__)
    pthread_setname_np(pthread_self(), name.substr(0, 15).c_str());
#else
    (void)name;
#endif
}

} // namespace

int
jobs()
{
    int v = g_jobs.load(std::memory_order_relaxed);
    return v > 0 ? v : environmentJobs();
}

void
setJobs(int n)
{
    g_jobs.store(n > 0 ? clampJobs(n) : 0, std::memory_order_relaxed);
}

ThreadPool::ThreadPool(int workers, const std::string &name)
{
    int n = clampJobs(workers);
    threads_.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        std::string threadName = name + "-" + std::to_string(i);
        threads_.emplace_back([this, threadName]() {
            nameCurrentThread(threadName);
            workerLoop();
        });
    }
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    wake_.notify_all();
    for (auto &t : threads_)
        t.join();
}

std::uint64_t
ThreadPool::tasksExecuted() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return executed_;
}

bool
ThreadPool::isWorkerThread() const
{
    std::thread::id self = std::this_thread::get_id();
    for (const auto &t : threads_) {
        if (t.get_id() == self)
            return true;
    }
    return false;
}

void
ThreadPool::post(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(task));
    }
    wake_.notify_one();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock,
                       [this]() { return stopping_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stopping and drained
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task(); // packaged_task captures exceptions in its future
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++executed_;
        }
    }
}

ThreadPool &
ThreadPool::global()
{
    static ThreadPool *pool = new ThreadPool(jobs());
    return *pool;
}

} // namespace pom::support
