/**
 * @file
 * Exact rational arithmetic on 64-bit numerator/denominator, used by the
 * Fourier–Motzkin eliminator for bound comparisons. Always kept in
 * canonical form: denominator > 0, gcd(|num|, den) == 1.
 */

#ifndef POM_SUPPORT_RATIONAL_H
#define POM_SUPPORT_RATIONAL_H

#include <compare>
#include <cstdint>
#include <string>

#include "support/math_util.h"

namespace pom::support {

/** An exact rational number num/den with den > 0. */
class Rational
{
  public:
    constexpr Rational() : num_(0), den_(1) {}

    constexpr Rational(std::int64_t value) : num_(value), den_(1) {}

    constexpr
    Rational(std::int64_t num, std::int64_t den) : num_(num), den_(den)
    {
        POM_ASSERT(den_ != 0, "rational with zero denominator");
        normalize();
    }

    constexpr std::int64_t num() const { return num_; }
    constexpr std::int64_t den() const { return den_; }

    constexpr bool isInteger() const { return den_ == 1; }

    /** Largest integer <= this. */
    constexpr std::int64_t floor() const { return floorDiv(num_, den_); }

    /** Smallest integer >= this. */
    constexpr std::int64_t ceil() const { return ceilDiv(num_, den_); }

    constexpr Rational
    operator+(const Rational &o) const
    {
        return Rational(num_ * o.den_ + o.num_ * den_, den_ * o.den_);
    }

    constexpr Rational
    operator-(const Rational &o) const
    {
        return Rational(num_ * o.den_ - o.num_ * den_, den_ * o.den_);
    }

    constexpr Rational
    operator*(const Rational &o) const
    {
        return Rational(num_ * o.num_, den_ * o.den_);
    }

    constexpr Rational
    operator/(const Rational &o) const
    {
        POM_ASSERT(o.num_ != 0, "rational division by zero");
        return Rational(num_ * o.den_, den_ * o.num_);
    }

    constexpr Rational operator-() const { return Rational(-num_, den_); }

    constexpr bool
    operator==(const Rational &o) const
    {
        return num_ == o.num_ && den_ == o.den_;
    }

    constexpr std::strong_ordering
    operator<=>(const Rational &o) const
    {
        // Cross-multiply; denominators are positive.
        return num_ * o.den_ <=> o.num_ * den_;
    }

    std::string
    str() const
    {
        if (den_ == 1)
            return std::to_string(num_);
        return std::to_string(num_) + "/" + std::to_string(den_);
    }

  private:
    constexpr void
    normalize()
    {
        if (den_ < 0) {
            num_ = -num_;
            den_ = -den_;
        }
        std::int64_t g = gcd(num_, den_);
        if (g > 1) {
            num_ /= g;
            den_ /= g;
        }
    }

    std::int64_t num_;
    std::int64_t den_;
};

} // namespace pom::support

#endif // POM_SUPPORT_RATIONAL_H
