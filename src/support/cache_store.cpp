#include "support/cache_store.h"

#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include <unistd.h>

#include "support/string_util.h"
#include "support/version.h"

namespace pom::support {

std::uint64_t
fnv1a64(const char *data, std::size_t size, std::uint64_t hash)
{
    for (std::size_t i = 0; i < size; ++i) {
        hash ^= static_cast<unsigned char>(data[i]);
        hash *= 1099511628211ull;
    }
    return hash;
}

std::string
hex16(std::uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016" PRIx64, v);
    return buf;
}

std::string
cacheContentHash(const std::string &key)
{
    return hex16(fnv1a64(key.data(), key.size()));
}

std::string
cacheFormatHeader(const char *formatName)
{
    return std::string(formatName) + " " + kVersionString + "\n";
}

std::string
sealCacheEntry(const std::string &body)
{
    return body + "sum " + hex16(fnv1a64(body.data(), body.size())) +
           "\n";
}

bool
openCacheEntry(const std::string &text, const char *formatName,
               std::size_t &bodyStart, std::string &error)
{
    error.clear();

    // Checksum first: everything before the final "sum " line.
    std::size_t sum_at = text.rfind("sum ");
    if (sum_at == std::string::npos || sum_at == 0 ||
        text[sum_at - 1] != '\n') {
        error = "missing checksum line";
        return false;
    }
    std::string want = hex16(fnv1a64(text.data(), sum_at));
    std::string got = text.substr(sum_at + 4);
    while (!got.empty() && (got.back() == '\n' || got.back() == '\r'))
        got.pop_back();
    if (got != want) {
        error = "checksum mismatch (corrupt entry)";
        return false;
    }

    std::size_t nl = text.find('\n');
    if (nl == std::string::npos) {
        error = "truncated entry (missing newline)";
        return false;
    }
    std::string header = text.substr(0, nl);
    std::string expect = cacheFormatHeader(formatName);
    expect.pop_back(); // the '\n' we stopped at
    if (header != expect) {
        error = "cache format/version mismatch: entry says '" + header +
                "', this build is '" + expect + "'";
        return false;
    }
    bodyStart = nl + 1;
    return true;
}

bool
CacheEntryReader::fail(const std::string &what)
{
    if (error.empty())
        error = what + " at offset " + std::to_string(pos);
    return false;
}

bool
CacheEntryReader::line(std::string &out)
{
    std::size_t nl = text.find('\n', pos);
    if (nl == std::string::npos)
        return fail("truncated entry (missing newline)");
    out = text.substr(pos, nl - pos);
    pos = nl + 1;
    return true;
}

bool
CacheEntryReader::raw(std::size_t n, std::string &out)
{
    if (pos + n + 1 > text.size() || text[pos + n] != '\n')
        return fail("truncated raw block");
    out = text.substr(pos, n);
    pos += n + 1;
    return true;
}

bool
scanU64(const std::string &line, const char *fmt, std::uint64_t &out)
{
    return std::sscanf(line.c_str(), fmt, &out) == 1;
}

bool
splitNamed(const std::string &rest, std::string &name, std::string &tail)
{
    std::size_t colon = rest.find(':');
    if (colon == std::string::npos)
        return false;
    std::int64_t n = 0;
    if (!parseInt64(rest.substr(0, colon), n) || n < 0 ||
        colon + 1 + static_cast<std::size_t>(n) > rest.size()) {
        return false;
    }
    name = rest.substr(colon + 1, static_cast<std::size_t>(n));
    tail = rest.substr(colon + 1 + static_cast<std::size_t>(n));
    return true;
}

bool
writeFileAtomically(const std::string &path, const std::string &content,
                    std::string &error)
{
    namespace fs = std::filesystem;
    fs::path target(path);
    fs::path tmp = target;
    tmp += ".tmp." + std::to_string(::getpid());
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out || !(out << content) || !out.flush()) {
            error = "cannot write '" + tmp.string() + "'";
            return false;
        }
    }
    std::error_code ec;
    fs::rename(tmp, target, ec);
    if (ec) {
        error = "cannot rename '" + tmp.string() + "': " + ec.message();
        fs::remove(tmp, ec);
        return false;
    }
    return true;
}

bool
readCacheIndex(const std::string &path, const char *formatName,
               std::vector<std::string> &hashes, std::string &error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return true;
    std::string header;
    if (!std::getline(in, header)) {
        error = "cache index '" + path + "' is empty";
        return false;
    }
    std::string expect = cacheFormatHeader(formatName);
    expect.pop_back();
    if (header != expect) {
        error = "cache index '" + path +
                "' format/version mismatch: index says '" + header +
                "', this build is '" + expect + "'";
        return false;
    }
    std::string line;
    while (std::getline(in, line)) {
        if (!line.empty())
            hashes.push_back(line);
    }
    return true;
}

} // namespace pom::support
