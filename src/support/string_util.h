/**
 * @file
 * String helpers for IR printing and HLS C emission.
 */

#ifndef POM_SUPPORT_STRING_UTIL_H
#define POM_SUPPORT_STRING_UTIL_H

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

namespace pom::support {

/** Join the elements of @p parts with @p sep. */
std::string join(const std::vector<std::string> &parts,
                 const std::string &sep);

/** Join arbitrary streamable items produced by @p fmt over a container. */
template <typename Container, typename Fmt>
std::string
joinMapped(const Container &items, const std::string &sep, Fmt fmt)
{
    std::ostringstream os;
    bool first = true;
    for (const auto &item : items) {
        if (!first)
            os << sep;
        first = false;
        os << fmt(item);
    }
    return os.str();
}

/** Repeat a string @p n times (used for indentation). */
std::string repeat(const std::string &s, int n);

/** Count the newline-separated, non-empty, non-comment lines of code. */
int countLoc(const std::string &source);

/**
 * Parse @p s as a signed 64-bit decimal integer. The whole string must
 * be consumed and the value must fit; returns false otherwise (unlike
 * atoll, which silently truncates and returns 0 on garbage).
 */
bool parseInt64(const std::string &s, std::int64_t &out);

/**
 * Parse @p s as a finite double. The whole string must be consumed;
 * returns false on garbage, trailing characters, overflow, inf/nan.
 */
bool parseDouble(const std::string &s, double &out);

} // namespace pom::support

#endif // POM_SUPPORT_STRING_UTIL_H
