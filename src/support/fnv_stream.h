/**
 * @file
 * A hashing std::streambuf for canonical-fingerprint construction. The
 * caches key their entries by a digest of a canonical textual
 * serialization; building that text only to hash-and-discard it
 * allocates multi-KB strings on every lookup of the DSE hot path.
 * FnvHashStream lets the existing operator<< serialization code run
 * unchanged while every byte is folded directly into two independent
 * FNV-1a-64 states -- no buffer, no allocation.
 *
 * The digest is the concatenation of both states as 32 lowercase hex
 * digits. Two streams with different offset bases make an accidental
 * 128-bit collision between two distinct canonical texts implausible;
 * the textual form remains available behind the fingerprint debug dump
 * for auditing what was hashed.
 */

#ifndef POM_SUPPORT_FNV_STREAM_H
#define POM_SUPPORT_FNV_STREAM_H

#include <cstdint>
#include <ostream>
#include <streambuf>
#include <string>

#include "support/cache_store.h"

namespace pom::support {

/** Offset basis of the second FNV-1a-64 state (any constant distinct
 *  from kFnvOffset64; this is the high word of the FNV-1a-128 basis). */
inline constexpr std::uint64_t kFnvAltOffset64 = 0x6c62272e07bb0142ull;

/** std::streambuf that folds every written byte into two FNV states. */
class FnvStreambuf final : public std::streambuf
{
  public:
    std::uint64_t state1 = kFnvOffset64;
    std::uint64_t state2 = kFnvAltOffset64;

  protected:
    int_type
    overflow(int_type ch) override
    {
        if (ch != traits_type::eof())
            fold(static_cast<unsigned char>(ch));
        return ch;
    }

    std::streamsize
    xsputn(const char *s, std::streamsize n) override
    {
        for (std::streamsize i = 0; i < n; ++i)
            fold(static_cast<unsigned char>(s[i]));
        return n;
    }

  private:
    void
    fold(unsigned char c)
    {
        constexpr std::uint64_t prime = 1099511628211ull;
        state1 = (state1 ^ c) * prime;
        state2 = (state2 ^ c) * prime;
    }
};

/** An ostream whose "output" is a 128-bit digest (32 hex digits). */
class FnvHashStream
{
  public:
    FnvHashStream() : stream_(&buf_) {}

    std::ostream &out() { return stream_; }

    /** Digest of everything written so far. */
    std::string
    digest() const
    {
        return hex16(buf_.state1) + hex16(buf_.state2);
    }

  private:
    FnvStreambuf buf_;
    std::ostream stream_;
};

} // namespace pom::support

#endif // POM_SUPPORT_FNV_STREAM_H
