/**
 * @file
 * A minimal JSON document model for the compile-service wire protocol
 * (service/protocol.h). Parses the full JSON value grammar -- objects,
 * arrays, strings, numbers, booleans, null -- into a small DOM with
 * strict errors: bounded nesting depth, overflow-checked integers, and
 * no trailing garbage. Object member order is preserved so encoders
 * can emit canonical documents.
 *
 * This is intentionally not a general-purpose JSON library: documents
 * are protocol messages of at most a few megabytes, so the DOM favours
 * simplicity (one struct, value semantics) over allocation tricks.
 */

#ifndef POM_SUPPORT_JSON_H
#define POM_SUPPORT_JSON_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace pom::support {

/** One JSON value (a tagged union with value semantics). */
struct JsonValue
{
    enum class Kind
    {
        Null,
        Bool,
        Int,
        Double,
        String,
        Array,
        Object,
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    std::int64_t integer = 0; ///< Kind::Int
    double number = 0.0;      ///< Kind::Double
    std::string text;         ///< Kind::String
    std::vector<JsonValue> items; ///< Kind::Array
    std::vector<std::pair<std::string, JsonValue>> members; ///< Object

    bool isObject() const { return kind == Kind::Object; }
    bool isString() const { return kind == Kind::String; }

    /** Member lookup (first match); null when absent or not an object. */
    const JsonValue *find(const std::string &key) const;

    // Typed accessors with defaults for optional protocol fields.
    std::string asString(const std::string &fallback = "") const;
    std::int64_t asInt(std::int64_t fallback = 0) const;
    double asDouble(double fallback = 0.0) const;
    bool asBool(bool fallback = false) const;
};

/**
 * Parse @p text into @p out. The whole input must be one JSON value
 * (plus whitespace); returns false with a position-annotated @p error
 * on malformed input, nesting deeper than 64 levels, or integer
 * overflow.
 */
bool parseJson(const std::string &text, JsonValue &out,
               std::string &error);

/** Quote + escape @p text as a JSON string literal (with the quotes). */
std::string jsonQuote(const std::string &text);

} // namespace pom::support

#endif // POM_SUPPORT_JSON_H
