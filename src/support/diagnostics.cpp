#include "support/diagnostics.h"

#include <cstdio>

namespace pom::support {

void
fatal(const std::string &message)
{
    throw FatalError(message);
}

void
assertFailed(const char *cond, const char *file, int line,
             const std::string &message)
{
    std::fprintf(stderr, "POM internal error: assertion `%s` failed at "
                 "%s:%d%s%s\n", cond, file, line,
                 message.empty() ? "" : ": ", message.c_str());
    std::abort();
}

} // namespace pom::support
