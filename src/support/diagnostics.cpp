#include "support/diagnostics.h"

#include <atomic>
#include <cstdio>
#include <iostream>
#include <mutex>

namespace pom::support {

void
fatal(const std::string &message)
{
    throw FatalError(message);
}

void
assertFailed(const char *cond, const char *file, int line,
             const std::string &message)
{
    std::fprintf(stderr, "POM internal error: assertion `%s` failed at "
                 "%s:%d%s%s\n", cond, file, line,
                 message.empty() ? "" : ": ", message.c_str());
    std::abort();
}

// ----- leveled diagnostics -----------------------------------------------

namespace {

std::atomic<int> g_diag_level{static_cast<int>(DiagLevel::Info)};
std::atomic<std::ostream *> g_diag_stream{nullptr};
std::mutex g_diag_mutex;

const char *
levelName(DiagLevel level)
{
    switch (level) {
      case DiagLevel::Error: return "error";
      case DiagLevel::Warning: return "warning";
      case DiagLevel::Info: return "info";
      case DiagLevel::Debug: return "debug";
    }
    return "?";
}

thread_local std::int64_t t_request_id = 0;

} // namespace

void
setDiagLevel(DiagLevel level)
{
    g_diag_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

DiagLevel
diagLevel()
{
    return static_cast<DiagLevel>(
        g_diag_level.load(std::memory_order_relaxed));
}

void
setDiagStream(std::ostream *os)
{
    g_diag_stream.store(os, std::memory_order_relaxed);
}

std::ostream &
diagStream()
{
    std::ostream *os = g_diag_stream.load(std::memory_order_relaxed);
    return os != nullptr ? *os : std::cerr;
}

void
diag(DiagLevel level, const std::string &message)
{
    if (static_cast<int>(level) >
        g_diag_level.load(std::memory_order_relaxed))
        return;
    std::lock_guard<std::mutex> lock(g_diag_mutex);
    std::ostream &os = diagStream();
    os << "pom " << levelName(level);
    if (t_request_id != 0)
        os << " [req " << t_request_id << "]";
    os << ": " << message << "\n";
}

// ----- request correlation -----------------------------------------------

void
setCurrentRequestId(std::int64_t id)
{
    t_request_id = id;
}

std::int64_t
currentRequestId()
{
    return t_request_id;
}

} // namespace pom::support
