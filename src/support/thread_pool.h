/**
 * @file
 * A small fixed-size thread pool for the compiler's parallel hot paths
 * (the DSE candidate fan-out and the per-workload bench sweeps). There
 * is deliberately no work stealing and no task priorities: submitters
 * enqueue closures, workers drain them FIFO, and determinism is the
 * caller's job -- results must be merged in submission order, never in
 * completion order.
 *
 * The process-wide worker count is resolved once from (in priority
 * order) setJobs(), the POM_JOBS environment variable, and
 * std::thread::hardware_concurrency(); `pomc --jobs N` feeds setJobs().
 * A value of 1 means "no worker threads": submit() still works (tasks
 * run on a single worker) but callers typically bypass the pool
 * entirely when jobs() == 1 so that single-threaded runs stay
 * synchronous and easy to debug.
 *
 * Deadlock rule: a pool worker must never block on a future produced by
 * its own pool. Callers that may run inside a worker check
 * isWorkerThread() and fall back to inline execution.
 */

#ifndef POM_SUPPORT_THREAD_POOL_H
#define POM_SUPPORT_THREAD_POOL_H

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

namespace pom::support {

/**
 * Effective worker count for parallel phases: the last setJobs() value
 * if any, else the POM_JOBS environment variable (clamped to [1, 256]),
 * else std::thread::hardware_concurrency() (at least 1).
 */
int jobs();

/** Override the worker count (0 resets to the environment default). */
void setJobs(int n);

/** Fixed-count FIFO worker pool. */
class ThreadPool
{
  public:
    /**
     * Spawn @p workers threads (clamped to [1, 256]). Each worker gets
     * the OS-level thread name "<name>-<i>" (Linux; truncated to the
     * 15-char pthread limit) so debuggers, /proc and Chrome traces can
     * attribute work to its pool.
     */
    explicit ThreadPool(int workers, const std::string &name = "pom-wkr");

    /** Drains already-queued tasks, then joins all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    int workerCount() const { return static_cast<int>(threads_.size()); }

    /** Tasks fully executed so far (tests / observability). */
    std::uint64_t tasksExecuted() const;

    /** True when called from one of this pool's worker threads. */
    bool isWorkerThread() const;

    /**
     * Enqueue a callable; the returned future carries its result (or
     * exception). Never call get()/wait() on it from a worker of the
     * same pool.
     */
    template <typename Fn>
    auto
    submit(Fn &&fn) -> std::future<std::invoke_result_t<Fn>>
    {
        using R = std::invoke_result_t<Fn>;
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<Fn>(fn));
        std::future<R> result = task->get_future();
        post([task]() { (*task)(); });
        return result;
    }

    /**
     * The process-wide pool, lazily constructed with jobs() workers on
     * first use. Call setJobs() (or export POM_JOBS) before the first
     * parallel phase; later changes do not resize the live pool.
     */
    static ThreadPool &global();

  private:
    void post(std::function<void()> task);
    void workerLoop();

    mutable std::mutex mutex_;
    std::condition_variable wake_;
    std::deque<std::function<void()>> queue_;
    std::vector<std::thread> threads_;
    std::uint64_t executed_ = 0;
    bool stopping_ = false;
};

/**
 * Run fn(0..n-1) across @p pool and wait for all of them; results are
 * deterministic because the caller indexes its own output storage. With
 * a null pool (or a single worker) the loop runs inline, keeping
 * single-job runs synchronous. Exceptions propagate from the first
 * failing index.
 */
template <typename Fn>
void
parallelFor(ThreadPool *pool, std::size_t n, Fn &&fn)
{
    if (pool == nullptr || pool->workerCount() <= 1 ||
        pool->isWorkerThread()) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    std::vector<std::future<void>> done;
    done.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        done.push_back(pool->submit([&fn, i]() { fn(i); }));
    for (auto &f : done)
        f.get();
}

} // namespace pom::support

#endif // POM_SUPPORT_THREAD_POOL_H
