/**
 * @file
 * The single POM version constant. Everything that must agree across a
 * process boundary is stamped with it:
 *
 *  - `pomc --version` / `pomd --version` print it,
 *  - every wire-protocol request/response carries it (the daemon
 *    rejects a mismatched client with a clean error),
 *  - every on-disk estimator-cache entry and index embeds it (a loader
 *    seeing a different version reports a clean format error instead of
 *    misreading bytes).
 *
 * Bump it whenever the wire protocol or the cache entry format changes
 * shape; old daemons/caches then fail loudly rather than corrupt.
 */

#ifndef POM_SUPPORT_VERSION_H
#define POM_SUPPORT_VERSION_H

namespace pom::support {

/** The POM release version (also the wire/cache compatibility token). */
inline constexpr char kVersionString[] = "0.7.0";

/** Wire protocol identifier (service/protocol.h frames). */
inline constexpr char kProtocolName[] = "pom-service/1";

/** On-disk estimator-cache entry/index format identifier. */
inline constexpr char kCacheFormatName[] = "pom-estimator-cache/1";

/** On-disk pipeline-result-cache entry/index format identifier. */
inline constexpr char kPipelineCacheFormatName[] = "pom-pipeline-cache/1";

/** On-disk per-node report-cache entry/index format identifier. */
inline constexpr char kNodeCacheFormatName[] = "pom-node-cache/1";

} // namespace pom::support

#endif // POM_SUPPORT_VERSION_H
