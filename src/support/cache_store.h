/**
 * @file
 * Shared building blocks for POM's content-addressed on-disk caches
 * (the estimator cache in src/hls, the pipeline result cache in
 * src/pass). Every cache that spills to a `--cache-dir` uses the same
 * conventions:
 *
 *  - FNV-1a-64 content hashes, printed as 16 lowercase hex digits,
 *  - a first line "<format-name> <version>" stamping every entry and
 *    index file (a mismatch is a clean load error, never misread
 *    bytes),
 *  - a trailing "sum <hex16>" checksum line over the entry body (a
 *    corrupt entry is skipped with a warning, the rest still load),
 *  - full-key storage inside each entry so a hash collision can never
 *    alias two keys,
 *  - atomic temp-file + rename() writes so a crash mid-save leaves no
 *    torn files.
 *
 * The per-cache payload encoding (estimator report fields, pipeline
 * pass results) stays with the cache; only the container format lives
 * here.
 */

#ifndef POM_SUPPORT_CACHE_STORE_H
#define POM_SUPPORT_CACHE_STORE_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace pom::support {

/** FNV-1a-64 offset basis (the seed for fnv1a64). */
inline constexpr std::uint64_t kFnvOffset64 = 14695981039346656037ull;

/** Fold @p size bytes at @p data into the running FNV-1a-64 @p hash. */
std::uint64_t fnv1a64(const char *data, std::size_t size,
                      std::uint64_t hash = kFnvOffset64);

/** @p v as 16 lowercase hex digits (the content-address spelling). */
std::string hex16(std::uint64_t v);

/** Content address of a cache key: FNV-1a-64 of @p key, 16 hex. */
std::string cacheContentHash(const std::string &key);

/** "<formatName> <kVersionString>\n" -- first line of every file. */
std::string cacheFormatHeader(const char *formatName);

/** Append the trailing "sum <hex16>\n" checksum line to @p body. */
std::string sealCacheEntry(const std::string &body);

/**
 * Validate the trailing checksum and the version-stamped header of a
 * sealed entry. On success @p bodyStart points just past the header
 * line (where cache-specific fields begin). On failure @p error gets
 * "missing checksum line", "checksum mismatch (corrupt entry)" or a
 * format/version mismatch diagnostic.
 */
bool openCacheEntry(const std::string &text, const char *formatName,
                    std::size_t &bodyStart, std::string &error);

/** Cursor over an entry text: strict line-oriented reads. */
struct CacheEntryReader
{
    const std::string &text;
    std::size_t pos = 0;
    std::string error;

    bool fail(const std::string &what);

    /** Read up to the next '\n' (consumed, not returned). */
    bool line(std::string &out);

    /** Read exactly @p n raw bytes plus a trailing '\n'. */
    bool raw(std::size_t n, std::string &out);
};

/** sscanf a single %SCNu64-style field out of @p line. */
bool scanU64(const std::string &line, const char *fmt,
             std::uint64_t &out);

/** Parse "<len>:<name>" at the front of @p rest; true on success. */
bool splitNamed(const std::string &rest, std::string &name,
                std::string &tail);

/** Write @p content to @p path via a temp file + rename (atomic). */
bool writeFileAtomically(const std::string &path,
                         const std::string &content, std::string &error);

/**
 * Read the content-hash index at @p path into @p hashes. Absent file
 * -> true with nothing read (cold start); empty file, wrong
 * format/version or unreadable -> false with @p error.
 */
bool readCacheIndex(const std::string &path, const char *formatName,
                    std::vector<std::string> &hashes, std::string &error);

/** Outcome counts of one cache-directory load/save call. */
struct CacheSpillStats
{
    std::size_t loaded = 0;  ///< entries read into the cache
    std::size_t skipped = 0; ///< corrupt/missing entries warned about
    std::size_t written = 0; ///< new object files created
    std::size_t kept = 0;    ///< entries already present on disk
};

} // namespace pom::support

#endif // POM_SUPPORT_CACHE_STORE_H
