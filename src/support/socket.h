/**
 * @file
 * Unix-domain socket helpers for the compile service (service/server.h
 * and the `pomc --connect` client). A deliberately thin layer over the
 * POSIX API:
 *
 *  - Socket: a move-only RAII file-descriptor owner.
 *  - listenUnix()/connectUnix()/acceptConnection(): AF_UNIX stream
 *    setup with EINTR retry and error strings instead of errno codes.
 *  - sendFrame()/recvFrame(): the length-prefixed message framing the
 *    wire protocol uses -- a 4-byte big-endian payload length followed
 *    by the payload bytes. recvFrame() enforces a caller-supplied size
 *    cap so a corrupt or hostile peer cannot make us allocate
 *    gigabytes.
 *
 * All calls are blocking; callers that need timeouts set them with
 * setRecvTimeout(). Writes use MSG_NOSIGNAL, so a vanished peer yields
 * an error return rather than SIGPIPE.
 */

#ifndef POM_SUPPORT_SOCKET_H
#define POM_SUPPORT_SOCKET_H

#include <cstddef>
#include <string>

namespace pom::support {

/** Move-only owner of a POSIX file descriptor (-1 = empty). */
class Socket
{
  public:
    Socket() = default;
    explicit Socket(int fd) : fd_(fd) {}
    ~Socket() { reset(); }

    Socket(Socket &&other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
    Socket &
    operator=(Socket &&other) noexcept
    {
        if (this != &other) {
            reset();
            fd_ = other.fd_;
            other.fd_ = -1;
        }
        return *this;
    }

    Socket(const Socket &) = delete;
    Socket &operator=(const Socket &) = delete;

    int fd() const { return fd_; }
    bool valid() const { return fd_ >= 0; }

    /** Close the descriptor now (idempotent). */
    void reset();

  private:
    int fd_ = -1;
};

/**
 * Create, bind and listen on an AF_UNIX stream socket at @p path. A
 * stale socket file left by a dead daemon is unlinked first; @p path
 * must fit in sockaddr_un (~107 bytes). Returns an invalid Socket with
 * @p error set on failure.
 */
Socket listenUnix(const std::string &path, int backlog,
                  std::string &error);

/** Connect to a listening AF_UNIX socket. */
Socket connectUnix(const std::string &path, std::string &error);

/**
 * Accept one connection from @p listener. Blocks; returns an invalid
 * Socket with @p error set on failure (including EINTR-free shutdown
 * via closing the listener from another thread).
 */
Socket acceptConnection(const Socket &listener, std::string &error);

/**
 * Wait up to @p millis for @p listener to become readable (i.e. a
 * pending connection). Returns +1 when readable, 0 on timeout, -1 on
 * error. Lets an accept loop poll a shutdown flag between waits.
 */
int waitReadable(const Socket &listener, int millis);

/** Receive timeout for subsequent reads (0 restores blocking). */
bool setRecvTimeout(const Socket &socket, int millis);

/**
 * Send one length-prefixed frame (4-byte big-endian length + payload).
 */
bool sendFrame(const Socket &socket, const std::string &payload,
               std::string &error);

/**
 * Receive one length-prefixed frame into @p payload. Frames longer
 * than @p maxBytes (or a cleanly closed peer) are errors.
 */
bool recvFrame(const Socket &socket, std::string &payload,
               std::size_t maxBytes, std::string &error);

} // namespace pom::support

#endif // POM_SUPPORT_SOCKET_H
