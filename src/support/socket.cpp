#include "support/socket.h"

#include <cerrno>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace pom::support {

namespace {

std::string
errnoString(const std::string &what)
{
    return what + ": " + std::strerror(errno);
}

bool
fillAddress(const std::string &path, sockaddr_un &addr, std::string &error)
{
    if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
        error = "socket path '" + path + "' is empty or too long (max " +
                std::to_string(sizeof(addr.sun_path) - 1) + " bytes)";
        return false;
    }
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return true;
}

} // namespace

void
Socket::reset()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

Socket
listenUnix(const std::string &path, int backlog, std::string &error)
{
    sockaddr_un addr;
    if (!fillAddress(path, addr, error))
        return Socket();
    Socket s(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!s.valid()) {
        error = errnoString("socket");
        return Socket();
    }
    // A previous daemon that crashed leaves the socket file behind;
    // bind() would fail with EADDRINUSE. A *live* daemon is still
    // protected: we only unlink after a probe connect fails.
    if (::connect(s.fd(), reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) == 0) {
        error = "'" + path + "' already has a listening daemon";
        return Socket();
    }
    ::unlink(path.c_str());
    if (::bind(s.fd(), reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        error = errnoString("bind '" + path + "'");
        return Socket();
    }
    if (::listen(s.fd(), backlog) != 0) {
        error = errnoString("listen '" + path + "'");
        return Socket();
    }
    return s;
}

Socket
connectUnix(const std::string &path, std::string &error)
{
    sockaddr_un addr;
    if (!fillAddress(path, addr, error))
        return Socket();
    Socket s(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!s.valid()) {
        error = errnoString("socket");
        return Socket();
    }
    int rc;
    do {
        rc = ::connect(s.fd(), reinterpret_cast<sockaddr *>(&addr),
                       sizeof(addr));
    } while (rc != 0 && errno == EINTR);
    if (rc != 0) {
        error = errnoString("connect '" + path + "'");
        return Socket();
    }
    return s;
}

Socket
acceptConnection(const Socket &listener, std::string &error)
{
    int fd;
    do {
        fd = ::accept(listener.fd(), nullptr, nullptr);
    } while (fd < 0 && errno == EINTR);
    if (fd < 0) {
        error = errnoString("accept");
        return Socket();
    }
    return Socket(fd);
}

int
waitReadable(const Socket &listener, int millis)
{
    pollfd p{};
    p.fd = listener.fd();
    p.events = POLLIN;
    int rc = ::poll(&p, 1, millis);
    if (rc < 0)
        return errno == EINTR ? 0 : -1;
    return rc > 0 ? 1 : 0;
}

bool
setRecvTimeout(const Socket &socket, int millis)
{
    timeval tv{};
    tv.tv_sec = millis / 1000;
    tv.tv_usec = (millis % 1000) * 1000;
    return ::setsockopt(socket.fd(), SOL_SOCKET, SO_RCVTIMEO, &tv,
                        sizeof(tv)) == 0;
}

namespace {

bool
sendAll(const Socket &socket, const char *data, std::size_t size,
        std::string &error)
{
    std::size_t sent = 0;
    while (sent < size) {
        ssize_t n = ::send(socket.fd(), data + sent, size - sent,
                           MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            error = errnoString("send");
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

bool
recvAll(const Socket &socket, char *data, std::size_t size,
        std::string &error)
{
    std::size_t got = 0;
    while (got < size) {
        ssize_t n = ::recv(socket.fd(), data + got, size - got, 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            error = errnoString("recv");
            return false;
        }
        if (n == 0) {
            error = "peer closed the connection mid-frame";
            return false;
        }
        got += static_cast<std::size_t>(n);
    }
    return true;
}

} // namespace

bool
sendFrame(const Socket &socket, const std::string &payload,
          std::string &error)
{
    if (payload.size() > 0xffffffffu) {
        error = "frame too large";
        return false;
    }
    unsigned char header[4];
    std::size_t n = payload.size();
    header[0] = static_cast<unsigned char>((n >> 24) & 0xff);
    header[1] = static_cast<unsigned char>((n >> 16) & 0xff);
    header[2] = static_cast<unsigned char>((n >> 8) & 0xff);
    header[3] = static_cast<unsigned char>(n & 0xff);
    return sendAll(socket, reinterpret_cast<char *>(header), 4, error) &&
           sendAll(socket, payload.data(), payload.size(), error);
}

bool
recvFrame(const Socket &socket, std::string &payload, std::size_t maxBytes,
          std::string &error)
{
    unsigned char header[4];
    if (!recvAll(socket, reinterpret_cast<char *>(header), 4, error))
        return false;
    std::size_t n = (static_cast<std::size_t>(header[0]) << 24) |
                    (static_cast<std::size_t>(header[1]) << 16) |
                    (static_cast<std::size_t>(header[2]) << 8) |
                    static_cast<std::size_t>(header[3]);
    if (n > maxBytes) {
        error = "frame of " + std::to_string(n) +
                " bytes exceeds the limit of " + std::to_string(maxBytes);
        return false;
    }
    payload.resize(n);
    if (n == 0)
        return true;
    return recvAll(socket, payload.data(), n, error);
}

} // namespace pom::support
