#include "support/json.h"

#include <cstdio>
#include <cstdlib>

namespace pom::support {

namespace {

constexpr int kMaxDepth = 64;

class Parser
{
  public:
    Parser(const std::string &text, std::string &error)
        : text_(text), error_(error)
    {}

    bool
    parseDocument(JsonValue &out)
    {
        if (!parseValue(out, 0))
            return false;
        skipSpace();
        if (pos_ != text_.size())
            return fail("trailing garbage after the document");
        return true;
    }

  private:
    bool
    fail(const std::string &what)
    {
        if (error_.empty())
            error_ = what + " at offset " + std::to_string(pos_);
        return false;
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    bool
    consume(char c)
    {
        skipSpace();
        if (pos_ >= text_.size() || text_[pos_] != c)
            return fail(std::string("expected '") + c + "'");
        ++pos_;
        return true;
    }

    bool
    peek(char c)
    {
        skipSpace();
        return pos_ < text_.size() && text_[pos_] == c;
    }

    bool
    parseString(std::string &out)
    {
        out.clear();
        if (!consume('"'))
            return false;
        while (pos_ < text_.size()) {
            char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                break;
            char esc = text_[pos_++];
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    return fail("truncated \\u escape");
                unsigned v = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text_[pos_++];
                    v <<= 4;
                    if (h >= '0' && h <= '9')
                        v |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        v |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        v |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("bad \\u escape digit");
                }
                // Protocol strings only escape control codes; encode
                // the code point as-is for the Latin-1 subset.
                out += static_cast<char>(v & 0xff);
                break;
              }
              default:
                return fail("unknown escape");
            }
        }
        return fail("unterminated string");
    }

    bool
    parseNumber(JsonValue &out)
    {
        skipSpace();
        size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        bool fractional = false;
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (c >= '0' && c <= '9') {
                ++pos_;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '+' ||
                       c == '-') {
                fractional = true;
                ++pos_;
            } else {
                break;
            }
        }
        if (pos_ == start)
            return fail("expected a number");
        std::string token = text_.substr(start, pos_ - start);
        if (!fractional) {
            // Overflow-checked decimal int64.
            std::int64_t v = 0;
            bool negative = token[0] == '-';
            size_t i = negative ? 1 : 0;
            if (i == token.size())
                return fail("expected digits");
            bool overflow = false;
            for (; i < token.size(); ++i) {
                int d = token[i] - '0';
                if (v > (INT64_MAX - d) / 10) {
                    overflow = true;
                    break;
                }
                v = v * 10 + d;
            }
            if (!overflow) {
                out.kind = JsonValue::Kind::Int;
                out.integer = negative ? -v : v;
                return true;
            }
            // Fall through: a huge integer still parses, as a double.
        }
        char *end = nullptr;
        double d = std::strtod(token.c_str(), &end);
        if (end == nullptr || *end != '\0')
            return fail("malformed number '" + token + "'");
        out.kind = JsonValue::Kind::Double;
        out.number = d;
        return true;
    }

    bool
    parseValue(JsonValue &out, int depth)
    {
        if (depth > kMaxDepth)
            return fail("nesting deeper than " +
                        std::to_string(kMaxDepth) + " levels");
        skipSpace();
        if (pos_ >= text_.size())
            return fail("expected a value");
        char c = text_[pos_];
        if (c == '"') {
            out.kind = JsonValue::Kind::String;
            return parseString(out.text);
        }
        if (c == '{') {
            ++pos_;
            out.kind = JsonValue::Kind::Object;
            if (peek('}')) {
                ++pos_;
                return true;
            }
            while (true) {
                std::string key;
                skipSpace();
                if (!parseString(key) || !consume(':'))
                    return false;
                JsonValue member;
                if (!parseValue(member, depth + 1))
                    return false;
                out.members.emplace_back(std::move(key),
                                         std::move(member));
                if (peek(',')) {
                    ++pos_;
                    continue;
                }
                return consume('}');
            }
        }
        if (c == '[') {
            ++pos_;
            out.kind = JsonValue::Kind::Array;
            if (peek(']')) {
                ++pos_;
                return true;
            }
            while (true) {
                JsonValue item;
                if (!parseValue(item, depth + 1))
                    return false;
                out.items.push_back(std::move(item));
                if (peek(',')) {
                    ++pos_;
                    continue;
                }
                return consume(']');
            }
        }
        if (c == '-' || (c >= '0' && c <= '9'))
            return parseNumber(out);
        if (text_.compare(pos_, 4, "true") == 0) {
            pos_ += 4;
            out.kind = JsonValue::Kind::Bool;
            out.boolean = true;
            return true;
        }
        if (text_.compare(pos_, 5, "false") == 0) {
            pos_ += 5;
            out.kind = JsonValue::Kind::Bool;
            out.boolean = false;
            return true;
        }
        if (text_.compare(pos_, 4, "null") == 0) {
            pos_ += 4;
            out.kind = JsonValue::Kind::Null;
            return true;
        }
        return fail("unrecognized value");
    }

    const std::string &text_;
    std::string &error_;
    size_t pos_ = 0;
};

} // namespace

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &[name, value] : members) {
        if (name == key)
            return &value;
    }
    return nullptr;
}

std::string
JsonValue::asString(const std::string &fallback) const
{
    return kind == Kind::String ? text : fallback;
}

std::int64_t
JsonValue::asInt(std::int64_t fallback) const
{
    if (kind == Kind::Int)
        return integer;
    if (kind == Kind::Double)
        return static_cast<std::int64_t>(number);
    return fallback;
}

double
JsonValue::asDouble(double fallback) const
{
    if (kind == Kind::Double)
        return number;
    if (kind == Kind::Int)
        return static_cast<double>(integer);
    return fallback;
}

bool
JsonValue::asBool(bool fallback) const
{
    return kind == Kind::Bool ? boolean : fallback;
}

bool
parseJson(const std::string &text, JsonValue &out, std::string &error)
{
    out = JsonValue();
    error.clear();
    Parser p(text, error);
    return p.parseDocument(out);
}

std::string
jsonQuote(const std::string &text)
{
    std::string out;
    out.reserve(text.size() + 2);
    out += '"';
    for (char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
    return out;
}

} // namespace pom::support
