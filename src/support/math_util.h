/**
 * @file
 * Small integer math helpers used throughout the polyhedral library and
 * the HLS estimation model. All helpers use Euclidean (sign-safe)
 * semantics, which is what polyhedral floor-division reasoning requires.
 */

#ifndef POM_SUPPORT_MATH_UTIL_H
#define POM_SUPPORT_MATH_UTIL_H

#include <cstdint>
#include <cstdlib>

#include "support/diagnostics.h"

namespace pom::support {

/** Greatest common divisor; gcd(0, 0) == 0, result is non-negative. */
constexpr std::int64_t
gcd(std::int64_t a, std::int64_t b)
{
    if (a < 0) a = -a;
    if (b < 0) b = -b;
    while (b != 0) {
        std::int64_t t = a % b;
        a = b;
        b = t;
    }
    return a;
}

/** Least common multiple; lcm(0, x) == 0. */
constexpr std::int64_t
lcm(std::int64_t a, std::int64_t b)
{
    if (a == 0 || b == 0)
        return 0;
    return (a / gcd(a, b)) * b;
}

/** Floor division: floorDiv(-1, 8) == -1, floorDiv(7, 8) == 0. */
constexpr std::int64_t
floorDiv(std::int64_t a, std::int64_t b)
{
    POM_ASSERT(b != 0, "floorDiv by zero");
    std::int64_t q = a / b;
    if ((a % b != 0) && ((a < 0) != (b < 0)))
        --q;
    return q;
}

/** Ceiling division: ceilDiv(7, 8) == 1, ceilDiv(-7, 8) == 0. */
constexpr std::int64_t
ceilDiv(std::int64_t a, std::int64_t b)
{
    POM_ASSERT(b != 0, "ceilDiv by zero");
    return -floorDiv(-a, b);
}

/** Euclidean modulo: result always in [0, |b|). */
constexpr std::int64_t
euclidMod(std::int64_t a, std::int64_t b)
{
    POM_ASSERT(b != 0, "mod by zero");
    std::int64_t r = a % b;
    if (r < 0)
        r += (b < 0 ? -b : b);
    return r;
}

/** True iff v is a power of two (v > 0). */
constexpr bool
isPowerOfTwo(std::int64_t v)
{
    return v > 0 && (v & (v - 1)) == 0;
}

/** Smallest power of two >= v (v >= 1). */
constexpr std::int64_t
nextPowerOfTwo(std::int64_t v)
{
    POM_ASSERT(v >= 1, "nextPowerOfTwo needs v >= 1");
    std::int64_t p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

} // namespace pom::support

#endif // POM_SUPPORT_MATH_UTIL_H
