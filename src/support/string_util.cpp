#include "support/string_util.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>

namespace pom::support {

bool
parseInt64(const std::string &s, std::int64_t &out)
{
    if (s.empty())
        return false;
    errno = 0;
    char *end = nullptr;
    long long v = std::strtoll(s.c_str(), &end, 10);
    if (errno == ERANGE || end != s.c_str() + s.size())
        return false;
    out = static_cast<std::int64_t>(v);
    return true;
}

bool
parseDouble(const std::string &s, double &out)
{
    if (s.empty())
        return false;
    errno = 0;
    char *end = nullptr;
    double v = std::strtod(s.c_str(), &end);
    if (errno == ERANGE || end != s.c_str() + s.size() ||
        !std::isfinite(v))
        return false;
    out = v;
    return true;
}

std::string
join(const std::vector<std::string> &parts, const std::string &sep)
{
    std::ostringstream os;
    for (size_t i = 0; i < parts.size(); ++i) {
        if (i > 0)
            os << sep;
        os << parts[i];
    }
    return os.str();
}

std::string
repeat(const std::string &s, int n)
{
    std::string out;
    for (int i = 0; i < n; ++i)
        out += s;
    return out;
}

int
countLoc(const std::string &source)
{
    int loc = 0;
    std::istringstream is(source);
    std::string line;
    while (std::getline(is, line)) {
        size_t pos = line.find_first_not_of(" \t\r");
        if (pos == std::string::npos)
            continue;
        if (line.compare(pos, 2, "//") == 0)
            continue;
        ++loc;
    }
    return loc;
}

} // namespace pom::support
