/**
 * @file
 * Error reporting utilities shared by all POM libraries.
 *
 * Two failure modes, following the gem5 convention:
 *  - fatal():  user-caused errors (bad schedule, malformed DSL input).
 *    Throws pom::support::FatalError so callers and tests can observe it.
 *  - POM_ASSERT(): internal invariant violations (compiler bugs). Aborts.
 *
 * Plus leveled, redirectable diagnostics: library code never writes to
 * std::cerr directly — it calls diag() (or writes to diagStream()), and
 * the tools control the verbosity threshold (`pomc -q` / `-v`) and the
 * destination (tests capture it into a stringstream).
 */

#ifndef POM_SUPPORT_DIAGNOSTICS_H
#define POM_SUPPORT_DIAGNOSTICS_H

#include <cstdint>
#include <cstdlib>
#include <iosfwd>
#include <sstream>
#include <stdexcept>
#include <string>

namespace pom::support {

/** Exception thrown for user-caused, recoverable errors. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &message)
        : std::runtime_error(message)
    {}
};

/**
 * Report a user-caused error.
 *
 * @param message Human-readable description of what the user did wrong.
 * @throws FatalError always.
 */
[[noreturn]] void fatal(const std::string &message);

/** Internal: called by POM_ASSERT on failure. Prints and aborts. */
[[noreturn]] void
assertFailed(const char *cond, const char *file, int line,
             const std::string &message);

// ----- leveled diagnostics ----------------------------------------------

/** Severity/verbosity levels, most severe first. */
enum class DiagLevel
{
    Error = 0,   ///< always shown (unless the sink is redirected)
    Warning = 1, ///< shown by default
    Info = 2,    ///< shown by default
    Debug = 3,   ///< shown only with increased verbosity (-v)
};

/**
 * Messages with a level above the threshold are dropped. Default is
 * Info; `--quiet` lowers it to Error, `-v` raises it to Debug.
 */
void setDiagLevel(DiagLevel level);
DiagLevel diagLevel();

/** Redirect diagnostics; null restores the default (std::cerr). */
void setDiagStream(std::ostream *os);

/** The active diagnostic stream (std::cerr unless redirected). */
std::ostream &diagStream();

/**
 * Emit one diagnostic line ("pom <level>: <message>") to the diagnostic
 * stream, subject to the verbosity threshold. When the calling thread
 * carries a request ID (see setCurrentRequestId) the line is prefixed
 * "pom <level> [req N]: <message>" so interleaved daemon logs are
 * attributable.
 */
void diag(DiagLevel level, const std::string &message);

// ----- request correlation ----------------------------------------------

/**
 * Tag the calling thread with the daemon request it is serving; spans
 * and diagnostics emitted from this thread carry the ID until it is
 * cleared. 0 (the default) means "not inside a request" and removes
 * the tag. Thread-local, so concurrent executors don't interleave.
 */
void setCurrentRequestId(std::int64_t id);

/** The calling thread's request ID; 0 outside a request. */
std::int64_t currentRequestId();

/** RAII request tag: sets on construction, restores on destruction. */
class RequestIdScope
{
  public:
    explicit RequestIdScope(std::int64_t id)
        : previous_(currentRequestId())
    {
        setCurrentRequestId(id);
    }
    ~RequestIdScope() { setCurrentRequestId(previous_); }
    RequestIdScope(const RequestIdScope &) = delete;
    RequestIdScope &operator=(const RequestIdScope &) = delete;

  private:
    std::int64_t previous_;
};

/** Build a message from streamable parts: fmtMsg("x=", x, " y=", y). */
template <typename... Args>
std::string
fmtMsg(const Args &...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace pom::support

/**
 * Assert an internal invariant. Active in all build types: the compiler
 * pipeline must never silently produce wrong IR.
 */
#define POM_ASSERT(cond, ...)                                               \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::pom::support::assertFailed(                                   \
                #cond, __FILE__, __LINE__,                                  \
                ::pom::support::fmtMsg(__VA_ARGS__));                       \
        }                                                                   \
    } while (0)

#endif // POM_SUPPORT_DIAGNOSTICS_H
