/**
 * @file
 * Error reporting utilities shared by all POM libraries.
 *
 * Two failure modes, following the gem5 convention:
 *  - fatal():  user-caused errors (bad schedule, malformed DSL input).
 *    Throws pom::support::FatalError so callers and tests can observe it.
 *  - POM_ASSERT(): internal invariant violations (compiler bugs). Aborts.
 */

#ifndef POM_SUPPORT_DIAGNOSTICS_H
#define POM_SUPPORT_DIAGNOSTICS_H

#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace pom::support {

/** Exception thrown for user-caused, recoverable errors. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &message)
        : std::runtime_error(message)
    {}
};

/**
 * Report a user-caused error.
 *
 * @param message Human-readable description of what the user did wrong.
 * @throws FatalError always.
 */
[[noreturn]] void fatal(const std::string &message);

/** Internal: called by POM_ASSERT on failure. Prints and aborts. */
[[noreturn]] void
assertFailed(const char *cond, const char *file, int line,
             const std::string &message);

/** Build a message from streamable parts: fmtMsg("x=", x, " y=", y). */
template <typename... Args>
std::string
fmtMsg(const Args &...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace pom::support

/**
 * Assert an internal invariant. Active in all build types: the compiler
 * pipeline must never silently produce wrong IR.
 */
#define POM_ASSERT(cond, ...)                                               \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::pom::support::assertFailed(                                   \
                #cond, __FILE__, __LINE__,                                  \
                ::pom::support::fmtMsg(__VA_ARGS__));                       \
        }                                                                   \
    } while (0)

#endif // POM_SUPPORT_DIAGNOSTICS_H
