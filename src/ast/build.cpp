#include "ast/build.h"

#include <algorithm>
#include <numeric>

#include "support/diagnostics.h"

namespace pom::ast {

using pom::poly::Constraint;
using pom::poly::DimBounds;
using pom::poly::IntegerSet;
using pom::poly::LinearExpr;

ScheduledStmt
ScheduledStmt::identity(std::string name, poly::IntegerSet domain)
{
    ScheduledStmt s;
    s.name = std::move(name);
    s.betas.assign(domain.numDims() + 1, 0);
    s.origMap = poly::AffineMap::identity(domain.dimNames());
    s.hwPerDim.assign(domain.numDims(), HwAnnotation{});
    s.domain = std::move(domain);
    return s;
}

namespace {

/** Recursive AST builder state. */
class Builder
{
  public:
    explicit Builder(const std::vector<ScheduledStmt> &stmts)
        : stmts_(stmts)
    {}

    AstNodePtr
    run()
    {
        std::vector<size_t> all(stmts_.size());
        std::iota(all.begin(), all.end(), 0);
        IntegerSet ctx(std::vector<std::string>{}); // 0-dim universe
        auto root = makeNode(AstNode::Kind::Block);
        buildLevel(all, 0, ctx, *root);
        if (root->children.size() == 1)
            return std::move(root->children.front());
        return root;
    }

  private:
    /**
     * Emit AST nodes for @p group (statement indices), all of which agree
     * on the loop structure above @p level, into @p parent. @p ctx is the
     * set of constraints enforced by the enclosing loops (over the outer
     * AST iterators).
     */
    void
    buildLevel(const std::vector<size_t> &group, size_t level,
               const IntegerSet &ctx, AstNode &parent)
    {
        // Order by the static (beta) coordinate at this level.
        std::vector<size_t> order = group;
        std::stable_sort(order.begin(), order.end(),
            [&](size_t a, size_t b) {
                return stmts_[a].betas.at(level) < stmts_[b].betas.at(level);
            });

        size_t pos = 0;
        while (pos < order.size()) {
            std::int64_t beta = stmts_[order[pos]].betas.at(level);
            std::vector<size_t> sub;
            while (pos < order.size() &&
                   stmts_[order[pos]].betas.at(level) == beta) {
                sub.push_back(order[pos]);
                ++pos;
            }
            emitGroup(sub, level, ctx, parent);
        }
    }

    /** Emit one beta-group: either user leaves or a shared for-loop. */
    void
    emitGroup(const std::vector<size_t> &sub, size_t level,
              const IntegerSet &ctx, AstNode &parent)
    {
        bool any_leaf = false, any_deep = false;
        for (size_t idx : sub) {
            if (stmts_[idx].domain.numDims() == level)
                any_leaf = true;
            else
                any_deep = true;
        }
        if (any_leaf && any_deep) {
            pom::support::fatal(
                "schedule groups a statement instance with a loop at "
                "level " + std::to_string(level));
        }
        if (any_leaf) {
            for (size_t idx : sub)
                emitUser(idx, ctx, parent);
            return;
        }

        // A shared loop. All members must agree on the bounds here.
        const ScheduledStmt &leader = stmts_[sub.front()];
        DimBounds bounds = leader.domain.boundsForCodegen(level);
        if (bounds.lower.empty() || bounds.upper.empty()) {
            pom::support::fatal("statement '" + leader.name +
                                "' has an unbounded loop dimension " +
                                std::to_string(level));
        }
        for (size_t idx : sub) {
            if (idx == sub.front())
                continue;
            DimBounds other = stmts_[idx].domain.boundsForCodegen(level);
            if (!(other == bounds)) {
                pom::support::fatal(
                    "cannot fuse statements '" + leader.name + "' and '" +
                    stmts_[idx].name + "': loop bounds differ at level " +
                    std::to_string(level));
            }
            if (!stmts_[idx].hwPerDim.at(level).sameScheduleAs(
                    leader.hwPerDim.at(level))) {
                pom::support::fatal(
                    "fused statements disagree on hardware annotation at "
                    "level " + std::to_string(level));
            }
        }

        // Prune bounds that the enclosing loops already guarantee (e.g.
        // the residual bound of an exactly-dividing tile), so the
        // emitted code avoids pointless min()/max() forms.
        pruneBounds(bounds, ctx, level);

        auto loop = makeNode(AstNode::Kind::For);
        loop->iterName = leader.domain.dimName(level);
        loop->bounds = bounds;
        loop->hw = leader.hwPerDim.at(level);
        // Union the dependence-pragma hints of all fused members.
        for (size_t idx : sub) {
            for (const auto &a :
                 stmts_[idx].hwPerDim.at(level).independentArrays) {
                auto &list = loop->hw.independentArrays;
                if (std::find(list.begin(), list.end(), a) == list.end())
                    list.push_back(a);
            }
        }
        std::sort(loop->hw.independentArrays.begin(),
                  loop->hw.independentArrays.end());

        // Extend the context with this loop's bound constraints.
        IntegerSet inner = ctx.withDimsInserted(level, {loop->iterName});
        for (const auto &b : bounds.lower) {
            // divisor * d_level - expr >= 0
            LinearExpr c =
                LinearExpr::dim(level + 1, level).scaled(b.divisor) - b.expr;
            inner.addInequality(c);
        }
        for (const auto &b : bounds.upper) {
            LinearExpr c =
                b.expr - LinearExpr::dim(level + 1, level).scaled(b.divisor);
            inner.addInequality(c);
        }

        buildLevel(sub, level + 1, inner, *loop);
        parent.children.push_back(std::move(loop));
    }

    /**
     * Remove loop bounds implied by the context plus the other bounds.
     * Bound constraints: lower => divisor*d_level - expr >= 0, upper =>
     * expr - divisor*d_level >= 0, over level+1 dims.
     */
    static void
    pruneBounds(poly::DimBounds &bounds, const IntegerSet &ctx,
                size_t level)
    {
        auto asConstraint = [&](const poly::Bound &b, bool lower) {
            LinearExpr d =
                LinearExpr::dim(level + 1, level).scaled(b.divisor);
            return Constraint{lower ? d - b.expr : b.expr - d, false};
        };
        auto prune = [&](std::vector<poly::Bound> &list, bool lower) {
            if (list.size() < 2)
                return;
            for (size_t c = 0; c < list.size() && list.size() > 1;) {
                IntegerSet rest = ctx.withDimsInserted(level, {"__b"});
                for (size_t o = 0; o < list.size(); ++o) {
                    if (o == c)
                        continue;
                    rest.addInequality(
                        asConstraint(list[o], lower).expr);
                }
                for (const auto &other :
                     lower ? bounds.upper : bounds.lower) {
                    rest.addInequality(
                        asConstraint(other, !lower).expr);
                }
                if (rest.implies(asConstraint(list[c], lower)))
                    list.erase(list.begin() + c);
                else
                    ++c;
            }
        };
        prune(bounds.lower, true);
        prune(bounds.upper, false);
    }

    /** Emit a user node, guarded by any non-implied domain constraints. */
    void
    emitUser(size_t idx, const IntegerSet &ctx, AstNode &parent)
    {
        const ScheduledStmt &stmt = stmts_[idx];
        POM_ASSERT(ctx.numDims() == stmt.domain.numDims(),
                   "context/domain depth mismatch for ", stmt.name);

        std::vector<Constraint> guards;
        for (const auto &c : stmt.domain.constraints()) {
            if (!ctx.implies(c))
                guards.push_back(c);
        }

        auto user = makeNode(AstNode::Kind::User);
        user->stmtName = stmt.name;
        user->iterMap = stmt.origMap;

        if (guards.empty()) {
            parent.children.push_back(std::move(user));
            return;
        }
        auto guard = makeNode(AstNode::Kind::If);
        guard->conditions = std::move(guards);
        guard->children.push_back(std::move(user));
        parent.children.push_back(std::move(guard));
    }

    const std::vector<ScheduledStmt> &stmts_;
};

void
validate(const ScheduledStmt &s)
{
    size_t n = s.domain.numDims();
    if (s.betas.size() != n + 1) {
        pom::support::fatal("statement '" + s.name + "': beta vector size " +
                            std::to_string(s.betas.size()) +
                            " != numDims + 1");
    }
    if (s.origMap.numDomainDims() != n) {
        pom::support::fatal("statement '" + s.name +
                            "': origin map arity mismatch");
    }
    if (s.hwPerDim.size() != n) {
        pom::support::fatal("statement '" + s.name +
                            "': hardware annotation count mismatch");
    }
}

} // namespace

AstNodePtr
buildAst(const std::vector<ScheduledStmt> &stmts)
{
    if (stmts.empty())
        pom::support::fatal("buildAst called with no statements");
    for (const auto &s : stmts)
        validate(s);
    Builder builder(stmts);
    return builder.run();
}

} // namespace pom::ast
