#include "ast/ast.h"

#include <sstream>

#include "support/diagnostics.h"
#include "support/string_util.h"

namespace pom::ast {

AstNodePtr
makeNode(AstNode::Kind kind)
{
    return std::make_unique<AstNode>(kind);
}

namespace {

std::vector<std::string>
prefixNames(size_t n)
{
    std::vector<std::string> names;
    names.reserve(n);
    for (size_t i = 0; i < n; ++i)
        names.push_back("c" + std::to_string(i));
    return names;
}

std::string
boundStr(const poly::Bound &b, bool is_lower)
{
    std::string expr = b.expr.str(prefixNames(b.expr.numDims()));
    if (b.divisor == 1)
        return expr;
    return std::string(is_lower ? "ceil" : "floor") + "((" + expr + ")/" +
           std::to_string(b.divisor) + ")";
}

void
printNode(const AstNode &node, int indent, std::ostringstream &os)
{
    std::string pad = pom::support::repeat("  ", indent);
    switch (node.kind()) {
      case AstNode::Kind::For: {
        os << pad << "for " << node.iterName << " = ";
        os << pom::support::joinMapped(node.bounds.lower, ", ",
            [](const poly::Bound &b) { return boundStr(b, true); });
        if (node.bounds.lower.size() > 1)
            os << " (max)";
        os << " .. ";
        os << pom::support::joinMapped(node.bounds.upper, ", ",
            [](const poly::Bound &b) { return boundStr(b, false); });
        if (node.bounds.upper.size() > 1)
            os << " (min)";
        if (node.hw.pipelineII)
            os << " [pipeline II=" << *node.hw.pipelineII << "]";
        if (node.hw.unrollFactor != 1) {
            if (node.hw.unrollFactor == 0)
                os << " [unroll full]";
            else
                os << " [unroll " << node.hw.unrollFactor << "]";
        }
        os << "\n";
        for (const auto &c : node.children)
            printNode(*c, indent + 1, os);
        break;
      }
      case AstNode::Kind::If: {
        os << pad << "if (";
        for (size_t i = 0; i < node.conditions.size(); ++i) {
            if (i)
                os << " && ";
            const auto &c = node.conditions[i];
            os << c.expr.str(prefixNames(c.expr.numDims()))
               << (c.isEq ? " == 0" : " >= 0");
        }
        os << ")\n";
        for (const auto &c : node.children)
            printNode(*c, indent + 1, os);
        break;
      }
      case AstNode::Kind::Block: {
        for (const auto &c : node.children)
            printNode(*c, indent, os);
        break;
      }
      case AstNode::Kind::User: {
        os << pad << node.stmtName << "(" << node.iterMap.str() << ")\n";
        break;
      }
    }
}

} // namespace

std::string
AstNode::str(int indent) const
{
    std::ostringstream os;
    printNode(*this, indent, os);
    return os.str();
}

} // namespace pom::ast
