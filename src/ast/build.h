/**
 * @file
 * Polyhedral AST construction (the isl `ast_build` equivalent, paper
 * §V.B): given each statement's transformed iteration domain, its static
 * ordering constants (the beta vector of a 2d+1 schedule) and a map back
 * to the original iterators, produce the for/if/block/user tree.
 *
 * Schedules here are in the classic 2d+1 form
 *   [beta_0, d_0, beta_1, d_1, ..., d_{n-1}, beta_n]
 * where the dynamic dimensions are the statement's (already transformed)
 * domain dimensions in nesting order and the betas interleave static
 * statement ordering. Loop transformations change the domain and the
 * origin map; `after`/fusion change the betas.
 */

#ifndef POM_AST_BUILD_H
#define POM_AST_BUILD_H

#include <cstdint>
#include <string>
#include <vector>

#include "ast/ast.h"
#include "poly/affine_map.h"
#include "poly/integer_set.h"

namespace pom::ast {

/** One statement ready for AST generation. */
struct ScheduledStmt
{
    std::string name;

    /** Transformed iteration domain; dims are loop dims in nest order. */
    poly::IntegerSet domain;

    /** Static ordering constants; size == domain.numDims() + 1. */
    std::vector<std::int64_t> betas;

    /**
     * Map (transformed dims) -> (original iterator tuple), used to
     * rewrite the statement body after transformation. For an untouched
     * statement this is the identity.
     */
    poly::AffineMap origMap;

    /** Per-loop-dimension hardware annotations; size == numDims(). */
    std::vector<HwAnnotation> hwPerDim;

    /** Identity-scheduled statement over @p domain. */
    static ScheduledStmt identity(std::string name, poly::IntegerSet domain);
};

/**
 * Build the polyhedral AST for a set of statements.
 *
 * Statements whose beta prefixes coincide share loops (fusion); their
 * bounds at every shared level must agree (checked; fatal otherwise,
 * mirroring the affine-dialect fusion restriction discussed in §V.B).
 * Constraints of a statement's domain that are not implied by the
 * enclosing loop bounds become if-node guards around its user node.
 *
 * @throws pom::support::FatalError on malformed schedules.
 */
AstNodePtr buildAst(const std::vector<ScheduledStmt> &stmts);

} // namespace pom::ast

#endif // POM_AST_BUILD_H
