/**
 * @file
 * The polyhedral AST (paper §V.B): the tree produced from a union of
 * iteration domains and schedules, with four node kinds — for, if, block
 * and user — mirroring isl's ast_build output. Hardware-optimization
 * annotations (pipeline / unroll) ride on for-nodes so the next IR layer
 * can turn them into HLS pragma attributes.
 */

#ifndef POM_AST_AST_H
#define POM_AST_AST_H

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "poly/affine_map.h"
#include "poly/integer_set.h"

namespace pom::ast {

/** Hardware directives attached to one loop dimension. */
struct HwAnnotation
{
    /** Target initiation interval; nullopt = not pipelined. */
    std::optional<int> pipelineII;

    /** Unroll factor; 1 = no unrolling, 0 = full unroll. */
    std::int64_t unrollFactor = 1;

    /**
     * Arrays proven free of loop-carried dependences within this
     * (pipelined) loop; emitted as `#pragma HLS dependence variable=X
     * inter false` hints (paper SectionV.A: dependence identification
     * "can serve as a hint to users, directing them to set the HLS
     * DEPENDENCE pragma").
     */
    std::vector<std::string> independentArrays;

    /** Scheduling equality (II + unroll); hints may differ per member. */
    bool
    sameScheduleAs(const HwAnnotation &o) const
    {
        return pipelineII == o.pipelineII && unrollFactor == o.unrollFactor;
    }

    bool operator==(const HwAnnotation &) const = default;
};

class AstNode;
using AstNodePtr = std::unique_ptr<AstNode>;

/** One node of the polyhedral AST. */
class AstNode
{
  public:
    enum class Kind { For, If, Block, User };

    explicit AstNode(Kind kind) : kind_(kind) {}

    Kind kind() const { return kind_; }

  private:
    Kind kind_;

  public:

    // --- For nodes -----------------------------------------------------
    /** Loop iterator name (unique within the nest path). */
    std::string iterName;

    /**
     * Loop bounds: iter >= max over lower of ceilDiv(expr, divisor) and
     * iter <= min over upper of floorDiv(expr, divisor). Bound
     * expressions are over the enclosing AST iterators (outer loops
     * first); their dimensionality equals this loop's depth + 1 with a
     * zero coefficient at the loop's own position.
     */
    poly::DimBounds bounds;

    /** Hardware annotation for this loop. */
    HwAnnotation hw;

    // --- If nodes ------------------------------------------------------
    /** Guard constraints over the enclosing AST iterators. */
    std::vector<poly::Constraint> conditions;

    // --- User nodes ----------------------------------------------------
    /** Name of the statement (compute) this instance belongs to. */
    std::string stmtName;

    /**
     * Map from the enclosing AST iterators to the statement's original
     * iterator tuple, used to rewrite the statement body.
     */
    poly::AffineMap iterMap;

    // --- For / If / Block ----------------------------------------------
    std::vector<AstNodePtr> children;

    /** Pretty-print the subtree (for debugging and golden tests). */
    std::string str(int indent = 0) const;
};

/** Create a node of the given kind. */
AstNodePtr makeNode(AstNode::Kind kind);

} // namespace pom::ast

#endif // POM_AST_AST_H
