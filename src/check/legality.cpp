#include "check/legality.h"

#include <sstream>

#include "poly/integer_set.h"
#include "support/diagnostics.h"

namespace pom::check {

using poly::Access;
using poly::IntegerSet;
using poly::LinearExpr;

namespace {

/** Render a witness instance pair (x, y) from a 2n-dim point. */
std::string
witnessStr(const IntegerSet &domain,
           const std::vector<std::int64_t> &point)
{
    size_t n = domain.numDims();
    std::ostringstream os;
    os << "(";
    for (size_t i = 0; i < n; ++i)
        os << (i ? ", " : "") << domain.dimName(i) << "=" << point[i];
    os << ") runs after (";
    for (size_t i = 0; i < n; ++i)
        os << (i ? ", " : "") << domain.dimName(i) << "=" << point[n + i];
    os << ")";
    return os.str();
}

} // namespace

std::optional<std::string>
findDependenceViolation(const transform::PolyStmt &stmt)
{
    const IntegerSet &domain = stmt.sched.domain;
    size_t n = domain.numDims();
    if (n == 0)
        return std::nullopt;
    size_t m = stmt.sched.origMap.numResults();

    // Pair space: source instance x (dims 0..n-1), sink instance y
    // (dims n..2n-1), both ranging over the transformed domain.
    std::vector<std::string> y_names;
    y_names.reserve(n);
    for (size_t i = 0; i < n; ++i)
        y_names.push_back("y_" + domain.dimName(i));
    IntegerSet base = domain.withDimsInserted(n, y_names);
    {
        IntegerSet tgt = domain.withDimsInserted(0, domain.dimNames());
        for (size_t i = 0; i < n; ++i)
            tgt = tgt.withDimRenamed(n + i, y_names[i]);
        base = base.intersect(tgt);
    }

    // Original-order coordinates of both instances.
    std::vector<LinearExpr> orig_x, orig_y;
    orig_x.reserve(m);
    orig_y.reserve(m);
    for (size_t k = 0; k < m; ++k) {
        orig_x.push_back(
            stmt.sched.origMap.result(k).withDimsInserted(n, n));
        orig_y.push_back(
            stmt.sched.origMap.result(k).withDimsInserted(0, n));
    }

    auto accesses = stmt.transformedAccesses();
    for (size_t a = 0; a < accesses.size(); ++a) {
        for (size_t b = 0; b < accesses.size(); ++b) {
            const Access &src = accesses[a];
            const Access &dst = accesses[b];
            if (src.array != dst.array)
                continue;
            if (!src.isWrite && !dst.isWrite)
                continue;

            // Conflict: both instances touch the same array element.
            IntegerSet pair = base;
            for (size_t j = 0; j < src.map.numResults(); ++j) {
                LinearExpr sx = src.map.result(j).withDimsInserted(n, n);
                LinearExpr sy = dst.map.result(j).withDimsInserted(0, n);
                pair.addEquality(sx - sy);
            }
            if (pair.isEmpty())
                continue;

            // x's instance originally ran strictly before y's: expand
            // origMap(x) <lex origMap(y) by carrying level.
            for (size_t l = 0; l < m; ++l) {
                IntegerSet before = pair;
                for (size_t k = 0; k < l; ++k)
                    before.addEquality(orig_x[k] - orig_y[k]);
                LinearExpr strict = orig_y[l] - orig_x[l];
                strict.setConstantTerm(strict.constantTerm() - 1);
                before.addInequality(strict);
                if (before.isEmpty())
                    continue;

                // Violation: y now runs strictly before x.
                for (size_t k2 = 0; k2 < n; ++k2) {
                    IntegerSet bad = before;
                    for (size_t i = 0; i < k2; ++i) {
                        bad.addEquality(
                            LinearExpr::dim(2 * n, i) -
                            LinearExpr::dim(2 * n, n + i));
                    }
                    LinearExpr rev = LinearExpr::dim(2 * n, k2) -
                                     LinearExpr::dim(2 * n, n + k2);
                    rev.setConstantTerm(-1);
                    bad.addInequality(rev);
                    if (bad.isEmpty())
                        continue;

                    std::ostringstream os;
                    os << "dependence on '" << src.array
                       << "' violated at original level " << l << ": ";
                    if (auto w = bad.lexMin())
                        os << witnessStr(domain, *w);
                    else
                        os << "(no rational witness)";
                    return os.str();
                }
            }
        }
    }
    return std::nullopt;
}

bool
schedulePreservesDependences(const transform::PolyStmt &stmt)
{
    return !findDependenceViolation(stmt).has_value();
}

} // namespace pom::check
