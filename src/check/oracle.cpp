#include "check/oracle.h"

#include <cmath>
#include <sstream>

#include "obs/obs.h"
#include "support/diagnostics.h"
#include "support/string_util.h"

namespace pom::check {

namespace {

/** Unflatten a row-major offset into per-dimension indices. */
std::vector<std::int64_t>
unflatten(size_t flat, const std::vector<std::int64_t> &shape)
{
    std::vector<std::int64_t> idx(shape.size(), 0);
    for (size_t d = shape.size(); d-- > 0;) {
        idx[d] = static_cast<std::int64_t>(flat) % shape[d];
        flat /= static_cast<size_t>(shape[d]);
    }
    return idx;
}

/** Compact rendering of one directive for failure reports. */
std::string
directiveStr(const dsl::Compute &c, const dsl::Directive &d)
{
    using K = dsl::Directive::Kind;
    std::ostringstream os;
    os << c.name() << ".";
    auto factors = [&] {
        return support::joinMapped(d.factors, ", ",
            [](std::int64_t f) { return std::to_string(f); });
    };
    switch (d.kind) {
      case K::Interchange:
        os << "interchange(" << d.vars[0] << ", " << d.vars[1] << ")";
        break;
      case K::Split:
        os << "split(" << d.vars[0] << ", " << factors() << ", "
           << d.newVars[0] << ", " << d.newVars[1] << ")";
        break;
      case K::Tile:
        os << "tile(" << d.vars[0] << ", " << d.vars[1] << ", "
           << factors() << ", " << support::join(d.newVars, ", ") << ")";
        break;
      case K::Skew:
        os << "skew(" << d.vars[0] << ", " << d.vars[1] << ", "
           << factors() << ", " << d.newVars[0] << ", " << d.newVars[1]
           << ")";
        break;
      case K::After:
        os << "after(" << d.other->name()
           << (d.vars.empty() ? "" : ", " + d.vars[0]) << ")";
        break;
      case K::Fuse:
        os << "fuse(" << d.other->name() << ")";
        break;
      case K::Pipeline:
        os << "pipeline(" << d.vars[0] << ", " << factors() << ")";
        break;
      case K::Unroll:
        os << "unroll(" << d.vars[0] << ", " << factors() << ")";
        break;
    }
    return os.str();
}

/** The primitive sequence recorded on a function, one per line. */
std::string
scheduleStr(const dsl::Function &func)
{
    std::ostringstream os;
    for (const dsl::Compute *c : func.computes()) {
        for (const auto &d : c->directives())
            os << "  " << directiveStr(*c, d) << "\n";
    }
    for (const dsl::Placeholder *p : func.placeholders()) {
        if (p->partitionFactors().empty())
            continue;
        os << "  " << p->name() << ".partition({"
           << support::joinMapped(p->partitionFactors(), ", ",
                  [](std::int64_t f) { return std::to_string(f); })
           << "}, \"" << p->partitionKind() << "\")\n";
    }
    return os.str();
}

} // namespace

lower::LoweredFunction
lowerReference(const dsl::Function &func)
{
    auto stmts = lower::extractStmts(func);
    lower::applyDirectives(stmts, /*ordering_only=*/true);
    return lower::lowerStmts(func, std::move(stmts));
}

ir::BufferMap
runLowered(const lower::LoweredFunction &design, unsigned seed,
           std::uint64_t *work)
{
    obs::Span span("check.interpret", "check");
    ir::BufferMap buffers = ir::makeBuffersFor(*design.func, seed);
    std::uint64_t w = ir::runFunction(*design.func, buffers);
    span.arg("steps", static_cast<std::int64_t>(w));
    if (work)
        *work = w;
    return buffers;
}

OracleResult
checkLowered(const dsl::Function &func,
             const lower::LoweredFunction &design,
             const OracleOptions &options)
{
    obs::Span span("check.oracle", "check");
    OracleResult result;
    auto ref_design = lowerReference(func);
    ir::BufferMap ref =
        runLowered(ref_design, options.seed, &result.refWork);
    ir::BufferMap test = runLowered(design, options.seed, &result.testWork);
    span.arg("seed", static_cast<std::int64_t>(options.seed));

    for (const auto &[name, ref_buf] : ref) {
        auto it = test.find(name);
        if (it == test.end()) {
            result.equivalent = false;
            result.message = "test design has no buffer '" + name + "'";
            return result;
        }
        const auto &a = ref_buf->data();
        const auto &b = it->second->data();
        if (a.size() != b.size()) {
            result.equivalent = false;
            result.message = "buffer '" + name + "' changed size";
            return result;
        }
        for (size_t i = 0; i < a.size(); ++i) {
            double tol = options.atol +
                         options.rtol *
                             std::max(std::abs(a[i]), std::abs(b[i]));
            if (std::abs(a[i] - b[i]) <= tol)
                continue;
            result.equivalent = false;
            Divergence div;
            div.array = name;
            div.index = unflatten(i, ref_buf->type().shape());
            div.expected = a[i];
            div.actual = b[i];
            std::ostringstream os;
            os << "schedule is not semantics-preserving: " << name << "[";
            for (size_t d = 0; d < div.index.size(); ++d)
                os << (d ? ", " : "") << div.index[d];
            os << "] expected " << div.expected << ", got " << div.actual
               << " (seed " << options.seed << ")\n"
               << "offending primitive sequence:\n"
               << scheduleStr(func);
            result.message = os.str();
            result.divergence = std::move(div);
            return result;
        }
    }
    return result;
}

OracleResult
checkFunction(const dsl::Function &func, const OracleOptions &options)
{
    auto design = lower::lower(func);
    return checkLowered(func, design, options);
}

} // namespace pom::check
