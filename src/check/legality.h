/**
 * @file
 * Dependence-preservation check for transformed polyhedral statements.
 *
 * A PolyStmt carries both orders of its instances: the new execution
 * order is the lexicographic order of the transformed domain, and the
 * original order is the lexicographic order of the instance images under
 * `sched.origMap`. A schedule is legal iff no pair of conflicting
 * instances (same array element, at least one write) executes in the
 * opposite relative order from the original program.
 *
 * The check builds, for every conflicting access pair, the violation
 * polytope over (x, y) in D x D:
 *
 *   origMap(x) <lex origMap(y)   (x's instance ran first originally)
 *   acc_a(orig(x)) = acc_b(orig(y))   (they touch the same element)
 *   y <lex x                      (but y runs first after the transform)
 *
 * and reports a violation iff any such polytope contains an integer
 * point. Both lexicographic orders are expanded level by level, so the
 * test is a bounded family of IntegerSet emptiness queries.
 *
 * The check is deliberately strict: reordering a floating-point
 * reduction (e.g. interchanging the two kernel loops of a convolution)
 * is flagged even though the result only changes by rounding. The
 * schedule fuzzer relies on this strictness so that every generated
 * sequence is exactly semantics-preserving.
 */

#ifndef POM_CHECK_LEGALITY_H
#define POM_CHECK_LEGALITY_H

#include <optional>
#include <string>

#include "transform/poly_stmt.h"

namespace pom::check {

/**
 * First dependence the transformed schedule of @p stmt violates, or
 * nullopt when the schedule preserves every (self-)dependence. The
 * returned string names the array and a witness instance pair.
 */
std::optional<std::string>
findDependenceViolation(const transform::PolyStmt &stmt);

/** True iff the transformed schedule preserves every dependence. */
bool schedulePreservesDependences(const transform::PolyStmt &stmt);

} // namespace pom::check

#endif // POM_CHECK_LEGALITY_H
