/**
 * @file
 * Differential equivalence oracle for the transform pipeline.
 *
 * The interpreter contract (ir/interpreter.h) is that every loop
 * transformation and hardware annotation leaves the interpreted result
 * unchanged. The oracle enforces it: a DSL function is lowered twice --
 * once with only the statement-ordering primitives applied (after/fuse
 * are part of the program's semantics), once with the full schedule
 * under test -- and both designs are interpreted over identically
 * pattern-filled buffers. The first divergent element is reported with
 * its array, multi-dimensional index and both values.
 *
 * Comparison uses a small relative/absolute tolerance: legal transforms
 * may reorder floating-point reductions (the interpreter evaluates in
 * double), so exact equality is too strict, while genuine miscompiles
 * produce errors many orders of magnitude above the tolerance.
 */

#ifndef POM_CHECK_ORACLE_H
#define POM_CHECK_ORACLE_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dsl/dsl.h"
#include "ir/interpreter.h"
#include "lower/lower.h"

namespace pom::check {

/** Oracle configuration. */
struct OracleOptions
{
    /** Seed for the deterministic buffer fill pattern. */
    unsigned seed = 1;

    /** Relative tolerance (reduction reordering drifts by rounding). */
    double rtol = 1e-6;

    /** Absolute tolerance for values near zero. */
    double atol = 1e-9;
};

/** First divergent element between reference and test run. */
struct Divergence
{
    std::string array;
    std::vector<std::int64_t> index;
    double expected = 0.0;
    double actual = 0.0;
};

/** Outcome of one oracle check. */
struct OracleResult
{
    bool equivalent = true;

    /** Set when !equivalent and the runs disagreed on a value. */
    std::optional<Divergence> divergence;

    /** Dynamic work counts of the two runs (diagnostic). */
    std::uint64_t refWork = 0;
    std::uint64_t testWork = 0;

    /** Human-readable failure report (empty when equivalent). */
    std::string message;
};

/**
 * Lower @p func with ordering primitives only: the semantic reference
 * every schedule of the function must reproduce.
 */
lower::LoweredFunction lowerReference(const dsl::Function &func);

/**
 * Interpret a lowered design over pattern-filled buffers and return the
 * final buffer state. @p work receives the dynamic op count if non-null.
 */
ir::BufferMap runLowered(const lower::LoweredFunction &design,
                         unsigned seed, std::uint64_t *work = nullptr);

/**
 * Check a fully-lowered design (e.g. a DSE design point) against the
 * reference semantics of @p func.
 */
OracleResult checkLowered(const dsl::Function &func,
                          const lower::LoweredFunction &design,
                          const OracleOptions &options = {});

/**
 * Check the schedule currently recorded on @p func: lower it with all
 * directives applied and compare against the reference lowering.
 */
OracleResult checkFunction(const dsl::Function &func,
                           const OracleOptions &options = {});

} // namespace pom::check

#endif // POM_CHECK_ORACLE_H
