/**
 * @file
 * Seeded schedule fuzzer for the transform pipeline.
 *
 * Each fuzz case builds a fresh instance of a built-in workload,
 * generates a random-but-legal sequence of scheduling primitives
 * (interchange, split, tile, skew, after, fuse, pipeline, unroll,
 * array_partition), replays it through the DSL, and runs the
 * differential equivalence oracle. Legality has two layers:
 *
 *  - structural validity: ops only reference loops that exist at that
 *    point in the sequence (tracked by simulating each transform's
 *    effect on the loop-name list), and never touch loop levels shared
 *    with another statement through after/fuse, where a one-sided
 *    restructuring would change the cross-statement interleaving;
 *  - dependence legality: every structural candidate is applied to a
 *    scratch polyhedral statement and discarded unless
 *    check::schedulePreservesDependences() accepts it.
 *
 * Ordering primitives (after/fuse) are semantic, so the oracle's
 * reference lowering applies them too; generating them is safe and
 * exercises the AST interleaving paths.
 *
 * A failing sequence is shrunk to a minimal reproducer by greedy
 * one-op removal and rendered as canonical POM DSL via
 * driver::renderDsl(), so every failure is replayable from the report.
 */

#ifndef POM_CHECK_FUZZER_H
#define POM_CHECK_FUZZER_H

#include <cstdint>
#include <string>
#include <vector>

#include "check/oracle.h"
#include "workloads/workloads.h"

namespace pom::check {

/** One generated scheduling primitive, replayable onto a workload. */
struct ScheduleOp
{
    enum class Kind
    {
        Interchange, Split, Tile, Skew, After, Fuse,
        Pipeline, Unroll, Partition,
    };

    Kind kind = Kind::Interchange;
    std::string target;  ///< compute name (array name for Partition)
    std::vector<std::string> vars;
    std::vector<std::int64_t> factors;
    std::vector<std::string> newVars;
    std::string other;   ///< partner compute for After/Fuse
    std::string partitionKind;

    /** Render as a DSL-style call, e.g. "s.tile(i, j, 4, 4, ...)". */
    std::string str() const;
};

/** Fuzzer configuration. */
struct FuzzOptions
{
    unsigned seed = 1;

    /** Number of random schedules to try. */
    int cases = 25;

    /** Workload size (0 = per-workload default, kept interpreter-small). */
    std::int64_t size = 0;

    /** Maximum primitives per generated schedule. */
    int maxOps = 5;

    /** Shrink failing sequences to a minimal reproducer. */
    bool shrink = true;

    /**
     * Gate structural ops on the dependence-legality check. Disabling
     * this makes the fuzzer emit semantics-breaking schedules, which is
     * how the test suite proves the oracle catches miscompiles.
     */
    bool checkLegality = true;

    OracleOptions oracle;
};

/** One oracle failure with its (shrunk) reproducer. */
struct FuzzFailure
{
    int caseIndex = 0;
    std::string workload;
    std::int64_t size = 0;
    std::vector<ScheduleOp> ops; ///< minimal primitive sequence
    std::string message;         ///< oracle report or lowering crash
    std::string dsl;             ///< canonical DSL reproducer
};

/** Outcome of a fuzz run over one workload. */
struct FuzzResult
{
    std::string workload;
    std::int64_t size = 0;
    int casesRun = 0;
    int opsGenerated = 0;
    std::vector<FuzzFailure> failures;

    bool ok() const { return failures.empty(); }

    /** Multi-line human-readable report. */
    std::string summary() const;
};

/** Interpreter-friendly default fuzzing size for a workload. */
std::int64_t defaultFuzzSize(const std::string &workload);

/**
 * Replay a primitive sequence onto a fresh workload instance, recording
 * the ops as DSL directives. Returns false (leaving the workload in an
 * unspecified but safe state) if an op references a loop, compute or
 * array that does not exist at its point in the sequence -- used by the
 * shrinker to reject invalid subsequences.
 */
bool applyScheduleOps(workloads::Workload &w,
                      const std::vector<ScheduleOp> &ops);

/**
 * Generate one random-but-legal primitive sequence for @p w,
 * deterministic in @p seed. The sequence is not applied; replay it with
 * applyScheduleOps() (on a fresh instance). Exposed so round-trip and
 * pipeline tests can cover fuzzer-shaped schedules directly.
 */
std::vector<ScheduleOp> generateSchedule(workloads::Workload &w,
                                         unsigned seed,
                                         const FuzzOptions &options = {});

/** Run @p options.cases random schedules against one workload. */
FuzzResult fuzzWorkload(const std::string &workload,
                        const FuzzOptions &options = {});

} // namespace pom::check

#endif // POM_CHECK_FUZZER_H
