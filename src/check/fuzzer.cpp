#include "check/fuzzer.h"

#include <algorithm>
#include <sstream>

#include "check/legality.h"
#include "driver/compiler.h"
#include "lower/lower.h"
#include "obs/obs.h"
#include "support/diagnostics.h"
#include "support/string_util.h"
#include "transform/poly_stmt.h"

namespace pom::check {

namespace {

/** SplitMix64: tiny, seedable, reproducible across platforms. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed) : state_(seed) {}

    std::uint64_t
    next()
    {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /** Uniform value in [0, n). */
    std::uint64_t range(std::uint64_t n) { return n ? next() % n : 0; }

    /** Uniform pick from a small list. */
    template <typename T> T
    pick(std::initializer_list<T> xs)
    {
        return xs.begin()[range(xs.size())];
    }

  private:
    std::uint64_t state_;
};

std::int64_t
find(const std::vector<std::string> &dims, const std::string &name)
{
    auto it = std::find(dims.begin(), dims.end(), name);
    return it == dims.end() ? -1
                            : static_cast<std::int64_t>(it - dims.begin());
}

bool
anyPresent(const std::vector<std::string> &dims,
           const std::vector<std::string> &names)
{
    for (const auto &n : names)
        if (find(dims, n) >= 0)
            return true;
    return false;
}

/**
 * Mirror a structural op's effect on a loop-name list, the same way the
 * transform library rewrites the statement's dims. Returns false when
 * the op does not apply (missing loops, non-adjacent tile pair, name
 * clash) -- the shrinker uses that to reject invalid subsequences.
 */
bool
simApply(std::vector<std::string> &dims, const ScheduleOp &op)
{
    using K = ScheduleOp::Kind;
    switch (op.kind) {
      case K::Interchange: {
        std::int64_t a = find(dims, op.vars[0]);
        std::int64_t b = find(dims, op.vars[1]);
        if (a < 0 || b < 0 || a == b)
            return false;
        std::swap(dims[a], dims[b]);
        return true;
      }
      case K::Split: {
        std::int64_t d = find(dims, op.vars[0]);
        if (d < 0 || anyPresent(dims, op.newVars))
            return false;
        dims[d] = op.newVars[0];
        dims.insert(dims.begin() + d + 1, op.newVars[1]);
        return true;
      }
      case K::Tile: {
        std::int64_t di = find(dims, op.vars[0]);
        std::int64_t dj = find(dims, op.vars[1]);
        if (di < 0 || dj != di + 1 || anyPresent(dims, op.newVars))
            return false;
        dims[di] = op.newVars[0];
        dims[di + 1] = op.newVars[1];
        dims.insert(dims.begin() + di + 2,
                    {op.newVars[2], op.newVars[3]});
        return true;
      }
      case K::Skew: {
        std::int64_t di = find(dims, op.vars[0]);
        std::int64_t dj = find(dims, op.vars[1]);
        if (di < 0 || dj < 0 || di >= dj || anyPresent(dims, op.newVars))
            return false;
        dims[di] = op.newVars[0];
        dims[dj] = op.newVars[1];
        return true;
      }
      default:
        return true; // non-structural ops leave the loop list alone
    }
}

/** Per-compute generation state. */
struct CState
{
    dsl::Compute *compute = nullptr;

    /** Current loop names, mirroring the transform sequence so far. */
    std::vector<std::string> dims;

    /**
     * Loop levels [0, prot) are shared with another statement through a
     * level-carrying after(); restructuring them on one side would
     * change the cross-statement interleaving, so structural ops only
     * touch levels >= prot.
     */
    size_t prot = 0;

    /** Fused statements share every level: no structural ops at all. */
    bool frozen = false;

    /** Scratch polyhedral statement for the dependence-legality gate. */
    transform::PolyStmt mirror;

    size_t
    firstFree() const
    {
        return frozen ? dims.size() : prot;
    }
    size_t
    freeCount() const
    {
        return dims.size() - firstFree();
    }
};

/**
 * Protect the loop levels that pre-recorded ordering directives share
 * between statements (see CState::prot / frozen).
 */
void
protectSharedLevels(const dsl::Function &func, std::vector<CState> &states)
{
    auto stateOf = [&](const dsl::Compute *c) -> CState & {
        for (auto &s : states)
            if (s.compute == c)
                return s;
        support::fatal("fuzzer: unknown compute '" + c->name() + "'");
    };
    for (const dsl::Compute *c : func.computes()) {
        for (const dsl::Directive &d : c->directives()) {
            if (d.kind == dsl::Directive::Kind::Fuse) {
                stateOf(c).frozen = true;
                stateOf(d.other).frozen = true;
            } else if (d.kind == dsl::Directive::Kind::After &&
                       !d.vars.empty()) {
                const auto &iters = d.other->iters();
                size_t depth = iters.size();
                for (size_t i = 0; i < iters.size(); ++i) {
                    if (iters[i].name() == d.vars[0]) {
                        depth = i + 1;
                        break;
                    }
                }
                CState &sc = stateOf(c);
                CState &so = stateOf(d.other);
                sc.prot = std::max(sc.prot, depth);
                so.prot = std::max(so.prot, depth);
            }
        }
    }
}

bool
sameIterRanges(const dsl::Compute &a, const dsl::Compute &b)
{
    if (a.iters().size() != b.iters().size())
        return false;
    for (size_t i = 0; i < a.iters().size(); ++i) {
        if (a.iters()[i].lo() != b.iters()[i].lo() ||
            a.iters()[i].hi() != b.iters()[i].hi())
            return false;
    }
    return true;
}

/**
 * Generate one random schedule for a fresh workload instance. Structural
 * ops are validated against the per-statement dependence check unless
 * @p options.checkLegality is off.
 */
std::vector<ScheduleOp>
generateOps(workloads::Workload &w, Rng &rng, const FuzzOptions &options)
{
    const dsl::Function &func = w.func();
    auto stmts = lower::extractStmts(func);

    std::vector<CState> states;
    for (auto &stmt : stmts) {
        CState st;
        st.compute = func.findCompute(stmt.source->name());
        for (const auto &v : st.compute->iters())
            st.dims.push_back(v.name());
        st.mirror = stmt;
        states.push_back(std::move(st));
    }
    protectSharedLevels(func, states);

    std::vector<ScheduleOp> ops;
    int fresh = 0;
    auto freshName = [&](const std::string &base) {
        return base + "_z" + std::to_string(fresh++);
    };
    size_t n_ops = 1 + rng.range(static_cast<std::uint64_t>(
                           std::max(1, options.maxOps)));

    // At most one ordering primitive per schedule, generated first so
    // the loop-sharing protection below covers the structural ops.
    if (states.size() >= 2 && rng.range(6) == 0) {
        size_t ci = rng.range(states.size());
        size_t oi = rng.range(states.size());
        if (ci != oi) {
            ScheduleOp op;
            op.target = states[ci].compute->name();
            op.other = states[oi].compute->name();
            if (rng.range(3) == 0 &&
                sameIterRanges(*states[ci].compute, *states[oi].compute)) {
                op.kind = ScheduleOp::Kind::Fuse;
                states[ci].frozen = states[oi].frozen = true;
            } else {
                op.kind = ScheduleOp::Kind::After;
            }
            ops.push_back(std::move(op));
        }
    }

    size_t attempts = 0;
    while (ops.size() < n_ops && attempts < n_ops * 10) {
        ++attempts;
        using K = ScheduleOp::Kind;
        std::uint64_t r = rng.range(100);
        K kind = r < 16   ? K::Interchange
                 : r < 36 ? K::Split
                 : r < 52 ? K::Tile
                 : r < 62 ? K::Skew
                 : r < 76 ? K::Pipeline
                 : r < 88 ? K::Unroll
                          : K::Partition;

        if (kind == K::Partition) {
            const auto &arrays = func.placeholders();
            if (arrays.empty())
                continue;
            const dsl::Placeholder *ph = arrays[rng.range(arrays.size())];
            ScheduleOp op;
            op.kind = kind;
            op.target = ph->name();
            for (std::int64_t extent : ph->shape()) {
                std::int64_t f = rng.pick<std::int64_t>({1, 2, 4});
                op.factors.push_back(std::min(f, extent));
            }
            op.partitionKind =
                rng.pick<const char *>({"cyclic", "block", "complete"});
            ops.push_back(std::move(op));
            continue;
        }

        CState &st = states[rng.range(states.size())];
        size_t base = st.firstFree();
        size_t nfree = st.freeCount();
        ScheduleOp op;
        op.kind = kind;
        op.target = st.compute->name();

        switch (kind) {
          case K::Interchange: {
            if (nfree < 2)
                continue;
            size_t a = base + rng.range(nfree);
            size_t b = base + rng.range(nfree);
            if (a == b)
                continue;
            op.vars = {st.dims[std::min(a, b)], st.dims[std::max(a, b)]};
            break;
          }
          case K::Split: {
            if (nfree < 1)
                continue;
            const std::string &v = st.dims[base + rng.range(nfree)];
            op.vars = {v};
            op.factors = {rng.pick<std::int64_t>({2, 3, 4})};
            op.newVars = {freshName(v), freshName(v)};
            break;
          }
          case K::Tile: {
            if (nfree < 2)
                continue;
            size_t d = base + rng.range(nfree - 1);
            const std::string &vi = st.dims[d];
            const std::string &vj = st.dims[d + 1];
            op.vars = {vi, vj};
            op.factors = {rng.pick<std::int64_t>({2, 3, 4}),
                          rng.pick<std::int64_t>({2, 3, 4})};
            op.newVars = {freshName(vi), freshName(vj), freshName(vi),
                          freshName(vj)};
            break;
          }
          case K::Skew: {
            if (nfree < 2)
                continue;
            size_t a = base + rng.range(nfree);
            size_t b = base + rng.range(nfree);
            if (a == b)
                continue;
            const std::string &vi = st.dims[std::min(a, b)];
            const std::string &vj = st.dims[std::max(a, b)];
            op.vars = {vi, vj};
            op.factors = {rng.pick<std::int64_t>({1, 2, -1})};
            op.newVars = {freshName(vi), freshName(vj)};
            break;
          }
          // Hardware annotations live on loop levels, so a level shared
          // with another statement (after/fuse) is off limits too: the
          // AST builder rejects shared loops whose statements disagree
          // on the annotation.
          case K::Pipeline: {
            if (nfree < 1)
                continue;
            op.vars = {st.dims[base + rng.range(nfree)]};
            op.factors = {rng.pick<std::int64_t>({1, 2, 4})};
            ops.push_back(std::move(op));
            continue;
          }
          case K::Unroll: {
            if (nfree < 1)
                continue;
            op.vars = {st.dims[base + rng.range(nfree)]};
            op.factors = {rng.pick<std::int64_t>({0, 2, 4})};
            ops.push_back(std::move(op));
            continue;
          }
          default:
            continue;
        }

        // Structural candidate: apply to the scratch statement and keep
        // it only when every dependence survives the new loop order.
        transform::PolyStmt trial = st.mirror;
        try {
            switch (kind) {
              case K::Interchange:
                transform::interchange(trial, op.vars[0], op.vars[1]);
                break;
              case K::Split:
                transform::split(trial, op.vars[0], op.factors[0],
                                 op.newVars[0], op.newVars[1]);
                break;
              case K::Tile:
                transform::tile(trial, op.vars[0], op.vars[1],
                                op.factors[0], op.factors[1],
                                op.newVars[0], op.newVars[1],
                                op.newVars[2], op.newVars[3]);
                break;
              case K::Skew:
                transform::skew(trial, op.vars[0], op.vars[1],
                                op.factors[0], op.newVars[0],
                                op.newVars[1]);
                break;
              default:
                break;
            }
        } catch (const support::FatalError &) {
            continue;
        }
        if (options.checkLegality && !schedulePreservesDependences(trial))
            continue;
        if (!simApply(st.dims, op))
            continue;
        st.mirror = std::move(trial);
        ops.push_back(std::move(op));
    }
    return ops;
}

} // namespace

std::string
ScheduleOp::str() const
{
    auto nums = [&] {
        return support::joinMapped(factors, ", ", [](std::int64_t f) {
            return std::to_string(f);
        });
    };
    std::ostringstream os;
    os << target << ".";
    switch (kind) {
      case Kind::Interchange:
        os << "interchange(" << vars[0] << ", " << vars[1] << ")";
        break;
      case Kind::Split:
        os << "split(" << vars[0] << ", " << nums() << ", " << newVars[0]
           << ", " << newVars[1] << ")";
        break;
      case Kind::Tile:
        os << "tile(" << vars[0] << ", " << vars[1] << ", " << nums()
           << ", " << support::join(newVars, ", ") << ")";
        break;
      case Kind::Skew:
        os << "skew(" << vars[0] << ", " << vars[1] << ", " << nums()
           << ", " << newVars[0] << ", " << newVars[1] << ")";
        break;
      case Kind::After:
        os << "after(" << other << ")";
        break;
      case Kind::Fuse:
        os << "fuse(" << other << ")";
        break;
      case Kind::Pipeline:
        os << "pipeline(" << vars[0] << ", " << nums() << ")";
        break;
      case Kind::Unroll:
        os << "unroll(" << vars[0] << ", " << nums() << ")";
        break;
      case Kind::Partition:
        os << "partition({" << nums() << "}, \"" << partitionKind
           << "\")";
        break;
    }
    return os.str();
}

std::string
FuzzResult::summary() const
{
    std::ostringstream os;
    os << "fuzz " << workload << " size " << size << ": " << casesRun
       << " schedules, " << opsGenerated << " primitives, "
       << failures.size() << " failure(s)";
    for (const auto &f : failures) {
        os << "\n-- case " << f.caseIndex << ": " << f.message << "\n"
           << "minimal reproducer (" << f.ops.size() << " primitive"
           << (f.ops.size() == 1 ? "" : "s") << "):\n";
        for (const auto &op : f.ops)
            os << "  " << op.str() << "\n";
        if (!f.dsl.empty())
            os << "canonical DSL:\n" << f.dsl;
    }
    return os.str();
}

std::int64_t
defaultFuzzSize(const std::string &workload)
{
    // The DNN stacks have a fixed spatial pyramid; size only scales the
    // channel counts, so keep it minimal for interpreter speed.
    if (workload == "vgg16" || workload == "resnet18")
        return 2;
    return 8;
}

bool
applyScheduleOps(workloads::Workload &w,
                 const std::vector<ScheduleOp> &ops)
{
    dsl::Function &func = w.func();

    // Track every compute's loop list so each op can be validated at
    // its point in the sequence before touching the DSL.
    std::vector<std::pair<dsl::Compute *, std::vector<std::string>>> sim;
    for (dsl::Compute *c : func.computes()) {
        std::vector<std::string> dims;
        for (const auto &v : c->iters())
            dims.push_back(v.name());
        sim.emplace_back(c, std::move(dims));
    }
    auto dimsOf = [&](const std::string &name)
        -> std::vector<std::string> * {
        for (auto &[c, dims] : sim)
            if (c->name() == name)
                return &dims;
        return nullptr;
    };

    using K = ScheduleOp::Kind;
    for (const ScheduleOp &op : ops) {
        try {
            if (op.kind == K::Partition) {
                dsl::Placeholder *ph = func.findPlaceholderMut(op.target);
                if (!ph || op.factors.size() != ph->shape().size())
                    return false;
                for (size_t d = 0; d < op.factors.size(); ++d) {
                    if (op.factors[d] < 1 ||
                        op.factors[d] > ph->shape()[d])
                        return false;
                }
                ph->partition(op.factors, op.partitionKind);
                continue;
            }

            dsl::Compute *c = func.findCompute(op.target);
            std::vector<std::string> *dims = dimsOf(op.target);
            if (!c || !dims)
                return false;

            if (op.kind == K::After || op.kind == K::Fuse) {
                dsl::Compute *o = func.findCompute(op.other);
                if (!o || o == c)
                    return false;
                if (op.kind == K::After)
                    c->after(*o);
                else
                    c->fuse(*o);
                continue;
            }
            if (op.kind == K::Pipeline || op.kind == K::Unroll) {
                if (find(*dims, op.vars[0]) < 0)
                    return false;
                if (op.kind == K::Pipeline)
                    c->pipeline(dsl::Var(op.vars[0]),
                                static_cast<int>(op.factors[0]));
                else
                    c->unroll(dsl::Var(op.vars[0]), op.factors[0]);
                continue;
            }

            // Structural: validate against the simulated loop list
            // first -- DSL recording is unconditional, and the apply
            // step would otherwise die inside the lowering.
            std::vector<std::string> probe = *dims;
            if (!simApply(probe, op))
                return false;
            switch (op.kind) {
              case K::Interchange:
                c->interchange(dsl::Var(op.vars[0]), dsl::Var(op.vars[1]));
                break;
              case K::Split:
                c->split(dsl::Var(op.vars[0]), op.factors[0],
                         dsl::Var(op.newVars[0]), dsl::Var(op.newVars[1]));
                break;
              case K::Tile:
                c->tile(dsl::Var(op.vars[0]), dsl::Var(op.vars[1]),
                        op.factors[0], op.factors[1],
                        dsl::Var(op.newVars[0]), dsl::Var(op.newVars[1]),
                        dsl::Var(op.newVars[2]), dsl::Var(op.newVars[3]));
                break;
              case K::Skew:
                c->skew(dsl::Var(op.vars[0]), dsl::Var(op.vars[1]),
                        op.factors[0], dsl::Var(op.newVars[0]),
                        dsl::Var(op.newVars[1]));
                break;
              default:
                return false;
            }
            *dims = std::move(probe);
        } catch (const support::FatalError &) {
            return false;
        }
    }
    return true;
}

std::vector<ScheduleOp>
generateSchedule(workloads::Workload &w, unsigned seed,
                 const FuzzOptions &options)
{
    Rng rng((static_cast<std::uint64_t>(seed) << 32) ^ 1ULL);
    return generateOps(w, rng, options);
}

FuzzResult
fuzzWorkload(const std::string &workload, const FuzzOptions &options)
{
    obs::Span span("check.fuzz", "check");
    span.arg("workload", workload);
    span.arg("cases", static_cast<std::int64_t>(options.cases));
    FuzzResult result;
    result.workload = workload;
    result.size =
        options.size > 0 ? options.size : defaultFuzzSize(workload);

    // A replayed sequence either passes the oracle or yields a failure
    // message; invalid subsequences (shrinking artifacts) count as
    // passing so the shrinker keeps the op that made them valid.
    auto runCase =
        [&](const std::vector<ScheduleOp> &ops) -> std::optional<std::string> {
        auto w = workloads::makeByName(workload, result.size);
        if (!applyScheduleOps(*w, ops))
            return std::nullopt;
        try {
            OracleResult res = checkFunction(w->func(), options.oracle);
            if (!res.equivalent)
                return res.message;
        } catch (const support::FatalError &e) {
            return std::string("lowering crashed: ") + e.what();
        }
        return std::nullopt;
    };

    for (int idx = 0; idx < options.cases; ++idx) {
        obs::Span case_span("check.fuzz.case", "check");
        case_span.arg("case", static_cast<std::int64_t>(idx));
        Rng rng((static_cast<std::uint64_t>(options.seed) << 32) ^
                (static_cast<std::uint64_t>(idx) * 0x2545f4914f6cdd1dULL +
                 1));
        auto gen = workloads::makeByName(workload, result.size);
        std::vector<ScheduleOp> ops = generateOps(*gen, rng, options);
        ++result.casesRun;
        result.opsGenerated += static_cast<int>(ops.size());

        std::optional<std::string> msg = runCase(ops);
        if (!msg && !ops.empty() &&
            !applyScheduleOps(*workloads::makeByName(workload, result.size),
                              ops))
            msg = "internal: generated sequence failed to replay";
        if (!msg)
            continue;

        if (options.shrink) {
            obs::Span shrink_span("check.fuzz.shrink", "check");
            shrink_span.arg("from_ops",
                            static_cast<std::int64_t>(ops.size()));
            bool improved = true;
            while (improved && ops.size() > 1) {
                improved = false;
                for (size_t i = 0; i < ops.size(); ++i) {
                    std::vector<ScheduleOp> trial = ops;
                    trial.erase(trial.begin() +
                                static_cast<std::ptrdiff_t>(i));
                    if (auto m = runCase(trial)) {
                        ops = std::move(trial);
                        msg = std::move(m);
                        improved = true;
                        break;
                    }
                }
            }
        }

        FuzzFailure failure;
        failure.caseIndex = idx;
        failure.workload = workload;
        failure.size = result.size;
        failure.ops = ops;
        failure.message = *msg;
        auto wr = workloads::makeByName(workload, result.size);
        if (applyScheduleOps(*wr, ops))
            failure.dsl = driver::renderDsl(wr->func());
        result.failures.push_back(std::move(failure));
    }
    return result;
}

} // namespace pom::check
