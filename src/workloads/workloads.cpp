#include "workloads/workloads.h"

#include <algorithm>

#include "support/diagnostics.h"

namespace pom::workloads {

using dsl::Compute;
using dsl::Expr;
using dsl::Placeholder;
using dsl::Var;

WorkloadPtr
makeGemm(std::int64_t n)
{
    auto w = std::make_unique<Workload>("gemm");
    Var i("i", 0, n), j("j", 0, n), k("k", 0, n);
    Placeholder &A = w->array("A", {n, n});
    Placeholder &B = w->array("B", {n, n});
    Placeholder &C = w->array("C", {n, n});
    w->compute("s", {i, j, k}, C(i, j) + A(i, k) * B(k, j), C(i, j));
    return w;
}

WorkloadPtr
makeBicg(std::int64_t n)
{
    auto w = std::make_unique<Workload>("bicg");
    Var i("i", 0, n), j("j", 0, n);
    Placeholder &A = w->array("A", {n, n});
    Placeholder &p = w->array("p", {n});
    Placeholder &r = w->array("r", {n});
    Placeholder &q = w->array("q", {n});
    Placeholder &s = w->array("s", {n});
    Compute &sq = w->compute("s_q", {i, j}, q(i) + A(i, j) * p(j), q(i));
    Compute &ss = w->compute("s_s", {i, j}, s(j) + r(i) * A(i, j), s(j));
    ss.fuse(sq); // one loop nest with two statements (Fig. 2(a))
    return w;
}

WorkloadPtr
makeGesummv(std::int64_t n)
{
    auto w = std::make_unique<Workload>("gesummv");
    Var i("i", 0, n), j("j", 0, n), i2("i2", 0, n);
    Placeholder &A = w->array("A", {n, n});
    Placeholder &B = w->array("B", {n, n});
    Placeholder &x = w->array("x", {n});
    Placeholder &tmp = w->array("tmp", {n});
    Placeholder &y = w->array("y", {n});
    Compute &s1 =
        w->compute("s_tmp", {i, j}, tmp(i) + A(i, j) * x(j), tmp(i));
    Compute &s2 = w->compute("s_y", {i, j}, y(i) + B(i, j) * x(j), y(i));
    s2.fuse(s1);
    w->compute("s_sum", {i2}, 1.5 * tmp(i2) + 1.2 * y(i2), y(i2));
    return w;
}

WorkloadPtr
make2mm(std::int64_t n)
{
    auto w = std::make_unique<Workload>("2mm");
    Var i("i", 0, n), j("j", 0, n), k("k", 0, n);
    Var i2("i2", 0, n), j2("j2", 0, n), k2("k2", 0, n);
    Placeholder &A = w->array("A", {n, n});
    Placeholder &B = w->array("B", {n, n});
    Placeholder &C = w->array("C", {n, n});
    Placeholder &tmp = w->array("tmp", {n, n});
    Placeholder &D = w->array("D", {n, n});
    w->compute("mm1", {i, j, k}, tmp(i, j) + A(i, k) * B(k, j), tmp(i, j));
    w->compute("mm2", {i2, j2, k2}, D(i2, j2) + tmp(i2, k2) * C(k2, j2),
               D(i2, j2));
    return w;
}

WorkloadPtr
make3mm(std::int64_t n)
{
    auto w = std::make_unique<Workload>("3mm");
    Var i("i", 0, n), j("j", 0, n), k("k", 0, n);
    Var i2("i2", 0, n), j2("j2", 0, n), k2("k2", 0, n);
    Var i3("i3", 0, n), j3("j3", 0, n), k3("k3", 0, n);
    Placeholder &A = w->array("A", {n, n});
    Placeholder &B = w->array("B", {n, n});
    Placeholder &C = w->array("C", {n, n});
    Placeholder &D = w->array("D", {n, n});
    Placeholder &E = w->array("E", {n, n});
    Placeholder &F = w->array("F", {n, n});
    Placeholder &G = w->array("G", {n, n});
    w->compute("mm1", {i, j, k}, E(i, j) + A(i, k) * B(k, j), E(i, j));
    w->compute("mm2", {i2, j2, k2}, F(i2, j2) + C(i2, k2) * D(k2, j2),
               F(i2, j2));
    w->compute("mm3", {i3, j3, k3}, G(i3, j3) + E(i3, k3) * F(k3, j3),
               G(i3, j3));
    return w;
}

WorkloadPtr
makeAtax(std::int64_t n)
{
    auto w = std::make_unique<Workload>("atax");
    Var i("i", 0, n), j("j", 0, n);
    Var i2("i2", 0, n), j2("j2", 0, n);
    Placeholder &A = w->array("A", {n, n});
    Placeholder &x = w->array("x", {n});
    Placeholder &tmp = w->array("tmp", {n});
    Placeholder &y = w->array("y", {n});
    w->compute("s_tmp", {i, j}, tmp(i) + A(i, j) * x(j), tmp(i));
    w->compute("s_y", {i2, j2}, y(j2) + A(i2, j2) * tmp(i2), y(j2));
    return w;
}

WorkloadPtr
makeMvt(std::int64_t n)
{
    auto w = std::make_unique<Workload>("mvt");
    Var i("i", 0, n), j("j", 0, n);
    Var i2("i2", 0, n), j2("j2", 0, n);
    Placeholder &A = w->array("A", {n, n});
    Placeholder &x1 = w->array("x1", {n});
    Placeholder &x2 = w->array("x2", {n});
    Placeholder &y1 = w->array("y1", {n});
    Placeholder &y2 = w->array("y2", {n});
    w->compute("s_x1", {i, j}, x1(i) + A(i, j) * y1(j), x1(i));
    w->compute("s_x2", {i2, j2}, x2(i2) + A(j2, i2) * y2(j2), x2(i2));
    return w;
}

WorkloadPtr
makeSyrk(std::int64_t n)
{
    auto w = std::make_unique<Workload>("syrk");
    Var i("i", 0, n), j("j", 0, n), k("k", 0, n);
    Placeholder &A = w->array("A", {n, n});
    Placeholder &C = w->array("C", {n, n});
    w->compute("s", {i, j, k}, C(i, j) + A(i, k) * A(j, k), C(i, j));
    return w;
}

WorkloadPtr
makeConv2d(std::int64_t n)
{
    auto w = std::make_unique<Workload>("conv2d");
    Var y("y", 0, n - 2), x("x", 0, n - 2);
    Var ky("ky", 0, 3), kx("kx", 0, 3);
    Placeholder &in = w->array("img", {n, n});
    Placeholder &kern = w->array("kern", {3, 3});
    Placeholder &out = w->array("out", {n, n});
    w->compute("conv", {y, x, ky, kx},
               out(y, x) + kern(ky, kx) * in(y + ky, x + kx), out(y, x));
    return w;
}

WorkloadPtr
makeJacobi1d(std::int64_t n, std::int64_t steps)
{
    auto w = std::make_unique<Workload>("jacobi1d");
    Var t("t", 0, steps), i("i", 1, n - 1), i2("i2", 1, n - 1);
    Placeholder &A = w->array("A", {n});
    Placeholder &B = w->array("B", {n});
    Compute &s1 = w->compute(
        "s1", {t, i}, (A(i - 1) + A(i) + A(i + 1)) / 3.0, B(i));
    Compute &s2 = w->compute("s2", {t, i2}, B(i2), A(i2));
    s2.after(s1, t);
    return w;
}

WorkloadPtr
makeJacobi2d(std::int64_t n, std::int64_t steps)
{
    auto w = std::make_unique<Workload>("jacobi2d");
    Var t("t", 0, steps);
    Var i("i", 1, n - 1), j("j", 1, n - 1);
    Var i2("i2", 1, n - 1), j2("j2", 1, n - 1);
    Placeholder &A = w->array("A", {n, n});
    Placeholder &B = w->array("B", {n, n});
    Compute &s1 = w->compute(
        "s1", {t, i, j},
        0.2 * (A(i, j) + A(i, j - 1) + A(i, j + 1) + A(i - 1, j) +
               A(i + 1, j)),
        B(i, j));
    Compute &s2 = w->compute("s2", {t, i2, j2}, B(i2, j2), A(i2, j2));
    s2.after(s1, t);
    return w;
}

WorkloadPtr
makeHeat1d(std::int64_t n, std::int64_t steps)
{
    auto w = std::make_unique<Workload>("heat1d");
    Var t("t", 0, steps), i("i", 1, n - 1), i2("i2", 1, n - 1);
    Placeholder &A = w->array("A", {n});
    Placeholder &B = w->array("B", {n});
    Compute &s1 = w->compute(
        "s1", {t, i},
        A(i) + 0.125 * (A(i + 1) - 2.0 * A(i) + A(i - 1)), B(i));
    Compute &s2 = w->compute("s2", {t, i2}, B(i2), A(i2));
    s2.after(s1, t);
    return w;
}

WorkloadPtr
makeSeidel2d(std::int64_t n, std::int64_t steps)
{
    auto w = std::make_unique<Workload>("seidel");
    Var t("t", 0, steps), i("i", 1, n - 1), j("j", 1, n - 1);
    Placeholder &A = w->array("A", {n, n});
    w->compute("s", {t, i, j},
               (A(i - 1, j) + A(i, j - 1) + A(i, j) + A(i, j + 1) +
                A(i + 1, j)) /
                   5.0,
               A(i, j));
    return w;
}

WorkloadPtr
makeEdgeDetect(std::int64_t n)
{
    auto w = std::make_unique<Workload>("edgedetect");
    Var i("i", 1, n - 1), j("j", 1, n - 1);
    Var i2("i2", 1, n - 1), j2("j2", 1, n - 1);
    Var i3("i3", 1, n - 1), j3("j3", 1, n - 1);
    Placeholder &in = w->array("img", {n, n});
    Placeholder &gx = w->array("gx", {n, n});
    Placeholder &gy = w->array("gy", {n, n});
    Placeholder &out = w->array("out", {n, n});
    w->compute("sobel_x", {i, j},
               (in(i - 1, j + 1) + 2.0 * in(i, j + 1) + in(i + 1, j + 1)) -
                   (in(i - 1, j - 1) + 2.0 * in(i, j - 1) +
                    in(i + 1, j - 1)),
               gx(i, j));
    w->compute("sobel_y", {i2, j2},
               (in(i2 + 1, j2 - 1) + 2.0 * in(i2 + 1, j2) +
                in(i2 + 1, j2 + 1)) -
                   (in(i2 - 1, j2 - 1) + 2.0 * in(i2 - 1, j2) +
                    in(i2 - 1, j2 + 1)),
               gy(i2, j2));
    w->compute("mag", {i3, j3},
               max(gx(i3, j3), -gx(i3, j3)) +
                   max(gy(i3, j3), -gy(i3, j3)),
               out(i3, j3));
    return w;
}

WorkloadPtr
makeGaussian(std::int64_t n)
{
    auto w = std::make_unique<Workload>("gaussian");
    Var i("i", 0, n), j("j", 1, n - 1);
    Var i2("i2", 1, n - 1), j2("j2", 1, n - 1);
    Placeholder &in = w->array("img", {n, n});
    Placeholder &tmp = w->array("tmp", {n, n});
    Placeholder &out = w->array("out", {n, n});
    w->compute("gauss_h", {i, j},
               0.25 * (in(i, j - 1) + 2.0 * in(i, j) + in(i, j + 1)),
               tmp(i, j));
    w->compute("gauss_v", {i2, j2},
               0.25 * (tmp(i2 - 1, j2) + 2.0 * tmp(i2, j2) +
                       tmp(i2 + 1, j2)),
               out(i2, j2));
    return w;
}

WorkloadPtr
makeBlur(std::int64_t n)
{
    auto w = std::make_unique<Workload>("blur");
    Var i("i", 0, n), j("j", 0, n - 2);
    Var i2("i2", 0, n - 2), j2("j2", 0, n - 2);
    Placeholder &in = w->array("img", {n, n});
    Placeholder &bx = w->array("bx", {n, n});
    Placeholder &out = w->array("out", {n, n});
    w->compute("blur_x", {i, j},
               (in(i, j) + in(i, j + 1) + in(i, j + 2)) / 3.0, bx(i, j));
    w->compute("blur_y", {i2, j2},
               (bx(i2, j2) + bx(i2 + 1, j2) + bx(i2 + 2, j2)) / 3.0,
               out(i2, j2));
    return w;
}

namespace {

/** One convolution layer spec. */
struct ConvSpec
{
    std::int64_t inC, outC, spatial; ///< 3x3 kernel, same-size output
};

/** Append a conv layer compute (6-level critical loop). */
void
addConvLayer(Workload &w, int index, const ConvSpec &spec,
             Placeholder &input, Placeholder &output)
{
    std::string sfx = "_l" + std::to_string(index);
    Placeholder &weights = w.array(
        "w" + sfx, {spec.outC, spec.inC, 3, 3});
    Var f("f" + sfx, 0, spec.outC);
    Var y("y" + sfx, 0, spec.spatial);
    Var x("x" + sfx, 0, spec.spatial);
    Var c("c" + sfx, 0, spec.inC);
    Var ky("ky" + sfx, 0, 3);
    Var kx("kx" + sfx, 0, 3);
    w.compute("conv" + sfx, {f, y, x, c, ky, kx},
              output(f, y, x) + weights(f, c, ky, kx) *
                                    input(c, y + ky, x + kx),
              output(f, y, x));
}

} // namespace

WorkloadPtr
makeVgg16(std::int64_t size)
{
    auto w = std::make_unique<Workload>("vgg16");
    auto cap = [&](std::int64_t c) { return std::min(c, size); };
    // 13 conv layers with the VGG-16 channel progression; spatial sizes
    // follow the pooling pyramid (scaled to keep a single image pass).
    std::vector<ConvSpec> specs = {
        {3, cap(64), 32},          {cap(64), cap(64), 32},
        {cap(64), cap(128), 16},   {cap(128), cap(128), 16},
        {cap(128), cap(256), 8},   {cap(256), cap(256), 8},
        {cap(256), cap(256), 8},   {cap(256), cap(512), 4},
        {cap(512), cap(512), 4},   {cap(512), cap(512), 4},
        {cap(512), cap(512), 2},   {cap(512), cap(512), 2},
        {cap(512), cap(512), 2},
    };
    Placeholder *input =
        &w->array("input", {3, specs[0].spatial + 2, specs[0].spatial + 2});
    for (size_t l = 0; l < specs.size(); ++l) {
        Placeholder &out = w->array(
            "act" + std::to_string(l),
            {specs[l].outC, specs[l].spatial + 2, specs[l].spatial + 2});
        addConvLayer(*w, static_cast<int>(l), specs[l], *input, out);
        input = &out;
    }
    return w;
}

WorkloadPtr
makeResnet18(std::int64_t size)
{
    auto w = std::make_unique<Workload>("resnet18");
    auto cap = [&](std::int64_t c) { return std::min(c, size); };
    // Stem + 4 stages x 2 blocks x 2 convs = 17 convs; 3 residual adds
    // (20 critical loops, §VII.E).
    std::vector<ConvSpec> specs;
    specs.push_back({3, cap(64), 16});
    const std::int64_t chans[4] = {cap(64), cap(128), cap(256), cap(512)};
    const std::int64_t sizes[4] = {16, 8, 4, 2};
    for (int stage = 0; stage < 4; ++stage) {
        std::int64_t in_c = stage == 0 ? cap(64) : chans[stage - 1];
        specs.push_back({in_c, chans[stage], sizes[stage]});
        specs.push_back({chans[stage], chans[stage], sizes[stage]});
        specs.push_back({chans[stage], chans[stage], sizes[stage]});
        specs.push_back({chans[stage], chans[stage], sizes[stage]});
    }
    Placeholder *input =
        &w->array("input", {3, specs[0].spatial + 2, specs[0].spatial + 2});
    std::vector<Placeholder *> acts;
    for (size_t l = 0; l < specs.size(); ++l) {
        Placeholder &out = w->array(
            "act" + std::to_string(l),
            {specs[l].outC, specs[l].spatial + 2, specs[l].spatial + 2});
        addConvLayer(*w, static_cast<int>(l), specs[l], *input, out);
        acts.push_back(&out);
        input = &out;
    }
    // Residual adds at the last three stage boundaries.
    int res_index = 0;
    for (int stage = 1; stage < 4; ++stage) {
        size_t idx = static_cast<size_t>(stage * 4 + 4);
        if (idx >= acts.size())
            break;
        Placeholder &a = *acts[idx];
        Placeholder &b = *acts[idx - 2];
        std::string sfx = "_r" + std::to_string(res_index++);
        std::int64_t ch = specs[idx].outC;
        std::int64_t sp = specs[idx].spatial + 2;
        std::int64_t ch_b = specs[idx - 2].outC;
        std::int64_t common = std::min(ch, ch_b);
        Var c("c" + sfx, 0, common), y("y" + sfx, 0, sp),
            x("x" + sfx, 0, sp);
        w->compute("residual" + sfx, {c, y, x},
                   max(a(c, y, x) + b(c, y, x), 0.0), a(c, y, x));
    }
    return w;
}

namespace {

/** Stencils derive a time-step count from the spatial size. */
std::int64_t
stepsFor(std::int64_t size)
{
    return std::max<std::int64_t>(2, size / 16);
}

struct RegistryEntry
{
    const char *name;
    WorkloadPtr (*make)(std::int64_t size);
};

const RegistryEntry kRegistry[] = {
    {"gemm", [](std::int64_t n) { return makeGemm(n); }},
    {"bicg", [](std::int64_t n) { return makeBicg(n); }},
    {"gesummv", [](std::int64_t n) { return makeGesummv(n); }},
    {"2mm", [](std::int64_t n) { return make2mm(n); }},
    {"3mm", [](std::int64_t n) { return make3mm(n); }},
    {"atax", [](std::int64_t n) { return makeAtax(n); }},
    {"mvt", [](std::int64_t n) { return makeMvt(n); }},
    {"syrk", [](std::int64_t n) { return makeSyrk(n); }},
    {"conv2d", [](std::int64_t n) { return makeConv2d(n); }},
    {"jacobi1d",
     [](std::int64_t n) { return makeJacobi1d(n, stepsFor(n)); }},
    {"jacobi2d",
     [](std::int64_t n) { return makeJacobi2d(n, stepsFor(n)); }},
    {"heat1d",
     [](std::int64_t n) { return makeHeat1d(n, stepsFor(n)); }},
    {"seidel",
     [](std::int64_t n) { return makeSeidel2d(n, stepsFor(n)); }},
    {"edgedetect", [](std::int64_t n) { return makeEdgeDetect(n); }},
    {"gaussian", [](std::int64_t n) { return makeGaussian(n); }},
    {"blur", [](std::int64_t n) { return makeBlur(n); }},
    {"vgg16", [](std::int64_t n) { return makeVgg16(n); }},
    {"resnet18", [](std::int64_t n) { return makeResnet18(n); }},
};

} // namespace

WorkloadPtr
makeByName(const std::string &name, std::int64_t size)
{
    for (const auto &entry : kRegistry) {
        if (name == entry.name)
            return entry.make(size);
    }
    support::fatal("unknown workload '" + name + "' (see --list)");
}

const std::vector<std::string> &
allNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> out;
        for (const auto &entry : kRegistry)
            out.push_back(entry.name);
        return out;
    }();
    return names;
}

bool
isKnown(const std::string &name)
{
    for (const auto &entry : kRegistry) {
        if (name == entry.name)
            return true;
    }
    return false;
}

} // namespace pom::workloads
