/**
 * @file
 * DSL definitions of every benchmark in the paper's evaluation (§VII):
 * PolyBench kernels (GEMM, BICG, GESUMMV, 2MM, 3MM), stencils with
 * complicated access patterns (Jacobi-1d/2d, Heat-1d, Seidel-2d), image
 * processing pipelines (EdgeDetect, Gaussian, Blur), and DNN models
 * (VGG-16, ResNet-18 layer stacks).
 *
 * A Workload owns its DSL objects (Function keeps raw pointers into
 * them), so it must outlive any lowering of its function.
 */

#ifndef POM_WORKLOADS_WORKLOADS_H
#define POM_WORKLOADS_WORKLOADS_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dsl/dsl.h"

namespace pom::workloads {

/** A benchmark: a DSL function plus ownership of its pieces. */
class Workload
{
  public:
    explicit Workload(std::string name) : func_(std::move(name)) {}

    dsl::Function &func() { return func_; }
    const dsl::Function &func() const { return func_; }

    /** Create and register a placeholder owned by this workload. */
    dsl::Placeholder &
    array(const std::string &name, std::vector<std::int64_t> shape,
          dsl::ScalarKind type = dsl::ScalarKind::F32)
    {
        arrays_.push_back(std::make_unique<dsl::Placeholder>(
            func_, name, std::move(shape), type));
        return *arrays_.back();
    }

    /** Create and register a compute owned by this workload. */
    dsl::Compute &
    compute(const std::string &name, std::vector<dsl::Var> iters,
            dsl::Expr rhs, dsl::Expr dest)
    {
        computes_.push_back(std::make_unique<dsl::Compute>(
            func_, name, std::move(iters), std::move(rhs),
            std::move(dest)));
        return *computes_.back();
    }

  private:
    dsl::Function func_;
    std::vector<std::unique_ptr<dsl::Placeholder>> arrays_;
    std::vector<std::unique_ptr<dsl::Compute>> computes_;
};

using WorkloadPtr = std::unique_ptr<Workload>;

// ----- Typical HLS benchmarks (PolyBench, Table III) ---------------------

/** C[i][j] += A[i][k] * B[k][j]. */
WorkloadPtr makeGemm(std::int64_t n);

/** q[i] += A[i][j]*p[j];  s[j] += r[i]*A[i][j]  (fused, Fig. 2). */
WorkloadPtr makeBicg(std::int64_t n);

/** tmp = A*x; y = B*x; y = a*tmp + b*y. */
WorkloadPtr makeGesummv(std::int64_t n);

/** tmp = A*B; D = tmp*C. */
WorkloadPtr make2mm(std::int64_t n);

/** E = A*B; F = C*D; G = E*F. */
WorkloadPtr make3mm(std::int64_t n);

/** y = A^T (A x): two fused-depth matrix-vector products. */
WorkloadPtr makeAtax(std::int64_t n);

/** x1 += A y1; x2 += A^T y2 (two independent MVs, one nest each). */
WorkloadPtr makeMvt(std::int64_t n);

/** C = C + A A^T (rank-k update over the full square domain). */
WorkloadPtr makeSyrk(std::int64_t n);

/** Single-channel 3x3 convolution over an image. */
WorkloadPtr makeConv2d(std::int64_t n);

// ----- Complicated access patterns (Table VII) ----------------------------

/** Jacobi-1d with a time loop and explicit copy-back (Fig. 16). */
WorkloadPtr makeJacobi1d(std::int64_t n, std::int64_t steps);

/** Jacobi-2d 5-point stencil with copy-back. */
WorkloadPtr makeJacobi2d(std::int64_t n, std::int64_t steps);

/** Heat-1d explicit finite difference. */
WorkloadPtr makeHeat1d(std::int64_t n, std::int64_t steps);

/** Seidel-2d in-place stencil (tight loop-carried dependence). */
WorkloadPtr makeSeidel2d(std::int64_t n, std::int64_t steps);

// ----- Image processing (Table V / VI) -------------------------------------

/** Sobel-style edge detection: two 3x3 gradients + combine. */
WorkloadPtr makeEdgeDetect(std::int64_t n);

/** Separable Gaussian smoothing (two passes). */
WorkloadPtr makeGaussian(std::int64_t n);

/** Halide-style separable 3x3 box blur. */
WorkloadPtr makeBlur(std::int64_t n);

// ----- DNN models (Table V / Fig. 13) --------------------------------------

/** VGG-16 convolution stack: 13 critical conv loops. */
WorkloadPtr makeVgg16(std::int64_t size);

/** ResNet-18: 17 conv loops + 3 residual add loops (20 critical). */
WorkloadPtr makeResnet18(std::int64_t size);

/**
 * Look up a workload constructor by benchmark name ("gemm", "bicg",
 * "gesummv", "2mm", "3mm", "atax", "mvt", "syrk", "conv2d",
 * "jacobi1d", "jacobi2d", "heat1d", "seidel", "edgedetect",
 * "gaussian", "blur", "vgg16", "resnet18").
 */
WorkloadPtr makeByName(const std::string &name, std::int64_t size);

/** Every benchmark name makeByName() accepts, in canonical order. */
const std::vector<std::string> &allNames();

/** True when @p name is a registered benchmark. */
bool isKnown(const std::string &name);

} // namespace pom::workloads

#endif // POM_WORKLOADS_WORKLOADS_H
