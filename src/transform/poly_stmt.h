/**
 * @file
 * The polyhedral IR statement (paper §V.B) and the loop transformation
 * library implemented on it. A PolyStmt bundles a statement's
 * transformed iteration domain, 2d+1 schedule betas, the map back to its
 * original iterators, per-loop hardware annotations, and its array
 * accesses (expressed over the *original* iterators; composing with the
 * origin map yields accesses over the transformed loops).
 *
 * Every transformation is a manipulation of integer sets and maps, as
 * the paper argues (§V.B "Implementation of loop transformations"):
 * tiling rewrites the domain through an explicit  i = t*i0 + i1
 * decomposition, skewing applies a unimodular change of basis, and
 * interchange is a permutation.
 */

#ifndef POM_TRANSFORM_POLY_STMT_H
#define POM_TRANSFORM_POLY_STMT_H

#include <cstdint>
#include <string>
#include <vector>

#include "ast/build.h"
#include "poly/dependence.h"

namespace pom::dsl {
class Compute;
}

namespace pom::transform {

/** A statement at the polyhedral IR level. */
struct PolyStmt
{
    /** Domain, betas, origin map and hardware annotations. */
    ast::ScheduledStmt sched;

    /** Array accesses over the original iterators. */
    std::vector<poly::Access> accesses;

    /** The DSL compute this statement was extracted from. */
    const dsl::Compute *source = nullptr;

    /** Accesses re-expressed over the transformed loop dims. */
    std::vector<poly::Access> transformedAccesses() const;

    /** Index of a loop dim by name; fatal with context if missing. */
    size_t dimIndex(const std::string &name) const;

    size_t numDims() const { return sched.domain.numDims(); }
};

/** Interchange loop levels named @p a and @p b. */
void interchange(PolyStmt &stmt, const std::string &a, const std::string &b);

/**
 * Split loop @p name by @p factor into (@p outer, @p inner); handles
 * non-dividing factors via partial-tile bounds.
 */
void split(PolyStmt &stmt, const std::string &name, std::int64_t factor,
           const std::string &outer, const std::string &inner);

/** Tile loops (@p i, @p j) by (t1, t2) into (i0, j0, i1, j1). */
void tile(PolyStmt &stmt, const std::string &i, const std::string &j,
          std::int64_t t1, std::int64_t t2, const std::string &i0,
          const std::string &j0, const std::string &i1,
          const std::string &j1);

/**
 * Skew loop @p j by f * @p i: new loops (@p ip, @p jp) with
 * jp = j + f*i. @p i must be outer to @p j.
 */
void skew(PolyStmt &stmt, const std::string &i, const std::string &j,
          std::int64_t f, const std::string &ip, const std::string &jp);

/**
 * Make @p stmt execute after @p anchor sharing loops down to (and
 * including) level @p shared_levels - 1. shared_levels == 0 means fully
 * sequential.
 */
void placeAfter(PolyStmt &stmt, const PolyStmt &anchor,
                size_t shared_levels);

/** Fuse @p stmt into @p anchor's loop nest (share all loop levels). */
void fuseInto(PolyStmt &stmt, const PolyStmt &anchor);

/** Set a pipeline annotation at loop level @p name. */
void setPipeline(PolyStmt &stmt, const std::string &name, int ii);

/** Set an unroll annotation at loop level @p name (0 = full unroll). */
void setUnroll(PolyStmt &stmt, const std::string &name,
               std::int64_t factor);

/**
 * Loop-carried self-dependences of the statement in its *transformed*
 * loop order (dependence analysis used by the DSE stage 1).
 */
std::vector<poly::Dependence> selfDependences(const PolyStmt &stmt);

/**
 * True when two statements carry the same transformed schedule: name,
 * domain, betas, origin map and all per-loop hardware annotations
 * (including independent-array hints). This is the equality the
 * estimator's node reports are keyed on -- two candidates whose
 * statements compare equal here get identical NodeReports.
 */
bool sameSchedule(const ast::ScheduledStmt &a, const ast::ScheduledStmt &b);

/**
 * Node-diff detection: indices (into @p a) of statements whose
 * schedules differ between two equally-long statement lists. The DSE's
 * bench/tests use it to count how many nodes a candidate actually
 * changed relative to its parent.
 */
std::vector<std::size_t> changedStmts(const std::vector<PolyStmt> &a,
                                      const std::vector<PolyStmt> &b);

} // namespace pom::transform

#endif // POM_TRANSFORM_POLY_STMT_H
