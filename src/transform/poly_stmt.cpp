#include "transform/poly_stmt.h"

#include <algorithm>

#include "support/diagnostics.h"

namespace pom::transform {

using poly::AffineMap;
using poly::IntegerSet;
using poly::LinearExpr;

std::vector<poly::Access>
PolyStmt::transformedAccesses() const
{
    std::vector<poly::Access> result;
    result.reserve(accesses.size());
    for (const auto &a : accesses) {
        result.push_back(poly::Access{
            a.array, a.map.compose(sched.origMap), a.isWrite});
    }
    return result;
}

size_t
PolyStmt::dimIndex(const std::string &name) const
{
    auto idx = sched.domain.findDim(name);
    if (!idx) {
        support::fatal("compute '" + sched.name + "' has no loop named '" +
                       name + "' (loops: " + sched.domain.str() + ")");
    }
    return *idx;
}

void
interchange(PolyStmt &stmt, const std::string &a, const std::string &b)
{
    size_t d1 = stmt.dimIndex(a);
    size_t d2 = stmt.dimIndex(b);
    if (d1 == d2)
        support::fatal("interchange of a loop with itself: " + a);
    size_t n = stmt.numDims();
    std::vector<size_t> perm(n);
    for (size_t i = 0; i < n; ++i)
        perm[i] = i;
    std::swap(perm[d1], perm[d2]);
    stmt.sched.domain = stmt.sched.domain.permuted(perm);
    stmt.sched.origMap = stmt.sched.origMap.withDomainPermuted(perm);
    std::swap(stmt.sched.hwPerDim[d1], stmt.sched.hwPerDim[d2]);
}

void
split(PolyStmt &stmt, const std::string &name, std::int64_t factor,
      const std::string &outer, const std::string &inner)
{
    if (factor < 2)
        support::fatal("split factor must be >= 2");
    if (stmt.sched.domain.findDim(outer) || stmt.sched.domain.findDim(inner))
        support::fatal("split: new loop name already in use");
    size_t d = stmt.dimIndex(name);
    size_t n = stmt.numDims();

    // Domain: insert (outer, inner) after d with the decomposition
    //   d = factor*outer + inner, 0 <= inner < factor,
    // then project the original dim away.
    IntegerSet dom = stmt.sched.domain.withDimsInserted(d + 1,
                                                        {outer, inner});
    LinearExpr decomp = LinearExpr::dim(n + 2, d) -
                        LinearExpr::dim(n + 2, d + 1).scaled(factor) -
                        LinearExpr::dim(n + 2, d + 2);
    dom.addEquality(decomp);
    dom.addDimBounds(d + 2, 0, factor - 1);
    stmt.sched.domain = dom.projectOut(d);

    // Origin map: substitute the old iterator by factor*outer + inner.
    AffineMap om = stmt.sched.origMap.withDomainDimsInserted(
        d + 1, {outer, inner});
    LinearExpr repl = LinearExpr::dim(n + 2, d + 1).scaled(factor) +
                      LinearExpr::dim(n + 2, d + 2);
    om = om.withDomainDimSubstituted(d, repl).withDomainDimRemoved(d);
    stmt.sched.origMap = om;

    // Annotations: the split loop's annotation does not transfer.
    stmt.sched.hwPerDim.erase(stmt.sched.hwPerDim.begin() + d);
    stmt.sched.hwPerDim.insert(stmt.sched.hwPerDim.begin() + d, 2,
                               ast::HwAnnotation{});

    // Betas gain one inner level.
    stmt.sched.betas.insert(stmt.sched.betas.begin() + d + 1, 0);
}

void
tile(PolyStmt &stmt, const std::string &i, const std::string &j,
     std::int64_t t1, std::int64_t t2, const std::string &i0,
     const std::string &j0, const std::string &i1, const std::string &j1)
{
    size_t di = stmt.dimIndex(i);
    size_t dj = stmt.dimIndex(j);
    if (dj != di + 1) {
        support::fatal("tile expects adjacent loops (" + i + ", " + j +
                       "); interchange first");
    }
    split(stmt, i, t1, i0, i1);
    split(stmt, j, t2, j0, j1);
    // Now (i0, i1, j0, j1); bring the point loops inside: -> (i0, j0,
    // i1, j1).
    interchange(stmt, i1, j0);
}

void
skew(PolyStmt &stmt, const std::string &i, const std::string &j,
     std::int64_t f, const std::string &ip, const std::string &jp)
{
    if (f == 0)
        support::fatal("skew factor must be non-zero");
    if (stmt.sched.domain.findDim(jp) ||
        (ip != i && stmt.sched.domain.findDim(ip)))
        support::fatal("skew: new loop name already in use");
    size_t d1 = stmt.dimIndex(i);
    size_t d2 = stmt.dimIndex(j);
    if (d1 >= d2) {
        support::fatal("skew(" + i + ", " + j + "): '" + i +
                       "' must be an outer loop of '" + j + "'");
    }
    size_t n = stmt.numDims();

    // Domain: new dim jp with jp = j + f*i; project the old j away.
    IntegerSet dom = stmt.sched.domain.withDimsInserted(d2 + 1, {jp});
    LinearExpr eq = LinearExpr::dim(n + 1, d2 + 1) -
                    LinearExpr::dim(n + 1, d2) -
                    LinearExpr::dim(n + 1, d1).scaled(f);
    dom.addEquality(eq);
    dom = dom.projectOut(d2);
    stmt.sched.domain = dom.withDimRenamed(d1, ip);

    // Origin map: old j = jp - f*i.
    AffineMap om = stmt.sched.origMap.withDomainDimsInserted(d2 + 1, {jp});
    LinearExpr repl = LinearExpr::dim(n + 1, d2 + 1) -
                      LinearExpr::dim(n + 1, d1).scaled(f);
    om = om.withDomainDimSubstituted(d2, repl).withDomainDimRemoved(d2);
    stmt.sched.origMap = om.withDomainDimRenamed(d1, ip);

    // Loop structure (count, nesting) is unchanged; annotations at the
    // skewed level are reset since the loop changed meaning.
    stmt.sched.hwPerDim[d2] = ast::HwAnnotation{};
}

void
placeAfter(PolyStmt &stmt, const PolyStmt &anchor, size_t shared_levels)
{
    if (shared_levels > anchor.numDims() || shared_levels > stmt.numDims()) {
        support::fatal("placeAfter: cannot share " +
                       std::to_string(shared_levels) + " levels");
    }
    for (size_t k = 0; k < shared_levels; ++k)
        stmt.sched.betas[k] = anchor.sched.betas[k];
    stmt.sched.betas[shared_levels] =
        anchor.sched.betas[shared_levels] + 1;
}

void
fuseInto(PolyStmt &stmt, const PolyStmt &anchor)
{
    size_t shared = std::min(stmt.numDims(), anchor.numDims());
    placeAfter(stmt, anchor, shared);
}

void
setPipeline(PolyStmt &stmt, const std::string &name, int ii)
{
    if (ii < 1)
        support::fatal("pipeline II must be >= 1");
    stmt.sched.hwPerDim.at(stmt.dimIndex(name)).pipelineII = ii;
}

void
setUnroll(PolyStmt &stmt, const std::string &name, std::int64_t factor)
{
    if (factor < 0)
        support::fatal("unroll factor must be >= 0");
    stmt.sched.hwPerDim.at(stmt.dimIndex(name)).unrollFactor = factor;
}

std::vector<poly::Dependence>
selfDependences(const PolyStmt &stmt)
{
    return poly::analyzeSelfDependences(stmt.sched.domain,
                                        stmt.transformedAccesses());
}

bool
sameSchedule(const ast::ScheduledStmt &a, const ast::ScheduledStmt &b)
{
    // Domains and maps compare via their canonical prints -- the same
    // bytes the cache fingerprints hash, so "same schedule" and "same
    // node fingerprint" can never disagree.
    return a.name == b.name && a.betas == b.betas &&
           a.hwPerDim == b.hwPerDim &&
           a.domain.str() == b.domain.str() &&
           a.origMap.str() == b.origMap.str();
}

std::vector<std::size_t>
changedStmts(const std::vector<PolyStmt> &a, const std::vector<PolyStmt> &b)
{
    std::vector<std::size_t> changed;
    size_t n = std::min(a.size(), b.size());
    for (size_t i = 0; i < n; ++i) {
        if (!sameSchedule(a[i].sched, b[i].sched))
            changed.push_back(i);
    }
    for (size_t i = n; i < std::max(a.size(), b.size()); ++i)
        changed.push_back(i);
    return changed;
}

} // namespace pom::transform
