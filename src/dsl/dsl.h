/**
 * @file
 * The POM DSL (paper §IV): a declarative, Halide-style programming model
 * embedded in C++ that decouples the algorithm specification from the
 * schedule. Users declare iterators (var), arrays (placeholder) and
 * computations (compute), then optionally attach scheduling primitives
 * (Table II) -- loop transformations, HLS hardware optimizations, or
 * auto_DSE -- without restructuring the algorithm.
 *
 * Example (Fig. 4 / Fig. 5 / Fig. 6 of the paper):
 * @code
 *   pom::dsl::Function f("gemm");
 *   Var i("i", 0, 32), j("j", 0, 32), k("k", 0, 32);
 *   Placeholder A(f, "A", {32, 32}, ScalarKind::F32);
 *   Placeholder B(f, "B", {32, 32}, ScalarKind::F32);
 *   Placeholder C(f, "C", {32, 32}, ScalarKind::F32);
 *   Compute s(f, "s", {k, i, j}, A(i, j) + B(i, k) * C(k, j), A(i, j));
 *   Var i0("i0"), j0("j0"), i1("i1"), j1("j1");
 *   s.tile(i, j, 4, 4, i0, j0, i1, j1);
 *   s.pipeline(j0, 1);
 *   s.unroll(i1, 4);
 *   s.unroll(j1, 4);
 *   A.partition({4, 4}, "cyclic");
 * @endcode
 */

#ifndef POM_DSL_DSL_H
#define POM_DSL_DSL_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dsl/expr.h"
#include "ir/type.h"

namespace pom::dsl {

class Function;
class Compute;

using ir::ScalarKind;

/** A loop iterator with an optional half-open range [lo, hi). */
class Var
{
  public:
    /** Iterator with a range, e.g. var i("i", 0, 32). */
    Var(std::string name, std::int64_t lo, std::int64_t hi);

    /** Name-only iterator, used to name loops created by transforms. */
    explicit Var(std::string name);

    const std::string &name() const { return name_; }
    std::int64_t lo() const { return lo_; }
    std::int64_t hi() const { return hi_; }
    bool hasRange() const { return has_range_; }

    /** Use the iterator in an expression. */
    operator Expr() const { return Expr::iter(name_); }

  private:
    std::string name_;
    std::int64_t lo_ = 0;
    std::int64_t hi_ = 0;
    bool has_range_ = false;
};

/** A typed multi-dimensional array (paper §IV.A placeholders). */
class Placeholder
{
  public:
    Placeholder(Function &func, std::string name,
                std::vector<std::int64_t> shape,
                ScalarKind type = ScalarKind::F32);

    const std::string &name() const { return name_; }
    const std::vector<std::int64_t> &shape() const { return shape_; }
    ScalarKind elementType() const { return type_; }

    /** Array access for use inside compute expressions. */
    template <typename... Idx> Expr
    operator()(const Idx &...idx) const
    {
        return Expr::load(this, {Expr(idx)...});
    }

    /**
     * Array-partitioning primitive (Table II):
     * A.partition({t1, t2}, "cyclic") partitions dim 0 by t1 and dim 1 by
     * t2. Kind is "cyclic", "block" or "complete".
     */
    void partition(std::vector<std::int64_t> factors, std::string kind);

    /** Remove any partition directive (used between DSE candidates). */
    void clearPartition();

    const std::vector<std::int64_t> &partitionFactors() const
    {
        return partition_factors_;
    }
    const std::string &partitionKind() const { return partition_kind_; }

  private:
    Function *func_;
    std::string name_;
    std::vector<std::int64_t> shape_;
    ScalarKind type_;
    std::vector<std::int64_t> partition_factors_;
    std::string partition_kind_;
};

/** One recorded scheduling primitive (applied during lowering). */
struct Directive
{
    enum class Kind
    {
        Interchange, Split, Tile, Skew, After, Fuse,
        Pipeline, Unroll,
    };

    Kind kind;
    std::vector<std::string> vars;    ///< iterator names involved
    std::vector<std::int64_t> factors;
    std::vector<std::string> newVars; ///< names of created iterators
    const Compute *other = nullptr;   ///< for After/Fuse
};

/**
 * A computation over an iteration domain (paper Fig. 4): destination
 * placeholder access, iterator list, and right-hand-side expression.
 * Scheduling primitives recorded here drive the polyhedral layer.
 */
class Compute
{
  public:
    /**
     * Define a computation.
     * @param func Enclosing function; the compute registers itself.
     * @param name Statement name.
     * @param iters Loop iterators, outermost first. Each must have a
     *        range.
     * @param rhs Right-hand-side expression.
     * @param dest Destination access (a Placeholder load expression).
     */
    Compute(Function &func, std::string name, std::vector<Var> iters,
            Expr rhs, Expr dest);

    const std::string &name() const { return name_; }
    const std::vector<Var> &iters() const { return iters_; }
    const Expr &rhs() const { return rhs_; }
    const Expr &dest() const { return dest_; }
    const std::vector<Directive> &directives() const { return directives_; }
    Function &function() const { return *func_; }

    // ----- Loop transformation primitives (Table II) --------------------

    /** Interchange loop levels i and j. */
    Compute &interchange(const Var &i, const Var &j);

    /** Split loop i by @p factor into (i0, i1), i1 innermost. */
    Compute &split(const Var &i, std::int64_t factor, const Var &i0,
                   const Var &i1);

    /** Tile loops (i, j) by (t1, t2) into (i0, j0, i1, j1). */
    Compute &tile(const Var &i, const Var &j, std::int64_t t1,
                  std::int64_t t2, const Var &i0, const Var &j0,
                  const Var &i1, const Var &j1);

    /**
     * Skew loop j by f*i: new iterators (ip, jp) with jp = j + f*i.
     * Changes the dependence direction (paper Table II).
     */
    Compute &skew(const Var &i, const Var &j, std::int64_t f,
                  const Var &ip, const Var &jp);

    /**
     * Execute this compute after @p other at loop level @p level (they
     * share loops above that level; bounds must match).
     */
    Compute &after(const Compute &other, const Var &level);

    /** Execute after @p other with no shared loops. */
    Compute &after(const Compute &other);

    /** Fuse this compute into the same loop nest as @p other. */
    Compute &fuse(const Compute &other);

    // ----- Hardware optimization primitives (Table II) ------------------

    /** Pipeline loop level i with the given initiation interval. */
    Compute &pipeline(const Var &i, int ii = 1);

    /** Unroll loop level i by @p factor (0 = fully). */
    Compute &unroll(const Var &i, std::int64_t factor);

  private:
    Function *func_;
    std::string name_;
    std::vector<Var> iters_;
    Expr rhs_;
    Expr dest_;
    std::vector<Directive> directives_;
};

/** A function: a set of computes plus module-level scheduling state. */
class Function
{
  public:
    explicit Function(std::string name) : name_(std::move(name)) {}

    Function(const Function &) = delete;
    Function &operator=(const Function &) = delete;

    const std::string &name() const { return name_; }

    const std::vector<Compute *> &computes() const { return computes_; }
    const std::vector<Placeholder *> &placeholders() const
    {
        return placeholders_;
    }

    /**
     * Request automatic design space exploration (paper §VI). The actual
     * search runs when the function is compiled through the DSE engine;
     * this flag mirrors the f.auto_DSE() primitive.
     */
    void autoDSE() { auto_dse_ = true; }
    bool autoDSERequested() const { return auto_dse_; }

    /** Find a placeholder by name (nullptr if absent). */
    const Placeholder *findPlaceholder(const std::string &name) const;

    /**
     * Mutable lookup, used by the DSE engine to set array-partitioning
     * directives while exploring design points.
     */
    Placeholder *findPlaceholderMut(const std::string &name);

    /** Find a compute by name (nullptr if absent). */
    Compute *findCompute(const std::string &name) const;

  private:
    friend class Compute;
    friend class Placeholder;

    std::string name_;
    std::vector<Compute *> computes_;
    std::vector<Placeholder *> placeholders_;
    bool auto_dse_ = false;
};

} // namespace pom::dsl

#endif // POM_DSL_DSL_H
