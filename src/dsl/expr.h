/**
 * @file
 * Expression trees for the POM DSL (paper §IV.A). An Expr describes the
 * right-hand side of a compute: constants, iterator references, affine
 * array accesses, and arithmetic. Array subscripts must be affine in the
 * compute's iterators; extraction to poly::LinearExpr happens during
 * lowering and rejects non-affine forms with a user-level error.
 */

#ifndef POM_DSL_EXPR_H
#define POM_DSL_EXPR_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace pom::dsl {

class Placeholder;

/** Binary operator kinds available in the DSL. */
enum class BinOp { Add, Sub, Mul, Div, Max, Min };

/** Unary operator kinds. */
enum class UnOp { Neg, Sqrt, Exp };

/** Internal expression node. Use the Expr value wrapper in user code. */
struct ExprNode
{
    enum class Kind { Const, Iter, Load, Binary, Unary };

    Kind kind;

    // Const
    double value = 0.0;

    // Iter
    std::string iterName;

    // Load
    const Placeholder *array = nullptr;
    std::vector<std::shared_ptr<ExprNode>> indices;

    // Binary / Unary
    BinOp binOp = BinOp::Add;
    UnOp unOp = UnOp::Neg;
    std::shared_ptr<ExprNode> lhs;
    std::shared_ptr<ExprNode> rhs;
};

/** A value-semantic handle to an expression tree. */
class Expr
{
  public:
    Expr() = default;

    /* implicit */ Expr(double constant);
    /* implicit */ Expr(int constant);

    explicit Expr(std::shared_ptr<ExprNode> node) : node_(std::move(node))
    {}

    /** Iterator reference by name (normally created via Var). */
    static Expr iter(const std::string &name);

    /** Array load (normally created via Placeholder::operator()). */
    static Expr load(const Placeholder *array, std::vector<Expr> indices);

    const std::shared_ptr<ExprNode> &node() const { return node_; }
    bool valid() const { return node_ != nullptr; }

    /** Render for diagnostics, e.g. "A(i, j) + B(i, k)*C(k, j)". */
    std::string str() const;

  private:
    std::shared_ptr<ExprNode> node_;
};

Expr operator+(const Expr &a, const Expr &b);
Expr operator-(const Expr &a, const Expr &b);
Expr operator*(const Expr &a, const Expr &b);
Expr operator/(const Expr &a, const Expr &b);
Expr operator-(const Expr &a);

/** Elementwise maximum (used for ReLU in DNN workloads). */
Expr max(const Expr &a, const Expr &b);

/** Elementwise minimum. */
Expr min(const Expr &a, const Expr &b);

} // namespace pom::dsl

#endif // POM_DSL_EXPR_H
