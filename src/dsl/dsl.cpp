#include "dsl/dsl.h"

#include "support/diagnostics.h"

namespace pom::dsl {

Var::Var(std::string name, std::int64_t lo, std::int64_t hi)
    : name_(std::move(name)), lo_(lo), hi_(hi), has_range_(true)
{
    if (hi <= lo) {
        support::fatal("iterator '" + name_ + "' has empty range [" +
                       std::to_string(lo) + ", " + std::to_string(hi) + ")");
    }
}

Var::Var(std::string name) : name_(std::move(name)) {}

Placeholder::Placeholder(Function &func, std::string name,
                         std::vector<std::int64_t> shape, ScalarKind type)
    : func_(&func), name_(std::move(name)), shape_(std::move(shape)),
      type_(type)
{
    for (auto d : shape_) {
        if (d <= 0) {
            support::fatal("placeholder '" + name_ +
                           "' has non-positive extent");
        }
    }
    if (func.findPlaceholder(name_)) {
        support::fatal("duplicate placeholder name '" + name_ + "'");
    }
    func_->placeholders_.push_back(this);
}

void
Placeholder::partition(std::vector<std::int64_t> factors, std::string kind)
{
    if (factors.size() != shape_.size()) {
        support::fatal("partition of '" + name_ + "': " +
                       std::to_string(factors.size()) + " factors for a " +
                       std::to_string(shape_.size()) + "-d array");
    }
    if (kind != "cyclic" && kind != "block" && kind != "complete") {
        support::fatal("partition kind must be cyclic, block or complete");
    }
    for (size_t i = 0; i < factors.size(); ++i) {
        if (factors[i] < 1 || factors[i] > shape_[i]) {
            support::fatal("partition factor out of range for '" + name_ +
                           "' dim " + std::to_string(i));
        }
    }
    partition_factors_ = std::move(factors);
    partition_kind_ = std::move(kind);
}

void
Placeholder::clearPartition()
{
    partition_factors_.clear();
    partition_kind_.clear();
}

Compute::Compute(Function &func, std::string name, std::vector<Var> iters,
                 Expr rhs, Expr dest)
    : func_(&func), name_(std::move(name)), iters_(std::move(iters)),
      rhs_(std::move(rhs)), dest_(std::move(dest))
{
    if (iters_.empty())
        support::fatal("compute '" + name_ + "' has no iterators");
    for (const auto &it : iters_) {
        if (!it.hasRange()) {
            support::fatal("iterator '" + it.name() + "' of compute '" +
                           name_ + "' has no range");
        }
    }
    for (size_t a = 0; a < iters_.size(); ++a) {
        for (size_t b = a + 1; b < iters_.size(); ++b) {
            if (iters_[a].name() == iters_[b].name()) {
                support::fatal("duplicate iterator '" + iters_[a].name() +
                               "' in compute '" + name_ + "'");
            }
        }
    }
    if (!rhs_.valid() || !dest_.valid())
        support::fatal("compute '" + name_ + "' has an invalid expression");
    if (dest_.node()->kind != ExprNode::Kind::Load) {
        support::fatal("destination of compute '" + name_ +
                       "' must be a placeholder access");
    }
    if (func.findCompute(name_))
        support::fatal("duplicate compute name '" + name_ + "'");
    func_->computes_.push_back(this);
}

Compute &
Compute::interchange(const Var &i, const Var &j)
{
    directives_.push_back(
        Directive{Directive::Kind::Interchange, {i.name(), j.name()},
                  {}, {}, nullptr});
    return *this;
}

Compute &
Compute::split(const Var &i, std::int64_t factor, const Var &i0,
               const Var &i1)
{
    if (factor < 2)
        support::fatal("split factor must be >= 2");
    directives_.push_back(
        Directive{Directive::Kind::Split, {i.name()}, {factor},
                  {i0.name(), i1.name()}, nullptr});
    return *this;
}

Compute &
Compute::tile(const Var &i, const Var &j, std::int64_t t1, std::int64_t t2,
              const Var &i0, const Var &j0, const Var &i1, const Var &j1)
{
    if (t1 < 2 || t2 < 2)
        support::fatal("tile factors must be >= 2");
    directives_.push_back(
        Directive{Directive::Kind::Tile, {i.name(), j.name()}, {t1, t2},
                  {i0.name(), j0.name(), i1.name(), j1.name()}, nullptr});
    return *this;
}

Compute &
Compute::skew(const Var &i, const Var &j, std::int64_t f, const Var &ip,
              const Var &jp)
{
    if (f == 0)
        support::fatal("skew factor must be non-zero");
    directives_.push_back(
        Directive{Directive::Kind::Skew, {i.name(), j.name()}, {f},
                  {ip.name(), jp.name()}, nullptr});
    return *this;
}

Compute &
Compute::after(const Compute &other, const Var &level)
{
    directives_.push_back(
        Directive{Directive::Kind::After, {level.name()}, {}, {}, &other});
    return *this;
}

Compute &
Compute::after(const Compute &other)
{
    directives_.push_back(
        Directive{Directive::Kind::After, {}, {}, {}, &other});
    return *this;
}

Compute &
Compute::fuse(const Compute &other)
{
    directives_.push_back(
        Directive{Directive::Kind::Fuse, {}, {}, {}, &other});
    return *this;
}

Compute &
Compute::pipeline(const Var &i, int ii)
{
    if (ii < 1)
        support::fatal("pipeline II must be >= 1");
    directives_.push_back(
        Directive{Directive::Kind::Pipeline, {i.name()}, {ii}, {},
                  nullptr});
    return *this;
}

Compute &
Compute::unroll(const Var &i, std::int64_t factor)
{
    if (factor < 0)
        support::fatal("unroll factor must be >= 0 (0 = full)");
    directives_.push_back(
        Directive{Directive::Kind::Unroll, {i.name()}, {factor}, {},
                  nullptr});
    return *this;
}

const Placeholder *
Function::findPlaceholder(const std::string &name) const
{
    for (const auto *p : placeholders_) {
        if (p->name() == name)
            return p;
    }
    return nullptr;
}

Placeholder *
Function::findPlaceholderMut(const std::string &name)
{
    for (auto *p : placeholders_) {
        if (p->name() == name)
            return p;
    }
    return nullptr;
}

Compute *
Function::findCompute(const std::string &name) const
{
    for (auto *c : computes_) {
        if (c->name() == name)
            return c;
    }
    return nullptr;
}

} // namespace pom::dsl
