#include "dsl/expr.h"

#include <sstream>

#include "dsl/dsl.h"
#include "support/diagnostics.h"

namespace pom::dsl {

Expr::Expr(double constant)
{
    auto n = std::make_shared<ExprNode>();
    n->kind = ExprNode::Kind::Const;
    n->value = constant;
    node_ = std::move(n);
}

Expr::Expr(int constant) : Expr(static_cast<double>(constant)) {}

Expr
Expr::iter(const std::string &name)
{
    auto n = std::make_shared<ExprNode>();
    n->kind = ExprNode::Kind::Iter;
    n->iterName = name;
    return Expr(std::move(n));
}

Expr
Expr::load(const Placeholder *array, std::vector<Expr> indices)
{
    POM_ASSERT(array != nullptr, "load from null placeholder");
    auto n = std::make_shared<ExprNode>();
    n->kind = ExprNode::Kind::Load;
    n->array = array;
    for (auto &e : indices) {
        POM_ASSERT(e.valid(), "invalid index expression");
        n->indices.push_back(e.node());
    }
    return Expr(std::move(n));
}

namespace {

Expr
binary(BinOp op, const Expr &a, const Expr &b)
{
    POM_ASSERT(a.valid() && b.valid(), "invalid operand expression");
    auto n = std::make_shared<ExprNode>();
    n->kind = ExprNode::Kind::Binary;
    n->binOp = op;
    n->lhs = a.node();
    n->rhs = b.node();
    return Expr(std::move(n));
}

const char *
binOpSym(BinOp op)
{
    switch (op) {
      case BinOp::Add: return " + ";
      case BinOp::Sub: return " - ";
      case BinOp::Mul: return "*";
      case BinOp::Div: return "/";
      case BinOp::Max: return ", ";
      case BinOp::Min: return ", ";
    }
    return "?";
}

void
printNode(const ExprNode &n, std::ostringstream &os)
{
    switch (n.kind) {
      case ExprNode::Kind::Const:
        os << n.value;
        break;
      case ExprNode::Kind::Iter:
        os << n.iterName;
        break;
      case ExprNode::Kind::Load:
        os << n.array->name() << "(";
        for (size_t i = 0; i < n.indices.size(); ++i) {
            if (i)
                os << ", ";
            printNode(*n.indices[i], os);
        }
        os << ")";
        break;
      case ExprNode::Kind::Binary:
        if (n.binOp == BinOp::Max)
            os << "max(";
        else if (n.binOp == BinOp::Min)
            os << "min(";
        else
            os << "(";
        printNode(*n.lhs, os);
        os << binOpSym(n.binOp);
        printNode(*n.rhs, os);
        os << ")";
        break;
      case ExprNode::Kind::Unary:
        switch (n.unOp) {
          case UnOp::Neg: os << "-("; break;
          case UnOp::Sqrt: os << "sqrt("; break;
          case UnOp::Exp: os << "exp("; break;
        }
        printNode(*n.lhs, os);
        os << ")";
        break;
    }
}

} // namespace

Expr
operator+(const Expr &a, const Expr &b)
{
    return binary(BinOp::Add, a, b);
}

Expr
operator-(const Expr &a, const Expr &b)
{
    return binary(BinOp::Sub, a, b);
}

Expr
operator*(const Expr &a, const Expr &b)
{
    return binary(BinOp::Mul, a, b);
}

Expr
operator/(const Expr &a, const Expr &b)
{
    return binary(BinOp::Div, a, b);
}

Expr
operator-(const Expr &a)
{
    POM_ASSERT(a.valid(), "invalid operand expression");
    auto n = std::make_shared<ExprNode>();
    n->kind = ExprNode::Kind::Unary;
    n->unOp = UnOp::Neg;
    n->lhs = a.node();
    return Expr(std::move(n));
}

Expr
max(const Expr &a, const Expr &b)
{
    return binary(BinOp::Max, a, b);
}

Expr
min(const Expr &a, const Expr &b)
{
    return binary(BinOp::Min, a, b);
}

std::string
Expr::str() const
{
    if (!node_)
        return "<invalid>";
    std::ostringstream os;
    printNode(*node_, os);
    return os.str();
}

} // namespace pom::dsl
