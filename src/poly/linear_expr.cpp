#include "poly/linear_expr.h"

#include <sstream>

#include "support/diagnostics.h"
#include "support/math_util.h"

namespace pom::poly {

LinearExpr
LinearExpr::dim(size_t num_dims, size_t index)
{
    POM_ASSERT(index < num_dims, "dim index out of range");
    LinearExpr e(num_dims);
    e.coeffs_[index] = 1;
    return e;
}

LinearExpr
LinearExpr::constant(size_t num_dims, std::int64_t value)
{
    LinearExpr e(num_dims);
    e.constant_ = value;
    return e;
}

bool
LinearExpr::isZero() const
{
    return isConstant() && constant_ == 0;
}

bool
LinearExpr::isConstant() const
{
    for (auto c : coeffs_) {
        if (c != 0)
            return false;
    }
    return true;
}

bool
LinearExpr::isSingleDim(size_t *index) const
{
    if (constant_ != 0)
        return false;
    size_t found = coeffs_.size();
    for (size_t i = 0; i < coeffs_.size(); ++i) {
        if (coeffs_[i] == 0)
            continue;
        if (coeffs_[i] != 1 || found != coeffs_.size())
            return false;
        found = i;
    }
    if (found == coeffs_.size())
        return false;
    if (index)
        *index = found;
    return true;
}

LinearExpr
LinearExpr::operator+(const LinearExpr &o) const
{
    POM_ASSERT(numDims() == o.numDims(), "dim mismatch in +");
    LinearExpr r = *this;
    for (size_t i = 0; i < coeffs_.size(); ++i)
        r.coeffs_[i] += o.coeffs_[i];
    r.constant_ += o.constant_;
    return r;
}

LinearExpr
LinearExpr::operator-(const LinearExpr &o) const
{
    return *this + (-o);
}

LinearExpr
LinearExpr::operator-() const
{
    return scaled(-1);
}

LinearExpr
LinearExpr::scaled(std::int64_t factor) const
{
    LinearExpr r = *this;
    for (auto &c : r.coeffs_)
        c *= factor;
    r.constant_ *= factor;
    return r;
}

std::int64_t
LinearExpr::evaluate(const std::vector<std::int64_t> &point) const
{
    POM_ASSERT(point.size() == coeffs_.size(),
               "point dim mismatch in evaluate");
    std::int64_t v = constant_;
    for (size_t i = 0; i < coeffs_.size(); ++i)
        v += coeffs_[i] * point[i];
    return v;
}

LinearExpr
LinearExpr::substituted(size_t i, const LinearExpr &replacement) const
{
    POM_ASSERT(replacement.numDims() == numDims(),
               "dim mismatch in substitute");
    POM_ASSERT(replacement.coeff(i) == 0,
               "replacement must not reference the substituted dim");
    LinearExpr r = *this;
    std::int64_t c = r.coeffs_[i];
    r.coeffs_[i] = 0;
    return r + replacement.scaled(c);
}

LinearExpr
LinearExpr::withDimsInserted(size_t pos, size_t count) const
{
    POM_ASSERT(pos <= coeffs_.size(), "insert position out of range");
    LinearExpr r;
    r.coeffs_ = coeffs_;
    r.coeffs_.insert(r.coeffs_.begin() + pos, count, 0);
    r.constant_ = constant_;
    return r;
}

LinearExpr
LinearExpr::withDimRemoved(size_t i) const
{
    POM_ASSERT(i < coeffs_.size(), "remove index out of range");
    POM_ASSERT(coeffs_[i] == 0, "removing dim with non-zero coefficient");
    LinearExpr r = *this;
    r.coeffs_.erase(r.coeffs_.begin() + i);
    return r;
}

LinearExpr
LinearExpr::permuted(const std::vector<size_t> &perm) const
{
    POM_ASSERT(perm.size() == coeffs_.size(), "permutation size mismatch");
    LinearExpr r(coeffs_.size());
    for (size_t i = 0; i < coeffs_.size(); ++i)
        r.coeffs_[perm[i]] = coeffs_[i];
    r.constant_ = constant_;
    return r;
}

std::int64_t
LinearExpr::coeffGcd() const
{
    std::int64_t g = 0;
    for (auto c : coeffs_)
        g = support::gcd(g, c);
    return g;
}

std::string
LinearExpr::str(const std::vector<std::string> &dim_names) const
{
    POM_ASSERT(dim_names.size() == coeffs_.size(),
               "dim name count mismatch");
    std::ostringstream os;
    bool first = true;
    for (size_t i = 0; i < coeffs_.size(); ++i) {
        std::int64_t c = coeffs_[i];
        if (c == 0)
            continue;
        if (first) {
            if (c == -1)
                os << "-";
            else if (c != 1)
                os << c << "*";
        } else {
            os << (c > 0 ? " + " : " - ");
            std::int64_t a = c > 0 ? c : -c;
            if (a != 1)
                os << a << "*";
        }
        os << dim_names[i];
        first = false;
    }
    if (first) {
        os << constant_;
    } else if (constant_ != 0) {
        os << (constant_ > 0 ? " + " : " - ")
           << (constant_ > 0 ? constant_ : -constant_);
    }
    return os.str();
}

} // namespace pom::poly
