/**
 * @file
 * Linear (affine) expressions over a fixed number of dimensions.
 *
 * A LinearExpr represents  sum_i coeff[i] * dim_i + constant  with 64-bit
 * integer coefficients. It is the basic building block for constraints,
 * access functions and schedules in the polyhedral IR. Expressions do not
 * own dimension names; the enclosing IntegerSet / AffineMap provides the
 * space and all operations assert matching dimensionality.
 */

#ifndef POM_POLY_LINEAR_EXPR_H
#define POM_POLY_LINEAR_EXPR_H

#include <cstdint>
#include <string>
#include <vector>

namespace pom::poly {

/** An affine expression: coefficients over dims plus an integer constant. */
class LinearExpr
{
  public:
    LinearExpr() = default;

    /** Zero expression over @p num_dims dimensions. */
    explicit LinearExpr(size_t num_dims)
        : coeffs_(num_dims, 0), constant_(0)
    {}

    /** Expression with explicit coefficients and constant. */
    LinearExpr(std::vector<std::int64_t> coeffs, std::int64_t constant)
        : coeffs_(std::move(coeffs)), constant_(constant)
    {}

    /** The expression `dim_index` over @p num_dims dimensions. */
    static LinearExpr dim(size_t num_dims, size_t index);

    /** The constant expression @p value over @p num_dims dimensions. */
    static LinearExpr constant(size_t num_dims, std::int64_t value);

    size_t numDims() const { return coeffs_.size(); }

    std::int64_t coeff(size_t i) const { return coeffs_.at(i); }
    void setCoeff(size_t i, std::int64_t v) { coeffs_.at(i) = v; }

    std::int64_t constantTerm() const { return constant_; }
    void setConstantTerm(std::int64_t v) { constant_ = v; }

    bool isZero() const;

    /** True iff all dimension coefficients are zero. */
    bool isConstant() const;

    /** True iff the expression is exactly one dimension (coeff 1). */
    bool isSingleDim(size_t *index = nullptr) const;

    LinearExpr operator+(const LinearExpr &o) const;
    LinearExpr operator-(const LinearExpr &o) const;
    LinearExpr operator-() const;
    LinearExpr scaled(std::int64_t factor) const;

    /** Evaluate at an integer point (size must equal numDims). */
    std::int64_t evaluate(const std::vector<std::int64_t> &point) const;

    /**
     * Replace dimension @p i by @p replacement (same dimensionality;
     * replacement must not itself use dimension i).
     */
    LinearExpr substituted(size_t i, const LinearExpr &replacement) const;

    /** Insert @p count zero-coefficient dims starting at @p pos. */
    LinearExpr withDimsInserted(size_t pos, size_t count) const;

    /** Remove dim @p i; its coefficient must be zero. */
    LinearExpr withDimRemoved(size_t i) const;

    /** Reorder dims: result coeff[perm[i]] = coeff[i]. */
    LinearExpr permuted(const std::vector<size_t> &perm) const;

    /** GCD of all non-zero dim coefficients (0 if expression constant). */
    std::int64_t coeffGcd() const;

    /** Render using @p dim_names, e.g. "2*i + j - 1". */
    std::string str(const std::vector<std::string> &dim_names) const;

    bool operator==(const LinearExpr &o) const = default;

  private:
    std::vector<std::int64_t> coeffs_;
    std::int64_t constant_ = 0;
};

} // namespace pom::poly

#endif // POM_POLY_LINEAR_EXPR_H
