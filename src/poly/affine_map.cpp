#include "poly/affine_map.h"

#include <sstream>

#include "support/diagnostics.h"

namespace pom::poly {

AffineMap::AffineMap(std::vector<std::string> domain_dims,
                     std::vector<LinearExpr> results)
    : domain_dims_(std::move(domain_dims)), results_(std::move(results))
{
    for (const auto &r : results_) {
        POM_ASSERT(r.numDims() == domain_dims_.size(),
                   "result dim mismatch in AffineMap");
    }
}

AffineMap
AffineMap::identity(std::vector<std::string> dims)
{
    std::vector<LinearExpr> results;
    results.reserve(dims.size());
    for (size_t i = 0; i < dims.size(); ++i)
        results.push_back(LinearExpr::dim(dims.size(), i));
    return AffineMap(std::move(dims), std::move(results));
}

void
AffineMap::setResult(size_t i, LinearExpr e)
{
    POM_ASSERT(e.numDims() == domain_dims_.size(),
               "result dim mismatch in setResult");
    results_.at(i) = std::move(e);
}

void
AffineMap::appendResult(LinearExpr e)
{
    POM_ASSERT(e.numDims() == domain_dims_.size(),
               "result dim mismatch in appendResult");
    results_.push_back(std::move(e));
}

std::vector<std::int64_t>
AffineMap::apply(const std::vector<std::int64_t> &point) const
{
    std::vector<std::int64_t> out;
    out.reserve(results_.size());
    for (const auto &r : results_)
        out.push_back(r.evaluate(point));
    return out;
}

AffineMap
AffineMap::compose(const AffineMap &inner) const
{
    POM_ASSERT(numDomainDims() == inner.numResults(),
               "compose arity mismatch");
    std::vector<LinearExpr> results;
    results.reserve(results_.size());
    for (const auto &r : results_) {
        LinearExpr e = LinearExpr::constant(inner.numDomainDims(),
                                            r.constantTerm());
        for (size_t i = 0; i < numDomainDims(); ++i)
            e = e + inner.result(i).scaled(r.coeff(i));
        results.push_back(e);
    }
    return AffineMap(inner.domain_dims_, std::move(results));
}

AffineMap
AffineMap::withDomainDimsInserted(size_t pos,
                                  std::vector<std::string> names) const
{
    AffineMap r = *this;
    r.domain_dims_.insert(r.domain_dims_.begin() + pos, names.begin(),
                          names.end());
    for (auto &res : r.results_)
        res = res.withDimsInserted(pos, names.size());
    return r;
}

AffineMap
AffineMap::withDomainDimRemoved(size_t i) const
{
    AffineMap r = *this;
    r.domain_dims_.erase(r.domain_dims_.begin() + i);
    for (auto &res : r.results_)
        res = res.withDimRemoved(i);
    return r;
}

AffineMap
AffineMap::withDomainDimSubstituted(size_t i,
                                    const LinearExpr &replacement) const
{
    AffineMap r = *this;
    for (auto &res : r.results_)
        res = res.substituted(i, replacement);
    return r;
}

AffineMap
AffineMap::withDomainPermuted(const std::vector<size_t> &perm) const
{
    AffineMap r = *this;
    r.domain_dims_.resize(domain_dims_.size());
    for (size_t i = 0; i < domain_dims_.size(); ++i)
        r.domain_dims_[perm[i]] = domain_dims_[i];
    for (auto &res : r.results_)
        res = res.permuted(perm);
    return r;
}

AffineMap
AffineMap::withDomainDimRenamed(size_t i, std::string name) const
{
    AffineMap r = *this;
    r.domain_dims_.at(i) = std::move(name);
    return r;
}

IntegerSet
AffineMap::image(const IntegerSet &domain,
                 std::vector<std::string> result_names) const
{
    POM_ASSERT(domain.numDims() == numDomainDims(),
               "image domain dim mismatch");
    POM_ASSERT(result_names.size() == numResults(),
               "image result name count mismatch");
    // Build a combined set over (domain dims, result dims) with
    // equalities result_j = results_[j](domain), then project out the
    // domain dims.
    size_t n = numDomainDims();
    size_t m = numResults();
    IntegerSet combined = domain.withDimsInserted(n, result_names);
    for (size_t j = 0; j < m; ++j) {
        LinearExpr eq = results_[j].withDimsInserted(n, m);
        eq = eq - LinearExpr::dim(n + m, n + j);
        combined.addEquality(eq);
    }
    for (size_t i = 0; i < n; ++i)
        combined = combined.projectOut(0);
    return combined;
}

std::string
AffineMap::str() const
{
    std::ostringstream os;
    os << "(";
    for (size_t i = 0; i < domain_dims_.size(); ++i) {
        if (i)
            os << ", ";
        os << domain_dims_[i];
    }
    os << ") -> (";
    for (size_t i = 0; i < results_.size(); ++i) {
        if (i)
            os << ", ";
        os << results_[i].str(domain_dims_);
    }
    os << ")";
    return os.str();
}

} // namespace pom::poly
