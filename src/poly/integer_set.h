/**
 * @file
 * Integer sets: conjunctions of affine equality / inequality constraints
 * over named dimensions. This is POM's stand-in for isl sets and supplies
 * the operations the paper's polyhedral IR performs: intersection,
 * projection (Fourier–Motzkin), emptiness, bound extraction for code
 * generation, and point enumeration for testing.
 *
 * Exactness: projection and emptiness use rational Fourier–Motzkin with
 * integer tightening of constraints (gcd normalization) and a gcd test on
 * equalities. This is exact for the domains POM manipulates (rectangular
 * domains, tiling decompositions with explicit `i = t*i0 + i1` equalities,
 * and unimodular skews), and conservative in general.
 */

#ifndef POM_POLY_INTEGER_SET_H
#define POM_POLY_INTEGER_SET_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "poly/linear_expr.h"

namespace pom::poly {

/** A single affine constraint: expr == 0 (equality) or expr >= 0. */
struct Constraint
{
    LinearExpr expr;
    bool isEq = false;

    bool operator==(const Constraint &) const = default;
};

/**
 * A bound on a dimension derived from a constraint:
 * lower bound means  dim >= ceilDiv(expr, divisor),
 * upper bound means  dim <= floorDiv(expr, divisor),
 * where expr only references other (outer) dimensions.
 */
struct Bound
{
    LinearExpr expr;
    std::int64_t divisor = 1;

    bool operator==(const Bound &) const = default;
};

/** Lower and upper bound lists for one dimension. */
struct DimBounds
{
    std::vector<Bound> lower;
    std::vector<Bound> upper;

    bool operator==(const DimBounds &) const = default;
};

/** A conjunction of affine constraints over named dimensions. */
class IntegerSet
{
  public:
    IntegerSet() = default;

    /** Unconstrained set (universe) over the given dimension names. */
    explicit IntegerSet(std::vector<std::string> dim_names)
        : dims_(std::move(dim_names))
    {}

    /** Rectangular set: lows[i] <= dim_i <= highs[i] (inclusive). */
    static IntegerSet box(std::vector<std::string> dim_names,
                          const std::vector<std::int64_t> &lows,
                          const std::vector<std::int64_t> &highs);

    size_t numDims() const { return dims_.size(); }
    const std::vector<std::string> &dimNames() const { return dims_; }
    const std::string &dimName(size_t i) const { return dims_.at(i); }

    /** Index of a dimension by name; fatal() if absent. */
    size_t dimIndex(const std::string &name) const;

    /** Index of a dimension by name, or nullopt. */
    std::optional<size_t> findDim(const std::string &name) const;

    const std::vector<Constraint> &constraints() const
    {
        return constraints_;
    }

    /** Add constraint expr == 0. */
    void addEquality(const LinearExpr &expr);

    /** Add constraint expr >= 0. */
    void addInequality(const LinearExpr &expr);

    /** Add constant bounds low <= dim_i <= high (inclusive). */
    void addDimBounds(size_t i, std::int64_t low, std::int64_t high);

    /** Intersect with another set over the same dimensions. */
    IntegerSet intersect(const IntegerSet &other) const;

    /** Insert new unconstrained dims at @p pos. */
    IntegerSet withDimsInserted(size_t pos,
                                std::vector<std::string> names) const;

    /** Remove dim @p i; all constraints must have zero coefficient on it. */
    IntegerSet withDimRemoved(size_t i) const;

    /** Rename dimension @p i. */
    IntegerSet withDimRenamed(size_t i, std::string name) const;

    /**
     * Reorder dims: dim i of this set becomes dim perm[i] of the result.
     */
    IntegerSet permuted(const std::vector<size_t> &perm) const;

    /**
     * Substitute dim @p i by @p replacement in every constraint (the dim
     * itself stays in the space but becomes unconstrained).
     */
    IntegerSet withDimSubstituted(size_t i,
                                  const LinearExpr &replacement) const;

    /**
     * Existentially project out dimension @p i (Fourier–Motzkin). The dim
     * is removed from the space.
     */
    IntegerSet projectOut(size_t i) const;

    /** Project onto the first @p k dims (drop the rest existentially). */
    IntegerSet projectOntoPrefix(size_t k) const;

    /** True if the set provably contains no integer points. */
    bool isEmpty() const;

    /** Exact membership test for a concrete point. */
    bool containsPoint(const std::vector<std::int64_t> &point) const;

    /**
     * Is @p c implied by this set? (i.e. adding its negation gives an
     * empty set). Used to elide redundant guards during AST generation.
     */
    bool implies(const Constraint &c) const;

    /**
     * Bounds of dim @p i in terms of dims 0..i-1 only: inner dims are
     * projected out first. Fatal if a resulting bound still references an
     * inner or the same dim (cannot happen after projection).
     */
    DimBounds boundsForCodegen(size_t i) const;

    /**
     * Enumerate all integer points in lexicographic order. Fatal if the
     * set is unbounded or has more than @p limit points.
     */
    std::vector<std::vector<std::int64_t>>
    enumerate(size_t limit = 1u << 22) const;

    /** Number of integer points (enumeration-based; small sets only). */
    size_t countPoints(size_t limit = 1u << 22) const;

    /** Lexicographically minimal point, if the set is non-empty. */
    std::optional<std::vector<std::int64_t>> lexMin() const;

    /** Normalize constraints: gcd-tighten, drop trivial, dedupe. */
    void simplify();

    /** Render as e.g. "{ [i, j] : 0 <= i <= 31 and i + j >= 2 }". */
    std::string str() const;

  private:
    friend class FourierMotzkin;

    std::vector<std::string> dims_;
    std::vector<Constraint> constraints_;
};

} // namespace pom::poly

#endif // POM_POLY_INTEGER_SET_H
