/**
 * @file
 * Multi-result affine maps: functions Z^n -> Z^m with affine components.
 * Used for array access relations (iteration vector -> array subscript)
 * and for schedules (iteration vector -> multidimensional time).
 */

#ifndef POM_POLY_AFFINE_MAP_H
#define POM_POLY_AFFINE_MAP_H

#include <cstdint>
#include <string>
#include <vector>

#include "poly/integer_set.h"
#include "poly/linear_expr.h"

namespace pom::poly {

/** An affine function from a named domain space to m result expressions. */
class AffineMap
{
  public:
    AffineMap() = default;

    AffineMap(std::vector<std::string> domain_dims,
              std::vector<LinearExpr> results);

    /** The identity map over @p dims. */
    static AffineMap identity(std::vector<std::string> dims);

    size_t numDomainDims() const { return domain_dims_.size(); }
    size_t numResults() const { return results_.size(); }

    const std::vector<std::string> &domainDims() const
    {
        return domain_dims_;
    }

    const LinearExpr &result(size_t i) const { return results_.at(i); }
    const std::vector<LinearExpr> &results() const { return results_; }
    void setResult(size_t i, LinearExpr e);

    /** Append one more result expression. */
    void appendResult(LinearExpr e);

    /** Apply to a concrete point. */
    std::vector<std::int64_t>
    apply(const std::vector<std::int64_t> &point) const;

    /** Composition: (this o inner)(x) = this(inner(x)). */
    AffineMap compose(const AffineMap &inner) const;

    /** Insert unconstrained domain dims at @p pos in every result. */
    AffineMap withDomainDimsInserted(size_t pos,
                                     std::vector<std::string> names) const;

    /** Remove domain dim @p i (must be unused by every result). */
    AffineMap withDomainDimRemoved(size_t i) const;

    /** Substitute domain dim @p i by @p replacement in every result. */
    AffineMap withDomainDimSubstituted(size_t i,
                                       const LinearExpr &replacement) const;

    /** Reorder domain dims: dim i becomes dim perm[i]. */
    AffineMap withDomainPermuted(const std::vector<size_t> &perm) const;

    /** Rename domain dim @p i. */
    AffineMap withDomainDimRenamed(size_t i, std::string name) const;

    /**
     * Image of @p domain (a set over this map's domain dims) under the
     * map, as a set over @p result_names. Computed exactly via an
     * existential product set and Fourier–Motzkin projection.
     */
    IntegerSet image(const IntegerSet &domain,
                     std::vector<std::string> result_names) const;

    /** Render as "(i, j) -> (i + 1, 2*j)". */
    std::string str() const;

    bool operator==(const AffineMap &o) const = default;

  private:
    std::vector<std::string> domain_dims_;
    std::vector<LinearExpr> results_;
};

} // namespace pom::poly

#endif // POM_POLY_AFFINE_MAP_H
