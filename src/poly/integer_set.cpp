#include "poly/integer_set.h"

#include <algorithm>
#include <sstream>

#include "support/diagnostics.h"
#include "support/math_util.h"

namespace pom::poly {

namespace {

using support::ceilDiv;
using support::floorDiv;
using support::gcd;

/**
 * Normalize a constraint in place. Returns false if the constraint is a
 * provably unsatisfiable constant (or integrality-violating equality), in
 * which case it is replaced by the canonical false constraint -1 >= 0.
 */
bool
normalizeConstraint(Constraint &c)
{
    std::int64_t g = c.expr.coeffGcd();
    if (g == 0) {
        // Constant constraint.
        std::int64_t k = c.expr.constantTerm();
        bool ok = c.isEq ? (k == 0) : (k >= 0);
        return ok;
    }
    if (c.isEq) {
        if (c.expr.constantTerm() % g != 0)
            return false; // No integer solutions (gcd test).
        if (g > 1) {
            LinearExpr e(c.expr.numDims());
            for (size_t i = 0; i < c.expr.numDims(); ++i)
                e.setCoeff(i, c.expr.coeff(i) / g);
            e.setConstantTerm(c.expr.constantTerm() / g);
            c.expr = e;
        }
    } else if (g > 1) {
        // Integer tightening: sum(a_i/g * d_i) >= ceil(-k/g), i.e. the
        // constant becomes floor(k/g).
        LinearExpr e(c.expr.numDims());
        for (size_t i = 0; i < c.expr.numDims(); ++i)
            e.setCoeff(i, c.expr.coeff(i) / g);
        e.setConstantTerm(floorDiv(c.expr.constantTerm(), g));
        c.expr = e;
    }
    return true;
}

/** True if the constraint is trivially satisfied (e.g. 3 >= 0). */
bool
isTriviallyTrue(const Constraint &c)
{
    if (!c.expr.isConstant())
        return false;
    std::int64_t k = c.expr.constantTerm();
    return c.isEq ? (k == 0) : (k >= 0);
}

/** The canonical false constraint over @p num_dims dims: -1 >= 0. */
Constraint
falseConstraint(size_t num_dims)
{
    return Constraint{LinearExpr::constant(num_dims, -1), false};
}

} // namespace

IntegerSet
IntegerSet::box(std::vector<std::string> dim_names,
                const std::vector<std::int64_t> &lows,
                const std::vector<std::int64_t> &highs)
{
    POM_ASSERT(dim_names.size() == lows.size() &&
               dim_names.size() == highs.size(),
               "box bound count mismatch");
    IntegerSet s(std::move(dim_names));
    for (size_t i = 0; i < lows.size(); ++i)
        s.addDimBounds(i, lows[i], highs[i]);
    return s;
}

size_t
IntegerSet::dimIndex(const std::string &name) const
{
    auto idx = findDim(name);
    if (!idx)
        support::fatal("unknown dimension '" + name + "' in " + str());
    return *idx;
}

std::optional<size_t>
IntegerSet::findDim(const std::string &name) const
{
    for (size_t i = 0; i < dims_.size(); ++i) {
        if (dims_[i] == name)
            return i;
    }
    return std::nullopt;
}

void
IntegerSet::addEquality(const LinearExpr &expr)
{
    POM_ASSERT(expr.numDims() == dims_.size(), "constraint dim mismatch");
    constraints_.push_back(Constraint{expr, true});
}

void
IntegerSet::addInequality(const LinearExpr &expr)
{
    POM_ASSERT(expr.numDims() == dims_.size(), "constraint dim mismatch");
    constraints_.push_back(Constraint{expr, false});
}

void
IntegerSet::addDimBounds(size_t i, std::int64_t low, std::int64_t high)
{
    // dim - low >= 0
    LinearExpr lb = LinearExpr::dim(dims_.size(), i);
    lb.setConstantTerm(-low);
    addInequality(lb);
    // high - dim >= 0
    LinearExpr ub = -LinearExpr::dim(dims_.size(), i);
    ub.setConstantTerm(high);
    addInequality(ub);
}

IntegerSet
IntegerSet::intersect(const IntegerSet &other) const
{
    POM_ASSERT(dims_ == other.dims_, "intersect over different spaces");
    IntegerSet r = *this;
    r.constraints_.insert(r.constraints_.end(), other.constraints_.begin(),
                          other.constraints_.end());
    return r;
}

IntegerSet
IntegerSet::withDimsInserted(size_t pos,
                             std::vector<std::string> names) const
{
    POM_ASSERT(pos <= dims_.size(), "insert position out of range");
    IntegerSet r;
    r.dims_ = dims_;
    r.dims_.insert(r.dims_.begin() + pos, names.begin(), names.end());
    for (const auto &c : constraints_) {
        r.constraints_.push_back(
            Constraint{c.expr.withDimsInserted(pos, names.size()), c.isEq});
    }
    return r;
}

IntegerSet
IntegerSet::withDimRemoved(size_t i) const
{
    IntegerSet r;
    r.dims_ = dims_;
    r.dims_.erase(r.dims_.begin() + i);
    for (const auto &c : constraints_)
        r.constraints_.push_back(Constraint{c.expr.withDimRemoved(i),
                                            c.isEq});
    return r;
}

IntegerSet
IntegerSet::withDimRenamed(size_t i, std::string name) const
{
    IntegerSet r = *this;
    r.dims_.at(i) = std::move(name);
    return r;
}

IntegerSet
IntegerSet::permuted(const std::vector<size_t> &perm) const
{
    POM_ASSERT(perm.size() == dims_.size(), "permutation size mismatch");
    IntegerSet r;
    r.dims_.resize(dims_.size());
    for (size_t i = 0; i < dims_.size(); ++i)
        r.dims_[perm[i]] = dims_[i];
    for (const auto &c : constraints_)
        r.constraints_.push_back(Constraint{c.expr.permuted(perm), c.isEq});
    return r;
}

IntegerSet
IntegerSet::withDimSubstituted(size_t i,
                               const LinearExpr &replacement) const
{
    IntegerSet r;
    r.dims_ = dims_;
    for (const auto &c : constraints_) {
        r.constraints_.push_back(
            Constraint{c.expr.substituted(i, replacement), c.isEq});
    }
    return r;
}

IntegerSet
IntegerSet::projectOut(size_t i) const
{
    POM_ASSERT(i < dims_.size(), "projectOut index out of range");
    IntegerSet work = *this;
    work.simplify();

    // Prefer eliminating through an equality that involves the dim.
    const Constraint *best_eq = nullptr;
    for (const auto &c : work.constraints_) {
        if (!c.isEq || c.expr.coeff(i) == 0)
            continue;
        std::int64_t a = c.expr.coeff(i);
        if (a == 1 || a == -1) {
            best_eq = &c;
            break;
        }
        if (!best_eq)
            best_eq = &c;
    }

    if (best_eq) {
        Constraint eq = *best_eq;
        std::int64_t a = eq.expr.coeff(i);
        LinearExpr rest = eq.expr;
        rest.setCoeff(i, 0);
        IntegerSet out;
        out.dims_ = work.dims_;
        if (a == 1 || a == -1) {
            // d_i = -rest / a = -a * rest (a is a unit).
            LinearExpr repl = rest.scaled(-a);
            for (const auto &c : work.constraints_) {
                if (c == eq)
                    continue;
                out.constraints_.push_back(
                    Constraint{c.expr.substituted(i, repl), c.isEq});
            }
        } else {
            // a * d_i = -rest with |a| > 1: scale each other constraint
            // by |a| and replace the scaled term. This preserves integer
            // solutions of the remaining system (the divisibility
            // condition |a| divides rest is dropped -> rational
            // relaxation for this case).
            std::int64_t abs_a = a > 0 ? a : -a;
            std::int64_t sign_a = a > 0 ? 1 : -1;
            for (const auto &c : work.constraints_) {
                if (c == eq)
                    continue;
                std::int64_t b = c.expr.coeff(i);
                if (b == 0) {
                    out.constraints_.push_back(c);
                    continue;
                }
                LinearExpr scaled = c.expr.scaled(abs_a);
                scaled.setCoeff(i, 0);
                // b*|a|*d_i == (b*sign_a)*(a*d_i) == (b*sign_a)*(-rest)
                scaled = scaled + rest.scaled(-b * sign_a);
                out.constraints_.push_back(Constraint{scaled, c.isEq});
            }
        }
        IntegerSet result = out.withDimRemoved(i);
        result.simplify();
        return result;
    }

    // Fourier-Motzkin on inequalities.
    std::vector<Constraint> lowers, uppers, others;
    for (const auto &c : work.constraints_) {
        std::int64_t a = c.expr.coeff(i);
        POM_ASSERT(!c.isEq || a == 0, "equality not eliminated");
        if (a == 0)
            others.push_back(c);
        else if (a > 0)
            lowers.push_back(c);
        else
            uppers.push_back(c);
    }
    IntegerSet out;
    out.dims_ = work.dims_;
    out.constraints_ = others;
    for (const auto &l : lowers) {
        for (const auto &u : uppers) {
            std::int64_t a = l.expr.coeff(i);
            std::int64_t b = -u.expr.coeff(i);
            LinearExpr combined = l.expr.scaled(b) + u.expr.scaled(a);
            POM_ASSERT(combined.coeff(i) == 0, "FM combination failed");
            out.constraints_.push_back(Constraint{combined, false});
        }
    }
    IntegerSet result = out.withDimRemoved(i);
    result.simplify();
    return result;
}

IntegerSet
IntegerSet::projectOntoPrefix(size_t k) const
{
    POM_ASSERT(k <= dims_.size(), "prefix larger than space");
    IntegerSet r = *this;
    while (r.numDims() > k)
        r = r.projectOut(r.numDims() - 1);
    return r;
}

bool
IntegerSet::isEmpty() const
{
    IntegerSet work = *this;
    work.simplify();
    auto hasFalse = [](const IntegerSet &s) {
        for (const auto &c : s.constraints()) {
            if (!c.expr.isConstant())
                continue;
            std::int64_t k = c.expr.constantTerm();
            if (c.isEq ? (k != 0) : (k < 0))
                return true;
        }
        return false;
    };
    if (hasFalse(work))
        return true;
    while (work.numDims() > 0) {
        work = work.projectOut(work.numDims() - 1);
        if (hasFalse(work))
            return true;
    }
    return false;
}

bool
IntegerSet::containsPoint(const std::vector<std::int64_t> &point) const
{
    POM_ASSERT(point.size() == dims_.size(), "point dim mismatch");
    for (const auto &c : constraints_) {
        std::int64_t v = c.expr.evaluate(point);
        if (c.isEq ? (v != 0) : (v < 0))
            return false;
    }
    return true;
}

bool
IntegerSet::implies(const Constraint &c) const
{
    POM_ASSERT(c.expr.numDims() == dims_.size(), "constraint dim mismatch");
    auto impliesIneq = [this](const LinearExpr &expr) {
        // Implied iff (this AND expr <= -1) is empty.
        IntegerSet test = *this;
        LinearExpr neg = -expr;
        neg.setConstantTerm(neg.constantTerm() - 1);
        test.addInequality(neg);
        return test.isEmpty();
    };
    if (c.isEq)
        return impliesIneq(c.expr) && impliesIneq(-c.expr);
    return impliesIneq(c.expr);
}

DimBounds
IntegerSet::boundsForCodegen(size_t i) const
{
    IntegerSet proj = projectOntoPrefix(i + 1);
    proj.simplify();
    DimBounds bounds;
    for (const auto &c : proj.constraints()) {
        std::int64_t a = c.expr.coeff(i);
        if (a == 0)
            continue;
        for (size_t d = i + 1; d < proj.numDims(); ++d) {
            POM_ASSERT(c.expr.coeff(d) == 0,
                       "bound references inner dim after projection");
        }
        LinearExpr rest = c.expr;
        rest.setCoeff(i, 0);
        if (a > 0 || c.isEq) {
            // a*d_i + rest >= 0 (a>0)  =>  d_i >= ceil(-rest / a)
            std::int64_t div = a > 0 ? a : -a;
            LinearExpr num = (a > 0) ? -rest : rest;
            bounds.lower.push_back(Bound{num, div});
        }
        if (a < 0 || c.isEq) {
            // -b*d_i + rest >= 0 (b>0)  =>  d_i <= floor(rest / b)
            std::int64_t div = a < 0 ? -a : a;
            LinearExpr num = (a < 0) ? rest : -rest;
            bounds.upper.push_back(Bound{num, div});
        }
    }
    return bounds;
}

std::vector<std::vector<std::int64_t>>
IntegerSet::enumerate(size_t limit) const
{
    std::vector<std::vector<std::int64_t>> points;
    if (numDims() == 0) {
        if (containsPoint({}))
            points.push_back({});
        return points;
    }

    std::vector<DimBounds> per_dim;
    per_dim.reserve(numDims());
    for (size_t i = 0; i < numDims(); ++i)
        per_dim.push_back(boundsForCodegen(i));

    std::vector<std::int64_t> prefix(numDims(), 0);
    auto evalBounds = [&](size_t level, std::int64_t &lo, std::int64_t &hi) {
        const DimBounds &b = per_dim[level];
        if (b.lower.empty() || b.upper.empty()) {
            support::fatal("enumerate() on unbounded set: " + str());
        }
        std::vector<std::int64_t> pt(prefix.begin(),
                                     prefix.begin() + level + 1);
        pt[level] = 0;
        bool first = true;
        for (const auto &bound : b.lower) {
            std::int64_t v = ceilDiv(bound.expr.evaluate(pt), bound.divisor);
            lo = first ? v : std::max(lo, v);
            first = false;
        }
        first = true;
        for (const auto &bound : b.upper) {
            std::int64_t v = floorDiv(bound.expr.evaluate(pt),
                                      bound.divisor);
            hi = first ? v : std::min(hi, v);
            first = false;
        }
    };

    // Iterative depth-first enumeration.
    struct Frame { std::int64_t cur, hi; };
    std::vector<Frame> stack;
    size_t level = 0;
    std::int64_t lo = 0, hi = 0;
    evalBounds(0, lo, hi);
    stack.push_back(Frame{lo, hi});
    prefix[0] = lo;
    while (!stack.empty()) {
        level = stack.size() - 1;
        if (stack.back().cur > stack.back().hi) {
            stack.pop_back();
            if (!stack.empty()) {
                ++stack.back().cur;
                prefix[stack.size() - 1] = stack.back().cur;
            }
            continue;
        }
        prefix[level] = stack.back().cur;
        if (level + 1 == numDims()) {
            if (containsPoint(prefix)) {
                points.push_back(prefix);
                POM_ASSERT(points.size() <= limit,
                           "enumerate() exceeded point limit");
            }
            ++stack.back().cur;
        } else {
            evalBounds(level + 1, lo, hi);
            stack.push_back(Frame{lo, hi});
            prefix[level + 1] = lo;
        }
    }
    return points;
}

size_t
IntegerSet::countPoints(size_t limit) const
{
    return enumerate(limit).size();
}

std::optional<std::vector<std::int64_t>>
IntegerSet::lexMin() const
{
    auto points = enumerate();
    if (points.empty())
        return std::nullopt;
    return points.front();
}

void
IntegerSet::simplify()
{
    std::vector<Constraint> kept;
    for (auto &c : constraints_) {
        if (!normalizeConstraint(c)) {
            constraints_.clear();
            constraints_.push_back(falseConstraint(dims_.size()));
            return;
        }
        if (isTriviallyTrue(c))
            continue;
        if (std::find(kept.begin(), kept.end(), c) == kept.end())
            kept.push_back(c);
    }
    constraints_ = std::move(kept);
}

std::string
IntegerSet::str() const
{
    std::ostringstream os;
    os << "{ [";
    for (size_t i = 0; i < dims_.size(); ++i) {
        if (i)
            os << ", ";
        os << dims_[i];
    }
    os << "]";
    if (!constraints_.empty()) {
        os << " : ";
        for (size_t i = 0; i < constraints_.size(); ++i) {
            if (i)
                os << " and ";
            os << constraints_[i].expr.str(dims_)
               << (constraints_[i].isEq ? " = 0" : " >= 0");
        }
    }
    os << " }";
    return os.str();
}

} // namespace pom::poly
