#include "poly/dependence.h"

#include <sstream>

#include "support/diagnostics.h"
#include "support/math_util.h"

namespace pom::poly {

const char *
directionStr(Direction d)
{
    switch (d) {
      case Direction::Lt: return "<";
      case Direction::Eq: return "=";
      case Direction::Gt: return ">";
      case Direction::Star: return "*";
    }
    return "?";
}

bool
Dependence::isUniform() const
{
    for (size_t i = 0; i < distLo.size(); ++i) {
        if (!distLo[i] || !distHi[i] || *distLo[i] != *distHi[i])
            return false;
    }
    return true;
}

std::string
Dependence::str() const
{
    std::ostringstream os;
    os << array << "@level" << level << " d=(";
    for (size_t i = 0; i < distLo.size(); ++i) {
        if (i)
            os << ", ";
        if (distLo[i] && distHi[i] && *distLo[i] == *distHi[i])
            os << *distLo[i];
        else
            os << directionStr(direction[i]);
    }
    os << ")";
    return os.str();
}

std::pair<std::optional<std::int64_t>, std::optional<std::int64_t>>
exprRange(const IntegerSet &set, const LinearExpr &expr)
{
    size_t n = set.numDims();
    POM_ASSERT(expr.numDims() == n, "exprRange dim mismatch");
    IntegerSet work = set.withDimsInserted(n, {"__range"});
    LinearExpr eq = expr.withDimsInserted(n, 1) -
                    LinearExpr::dim(n + 1, n);
    work.addEquality(eq);
    for (size_t i = 0; i < n; ++i)
        work = work.projectOut(0);
    work.simplify();

    std::optional<std::int64_t> lo, hi;
    for (const auto &c : work.constraints()) {
        std::int64_t a = c.expr.coeff(0);
        std::int64_t k = c.expr.constantTerm();
        if (a == 0)
            continue;
        if (a > 0 || c.isEq) {
            std::int64_t div = a > 0 ? a : -a;
            std::int64_t num = a > 0 ? -k : k;
            std::int64_t v = support::ceilDiv(num, div);
            lo = lo ? std::max(*lo, v) : v;
        }
        if (a < 0 || c.isEq) {
            std::int64_t div = a < 0 ? -a : a;
            std::int64_t num = a < 0 ? k : -k;
            std::int64_t v = support::floorDiv(num, div);
            hi = hi ? std::min(*hi, v) : v;
        }
    }
    return {lo, hi};
}

namespace {

/** Derive a direction entry from a distance range. */
Direction
rangeDirection(std::optional<std::int64_t> lo, std::optional<std::int64_t> hi)
{
    if (lo && hi && *lo == 0 && *hi == 0)
        return Direction::Eq;
    if (lo && *lo > 0)
        return Direction::Lt; // sink iterates after source
    if (hi && *hi < 0)
        return Direction::Gt;
    return Direction::Star;
}

/**
 * Build the dependence polytope over (s_0..s_{n-1}, t_0..t_{n-1}) for a
 * given access pair and carrying level, or nullopt if empty.
 */
std::optional<IntegerSet>
dependencePolytope(const IntegerSet &domain, const Access &src,
                   const Access &dst, size_t level)
{
    size_t n = domain.numDims();
    std::vector<std::string> t_names;
    t_names.reserve(n);
    for (size_t i = 0; i < n; ++i)
        t_names.push_back("t_" + domain.dimName(i));

    // Source copy over 2n dims (source dims first, then the t_* dims).
    IntegerSet dep = domain.withDimsInserted(n, t_names);
    // Target copy: same domain constraints shifted onto the t_* dims.
    {
        IntegerSet tgt = domain.withDimsInserted(0, domain.dimNames());
        for (size_t i = 0; i < n; ++i)
            tgt = tgt.withDimRenamed(n + i, t_names[i]);
        dep = dep.intersect(tgt);
    }

    // Access equality: src.map(s) == dst.map(t).
    size_t m = src.map.numResults();
    POM_ASSERT(m == dst.map.numResults(), "access arity mismatch");
    for (size_t j = 0; j < m; ++j) {
        LinearExpr src_e = src.map.result(j).withDimsInserted(n, n);
        LinearExpr dst_e = dst.map.result(j).withDimsInserted(0, n);
        dep.addEquality(src_e - dst_e);
    }

    // Lexicographic precedence at the carrying level.
    for (size_t k = 0; k < level; ++k) {
        dep.addEquality(LinearExpr::dim(2 * n, n + k) -
                        LinearExpr::dim(2 * n, k));
    }
    // t_level - s_level - 1 >= 0
    LinearExpr strict = LinearExpr::dim(2 * n, n + level) -
                        LinearExpr::dim(2 * n, level);
    strict.setConstantTerm(-1);
    dep.addInequality(strict);

    if (dep.isEmpty())
        return std::nullopt;
    return dep;
}

} // namespace

std::vector<Dependence>
analyzeSelfDependences(const IntegerSet &domain,
                       const std::vector<Access> &accesses)
{
    std::vector<Dependence> deps;
    size_t n = domain.numDims();
    if (n == 0)
        return deps;

    for (size_t a = 0; a < accesses.size(); ++a) {
        for (size_t b = 0; b < accesses.size(); ++b) {
            const Access &src = accesses[a];
            const Access &dst = accesses[b];
            if (src.array != dst.array)
                continue;
            if (!src.isWrite && !dst.isWrite)
                continue; // read-read is not a dependence
            for (size_t level = 0; level < n; ++level) {
                auto poly = dependencePolytope(domain, src, dst, level);
                if (!poly)
                    continue;
                Dependence d;
                d.array = src.array;
                d.srcAccess = a;
                d.dstAccess = b;
                d.level = level;
                d.distLo.resize(n);
                d.distHi.resize(n);
                d.direction.resize(n);
                for (size_t k = 0; k < n; ++k) {
                    LinearExpr delta = LinearExpr::dim(2 * n, n + k) -
                                       LinearExpr::dim(2 * n, k);
                    auto [lo, hi] = exprRange(*poly, delta);
                    d.distLo[k] = lo;
                    d.distHi[k] = hi;
                    d.direction[k] = rangeDirection(lo, hi);
                }
                d.carriedDistance =
                    d.distLo[level] ? std::max<std::int64_t>(
                                          1, *d.distLo[level])
                                    : 1;
                deps.push_back(std::move(d));
            }
        }
    }
    return deps;
}

bool
producesFor(const std::vector<Access> &producer,
            const std::vector<Access> &consumer)
{
    for (const auto &w : producer) {
        if (!w.isWrite)
            continue;
        for (const auto &r : consumer) {
            if (r.array == w.array)
                return true;
        }
    }
    return false;
}

} // namespace pom::poly
