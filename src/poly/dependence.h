/**
 * @file
 * Exact polyhedral dependence analysis: distance and direction vectors
 * between dependent statement instances (paper §II.A and §V.A).
 *
 * For a statement with iteration domain D and accesses {A_k}, a
 * loop-carried dependence between a write W and an access R of the same
 * array exists at loop level l iff the set
 *
 *   { (s, t) : s, t in D,  W(s) = R(t),  s_k = t_k for k < l,
 *     t_l >= s_l + 1 }
 *
 * is non-empty. The distance vector entries are the ranges of t_k - s_k
 * over that set; an entry is "exact" when its range collapses to one
 * value (e.g. (0, 0, 1) for the GEMM reduction in Fig. 8).
 */

#ifndef POM_POLY_DEPENDENCE_H
#define POM_POLY_DEPENDENCE_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "poly/affine_map.h"
#include "poly/integer_set.h"

namespace pom::poly {

/** One array access inside a statement. */
struct Access
{
    std::string array;
    AffineMap map;     ///< iteration vector -> array subscripts
    bool isWrite = false;
};

/** Per-dimension dependence direction ('<', '=', '>' or unknown). */
enum class Direction { Lt, Eq, Gt, Star };

/** Printable form of a direction entry. */
const char *directionStr(Direction d);

/** One dependence carried at a specific loop level. */
struct Dependence
{
    std::string array;        ///< array through which the dependence flows
    size_t srcAccess = 0;     ///< index of the (write) source access
    size_t dstAccess = 0;     ///< index of the sink access
    size_t level = 0;         ///< loop level carrying the dependence

    /** Per-dimension distance range; entry is nullopt if unbounded. */
    std::vector<std::optional<std::int64_t>> distLo;
    std::vector<std::optional<std::int64_t>> distHi;

    /** Direction vector derived from the distance ranges. */
    std::vector<Direction> direction;

    /**
     * Minimal iteration distance at the carrying level (>= 1). This is
     * the denominator of the recurrence-MII bound when the level is
     * pipelined.
     */
    std::int64_t carriedDistance = 1;

    /** True when every distance entry is a single constant. */
    bool isUniform() const;

    std::string str() const;
};

/**
 * Range (min, max) of an affine expression over an integer set. Either
 * bound is nullopt when the set leaves the expression unbounded. The set
 * must be non-empty.
 */
std::pair<std::optional<std::int64_t>, std::optional<std::int64_t>>
exprRange(const IntegerSet &set, const LinearExpr &expr);

/**
 * All loop-carried self-dependences of a statement: write->read,
 * write->write and read->write pairs over the same array, at every
 * carrying level.
 *
 * @param domain The statement's iteration domain.
 * @param accesses Its array accesses (maps over the domain dims).
 */
std::vector<Dependence>
analyzeSelfDependences(const IntegerSet &domain,
                       const std::vector<Access> &accesses);

/**
 * Does a dependence flow from a (write) access of @p producer to any
 * access of @p consumer? Used to build the coarse dependence graph edges
 * from load/store sets (paper Fig. 8, step 1-2).
 */
bool producesFor(const std::vector<Access> &producer,
                 const std::vector<Access> &consumer);

} // namespace pom::poly

#endif // POM_POLY_DEPENDENCE_H
