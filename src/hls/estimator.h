/**
 * @file
 * The HLS synthesis estimator: POM's substitute for Vitis HLS synthesis
 * reports. Implements the classic analytical model the paper's DSE
 * relies on (§VI.B, "the in-house model from [35][38]" = ScaleHLS /
 * COMBA):
 *
 *  - Pipelined loops: II = max(target, recurrence-MII, resource-MII).
 *    recMII = ceil(dependence latency / dependence distance) over the
 *    loop-carried dependences inside the pipeline; resMII from memory
 *    ports after array partitioning (dual-port banks).
 *  - Unrolled loops replicate operator instances (spatial copies);
 *    fully-unrolled reduction loops become operator chains that extend
 *    the recurrence latency.
 *  - Sequential loop nests either share operator hardware (resource
 *    reuse, POM's strategy for DNNs, Fig. 13) or instantiate distinct
 *    stages (dataflow, ScaleHLS's strategy).
 *
 * Latency is reported in cycles at the device's target clock; power is
 * a linear proxy over the used resources.
 */

#ifndef POM_HLS_ESTIMATOR_H
#define POM_HLS_ESTIMATOR_H

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "dsl/dsl.h"
#include "hls/device.h"
#include "lower/lower.h"

namespace pom::hls {

/**
 * An array-partition assignment: array name -> per-dimension factors.
 * An absent array (or all-ones factors) is unpartitioned; any factor
 * greater than one means cyclic banking, matching what the DSE's
 * applyPartitions() writes onto the function's placeholders.
 */
using PartitionPlan = std::map<std::string, std::vector<std::int64_t>>;

/** Per-pipelined-loop synthesis details. */
struct LoopReport
{
    std::string iterName;
    std::int64_t trip = 1;          ///< sequential iterations (flattened)
    std::optional<int> targetII;
    int achievedII = 1;
    std::uint64_t latency = 0;
    int recMII = 1;
    int resMII = 1;
};

/** The synthesis report for one design point. */
struct SynthesisReport
{
    std::uint64_t latencyCycles = 0;
    Resources resources;
    double powerW = 0.0;
    std::vector<LoopReport> loops; ///< pipelined loops, program order

    /**
     * Latency of each top-level loop nest (leader statement name ->
     * cycles), used by the DSE's bottleneck selection (§VI.B).
     */
    std::vector<std::pair<std::string, std::uint64_t>> nestLatencies;

    /** Worst achieved II across pipelined loops (1 if none). */
    int worstII() const;

    /** latency(base) / latency(this). */
    double speedupOver(const SynthesisReport &base) const;

    /** One-line summary with utilization percentages. */
    std::string str(const Device &device) const;
};

/** How sequential loop nests map onto hardware. */
enum class SharingMode
{
    Reuse,    ///< nests time-share operator hardware (POM)
    Dataflow, ///< each nest is a distinct pipeline stage (ScaleHLS DNN)
};

/**
 * The synthesis contribution of one top-level AST node (= one DSE
 * unit's loop nest). Holds only what the node's own subtree
 * determines: its latency, its compute resources, and its pipelined
 * loops. Everything cross-node -- the sharing fold, on-chip memory,
 * the power proxy -- lives in combineNodeReports(), so a NodeReport is
 * valid under any device budget and sharing mode and can be memoized
 * across candidate design points that keep the node's schedule.
 */
struct NodeReport
{
    std::string nest; ///< leader statement name ("?" when none)
    std::uint64_t latencyCycles = 0;
    Resources resources;           ///< compute only, no memory fold
    std::vector<LoopReport> loops; ///< pipelined loops, program order
};

/**
 * Operator mix and critical path of one statement body. Public so the
 * admissible-bound module counts operators with the exact same walk
 * the estimator uses.
 */
struct OpMix
{
    int fadd = 0, fmul = 0, fdiv = 0, fcmp = 0;
    int iadd = 0, imul = 0;
    int loads = 0, stores = 0;
    int depth = 0; ///< critical path through the body, in cycles
    std::map<std::string, int> accessesPerArray;
};

/** Operator mix of one compute statement (destination store included). */
OpMix statementOpMix(const dsl::Compute &compute, const OpCosts &costs);

/** Effective banking of one array under the estimator's rules. */
struct ArrayBanking
{
    std::int64_t banks = 1;
    bool complete = false;
};

/**
 * The banking the estimator applies to @p placeholder: the override
 * plan when non-null (absent arrays stay unbanked; plan partitions are
 * always cyclic), else the placeholder's own partition directives.
 */
ArrayBanking effectiveBanking(const dsl::Placeholder &placeholder,
                              const PartitionPlan *partitionOverride);

/**
 * copies/seqTrip decomposition of a loop's unroll setting (factor 0 =
 * full unroll). Shared by the estimator and the admissible bound.
 */
void unrollShape(std::int64_t trip, std::int64_t factor,
                 std::int64_t &copies, std::int64_t &seqTrip);

/** Estimator configuration. */
struct EstimatorOptions
{
    Device device = Device::xc7z020();
    OpCosts costs;
    SharingMode sharing = SharingMode::Reuse;

    /**
     * When non-null, array banking comes from this plan instead of the
     * function's placeholder partition directives. The DSE engine uses
     * it to evaluate candidate design points concurrently without
     * mutating the shared dsl::Function (estimating with the override
     * is equivalent to applyPartitions() + estimating). The pointer is
     * only read during estimate(); the plan must outlive the call.
     */
    const PartitionPlan *partitionOverride = nullptr;
};

/**
 * Produce a synthesis report for a lowered function.
 *
 * @param func The DSL function (array shapes / partition directives).
 * @param lowered Its lowered form (AST with HLS annotations + final
 *        polyhedral statements for dependence distances).
 */
SynthesisReport estimate(const dsl::Function &func,
                         const lower::LoweredFunction &lowered,
                         const EstimatorOptions &options = {});

/**
 * Per-node estimation: one NodeReport per top-level AST node, in
 * program order. The lowered function may contain any subset of the
 * design's statements -- a node's report depends only on its own
 * statements and the banking of the arrays they access, which is what
 * makes reports reusable across design points. Composes exactly:
 * combineNodeReports(estimateNodes(...)) is bit-identical to
 * estimate() on the same lowered function.
 */
std::vector<NodeReport> estimateNodes(const dsl::Function &func,
                                      const lower::LoweredFunction &lowered,
                                      const EstimatorOptions &options = {});

/**
 * Pure combiner folding node reports (in program order) into a
 * SynthesisReport: applies the sharing mode, charges on-chip memory
 * from @p func's arrays, and computes the power proxy.
 */
SynthesisReport combineNodeReports(const dsl::Function &func,
                                   const std::vector<NodeReport> &nodes,
                                   const EstimatorOptions &options = {});

} // namespace pom::hls

#endif // POM_HLS_ESTIMATOR_H
