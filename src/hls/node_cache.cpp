#include "hls/node_cache.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "obs/obs.h"
#include "support/cache_store.h"
#include "support/diagnostics.h"
#include "support/fnv_stream.h"
#include "support/string_util.h"
#include "support/version.h"

namespace pom::hls {

std::string
nodeFingerprint(const std::string &funcDigest,
                const std::vector<const std::string *> &memberFragments,
                const std::vector<NodeArrayBanking> &arrays,
                const OpCosts &costs)
{
    support::FnvHashStream hash;
    std::ostream &os = hash.out();
    os << support::cacheFormatHeader(support::kNodeCacheFormatName);
    os << "func\n" << funcDigest << "\n";
    for (const std::string *fragment : memberFragments)
        os << *fragment;
    for (const auto &a : arrays) {
        os << "arr " << a.array << " banks=" << a.banks
           << " complete=" << (a.complete ? 1 : 0) << "\n";
    }
    opCostsFingerprintTo(os, costs);
    return hash.digest();
}

// ----- on-disk spill format ----------------------------------------------

std::string
encodeNodeCacheEntry(const std::string &key,
                     const std::vector<NodeReport> &nodes)
{
    std::ostringstream os;
    os << support::cacheFormatHeader(support::kNodeCacheFormatName);
    os << "key " << key.size() << "\n" << key << "\n";
    os << "nodes " << nodes.size() << "\n";
    for (const auto &n : nodes) {
        os << "node " << n.nest.size() << ":" << n.nest
           << " latency=" << n.latencyCycles
           << " dsp=" << n.resources.dsp << " lut=" << n.resources.lut
           << " ff=" << n.resources.ff
           << " bram=" << n.resources.bramBits << "\n";
        os << "loops " << n.loops.size() << "\n";
        for (const auto &l : n.loops) {
            os << "loop " << l.iterName.size() << ":" << l.iterName
               << " trip=" << l.trip
               << " target=" << (l.targetII ? std::to_string(*l.targetII)
                                            : std::string("none"))
               << " achieved=" << l.achievedII << " latency=" << l.latency
               << " rec=" << l.recMII << " res=" << l.resMII << "\n";
        }
    }
    return support::sealCacheEntry(os.str());
}

bool
decodeNodeCacheEntry(const std::string &text, std::string &key,
                     std::vector<NodeReport> &nodes, std::string &error)
{
    error.clear();
    nodes.clear();

    std::size_t body = 0;
    if (!support::openCacheEntry(text, support::kNodeCacheFormatName,
                                 body, error)) {
        return false;
    }

    support::CacheEntryReader r{text, body};
    std::string ln;
    auto fail = [&](const std::string &what) {
        error = r.error.empty() ? what : r.error;
        return false;
    };

    if (!r.line(ln) || ln.rfind("key ", 0) != 0)
        return fail("missing key line");
    std::int64_t key_len = 0;
    if (!support::parseInt64(ln.substr(4), key_len) || key_len < 0)
        return fail("malformed key length");
    if (!r.raw(static_cast<std::size_t>(key_len), key))
        return fail("truncated key");

    std::uint64_t node_count = 0;
    if (!r.line(ln) || !support::scanU64(ln, "nodes %" SCNu64, node_count))
        return fail("missing nodes count");
    if (node_count > 1000000)
        return fail("implausible node count");
    for (std::uint64_t i = 0; i < node_count; ++i) {
        if (!r.line(ln) || ln.rfind("node ", 0) != 0)
            return fail("missing node line");
        NodeReport node;
        std::string tail;
        if (!support::splitNamed(ln.substr(5), node.nest, tail))
            return fail("malformed node name");
        unsigned long long latency = 0;
        long long bram = 0;
        if (std::sscanf(tail.c_str(),
                        " latency=%llu dsp=%d lut=%d ff=%d bram=%lld",
                        &latency, &node.resources.dsp,
                        &node.resources.lut, &node.resources.ff,
                        &bram) != 5) {
            return fail("malformed node line");
        }
        node.latencyCycles = latency;
        node.resources.bramBits = bram;

        std::uint64_t loop_count = 0;
        if (!r.line(ln) ||
            !support::scanU64(ln, "loops %" SCNu64, loop_count)) {
            return fail("missing loops count");
        }
        if (loop_count > 1000000)
            return fail("implausible loop count");
        for (std::uint64_t j = 0; j < loop_count; ++j) {
            if (!r.line(ln) || ln.rfind("loop ", 0) != 0)
                return fail("missing loop line");
            LoopReport loop;
            std::string loop_tail;
            if (!support::splitNamed(ln.substr(5), loop.iterName,
                                     loop_tail)) {
                return fail("malformed loop name");
            }
            char target[32] = {0};
            long long trip = 0;
            unsigned long long lat = 0;
            if (std::sscanf(loop_tail.c_str(),
                            " trip=%lld target=%31s achieved=%d "
                            "latency=%llu rec=%d res=%d",
                            &trip, target, &loop.achievedII, &lat,
                            &loop.recMII, &loop.resMII) != 6) {
                return fail("malformed loop line");
            }
            loop.trip = trip;
            loop.latency = lat;
            if (std::string(target) != "none") {
                std::int64_t t = 0;
                if (!support::parseInt64(target, t))
                    return fail("malformed target II");
                loop.targetII = static_cast<int>(t);
            }
            node.loops.push_back(std::move(loop));
        }
        nodes.push_back(std::move(node));
    }
    return true;
}

// ----- the in-memory cache ------------------------------------------------

std::optional<std::vector<NodeReport>>
NodeReportCache::lookup(const std::string &key)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = map_.find(key);
    if (it == map_.end()) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        return std::nullopt;
    }
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second;
}

void
NodeReportCache::store(const std::string &key,
                       const std::vector<NodeReport> &nodes)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (map_.emplace(key, nodes).second) {
        order_.push_back(key);
        evictLocked();
    }
}

std::size_t
NodeReportCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return map_.size();
}

std::size_t
NodeReportCache::capacity() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return capacity_;
}

void
NodeReportCache::setCapacity(std::size_t capacity)
{
    std::lock_guard<std::mutex> lock(mutex_);
    capacity_ = capacity;
    evictLocked();
}

void
NodeReportCache::evictLocked()
{
    if (capacity_ == 0)
        return;
    std::uint64_t evicted = 0;
    while (map_.size() > capacity_ && !order_.empty()) {
        map_.erase(order_.front());
        order_.pop_front();
        ++evicted;
    }
    if (evicted > 0) {
        evictions_.fetch_add(evicted, std::memory_order_relaxed);
        obs::counterAdd("dse.node_cache.evictions",
                        static_cast<std::int64_t>(evicted));
    }
}

void
NodeReportCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    map_.clear();
    order_.clear();
    hits_.store(0);
    misses_.store(0);
    evictions_.store(0);
}

std::vector<std::pair<std::string, std::vector<NodeReport>>>
NodeReportCache::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::pair<std::string, std::vector<NodeReport>>> out;
    out.reserve(map_.size());
    for (const auto &[key, nodes] : map_)
        out.emplace_back(key, nodes);
    return out;
}

namespace {

namespace fs = std::filesystem;

} // namespace

bool
NodeReportCache::loadDir(const std::string &dir, SpillStats &stats,
                         std::string &error)
{
    stats = SpillStats();
    error.clear();
    fs::path root(dir);
    std::vector<std::string> hashes;
    if (!support::readCacheIndex((root / "nodes.index").string(),
                                 support::kNodeCacheFormatName, hashes,
                                 error)) {
        return false;
    }
    for (const auto &hash : hashes) {
        fs::path object = root / "nodes" / hash;
        std::ifstream in(object, std::ios::binary);
        if (!in) {
            support::diag(support::DiagLevel::Warning,
                          "node-cache entry '" + object.string() +
                              "' is indexed but missing; skipped");
            ++stats.skipped;
            continue;
        }
        std::ostringstream text;
        text << in.rdbuf();
        std::string key;
        std::vector<NodeReport> nodes;
        std::string entry_error;
        if (!decodeNodeCacheEntry(text.str(), key, nodes, entry_error) ||
            support::cacheContentHash(key) != hash) {
            support::diag(support::DiagLevel::Warning,
                          "node-cache entry '" + object.string() +
                              "' is unreadable (" +
                              (entry_error.empty() ? "hash/key mismatch"
                                                   : entry_error) +
                              "); skipped");
            ++stats.skipped;
            continue;
        }
        store(key, nodes);
        ++stats.loaded;
    }
    return true;
}

bool
NodeReportCache::saveDir(const std::string &dir, SpillStats &stats,
                         std::string &error) const
{
    stats = SpillStats();
    error.clear();
    fs::path root(dir);
    fs::path objects = root / "nodes";
    std::error_code ec;
    fs::create_directories(objects, ec);
    if (ec) {
        error = "cannot create '" + objects.string() +
                "': " + ec.message();
        return false;
    }

    std::vector<std::string> hashes;
    std::string index_error;
    if (!support::readCacheIndex((root / "nodes.index").string(),
                                 support::kNodeCacheFormatName, hashes,
                                 index_error)) {
        hashes.clear(); // stale-format index: rebuild from scratch
    }

    auto entries = snapshot();
    for (const auto &[key, nodes] : entries) {
        std::string hash = support::cacheContentHash(key);
        fs::path object = objects / hash;
        if (fs::exists(object, ec)) {
            ++stats.kept;
        } else {
            if (!support::writeFileAtomically(
                    object.string(), encodeNodeCacheEntry(key, nodes),
                    error)) {
                return false;
            }
            ++stats.written;
        }
        hashes.push_back(hash);
    }

    std::sort(hashes.begin(), hashes.end());
    hashes.erase(std::unique(hashes.begin(), hashes.end()),
                 hashes.end());
    std::ostringstream index;
    index << support::cacheFormatHeader(support::kNodeCacheFormatName);
    for (const auto &hash : hashes)
        index << hash << "\n";
    return support::writeFileAtomically(
        (root / "nodes.index").string(), index.str(), error);
}

NodeReportCache &
NodeReportCache::global()
{
    static NodeReportCache *cache = new NodeReportCache();
    return *cache;
}

} // namespace pom::hls
