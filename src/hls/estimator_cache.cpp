#include "hls/estimator_cache.h"

#include <sstream>

namespace pom::hls {

std::string
scheduleFingerprint(const std::vector<transform::PolyStmt> &stmts)
{
    std::ostringstream os;
    for (const auto &s : stmts) {
        os << "stmt " << s.sched.name << "\n";
        os << " domain " << s.sched.domain.str() << "\n";
        os << " betas";
        for (auto b : s.sched.betas)
            os << " " << b;
        os << "\n orig " << s.sched.origMap.str() << "\n";
        for (size_t l = 0; l < s.sched.hwPerDim.size(); ++l) {
            const auto &hw = s.sched.hwPerDim[l];
            if (!hw.pipelineII && hw.unrollFactor == 1 &&
                hw.independentArrays.empty()) {
                continue;
            }
            os << " hw " << l << " ii="
               << (hw.pipelineII ? *hw.pipelineII : -1)
               << " unroll=" << hw.unrollFactor << " indep=";
            for (const auto &a : hw.independentArrays)
                os << a << ",";
            os << "\n";
        }
    }
    return os.str();
}

std::string
designFingerprint(const std::string &funcDigest,
                  const std::vector<transform::PolyStmt> &stmts,
                  const PartitionPlan &plan,
                  const EstimatorOptions &options)
{
    std::ostringstream os;
    os << "func\n" << funcDigest << "\n";
    os << scheduleFingerprint(stmts);
    for (const auto &[array, factors] : plan) {
        os << "part " << array << " [";
        for (auto f : factors)
            os << f << ",";
        os << "]\n";
    }
    const Device &d = options.device;
    os << "device dsp=" << d.dsp << " lut=" << d.lut << " ff=" << d.ff
       << " bram=" << d.bramBits << " mhz=" << d.clockMHz << "\n";
    os << "sharing=" << (options.sharing == SharingMode::Reuse ? "reuse"
                                                               : "dataflow")
       << "\n";
    const OpCosts &c = options.costs;
    os << "costs " << c.faddLat << " " << c.fmulLat << " " << c.fdivLat
       << " " << c.fcmpLat << " " << c.iaddLat << " " << c.imulLat << " "
       << c.loadLat << " " << c.storeLat << " " << c.faddDsp << " "
       << c.faddLut << " " << c.faddFf << " " << c.fmulDsp << " "
       << c.fmulLut << " " << c.fmulFf << " " << c.fdivDsp << " "
       << c.fdivLut << " " << c.fdivFf << " " << c.fcmpDsp << " "
       << c.fcmpLut << " " << c.fcmpFf << " " << c.iaddDsp << " "
       << c.iaddLut << " " << c.iaddFf << " " << c.imulDsp << " "
       << c.imulLut << " " << c.imulFf << " " << c.loopCtrlLut << " "
       << c.loopCtrlFf << " " << c.bankMuxLut << " "
       << c.pipelineRegFfPerCopy << "\n";
    return os.str();
}

std::optional<SynthesisReport>
EstimatorCache::lookup(const std::string &key)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = map_.find(key);
    if (it == map_.end()) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        return std::nullopt;
    }
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second;
}

void
EstimatorCache::store(const std::string &key, const SynthesisReport &report)
{
    std::lock_guard<std::mutex> lock(mutex_);
    map_.emplace(key, report);
}

std::size_t
EstimatorCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return map_.size();
}

void
EstimatorCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    map_.clear();
    hits_.store(0);
    misses_.store(0);
}

EstimatorCache &
EstimatorCache::global()
{
    static EstimatorCache *cache = new EstimatorCache();
    return *cache;
}

} // namespace pom::hls
