#include "hls/estimator_cache.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "obs/obs.h"
#include "support/cache_store.h"
#include "support/diagnostics.h"
#include "support/fnv_stream.h"
#include "support/string_util.h"
#include "support/version.h"

namespace pom::hls {

namespace {

std::atomic<bool> g_fingerprint_debug_dump{false};

void
writeDesignTail(std::ostream &os, const PartitionPlan &plan,
                const EstimatorOptions &options)
{
    for (const auto &[array, factors] : plan) {
        os << "part " << array << " [";
        for (auto f : factors)
            os << f << ",";
        os << "]\n";
    }
    const Device &d = options.device;
    os << "device dsp=" << d.dsp << " lut=" << d.lut << " ff=" << d.ff
       << " bram=" << d.bramBits << " mhz=" << d.clockMHz << "\n";
    os << "sharing=" << (options.sharing == SharingMode::Reuse ? "reuse"
                                                               : "dataflow")
       << "\n";
    opCostsFingerprintTo(os, options.costs);
}

void
writeDesignFingerprint(std::ostream &os, const std::string &funcDigest,
                       const std::vector<transform::PolyStmt> &stmts,
                       const PartitionPlan &plan,
                       const EstimatorOptions &options)
{
    os << "func\n" << funcDigest << "\n";
    for (const auto &s : stmts)
        scheduleFingerprintTo(os, s);
    writeDesignTail(os, plan, options);
}

/** Wall-clock for the *.fingerprint_ms histograms. */
class FingerprintTimer
{
  public:
    explicit FingerprintTimer(const char *histogram)
        : histogram_(histogram), enabled_(obs::metricsEnabled()),
          t0_(enabled_ ? std::chrono::steady_clock::now()
                       : std::chrono::steady_clock::time_point())
    {
    }

    ~FingerprintTimer()
    {
        if (enabled_) {
            obs::histogramRecord(
                histogram_, std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - t0_)
                                .count());
        }
    }

  private:
    const char *histogram_;
    bool enabled_;
    std::chrono::steady_clock::time_point t0_;
};

} // namespace

void
setFingerprintDebugDump(bool enabled)
{
    g_fingerprint_debug_dump.store(enabled, std::memory_order_relaxed);
}

bool
fingerprintDebugDump()
{
    return g_fingerprint_debug_dump.load(std::memory_order_relaxed);
}

void
scheduleFingerprintTo(std::ostream &os, const transform::PolyStmt &s)
{
    os << "stmt " << s.sched.name << "\n";
    os << " domain " << s.sched.domain.str() << "\n";
    os << " betas";
    for (auto b : s.sched.betas)
        os << " " << b;
    os << "\n orig " << s.sched.origMap.str() << "\n";
    for (size_t l = 0; l < s.sched.hwPerDim.size(); ++l) {
        const auto &hw = s.sched.hwPerDim[l];
        if (!hw.pipelineII && hw.unrollFactor == 1 &&
            hw.independentArrays.empty()) {
            continue;
        }
        os << " hw " << l << " ii="
           << (hw.pipelineII ? *hw.pipelineII : -1)
           << " unroll=" << hw.unrollFactor << " indep=";
        for (const auto &a : hw.independentArrays)
            os << a << ",";
        os << "\n";
    }
}

std::string
stmtScheduleFragment(const transform::PolyStmt &stmt)
{
    std::ostringstream os;
    scheduleFingerprintTo(os, stmt);
    return os.str();
}

std::string
scheduleFingerprint(const std::vector<transform::PolyStmt> &stmts)
{
    std::ostringstream os;
    for (const auto &s : stmts)
        scheduleFingerprintTo(os, s);
    return os.str();
}

void
opCostsFingerprintTo(std::ostream &os, const OpCosts &c)
{
    os << "costs " << c.faddLat << " " << c.fmulLat << " " << c.fdivLat
       << " " << c.fcmpLat << " " << c.iaddLat << " " << c.imulLat << " "
       << c.loadLat << " " << c.storeLat << " " << c.faddDsp << " "
       << c.faddLut << " " << c.faddFf << " " << c.fmulDsp << " "
       << c.fmulLut << " " << c.fmulFf << " " << c.fdivDsp << " "
       << c.fdivLut << " " << c.fdivFf << " " << c.fcmpDsp << " "
       << c.fcmpLut << " " << c.fcmpFf << " " << c.iaddDsp << " "
       << c.iaddLut << " " << c.iaddFf << " " << c.imulDsp << " "
       << c.imulLut << " " << c.imulFf << " " << c.loopCtrlLut << " "
       << c.loopCtrlFf << " " << c.bankMuxLut << " "
       << c.pipelineRegFfPerCopy << "\n";
}

std::string
designFingerprintText(const std::string &funcDigest,
                      const std::vector<transform::PolyStmt> &stmts,
                      const PartitionPlan &plan,
                      const EstimatorOptions &options)
{
    std::ostringstream os;
    writeDesignFingerprint(os, funcDigest, stmts, plan, options);
    return os.str();
}

std::string
designFingerprint(const std::string &funcDigest,
                  const std::vector<transform::PolyStmt> &stmts,
                  const PartitionPlan &plan,
                  const EstimatorOptions &options)
{
    FingerprintTimer timer("dse.fingerprint_ms");
    support::FnvHashStream hash;
    writeDesignFingerprint(hash.out(), funcDigest, stmts, plan, options);
    if (fingerprintDebugDump()) {
        support::diag(support::DiagLevel::Debug,
                      "design fingerprint " + hash.digest() + ":\n" +
                          designFingerprintText(funcDigest, stmts, plan,
                                                options));
    }
    return hash.digest();
}

std::string
designFingerprintFragments(
    const std::string &funcDigest,
    const std::vector<const std::string *> &stmtFragments,
    const PartitionPlan &plan, const EstimatorOptions &options)
{
    FingerprintTimer timer("dse.fingerprint_ms");
    support::FnvHashStream hash;
    std::ostream &os = hash.out();
    os << "func\n" << funcDigest << "\n";
    for (const std::string *fragment : stmtFragments)
        os << *fragment;
    writeDesignTail(os, plan, options);
    return hash.digest();
}

// ----- on-disk spill format ----------------------------------------------
//
// The container conventions (version-stamped header, FNV-1a checksum
// line, atomic writes, content-hash index) live in support/cache_store;
// this file only encodes/decodes the SynthesisReport payload.

std::string
cacheEntryHash(const std::string &key)
{
    return support::cacheContentHash(key);
}

std::string
encodeCacheEntry(const std::string &key, const SynthesisReport &report)
{
    std::ostringstream os;
    os << support::cacheFormatHeader(support::kCacheFormatName);
    os << "key " << key.size() << "\n" << key << "\n";
    char power[64];
    std::snprintf(power, sizeof(power), "%a", report.powerW);
    os << "report latency=" << report.latencyCycles
       << " dsp=" << report.resources.dsp
       << " lut=" << report.resources.lut
       << " ff=" << report.resources.ff
       << " bram=" << report.resources.bramBits << " power=" << power
       << "\n";
    os << "loops " << report.loops.size() << "\n";
    for (const auto &l : report.loops) {
        os << "loop " << l.iterName.size() << ":" << l.iterName
           << " trip=" << l.trip
           << " target=" << (l.targetII ? std::to_string(*l.targetII)
                                        : std::string("none"))
           << " achieved=" << l.achievedII << " latency=" << l.latency
           << " rec=" << l.recMII << " res=" << l.resMII << "\n";
    }
    os << "nests " << report.nestLatencies.size() << "\n";
    for (const auto &[name, cycles] : report.nestLatencies)
        os << "nest " << name.size() << ":" << name << " " << cycles
           << "\n";
    return support::sealCacheEntry(os.str());
}

bool
decodeCacheEntry(const std::string &text, std::string &key,
                 SynthesisReport &report, std::string &error)
{
    error.clear();
    report = SynthesisReport();

    std::size_t body = 0;
    if (!support::openCacheEntry(text, support::kCacheFormatName, body,
                                 error)) {
        return false;
    }

    support::CacheEntryReader r{text, body};
    std::string ln;
    auto fail = [&](const std::string &what) {
        error = r.error.empty() ? what : r.error;
        return false;
    };

    if (!r.line(ln) || ln.rfind("key ", 0) != 0)
        return fail("missing key line");
    std::int64_t key_len = 0;
    if (!support::parseInt64(ln.substr(4), key_len) || key_len < 0)
        return fail("malformed key length");
    if (!r.raw(static_cast<std::size_t>(key_len), key))
        return fail("truncated key");

    if (!r.line(ln) || ln.rfind("report ", 0) != 0)
        return fail("missing report line");
    char power[64] = {0};
    unsigned long long latency = 0;
    long long bram = 0;
    if (std::sscanf(ln.c_str(),
                    "report latency=%llu dsp=%d lut=%d ff=%d "
                    "bram=%lld power=%63s",
                    &latency, &report.resources.dsp,
                    &report.resources.lut, &report.resources.ff, &bram,
                    power) != 6) {
        return fail("malformed report line");
    }
    report.latencyCycles = latency;
    report.resources.bramBits = bram;
    char *end = nullptr;
    report.powerW = std::strtod(power, &end);
    if (end == nullptr || *end != '\0')
        return fail("malformed power value");

    std::uint64_t count = 0;
    if (!r.line(ln) || !support::scanU64(ln, "loops %" SCNu64, count))
        return fail("missing loops count");
    if (count > 1000000)
        return fail("implausible loop count");
    for (std::uint64_t i = 0; i < count; ++i) {
        if (!r.line(ln) || ln.rfind("loop ", 0) != 0)
            return fail("missing loop line");
        LoopReport loop;
        std::string tail;
        if (!support::splitNamed(ln.substr(5), loop.iterName, tail))
            return fail("malformed loop name");
        char target[32] = {0};
        long long trip = 0;
        unsigned long long lat = 0;
        if (std::sscanf(tail.c_str(),
                        " trip=%lld target=%31s achieved=%d "
                        "latency=%llu rec=%d res=%d",
                        &trip, target, &loop.achievedII, &lat,
                        &loop.recMII, &loop.resMII) != 6) {
            return fail("malformed loop line");
        }
        loop.trip = trip;
        loop.latency = lat;
        if (std::string(target) != "none") {
            std::int64_t t = 0;
            if (!support::parseInt64(target, t))
                return fail("malformed target II");
            loop.targetII = static_cast<int>(t);
        }
        report.loops.push_back(std::move(loop));
    }

    if (!r.line(ln) || !support::scanU64(ln, "nests %" SCNu64, count))
        return fail("missing nests count");
    if (count > 1000000)
        return fail("implausible nest count");
    for (std::uint64_t i = 0; i < count; ++i) {
        if (!r.line(ln) || ln.rfind("nest ", 0) != 0)
            return fail("missing nest line");
        std::string name, tail;
        if (!support::splitNamed(ln.substr(5), name, tail))
            return fail("malformed nest name");
        unsigned long long cycles = 0;
        if (std::sscanf(tail.c_str(), " %llu", &cycles) != 1)
            return fail("malformed nest latency");
        report.nestLatencies.emplace_back(std::move(name), cycles);
    }
    return true;
}

// ----- the in-memory cache ------------------------------------------------

std::optional<SynthesisReport>
EstimatorCache::lookup(const std::string &key)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = map_.find(key);
    if (it == map_.end()) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        return std::nullopt;
    }
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second;
}

void
EstimatorCache::store(const std::string &key, const SynthesisReport &report)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (map_.emplace(key, report).second) {
        order_.push_back(key);
        evictLocked();
    }
}

std::size_t
EstimatorCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return map_.size();
}

std::size_t
EstimatorCache::capacity() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return capacity_;
}

void
EstimatorCache::setCapacity(std::size_t capacity)
{
    std::lock_guard<std::mutex> lock(mutex_);
    capacity_ = capacity;
    evictLocked();
}

void
EstimatorCache::evictLocked()
{
    if (capacity_ == 0)
        return;
    std::uint64_t evicted = 0;
    while (map_.size() > capacity_ && !order_.empty()) {
        map_.erase(order_.front());
        order_.pop_front();
        ++evicted;
    }
    if (evicted > 0) {
        evictions_.fetch_add(evicted, std::memory_order_relaxed);
        obs::counterAdd("dse.cache.evictions",
                        static_cast<std::int64_t>(evicted));
    }
}

void
EstimatorCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    map_.clear();
    order_.clear();
    hits_.store(0);
    misses_.store(0);
    evictions_.store(0);
}

std::vector<std::pair<std::string, SynthesisReport>>
EstimatorCache::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::pair<std::string, SynthesisReport>> out;
    out.reserve(map_.size());
    for (const auto &[key, report] : map_)
        out.emplace_back(key, report);
    return out;
}

namespace {

namespace fs = std::filesystem;

} // namespace

bool
EstimatorCache::loadDir(const std::string &dir, SpillStats &stats,
                        std::string &error)
{
    stats = SpillStats();
    error.clear();
    fs::path root(dir);
    std::vector<std::string> hashes;
    if (!support::readCacheIndex((root / "index").string(),
                                 support::kCacheFormatName, hashes,
                                 error)) {
        return false;
    }
    for (const auto &hash : hashes) {
        fs::path object = root / "objects" / hash;
        std::ifstream in(object, std::ios::binary);
        if (!in) {
            support::diag(support::DiagLevel::Warning,
                          "cache entry '" + object.string() +
                              "' is indexed but missing; skipped");
            ++stats.skipped;
            continue;
        }
        std::ostringstream text;
        text << in.rdbuf();
        std::string key;
        SynthesisReport report;
        std::string entry_error;
        if (!decodeCacheEntry(text.str(), key, report, entry_error) ||
            cacheEntryHash(key) != hash) {
            support::diag(support::DiagLevel::Warning,
                          "cache entry '" + object.string() +
                              "' is unreadable (" +
                              (entry_error.empty() ? "hash/key mismatch"
                                                   : entry_error) +
                              "); skipped");
            ++stats.skipped;
            continue;
        }
        store(key, report);
        ++stats.loaded;
    }
    return true;
}

bool
EstimatorCache::saveDir(const std::string &dir, SpillStats &stats,
                        std::string &error) const
{
    stats = SpillStats();
    error.clear();
    fs::path root(dir);
    fs::path objects = root / "objects";
    std::error_code ec;
    fs::create_directories(objects, ec);
    if (ec) {
        error = "cannot create '" + objects.string() +
                "': " + ec.message();
        return false;
    }

    // Merge with any hashes a concurrent saver already indexed so two
    // processes sharing one cache dir union their entries.
    std::vector<std::string> hashes;
    std::string index_error;
    if (!support::readCacheIndex((root / "index").string(),
                                 support::kCacheFormatName, hashes,
                                 index_error)) {
        hashes.clear(); // stale-format index: rebuild from scratch
    }

    std::vector<std::pair<std::string, SynthesisReport>> entries =
        snapshot();
    for (const auto &[key, report] : entries) {
        std::string hash = cacheEntryHash(key);
        fs::path object = objects / hash;
        if (fs::exists(object, ec)) {
            ++stats.kept;
        } else {
            if (!support::writeFileAtomically(
                    object.string(), encodeCacheEntry(key, report),
                    error)) {
                return false;
            }
            ++stats.written;
        }
        hashes.push_back(hash);
    }

    std::sort(hashes.begin(), hashes.end());
    hashes.erase(std::unique(hashes.begin(), hashes.end()),
                 hashes.end());
    std::ostringstream index;
    index << support::cacheFormatHeader(support::kCacheFormatName);
    for (const auto &hash : hashes)
        index << hash << "\n";
    return support::writeFileAtomically((root / "index").string(),
                                        index.str(), error);
}

EstimatorCache &
EstimatorCache::global()
{
    static EstimatorCache *cache = new EstimatorCache();
    return *cache;
}

} // namespace pom::hls
