#include "hls/bound.h"

#include <algorithm>
#include <map>

#include "hls/count.h"
#include "support/math_util.h"

namespace pom::hls {

using support::ceilDiv;

namespace {

/** Lower bound on one single-statement unit's compute resources. */
Resources
unitBound(const transform::PolyStmt &stmt, const dsl::Function &func,
          const EstimatorOptions &options)
{
    const OpCosts &costs = options.costs;
    const auto &hw = stmt.sched.hwPerDim;
    std::vector<std::int64_t> trips = avgTrips(stmt.sched.domain);
    size_t levels = std::min(trips.size(), hw.size());

    // The estimator pipelines at the outermost annotated level; with no
    // pipeline the nest is sequential and we claim nothing.
    size_t pipe = levels;
    for (size_t l = 0; l < levels; ++l) {
        if (hw[l].pipelineII) {
            pipe = l;
            break;
        }
    }
    if (pipe == levels)
        return {};

    // Spatial copies inside the pipeline region (levels >= pipe). This
    // equals the estimator's copies_on_path product for the statement;
    // replication by loops outside the region only multiplies further.
    // The estimator extends the recurrence with an operator chain only
    // for dependences carried at a *fully unrolled* level (seqTrip 1);
    // partially unrolled levels keep a sequential distance >= 1, so
    // their copies never chain.
    std::int64_t region_copies = 1;
    int chain_ub = 0;
    for (size_t l = pipe; l < levels; ++l) {
        std::int64_t copies, seq_trip;
        unrollShape(trips[l], hw[l].unrollFactor, copies, seq_trip);
        region_copies *= copies;
        if (seq_trip == 1) {
            chain_ub = std::max(
                chain_ub,
                static_cast<int>(copies - 1) * costs.faddLat);
        }
    }

    OpMix mix = statementOpMix(*stmt.source, costs);

    // iiUb >= achieved II = max(target, recMII, resMII):
    //  - recMII = ceil(depLat / dist) with dist >= 1 and
    //    depLat <= max(bodyDepth, faddLat + storeLat) + chain, where
    //    chain only arises from fully unrolled levels (chainUb);
    //  - resMII = ceil(distinct / (2 * banks)): the estimator reads
    //    banks from the same merged plan (partitionOverride), distinct
    //    <= accesses * regionCopies, and completely partitioned arrays
    //    live in registers with no port limit at all.
    int target = *hw[pipe].pipelineII;
    int rec_ub =
        std::max(mix.depth, costs.faddLat + costs.storeLat) + chain_ub;
    int res_ub = 1;
    for (const auto &[array, count] : mix.accessesPerArray) {
        std::int64_t banks = 1;
        if (const dsl::Placeholder *p = func.findPlaceholder(array)) {
            ArrayBanking b =
                effectiveBanking(*p, options.partitionOverride);
            if (b.complete)
                continue;
            banks = std::max<std::int64_t>(1, b.banks);
        }
        res_ub = std::max<int>(
            res_ub, static_cast<int>(ceilDiv(
                        static_cast<std::int64_t>(count) * region_copies,
                        2 * banks)));
    }
    int ii_ub = std::max({target, rec_ub, res_ub});

    // Operator instances counted against the II upper bound; identical
    // arithmetic to the estimator's opResources, minus the structural
    // adders it would add on top.
    auto units = [&](int count) {
        return static_cast<int>(
            ceilDiv(static_cast<std::int64_t>(count) * region_copies,
                    static_cast<std::int64_t>(std::max(1, ii_ub))));
    };
    Resources r;
    int fadd = units(mix.fadd), fmul = units(mix.fmul);
    int fdiv = units(mix.fdiv), fcmp = units(mix.fcmp);
    int iadd = units(mix.iadd), imul = units(mix.imul);
    r.dsp = fadd * costs.faddDsp + fmul * costs.fmulDsp +
            fdiv * costs.fdivDsp + imul * costs.imulDsp;
    r.lut = fadd * costs.faddLut + fmul * costs.fmulLut +
            fdiv * costs.fdivLut + fcmp * costs.fcmpLut +
            iadd * costs.iaddLut + imul * costs.imulLut;
    r.ff = fadd * costs.faddFf + fmul * costs.fmulFf +
           fdiv * costs.fdivFf + fcmp * costs.fcmpFf +
           iadd * costs.iaddFf + imul * costs.imulFf;
    r.ff += (fadd + fmul + fdiv + fcmp) * costs.pipelineRegFfPerCopy;
    return r;
}

} // namespace

Resources
admissibleResourceBound(
    const dsl::Function &func,
    const std::vector<std::vector<const transform::PolyStmt *>> &units,
    const EstimatorOptions &options)
{
    Resources folded;
    for (const auto &members : units) {
        if (members.size() != 1)
            continue; // fused units contribute zero
        Resources ub = unitBound(*members.front(), func, options);
        if (options.sharing == SharingMode::Reuse)
            folded = Resources::max(folded, ub);
        else
            folded += ub;
    }

    // Exact on-chip memory charge (mirrors combineNodeReports).
    const std::int64_t on_chip_threshold = 1 << 17;
    for (const dsl::Placeholder *p : func.placeholders()) {
        std::int64_t bits = static_cast<std::int64_t>(1) *
                            ir::bitWidth(p->elementType());
        for (auto d : p->shape())
            bits *= d;
        if (bits > on_chip_threshold)
            continue;
        if (effectiveBanking(*p, options.partitionOverride).complete)
            folded.ff += static_cast<int>(bits);
        else
            folded.bramBits += bits;
    }
    return folded;
}

} // namespace pom::hls
