/**
 * @file
 * Admissible analytic resource lower bound for DSE candidates,
 * computed from the schedules alone -- no AST build, no estimator run.
 * "Admissible" means the bound never exceeds what hls::estimate would
 * report for the same schedules, so rejecting a candidate whose bound
 * already exceeds the device budget is equivalent to estimating it and
 * rejecting: the search trajectory is unchanged, only the work saved.
 *
 * The argument, per single-statement unit with a pipelined level p:
 *
 *  - The estimator's achieved II is max(target, recMII, resMII) and
 *    each term has a schedule-visible upper bound: dependence
 *    distances are >= 1 and bank counts are >= 1 (dual ports), while a
 *    fully-unrolled reduction chain is at most
 *    (maxCopies - 1) * faddLat, giving iiUb >= achieved II.
 *  - Operator instances are ceil(opCount * copies / II), monotonically
 *    decreasing in II; counting with iiUb therefore lower-bounds every
 *    operator class, hence the DSP/LUT/FF charge.
 *  - Structural overheads (bank muxes, loop control, replication by
 *    loops outside the pipeline) only ever add resources, so ignoring
 *    them keeps the bound below the truth.
 *  - Units with several fused statements contribute zero (trivially
 *    admissible).
 *  - The on-chip memory charge (BRAM bits / register FF) depends only
 *    on array shapes and the partition plan, so it is reproduced
 *    exactly, and unit bounds fold with the same sharing rule as the
 *    real combiner (elementwise max under Reuse, sum under Dataflow).
 *
 * A seeded property test (incremental_dse_test) checks admissibility
 * against the full estimator across random schedules.
 */

#ifndef POM_HLS_BOUND_H
#define POM_HLS_BOUND_H

#include <vector>

#include "hls/estimator.h"
#include "transform/poly_stmt.h"

namespace pom::hls {

/**
 * Lower bound on the resources hls::estimate would report for a design
 * whose DSE units hold the given (already scheduled) statements.
 * Banking for the memory charge comes from options.partitionOverride
 * exactly as in the estimator.
 */
Resources admissibleResourceBound(
    const dsl::Function &func,
    const std::vector<std::vector<const transform::PolyStmt *>> &units,
    const EstimatorOptions &options);

} // namespace pom::hls

#endif // POM_HLS_BOUND_H
