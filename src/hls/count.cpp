#include "hls/count.h"

#include <algorithm>

#include "support/diagnostics.h"
#include "support/math_util.h"

namespace pom::hls {

using poly::DimBounds;
using poly::IntegerSet;

namespace {

/**
 * Recursive counting over dims [level, n). @p prefix holds values for
 * dims [0, level). Bounds that only involve constants (relative to the
 * fixed prefix) and are not referenced by deeper constraints multiply.
 */
std::int64_t
countFrom(const IntegerSet &set, const std::vector<DimBounds> &bounds,
          std::vector<std::int64_t> &prefix, size_t level)
{
    size_t n = set.numDims();
    if (level == n)
        return 1;

    const DimBounds &b = bounds[level];
    POM_ASSERT(!b.lower.empty() && !b.upper.empty(),
               "countPoints on unbounded set");
    std::vector<std::int64_t> pt(prefix.begin(), prefix.begin() + level);
    pt.push_back(0);
    std::int64_t lo = 0, hi = -1;
    bool first = true;
    for (const auto &bd : b.lower) {
        std::int64_t v = support::ceilDiv(bd.expr.evaluate(pt), bd.divisor);
        lo = first ? v : std::max(lo, v);
        first = false;
    }
    first = true;
    for (const auto &bd : b.upper) {
        std::int64_t v = support::floorDiv(bd.expr.evaluate(pt),
                                           bd.divisor);
        hi = first ? v : std::min(hi, v);
        first = false;
    }
    if (hi < lo)
        return 0;
    std::int64_t width = hi - lo + 1;

    // If no deeper bound references this dim, the count below is the
    // same for every value -> multiply.
    bool referenced = false;
    for (size_t d = level + 1; d < n && !referenced; ++d) {
        for (const auto &bd : bounds[d].lower) {
            if (bd.expr.coeff(level) != 0) {
                referenced = true;
                break;
            }
        }
        for (const auto &bd : bounds[d].upper) {
            if (bd.expr.coeff(level) != 0) {
                referenced = true;
                break;
            }
        }
    }

    if (!referenced) {
        prefix[level] = lo;
        std::int64_t below = countFrom(set, bounds, prefix, level + 1);
        return width * below;
    }

    std::int64_t total = 0;
    for (std::int64_t v = lo; v <= hi; ++v) {
        prefix[level] = v;
        total += countFrom(set, bounds, prefix, level + 1);
    }
    return total;
}

} // namespace

std::int64_t
countPoints(const IntegerSet &set)
{
    if (set.numDims() == 0)
        return set.isEmpty() ? 0 : 1;
    if (set.isEmpty())
        return 0;
    std::vector<DimBounds> bounds;
    bounds.reserve(set.numDims());
    for (size_t i = 0; i < set.numDims(); ++i)
        bounds.push_back(set.boundsForCodegen(i));
    std::vector<std::int64_t> prefix(set.numDims(), 0);
    return countFrom(set, bounds, prefix, 0);
}

std::vector<std::int64_t>
avgTrips(const poly::IntegerSet &set)
{
    size_t n = set.numDims();
    std::vector<std::int64_t> trips(n, 1);
    std::int64_t prev = 1;
    for (size_t l = 0; l < n; ++l) {
        std::int64_t count = countPoints(set.projectOntoPrefix(l + 1));
        std::int64_t trip = prev > 0 ? (count + prev / 2) / prev : 1;
        trips[l] = std::max<std::int64_t>(1, trip);
        prev = count;
    }
    return trips;
}

} // namespace pom::hls
