#include "hls/estimator.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "hls/count.h"
#include "obs/obs.h"
#include "support/diagnostics.h"
#include "support/math_util.h"

namespace pom::hls {

using ast::AstNode;
using support::ceilDiv;

int
SynthesisReport::worstII() const
{
    int worst = 1;
    for (const auto &l : loops)
        worst = std::max(worst, l.achievedII);
    return worst;
}

double
SynthesisReport::speedupOver(const SynthesisReport &base) const
{
    POM_ASSERT(latencyCycles > 0, "speedup of zero-latency design");
    return static_cast<double>(base.latencyCycles) /
           static_cast<double>(latencyCycles);
}

std::string
SynthesisReport::str(const Device &device) const
{
    std::ostringstream os;
    os << "latency=" << latencyCycles << " cycles, DSP=" << resources.dsp
       << " (" << (100 * resources.dsp / std::max(1, device.dsp))
       << "%), FF=" << resources.ff << " ("
       << (100 * resources.ff / std::max(1, device.ff))
       << "%), LUT=" << resources.lut << " ("
       << (100 * resources.lut / std::max(1, device.lut))
       << "%), power=" << powerW << " W, II=" << worstII();
    return os.str();
}

namespace {

using BodyCosts = OpMix;

/** Per-statement precomputed analysis. */
struct StmtInfo
{
    const transform::PolyStmt *stmt = nullptr;
    BodyCosts body;
    std::vector<std::int64_t> trips;           ///< avg trip per level
    std::vector<poly::Dependence> deps;        ///< transformed space
    std::vector<poly::Access> taccesses;       ///< transformed space
};

int
exprDepth(const dsl::ExprNode &node, const OpCosts &costs, BodyCosts &acc)
{
    using K = dsl::ExprNode::Kind;
    switch (node.kind) {
      case K::Const:
        return 0;
      case K::Iter:
        return 0;
      case K::Load:
        ++acc.loads;
        ++acc.accessesPerArray[node.array->name()];
        return costs.loadLat;
      case K::Binary: {
        int lhs = exprDepth(*node.lhs, costs, acc);
        int rhs = exprDepth(*node.rhs, costs, acc);
        int lat = 0;
        bool flt = ir::isFloat(node.array != nullptr
                                   ? node.array->elementType()
                                   : ir::ScalarKind::F32);
        (void)flt;
        switch (node.binOp) {
          case dsl::BinOp::Add:
          case dsl::BinOp::Sub:
            ++acc.fadd;
            lat = costs.faddLat;
            break;
          case dsl::BinOp::Mul:
            ++acc.fmul;
            lat = costs.fmulLat;
            break;
          case dsl::BinOp::Div:
            ++acc.fdiv;
            lat = costs.fdivLat;
            break;
          case dsl::BinOp::Max:
          case dsl::BinOp::Min:
            ++acc.fcmp;
            lat = costs.fcmpLat;
            break;
        }
        return std::max(lhs, rhs) + lat;
      }
      case K::Unary: {
        int lhs = exprDepth(*node.lhs, costs, acc);
        return lhs + costs.faddLat;
      }
    }
    return 0;
}

/** Partition configuration of one array. */
struct ArrayInfo
{
    std::int64_t banks = 1;
    bool complete = false;
    std::int64_t bits = 0;
};

/** Intermediate result of evaluating an AST subtree. */
struct Eval
{
    std::uint64_t latency = 0;
    Resources res;
};

class Estimator
{
  public:
    Estimator(const dsl::Function &func,
              const lower::LoweredFunction &lowered,
              const EstimatorOptions &options)
        : func_(func), lowered_(lowered), opt_(options)
    {
        for (const auto &s : lowered.stmts) {
            StmtInfo info;
            info.stmt = &s;
            info.body = statementOpMix(*s.source, opt_.costs);
            info.trips = avgTrips(s.sched.domain);
            info.deps = transform::selfDependences(s);
            info.taccesses = s.transformedAccesses();
            stmts_[s.sched.name] = std::move(info);
        }
        for (const dsl::Placeholder *p : func.placeholders()) {
            ArrayInfo ai;
            ai.bits = static_cast<std::int64_t>(1) *
                      ir::bitWidth(p->elementType());
            for (auto d : p->shape())
                ai.bits *= d;
            ArrayBanking ab =
                effectiveBanking(*p, options.partitionOverride);
            ai.banks = ab.banks;
            ai.complete = ab.complete;
            arrays_[p->name()] = ai;
        }
    }

    std::vector<NodeReport>
    runNodes()
    {
        const AstNode &root = *lowered_.astRoot;

        std::vector<const AstNode *> top;
        if (root.kind() == AstNode::Kind::Block) {
            for (const auto &c : root.children)
                top.push_back(c.get());
        } else {
            top.push_back(&root);
        }

        std::vector<NodeReport> nodes;
        nodes.reserve(top.size());
        for (const AstNode *node : top) {
            size_t first_loop = loop_reports_.size();
            Eval e = evalNode(*node, 0);
            const StmtInfo *leader = leaderOf(*node);
            NodeReport nr;
            nr.nest = leader ? leader->stmt->sched.name : "?";
            nr.latencyCycles = e.latency;
            nr.resources = e.res;
            nr.loops.assign(loop_reports_.begin() +
                                static_cast<std::ptrdiff_t>(first_loop),
                            loop_reports_.end());
            nodes.push_back(std::move(nr));
        }
        return nodes;
    }

  private:
    /** Find the first user statement under a node. */
    const StmtInfo *
    leaderOf(const AstNode &node) const
    {
        if (node.kind() == AstNode::Kind::User) {
            auto it = stmts_.find(node.stmtName);
            POM_ASSERT(it != stmts_.end(), "unknown statement ",
                       node.stmtName);
            return &it->second;
        }
        for (const auto &c : node.children) {
            if (const StmtInfo *s = leaderOf(*c))
                return s;
        }
        return nullptr;
    }

    Eval
    evalNode(const AstNode &node, size_t depth)
    {
        switch (node.kind()) {
          case AstNode::Kind::Block: {
            Eval e;
            for (const auto &c : node.children) {
                Eval ce = evalNode(*c, depth);
                e.latency += ce.latency;
                e.res += ce.res;
            }
            return e;
          }
          case AstNode::Kind::If: {
            Eval e;
            for (const auto &c : node.children) {
                Eval ce = evalNode(*c, depth);
                e.latency += ce.latency;
                e.res += ce.res;
            }
            return e;
          }
          case AstNode::Kind::User:
            return evalSequentialUser(node);
          case AstNode::Kind::For:
            if (node.hw.pipelineII)
                return evalPipeline(node, depth);
            return evalSequentialFor(node, depth);
        }
        return {};
    }

    Eval
    evalSequentialUser(const AstNode &node)
    {
        const StmtInfo &info = stmts_.at(node.stmtName);
        Eval e;
        e.latency = static_cast<std::uint64_t>(info.body.depth) + 2;
        e.res = opResources(info.body, 1, 1);
        return e;
    }

    Eval
    evalSequentialFor(const AstNode &node, size_t depth)
    {
        const StmtInfo *leader = leaderOf(node);
        POM_ASSERT(leader != nullptr, "loop without statements");
        std::int64_t trip = leader->trips.at(depth);
        std::int64_t copies, seq_trip;
        unrollShape(trip, node.hw.unrollFactor, copies, seq_trip);

        Eval child;
        for (const auto &c : node.children) {
            Eval ce = evalNode(*c, depth + 1);
            child.latency += ce.latency;
            child.res += ce.res;
        }
        Eval e;
        e.latency = static_cast<std::uint64_t>(seq_trip) *
                        (child.latency + 1) + 2;
        e.res = child.res.scaledBy(copies);
        e.res.lut += opt_.costs.loopCtrlLut;
        e.res.ff += opt_.costs.loopCtrlFf;
        return e;
    }

    /** Info about one loop inside a pipeline region. */
    struct PipeLoop
    {
        size_t depth;
        std::int64_t trip, copies, seq_trip;
    };

    void
    collectPipeline(const AstNode &node, size_t depth,
                    std::int64_t copies_on_path,
                    std::vector<PipeLoop> &loops,
                    std::vector<std::pair<const StmtInfo *, std::int64_t>>
                        &users,
                    std::map<size_t, PipeLoop> &loop_at_level)
    {
        if (node.kind() == AstNode::Kind::User) {
            users.emplace_back(&stmts_.at(node.stmtName), copies_on_path);
            return;
        }
        if (node.kind() == AstNode::Kind::For) {
            const StmtInfo *leader = leaderOf(node);
            POM_ASSERT(leader != nullptr, "loop without statements");
            std::int64_t trip = leader->trips.at(depth);
            PipeLoop pl;
            pl.depth = depth;
            pl.trip = trip;
            unrollShape(trip, node.hw.unrollFactor, pl.copies, pl.seq_trip);
            loops.push_back(pl);
            loop_at_level[depth] = pl;
            for (const auto &c : node.children) {
                collectPipeline(*c, depth + 1, copies_on_path * pl.copies,
                                loops, users, loop_at_level);
            }
            return;
        }
        for (const auto &c : node.children)
            collectPipeline(*c, depth, copies_on_path, loops, users,
                            loop_at_level);
    }

    Eval
    evalPipeline(const AstNode &node, size_t depth)
    {
        std::vector<PipeLoop> loops;
        std::vector<std::pair<const StmtInfo *, std::int64_t>> users;
        std::map<size_t, PipeLoop> loop_at_level;
        collectPipeline(node, depth, 1, loops, users, loop_at_level);
        POM_ASSERT(!users.empty(), "pipeline without statements");

        // The pipelined loop itself must not carry an unroll annotation
        // other than via its seq_trip handling (already in loops[0]).
        std::int64_t flat_trip = 1;
        for (const auto &pl : loops)
            flat_trip *= pl.seq_trip;

        // Effective body depth: operator chains from fully unrolled
        // reduction levels extend the recurrence.
        int d_eff = 0;
        int rec_mii = 1;
        for (const auto &[info, p_copies] : users) {
            int chain = 0;
            int stmt_depth = info->body.depth;
            for (const auto &dep : info->deps) {
                size_t level = dep.level;
                if (level < depth)
                    continue; // carried outside the pipeline
                auto it = loop_at_level.find(level);
                if (it == loop_at_level.end())
                    continue;
                const PipeLoop &pl = it->second;
                if (pl.seq_trip == 1) {
                    // Fully unrolled reduction: operator chain across the
                    // spatial copies.
                    chain = std::max<int>(
                        chain, static_cast<int>(pl.copies - 1) *
                                   opt_.costs.faddLat);
                    continue;
                }
                // Sequential distance in flattened pipeline iterations.
                std::int64_t dist =
                    std::max<std::int64_t>(
                        1, dep.carriedDistance / std::max<std::int64_t>(
                                                     1, pl.copies));
                for (const auto &[lvl, inner] : loop_at_level) {
                    if (lvl > level)
                        dist *= inner.seq_trip;
                }
                // Accumulator recurrences (identical source and sink
                // subscripts, e.g. C[i][j] += ...) keep the running sum
                // in a register: only the adder (+ any unrolled chain)
                // sits on the cycle, not the whole body.
                bool accumulator =
                    info->taccesses.at(dep.srcAccess).map ==
                    info->taccesses.at(dep.dstAccess).map;
                int dep_lat = accumulator
                                  ? opt_.costs.faddLat +
                                        opt_.costs.storeLat + chain
                                  : stmt_depth + chain;
                rec_mii = std::max<int>(
                    rec_mii,
                    static_cast<int>(ceilDiv(dep_lat, dist)));
            }
            d_eff = std::max(d_eff, stmt_depth + chain);
        }

        // Resource MII from memory ports. Unrolled copies that touch the
        // same element (broadcasts, e.g. B[k][j] replicated across an i
        // unroll) do not consume extra ports: each access contributes
        // one port request per *distinct address*, i.e. the product of
        // the unrolled loop copies its subscripts actually reference.
        int res_mii = 1;
        std::map<std::string, std::int64_t> accesses;
        for (const auto &[info, p_copies] : users) {
            (void)p_copies;
            for (const auto &acc : info->taccesses) {
                std::int64_t distinct = 1;
                for (const auto &[lvl, pl] : loop_at_level) {
                    if (pl.copies <= 1 || lvl >= acc.map.numDomainDims())
                        continue;
                    bool referenced = false;
                    for (size_t r = 0; r < acc.map.numResults(); ++r) {
                        if (acc.map.result(r).coeff(lvl) != 0) {
                            referenced = true;
                            break;
                        }
                    }
                    if (referenced)
                        distinct *= pl.copies;
                }
                accesses[acc.array] += distinct;
            }
        }
        for (const auto &[array, count] : accesses) {
            auto it = arrays_.find(array);
            POM_ASSERT(it != arrays_.end(), "unknown array ", array);
            if (it->second.complete)
                continue; // registers: no port limit
            std::int64_t ports = 2 * it->second.banks;
            res_mii = std::max<int>(
                res_mii, static_cast<int>(ceilDiv(count, ports)));
        }

        int target = *node.hw.pipelineII;
        int ii = std::max({target, rec_mii, res_mii});

        Eval e;
        e.latency = static_cast<std::uint64_t>(ii) *
                        static_cast<std::uint64_t>(flat_trip - 1) +
                    d_eff + 2;

        // Operator instances with reuse across the II window.
        BodyCosts total;
        for (const auto &[info, p_copies] : users) {
            total.fadd += info->body.fadd * p_copies;
            total.fmul += info->body.fmul * p_copies;
            total.fdiv += info->body.fdiv * p_copies;
            total.fcmp += info->body.fcmp * p_copies;
            total.iadd += info->body.iadd * p_copies;
            total.imul += info->body.imul * p_copies;
            total.loads += info->body.loads * p_copies;
            total.stores += info->body.stores * p_copies;
        }
        e.res = opResources(total, 1, ii);
        for (const auto &[array, count] : accesses) {
            e.res.lut += opt_.costs.bankMuxLut *
                         static_cast<int>(arrays_.at(array).banks);
        }
        e.res.lut += opt_.costs.loopCtrlLut * static_cast<int>(loops.size());
        e.res.ff += opt_.costs.loopCtrlFf * static_cast<int>(loops.size());

        LoopReport lr;
        lr.iterName = node.iterName;
        lr.trip = flat_trip;
        lr.targetII = target;
        lr.achievedII = ii;
        lr.recMII = rec_mii;
        lr.resMII = res_mii;
        lr.latency = e.latency;
        loop_reports_.push_back(lr);
        return e;
    }

    /** Resources for op counts with @p copies replication / II reuse. */
    Resources
    opResources(const BodyCosts &body, std::int64_t copies,
                int ii) const
    {
        auto units = [&](int count) {
            return static_cast<int>(
                ceilDiv(static_cast<std::int64_t>(count) * copies,
                        std::max(1, ii)));
        };
        const OpCosts &c = opt_.costs;
        Resources r;
        int fadd = units(body.fadd), fmul = units(body.fmul);
        int fdiv = units(body.fdiv), fcmp = units(body.fcmp);
        int iadd = units(body.iadd), imul = units(body.imul);
        r.dsp = fadd * c.faddDsp + fmul * c.fmulDsp + fdiv * c.fdivDsp +
                imul * c.imulDsp;
        r.lut = fadd * c.faddLut + fmul * c.fmulLut + fdiv * c.fdivLut +
                fcmp * c.fcmpLut + iadd * c.iaddLut + imul * c.imulLut;
        r.ff = fadd * c.faddFf + fmul * c.fmulFf + fdiv * c.fdivFf +
               fcmp * c.fcmpFf + iadd * c.iaddFf + imul * c.imulFf;
        r.ff += (fadd + fmul + fdiv + fcmp) * c.pipelineRegFfPerCopy;
        return r;
    }

    const dsl::Function &func_;
    const lower::LoweredFunction &lowered_;
    EstimatorOptions opt_;
    std::map<std::string, StmtInfo> stmts_;
    std::map<std::string, ArrayInfo> arrays_;
    std::vector<LoopReport> loop_reports_;
};

} // namespace

void
unrollShape(std::int64_t trip, std::int64_t factor, std::int64_t &copies,
            std::int64_t &seqTrip)
{
    if (factor == 0 || factor >= trip) {
        copies = trip;
        seqTrip = 1;
    } else {
        copies = std::max<std::int64_t>(1, factor);
        seqTrip = ceilDiv(trip, copies);
    }
}

OpMix
statementOpMix(const dsl::Compute &compute, const OpCosts &costs)
{
    OpMix acc;
    int rhs_depth = exprDepth(*compute.rhs().node(), costs, acc);
    // Destination store.
    ++acc.stores;
    ++acc.accessesPerArray[compute.dest().node()->array->name()];
    acc.depth = rhs_depth + costs.storeLat;
    return acc;
}

ArrayBanking
effectiveBanking(const dsl::Placeholder &placeholder,
                 const PartitionPlan *partitionOverride)
{
    ArrayBanking ab;
    if (partitionOverride != nullptr) {
        auto it = partitionOverride->find(placeholder.name());
        if (it != partitionOverride->end()) {
            ab.banks = 1; // plan partitions are always cyclic
            for (auto f : it->second)
                ab.banks *= f;
        }
    } else if (!placeholder.partitionFactors().empty()) {
        ab.complete = placeholder.partitionKind() == "complete";
        ab.banks = 1;
        for (auto f : placeholder.partitionFactors())
            ab.banks *= f;
    }
    return ab;
}

std::vector<NodeReport>
estimateNodes(const dsl::Function &func,
              const lower::LoweredFunction &lowered,
              const EstimatorOptions &options)
{
    Estimator estimator(func, lowered, options);
    return estimator.runNodes();
}

SynthesisReport
combineNodeReports(const dsl::Function &func,
                   const std::vector<NodeReport> &nodes,
                   const EstimatorOptions &options)
{
    SynthesisReport report;
    Resources total;
    std::uint64_t lat_sum = 0, lat_max = 0;
    Resources res_max;
    for (const NodeReport &n : nodes) {
        lat_sum += n.latencyCycles;
        lat_max = std::max(lat_max, n.latencyCycles);
        total += n.resources;
        res_max = Resources::max(res_max, n.resources);
        report.nestLatencies.emplace_back(n.nest, n.latencyCycles);
        for (const LoopReport &l : n.loops)
            report.loops.push_back(l);
    }
    if (options.sharing == SharingMode::Reuse) {
        report.latencyCycles = lat_sum;
        report.resources = res_max;
    } else {
        // Dataflow: stages overlap, but unmatched computation paces
        // between successive loops stall the FIFO handshakes (the
        // §VII.E observation), so only part of the non-bottleneck
        // work hides behind the bottleneck stage.
        report.latencyCycles = lat_max + (lat_sum - lat_max) / 4;
        report.resources = total;
    }

    // On-chip memory: arrays small enough to live in a few BRAM
    // blocks; complete partitioning moves them into registers.
    // Larger tensors are interface (AXI) buffers streamed from
    // external memory, as in real designs for the paper's problem
    // sizes (a 4096x4096 f32 matrix cannot live in 4.9 Mb of BRAM).
    // Name order matches the estimator's sorted array map.
    const std::int64_t on_chip_threshold = 1 << 17;
    std::map<std::string, const dsl::Placeholder *> arrays;
    for (const dsl::Placeholder *p : func.placeholders())
        arrays[p->name()] = p;
    for (const auto &[name, p] : arrays) {
        std::int64_t bits = static_cast<std::int64_t>(1) *
                            ir::bitWidth(p->elementType());
        for (auto d : p->shape())
            bits *= d;
        if (bits > on_chip_threshold)
            continue; // external (AXI) interface
        if (effectiveBanking(*p, options.partitionOverride).complete)
            report.resources.ff += static_cast<int>(bits);
        else
            report.resources.bramBits += bits;
    }

    report.powerW = powerProxyW(report.resources);
    return report;
}

SynthesisReport
estimate(const dsl::Function &func, const lower::LoweredFunction &lowered,
         const EstimatorOptions &options)
{
    obs::Span span("hls.estimate", "hls");
    SynthesisReport report =
        combineNodeReports(func, estimateNodes(func, lowered, options),
                           options);
    span.arg("latency_cycles",
             static_cast<std::int64_t>(report.latencyCycles));
    span.arg("dsp", static_cast<std::int64_t>(report.resources.dsp));
    if (obs::metricsEnabled()) {
        obs::counterAdd("hls.estimates");
        obs::gaugeSet("hls.latency_cycles",
                      static_cast<double>(report.latencyCycles));
        obs::gaugeSet("hls.dsp", report.resources.dsp);
        obs::gaugeSet("hls.lut", report.resources.lut);
        obs::gaugeSet("hls.ff", report.resources.ff);
        obs::gaugeSet("hls.bram_bits",
                      static_cast<double>(report.resources.bramBits));
        obs::gaugeSet("hls.power_w", report.powerW);
        obs::gaugeSet("hls.worst_ii", report.worstII());
        // Per-node gauges: the latency of every top-level nest and the
        // achieved II of every pipelined loop of the last estimate.
        for (const auto &[nest, cycles] : report.nestLatencies) {
            obs::gaugeSet("hls.nest_latency." + nest,
                          static_cast<double>(cycles));
        }
        for (const auto &loop : report.loops)
            obs::gaugeSet("hls.loop_ii." + loop.iterName, loop.achievedII);
    }
    return report;
}

} // namespace pom::hls
