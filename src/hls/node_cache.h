/**
 * @file
 * Process-wide memo of per-node synthesis reports (hls::NodeReport)
 * keyed by a *per-node fingerprint*. This is what makes stage-2 DSE
 * candidate evaluation cost proportional to what changed: the search
 * doubles one unit's parallelism per step, so every other unit's
 * schedule -- and therefore its NodeReport -- recurs and is served
 * from here instead of being re-lowered and re-estimated.
 *
 * The key digests exactly what a NodeReport depends on:
 *
 *   - the function digest (array shapes + statement bodies),
 *   - the unit's member schedule fragments (hls::stmtScheduleFragment),
 *   - the effective banking (banks, complete) of every array the unit
 *     accesses under the candidate's partition plan,
 *   - the operator cost table.
 *
 * Deliberately absent: the device budget, the sharing mode, and other
 * units' schedules -- a node's latency/compute resources depend on
 * none of them (the combiner applies device/sharing), so one cached
 * node serves every candidate, strategy, and resource fraction that
 * keeps the node's schedule. Content addressing also dedupes distinct
 * parallelism degrees that clamp to the same schedule.
 *
 * Spills beside the estimator cache in the same content-addressed
 * directory layout (support/cache_store conventions):
 *
 *   <dir>/nodes.index         list of entry hashes (atomic rewrite)
 *   <dir>/nodes/<hash>        one entry: full key + node reports
 *
 * and takes the same FIFO capacity bound for long-lived daemons.
 */

#ifndef POM_HLS_NODE_CACHE_H
#define POM_HLS_NODE_CACHE_H

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "hls/estimator.h"
#include "hls/estimator_cache.h"

namespace pom::hls {

/** One array's banking as seen by a node: name, banks, complete. */
struct NodeArrayBanking
{
    std::string array;
    std::int64_t banks = 1;
    bool complete = false;
};

/**
 * The per-node fingerprint: a 128-bit digest (32 hex chars) of the
 * node-cache format stamp, @p funcDigest, the unit's member schedule
 * fragments (statement order), the bankings of the arrays the unit
 * accesses (caller-sorted by array name) and the cost table.
 */
std::string
nodeFingerprint(const std::string &funcDigest,
                const std::vector<const std::string *> &memberFragments,
                const std::vector<NodeArrayBanking> &arrays,
                const OpCosts &costs);

/** Serialize one (key, reports) pair as the on-disk entry format. */
std::string encodeNodeCacheEntry(const std::string &key,
                                 const std::vector<NodeReport> &nodes);

/** Parse an entry produced by encodeNodeCacheEntry(). */
bool decodeNodeCacheEntry(const std::string &text, std::string &key,
                          std::vector<NodeReport> &nodes,
                          std::string &error);

/** Thread-safe fingerprint -> NodeReport-list map with statistics. */
class NodeReportCache
{
  public:
    std::optional<std::vector<NodeReport>> lookup(const std::string &key);
    void store(const std::string &key,
               const std::vector<NodeReport> &nodes);

    std::uint64_t hits() const { return hits_.load(); }
    std::uint64_t misses() const { return misses_.load(); }
    std::uint64_t evictions() const { return evictions_.load(); }
    std::size_t size() const;

    /** FIFO entry cap, 0 = unbounded (see EstimatorCache::setCapacity). */
    std::size_t capacity() const;
    void setCapacity(std::size_t capacity);

    void clear();

    std::vector<std::pair<std::string, std::vector<NodeReport>>>
    snapshot() const;

    /** Same contract as EstimatorCache::loadDir (nodes.index/nodes/). */
    bool loadDir(const std::string &dir, SpillStats &stats,
                 std::string &error);

    /** Same contract as EstimatorCache::saveDir (nodes.index/nodes/). */
    bool saveDir(const std::string &dir, SpillStats &stats,
                 std::string &error) const;

    /** The process-wide cache the DSE engine uses. */
    static NodeReportCache &global();

  private:
    void evictLocked();

    mutable std::mutex mutex_;
    std::unordered_map<std::string, std::vector<NodeReport>> map_;
    std::deque<std::string> order_;
    std::size_t capacity_ = 0;
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
    std::atomic<std::uint64_t> evictions_{0};
};

} // namespace pom::hls

#endif // POM_HLS_NODE_CACHE_H
