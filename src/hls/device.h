/**
 * @file
 * Target device and operator cost models for the HLS synthesis
 * estimator. This module substitutes for Xilinx Vitis HLS + the XC7Z020
 * board in the paper's evaluation (§VII.A): the device table carries the
 * board resources the paper quotes (220 DSP, 53,200 LUT, 106,400 FF,
 * 4.9 Mb BRAM at a 100 MHz target), and the operator table carries
 * latency/area characteristics of the Xilinx 7-series floating-point
 * operator IP at that clock.
 */

#ifndef POM_HLS_DEVICE_H
#define POM_HLS_DEVICE_H

#include <cstdint>

namespace pom::hls {

/** FPGA resource budget. */
struct Device
{
    int dsp = 220;
    int lut = 53200;
    int ff = 106400;
    std::int64_t bramBits = 5138022; ///< ~4.9 Mb
    double clockMHz = 100.0;

    /** The paper's target device. */
    static Device
    xc7z020()
    {
        return Device{};
    }

    /** A proportionally scaled budget (Fig. 11 resource constraints). */
    Device
    scaled(double fraction) const
    {
        Device d = *this;
        d.dsp = static_cast<int>(d.dsp * fraction);
        d.lut = static_cast<int>(d.lut * fraction);
        d.ff = static_cast<int>(d.ff * fraction);
        d.bramBits = static_cast<std::int64_t>(d.bramBits * fraction);
        return d;
    }
};

/** Per-operator latency (cycles) and area, 32-bit float at 100 MHz. */
struct OpCosts
{
    // Latency in cycles.
    int faddLat = 4;
    int fmulLat = 3;
    int fdivLat = 14;
    int fcmpLat = 1;   ///< max/min
    int iaddLat = 1;
    int imulLat = 2;
    int loadLat = 2;   ///< BRAM read
    int storeLat = 1;

    // Area per operator instance.
    int faddDsp = 2, faddLut = 214, faddFf = 227;
    int fmulDsp = 3, fmulLut = 135, fmulFf = 128;
    int fdivDsp = 0, fdivLut = 798, fdivFf = 1446;
    int fcmpDsp = 0, fcmpLut = 40, fcmpFf = 20;
    int iaddDsp = 0, iaddLut = 32, iaddFf = 32;
    int imulDsp = 1, imulLut = 26, imulFf = 45;

    // Structural overheads.
    int loopCtrlLut = 60, loopCtrlFf = 90;   ///< per loop
    int bankMuxLut = 12;                     ///< per memory bank
    int pipelineRegFfPerCopy = 220;          ///< pipeline registers
};

/** Aggregate resource usage. */
struct Resources
{
    int dsp = 0;
    int lut = 0;
    int ff = 0;
    std::int64_t bramBits = 0;

    Resources &
    operator+=(const Resources &o)
    {
        dsp += o.dsp;
        lut += o.lut;
        ff += o.ff;
        bramBits += o.bramBits;
        return *this;
    }

    Resources
    scaledBy(std::int64_t n) const
    {
        Resources r = *this;
        r.dsp = static_cast<int>(r.dsp * n);
        r.lut = static_cast<int>(r.lut * n);
        r.ff = static_cast<int>(r.ff * n);
        r.bramBits = r.bramBits * n;
        return r;
    }

    /** Elementwise max (used when sequential nests share hardware). */
    static Resources
    max(const Resources &a, const Resources &b)
    {
        Resources r;
        r.dsp = a.dsp > b.dsp ? a.dsp : b.dsp;
        r.lut = a.lut > b.lut ? a.lut : b.lut;
        r.ff = a.ff > b.ff ? a.ff : b.ff;
        r.bramBits = a.bramBits > b.bramBits ? a.bramBits : b.bramBits;
        return r;
    }

    bool
    fitsIn(const Device &device) const
    {
        return dsp <= device.dsp && lut <= device.lut && ff <= device.ff &&
               bramBits <= device.bramBits;
    }
};

/**
 * The linear power proxy over used resources (the paper reports power
 * from the Vivado report; this analytical stand-in is what
 * SynthesisReport::powerW carries and what the multi-objective DSE
 * minimizes through its LUT term). Shared by the estimator and the
 * Pareto-frontier tooling so both always agree.
 */
inline double
powerProxyW(const Resources &r)
{
    return 0.05 + r.dsp * 2.0e-3 + r.ff * 3.5e-6 + r.lut * 4.5e-6 +
           r.bramBits * 2.0e-8;
}

} // namespace pom::hls

#endif // POM_HLS_DEVICE_H
