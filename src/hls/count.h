/**
 * @file
 * Symbolic point counting for large iteration domains. Enumeration is
 * infeasible at the paper's problem sizes (4096^3 GEMM), so counting
 * exploits structure: levels whose bounds are constant and that no
 * deeper constraint references contribute multiplicatively in O(1);
 * only levels that other constraints reference (e.g. skewed wavefronts)
 * are iterated numerically.
 */

#ifndef POM_HLS_COUNT_H
#define POM_HLS_COUNT_H

#include <cstdint>
#include <vector>

#include "poly/integer_set.h"

namespace pom::hls {

/** Exact number of integer points of @p set (0 if empty). */
std::int64_t countPoints(const poly::IntegerSet &set);

/**
 * Average trip count of each loop level:
 *   trips[l] = |proj_{0..l}(D)| / |proj_{0..l-1}(D)|
 * rounded to the nearest integer and at least 1. For rectangular levels
 * this is the exact trip count; for skewed levels it is the mean width.
 */
std::vector<std::int64_t> avgTrips(const poly::IntegerSet &set);

} // namespace pom::hls

#endif // POM_HLS_COUNT_H
