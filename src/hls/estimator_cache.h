/**
 * @file
 * Memoization in front of hls::estimate for the DSE hot path. A design
 * point is identified by a *canonical schedule fingerprint*: a textual
 * serialization of every statement's transformed iteration domain,
 * schedule betas, origin map and per-loop hardware annotations, plus
 * the candidate's array-partition plan, the estimator configuration and
 * a caller-provided digest of the function itself (shapes + bodies +
 * user directives, e.g. driver::renderDsl). Two candidates produced by
 * *different primitive sequences* that land on the same transformed
 * schedule therefore share one estimate, and re-materializing a design
 * (the final DSE point, --replay-journal, a warm bench re-run) skips
 * the estimator entirely.
 *
 * The full canonical string is the cache key -- no lossy hashing, so a
 * hit can never return the report of a different schedule. The cache is
 * process-wide and thread-safe; the DSE engine feeds it from its worker
 * pool. Reports are small (a few hundred bytes), so an entry per
 * explored point is cheap; clear() exists for benchmarks that need cold
 * runs.
 */

#ifndef POM_HLS_ESTIMATOR_CACHE_H
#define POM_HLS_ESTIMATOR_CACHE_H

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "hls/estimator.h"

namespace pom::hls {

/**
 * Canonical text of the transformed schedules: per statement the name,
 * domain, betas, origin map and hardware annotations, in statement
 * order. This is the schedule part of a design-point fingerprint; it is
 * also a useful debugging dump on its own.
 */
std::string
scheduleFingerprint(const std::vector<transform::PolyStmt> &stmts);

/**
 * Full design-point fingerprint: @p funcDigest (any canonical rendering
 * of the function, stable across candidates of one search), the
 * schedule fingerprint of @p stmts, the partition plan and the
 * estimator options (device, sharing mode, operator costs).
 */
std::string
designFingerprint(const std::string &funcDigest,
                  const std::vector<transform::PolyStmt> &stmts,
                  const PartitionPlan &plan,
                  const EstimatorOptions &options);

/** Thread-safe fingerprint -> SynthesisReport map with hit statistics. */
class EstimatorCache
{
  public:
    /** Cached report for @p key; counts a hit/miss either way. */
    std::optional<SynthesisReport> lookup(const std::string &key);

    /** Insert (first writer wins; concurrent duplicates are idempotent). */
    void store(const std::string &key, const SynthesisReport &report);

    std::uint64_t hits() const { return hits_.load(); }
    std::uint64_t misses() const { return misses_.load(); }
    std::size_t size() const;

    /** Drop all entries and reset the statistics (cold-run benchmarks). */
    void clear();

    /** The process-wide cache the DSE engine uses. */
    static EstimatorCache &global();

  private:
    mutable std::mutex mutex_;
    std::unordered_map<std::string, SynthesisReport> map_;
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
};

} // namespace pom::hls

#endif // POM_HLS_ESTIMATOR_CACHE_H
